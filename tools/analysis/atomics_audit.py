#!/usr/bin/env python3
"""atomics-audit -- memory-order protocol analyzer for the optsched tree.

Statically proves every std::atomic access site in the concurrent source
dirs against the declarative per-structure protocol specs in
tools/analysis/protocols/*.json (docs/static_analysis.md section 4). Where
optsched-lint checks that an order is SPELLED, this tool checks that the
spelled order is the RIGHT one for the documented happens-before argument --
the static complement of the mc checker's dynamic bounds (the checker
explores interleavings at 4 workers / preemption bound 2; this gate covers
every site, every build, at any scale).

Passes:
  extract   every atomic access site in src/runtime, src/trace, src/ingress,
            src/task, src/sched into a site table: field, op kind
            (load/store/exchange/fetch_*/compare_exchange_{weak,strong},
            including implicit operator forms and two-order CAS), memory
            order(s), justification tag, plus per-file
            std::atomic_thread_fence shapes and atomic member declarations.
  check     each site against its structure's spec: per-op minimum orders
            (CAS success/failure positions separately), and the relaxed-site
            allowlist -- every relaxed (or below-minimum but justifiable)
            site must carry a "// order: <spec-rule>" tag citing a rule the
            spec's justify list allows for that op.
  mc        cross-check against the SyncOp enum in src/runtime/mc_hooks.h:
            every spec'd atomic either declares its mc hook ops (which must
            match the member's "// mc:" tag and exist in the enum) or
            carries a spec-declared hook-free exemption.
  report    JSON site/coverage report (--json), per-scope site-count floors
            (--min-sites), and TU coverage via compile_commands.json
            (--build, shared with optsched-lint).

Checks (diagnostic categories):
  unspecified-site      atomic op on a field no protocol spec covers
  unspecified-member    declared atomic member absent from every spec
  unspecified-op        op kind performed on a field whose spec entry does
                        not list it
  implicit-order        implicit operator form (=/++/--/+=) on a spec'd
                        field -- no order to check (lint flags the spelling;
                        this keeps the site table honest)
  order-too-weak        order below the spec minimum for that op/position
                        and not justified by a citable rule
  unjustified-relaxed   relaxed site without a valid "// order:" tag
  unknown-rule          "// order:" tag citing a rule the governing spec
                        does not declare or allow for that site
  mc-mismatch           spec mc ops vs member "// mc:" tag vs SyncOp enum
                        disagreement (or a missing hook-free exemption)
  fence-shape           a file's atomic_thread_fence sequence differs from
                        the spec's declared shape
  stale-spec            spec field with no sites anywhere (anchored to the
                        spec's first file) -- specs must track the code
  suppression-syntax    malformed "// atomics-audit: allow(...)" suppression

Suppressions: "// atomics-audit: allow(<check>): <reason>" on the offending
line or on its own line directly above. The reason is mandatory.

Tree mode (default):
    atomics_audit.py [--root DIR] [--build BUILDDIR] [--specs DIR]
                     [--json OUT] [--min-sites PREFIX=N]...
Fixture mode:
    atomics_audit.py --fixtures DIR
Analyzes seeded-violation files against DIR/protocols/*.json and requires
the produced diagnostics to match "// expect-atomics: <check>" annotations
exactly, mirroring lint_fixtures_test: a missing diagnostic means a pass
stopped firing, an unexpected one means a pass over-triggers.

Exit codes: 0 clean, 1 diagnostics (or fixture mismatch), 2 usage/setup
error.
"""

import argparse
import json
import os
import re
import sys

_LINT_DIR = os.path.realpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "lint"))
sys.path.insert(0, _LINT_DIR)
import optsched_lint as lint  # noqa: E402  (shared tokenizer/fixture machinery)

SCOPES = ("src/runtime/", "src/trace/", "src/ingress/", "src/task/",
          "src/sched/")

CHECKS = (
    "unspecified-site",
    "unspecified-member",
    "unspecified-op",
    "implicit-order",
    "order-too-weak",
    "unjustified-relaxed",
    "unknown-rule",
    "mc-mismatch",
    "fence-shape",
    "stale-spec",
    "suppression-syntax",
)

# The C++ order lattice, with acquire/release incomparable one-way fences:
# an order satisfies a minimum iff it is at least as strong AND provides the
# required direction (acquire-minimums are not met by release and vice
# versa; acq_rel/seq_cst provide both).
ORDER_RANK = {"relaxed": 0, "consume": 1, "acquire": 2, "release": 2,
              "acq_rel": 3, "seq_cst": 4}
DIRECTIONAL = {
    "consume": {"consume", "acquire", "acq_rel", "seq_cst"},
    "acquire": {"acquire", "acq_rel", "seq_cst"},
    "release": {"release", "acq_rel", "seq_cst"},
}

CAS_OPS = ("compare_exchange_weak", "compare_exchange_strong")
# C++ [atomics.types.operations]: the one-argument CAS derives its failure
# order from the success order by dropping the release half.
DERIVED_FAILURE = {"relaxed": "relaxed", "consume": "consume",
                   "acquire": "acquire", "release": "relaxed",
                   "acq_rel": "acquire", "seq_cst": "seq_cst"}

ALLOW_RE = re.compile(
    r"//\s*atomics-audit:\s*allow\((?P<check>[a-z-]+)\)\s*:\s*(?P<reason>\S.*)")
MALFORMED_ALLOW_RE = re.compile(
    r"//\s*atomics-audit:\s*allow\((?P<check>[a-z-]+)\)\s*:?\s*$")
ORDER_TAG_RE = re.compile(
    r"//\s*order:\s*(?P<rules>[a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\s*$")
EXPECT_RE = re.compile(r"//\s*expect-atomics:\s*(?P<check>[a-z-]+)")
FENCE_RE = re.compile(r"\batomic_thread_fence\s*\(\s*std::memory_order_(\w+)")
# Member declarations, including atomic arrays and atomics behind
# unique_ptr<T[]> / vector<T> storage (slots_, deal_in_flight_) that the
# lint's narrower decl regex does not track.
MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:alignas\([^)]*\)\s*)?(?:const\s+)?"
    r"(?:std::(?:unique_ptr|vector|array)<\s*)?"
    r"std::atomic<[^;&()]*?>(?:\s*\[\s*\]\s*>|\s*>)?"
    r"\s+(?P<name>\w+)\s*(?:\[[^\]]*\])?\s*(?:\{[^;]*\})?\s*;")

ORDER_TOKEN = "memory_order_"


def order_satisfies(order, minimum):
    if minimum in DIRECTIONAL:
        return order in DIRECTIONAL[minimum]
    return ORDER_RANK.get(order, -1) >= ORDER_RANK.get(minimum, 99)


def top_level_orders(args_text):
    """memory_order tokens at paren depth 1 of an argument list (nested
    atomic calls contribute their orders at depth >= 2 and are skipped)."""
    orders = []
    depth = 0
    i, n = 0, len(args_text)
    while i < n:
        c = args_text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
        elif (depth == 1 and args_text.startswith(ORDER_TOKEN, i) and
              (i == 0 or not (args_text[i - 1].isalnum() or
                              args_text[i - 1] == "_"))):
            j = i + len(ORDER_TOKEN)
            k = j
            while k < n and (args_text[k].isalnum() or args_text[k] == "_"):
                k += 1
            orders.append(args_text[j:k])
            i = k
            continue
        i += 1
    return orders


def base_identifier(line, dot_col):
    """The member identifier the '.op(' at dot_col is invoked on: walks back
    over whitespace and one or more [...] index groups to the identifier
    (the last component of any a.b->c chain)."""
    i = dot_col - 1
    while True:
        while i >= 0 and line[i].isspace():
            i -= 1
        if i >= 0 and line[i] == "]":
            depth = 1
            i -= 1
            while i >= 0 and depth > 0:
                if line[i] == "]":
                    depth += 1
                elif line[i] == "[":
                    depth -= 1
                i -= 1
            continue
        break
    end = i + 1
    while i >= 0 and (line[i].isalnum() or line[i] == "_"):
        i -= 1
    return line[i + 1:end]


class AuditDirectives:
    """Audit-specific comment directives ("// order:", "// atomics-audit:
    allow(...)", "// expect-atomics:"), same binding rules as the lint's
    Directives: a directive binds to its own line and the line below."""

    def __init__(self, raw_lines):
        self.allow = {}      # 0-based line -> {check: reason}
        self.order_tags = {}  # 0-based line -> [rule ids]
        self.expects = []    # (0-based binding line, check)
        self.malformed = []
        for idx, line in enumerate(raw_lines):
            m = ALLOW_RE.search(line)
            if m:
                self.allow.setdefault(idx, {})[m.group("check")] = \
                    m.group("reason")
            elif MALFORMED_ALLOW_RE.search(line):
                self.malformed.append(idx)
            m = ORDER_TAG_RE.search(line)
            if m:
                self.order_tags[idx] = [r.strip()
                                        for r in m.group("rules").split(",")]
            m = EXPECT_RE.search(line)
            if m:
                standalone = line.lstrip().startswith("//")
                bind = idx + 1 if standalone else idx
                self.expects.append((bind, m.group("check")))

    def suppressed(self, idx, check):
        for at in (idx, idx - 1):
            if check in self.allow.get(at, {}):
                return True
        return False

    def tag_for(self, idx):
        for at in (idx, idx - 1):
            if at in self.order_tags:
                return self.order_tags[at]
        return None


class Spec:
    def __init__(self, path, data):
        self.path = path
        for key in ("name", "structure", "files", "fields"):
            if key not in data:
                raise ValueError(f"{path}: spec missing required key '{key}'")
        self.name = data["name"]
        self.structure = data["structure"]
        self.files = list(data["files"])
        self.doc = data.get("doc", "")
        self.rules = dict(data.get("rules", {}))
        self.aliases = dict(data.get("aliases", {}))
        self.fields = dict(data.get("fields", {}))
        self.fences = dict(data.get("fences", {}))
        for field, entry in self.fields.items():
            if ("mc" in entry) == ("hook_free" in entry):
                raise ValueError(
                    f"{path}: field '{field}' must declare exactly one of "
                    "'mc' (hook ops) or 'hook_free' (exemption reason)")
            for op, op_rule in entry.get("ops", {}).items():
                want = ("min_success", "min_failure") if op in CAS_OPS \
                    else ("min",)
                for k in want:
                    if k not in op_rule:
                        raise ValueError(
                            f"{path}: field '{field}' op '{op}' missing "
                            f"'{k}'")
                for jkey in ("justify", "justify_success", "justify_failure"):
                    for rule in op_rule.get(jkey, []):
                        if rule not in self.rules:
                            raise ValueError(
                                f"{path}: field '{field}' op '{op}' cites "
                                f"undeclared rule '{rule}'")

    def resolve(self, name):
        """Spec field entry for a source identifier (direct or alias)."""
        if name in self.fields:
            return name, self.fields[name]
        alias = self.aliases.get(name)
        if alias is not None and alias in self.fields:
            return alias, self.fields[alias]
        return None, None


class Site:
    __slots__ = ("rel", "line", "spec", "field", "op", "orders", "implicit",
                 "tag")

    def __init__(self, rel, line, spec, field, op, orders, implicit, tag):
        self.rel = rel
        self.line = line  # 1-based
        self.spec = spec  # Spec or None
        self.field = field
        self.op = op
        self.orders = orders  # list: [order] or [success, failure]
        self.implicit = implicit
        self.tag = tag  # [rule ids] or None

    def as_json(self):
        return {
            "file": self.rel,
            "line": self.line,
            "structure": self.spec.structure if self.spec else None,
            "field": self.field,
            "op": self.op,
            "orders": self.orders,
            "implicit": self.implicit,
            "justification": self.tag,
        }


class Auditor:
    def __init__(self, specs, valid_ops):
        self.specs = specs
        self.valid_ops = valid_ops  # SyncOp enumerators, or None to skip
        self.sites = []
        self.diags = []
        self.fences = {}           # rel -> [orders]
        self.members = {}          # rel -> [(line idx, name)]
        self.fields_seen = set()   # (spec name, field) with >= 1 site

    def specs_for(self, rel):
        return [s for s in self.specs if rel in s.files]

    # --- extract + check one file ------------------------------------------

    def audit_file(self, path, rel):
        raw, stripped = lint.load_stripped(path)
        lint_dirs = lint.Directives(raw)   # mc tags ride the lint syntax
        audit_dirs = AuditDirectives(raw)

        def report(idx, check, message):
            if not audit_dirs.suppressed(idx, check):
                self.diags.append(
                    lint.Diagnostic(rel, idx + 1, check, message))

        for idx in audit_dirs.malformed:
            self.diags.append(lint.Diagnostic(
                rel, idx + 1, "suppression-syntax",
                "atomics-audit suppression without a reason -- write "
                "'// atomics-audit: allow(check): why it is safe'"))
        for idx, checks in audit_dirs.allow.items():
            for check in checks:
                if check not in CHECKS:
                    self.diags.append(lint.Diagnostic(
                        rel, idx + 1, "suppression-syntax",
                        f"suppression names unknown check '{check}'"))

        specs_here = self.specs_for(rel)

        # Fences (pass A), compared against the declared shape (pass B).
        fence_lines = []
        for idx, line in enumerate(stripped):
            for m in FENCE_RE.finditer(line):
                fence_lines.append((idx, m.group(1)))
        self.fences[rel] = [order for _, order in fence_lines]
        declared = None
        for spec in specs_here:
            if rel in spec.fences:
                declared = spec.fences[rel]
                break
        self.check_fences(rel, fence_lines, declared, report)

        # Member declarations (pass A) + mc cross-check (pass C).
        self.members[rel] = []
        for idx, line in enumerate(stripped):
            m = MEMBER_RE.match(line)
            if not m:
                continue
            name = m.group("name")
            self.members[rel].append((idx, name))
            field, entry, spec = None, None, None
            for s in specs_here:
                field, entry = s.resolve(name)
                if entry is not None:
                    spec = s
                    break
            if entry is None:
                report(idx, "unspecified-member",
                       f"atomic member '{name}' is not covered by any "
                       "protocol spec -- add it to a spec in "
                       "tools/analysis/protocols/ (or a hook-free entry)")
                continue
            self.check_mc(rel, idx, name, entry, spec,
                          lint_dirs.tag_for(idx), report)

        # Access sites (pass A) + order checks (pass B).
        # Implicit-operator scan uses direct field names only: aliases are
        # local lvalues (e.g. the chase_lev 'slot' pointer) whose own
        # declaration/assignment lines are not atomic ops.
        known_names = set()
        for s in specs_here:
            known_names |= set(s.fields)
        for idx, line in enumerate(stripped):
            for m in lint.ATOMIC_OP_RE.finditer(line):
                if MEMBER_RE.match(line):
                    continue  # a declaration's initializer, not a site
                op = m.group(1)
                base = base_identifier(line, m.start())
                args = lint.paren_args(stripped, idx, m.end() - 1)
                orders = top_level_orders(args)
                self.record_site(rel, idx, base, op, orders,
                                 audit_dirs.tag_for(idx), specs_here, report)
            if known_names:
                self.scan_implicit(rel, idx, line, known_names, specs_here,
                                   report)

    def scan_implicit(self, rel, idx, line, names, specs_here, report):
        if MEMBER_RE.match(line):
            return  # {0} initializers on the declaration itself
        pattern = (r"(?:\+\+|--)\s*(?P<pre>" +
                   "|".join(map(re.escape, sorted(names))) +
                   r")\b|\b(?P<name>" +
                   "|".join(map(re.escape, sorted(names))) +
                   r")\s*(?:\+\+|--|[+\-|&^]=|=(?!=))")
        for m in re.finditer(pattern, line):
            var = m.group("pre") or m.group("name")
            spec, field = None, None
            for s in specs_here:
                field, entry = s.resolve(var)
                if entry is not None:
                    spec = s
                    break
            if spec is None:
                continue
            self.sites.append(Site(rel, idx + 1, spec, field, "implicit",
                                   ["seq_cst"], True, None))
            self.fields_seen.add((spec.name, field))
            report(idx, "implicit-order",
                   f"implicit operator on atomic '{var}' -- the protocol "
                   "check needs an explicit load/store/fetch_* form")

    def record_site(self, rel, idx, base, op, orders, tag, specs_here,
                    report):
        spec, field, entry = None, None, None
        for s in specs_here:
            field, entry = s.resolve(base)
            if entry is not None:
                spec = s
                break
        site = Site(rel, idx + 1, spec, field if spec else base, op, orders,
                    False, tag)
        self.sites.append(site)
        if spec is None:
            report(idx, "unspecified-site",
                   f"atomic {op}() on '{base}', which no protocol spec "
                   "covers -- every atomic site must be provable against "
                   "a spec in tools/analysis/protocols/")
            return
        self.fields_seen.add((spec.name, field))
        op_rule = entry.get("ops", {}).get(op)
        if op_rule is None:
            report(idx, "unspecified-op",
                   f"{spec.structure}::{field} spec does not list op "
                   f"'{op}' -- declare its minimum order (or remove the "
                   "site)")
            return
        if op in CAS_OPS:
            if len(orders) == 0:
                orders = ["seq_cst", "seq_cst"]  # implicit seq_cst CAS
            elif len(orders) == 1:
                orders = [orders[0], DERIVED_FAILURE.get(orders[0],
                                                         "relaxed")]
            self.check_position(rel, idx, spec, field, op, "success",
                                orders[0], op_rule["min_success"],
                                op_rule.get("justify_success", []), tag,
                                report)
            self.check_position(rel, idx, spec, field, op, "failure",
                                orders[1], op_rule["min_failure"],
                                op_rule.get("justify_failure", []), tag,
                                report)
        else:
            order = orders[0] if orders else "seq_cst"  # implicit seq_cst
            self.check_position(rel, idx, spec, field, op, None, order,
                                op_rule["min"], op_rule.get("justify", []),
                                tag, report)

    def check_position(self, rel, idx, spec, field, op, position, order,
                       minimum, justify, tag, report):
        """One order position of one site: order >= spec minimum, and any
        relaxed (or below-minimum but justifiable) use must cite a rule the
        spec allows for this op."""
        where = f"{spec.structure}::{field} {op}()" + \
            (f" {position} order" if position else "")
        if order not in ORDER_RANK:
            report(idx, "order-too-weak",
                   f"{where} uses unrecognized order '{order}'")
            return
        ok = order_satisfies(order, minimum)
        needs_tag = (not ok) or order == "relaxed"
        if not needs_tag:
            return
        if tag is not None:
            unknown = [r for r in tag if r not in spec.rules]
            if unknown:
                report(idx, "unknown-rule",
                       f"'// order:' tag cites '{unknown[0]}', which spec "
                       f"'{spec.name}' does not declare")
                return
            if any(r in justify for r in tag):
                return  # justified by a rule the spec allows for this op
            if justify:
                report(idx, "unknown-rule",
                       f"{where}: cited rule(s) {', '.join(tag)} do not "
                       f"justify this position -- allowed: "
                       f"{', '.join(justify)}")
                return
        if not ok:
            hint = (f" (justifiable via: {', '.join(justify)})" if justify
                    else " (no rule justifies weakening this -- it carries "
                         "the happens-before argument)")
            report(idx, "order-too-weak",
                   f"{where} is '{order}' but the protocol requires at "
                   f"least '{minimum}'{hint}")
        else:
            report(idx, "unjustified-relaxed",
                   f"{where} is relaxed without a '// order: <rule>' tag "
                   f"citing one of: {', '.join(justify) if justify else '(none -- relaxed is not allowed here)'}")

    def check_mc(self, rel, idx, name, entry, spec, mc_tag, report):
        if "hook_free" in entry:
            if mc_tag is not None:
                report(idx, "mc-mismatch",
                       f"'{name}' is spec'd hook-free "
                       f"({entry['hook_free']}) but carries a '// mc:' tag "
                       "-- drop the exemption or the tag")
            return
        want = set(entry["mc"])
        if self.valid_ops is not None:
            for op in sorted(want):
                if op not in self.valid_ops:
                    report(idx, "mc-mismatch",
                           f"spec '{spec.name}' names '{op}' for '{name}', "
                           "which is not a mc_hooks::SyncOp enumerator")
        if mc_tag is None:
            report(idx, "mc-mismatch",
                   f"'{name}' has no '// mc:' tag but spec '{spec.name}' "
                   f"requires hooks {', '.join(sorted(want))} -- the model "
                   "checker would not explore schedules around it")
        elif set(mc_tag) != want:
            report(idx, "mc-mismatch",
                   f"'{name}' mc tag ({', '.join(sorted(mc_tag))}) differs "
                   f"from spec '{spec.name}' "
                   f"({', '.join(sorted(want))})")

    def check_fences(self, rel, fence_lines, declared, report):
        actual = [order for _, order in fence_lines]
        if declared is None:
            if fence_lines:
                idx = fence_lines[0][0]
                report(idx, "fence-shape",
                       "atomic_thread_fence in a file no spec declares a "
                       "fence shape for -- fences are protocol structure "
                       "and must be spec'd")
            return
        for i in range(min(len(actual), len(declared))):
            if actual[i] != declared[i]:
                report(fence_lines[i][0], "fence-shape",
                       f"fence #{i + 1} is '{actual[i]}' but the spec "
                       f"declares '{declared[i]}'")
                return
        if len(actual) < len(declared):
            idx = fence_lines[-1][0] if fence_lines else 0
            report(idx, "fence-shape",
                   f"file has {len(actual)} atomic_thread_fence(s) but the "
                   f"spec declares {len(declared)} -- a fence was removed "
                   "or reordered out")
        elif len(actual) > len(declared):
            report(fence_lines[len(declared)][0], "fence-shape",
                   f"file has {len(actual)} atomic_thread_fence(s) but the "
                   f"spec declares {len(declared)} -- declare the new "
                   "fence's place in the protocol")

    # --- cross-file passes --------------------------------------------------

    def finish(self):
        for spec in self.specs:
            for field in spec.fields:
                if (spec.name, field) not in self.fields_seen:
                    self.diags.append(lint.Diagnostic(
                        spec.files[0], 1, "stale-spec",
                        f"spec '{spec.name}' field '{field}' has no access "
                        "sites in its files -- the spec no longer tracks "
                        "the code"))

    def counts(self):
        per_scope = {}
        for site in self.sites:
            top = "/".join(site.rel.split("/")[:2])
            per_scope[top] = per_scope.get(top, 0) + 1
        relaxed = sum(1 for s in self.sites
                      if "relaxed" in s.orders and not s.implicit)
        justified = sum(1 for s in self.sites
                        if "relaxed" in s.orders and s.tag)
        return {
            "sites": len(self.sites),
            "sites_per_scope": dict(sorted(per_scope.items())),
            "specs": len(self.specs),
            "spec_fields": sum(len(s.fields) for s in self.specs),
            "spec_rules": sum(len(s.rules) for s in self.specs),
            "relaxed_sites": relaxed,
            "justified_relaxed_sites": justified,
            "fences": sum(len(v) for v in self.fences.values()),
        }


def load_specs(specs_dir, root):
    if not os.path.isdir(specs_dir):
        print(f"atomics-audit: spec dir {specs_dir} not found",
              file=sys.stderr)
        sys.exit(2)
    specs = []
    for name in sorted(os.listdir(specs_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(specs_dir, name)
        try:
            with open(path, "r", encoding="utf-8") as f:
                specs.append(Spec(path, json.load(f)))
        except (ValueError, KeyError) as err:
            print(f"atomics-audit: bad spec {path}: {err}", file=sys.stderr)
            sys.exit(2)
    if not specs:
        print(f"atomics-audit: no specs in {specs_dir}", file=sys.stderr)
        sys.exit(2)
    for spec in specs:
        for rel in spec.files:
            if not os.path.exists(os.path.join(root, rel)):
                print(f"atomics-audit: spec '{spec.name}' lists missing "
                      f"file {rel}", file=sys.stderr)
                sys.exit(2)
    return specs


def collect_scoped_files(root):
    files = []
    for scope in SCOPES:
        subdir = os.path.join(root, scope.rstrip("/"))
        if not os.path.isdir(subdir):
            continue
        for dirpath, _, names in os.walk(subdir):
            for name in sorted(names):
                if name.endswith((".h", ".cc")):
                    files.append(os.path.join(dirpath, name))
    return sorted(files)


def write_report(out_path, auditor, diags):
    report = {
        "counts": auditor.counts(),
        "specs": [{"name": s.name, "structure": s.structure,
                   "files": s.files, "fields": sorted(s.fields),
                   "rules": sorted(s.rules)} for s in auditor.specs],
        "sites": [s.as_json() for s in auditor.sites],
        "fences": auditor.fences,
        "diagnostics": [{"file": d.path, "line": d.line, "check": d.rule,
                         "message": d.message} for d in diags],
    }
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=1, sort_keys=True)
        f.write("\n")


def run_tree(args):
    root = os.path.realpath(args.root)
    specs_dir = args.specs or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "protocols")
    specs = load_specs(specs_dir, root)
    valid_ops = lint.declared_sync_ops(root)
    auditor = Auditor(specs, valid_ops)
    for path in collect_scoped_files(root):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        auditor.audit_file(path, rel)
    auditor.finish()
    diags = list(auditor.diags)
    if args.build:
        diags.extend(lint.check_compile_commands(
            root, os.path.realpath(args.build)))
    counts = auditor.counts()
    for floor in args.min_sites or []:
        prefix, _, want = floor.partition("=")
        try:
            want = int(want)
        except ValueError:
            print(f"atomics-audit: bad --min-sites '{floor}' (want "
                  "PREFIX=N)", file=sys.stderr)
            sys.exit(2)
        have = sum(1 for s in auditor.sites if s.rel.startswith(prefix))
        if have < want:
            diags.append(lint.Diagnostic(
                prefix, 1, "stale-spec",
                f"site-count floor: {have} atomic sites extracted under "
                f"{prefix}, expected >= {want} -- extraction regressed "
                "(or sites moved; update the floor)"))
    if args.json:
        write_report(args.json, auditor, diags)
    for d in sorted(diags, key=lambda d: (d.path, d.line, d.rule)):
        print(d)
    if diags:
        print(f"atomics-audit: {len(diags)} diagnostic(s)", file=sys.stderr)
        return 1
    print(f"atomics-audit: {counts['sites']} site(s) across "
          f"{counts['specs']} spec(s) clean "
          f"({counts['justified_relaxed_sites']}/{counts['relaxed_sites']} "
          "relaxed sites justified)", file=sys.stderr)
    return 0


def run_fixtures(args):
    fixtures = os.path.realpath(args.fixtures)
    if not os.path.isdir(fixtures):
        print(f"atomics-audit: fixture dir {fixtures} not found",
              file=sys.stderr)
        sys.exit(2)
    specs = load_specs(os.path.join(fixtures, "protocols"), fixtures)
    auditor = Auditor(specs, valid_ops=None)  # fixtures declare fake ops
    expected = set()
    checked = 0
    for name in sorted(os.listdir(fixtures)):
        if not name.endswith((".h", ".cc")):
            continue
        checked += 1
        path = os.path.join(fixtures, name)
        raw, _ = lint.load_stripped(path)
        for bind, check in AuditDirectives(raw).expects:
            expected.add((name, bind + 1, check))
        auditor.audit_file(path, name)
    auditor.finish()
    actual = {(d.path, d.line, d.rule) for d in auditor.diags}
    failures = []
    for name, line, check in sorted(expected - actual):
        failures.append(
            f"{name}:{line}: expected [{check}] diagnostic was NOT "
            "produced -- the pass stopped firing")
    for name, line, check in sorted(actual - expected):
        msg = next(d.message for d in auditor.diags
                   if (d.path, d.line, d.rule) == (name, line, check))
        failures.append(
            f"{name}:{line}: unexpected [{check}] diagnostic: {msg}")
    for failure in failures:
        print(failure)
    if failures:
        print(f"atomics-audit: fixture mismatch ({len(failures)})",
              file=sys.stderr)
        return 1
    if checked == 0:
        print("atomics-audit: no fixture files found", file=sys.stderr)
        return 2
    print(f"atomics-audit: {checked} fixture(s) verified "
          f"({len(expected)} seeded diagnostics)", file=sys.stderr)
    return 0


def main():
    default_root = os.path.realpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    parser = argparse.ArgumentParser(
        prog="atomics-audit",
        description="prove atomic memory orders against protocol specs")
    parser.add_argument("--root", default=default_root,
                        help="repository root (default: two dirs up)")
    parser.add_argument("--build", default=None,
                        help="build dir; verifies scoped TUs appear in its "
                             "compile_commands.json (shared with the lint)")
    parser.add_argument("--specs", default=None,
                        help="protocol spec dir (default: "
                             "tools/analysis/protocols)")
    parser.add_argument("--json", default=None,
                        help="write the site/coverage report here")
    parser.add_argument("--min-sites", action="append", default=[],
                        metavar="PREFIX=N",
                        help="fail unless >= N sites extracted under PREFIX "
                             "(repeatable; pins extraction coverage)")
    parser.add_argument("--fixtures", default=None,
                        help="audit a seeded-violation fixture dir against "
                             "DIR/protocols and match expect-atomics "
                             "annotations exactly")
    args = parser.parse_args()
    if args.fixtures:
        sys.exit(run_fixtures(args))
    sys.exit(run_tree(args))


if __name__ == "__main__":
    main()
