#!/bin/sh
# clang-tidy over the files a change actually touched.
#
#   tools/lint/run_clang_tidy_changed.sh [base-ref] [build-dir]
#
# Diffs HEAD against base-ref (default: origin/main, falling back to HEAD~1),
# keeps the .cc/.h files under src/ that still exist, and runs clang-tidy
# with the repo's .clang-tidy profile against build-dir's
# compile_commands.json (default: build/). Exit 77 when clang-tidy is not
# installed — mirrors the negative-compile runner so local GCC-only setups
# skip instead of fail; CI's static-analysis job always has it.

set -u

base=${1:-}
build=${2:-build}
root=$(cd "$(dirname "$0")/../.." && pwd)

tidy=""
for candidate in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
                 clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    tidy=$candidate
    break
  fi
done
if [ -z "$tidy" ]; then
  echo "run_clang_tidy_changed: no clang-tidy found; skipping"
  exit 77
fi

if [ ! -f "$root/$build/compile_commands.json" ] && [ ! -f "$build/compile_commands.json" ]; then
  echo "run_clang_tidy_changed: no compile_commands.json under '$build'" \
       "— configure first (CMAKE_EXPORT_COMPILE_COMMANDS is the tree default)"
  exit 2
fi

if [ -z "$base" ]; then
  if git -C "$root" rev-parse --verify -q origin/main >/dev/null; then
    base=origin/main
  else
    base=HEAD~1
  fi
fi

# Git pathspec '*' crosses directory separators: these globs cover every
# src/ subtree (runtime, trace, task, ingress, sched, workload, ...), so a
# new subdirectory is tidied the moment its files land.
files=$(git -C "$root" diff --name-only --diff-filter=d "$base"...HEAD -- \
        'src/*.cc' 'src/*.h' 2>/dev/null || \
        git -C "$root" diff --name-only --diff-filter=d "$base" -- \
        'src/*.cc' 'src/*.h')
# Headers are covered via HeaderFilterRegex when their .cc is analyzed; run
# the tool on translation units only.
units=""
for f in $files; do
  case $f in
    *.cc) [ -f "$root/$f" ] && units="$units $root/$f" ;;
  esac
done

if [ -z "$units" ]; then
  echo "run_clang_tidy_changed: no changed translation units vs $base"
  exit 0
fi

echo "run_clang_tidy_changed: $tidy -p $build over:$units"
# shellcheck disable=SC2086
exec "$tidy" -p "$build" --quiet $units
