#!/usr/bin/env python3
"""optsched-lint -- concurrency-discipline checker for the optsched tree.

Enforces the locking/ordering rules that clang -Wthread-safety cannot
express (the analysis is structural, not semantic -- see
docs/static_analysis.md for the full rationale):

  atomic-memory-order    every std::atomic operation in src/runtime,
                         src/trace, src/ingress, src/task, and src/sched
                         spells its std::memory_order explicitly;
                         implicit operator forms (=, ++, +=) on known atomic
                         members are flagged too -- they are silent seq_cst.
  dual-lock-rank         DualLockGuard acquisition order comes from queue
                         indices (the machine-wide rank), never from
                         comparing lock addresses.
  seqlock-write-context  Seqlock<T>::Write is only called from functions that
                         are OPTSCHED_REQUIRES-annotated or follow the
                         *Locked naming convention -- the seqlock tolerates
                         torn reads, not torn writes.
  mc-hook-coverage       every raw std::atomic member in src/runtime,
                         src/ingress (mailbox and deal-channel sync state
                         included), src/task, and src/sched carries
                         a "// mc: kOp, ..." tag naming the
                         mc_hooks::SyncPoint / BlockUntil announcements that
                         cover it (announcements must exist in the same file
                         or its header/source sibling), so new synchronization
                         state cannot silently escape the model checker's
                         schedule exploration.
  hot-path-alloc         OPTSCHED_HOT_PATH function bodies contain no
                         allocation or container growth (operator new,
                         malloc/calloc/realloc, make_unique/make_shared,
                         push_back/emplace/resize/reserve/insert/append).

Suppressions: "// optsched-lint: allow(<rule>): <reason>" on the offending
line or on its own line directly above. The reason is mandatory; a
suppression without one is itself a diagnostic.

Tree mode (default):
    optsched_lint.py [--root DIR] [--build BUILDDIR] [files...]
With --build, compile_commands.json is loaded and every .cc under
src/runtime, src/trace, src/task, src/ingress, src/sched, and src/workload
must appear in it -- a translation unit that is not built is a translation
unit the lint (and -Wthread-safety) silently stopped covering.

Fixture mode:
    optsched_lint.py --fixtures DIR
Lints seeded-violation files with every rule (path scopes ignored) and
requires the produced diagnostics to match "// expect-lint: <rule>"
annotations exactly: a missing diagnostic means a rule stopped firing, an
unexpected one means a rule over-triggers. Used by ctest
(lint_fixtures_test) so that disabling any single rule fails CI.

Exit codes: 0 clean, 1 diagnostics (or fixture mismatch), 2 usage/setup
error.
"""

import argparse
import json
import os
import re
import sys

RULES = (
    "atomic-memory-order",
    "dual-lock-rank",
    "seqlock-write-context",
    "mc-hook-coverage",
    "hot-path-alloc",
)

# Tree-mode path scope per rule (prefix match on the repo-relative path).
RULE_SCOPES = {
    "atomic-memory-order": ("src/runtime/", "src/trace/", "src/ingress/",
                            "src/task/", "src/sched/"),
    "dual-lock-rank": ("src/",),
    "seqlock-write-context": ("src/",),
    "mc-hook-coverage": ("src/runtime/", "src/ingress/", "src/task/", "src/sched/"),
    "hot-path-alloc": ("src/",),
}

ALLOW_RE = re.compile(
    r"//\s*optsched-lint:\s*allow\((?P<rule>[a-z-]+)\)\s*:\s*(?P<reason>\S.*)")
MALFORMED_ALLOW_RE = re.compile(
    r"//\s*optsched-lint:\s*allow\((?P<rule>[a-z-]+)\)\s*:?\s*$")
MC_TAG_RE = re.compile(r"//\s*mc:\s*(?P<ops>k\w+(?:\s*,\s*k\w+)*)\s*$")
EXPECT_RE = re.compile(r"//\s*expect-lint:\s*(?P<rule>[a-z-]+)")

ATOMIC_OP_RE = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_or|fetch_and|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\(")
ATOMIC_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:alignas\([^)]*\)\s*)?"
    r"std::atomic<[^;&()]*>\s+(?P<name>\w+)\s*(?:\[[^\]]*\])?\s*"
    r"(?:\{[^;]*\})?\s*;")
DUAL_GUARD_RE = re.compile(r"\bDualLockGuard\b")
ADDRESS_CMP_RE = re.compile(
    r"&\s*[A-Za-z_][\w.\[\]]*(?:(?:->|\.)\w+(?:\(\))?)*\s*[<>]=?\s*&")
SEQ_WRITE_RE = re.compile(r"\.\s*Write\s*\(")
SYNC_ANNOUNCE_RE = re.compile(r"SyncOp::(k\w+)")
HOT_PATH_TOKEN = "OPTSCHED_HOT_PATH"

BANNED_ALLOC = (
    (re.compile(r"\bnew\b"), "operator new"),
    (re.compile(r"\b(?:std::)?(?:malloc|calloc|realloc)\s*\("), "C allocation"),
    (re.compile(r"\bmake_(?:unique|shared)\b"), "smart-pointer allocation"),
    (re.compile(
        r"\.\s*(push_back|emplace_back|emplace|resize|reserve|insert|append)"
        r"\s*\("), "container growth"),
)

# Keywords that open a block but are not function definitions.
NON_FUNCTION_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "do", "else", "try", "return",
    "namespace", "class", "struct", "enum", "union", "template", "using",
    "extern", "case", "default",
}
CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "return",
                    "sizeof", "decltype", "alignas", "static_assert"}


class Diagnostic:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(text):
    """Blanks comments and string/char literal contents, preserving line
    structure, so the rules never fire on prose or literals."""
    out = []
    i, n = 0, len(text)
    prev_code = ""  # last non-space emitted char (to tell 'c' from 1'000)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == '"' or (c == "'" and not (prev_code.isalnum() or
                                            prev_code == "_")):
            quote = c
            out.append(quote)
            i += 1
            while i < n:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                elif text[i] == quote:
                    out.append(quote)
                    i += 1
                    break
                elif text[i] == "\n":  # unterminated literal: give up politely
                    out.append("\n")
                    i += 1
                    break
                else:
                    out.append(" ")
                    i += 1
            prev_code = quote
        else:
            out.append(c)
            if not c.isspace():
                prev_code = c
            i += 1
    return "".join(out).split("\n")


class Directives:
    """Suppressions, mc tags and fixture expectations parsed from the raw
    (unstripped) source. A directive on its own comment line binds to the
    next line as well as its own."""

    def __init__(self, raw_lines):
        self.allow = {}    # 0-based line -> {rule: reason}
        self.mc_tags = {}  # 0-based line -> [ops]
        self.expects = []  # (0-based binding line, rule)
        self.malformed = []  # 0-based lines with reason-less suppressions
        for idx, line in enumerate(raw_lines):
            m = ALLOW_RE.search(line)
            if m:
                self.allow.setdefault(idx, {})[m.group("rule")] = \
                    m.group("reason")
            elif MALFORMED_ALLOW_RE.search(line):
                self.malformed.append(idx)
            m = MC_TAG_RE.search(line)
            if m:
                self.mc_tags[idx] = [op.strip()
                                     for op in m.group("ops").split(",")]
            m = EXPECT_RE.search(line)
            if m:
                standalone = line.lstrip().startswith("//")
                bind = idx + 1 if standalone else idx
                self.expects.append((bind, m.group("rule")))

    def suppressed(self, idx, rule):
        for at in (idx, idx - 1):
            if rule in self.allow.get(at, {}):
                return True
        return False

    def tag_for(self, idx):
        for at in (idx, idx - 1):
            if at in self.mc_tags:
                return self.mc_tags[at]
        return None


class Block:
    __slots__ = ("open_line", "close_line", "header", "name", "is_function",
                 "hot")

    def __init__(self, open_line, header):
        self.open_line = open_line
        self.close_line = None
        self.header = header
        self.name = ""
        self.is_function = False
        self.hot = HOT_PATH_TOKEN in header
        h = re.sub(r"\b(public|private|protected)\s*:", " ", header).strip()
        if "(" not in h:
            return
        first = re.match(r"[A-Za-z_~][\w]*", h)
        if first and first.group(0) in NON_FUNCTION_KEYWORDS:
            return
        if re.search(r"=\s*\[", h) or h.startswith("["):
            return  # lambda: transparent, the enclosing function owns it
        for m in re.finditer(r"([A-Za-z_~]\w*)\s*\(", h):
            if m.group(1) not in CONTROL_KEYWORDS:
                self.name = m.group(1)
                self.is_function = True
                return


def scan_blocks(stripped_lines):
    """Single pass over the stripped source: brace matching plus block-header
    classification. Returns line_funcs, where line_funcs[i] is the innermost
    *function* Block alive at any point during line i (None at file scope)."""
    line_funcs = [None] * len(stripped_lines)
    stack = []
    header = []

    def innermost_function():
        for block in reversed(stack):
            if block.is_function:
                return block
        return None

    for idx, line in enumerate(stripped_lines):
        best = innermost_function()
        if line.lstrip().startswith("#"):
            line_funcs[idx] = best
            continue  # preprocessor lines neither open blocks nor belong
        for c in line:
            if c == "{":
                stack.append(Block(idx, "".join(header)))
                header = []
                cand = innermost_function()
                if cand is not None:
                    best = cand
            elif c == "}":
                if stack:
                    stack.pop().close_line = idx
                header = []
            elif c == ";":
                header = []
            else:
                header.append(c)
        header.append(" ")  # line break inside a multi-line signature
        line_funcs[idx] = best
    return line_funcs


def paren_args(stripped_lines, idx, start_col, max_span=6):
    """Text from the '(' at/after start_col on line idx to its matching ')',
    spanning up to max_span lines. Empty string if unbalanced."""
    depth = 0
    collected = []
    for j in range(idx, min(idx + max_span, len(stripped_lines))):
        line = stripped_lines[j]
        col = start_col if j == idx else 0
        for k in range(col, len(line)):
            c = line[k]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    collected.append(line[col:k + 1])
                    return "\n".join(collected)
        collected.append(line[col:])
    return ""


def load_stripped(path):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    raw = text.split("\n")
    return raw, strip_code(text)


def sibling_of(path):
    if path.endswith(".h"):
        return path[:-2] + ".cc"
    if path.endswith(".cc"):
        return path[:-3] + ".h"
    return None


def announced_ops(path, stripped_lines):
    """SyncOp enumerators announced (SyncPoint/BlockUntil) in this file or
    its header/source sibling."""
    ops = set(SYNC_ANNOUNCE_RE.findall("\n".join(stripped_lines)))
    sib = sibling_of(path)
    if sib and os.path.exists(sib):
        _, sib_stripped = load_stripped(sib)
        ops |= set(SYNC_ANNOUNCE_RE.findall("\n".join(sib_stripped)))
    return ops


def declared_sync_ops(root):
    """Valid SyncOp enumerators from src/runtime/mc_hooks.h (None when the
    header is absent, e.g. fixture self-tests)."""
    path = os.path.join(root, "src", "runtime", "mc_hooks.h")
    if not os.path.exists(path):
        return None
    _, stripped = load_stripped(path)
    text = "\n".join(stripped)
    m = re.search(r"enum\s+class\s+SyncOp[^{]*\{(?P<body>[^}]*)\}", text)
    if not m:
        return None
    return set(re.findall(r"\bk\w+", m.group("body")))


def atomic_member_names(raw_lines, stripped_lines, path):
    names = set()
    for line in stripped_lines:
        m = ATOMIC_MEMBER_RE.match(line)
        if m:
            names.add(m.group("name"))
    sib = sibling_of(path)
    if sib and os.path.exists(sib):
        _, sib_stripped = load_stripped(sib)
        for line in sib_stripped:
            m = ATOMIC_MEMBER_RE.match(line)
            if m:
                names.add(m.group("name"))
    return names


# ---------------------------------------------------------------------------
# Rules. Each takes a Context and appends Diagnostics.
# ---------------------------------------------------------------------------

class Context:
    def __init__(self, path, rel, root):
        self.path = path
        self.rel = rel
        self.root = root
        self.raw, self.stripped = load_stripped(path)
        self.directives = Directives(self.raw)
        self.line_funcs = scan_blocks(self.stripped)
        self.diags = []

    def report(self, idx, rule, message):
        if not self.directives.suppressed(idx, rule):
            self.diags.append(Diagnostic(self.rel, idx + 1, rule, message))


def count_top_level_orders(args):
    """memory_order tokens at paren depth 1 of an argument list. Orders
    inside nested calls (a fetch that feeds a store) sit at depth >= 2 and
    do not count for the outer op."""
    count = 0
    depth = 0
    i, n = 0, len(args)
    token = "memory_order_"
    while i < n:
        c = args[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
        elif (depth == 1 and args.startswith(token, i) and
              (i == 0 or not (args[i - 1].isalnum() or args[i - 1] == "_"))):
            count += 1
            i += len(token)
            continue
        i += 1
    return count


def rule_atomic_memory_order(ctx):
    for idx, line in enumerate(ctx.stripped):
        for m in ATOMIC_OP_RE.finditer(line):
            op = m.group(1)
            args = paren_args(ctx.stripped, idx, m.end() - 1)
            n = count_top_level_orders(args)
            if n == 0:
                ctx.report(idx, "atomic-memory-order",
                           f"atomic {op}() without an explicit "
                           "std::memory_order argument (implicit seq_cst)")
            elif op.startswith("compare_exchange") and n < 2:
                ctx.report(idx, "atomic-memory-order",
                           f"atomic {op}() spells only the success order -- "
                           "the failure order is then derived implicitly; "
                           "spell both (the failure position is where "
                           "silent seq_cst->acquire downgrades hide)")
    names = atomic_member_names(ctx.raw, ctx.stripped, ctx.path)
    if names:
        op_re = re.compile(
            r"(?:\+\+|--)\s*(?P<pre>" + "|".join(map(re.escape, names)) +
            r")\b|\b(?P<name>" + "|".join(map(re.escape, names)) +
            r")\s*(?:\+\+|--|[+\-|&^]=|=(?!=))")
        for idx, line in enumerate(ctx.stripped):
            if ATOMIC_MEMBER_RE.match(line):
                continue  # the declaration itself ({0} initializers etc.)
            for m in op_re.finditer(line):
                var = m.group("pre") or m.group("name")
                ctx.report(idx, "atomic-memory-order",
                           f"implicit seq_cst operator on atomic '{var}' -- "
                           "use load/store/fetch_* with an explicit order")


def rule_dual_lock_rank(ctx):
    for idx, line in enumerate(ctx.stripped):
        if not DUAL_GUARD_RE.search(line):
            continue
        lo = max(0, idx - 10)
        hi = min(len(ctx.stripped), idx + 3)
        for j in range(lo, hi):
            if ADDRESS_CMP_RE.search(ctx.stripped[j]):
                ctx.report(idx, "dual-lock-rank",
                           "DualLockGuard ordered by comparing lock "
                           f"addresses (line {j + 1}); rank by queue index "
                           "-- the machine-wide order the proofs and the "
                           "model checker assume")
                break


def rule_seqlock_write_context(ctx):
    for idx, line in enumerate(ctx.stripped):
        if not SEQ_WRITE_RE.search(line):
            continue
        func = ctx.line_funcs[idx]
        if func is None:
            ctx.report(idx, "seqlock-write-context",
                       "Seqlock Write() outside any function body")
            continue
        if "OPTSCHED_REQUIRES" in func.header or func.name.endswith("Locked"):
            continue
        ctx.report(idx, "seqlock-write-context",
                   f"Seqlock Write() from '{func.name}', which is neither "
                   "OPTSCHED_REQUIRES-annotated nor *Locked -- writers must "
                   "hold the owning queue's lock")


def rule_mc_hook_coverage(ctx, valid_ops):
    announced = None  # computed lazily; most files have no atomic members
    for idx, line in enumerate(ctx.stripped):
        m = ATOMIC_MEMBER_RE.match(line)
        if not m:
            continue
        name = m.group("name")
        tag = ctx.directives.tag_for(idx)
        if tag is None:
            ctx.report(idx, "mc-hook-coverage",
                       f"atomic member '{name}' has no '// mc: kOp, ...' tag "
                       "naming its mc_hooks announcements (or an explicit "
                       "suppression) -- the model checker would not explore "
                       "schedules around it")
            continue
        if announced is None:
            announced = announced_ops(ctx.path, ctx.stripped)
        for op in tag:
            if valid_ops is not None and op not in valid_ops:
                ctx.report(idx, "mc-hook-coverage",
                           f"mc tag on '{name}' names '{op}', which is not a "
                           "mc_hooks::SyncOp enumerator")
            elif op not in announced:
                ctx.report(idx, "mc-hook-coverage",
                           f"mc tag on '{name}' names '{op}', but no "
                           "SyncPoint/BlockUntil announces it in this file "
                           "or its sibling")


def rule_hot_path_alloc(ctx):
    for idx, line in enumerate(ctx.stripped):
        func = ctx.line_funcs[idx]
        if func is None or not func.hot:
            continue
        for pattern, label in BANNED_ALLOC:
            m = pattern.search(line)
            if m:
                ctx.report(idx, "hot-path-alloc",
                           f"{label} in OPTSCHED_HOT_PATH function "
                           f"'{func.name}' -- the steal path is audited "
                           "allocation-free (D7); hoist the allocation or "
                           "justify it with a suppression")


def rule_suppression_hygiene(ctx):
    for idx in ctx.directives.malformed:
        ctx.diags.append(Diagnostic(
            ctx.rel, idx + 1, "suppression-syntax",
            "optsched-lint suppression without a reason -- write "
            "'// optsched-lint: allow(rule): why it is safe'"))
    for idx, rules in ctx.directives.allow.items():
        for rule in rules:
            if rule not in RULES:
                ctx.diags.append(Diagnostic(
                    ctx.rel, idx + 1, "suppression-syntax",
                    f"suppression names unknown rule '{rule}'"))


# ---------------------------------------------------------------------------
# Drivers.
# ---------------------------------------------------------------------------

def lint_file(path, rel, root, valid_ops, ignore_scopes=False):
    ctx = Context(path, rel, root)
    posix_rel = rel.replace(os.sep, "/")

    def in_scope(rule):
        return ignore_scopes or any(
            posix_rel.startswith(p) for p in RULE_SCOPES[rule])

    if in_scope("atomic-memory-order"):
        rule_atomic_memory_order(ctx)
    if in_scope("dual-lock-rank"):
        rule_dual_lock_rank(ctx)
    if in_scope("seqlock-write-context"):
        rule_seqlock_write_context(ctx)
    if in_scope("mc-hook-coverage"):
        rule_mc_hook_coverage(ctx, valid_ops)
    if in_scope("hot-path-alloc"):
        rule_hot_path_alloc(ctx)
    rule_suppression_hygiene(ctx)
    return ctx


def collect_tree_files(root):
    files = []
    src = os.path.join(root, "src")
    for dirpath, _, names in os.walk(src):
        for name in sorted(names):
            if name.endswith((".h", ".cc")):
                files.append(os.path.join(dirpath, name))
    return sorted(files)


def check_compile_commands(root, build):
    """Every runtime/trace translation unit must be in compile_commands.json;
    a TU that drops out of the build drops out of -Wthread-safety too."""
    diags = []
    cc_path = os.path.join(build, "compile_commands.json")
    if not os.path.exists(cc_path):
        print(f"optsched-lint: {cc_path} not found -- configure with "
              "CMAKE_EXPORT_COMPILE_COMMANDS=ON (the tree default)",
              file=sys.stderr)
        sys.exit(2)
    with open(cc_path, "r", encoding="utf-8") as f:
        entries = json.load(f)
    built = set()
    for entry in entries:
        built.add(os.path.realpath(
            os.path.join(entry.get("directory", "."), entry["file"])))
    for sub in ("src/runtime", "src/trace", "src/task", "src/ingress",
                "src/sched", "src/workload"):
        subdir = os.path.join(root, sub)
        if not os.path.isdir(subdir):
            continue
        for dirpath, _, names in os.walk(subdir):
            for name in sorted(names):
                if not name.endswith(".cc"):
                    continue
                full = os.path.realpath(os.path.join(dirpath, name))
                if full not in built:
                    rel = os.path.relpath(full, root)
                    diags.append(Diagnostic(
                        rel, 1, "compile-commands",
                        "translation unit missing from "
                        "compile_commands.json -- not built, so neither "
                        "-Wthread-safety nor the linters' build-backed "
                        "assumptions cover it"))
    return diags


def run_tree(args):
    root = os.path.realpath(args.root)
    valid_ops = declared_sync_ops(root)
    files = [os.path.realpath(f) for f in args.files] or \
        collect_tree_files(root)
    diags = []
    for path in files:
        rel = os.path.relpath(path, root)
        diags.extend(lint_file(path, rel, root, valid_ops).diags)
    if args.build:
        diags.extend(check_compile_commands(root, os.path.realpath(args.build)))
    for d in sorted(diags, key=lambda d: (d.path, d.line, d.rule)):
        print(d)
    if diags:
        print(f"optsched-lint: {len(diags)} diagnostic(s)", file=sys.stderr)
        return 1
    print(f"optsched-lint: {len(files)} file(s) clean", file=sys.stderr)
    return 0


def run_fixtures(args):
    fixtures = os.path.realpath(args.fixtures)
    if not os.path.isdir(fixtures):
        print(f"optsched-lint: fixture dir {fixtures} not found",
              file=sys.stderr)
        sys.exit(2)
    root = os.path.realpath(args.root)
    valid_ops = None  # fixtures declare fake ops; skip enumerator validation
    failures = []
    checked = 0
    for name in sorted(os.listdir(fixtures)):
        if not name.endswith((".h", ".cc")):
            continue
        checked += 1
        path = os.path.join(fixtures, name)
        ctx = lint_file(path, name, root, valid_ops, ignore_scopes=True)
        actual = {(d.line, d.rule) for d in ctx.diags}
        expected = {(bind + 1, rule) for bind, rule in ctx.directives.expects}
        for line, rule in sorted(expected - actual):
            failures.append(
                f"{name}:{line}: expected [{rule}] diagnostic was NOT "
                "produced -- the rule stopped firing")
        for line, rule in sorted(actual - expected):
            msg = next(d.message for d in ctx.diags
                       if (d.line, d.rule) == (line, rule))
            failures.append(
                f"{name}:{line}: unexpected [{rule}] diagnostic: {msg}")
    for failure in failures:
        print(failure)
    if failures:
        print(f"optsched-lint: fixture mismatch ({len(failures)})",
              file=sys.stderr)
        return 1
    if checked == 0:
        print("optsched-lint: no fixture files found", file=sys.stderr)
        return 2
    print(f"optsched-lint: {checked} fixture(s) verified", file=sys.stderr)
    return 0


def main():
    default_root = os.path.realpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    parser = argparse.ArgumentParser(
        prog="optsched-lint",
        description="concurrency-discipline checks beyond -Wthread-safety")
    parser.add_argument("--root", default=default_root,
                        help="repository root (default: two dirs up)")
    parser.add_argument("--build", default=None,
                        help="build dir; verifies runtime/trace TUs appear "
                             "in its compile_commands.json")
    parser.add_argument("--fixtures", default=None,
                        help="lint a seeded-violation fixture dir and match "
                             "expect-lint annotations exactly")
    parser.add_argument("files", nargs="*",
                        help="explicit files (default: all of src/)")
    args = parser.parse_args()
    if args.fixtures:
        sys.exit(run_fixtures(args))
    sys.exit(run_tree(args))


if __name__ == "__main__":
    main()
