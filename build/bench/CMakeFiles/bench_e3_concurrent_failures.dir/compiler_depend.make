# Empty compiler generated dependencies file for bench_e3_concurrent_failures.
# This may be replaced when dependencies are built.
