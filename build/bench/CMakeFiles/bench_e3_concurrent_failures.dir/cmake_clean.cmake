file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_concurrent_failures.dir/bench_e3_concurrent_failures.cc.o"
  "CMakeFiles/bench_e3_concurrent_failures.dir/bench_e3_concurrent_failures.cc.o.d"
  "bench_e3_concurrent_failures"
  "bench_e3_concurrent_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_concurrent_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
