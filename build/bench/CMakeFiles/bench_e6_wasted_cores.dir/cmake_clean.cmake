file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_wasted_cores.dir/bench_e6_wasted_cores.cc.o"
  "CMakeFiles/bench_e6_wasted_cores.dir/bench_e6_wasted_cores.cc.o.d"
  "bench_e6_wasted_cores"
  "bench_e6_wasted_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_wasted_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
