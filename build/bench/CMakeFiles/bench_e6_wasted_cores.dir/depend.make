# Empty dependencies file for bench_e6_wasted_cores.
# This may be replaced when dependencies are built.
