file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_dsl.dir/bench_e10_dsl.cc.o"
  "CMakeFiles/bench_e10_dsl.dir/bench_e10_dsl.cc.o.d"
  "bench_e10_dsl"
  "bench_e10_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
