
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e10_dsl.cc" "bench/CMakeFiles/bench_e10_dsl.dir/bench_e10_dsl.cc.o" "gcc" "bench/CMakeFiles/bench_e10_dsl.dir/bench_e10_dsl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/verify/CMakeFiles/optsched_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/optsched_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/optsched_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/optsched_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/optsched_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/optsched_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/optsched_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/optsched_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/optsched_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/optsched_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/optsched_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
