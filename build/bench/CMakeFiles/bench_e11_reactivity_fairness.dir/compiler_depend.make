# Empty compiler generated dependencies file for bench_e11_reactivity_fairness.
# This may be replaced when dependencies are built.
