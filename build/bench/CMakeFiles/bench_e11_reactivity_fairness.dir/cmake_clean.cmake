file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_reactivity_fairness.dir/bench_e11_reactivity_fairness.cc.o"
  "CMakeFiles/bench_e11_reactivity_fairness.dir/bench_e11_reactivity_fairness.cc.o.d"
  "bench_e11_reactivity_fairness"
  "bench_e11_reactivity_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_reactivity_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
