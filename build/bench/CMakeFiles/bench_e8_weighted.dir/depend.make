# Empty dependencies file for bench_e8_weighted.
# This may be replaced when dependencies are built.
