file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_weighted.dir/bench_e8_weighted.cc.o"
  "CMakeFiles/bench_e8_weighted.dir/bench_e8_weighted.cc.o.d"
  "bench_e8_weighted"
  "bench_e8_weighted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_weighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
