file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_lockfree_selection.dir/bench_e5_lockfree_selection.cc.o"
  "CMakeFiles/bench_e5_lockfree_selection.dir/bench_e5_lockfree_selection.cc.o.d"
  "bench_e5_lockfree_selection"
  "bench_e5_lockfree_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_lockfree_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
