# Empty dependencies file for bench_e5_lockfree_selection.
# This may be replaced when dependencies are built.
