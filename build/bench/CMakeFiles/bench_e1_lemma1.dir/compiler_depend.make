# Empty compiler generated dependencies file for bench_e1_lemma1.
# This may be replaced when dependencies are built.
