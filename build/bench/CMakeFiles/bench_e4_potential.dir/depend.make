# Empty dependencies file for bench_e4_potential.
# This may be replaced when dependencies are built.
