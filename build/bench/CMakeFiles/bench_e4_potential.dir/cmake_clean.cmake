file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_potential.dir/bench_e4_potential.cc.o"
  "CMakeFiles/bench_e4_potential.dir/bench_e4_potential.cc.o.d"
  "bench_e4_potential"
  "bench_e4_potential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
