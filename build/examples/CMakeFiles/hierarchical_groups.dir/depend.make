# Empty dependencies file for hierarchical_groups.
# This may be replaced when dependencies are built.
