file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_groups.dir/hierarchical_groups.cpp.o"
  "CMakeFiles/hierarchical_groups.dir/hierarchical_groups.cpp.o.d"
  "hierarchical_groups"
  "hierarchical_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
