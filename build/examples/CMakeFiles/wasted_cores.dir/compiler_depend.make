# Empty compiler generated dependencies file for wasted_cores.
# This may be replaced when dependencies are built.
