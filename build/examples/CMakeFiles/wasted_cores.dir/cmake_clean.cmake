file(REMOVE_RECURSE
  "CMakeFiles/wasted_cores.dir/wasted_cores.cpp.o"
  "CMakeFiles/wasted_cores.dir/wasted_cores.cpp.o.d"
  "wasted_cores"
  "wasted_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasted_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
