# Empty compiler generated dependencies file for numa_database.
# This may be replaced when dependencies are built.
