file(REMOVE_RECURSE
  "CMakeFiles/numa_database.dir/numa_database.cpp.o"
  "CMakeFiles/numa_database.dir/numa_database.cpp.o.d"
  "numa_database"
  "numa_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numa_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
