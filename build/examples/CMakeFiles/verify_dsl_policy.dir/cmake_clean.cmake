file(REMOVE_RECURSE
  "CMakeFiles/verify_dsl_policy.dir/verify_dsl_policy.cpp.o"
  "CMakeFiles/verify_dsl_policy.dir/verify_dsl_policy.cpp.o.d"
  "verify_dsl_policy"
  "verify_dsl_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_dsl_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
