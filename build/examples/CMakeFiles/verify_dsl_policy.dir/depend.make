# Empty dependencies file for verify_dsl_policy.
# This may be replaced when dependencies are built.
