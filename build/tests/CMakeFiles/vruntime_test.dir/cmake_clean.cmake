file(REMOVE_RECURSE
  "CMakeFiles/vruntime_test.dir/vruntime_test.cc.o"
  "CMakeFiles/vruntime_test.dir/vruntime_test.cc.o.d"
  "vruntime_test"
  "vruntime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vruntime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
