# Empty dependencies file for vruntime_test.
# This may be replaced when dependencies are built.
