# Empty dependencies file for verify_state_space_test.
# This may be replaced when dependencies are built.
