file(REMOVE_RECURSE
  "CMakeFiles/dsl_backend_test.dir/dsl_backend_test.cc.o"
  "CMakeFiles/dsl_backend_test.dir/dsl_backend_test.cc.o.d"
  "dsl_backend_test"
  "dsl_backend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
