# Empty dependencies file for dsl_backend_test.
# This may be replaced when dependencies are built.
