file(REMOVE_RECURSE
  "CMakeFiles/migration_cost_test.dir/migration_cost_test.cc.o"
  "CMakeFiles/migration_cost_test.dir/migration_cost_test.cc.o.d"
  "migration_cost_test"
  "migration_cost_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
