# Empty dependencies file for migration_cost_test.
# This may be replaced when dependencies are built.
