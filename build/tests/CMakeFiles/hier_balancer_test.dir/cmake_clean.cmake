file(REMOVE_RECURSE
  "CMakeFiles/hier_balancer_test.dir/hier_balancer_test.cc.o"
  "CMakeFiles/hier_balancer_test.dir/hier_balancer_test.cc.o.d"
  "hier_balancer_test"
  "hier_balancer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hier_balancer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
