# Empty dependencies file for hier_balancer_test.
# This may be replaced when dependencies are built.
