# Empty compiler generated dependencies file for verify_convergence_test.
# This may be replaced when dependencies are built.
