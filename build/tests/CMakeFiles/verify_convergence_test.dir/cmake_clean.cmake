file(REMOVE_RECURSE
  "CMakeFiles/verify_convergence_test.dir/verify_convergence_test.cc.o"
  "CMakeFiles/verify_convergence_test.dir/verify_convergence_test.cc.o.d"
  "verify_convergence_test"
  "verify_convergence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_convergence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
