# Empty dependencies file for verify_export_test.
# This may be replaced when dependencies are built.
