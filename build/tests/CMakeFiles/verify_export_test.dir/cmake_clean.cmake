file(REMOVE_RECURSE
  "CMakeFiles/verify_export_test.dir/verify_export_test.cc.o"
  "CMakeFiles/verify_export_test.dir/verify_export_test.cc.o.d"
  "verify_export_test"
  "verify_export_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
