file(REMOVE_RECURSE
  "CMakeFiles/newidle_test.dir/newidle_test.cc.o"
  "CMakeFiles/newidle_test.dir/newidle_test.cc.o.d"
  "newidle_test"
  "newidle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newidle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
