# Empty compiler generated dependencies file for newidle_test.
# This may be replaced when dependencies are built.
