file(REMOVE_RECURSE
  "CMakeFiles/sim_smoke_test.dir/sim_smoke_test.cc.o"
  "CMakeFiles/sim_smoke_test.dir/sim_smoke_test.cc.o.d"
  "sim_smoke_test"
  "sim_smoke_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
