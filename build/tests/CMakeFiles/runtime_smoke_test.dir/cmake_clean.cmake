file(REMOVE_RECURSE
  "CMakeFiles/runtime_smoke_test.dir/runtime_smoke_test.cc.o"
  "CMakeFiles/runtime_smoke_test.dir/runtime_smoke_test.cc.o.d"
  "runtime_smoke_test"
  "runtime_smoke_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
