file(REMOVE_RECURSE
  "CMakeFiles/verify_smoke_test.dir/verify_smoke_test.cc.o"
  "CMakeFiles/verify_smoke_test.dir/verify_smoke_test.cc.o.d"
  "verify_smoke_test"
  "verify_smoke_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
