file(REMOVE_RECURSE
  "CMakeFiles/verify_lemmas_test.dir/verify_lemmas_test.cc.o"
  "CMakeFiles/verify_lemmas_test.dir/verify_lemmas_test.cc.o.d"
  "verify_lemmas_test"
  "verify_lemmas_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_lemmas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
