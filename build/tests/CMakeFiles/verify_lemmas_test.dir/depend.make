# Empty dependencies file for verify_lemmas_test.
# This may be replaced when dependencies are built.
