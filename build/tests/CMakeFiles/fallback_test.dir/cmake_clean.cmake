file(REMOVE_RECURSE
  "CMakeFiles/fallback_test.dir/fallback_test.cc.o"
  "CMakeFiles/fallback_test.dir/fallback_test.cc.o.d"
  "fallback_test"
  "fallback_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fallback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
