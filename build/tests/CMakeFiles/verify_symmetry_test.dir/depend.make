# Empty dependencies file for verify_symmetry_test.
# This may be replaced when dependencies are built.
