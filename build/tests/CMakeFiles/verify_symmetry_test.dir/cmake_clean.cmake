file(REMOVE_RECURSE
  "CMakeFiles/verify_symmetry_test.dir/verify_symmetry_test.cc.o"
  "CMakeFiles/verify_symmetry_test.dir/verify_symmetry_test.cc.o.d"
  "verify_symmetry_test"
  "verify_symmetry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_symmetry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
