# Empty compiler generated dependencies file for dsl_smoke_test.
# This may be replaced when dependencies are built.
