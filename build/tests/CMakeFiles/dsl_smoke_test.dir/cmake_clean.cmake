file(REMOVE_RECURSE
  "CMakeFiles/dsl_smoke_test.dir/dsl_smoke_test.cc.o"
  "CMakeFiles/dsl_smoke_test.dir/dsl_smoke_test.cc.o.d"
  "dsl_smoke_test"
  "dsl_smoke_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
