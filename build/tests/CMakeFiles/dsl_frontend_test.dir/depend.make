# Empty dependencies file for dsl_frontend_test.
# This may be replaced when dependencies are built.
