file(REMOVE_RECURSE
  "CMakeFiles/dsl_frontend_test.dir/dsl_frontend_test.cc.o"
  "CMakeFiles/dsl_frontend_test.dir/dsl_frontend_test.cc.o.d"
  "dsl_frontend_test"
  "dsl_frontend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_frontend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
