file(REMOVE_RECURSE
  "CMakeFiles/executor_dynamic_test.dir/executor_dynamic_test.cc.o"
  "CMakeFiles/executor_dynamic_test.dir/executor_dynamic_test.cc.o.d"
  "executor_dynamic_test"
  "executor_dynamic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_dynamic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
