file(REMOVE_RECURSE
  "CMakeFiles/dsl_conditional_test.dir/dsl_conditional_test.cc.o"
  "CMakeFiles/dsl_conditional_test.dir/dsl_conditional_test.cc.o.d"
  "dsl_conditional_test"
  "dsl_conditional_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_conditional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
