# Empty dependencies file for dsl_conditional_test.
# This may be replaced when dependencies are built.
