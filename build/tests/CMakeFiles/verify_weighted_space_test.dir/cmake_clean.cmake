file(REMOVE_RECURSE
  "CMakeFiles/verify_weighted_space_test.dir/verify_weighted_space_test.cc.o"
  "CMakeFiles/verify_weighted_space_test.dir/verify_weighted_space_test.cc.o.d"
  "verify_weighted_space_test"
  "verify_weighted_space_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_weighted_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
