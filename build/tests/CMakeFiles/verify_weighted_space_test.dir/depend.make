# Empty dependencies file for verify_weighted_space_test.
# This may be replaced when dependencies are built.
