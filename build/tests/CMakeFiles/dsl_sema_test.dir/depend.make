# Empty dependencies file for dsl_sema_test.
# This may be replaced when dependencies are built.
