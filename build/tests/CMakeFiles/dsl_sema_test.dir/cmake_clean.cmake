file(REMOVE_RECURSE
  "CMakeFiles/dsl_sema_test.dir/dsl_sema_test.cc.o"
  "CMakeFiles/dsl_sema_test.dir/dsl_sema_test.cc.o.d"
  "dsl_sema_test"
  "dsl_sema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_sema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
