# Empty dependencies file for optsched_trace.
# This may be replaced when dependencies are built.
