file(REMOVE_RECURSE
  "liboptsched_trace.a"
)
