file(REMOVE_RECURSE
  "CMakeFiles/optsched_trace.dir/accounting.cc.o"
  "CMakeFiles/optsched_trace.dir/accounting.cc.o.d"
  "CMakeFiles/optsched_trace.dir/trace.cc.o"
  "CMakeFiles/optsched_trace.dir/trace.cc.o.d"
  "liboptsched_trace.a"
  "liboptsched_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optsched_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
