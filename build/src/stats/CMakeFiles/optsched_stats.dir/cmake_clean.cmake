file(REMOVE_RECURSE
  "CMakeFiles/optsched_stats.dir/histogram.cc.o"
  "CMakeFiles/optsched_stats.dir/histogram.cc.o.d"
  "CMakeFiles/optsched_stats.dir/summary.cc.o"
  "CMakeFiles/optsched_stats.dir/summary.cc.o.d"
  "liboptsched_stats.a"
  "liboptsched_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optsched_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
