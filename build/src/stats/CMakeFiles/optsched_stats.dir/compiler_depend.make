# Empty compiler generated dependencies file for optsched_stats.
# This may be replaced when dependencies are built.
