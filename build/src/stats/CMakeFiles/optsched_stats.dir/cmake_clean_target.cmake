file(REMOVE_RECURSE
  "liboptsched_stats.a"
)
