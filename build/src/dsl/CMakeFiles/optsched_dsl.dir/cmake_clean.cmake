file(REMOVE_RECURSE
  "CMakeFiles/optsched_dsl.dir/ast.cc.o"
  "CMakeFiles/optsched_dsl.dir/ast.cc.o.d"
  "CMakeFiles/optsched_dsl.dir/codegen.cc.o"
  "CMakeFiles/optsched_dsl.dir/codegen.cc.o.d"
  "CMakeFiles/optsched_dsl.dir/compile.cc.o"
  "CMakeFiles/optsched_dsl.dir/compile.cc.o.d"
  "CMakeFiles/optsched_dsl.dir/interp.cc.o"
  "CMakeFiles/optsched_dsl.dir/interp.cc.o.d"
  "CMakeFiles/optsched_dsl.dir/lexer.cc.o"
  "CMakeFiles/optsched_dsl.dir/lexer.cc.o.d"
  "CMakeFiles/optsched_dsl.dir/parser.cc.o"
  "CMakeFiles/optsched_dsl.dir/parser.cc.o.d"
  "CMakeFiles/optsched_dsl.dir/sema.cc.o"
  "CMakeFiles/optsched_dsl.dir/sema.cc.o.d"
  "liboptsched_dsl.a"
  "liboptsched_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optsched_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
