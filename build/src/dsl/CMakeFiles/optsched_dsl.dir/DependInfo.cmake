
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsl/ast.cc" "src/dsl/CMakeFiles/optsched_dsl.dir/ast.cc.o" "gcc" "src/dsl/CMakeFiles/optsched_dsl.dir/ast.cc.o.d"
  "/root/repo/src/dsl/codegen.cc" "src/dsl/CMakeFiles/optsched_dsl.dir/codegen.cc.o" "gcc" "src/dsl/CMakeFiles/optsched_dsl.dir/codegen.cc.o.d"
  "/root/repo/src/dsl/compile.cc" "src/dsl/CMakeFiles/optsched_dsl.dir/compile.cc.o" "gcc" "src/dsl/CMakeFiles/optsched_dsl.dir/compile.cc.o.d"
  "/root/repo/src/dsl/interp.cc" "src/dsl/CMakeFiles/optsched_dsl.dir/interp.cc.o" "gcc" "src/dsl/CMakeFiles/optsched_dsl.dir/interp.cc.o.d"
  "/root/repo/src/dsl/lexer.cc" "src/dsl/CMakeFiles/optsched_dsl.dir/lexer.cc.o" "gcc" "src/dsl/CMakeFiles/optsched_dsl.dir/lexer.cc.o.d"
  "/root/repo/src/dsl/parser.cc" "src/dsl/CMakeFiles/optsched_dsl.dir/parser.cc.o" "gcc" "src/dsl/CMakeFiles/optsched_dsl.dir/parser.cc.o.d"
  "/root/repo/src/dsl/sema.cc" "src/dsl/CMakeFiles/optsched_dsl.dir/sema.cc.o" "gcc" "src/dsl/CMakeFiles/optsched_dsl.dir/sema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/optsched_base.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/optsched_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/optsched_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/optsched_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
