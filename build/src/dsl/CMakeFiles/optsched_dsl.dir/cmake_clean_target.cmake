file(REMOVE_RECURSE
  "liboptsched_dsl.a"
)
