# Empty compiler generated dependencies file for optsched_dsl.
# This may be replaced when dependencies are built.
