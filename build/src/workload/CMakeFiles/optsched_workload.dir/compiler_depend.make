# Empty compiler generated dependencies file for optsched_workload.
# This may be replaced when dependencies are built.
