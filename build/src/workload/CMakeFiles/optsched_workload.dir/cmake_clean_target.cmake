file(REMOVE_RECURSE
  "liboptsched_workload.a"
)
