file(REMOVE_RECURSE
  "CMakeFiles/optsched_workload.dir/replay.cc.o"
  "CMakeFiles/optsched_workload.dir/replay.cc.o.d"
  "CMakeFiles/optsched_workload.dir/workloads.cc.o"
  "CMakeFiles/optsched_workload.dir/workloads.cc.o.d"
  "liboptsched_workload.a"
  "liboptsched_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optsched_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
