file(REMOVE_RECURSE
  "CMakeFiles/optsched_sim.dir/simulator.cc.o"
  "CMakeFiles/optsched_sim.dir/simulator.cc.o.d"
  "liboptsched_sim.a"
  "liboptsched_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optsched_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
