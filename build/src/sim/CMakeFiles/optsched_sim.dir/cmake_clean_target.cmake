file(REMOVE_RECURSE
  "liboptsched_sim.a"
)
