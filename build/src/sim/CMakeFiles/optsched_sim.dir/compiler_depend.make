# Empty compiler generated dependencies file for optsched_sim.
# This may be replaced when dependencies are built.
