file(REMOVE_RECURSE
  "liboptsched_verify.a"
)
