
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verify/audit.cc" "src/verify/CMakeFiles/optsched_verify.dir/audit.cc.o" "gcc" "src/verify/CMakeFiles/optsched_verify.dir/audit.cc.o.d"
  "/root/repo/src/verify/concurrency.cc" "src/verify/CMakeFiles/optsched_verify.dir/concurrency.cc.o" "gcc" "src/verify/CMakeFiles/optsched_verify.dir/concurrency.cc.o.d"
  "/root/repo/src/verify/convergence.cc" "src/verify/CMakeFiles/optsched_verify.dir/convergence.cc.o" "gcc" "src/verify/CMakeFiles/optsched_verify.dir/convergence.cc.o.d"
  "/root/repo/src/verify/lemmas.cc" "src/verify/CMakeFiles/optsched_verify.dir/lemmas.cc.o" "gcc" "src/verify/CMakeFiles/optsched_verify.dir/lemmas.cc.o.d"
  "/root/repo/src/verify/property.cc" "src/verify/CMakeFiles/optsched_verify.dir/property.cc.o" "gcc" "src/verify/CMakeFiles/optsched_verify.dir/property.cc.o.d"
  "/root/repo/src/verify/state_space.cc" "src/verify/CMakeFiles/optsched_verify.dir/state_space.cc.o" "gcc" "src/verify/CMakeFiles/optsched_verify.dir/state_space.cc.o.d"
  "/root/repo/src/verify/weighted_space.cc" "src/verify/CMakeFiles/optsched_verify.dir/weighted_space.cc.o" "gcc" "src/verify/CMakeFiles/optsched_verify.dir/weighted_space.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/optsched_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/optsched_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/optsched_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/optsched_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
