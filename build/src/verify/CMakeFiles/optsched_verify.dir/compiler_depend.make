# Empty compiler generated dependencies file for optsched_verify.
# This may be replaced when dependencies are built.
