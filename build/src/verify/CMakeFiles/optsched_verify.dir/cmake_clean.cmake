file(REMOVE_RECURSE
  "CMakeFiles/optsched_verify.dir/audit.cc.o"
  "CMakeFiles/optsched_verify.dir/audit.cc.o.d"
  "CMakeFiles/optsched_verify.dir/concurrency.cc.o"
  "CMakeFiles/optsched_verify.dir/concurrency.cc.o.d"
  "CMakeFiles/optsched_verify.dir/convergence.cc.o"
  "CMakeFiles/optsched_verify.dir/convergence.cc.o.d"
  "CMakeFiles/optsched_verify.dir/lemmas.cc.o"
  "CMakeFiles/optsched_verify.dir/lemmas.cc.o.d"
  "CMakeFiles/optsched_verify.dir/property.cc.o"
  "CMakeFiles/optsched_verify.dir/property.cc.o.d"
  "CMakeFiles/optsched_verify.dir/state_space.cc.o"
  "CMakeFiles/optsched_verify.dir/state_space.cc.o.d"
  "CMakeFiles/optsched_verify.dir/weighted_space.cc.o"
  "CMakeFiles/optsched_verify.dir/weighted_space.cc.o.d"
  "liboptsched_verify.a"
  "liboptsched_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optsched_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
