file(REMOVE_RECURSE
  "CMakeFiles/optsched_runtime.dir/concurrent_machine.cc.o"
  "CMakeFiles/optsched_runtime.dir/concurrent_machine.cc.o.d"
  "CMakeFiles/optsched_runtime.dir/executor.cc.o"
  "CMakeFiles/optsched_runtime.dir/executor.cc.o.d"
  "liboptsched_runtime.a"
  "liboptsched_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optsched_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
