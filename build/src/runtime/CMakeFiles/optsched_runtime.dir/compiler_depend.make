# Empty compiler generated dependencies file for optsched_runtime.
# This may be replaced when dependencies are built.
