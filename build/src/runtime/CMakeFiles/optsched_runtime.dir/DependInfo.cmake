
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/concurrent_machine.cc" "src/runtime/CMakeFiles/optsched_runtime.dir/concurrent_machine.cc.o" "gcc" "src/runtime/CMakeFiles/optsched_runtime.dir/concurrent_machine.cc.o.d"
  "/root/repo/src/runtime/executor.cc" "src/runtime/CMakeFiles/optsched_runtime.dir/executor.cc.o" "gcc" "src/runtime/CMakeFiles/optsched_runtime.dir/executor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/optsched_base.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/optsched_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/optsched_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/optsched_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/optsched_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
