file(REMOVE_RECURSE
  "liboptsched_runtime.a"
)
