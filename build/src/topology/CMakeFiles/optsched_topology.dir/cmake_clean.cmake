file(REMOVE_RECURSE
  "CMakeFiles/optsched_topology.dir/domains.cc.o"
  "CMakeFiles/optsched_topology.dir/domains.cc.o.d"
  "CMakeFiles/optsched_topology.dir/topology.cc.o"
  "CMakeFiles/optsched_topology.dir/topology.cc.o.d"
  "liboptsched_topology.a"
  "liboptsched_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optsched_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
