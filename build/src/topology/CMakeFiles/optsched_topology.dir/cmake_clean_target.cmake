file(REMOVE_RECURSE
  "liboptsched_topology.a"
)
