# Empty dependencies file for optsched_topology.
# This may be replaced when dependencies are built.
