file(REMOVE_RECURSE
  "liboptsched_base.a"
)
