# Empty dependencies file for optsched_base.
# This may be replaced when dependencies are built.
