file(REMOVE_RECURSE
  "CMakeFiles/optsched_base.dir/check.cc.o"
  "CMakeFiles/optsched_base.dir/check.cc.o.d"
  "CMakeFiles/optsched_base.dir/rng.cc.o"
  "CMakeFiles/optsched_base.dir/rng.cc.o.d"
  "CMakeFiles/optsched_base.dir/str.cc.o"
  "CMakeFiles/optsched_base.dir/str.cc.o.d"
  "liboptsched_base.a"
  "liboptsched_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optsched_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
