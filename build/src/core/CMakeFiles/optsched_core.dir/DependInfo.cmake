
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/balancer.cc" "src/core/CMakeFiles/optsched_core.dir/balancer.cc.o" "gcc" "src/core/CMakeFiles/optsched_core.dir/balancer.cc.o.d"
  "/root/repo/src/core/conservation.cc" "src/core/CMakeFiles/optsched_core.dir/conservation.cc.o" "gcc" "src/core/CMakeFiles/optsched_core.dir/conservation.cc.o.d"
  "/root/repo/src/core/hier_balancer.cc" "src/core/CMakeFiles/optsched_core.dir/hier_balancer.cc.o" "gcc" "src/core/CMakeFiles/optsched_core.dir/hier_balancer.cc.o.d"
  "/root/repo/src/core/policies/broken.cc" "src/core/CMakeFiles/optsched_core.dir/policies/broken.cc.o" "gcc" "src/core/CMakeFiles/optsched_core.dir/policies/broken.cc.o.d"
  "/root/repo/src/core/policies/cfs_like.cc" "src/core/CMakeFiles/optsched_core.dir/policies/cfs_like.cc.o" "gcc" "src/core/CMakeFiles/optsched_core.dir/policies/cfs_like.cc.o.d"
  "/root/repo/src/core/policies/fallback.cc" "src/core/CMakeFiles/optsched_core.dir/policies/fallback.cc.o" "gcc" "src/core/CMakeFiles/optsched_core.dir/policies/fallback.cc.o.d"
  "/root/repo/src/core/policies/hierarchical.cc" "src/core/CMakeFiles/optsched_core.dir/policies/hierarchical.cc.o" "gcc" "src/core/CMakeFiles/optsched_core.dir/policies/hierarchical.cc.o.d"
  "/root/repo/src/core/policies/locality.cc" "src/core/CMakeFiles/optsched_core.dir/policies/locality.cc.o" "gcc" "src/core/CMakeFiles/optsched_core.dir/policies/locality.cc.o.d"
  "/root/repo/src/core/policies/registry.cc" "src/core/CMakeFiles/optsched_core.dir/policies/registry.cc.o" "gcc" "src/core/CMakeFiles/optsched_core.dir/policies/registry.cc.o.d"
  "/root/repo/src/core/policies/thread_count.cc" "src/core/CMakeFiles/optsched_core.dir/policies/thread_count.cc.o" "gcc" "src/core/CMakeFiles/optsched_core.dir/policies/thread_count.cc.o.d"
  "/root/repo/src/core/policies/weighted.cc" "src/core/CMakeFiles/optsched_core.dir/policies/weighted.cc.o" "gcc" "src/core/CMakeFiles/optsched_core.dir/policies/weighted.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/core/CMakeFiles/optsched_core.dir/policy.cc.o" "gcc" "src/core/CMakeFiles/optsched_core.dir/policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/optsched_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/optsched_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/optsched_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
