# Empty dependencies file for optsched_core.
# This may be replaced when dependencies are built.
