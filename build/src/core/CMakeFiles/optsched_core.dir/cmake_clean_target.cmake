file(REMOVE_RECURSE
  "liboptsched_core.a"
)
