file(REMOVE_RECURSE
  "CMakeFiles/optsched_core.dir/balancer.cc.o"
  "CMakeFiles/optsched_core.dir/balancer.cc.o.d"
  "CMakeFiles/optsched_core.dir/conservation.cc.o"
  "CMakeFiles/optsched_core.dir/conservation.cc.o.d"
  "CMakeFiles/optsched_core.dir/hier_balancer.cc.o"
  "CMakeFiles/optsched_core.dir/hier_balancer.cc.o.d"
  "CMakeFiles/optsched_core.dir/policies/broken.cc.o"
  "CMakeFiles/optsched_core.dir/policies/broken.cc.o.d"
  "CMakeFiles/optsched_core.dir/policies/cfs_like.cc.o"
  "CMakeFiles/optsched_core.dir/policies/cfs_like.cc.o.d"
  "CMakeFiles/optsched_core.dir/policies/fallback.cc.o"
  "CMakeFiles/optsched_core.dir/policies/fallback.cc.o.d"
  "CMakeFiles/optsched_core.dir/policies/hierarchical.cc.o"
  "CMakeFiles/optsched_core.dir/policies/hierarchical.cc.o.d"
  "CMakeFiles/optsched_core.dir/policies/locality.cc.o"
  "CMakeFiles/optsched_core.dir/policies/locality.cc.o.d"
  "CMakeFiles/optsched_core.dir/policies/registry.cc.o"
  "CMakeFiles/optsched_core.dir/policies/registry.cc.o.d"
  "CMakeFiles/optsched_core.dir/policies/thread_count.cc.o"
  "CMakeFiles/optsched_core.dir/policies/thread_count.cc.o.d"
  "CMakeFiles/optsched_core.dir/policies/weighted.cc.o"
  "CMakeFiles/optsched_core.dir/policies/weighted.cc.o.d"
  "CMakeFiles/optsched_core.dir/policy.cc.o"
  "CMakeFiles/optsched_core.dir/policy.cc.o.d"
  "liboptsched_core.a"
  "liboptsched_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optsched_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
