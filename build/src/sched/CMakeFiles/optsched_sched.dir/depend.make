# Empty dependencies file for optsched_sched.
# This may be replaced when dependencies are built.
