
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/core_state.cc" "src/sched/CMakeFiles/optsched_sched.dir/core_state.cc.o" "gcc" "src/sched/CMakeFiles/optsched_sched.dir/core_state.cc.o.d"
  "/root/repo/src/sched/machine_state.cc" "src/sched/CMakeFiles/optsched_sched.dir/machine_state.cc.o" "gcc" "src/sched/CMakeFiles/optsched_sched.dir/machine_state.cc.o.d"
  "/root/repo/src/sched/task.cc" "src/sched/CMakeFiles/optsched_sched.dir/task.cc.o" "gcc" "src/sched/CMakeFiles/optsched_sched.dir/task.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/optsched_base.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/optsched_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
