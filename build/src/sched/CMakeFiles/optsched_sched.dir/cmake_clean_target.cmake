file(REMOVE_RECURSE
  "liboptsched_sched.a"
)
