file(REMOVE_RECURSE
  "CMakeFiles/optsched_sched.dir/core_state.cc.o"
  "CMakeFiles/optsched_sched.dir/core_state.cc.o.d"
  "CMakeFiles/optsched_sched.dir/machine_state.cc.o"
  "CMakeFiles/optsched_sched.dir/machine_state.cc.o.d"
  "CMakeFiles/optsched_sched.dir/task.cc.o"
  "CMakeFiles/optsched_sched.dir/task.cc.o.d"
  "liboptsched_sched.a"
  "liboptsched_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optsched_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
