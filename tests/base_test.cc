// Unit tests for src/base: deterministic RNG and string helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/base/rng.h"
#include "src/base/str.h"

namespace optsched {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (a.Next() == b.Next()) ? 1 : 0;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBelow(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInRangeInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  const double rate = 0.25;  // mean 4
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextExponential(rate);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, ZipfSkewsTowardSmallKeys) {
  Rng rng(17);
  uint64_t low = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = rng.NextZipf(100, 1.0);
    ASSERT_LT(v, 100u);
    low += (v < 10) ? 1 : 0;
  }
  // With s=1 the first 10 of 100 keys get well over a third of the mass.
  EXPECT_GT(low, static_cast<uint64_t>(n) / 3);
}

TEST(Rng, ZipfZeroSkewIsUniformish) {
  Rng rng(19);
  uint64_t low = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    low += (rng.NextZipf(100, 0.0) < 10) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.10, 0.03);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(123);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (parent.Next() == child.Next()) ? 1 : 0;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(29);
  std::vector<uint32_t> v{0, 1, 2, 3, 4, 5, 6, 7};
  rng.Shuffle(v);
  std::set<uint32_t> seen(v.begin(), v.end());
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Str, StrFormatBasics) {
  EXPECT_EQ(StrFormat("x=%d y=%s", 5, "ok"), "x=5 y=ok");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(Str, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(Str, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(Str, StartsWith) {
  EXPECT_TRUE(StartsWith("thread-count", "thread"));
  EXPECT_FALSE(StartsWith("thread", "thread-count"));
}

TEST(Str, RenderTableAlignsColumns) {
  const std::string table =
      RenderTable({"name", "n"}, {{"alpha", "1"}, {"b", "100"}});
  EXPECT_NE(table.find("| alpha | 1   |"), std::string::npos) << table;
  EXPECT_NE(table.find("| b     | 100 |"), std::string::npos) << table;
}

}  // namespace
}  // namespace optsched
