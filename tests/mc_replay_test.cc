// Schedule serialization, record/replay round-trips, the committed golden
// counterexample, and the Chrome-trace export of executions.

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/mc/explorer.h"
#include "src/mc/harness.h"
#include "src/mc/schedule.h"
#include "src/mc/trace_export.h"

#if defined(__SANITIZE_THREAD__)
#define OPTSCHED_MC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define OPTSCHED_MC_TSAN 1
#endif
#endif

#ifdef OPTSCHED_MC_TSAN
#define MC_SKIP_UNDER_TSAN() GTEST_SKIP() << "ucontext fibers are not supported under TSan"
#else
#define MC_SKIP_UNDER_TSAN() (void)0
#endif

#ifndef MC_GOLDEN_DIR
#define MC_GOLDEN_DIR "tests/golden"
#endif

namespace optsched::mc {
namespace {

TEST(ScheduleJsonTest, RoundTripsAllFields) {
  Schedule schedule;
  schedule.harness = "balance";
  schedule.policy = "broken-cansteal";
  schedule.initial_loads = {0, 1, 2};
  schedule.attempts_per_worker = 3;
  schedule.seed = 12345;
  schedule.recheck = false;
  schedule.property = "bounded-steals";
  schedule.note = "5 successful steals > d0/2 = 4";
  schedule.choices = {0, 0, 1, 2, 1, 2, 0};

  const std::string json = schedule.ToJson();
  const std::optional<Schedule> parsed = Schedule::FromJson(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, schedule);
}

TEST(ScheduleJsonTest, EscapesStringsAndSurvivesEmptyArrays) {
  Schedule schedule;
  schedule.initial_loads = {1};
  schedule.note = "a \"quoted\" note\nwith a newline and a \\ backslash";
  schedule.choices = {};
  const std::optional<Schedule> parsed = Schedule::FromJson(schedule.ToJson());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, schedule);
}

TEST(ScheduleJsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(Schedule::FromJson("").has_value());
  EXPECT_FALSE(Schedule::FromJson("{").has_value());
  EXPECT_FALSE(Schedule::FromJson("[]").has_value());
  EXPECT_FALSE(Schedule::FromJson("{}").has_value());  // missing required fields
  EXPECT_FALSE(Schedule::FromJson(R"({"harness": "balance"})").has_value());
}

TEST(ReplayTest, RecordedExecutionReplaysToIdenticalEventStream) {
  MC_SKIP_UNDER_TSAN();
  StealHarness::Config config;
  config.mode = "balance";
  config.policy = "thread-count";
  config.initial_loads = {0, 2, 2};
  config.attempts_per_worker = 2;
  StealHarness harness(config);

  // Record under PCT (an adversarial-ish sampler), then replay the choices.
  PctStrategy pct(3, 128, 2, 7);
  Scheduler scheduler;
  const ExecutionResult recorded = scheduler.Run(harness.MakeBodies(), pct);
  const ExecutionResult replayed = ReplayChoices(harness.Factory(), recorded.choices);
  EXPECT_EQ(recorded.choices, replayed.choices);
  EXPECT_EQ(recorded.events, replayed.events);
  EXPECT_EQ(recorded.preemptions, replayed.preemptions);
}

TEST(ReplayTest, ScheduleCarriesHarnessIdentity) {
  MC_SKIP_UNDER_TSAN();
  StealHarness::Config config;
  config.mode = "balance";
  config.policy = "thread-count";
  config.initial_loads = {0, 2};
  config.attempts_per_worker = 1;
  StealHarness harness(config);
  const Schedule schedule = harness.MakeSchedule({0, 1, 0});
  const StealHarness::Config round = StealHarness::Config::FromSchedule(schedule);
  EXPECT_EQ(round.mode, config.mode);
  EXPECT_EQ(round.policy, config.policy);
  EXPECT_EQ(round.initial_loads, config.initial_loads);
  EXPECT_EQ(round.attempts_per_worker, config.attempts_per_worker);
  EXPECT_EQ(round.recheck, config.recheck);
}

TEST(ReplayGoldenTest, CommittedBrokenCounterexampleStillViolates) {
  MC_SKIP_UNDER_TSAN();
  const std::string path = std::string(MC_GOLDEN_DIR) + "/mc_broken_minimized.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  const std::optional<Schedule> schedule = Schedule::FromJson(content);
  ASSERT_TRUE(schedule.has_value());
  // Serialization is byte-stable: re-emitting the parsed schedule reproduces
  // the committed file.
  EXPECT_EQ(schedule->ToJson(), content);
  EXPECT_EQ(schedule->property, "bounded-steals");

  StealHarness harness(StealHarness::Config::FromSchedule(*schedule));
  const ExecutionResult result = ReplayChoices(harness.Factory(), schedule->choices);
  EXPECT_EQ(result.choices, schedule->choices);  // no divergence

  bool violated = false;
  for (const PropertyReport& report : harness.Evaluate(result)) {
    if (report.name == "bounded-steals" && !report.holds) {
      violated = true;
    }
  }
  EXPECT_TRUE(violated) << "golden counterexample no longer violates bounded-steals";
}

TEST(ReplayGoldenTest, CommittedBrokenBatchBoundStillIdlesItsVictim) {
  MC_SKIP_UNDER_TSAN();
  const std::string path = std::string(MC_GOLDEN_DIR) + "/mc_broken_batch_minimized.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  const std::optional<Schedule> schedule = Schedule::FromJson(content);
  ASSERT_TRUE(schedule.has_value());
  EXPECT_EQ(schedule->ToJson(), content);
  EXPECT_TRUE(schedule->break_batch_bound);
  EXPECT_EQ(schedule->property, "steal-safety");

  StealHarness harness(StealHarness::Config::FromSchedule(*schedule));
  const ExecutionResult result = ReplayChoices(harness.Factory(), schedule->choices);
  EXPECT_EQ(result.choices, schedule->choices);

  bool violated = false;
  for (const PropertyReport& report : harness.Evaluate(result)) {
    if (report.name == "steal-safety" && !report.holds) {
      violated = true;
    }
  }
  EXPECT_TRUE(violated) << "golden counterexample no longer violates steal-safety";
}

TEST(ReplayGoldenTest, CommittedBrokenChaseLevOrderStillLosesAnItem) {
  MC_SKIP_UNDER_TSAN();
  // The broken-memory-order golden: a thief reading bottom before top (no
  // fence) pairs a stale bottom with a fresh top and claims a slot the owner
  // already executed. The double-claim shows up twice: the published depth
  // underflows (published-depth) and the item multiset gains a duplicate
  // (no-lost-items). The same sweep with the correct ordering is clean.
  const std::string path = std::string(MC_GOLDEN_DIR) + "/mc_broken_chaselev_minimized.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  const std::optional<Schedule> schedule = Schedule::FromJson(content);
  ASSERT_TRUE(schedule.has_value());
  EXPECT_EQ(schedule->ToJson(), content);
  EXPECT_EQ(schedule->backend, "chase_lev");
  EXPECT_TRUE(schedule->broken_steal_order);
  EXPECT_EQ(schedule->property, "published-depth");

  StealHarness harness(StealHarness::Config::FromSchedule(*schedule));
  const ExecutionResult result = ReplayChoices(harness.Factory(), schedule->choices);
  EXPECT_EQ(result.choices, schedule->choices);

  bool depth_violated = false;
  bool conservation_violated = false;
  for (const PropertyReport& report : harness.Evaluate(result)) {
    if (report.name == "published-depth" && !report.holds) {
      depth_violated = true;
    }
    if (report.name == "no-lost-items" && !report.holds) {
      conservation_violated = true;
    }
  }
  EXPECT_TRUE(depth_violated) << "golden no longer violates published-depth";
  EXPECT_TRUE(conservation_violated) << "golden no longer violates no-lost-items";
}

TEST(ReplayGoldenTest, CorrectChaseLevOrderSurvivesTheGoldenSchedule) {
  MC_SKIP_UNDER_TSAN();
  // The SAME schedule replayed against the correct memory ordering must be
  // clean: the violation is pinned on the ordering, not on the harness.
  const std::string path = std::string(MC_GOLDEN_DIR) + "/mc_broken_chaselev_minimized.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::optional<Schedule> schedule = Schedule::FromJson(buffer.str());
  ASSERT_TRUE(schedule.has_value());
  schedule->broken_steal_order = false;

  StealHarness harness(StealHarness::Config::FromSchedule(*schedule));
  const ExecutionResult result = ReplayChoices(harness.Factory(), schedule->choices);
  for (const PropertyReport& report : harness.Evaluate(result)) {
    EXPECT_TRUE(report.holds) << report.name << ": " << report.detail;
  }
}

TEST(ReplayGoldenTest, CommittedBrokenDealWindowStillLosesTheRefusedTail) {
  MC_SKIP_UNDER_TSAN();
  // The in-transit deal fault: the dealer's mailbox push is refused (peer's
  // deal mailbox full) and the broken dealer DROPS the refused tail of its
  // window instead of returning it to its own queue — one seeded item never
  // executes and never re-appears anywhere conservation can see it.
  const std::string path = std::string(MC_GOLDEN_DIR) + "/mc_broken_deal_window.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  const std::optional<Schedule> schedule = Schedule::FromJson(content);
  ASSERT_TRUE(schedule.has_value());
  EXPECT_EQ(schedule->ToJson(), content);
  EXPECT_EQ(schedule->harness, "deal");
  EXPECT_TRUE(schedule->broken_deal_window);
  EXPECT_EQ(schedule->property, "no-lost-dealt-items");

  StealHarness harness(StealHarness::Config::FromSchedule(*schedule));
  const ExecutionResult result = ReplayChoices(harness.Factory(), schedule->choices);
  EXPECT_EQ(result.choices, schedule->choices);

  bool violated = false;
  for (const PropertyReport& report : harness.Evaluate(result)) {
    if (report.name == "no-lost-dealt-items" && !report.holds) {
      violated = true;
    }
  }
  EXPECT_TRUE(violated) << "golden counterexample no longer violates no-lost-dealt-items";
}

TEST(ReplayGoldenTest, HealthyDealerSurvivesTheDealGoldenSchedule) {
  MC_SKIP_UNDER_TSAN();
  // The SAME schedule with the fault knob off must be clean: prefix
  // acceptance returns the refused tail to the dealer's queue, so the
  // violation is pinned on the drop, not on the refusal interleaving.
  const std::string path = std::string(MC_GOLDEN_DIR) + "/mc_broken_deal_window.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::optional<Schedule> schedule = Schedule::FromJson(buffer.str());
  ASSERT_TRUE(schedule.has_value());
  schedule->broken_deal_window = false;

  StealHarness harness(StealHarness::Config::FromSchedule(*schedule));
  const ExecutionResult result = ReplayChoices(harness.Factory(), schedule->choices);
  for (const PropertyReport& report : harness.Evaluate(result)) {
    EXPECT_TRUE(report.holds) << report.name << ": " << report.detail;
  }
}

TEST(McDealModeTest, DealRoundsAreExhaustivelyConservative) {
  MC_SKIP_UNDER_TSAN();
  // Bound-2 DFS over the deal protocol on both backends: every dealt item is
  // either drained by its recipient or still resident at exit (deal-or-steal
  // conservation), and the global item multiset is unchanged
  // (no-lost-dealt-items). Two workers keep the in-test sweep fast; CI runs
  // the 4-worker sweeps via simctl.
  for (const auto backend :
       {runtime::QueueBackend::kLocked, runtime::QueueBackend::kChaseLev}) {
    StealHarness::Config config;
    config.mode = "deal";
    config.policy = "thread-count";
    config.initial_loads = {4, 0};
    config.attempts_per_worker = 1;
    config.backend = backend;
    StealHarness harness(config);

    DfsExplorer::Options options;
    options.max_preemptions = 2;
    DfsExplorer explorer(options);
    const PropertyReport* violation = nullptr;
    std::vector<PropertyReport> reports;
    const ExploreStats stats = explorer.Explore(
        harness.Factory(), [&](const ExecutionResult& result, uint32_t) {
          reports = harness.Evaluate(result);
          violation = StealHarness::FirstViolation(reports);
          return violation == nullptr;
        });
    EXPECT_GT(stats.schedules_explored, 0u);
    EXPECT_EQ(stats.deadlocks, 0u);
    EXPECT_EQ(violation, nullptr)
        << runtime::QueueBackendName(backend) << ": " << (violation ? violation->name : "")
        << " — " << (violation ? violation->detail : "");
  }
}

TEST(McChaseLevTest, SizeOneTakeStealRaceIsExhaustivelyClean) {
  MC_SKIP_UNDER_TSAN();
  // The hardest corner of the deque: one item, the owner's PopBottom racing
  // a thief's top CAS. Drain mode makes both ends active (the owner pops to
  // execute, the idle worker steals); bound-2 DFS covers every interleaving
  // of the bottom store / fence / top CAS protocol, discharging that exactly
  // one side wins, nothing is lost, and the accounting stays exact.
  for (const std::vector<int64_t>& loads :
       {std::vector<int64_t>{1, 0}, std::vector<int64_t>{1, 1}}) {
    StealHarness::Config config;
    config.mode = "drain";
    config.policy = "thread-count";
    config.initial_loads = loads;
    config.attempts_per_worker = 2;
    config.backend = runtime::QueueBackend::kChaseLev;
    StealHarness harness(config);

    DfsExplorer::Options options;
    options.max_preemptions = 2;
    DfsExplorer explorer(options);
    const PropertyReport* violation = nullptr;
    std::vector<PropertyReport> reports;
    const ExploreStats stats = explorer.Explore(
        harness.Factory(), [&](const ExecutionResult& result, uint32_t) {
          reports = harness.Evaluate(result);
          violation = StealHarness::FirstViolation(reports);
          return violation == nullptr;
        });
    EXPECT_GT(stats.schedules_explored, 0u);
    EXPECT_EQ(violation, nullptr)
        << (violation ? violation->name : "") << " — " << (violation ? violation->detail : "");
  }
}

TEST(McWakeupModeTest, NotifyBetweenDrainAndParkNeverStrandsItems) {
  MC_SKIP_UNDER_TSAN();
  // Exhaustive sweep of the notify/park handshake on both backends: no
  // deadlock, no stranded mailbox items, conservation of admitted work.
  for (const auto backend :
       {runtime::QueueBackend::kLocked, runtime::QueueBackend::kChaseLev}) {
    StealHarness::Config config;
    config.mode = "wakeup";
    config.policy = "thread-count";
    config.initial_loads = {0, 0};
    config.attempts_per_worker = 2;
    config.backend = backend;
    StealHarness harness(config);

    DfsExplorer::Options options;
    options.max_preemptions = 2;
    DfsExplorer explorer(options);
    const PropertyReport* violation = nullptr;
    std::vector<PropertyReport> reports;
    const ExploreStats stats = explorer.Explore(
        harness.Factory(), [&](const ExecutionResult& result, uint32_t) {
          reports = harness.Evaluate(result);
          violation = StealHarness::FirstViolation(reports);
          return violation == nullptr;
        });
    EXPECT_GT(stats.schedules_explored, 0u);
    EXPECT_EQ(stats.deadlocks, 0u);
    EXPECT_EQ(violation, nullptr)
        << runtime::QueueBackendName(backend) << ": " << (violation ? violation->name : "")
        << " — " << (violation ? violation->detail : "");
  }
}

TEST(TraceExportTest, ExecutionExportsToChromeTraceJson) {
  MC_SKIP_UNDER_TSAN();
  StealHarness::Config config;
  config.mode = "balance";
  config.policy = "thread-count";
  config.initial_loads = {0, 2, 2};
  config.attempts_per_worker = 1;
  StealHarness harness(config);
  const ExecutionResult result = ReplayChoices(harness.Factory(), {});
  const std::string json = ExecutionToChromeTraceJson(result, harness.num_workers());
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
  EXPECT_NE(json.find("worker 1"), std::string::npos);

  const std::vector<trace::TraceEvent> events = ToTraceEvents(result.events);
  EXPECT_FALSE(events.empty());
  // Harness events only by default; sync noise needs opting in.
  const std::vector<trace::TraceEvent> with_sync = ToTraceEvents(result.events, true);
  EXPECT_GT(with_sync.size(), events.size());
}

}  // namespace
}  // namespace optsched::mc
