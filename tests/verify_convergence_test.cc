// Work conservation as a checked liveness property: sequential (§4.2) and
// adversarial-concurrent (§4.3) convergence, livelock extraction, and the
// audit façade.

#include <gtest/gtest.h>

#include "src/core/policies/broken.h"
#include "src/core/policies/cfs_like.h"
#include "src/core/policies/hierarchical.h"
#include "src/core/policies/thread_count.h"
#include "src/core/policies/weighted.h"
#include "src/verify/audit.h"
#include "src/verify/concurrency.h"
#include "src/verify/convergence.h"

namespace optsched {
namespace {

using policies::GroupMap;
using verify::ConvergenceCheckOptions;

ConvergenceCheckOptions Opt(uint32_t cores, int64_t max_load) {
  ConvergenceCheckOptions o;
  o.bounds.num_cores = cores;
  o.bounds.max_load = max_load;
  return o;
}

TEST(SequentialConvergence, ThreadCountConvergesFromEveryState) {
  const auto policy = policies::MakeThreadCount();
  const auto result = verify::CheckSequentialConvergence(*policy, Opt(4, 5));
  EXPECT_TRUE(result.result.holds) << result.result.ToString();
  EXPECT_GT(result.worst_case_rounds, 0u);
  EXPECT_LT(result.worst_case_rounds, 50u);
}

TEST(SequentialConvergence, BrokenAlsoConvergesSequentially) {
  // §4.2 vs §4.3 again: without concurrency even the broken filter reaches a
  // work-conserved state (the first idle core simply succeeds).
  const auto policy = policies::MakeBrokenCanSteal();
  const auto result = verify::CheckSequentialConvergence(*policy, Opt(3, 4));
  EXPECT_TRUE(result.result.holds) << result.result.ToString();
}

TEST(ConcurrentConvergence, ThreadCountHoldsUnderEveryAdversary) {
  const auto policy = policies::MakeThreadCount();
  const auto result = verify::CheckConcurrentConvergence(*policy, Opt(3, 4));
  EXPECT_TRUE(result.result.holds) << result.result.ToString();
  EXPECT_FALSE(result.orders_sampled);  // 3! = 6 orders: fully exhaustive
  // Sound steals only move load downhill, so the reachable set is exactly the
  // initial cube (5^3 states).
  EXPECT_EQ(result.graph_states, 125u);
  EXPECT_GT(result.worst_case_rounds, 0u);
}

TEST(ConcurrentConvergence, ThreadCountFourCores) {
  const auto policy = policies::MakeThreadCount();
  const auto result = verify::CheckConcurrentConvergence(*policy, Opt(4, 3));
  EXPECT_TRUE(result.result.holds) << result.result.ToString();
}

TEST(ConcurrentConvergence, WeightedHolds) {
  const auto policy = policies::MakeWeightedLoad();
  const auto result = verify::CheckConcurrentConvergence(*policy, Opt(3, 3));
  EXPECT_TRUE(result.result.holds) << result.result.ToString();
}

TEST(ConcurrentConvergence, BrokenFilterLivelocksWithPaperCycle) {
  const auto policy = policies::MakeBrokenCanSteal();
  const auto result = verify::CheckConcurrentConvergence(*policy, Opt(3, 4));
  ASSERT_FALSE(result.result.holds);
  ASSERT_FALSE(result.livelock_cycle.empty());
  // Every state on the cycle keeps an idle core while another is overloaded.
  for (const auto& loads : result.livelock_cycle) {
    bool any_idle = false;
    bool any_overloaded = false;
    for (int64_t l : loads) {
      any_idle |= (l == 0);
      any_overloaded |= (l >= 2);
    }
    EXPECT_TRUE(any_idle && any_overloaded);
  }
  SCOPED_TRACE(result.result.ToString());
}

TEST(ConcurrentConvergence, PaperThreeCoreScenarioIsOnSomeCycle) {
  // The exact §4.3 example: loads (0,1,2). Under the broken filter, the AF
  // fixpoint must classify it as bad (an adversary can starve core 0).
  const auto policy = policies::MakeBrokenCanSteal();
  ConvergenceCheckOptions options = Opt(3, 2);
  options.bounds.total_load = 3;  // exactly the reachable mass of (0,1,2)
  const auto result = verify::CheckConcurrentConvergence(*policy, options);
  EXPECT_FALSE(result.result.holds) << result.result.ToString();
}

TEST(ConcurrentConvergence, GroupSumUnevenGroupsHasStarvationFixpoint) {
  // Groups {0..3} and {4,5}: loads (0,1,1,1 | 2,1) sum 3 vs 3 is a non-work-
  // conserved state no filter can leave — AF(WC) must fail.
  const auto policy = policies::MakeGroupSum(GroupMap::Contiguous(6, 4));
  ConvergenceCheckOptions options = Opt(6, 2);
  options.bounds.total_load = 6;
  options.max_orders_per_state = 24;  // sampled: enough to expose a fixpoint
  const auto result = verify::CheckConcurrentConvergence(*policy, options);
  EXPECT_FALSE(result.result.holds) << result.result.ToString();
  ASSERT_FALSE(result.livelock_cycle.empty());
}

TEST(ConcurrentConvergence, HierarchicalSoundConstructionHolds) {
  const auto policy = policies::MakeHierarchical(GroupMap::Contiguous(4, 2));
  const auto result = verify::CheckConcurrentConvergence(*policy, Opt(4, 3));
  EXPECT_TRUE(result.result.holds) << result.result.ToString();
}

TEST(FailureCausality, HoldsAcrossPolicies) {
  for (const auto& policy : {policies::MakeThreadCount(), policies::MakeBrokenCanSteal(),
                             policies::MakeWeightedLoad()}) {
    const auto result = verify::CheckFailureCausality(*policy, Opt(3, 3));
    EXPECT_TRUE(result.holds) << policy->name() << ": " << result.ToString();
  }
}

TEST(BoundedSteals, ThreadCountBoundedByPotential) {
  const auto result = verify::CheckBoundedSteals(*policies::MakeThreadCount(), Opt(4, 4));
  EXPECT_TRUE(result.holds) << result.ToString();
}

TEST(BoundedSteals, BrokenExceedsPotentialBudget) {
  const auto result = verify::CheckBoundedSteals(*policies::MakeBrokenCanSteal(), Opt(3, 3));
  EXPECT_FALSE(result.holds) << result.ToString();
  ASSERT_TRUE(result.counterexample.has_value());
}

TEST(Audit, ReportListsEveryObligation) {
  verify::ConvergenceCheckOptions options = Opt(3, 3);
  const auto audit = verify::AuditPolicy(*policies::MakeThreadCount(), options);
  const std::string report = audit.Report();
  for (const char* needle :
       {"lemma1", "filter-selects-overloaded", "steal-safety", "potential-decrease",
        "failure-causality", "bounded-steals", "sequential-convergence",
        "concurrent-convergence", "VERDICT: WORK-CONSERVING"}) {
    EXPECT_NE(report.find(needle), std::string::npos) << needle << "\n" << report;
  }
}

TEST(Audit, WorstCaseNGrowsWithImbalanceMass) {
  // More total load to spread => more rounds in the worst case.
  const auto policy = policies::MakeThreadCount();
  const auto small = verify::CheckConcurrentConvergence(*policy, Opt(3, 2));
  const auto large = verify::CheckConcurrentConvergence(*policy, Opt(3, 6));
  ASSERT_TRUE(small.result.holds && large.result.holds);
  EXPECT_GE(large.worst_case_rounds, small.worst_case_rounds);
}

}  // namespace
}  // namespace optsched
