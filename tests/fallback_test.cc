// Fallback composition: an unsound locality filter repaired by union with
// the proven Listing-1 filter — soundness restored, locality preserved.

#include <gtest/gtest.h>

#include "src/core/policies/fallback.h"
#include "src/core/policies/thread_count.h"
#include "src/dsl/compile.h"
#include "src/verify/audit.h"
#include "src/verify/lemmas.h"

namespace optsched {
namespace {

// The numa_margin pitfall policy: same-node margin 2, cross-node margin 4.
std::shared_ptr<const BalancePolicy> NumaMargin() {
  const auto compiled = dsl::CompilePolicy(R"(policy numa_margin {
    metric count;
    filter(self, stealee) {
      stealee.load - self.load >= (if (stealee.node == self.node) 2 else 4)
    }
    choice nearest;
  })");
  EXPECT_TRUE(compiled.ok()) << compiled.DiagnosticsToString();
  return compiled.policy;
}

TEST(Fallback, RepairsTheNumaMarginLemma1Hole) {
  const Topology topo = Topology::Numa(2, 2);
  verify::Bounds bounds;
  bounds.num_cores = 4;
  bounds.max_load = 3;
  // Alone: broken (remote overload below margin 4 is invisible).
  EXPECT_FALSE(verify::CheckLemma1(*NumaMargin(), bounds, &topo).holds);
  // Composed with the proven fallback: repaired.
  const auto repaired = policies::MakeFallback(NumaMargin(), policies::MakeThreadCount());
  EXPECT_TRUE(verify::CheckLemma1(*repaired, bounds, &topo).holds);
}

TEST(Fallback, FullAuditPassesForTheComposite) {
  const auto repaired = policies::MakeFallback(NumaMargin(), policies::MakeThreadCount());
  verify::ConvergenceCheckOptions options;
  options.bounds.num_cores = 4;
  options.bounds.max_load = 3;
  const Topology topo = Topology::Numa(2, 2);
  const auto audit = verify::AuditPolicy(*repaired, options, &topo);
  EXPECT_TRUE(audit.work_conserving()) << audit.Report();
}

TEST(Fallback, KeepsTheLocalityPreference) {
  // When a same-node victim clears the primary's margin, the composite picks
  // it even if a remote core is more loaded.
  const Topology topo = Topology::Numa(2, 2);
  const auto repaired = policies::MakeFallback(NumaMargin(), policies::MakeThreadCount());
  const MachineState m = MachineState::FromLoads({0, 3, 9, 0});
  const LoadSnapshot s = m.Snapshot();
  Rng rng(1);
  const SelectionView view{.self = 0, .snapshot = s, .topology = &topo};
  const auto candidates = repaired->FilterCandidates(view);
  ASSERT_EQ(candidates, (std::vector<CpuId>{1, 2}));  // union admits both
  EXPECT_EQ(repaired->SelectCore(view, candidates, rng), 1u);  // local preferred
}

TEST(Fallback, FallsBackWhenPrimaryHasNoCandidates) {
  // Local node balanced; the only overload is remote below margin 4: the
  // primary admits nothing, the fallback admits the remote core — the thief
  // still makes progress (Lemma 1 in action).
  const Topology topo = Topology::Numa(2, 2);
  const auto repaired = policies::MakeFallback(NumaMargin(), policies::MakeThreadCount());
  const MachineState m = MachineState::FromLoads({0, 1, 3, 1});
  const LoadSnapshot s = m.Snapshot();
  Rng rng(1);
  const SelectionView view{.self = 0, .snapshot = s, .topology = &topo};
  const auto candidates = repaired->FilterCandidates(view);
  ASSERT_EQ(candidates, (std::vector<CpuId>{2}));
  EXPECT_EQ(repaired->SelectCore(view, candidates, rng), 2u);
}

TEST(Fallback, NameAndMetric) {
  const auto repaired = policies::MakeFallback(policies::MakeThreadCount(3),
                                               policies::MakeThreadCount());
  EXPECT_EQ(repaired->name(), "thread-count(margin=3)||thread-count");
  EXPECT_EQ(repaired->metric(), LoadMetric::kTaskCount);
}

TEST(FallbackDeath, RejectsMixedMetrics) {
  const auto compiled = dsl::CompilePolicy(dsl::samples::kWeighted);
  ASSERT_TRUE(compiled.ok());
  EXPECT_DEATH(policies::MakeFallback(compiled.policy, policies::MakeThreadCount()),
               "shared load metric");
}

}  // namespace
}  // namespace optsched
