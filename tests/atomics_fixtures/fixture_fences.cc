// Seeded fence-shape mutation: the spec declares this file's fence sequence
// as [release, acquire]; the second fence below was "optimized" to release,
// which breaks the reader-side pairing.

#include <atomic>

namespace fixture {

void WriteSide(std::atomic<bool>& flag_) {
  std::atomic_thread_fence(std::memory_order_release);
  flag_.store(true, std::memory_order_release);
}

void ReadSide() {
  std::atomic_thread_fence(std::memory_order_release);  // expect-atomics: fence-shape
}

}  // namespace fixture
