#include <atomic>  // expect-atomics: stale-spec

// The fixture_stale spec declares a ghost_ field this file never touches:
// the stale-spec pass anchors its diagnostic to the spec's first file,
// line 1 (the include above).

namespace fixture {

void NothingAtomicHere() {}

}  // namespace fixture
