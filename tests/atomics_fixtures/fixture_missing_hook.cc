// Seeded mc-coverage and extraction-completeness mutations: a spec'd member
// whose declaration lost its mc tag, a declared atomic no spec covers, a
// site on an unknown field, an op the spec does not list, and an implicit
// operator form.

#include <atomic>
#include <cstdint>

namespace fixture {

class Widget {
 public:
  bool Swap() {
    return flag_.exchange(true, std::memory_order_acq_rel);  // expect-atomics: unspecified-op
  }

  void ImplicitPublish() {
    flag_ = true;  // expect-atomics: implicit-order
  }

 private:
  // The spec requires kWidgetPub hooks here, but the tag is gone.
  std::atomic<bool> flag_{false};  // expect-atomics: mc-mismatch

  // No protocol spec covers this member at all.
  std::atomic<int32_t> rogue_{0};  // expect-atomics: unspecified-member
};

void RogueSite(std::atomic<uint64_t>& unknown_) {
  unknown_.store(1, std::memory_order_release);  // expect-atomics: unspecified-site
}

}  // namespace fixture
