// Seeded missing-release mutation: the flag_ publish pair demoted to
// relaxed on both sides. The spec's empty justify lists make both
// unconditionally order-too-weak -- no tag could save them.

#include <atomic>

namespace fixture {

void PublishWeak(std::atomic<bool>& flag_) {
  flag_.store(true, std::memory_order_relaxed);  // expect-atomics: order-too-weak
}

bool ObserveWeak(const std::atomic<bool>& flag_) {
  return flag_.load(std::memory_order_relaxed);  // expect-atomics: order-too-weak
}

}  // namespace fixture
