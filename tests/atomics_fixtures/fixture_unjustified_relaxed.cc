// Seeded justification failures: untagged relaxed, a tag citing a rule the
// spec never declared, a tag citing a real rule that does not cover the
// position, a relaxed fetch_sub below its acq_rel minimum, and suppression
// hygiene violations.

#include <atomic>
#include <cstdint>

namespace fixture {

void UntaggedRelaxed(std::atomic<uint64_t>& stat_) {
  stat_.fetch_add(1, std::memory_order_relaxed);  // expect-atomics: unjustified-relaxed
}

uint64_t BogusRule(const std::atomic<uint64_t>& stat_) {
  // order: bogus-rule
  return stat_.load(std::memory_order_relaxed);  // expect-atomics: unknown-rule
}

void WrongPositionRule(std::atomic<uint64_t>& stat_) {
  // order: cas-retry
  stat_.fetch_add(1, std::memory_order_relaxed);  // expect-atomics: unknown-rule
}

void WeakFetchSub(std::atomic<uint64_t>& stat_) {
  stat_.fetch_sub(1, std::memory_order_relaxed);  // expect-atomics: order-too-weak
}

uint64_t ReasonlessSuppression(const std::atomic<uint64_t>& stat_) {
  // expect-atomics: suppression-syntax
  // atomics-audit: allow(unjustified-relaxed):
  // expect-atomics: unjustified-relaxed
  return stat_.load(std::memory_order_relaxed);
}

uint64_t UnknownCheckSuppression(const std::atomic<uint64_t>& stat_) {
  // expect-atomics: suppression-syntax
  // atomics-audit: allow(not-a-check): this check does not exist
  // order: stat-counter
  return stat_.load(std::memory_order_relaxed);
}

}  // namespace fixture
