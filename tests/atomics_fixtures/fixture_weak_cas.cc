// Seeded order-weakening mutations on the CAS positions -- the static
// equivalent of the broken_steal_order fault knob. Each weakened position
// must fire order-too-weak; the empty justify_success list means no tag can
// excuse the success order.

#include <atomic>
#include <cstdint>

namespace fixture {

// Success order weakened to relaxed (failure meets its minimum).
bool WeakSuccess(std::atomic<uint64_t>& seq_, uint64_t e) {
  return seq_.compare_exchange_strong(  // expect-atomics: order-too-weak
      e, e + 1, std::memory_order_relaxed, std::memory_order_acquire);
}

// Failure order weakened to relaxed without a cas-retry citation.
bool WeakFailure(std::atomic<uint64_t>& seq_, uint64_t e) {
  return seq_.compare_exchange_strong(  // expect-atomics: order-too-weak
      e, e + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
}

// Single-order form: acq_rel success is below the seq_cst minimum (the
// derived acquire failure order happens to pass).
bool WeakSingleOrder(std::atomic<uint64_t>& seq_, uint64_t e) {
  return seq_.compare_exchange_strong(  // expect-atomics: order-too-weak
      e, e + 1, std::memory_order_acq_rel);
}

// A cas-retry citation makes the relaxed failure order acceptable -- but
// only the failure position; the justify lists are per-position.
bool JustifiedFailure(std::atomic<uint64_t>& seq_, uint64_t e) {
  // order: cas-retry
  return seq_.compare_exchange_strong(
      e, e + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
}

}  // namespace fixture
