// Compliant sites for the fixture_widget protocol: correct orders, a
// justified relaxed site, a two-order CAS, a tagged declaration, and a
// valid suppression. This file is never compiled -- it is analyzed by
// atomics_audit_test, which requires zero diagnostics here.

#include <atomic>
#include <cstdint>

namespace fixture {

class Widget {
 public:
  // Publish: release store pairs with the acquire load below.
  void Publish() { flag_.store(true, std::memory_order_release); }

  bool Observe() const { return flag_.load(std::memory_order_acquire); }

  // Both CAS orders spelled; failure meets the acquire minimum directly.
  bool Claim(uint64_t expected) {
    return seq_.compare_exchange_strong(expected, expected + 1,
                                        std::memory_order_seq_cst,
                                        std::memory_order_acquire);
  }

  // Relaxed is allowed here only with a citation of the spec rule.
  void Bump() { stat_.fetch_add(1, std::memory_order_relaxed); }  // order: stat-counter

  uint64_t Stat() const {
    // order: stat-counter
    return stat_.load(std::memory_order_relaxed);
  }

  uint64_t StatSuppressed() const {
    // atomics-audit: allow(unjustified-relaxed): fixture exercises the suppression syntax
    return stat_.load(std::memory_order_relaxed);
  }

  void Retire() { stat_.fetch_sub(1, std::memory_order_acq_rel); }

 private:
  // mc: kWidgetPub
  std::atomic<bool> flag_{false};
  std::atomic<uint64_t> seq_{0};
  mutable std::atomic<uint64_t> stat_{0};
};

}  // namespace fixture
