// Smoke test: the real-thread executor drains seeded work with no lost or
// duplicated items, steals spread an imbalance, and failures (if any) are of
// the expected kinds.

#include <gtest/gtest.h>

#include "src/core/policies/thread_count.h"
#include "src/runtime/executor.h"

namespace optsched {
namespace {

TEST(RuntimeSmoke, DrainsAllItemsWithStealing) {
  runtime::ExecutorConfig config;
  config.num_workers = 4;
  config.spin_per_unit = 200;
  runtime::Executor executor(policies::MakeThreadCount(), config);

  // All 400 items start on worker 0 — the other three must steal to help.
  // Items are chunky (~100us each) so the run comfortably outlasts thread
  // startup; otherwise worker 0 can drain the queue alone before the helpers
  // are even scheduled.
  std::vector<runtime::WorkItem> items;
  for (uint64_t i = 0; i < 400; ++i) {
    items.push_back(runtime::WorkItem{.id = i, .work_units = 2000, .weight = 1024});
  }
  executor.Seed(0, items);

  const runtime::ExecutorReport report = executor.Run();
  SCOPED_TRACE(report.ToString());
  uint64_t executed = 0;
  for (const runtime::WorkerStats& w : report.workers) {
    executed += w.items_executed;
  }
  EXPECT_EQ(executed, 400u);           // nothing lost, nothing duplicated
  EXPECT_GT(report.total_successes(), 0u);  // stealing happened
  // At least one non-seed worker did real work.
  uint64_t helper_items = 0;
  for (size_t i = 1; i < report.workers.size(); ++i) {
    helper_items += report.workers[i].items_executed;
  }
  EXPECT_GT(helper_items, 0u);
}

TEST(RuntimeSmoke, LockedSelectionAlsoDrains) {
  runtime::ExecutorConfig config;
  config.num_workers = 4;
  config.locked_selection = true;
  runtime::Executor executor(policies::MakeThreadCount(), config);
  std::vector<runtime::WorkItem> items;
  for (uint64_t i = 0; i < 100; ++i) {
    items.push_back(runtime::WorkItem{.id = i, .work_units = 20, .weight = 1024});
  }
  executor.Seed(0, items);
  const runtime::ExecutorReport report = executor.Run();
  uint64_t executed = 0;
  for (const runtime::WorkerStats& w : report.workers) {
    executed += w.items_executed;
  }
  EXPECT_EQ(executed, 100u);
}

}  // namespace
}  // namespace optsched
