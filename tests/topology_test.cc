// Unit tests for src/topology: machine shapes, distances, and scheduling
// domains.

#include <gtest/gtest.h>

#include "src/topology/domains.h"
#include "src/topology/topology.h"

namespace optsched {
namespace {

TEST(Topology, SmpShape) {
  const Topology t = Topology::Smp(8);
  EXPECT_EQ(t.num_cpus(), 8u);
  EXPECT_EQ(t.num_nodes(), 1u);
  for (CpuId c = 0; c < 8; ++c) {
    EXPECT_EQ(t.NodeOf(c), 0u);
  }
}

TEST(Topology, NumaShape) {
  const Topology t = Topology::Numa(4, 8);
  EXPECT_EQ(t.num_cpus(), 32u);
  EXPECT_EQ(t.num_nodes(), 4u);
  EXPECT_EQ(t.CpusInNode(0).size(), 8u);
  EXPECT_EQ(t.NodeOf(0), 0u);
  EXPECT_EQ(t.NodeOf(8), 1u);
  EXPECT_EQ(t.NodeOf(31), 3u);
}

TEST(Topology, HierarchicalShape) {
  const Topology t = Topology::Hierarchical(2, 2, 4, 2);
  EXPECT_EQ(t.num_cpus(), 32u);
  const CpuInfo& c0 = t.cpu(0);
  const CpuInfo& c1 = t.cpu(1);
  EXPECT_TRUE(t.SharesCore(0, 1));  // SMT siblings are adjacent ids
  EXPECT_EQ(c0.core, c1.core);
  EXPECT_FALSE(t.SharesCore(0, 2));
  EXPECT_TRUE(t.SharesPackage(0, 2));
}

TEST(Topology, DistanceProperties) {
  const Topology t = Topology::Hierarchical(2, 2, 2, 2);
  for (CpuId a = 0; a < t.num_cpus(); ++a) {
    EXPECT_EQ(t.CpuDistance(a, a), 0u);
    for (CpuId b = 0; b < t.num_cpus(); ++b) {
      EXPECT_EQ(t.CpuDistance(a, b), t.CpuDistance(b, a));  // symmetry
    }
  }
  // Distance strictly grows with the sharing level. Shape: 2 nodes x 2
  // packages x 2 cores x 2 smt = 16 CPUs; cpu1 = SMT sibling of cpu0, cpu2 =
  // same package different core, cpu4 = same node different package, cpu8 =
  // the other node.
  EXPECT_LT(t.CpuDistance(0, 1), t.CpuDistance(0, 2));  // SMT < same LLC
  EXPECT_LT(t.CpuDistance(0, 2), t.CpuDistance(0, 4));  // LLC < same node
  EXPECT_LT(t.CpuDistance(0, 4), t.CpuDistance(0, 8));  // node < cross-node
}

TEST(Topology, CustomDistanceMatrix) {
  const Topology t = Topology::NumaWithDistances(
      {{10, 16, 32}, {16, 10, 16}, {32, 16, 10}}, 2);
  EXPECT_EQ(t.num_nodes(), 3u);
  EXPECT_EQ(t.NodeDistance(0, 2), 32u);
  EXPECT_EQ(t.NodeDistance(2, 0), 32u);
  // Cross-node CPU distance dominates any intra-node distance.
  EXPECT_GT(t.CpuDistance(0, 5), t.CpuDistance(0, 1));
}

TEST(TopologyDeath, RejectsAsymmetricDistances) {
  EXPECT_DEATH(Topology::NumaWithDistances({{10, 20}, {21, 10}}, 1), "symmetric");
}

TEST(TopologyDeath, RejectsRemoteCloserThanLocal) {
  EXPECT_DEATH(Topology::NumaWithDistances({{10, 5}, {5, 10}}, 1), "local");
}

TEST(Domains, SmpHasSingleLevel) {
  const DomainHierarchy h = BuildDomains(Topology::Smp(4));
  ASSERT_EQ(h.levels.size(), 1u);  // only LLC (cores within the one package)
  EXPECT_EQ(h.levels[0][0].groups.size(), 4u);
}

TEST(Domains, NumaHasTwoLevels) {
  const DomainHierarchy h = BuildDomains(Topology::Numa(2, 4));
  // LLC level (cores within each package) + MACHINE level (nodes).
  ASSERT_EQ(h.levels.size(), 2u);
  EXPECT_EQ(h.levels[0].size(), 2u);  // one LLC domain per package
  EXPECT_EQ(h.levels[1].size(), 1u);  // one machine domain
  EXPECT_EQ(h.levels[1][0].groups.size(), 2u);  // grouped by node
}

TEST(Domains, GroupsPartitionTheDomain) {
  const DomainHierarchy h = BuildDomains(Topology::Hierarchical(2, 2, 2, 2));
  for (const auto& level : h.levels) {
    for (const Domain& d : level) {
      size_t total = 0;
      for (const DomainGroup& g : d.groups) {
        total += g.cpus.size();
      }
      EXPECT_EQ(total, d.cpus.size()) << d.name;
    }
  }
}

TEST(Domains, SingleCpuHasNoDomains) {
  const DomainHierarchy h = BuildDomains(Topology::Smp(1));
  EXPECT_TRUE(h.levels.empty());
}

TEST(Domains, DomainPathCoversEveryLevelForEveryCpu) {
  const Topology t = Topology::Hierarchical(2, 1, 2, 2);
  const DomainHierarchy h = BuildDomains(t);
  for (CpuId cpu = 0; cpu < t.num_cpus(); ++cpu) {
    const std::vector<size_t> path = h.DomainPath(cpu);
    ASSERT_EQ(path.size(), h.levels.size());
    for (size_t l = 0; l < path.size(); ++l) {
      ASSERT_NE(path[l], SIZE_MAX) << "cpu " << cpu << " missing at level " << l;
      const Domain& d = h.levels[l][path[l]];
      EXPECT_NE(std::find(d.cpus.begin(), d.cpus.end(), cpu), d.cpus.end());
    }
  }
}

TEST(Topology, ToStringMentionsShape) {
  EXPECT_NE(Topology::Numa(4, 8).ToString().find("4 nodes"), std::string::npos);
  const DomainHierarchy h = BuildDomains(Topology::Numa(2, 4));
  EXPECT_FALSE(h.ToString().empty());
}

}  // namespace
}  // namespace optsched
