// CPU-affinity tests: masks constrain placement and stealing; pinned tasks
// create legitimate (unfixable) idleness, which the affinity-aware
// work-conservation predicate distinguishes from scheduler waste; and the
// Lozi-style "pinned group imbalance" reproduces under the CFS-like policy.

#include <gtest/gtest.h>

#include "src/core/balancer.h"
#include "src/core/conservation.h"
#include "src/core/policies/cfs_like.h"
#include "src/core/policies/locality.h"
#include "src/core/policies/thread_count.h"
#include "src/sim/simulator.h"

namespace optsched {
namespace {

Task PinnedTask(TaskId id, std::initializer_list<CpuId> cpus, int nice = 0) {
  Task t = MakeTask(id, nice);
  t.allowed_mask = MaskOf(cpus);
  return t;
}

TEST(Affinity, MaskSemantics) {
  Task t = MakeTask(1);
  EXPECT_TRUE(t.AllowedOn(0));   // empty mask: unrestricted
  EXPECT_TRUE(t.AllowedOn(63));
  t.allowed_mask = MaskOf({2, 5});
  EXPECT_FALSE(t.AllowedOn(0));
  EXPECT_TRUE(t.AllowedOn(2));
  EXPECT_TRUE(t.AllowedOn(5));
  EXPECT_FALSE(t.AllowedOn(64));  // beyond mask range: not allowed when pinned
}

TEST(AffinityDeath, MaskOfRejectsHighCpus) { EXPECT_DEATH(MaskOf({64}), "0..63"); }

TEST(AffinityDeath, PlaceOutsideMaskIsFatal) {
  MachineState m(2);
  EXPECT_DEATH(m.Place(PinnedTask(1, {1}), 0), "affinity");
}

TEST(Affinity, StealSkipsPinnedTasks) {
  MachineState m(2);
  m.Place(PinnedTask(1, {0}), 0);
  m.Place(PinnedTask(2, {0}), 0);
  m.Place(MakeTask(3), 0);  // unrestricted
  m.ScheduleAll();
  // Tail-first steal must skip task 3's pinned colleagues... task 3 is the
  // tail here; re-order so a pinned task is the tail:
  MachineState m2(2);
  m2.Place(MakeTask(10), 0);
  m2.Place(PinnedTask(11, {0}), 0);  // tail, pinned to cpu0
  const auto stolen = m2.StealOneTask(0, 1);
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(*stolen, 10u);  // skipped the pinned tail, took the movable task
  EXPECT_FALSE(m2.StealTaskById(0, 1, 11));  // direct attempt refused
  EXPECT_EQ(m2.core(0).TaskCount(), 1);
  (void)m;
}

TEST(Affinity, BalancerCannotMovePinnedLoad) {
  // Cpu0 holds 3 tasks all pinned to cpu0; cpu1 idle. The filter admits the
  // steal (it sees only loads), the steal phase finds no migratable task:
  // kFailedNoTask, and the machine stays (3, 0) — which the affinity-aware
  // predicate correctly deems conserved-modulo-affinity.
  MachineState m(2);
  for (TaskId id = 1; id <= 3; ++id) {
    m.Place(PinnedTask(id, {0}), 0);
  }
  m.ScheduleAll();
  LoadBalancer balancer(policies::MakeThreadCount());
  Rng rng(1);
  const RoundResult r = balancer.RunRound(m, rng);
  EXPECT_EQ(r.successes, 0u);
  EXPECT_EQ(r.actions[1].outcome, StealOutcome::kFailedNoTask);
  EXPECT_FALSE(m.WorkConserved());                 // strict predicate: violated
  EXPECT_TRUE(m.WorkConservedModuloAffinity());    // but nothing can be done
}

TEST(Affinity, MixedQueueMovesOnlyTheMovable) {
  MachineState m(2);
  m.Place(PinnedTask(1, {0}), 0);
  m.Place(MakeTask(2), 0);
  m.Place(PinnedTask(3, {0}), 0);
  m.Place(MakeTask(4), 0);
  m.ScheduleAll();
  LoadBalancer balancer(policies::MakeThreadCount());
  Rng rng(1);
  RunUntilQuiescent(balancer, m, rng);
  // Tasks 2 and 4 can leave; 1 and 3 cannot. Final: cpu0 keeps >= 2 (pinned),
  // and no pinned task ever shows up on cpu1.
  for (const Task& t : m.core(1).ready()) {
    EXPECT_TRUE(t.AllowedOn(1));
  }
  if (m.core(1).current().has_value()) {
    EXPECT_TRUE(m.core(1).current()->AllowedOn(1));
  }
  EXPECT_GE(m.Load(0, LoadMetric::kTaskCount), 2);
  EXPECT_EQ(m.TotalTasks(), 4u);
}

TEST(Affinity, SimulatorHonorsMasksAcrossLifecycle) {
  const Topology topo = Topology::Smp(4);
  sim::SimConfig config;
  config.max_time_us = 60'000'000;
  config.lb_period_us = 1'000;
  config.wake_placement = sim::WakePlacement::kIdlePreferred;
  sim::Simulator s(topo, policies::MakeThreadCount(), config, 5);
  // Four blocking tasks pinned to cpus {0,1}; two free tasks.
  for (int i = 0; i < 4; ++i) {
    sim::TaskSpec spec;
    spec.total_service_us = 20'000;
    spec.burst_us = 2'000;
    spec.mean_block_us = 1'000;
    spec.allowed_mask = MaskOf({0, 1});
    s.Submit(spec, 0);
  }
  for (int i = 0; i < 2; ++i) {
    sim::TaskSpec spec;
    spec.total_service_us = 20'000;
    s.Submit(spec, 0);
  }
  s.Run();
  EXPECT_EQ(s.metrics().tasks_completed, 6u);
  // Pinned tasks must never have run on cpus 2/3: their busy time comes only
  // from the two free tasks (20ms each at most).
  EXPECT_LE(s.accounting().busy_us(2) + s.accounting().busy_us(3), 40'000u);
}

TEST(Affinity, LoziStyleGroupImbalanceUnderCfsLike) {
  // Two nodes x 4 cores. Node 1 runs 4 single pinned hogs (one per core,
  // nice 0) plus 2 extra *movable* tasks stuck behind them; node 0 has 3
  // busy cores and one idle core. Group averages: node0 = 3/4, node1 = 6/4;
  // threshold 0.75 * 1.25 = 0.9375 < 1.5, so CFS-like DOES attempt... make
  // node1 lighter: 4 hogs + 1 movable = 5/4 = 1.25 > 0.9375 -> admitted.
  // To build the hidden shape, inflate node0's average with a high-load core:
  // node0 = (0,2,2,2) avg 1.5, threshold 1.875; node1 = (2,1,1,1) avg 1.25
  // < 1.875 -> cross-group steal DENIED, and node0's own idle core can fix
  // itself locally (intra-group steal from a load-2 core) — but if node0's
  // busy cores each hold pinned pairs, nothing moves: persistent starvation
  // with strict WC violated and affinity-aware WC *also* violated (node1's
  // movable task could run on node0's idle core).
  const Topology topo = Topology::Numa(2, 4);
  MachineState m(8);
  TaskId next = 1;
  // node0: cpu0 idle; cpus 1-3 each hold 2 tasks pinned to their own cpu.
  for (CpuId cpu = 1; cpu <= 3; ++cpu) {
    m.Place(PinnedTask(next++, {cpu}), cpu);
    m.Place(PinnedTask(next++, {cpu}), cpu);
  }
  // node1 (cpus 4-7): cpu4 has a hog + a MOVABLE task; cpus 5-7 one hog each.
  m.Place(PinnedTask(next++, {4}), 4);
  m.Place(MakeTask(next++), 4);
  for (CpuId cpu = 5; cpu <= 7; ++cpu) {
    m.Place(PinnedTask(next++, {cpu}), cpu);
  }
  m.ScheduleAll();
  ASSERT_FALSE(m.WorkConservedModuloAffinity());  // cpu0 could take the movable task

  // CFS-like: group averages hide the movable task; nothing ever moves.
  {
    MachineState machine = m;  // copy
    LoadBalancer balancer(policies::MakeCfsLike(policies::GroupMap::ByNode(topo)));
    Rng rng(3);
    for (int round = 0; round < 30; ++round) {
      balancer.RunRound(machine, rng);
    }
    EXPECT_FALSE(machine.WorkConservedModuloAffinity());  // still starving
    EXPECT_TRUE(machine.IsIdle(0));
  }
  // Proven policy (random choice so pinned-only victims are eventually
  // bypassed — with affinity the deterministic max-load choice can fixate on
  // an unstealable victim, a model caveat documented in DESIGN.md):
  {
    MachineState machine = m;
    LoadBalancer balancer(policies::MakeRandomChoice(policies::MakeThreadCount()));
    Rng rng(3);
    uint64_t rounds = 0;
    while (!machine.WorkConservedModuloAffinity() && rounds < 30) {
      balancer.RunRound(machine, rng);
      ++rounds;
    }
    EXPECT_TRUE(machine.WorkConservedModuloAffinity());
    EXPECT_FALSE(machine.IsIdle(0));
  }
}

}  // namespace
}  // namespace optsched
