// ChaseLevDeque unit and stress coverage: the bounded ring contract, owner
// LIFO vs thief FIFO ends, the split PeekTop/TakeTop staleness protocol, the
// size-1 owner-vs-thief race both ways, slot reuse across index wrap, and a
// real-thread conservation stress (every pushed item claimed exactly once).
// The interleaving-exhaustive version of the size-1 race lives in the mc
// harness (drain mode, chase_lev backend); these tests pin the single-thread
// semantics and the large-scale behaviour TSan can chew on.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/runtime/chase_lev_deque.h"

namespace optsched::runtime {
namespace {

WorkItem Item(uint64_t id, uint32_t weight = 1024) {
  return WorkItem{.id = id, .work_units = 1, .weight = weight};
}

TEST(ChaseLevDeque, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ChaseLevDeque(0).capacity(), 2u);
  EXPECT_EQ(ChaseLevDeque(2).capacity(), 2u);
  EXPECT_EQ(ChaseLevDeque(5).capacity(), 8u);
  EXPECT_EQ(ChaseLevDeque(64).capacity(), 64u);
  EXPECT_EQ(ChaseLevDeque(65).capacity(), 128u);
}

TEST(ChaseLevDeque, PushReportsOverflowInsteadOfGrowing) {
  ChaseLevDeque deque(2);
  EXPECT_TRUE(deque.PushBottom(Item(1)));
  EXPECT_TRUE(deque.PushBottom(Item(2)));
  EXPECT_FALSE(deque.PushBottom(Item(3)));  // full ring: caller spills
  EXPECT_EQ(deque.SizeRelaxed(), 2);
  // Draining one slot re-admits one push.
  ASSERT_TRUE(deque.PopBottom().has_value());
  EXPECT_TRUE(deque.PushBottom(Item(3)));
}

TEST(ChaseLevDeque, OwnerPopsLifoThievesTakeFifo) {
  ChaseLevDeque deque(8);
  for (uint64_t id = 1; id <= 4; ++id) {
    ASSERT_TRUE(deque.PushBottom(Item(id)));
  }
  // Owner end: newest first.
  std::optional<WorkItem> popped = deque.PopBottom();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->id, 4u);
  // Thief end: oldest first.
  ChaseLevDeque::TopPeek peek = deque.PeekTop();
  ASSERT_TRUE(peek.found);
  EXPECT_EQ(peek.item.id, 1u);
  EXPECT_EQ(peek.size, 3);
  EXPECT_TRUE(deque.TakeTop(peek));
  peek = deque.PeekTop();
  ASSERT_TRUE(peek.found);
  EXPECT_EQ(peek.item.id, 2u);
}

TEST(ChaseLevDeque, StalePeekFailsAfterCompetitorTake) {
  ChaseLevDeque deque(8);
  ASSERT_TRUE(deque.PushBottom(Item(1)));
  ASSERT_TRUE(deque.PushBottom(Item(2)));
  // Two thieves observe the same top; only the first commit wins, the second
  // is the failed re-check the runqueue surfaces as failed_recheck.
  const ChaseLevDeque::TopPeek first = deque.PeekTop();
  const ChaseLevDeque::TopPeek second = deque.PeekTop();
  ASSERT_TRUE(first.found);
  ASSERT_TRUE(second.found);
  EXPECT_EQ(first.top, second.top);
  EXPECT_TRUE(deque.TakeTop(first));
  EXPECT_FALSE(deque.TakeTop(second));
}

TEST(ChaseLevDeque, SizeOneRaceOwnerWinsThiefFails) {
  ChaseLevDeque deque(8);
  ASSERT_TRUE(deque.PushBottom(Item(7)));
  const ChaseLevDeque::TopPeek peek = deque.PeekTop();
  ASSERT_TRUE(peek.found);
  // Owner takes the last item first (its pop CASes top for the final item),
  // so the thief's anchored commit must observe the moved top and fail.
  std::optional<WorkItem> popped = deque.PopBottom();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->id, 7u);
  EXPECT_FALSE(deque.TakeTop(peek));
  EXPECT_EQ(deque.SizeRelaxed(), 0);
}

TEST(ChaseLevDeque, SizeOneRaceThiefWinsOwnerComesUpEmpty) {
  ChaseLevDeque deque(8);
  ASSERT_TRUE(deque.PushBottom(Item(7)));
  const ChaseLevDeque::TopPeek peek = deque.PeekTop();
  ASSERT_TRUE(peek.found);
  EXPECT_TRUE(deque.TakeTop(peek));
  EXPECT_EQ(peek.item.id, 7u);
  EXPECT_FALSE(deque.PopBottom().has_value());
  EXPECT_EQ(deque.SizeRelaxed(), 0);
}

TEST(ChaseLevDeque, SlotsSurviveIndexWrap) {
  ChaseLevDeque deque(2);
  // Many push/pop cycles walk bottom and top far past the ring size; the
  // mask-indexed slots must keep every field intact.
  for (uint64_t round = 0; round < 1000; ++round) {
    ASSERT_TRUE(deque.PushBottom(Item(round, static_cast<uint32_t>(round % 7 + 1))));
    if (round % 3 == 0) {
      const ChaseLevDeque::TopPeek peek = deque.PeekTop();
      ASSERT_TRUE(peek.found);
      ASSERT_TRUE(deque.TakeTop(peek));
      EXPECT_EQ(peek.item.weight, peek.item.id % 7 + 1);
    } else {
      std::optional<WorkItem> popped = deque.PopBottom();
      ASSERT_TRUE(popped.has_value());
      EXPECT_EQ(popped->id, round);
      EXPECT_EQ(popped->weight, round % 7 + 1);
    }
  }
}

TEST(ChaseLevDeque, QuiescentSizeAndWeightAreExact) {
  ChaseLevDeque deque(8);
  ASSERT_TRUE(deque.PushBottom(Item(1, 10)));
  ASSERT_TRUE(deque.PushBottom(Item(2, 20)));
  ASSERT_TRUE(deque.PushBottom(Item(3, 30)));
  EXPECT_EQ(deque.SizeRelaxed(), 3);
  EXPECT_EQ(deque.SumWeightRelaxed(), 60);
  (void)deque.PopBottom();
  EXPECT_EQ(deque.SizeRelaxed(), 2);
  EXPECT_EQ(deque.SumWeightRelaxed(), 30);
}

TEST(ChaseLevDeque, ThreadedConservationEveryItemClaimedExactlyOnce) {
  // One owner pushing and popping against three thieves peeking and taking.
  // Every id in [1, kItems] must be claimed by exactly one side exactly once
  // — the no-lost-items / no-duplicated-items core of the protocol, here at
  // real-thread scale (the mc harness proves the small cases exhaustively).
  constexpr uint64_t kItems = 20000;
  constexpr int kThieves = 3;
  ChaseLevDeque deque(256);
  std::atomic<uint64_t> claimed{0};
  std::vector<std::vector<uint64_t>> got(kThieves + 1);

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&, t] {
      while (claimed.load(std::memory_order_acquire) < kItems) {
        const ChaseLevDeque::TopPeek peek = deque.PeekTop();
        if (peek.found && deque.TakeTop(peek)) {
          got[t + 1].push_back(peek.item.id);
          claimed.fetch_add(1, std::memory_order_acq_rel);
        }
      }
    });
  }

  // Owner: push everything, popping to make room when the bounded ring
  // fills; then drain whatever the thieves left.
  for (uint64_t id = 1; id <= kItems; ++id) {
    while (!deque.PushBottom(Item(id))) {
      if (std::optional<WorkItem> item = deque.PopBottom()) {
        got[0].push_back(item->id);
        claimed.fetch_add(1, std::memory_order_acq_rel);
      }
    }
  }
  while (std::optional<WorkItem> item = deque.PopBottom()) {
    got[0].push_back(item->id);
    claimed.fetch_add(1, std::memory_order_acq_rel);
  }
  for (std::thread& thief : thieves) {
    thief.join();
  }

  std::vector<uint64_t> all;
  for (const std::vector<uint64_t>& part : got) {
    all.insert(all.end(), part.begin(), part.end());
  }
  ASSERT_EQ(all.size(), kItems);
  std::sort(all.begin(), all.end());
  for (uint64_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(all[i], i + 1) << "item " << i + 1 << " lost or duplicated";
  }
  EXPECT_EQ(deque.SizeRelaxed(), 0);
}

}  // namespace
}  // namespace optsched::runtime
