// Semantic analysis tests: typing rules, field access discipline, let
// resolution and constant folding.

#include <gtest/gtest.h>

#include "src/dsl/parser.h"
#include "src/dsl/sema.h"

namespace optsched::dsl {
namespace {

SemaResult AnalyzeSource(const char* source) {
  const ParseResult parsed = ParsePolicy(source);
  EXPECT_TRUE(parsed.ok()) << parsed.DiagnosticsToString();
  return Analyze(*parsed.policy);
}

std::string FirstMessage(const SemaResult& result) {
  return result.diagnostics.empty() ? "" : result.diagnostics[0].message;
}

TEST(Sema, AcceptsWellTypedPolicy) {
  const SemaResult result = AnalyzeSource(R"(policy ok {
    metric count;
    let margin = 1 + 1;
    filter(self, stealee) { stealee.load - self.load >= margin }
    migrate(t, v, h) { t.weight > 0 && t.weight < v.load - h.load }
  })");
  EXPECT_TRUE(result.ok()) << FirstMessage(result);
}

TEST(Sema, FilterMustBeBoolean) {
  const SemaResult result =
      AnalyzeSource("policy p { filter(a, b) { b.load - a.load } }");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(FirstMessage(result).find("boolean"), std::string::npos);
}

TEST(Sema, ArithmeticOnBooleansRejected) {
  const SemaResult result =
      AnalyzeSource("policy p { filter(a, b) { (b.load >= 2) + 1 >= 1 } }");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(FirstMessage(result).find("integer operands"), std::string::npos);
}

TEST(Sema, LogicOnIntegersRejected) {
  const SemaResult result =
      AnalyzeSource("policy p { filter(a, b) { b.load && true } }");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(FirstMessage(result).find("boolean operands"), std::string::npos);
}

TEST(Sema, UnknownVariableRejected) {
  const SemaResult result =
      AnalyzeSource("policy p { filter(a, b) { c.load >= 2 } }");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(FirstMessage(result).find("unknown variable"), std::string::npos);
}

TEST(Sema, TaskFieldOnCoreRejected) {
  const SemaResult result =
      AnalyzeSource("policy p { filter(a, b) { b.weight >= 2 } }");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(FirstMessage(result).find("not readable on core"), std::string::npos);
}

TEST(Sema, CoreFieldOnTaskRejected) {
  const SemaResult result = AnalyzeSource(
      "policy p { filter(a, b) { b.load >= 2 } migrate(t, v, h) { t.load > 0 } }");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(FirstMessage(result).find("not readable on task"), std::string::npos);
}

TEST(Sema, UnknownLetRejected) {
  const SemaResult result =
      AnalyzeSource("policy p { filter(a, b) { b.load >= margin } }");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(FirstMessage(result).find("unknown name"), std::string::npos);
}

TEST(Sema, NonConstantLetRejected) {
  const ParseResult parsed = ParsePolicy(
      "policy p { let m = a.load; filter(a, b) { b.load >= 2 } }");
  ASSERT_TRUE(parsed.ok());
  const SemaResult result = Analyze(*parsed.policy);
  ASSERT_FALSE(result.ok());
}

TEST(Sema, LetsResolveIntoFilterBody) {
  const SemaResult result = AnalyzeSource(R"(policy p {
    let two = 2;
    let margin = two * 2 - two;
    filter(a, b) { b.load - a.load >= margin }
  })");
  ASSERT_TRUE(result.ok()) << FirstMessage(result);
  // margin folded to 2 and inlined.
  EXPECT_EQ(result.policy->filter->ToString(), "((b.load - a.load) >= 2)");
}

TEST(Sema, WrongArityCallRejected) {
  const SemaResult result =
      AnalyzeSource("policy p { filter(a, b) { min(b.load) >= 2 } }");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(FirstMessage(result).find("argument"), std::string::npos);
}

TEST(Sema, UnknownFunctionRejected) {
  const SemaResult result =
      AnalyzeSource("policy p { filter(a, b) { clamp(b.load, 1, 2) >= 2 } }");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(FirstMessage(result).find("unknown function"), std::string::npos);
}

TEST(Sema, DuplicateFilterParamsRejected) {
  const SemaResult result =
      AnalyzeSource("policy p { filter(a, a) { a.load >= 2 } }");
  EXPECT_FALSE(result.ok());
}

TEST(Fold, ArithmeticIdentities) {
  auto folded = [](const char* source) {
    const ParseExprResult parsed = ParseExpression(source);
    EXPECT_NE(parsed.expr, nullptr);
    return FoldConstants(*parsed.expr)->ToString();
  };
  EXPECT_EQ(folded("2 + 3 * 4"), "14");
  EXPECT_EQ(folded("10 / 3"), "3");
  EXPECT_EQ(folded("10 % 3"), "1");
  EXPECT_EQ(folded("-(2 + 3)"), "-5");
  EXPECT_EQ(folded("min(3, 7)"), "3");
  EXPECT_EQ(folded("max(3, 7)"), "7");
  EXPECT_EQ(folded("abs(2 - 9)"), "7");
  EXPECT_EQ(folded("3 >= 2"), "true");
  EXPECT_EQ(folded("!(3 >= 2)"), "false");
}

TEST(Fold, BooleanShortCircuitIdentities) {
  auto folded = [](const char* source) {
    const ParseExprResult parsed = ParseExpression(source);
    EXPECT_NE(parsed.expr, nullptr);
    return FoldConstants(*parsed.expr)->ToString();
  };
  EXPECT_EQ(folded("true && a.load >= 2"), "(a.load >= 2)");
  EXPECT_EQ(folded("false && a.load >= 2"), "false");
  EXPECT_EQ(folded("false || a.load >= 2"), "(a.load >= 2)");
  EXPECT_EQ(folded("true || a.load >= 2"), "true");
}

TEST(Fold, DivisionByZeroLeftUnfolded) {
  const ParseExprResult parsed = ParseExpression("4 / 0");
  ASSERT_NE(parsed.expr, nullptr);
  EXPECT_EQ(FoldConstants(*parsed.expr)->ToString(), "(4 / 0)");
}

TEST(Fold, NonConstantSubtreesPreserved) {
  const ParseExprResult parsed = ParseExpression("a.load + (2 * 3)");
  ASSERT_NE(parsed.expr, nullptr);
  EXPECT_EQ(FoldConstants(*parsed.expr)->ToString(), "(a.load + 6)");
}

}  // namespace
}  // namespace optsched::dsl
