// Unit tests for the serving front end (src/ingress): bounded mailboxes,
// the admission policies, router routing/stats, and fault seams.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/ingress/admission.h"
#include "src/ingress/mailbox.h"
#include "src/ingress/router.h"
#include "src/trace/metrics.h"

namespace optsched::ingress {
namespace {

runtime::WorkItem Item(uint64_t id) { return {.id = id, .work_units = 1, .weight = 1024}; }

TEST(BoundedMailbox, FifoPushDrainAndBound) {
  BoundedMailbox box(3);
  bool was_empty = false;
  EXPECT_TRUE(box.TryPush(Item(1), &was_empty));
  EXPECT_TRUE(was_empty);
  EXPECT_TRUE(box.TryPush(Item(2), &was_empty));
  EXPECT_FALSE(was_empty);
  EXPECT_TRUE(box.TryPush(Item(3)));
  // Full: the bound refuses, loudly.
  EXPECT_FALSE(box.TryPush(Item(4)));
  EXPECT_EQ(box.ApproxDepth(), 3);
  EXPECT_EQ(box.total_rejected_full(), 1u);

  std::vector<runtime::WorkItem> out;
  EXPECT_EQ(box.DrainInto(out, 2), 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 1u);
  EXPECT_EQ(out[1].id, 2u);
  EXPECT_EQ(box.ApproxDepth(), 1);
  // Space again after the drain; ring wraps correctly.
  EXPECT_TRUE(box.TryPush(Item(5)));
  out.clear();
  EXPECT_EQ(box.DrainInto(out, 10), 2u);
  EXPECT_EQ(out[0].id, 3u);
  EXPECT_EQ(out[1].id, 5u);
  EXPECT_EQ(box.ApproxDepth(), 0);
  EXPECT_EQ(box.total_pushed(), 4u);
  EXPECT_EQ(box.total_drained(), 4u);
}

TEST(BoundedMailbox, ConcurrentProducersNeverLoseAdmittedItems) {
  BoundedMailbox box(64);
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 20000;
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> drained{0};
  std::atomic<bool> producers_done{false};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        if (box.TryPush(Item(static_cast<uint64_t>(p) * kPerProducer + i))) {
          admitted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread consumer([&] {
    std::vector<runtime::WorkItem> out;
    while (!producers_done.load(std::memory_order_acquire) || box.ApproxDepth() > 0) {
      out.clear();
      drained.fetch_add(box.DrainInto(out, 32), std::memory_order_relaxed);
    }
  });
  for (auto& t : producers) {
    t.join();
  }
  producers_done.store(true, std::memory_order_release);
  consumer.join();

  // Conservation at quiescence: every admitted item was drained, every
  // refused item was counted, nothing invented.
  EXPECT_EQ(drained.load(), admitted.load());
  EXPECT_EQ(box.total_pushed(), admitted.load());
  EXPECT_EQ(box.total_pushed() + box.total_rejected_full(),
            static_cast<uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(box.ApproxDepth(), 0);
}

TEST(MailboxSet, NotifyFiresOnlyOnEmptyToNonEmptyEdge) {
  std::vector<uint32_t> notified;
  MailboxSet set(2, 4, [&](uint32_t worker) { notified.push_back(worker); });
  EXPECT_TRUE(set.Push(1, Item(1)));  // edge
  EXPECT_TRUE(set.Push(1, Item(2)));  // no edge
  EXPECT_TRUE(set.Push(0, Item(3)));  // edge on the other mailbox
  ASSERT_EQ(notified.size(), 2u);
  EXPECT_EQ(notified[0], 1u);
  EXPECT_EQ(notified[1], 0u);

  std::vector<runtime::WorkItem> out;
  EXPECT_EQ(set.Drain(1, out, 16), 2u);
  EXPECT_TRUE(set.Push(1, Item(4)));  // empty again -> edge again
  EXPECT_EQ(notified.size(), 3u);
  EXPECT_EQ(set.PendingFor(1), 1);
  EXPECT_EQ(set.TotalPending(), 2);
}

TEST(Router, HomeWorkerIsStableAndSessionsSpread) {
  MailboxSet set(8, 4);
  IngressRouter router(set, RouterConfig{.num_shards = 1});
  std::vector<bool> hit(8, false);
  for (uint64_t key = 0; key < 1000; ++key) {
    const uint32_t home = router.HomeWorker(key);
    ASSERT_LT(home, 8u);
    EXPECT_EQ(home, router.HomeWorker(key));  // stable
    hit[home] = true;
  }
  // FNV over 1000 keys must not collapse onto a few workers.
  for (bool h : hit) {
    EXPECT_TRUE(h);
  }
}

TEST(Router, ShedPolicyDropsAtTheEdgeWhenHomeIsFull) {
  MailboxSet set(2, 2);
  RouterConfig config;
  config.num_shards = 1;
  config.admission.policy = AdmissionPolicy::kShed;
  IngressRouter router(set, config);

  const uint64_t key = 7;
  const uint32_t home = router.HomeWorker(key);
  EXPECT_EQ(router.Offer(0, key, Item(1)).outcome, AdmitOutcome::kAdmittedHome);
  EXPECT_EQ(router.Offer(0, key, Item(2)).outcome, AdmitOutcome::kAdmittedHome);
  const AdmitResult shed = router.Offer(0, key, Item(3));
  EXPECT_EQ(shed.outcome, AdmitOutcome::kShed);
  // The sibling stayed untouched: shed means the edge, not a detour.
  EXPECT_EQ(set.mailbox(1 - home).ApproxDepth(), 0);

  const ShardStats& stats = router.shard_stats(0);
  EXPECT_EQ(stats.offered, 3u);
  EXPECT_EQ(stats.admitted_home, 2u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.offered, stats.admitted_home + stats.admitted_spill + stats.shed);
}

TEST(Router, SpillPolicyProbesSiblingsThenSheds) {
  MailboxSet set(4, 1);
  RouterConfig config;
  config.num_shards = 1;
  config.admission.policy = AdmissionPolicy::kSpillToSibling;
  config.admission.max_spill_hops = 3;
  IngressRouter router(set, config);

  const uint64_t key = 42;
  EXPECT_EQ(router.Offer(0, key, Item(1)).outcome, AdmitOutcome::kAdmittedHome);
  // Home full: the next three offers land on the three ring-order siblings.
  for (int i = 0; i < 3; ++i) {
    const AdmitResult r = router.Offer(0, key, Item(2 + static_cast<uint64_t>(i)));
    EXPECT_EQ(r.outcome, AdmitOutcome::kAdmittedSpill);
  }
  // Everything full: hops exhausted, terminal shed.
  EXPECT_EQ(router.Offer(0, key, Item(9)).outcome, AdmitOutcome::kShed);

  const ShardStats& stats = router.shard_stats(0);
  EXPECT_EQ(stats.admitted_home, 1u);
  EXPECT_EQ(stats.admitted_spill, 3u);
  EXPECT_EQ(stats.shed, 1u);
  for (uint32_t w = 0; w < 4; ++w) {
    EXPECT_EQ(set.mailbox(w).ApproxDepth(), 1);
  }
}

TEST(Router, BlockPolicyWaitsForDrainThenAdmits) {
  MailboxSet set(2, 1);
  RouterConfig config;
  config.num_shards = 1;
  config.admission.policy = AdmissionPolicy::kBlockWithDeadline;
  config.admission.block_deadline_us = 200'000;
  config.admission.block_poll_us = 100;
  IngressRouter router(set, config);

  const uint64_t key = 3;
  const uint32_t home = router.HomeWorker(key);
  EXPECT_EQ(router.Offer(0, key, Item(1)).outcome, AdmitOutcome::kAdmittedHome);

  // A draining owner frees the slot while the shard blocks on the full box.
  std::thread owner([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::vector<runtime::WorkItem> out;
    set.Drain(home, out, 1);
  });
  const AdmitResult blocked = router.Offer(0, key, Item(2));
  owner.join();
  EXPECT_EQ(blocked.outcome, AdmitOutcome::kAdmittedHome);
  EXPECT_GT(blocked.admit_ns, 1'000'000u);  // it genuinely waited
  EXPECT_EQ(router.shard_stats(0).block_timeouts, 0u);
}

TEST(Router, BlockPolicyShedsAtDeadline) {
  MailboxSet set(2, 1);
  RouterConfig config;
  config.num_shards = 1;
  config.admission.policy = AdmissionPolicy::kBlockWithDeadline;
  config.admission.block_deadline_us = 2000;
  config.admission.block_poll_us = 100;
  IngressRouter router(set, config);

  const uint64_t key = 3;
  EXPECT_EQ(router.Offer(0, key, Item(1)).outcome, AdmitOutcome::kAdmittedHome);
  // Nobody drains: the block expires and the item is shed, counted as a
  // deadline expiry too.
  EXPECT_EQ(router.Offer(0, key, Item(2)).outcome, AdmitOutcome::kShed);
  EXPECT_EQ(router.shard_stats(0).shed, 1u);
  EXPECT_EQ(router.shard_stats(0).block_timeouts, 1u);
}

TEST(Router, InjectedEnqueueFaultsFallThroughPolicyAndAreCounted) {
  MailboxSet set(2, 64);
  RouterConfig config;
  config.num_shards = 1;
  config.admission.policy = AdmissionPolicy::kShed;
  config.fault_plan.mailbox_enqueue_fail_rate = 1.0;  // every push fails
  IngressRouter router(set, config);
  ASSERT_NE(router.injector(), nullptr);

  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(router.Offer(0, i, Item(i)).outcome, AdmitOutcome::kShed);
  }
  EXPECT_EQ(router.shard_stats(0).enqueue_faults, 10u);
  EXPECT_EQ(router.shard_stats(0).shed, 10u);
  EXPECT_EQ(router.injector()->stats().mailbox_enqueue_failures, 10u);
  // Faulted pushes never reached a ring.
  EXPECT_EQ(set.TotalPending(), 0);
}

TEST(Router, ExportMetricsFlattensUnderIngressNamespace) {
  MailboxSet set(2, 4);
  RouterConfig config;
  config.num_shards = 2;
  IngressRouter router(set, config);
  router.Offer(0, 1, Item(1));
  router.Offer(1, 2, Item(2));

  trace::MetricsRegistry metrics;
  router.ExportMetrics(metrics);
  EXPECT_EQ(metrics.Get("ingress.offered"), 2.0);
  EXPECT_TRUE(metrics.Has("ingress.admitted_home"));
  EXPECT_TRUE(metrics.Has("ingress.shed"));
  EXPECT_TRUE(metrics.Has("ingress.mailbox0.pushed"));
  EXPECT_TRUE(metrics.Has("ingress.admission_ns.p99"));
}

}  // namespace
}  // namespace optsched::ingress
