// Weighted state-space verification: enumeration counts, obligations for the
// shipped policies over heterogeneous weight multisets, and detection of a
// subtly wrong migration rule that the non-strict inequality admits.

#include <gtest/gtest.h>

#include "src/core/policies/thread_count.h"
#include "src/core/policies/weighted.h"
#include "src/dsl/compile.h"
#include "src/verify/audit.h"
#include "src/verify/weighted_space.h"

namespace optsched {
namespace {

using verify::WeightedBounds;

TEST(WeightedSpace, CountMatchesCombinatorics) {
  WeightedBounds bounds;
  bounds.num_cores = 3;
  bounds.max_tasks_per_core = 2;
  bounds.weights = {1, 2, 3};
  // Multisets of size 0,1,2 over 3 symbols: 1 + 3 + 6 = 10 per core; 10^3.
  EXPECT_EQ(verify::CountWeightedStates(bounds), 1000u);
}

TEST(WeightedSpace, SingleWeightAlphabet) {
  WeightedBounds bounds;
  bounds.num_cores = 2;
  bounds.max_tasks_per_core = 3;
  bounds.weights = {5};
  // Sizes 0..3 of one symbol: 4 per core; 16 total.
  EXPECT_EQ(verify::CountWeightedStates(bounds), 16u);
}

TEST(WeightedSpace, MachinesAreWellFormed) {
  WeightedBounds bounds;
  bounds.num_cores = 2;
  bounds.max_tasks_per_core = 2;
  bounds.weights = {1, 4};
  verify::ForEachWeightedState(bounds, [&](const MachineState& machine) {
    EXPECT_EQ(machine.num_cpus(), 2u);
    for (CpuId cpu = 0; cpu < 2; ++cpu) {
      // One task runs if any exist; weighted load equals the multiset sum.
      const auto& core = machine.core(cpu);
      if (core.TaskCount() > 0) {
        EXPECT_TRUE(core.current().has_value());
      }
      EXPECT_GE(core.WeightedLoad(), core.TaskCount());  // weights >= 1
    }
    return true;
  });
}

TEST(WeightedSpace, ShippedPoliciesPassAllObligations) {
  WeightedBounds bounds;
  bounds.num_cores = 3;
  bounds.max_tasks_per_core = 2;
  bounds.weights = {1, 2, 5};
  for (const auto& policy : {policies::MakeWeightedLoad(), policies::MakeThreadCount()}) {
    const auto lemma1 = verify::CheckWeightedLemma1(*policy, bounds);
    EXPECT_TRUE(lemma1.holds) << policy->name() << ": " << lemma1.ToString();
    const auto safety = verify::CheckWeightedStealSafety(*policy, bounds);
    EXPECT_TRUE(safety.holds) << policy->name() << ": " << safety.ToString();
    const auto potential = verify::CheckWeightedPotentialDecrease(*policy, bounds);
    EXPECT_TRUE(potential.holds) << policy->name() << ": " << potential.ToString();
  }
}

TEST(WeightedSpace, NonStrictMigrationRuleIsCaught) {
  // task.weight <= diff (instead of <) permits steals that leave d unchanged
  // — the ranking argument silently breaks. The weighted space exhibits it.
  const auto compiled = dsl::CompilePolicy(R"(policy sloppy {
    metric weighted;
    filter(self, stealee) { stealee.nr_tasks >= 2 && stealee.load > self.load }
    choice maxload;
    migrate(task, victim, thief) { task.weight <= victim.load - thief.load }
  })");
  ASSERT_TRUE(compiled.ok()) << compiled.DiagnosticsToString();
  WeightedBounds bounds;
  bounds.num_cores = 2;
  bounds.max_tasks_per_core = 2;
  bounds.weights = {1, 2, 3};
  const auto potential = verify::CheckWeightedPotentialDecrease(*compiled.policy, bounds);
  ASSERT_FALSE(potential.holds);
  ASSERT_TRUE(potential.counterexample.has_value());
  SCOPED_TRACE(potential.ToString());
}

TEST(WeightedSpace, FilterAdmittingSingleHeavyTaskIsCaught) {
  // A filter keyed on weighted load alone admits cores whose entire load is
  // one (unstealable) running task: the idle thief is then guaranteed to
  // fail — a weighted Lemma-1/steal-safety violation.
  const auto compiled = dsl::CompilePolicy(R"(policy naive {
    metric weighted;
    filter(self, stealee) { stealee.load - self.load >= 2 }
    choice maxload;
  })");
  ASSERT_TRUE(compiled.ok()) << compiled.DiagnosticsToString();
  WeightedBounds bounds;
  bounds.num_cores = 2;
  bounds.max_tasks_per_core = 2;
  bounds.weights = {1, 3};
  const auto lemma1 = verify::CheckWeightedLemma1(*compiled.policy, bounds);
  EXPECT_FALSE(lemma1.holds) << lemma1.ToString();
  const auto safety = verify::CheckWeightedStealSafety(*compiled.policy, bounds);
  EXPECT_FALSE(safety.holds) << safety.ToString();
}

TEST(WeightedSpace, AuditRunsWeightedObligationsForWeightedPolicies) {
  verify::ConvergenceCheckOptions options;
  options.bounds.num_cores = 3;
  options.bounds.max_load = 3;
  const auto weighted_audit = verify::AuditPolicy(*policies::MakeWeightedLoad(), options);
  ASSERT_TRUE(weighted_audit.weighted_lemma1.has_value());
  EXPECT_TRUE(weighted_audit.weighted_lemma1->holds);
  EXPECT_TRUE(weighted_audit.weighted_steal_safety->holds);
  EXPECT_TRUE(weighted_audit.weighted_potential->holds);
  EXPECT_NE(weighted_audit.Report().find("weighted-lemma1"), std::string::npos);
  EXPECT_NE(weighted_audit.ToJson().find("weighted_lemma1"), std::string::npos);

  // Count-metric policies skip the weighted space.
  const auto count_audit = verify::AuditPolicy(*policies::MakeThreadCount(), options);
  EXPECT_FALSE(count_audit.weighted_lemma1.has_value());
}

TEST(WeightedSpace, AuditRejectsNaiveWeightedDslPolicy) {
  const auto compiled = dsl::CompilePolicy(R"(policy naive {
    metric weighted;
    filter(self, stealee) { stealee.load - self.load >= 2 }
  })");
  ASSERT_TRUE(compiled.ok());
  verify::ConvergenceCheckOptions options;
  options.bounds.num_cores = 3;
  options.bounds.max_load = 3;
  const auto audit = verify::AuditPolicy(*compiled.policy, options);
  // The anonymous-task spaces may or may not object; the weighted space
  // definitely does (single-heavy-task cores admitted).
  ASSERT_TRUE(audit.weighted_lemma1.has_value());
  EXPECT_FALSE(audit.weighted_lemma1->holds || audit.weighted_steal_safety->holds);
  EXPECT_FALSE(audit.work_conserving());
}

TEST(WeightedSpaceDeath, RejectsZeroWeights) {
  WeightedBounds bounds;
  bounds.weights = {0};
  EXPECT_DEATH(verify::CountWeightedStates(bounds), "positive");
}

}  // namespace
}  // namespace optsched
