// Integration tests across the full pipeline: DSL -> verifier -> simulator ->
// accounting, reproducing the paper's qualitative story end to end.

#include <gtest/gtest.h>

#include "src/core/policies/cfs_like.h"
#include "src/core/policies/hierarchical.h"
#include "src/core/policies/weighted.h"
#include "src/core/policies/thread_count.h"
#include "src/dsl/codegen.h"
#include "src/dsl/compile.h"
#include "src/sim/simulator.h"
#include "src/verify/audit.h"
#include "src/workload/workloads.h"

namespace optsched {
namespace {

using policies::GroupMap;

TEST(Integration, DslPolicyVerifiedThenSimulated) {
  // The full toolchain on one policy source: compile, audit, emit both
  // backends, then run a workload with the very same object.
  const auto compiled = dsl::CompilePolicy(dsl::samples::kNumaAware);
  ASSERT_TRUE(compiled.ok()) << compiled.DiagnosticsToString();

  verify::ConvergenceCheckOptions options;
  options.bounds.num_cores = 3;
  options.bounds.max_load = 3;
  const auto audit = verify::AuditPolicy(*compiled.policy, options);
  ASSERT_TRUE(audit.work_conserving()) << audit.Report();

  EXPECT_FALSE(dsl::EmitC(*compiled.decl).empty());
  EXPECT_FALSE(dsl::EmitScala(*compiled.decl).empty());

  const Topology topo = Topology::Numa(2, 4);
  sim::SimConfig config;
  config.max_time_us = 300'000'000;
  sim::Simulator s(topo, compiled.policy, config, 1);
  workload::StaticImbalanceConfig wl;
  wl.num_tasks = 32;
  wl.service_us = 10'000;
  workload::SubmitStaticImbalance(s, wl);
  s.Run();
  EXPECT_EQ(s.metrics().tasks_completed, 32u);
  EXPECT_LT(s.accounting().wasted_fraction(), 0.2);
}

TEST(Integration, CfsLikeStarvationFixpointVsProvenPolicy) {
  // The analytical CFS-like starvation shape (see cfs_like.h): groups of 16,
  // thief group has an idle core and no overloaded core, victim group has an
  // overloaded core, no idle core, and a group average below the thief
  // average times the imbalance factor. The CFS-like filter admits NOTHING in
  // this state — it is a non-work-conserved fixpoint. The proven policy
  // clears it in one round.
  const uint32_t k = 16;
  std::vector<int64_t> loads;
  loads.push_back(0);  // idle thief in group 0
  for (uint32_t i = 1; i < k; ++i) {
    loads.push_back(1);
  }
  loads.push_back(2);  // overloaded core in group 1
  for (uint32_t i = 1; i < k; ++i) {
    loads.push_back(1);
  }
  ASSERT_FALSE(MachineState::FromLoads(loads).WorkConserved());

  // CFS-like: zero candidates anywhere => permanent starvation.
  const auto cfs = policies::MakeCfsLike(GroupMap::Contiguous(2 * k, k));
  {
    MachineState machine = MachineState::FromLoads(loads);
    LoadBalancer balancer(cfs);
    Rng rng(1);
    for (int round = 0; round < 20; ++round) {
      const RoundResult r = balancer.RunRound(machine, rng);
      ASSERT_EQ(r.attempts, 0u);
    }
    EXPECT_FALSE(machine.WorkConserved());  // still starving after 20 rounds
  }

  // Proven policy: one round suffices.
  {
    MachineState machine = MachineState::FromLoads(loads);
    LoadBalancer balancer(policies::MakeThreadCount());
    Rng rng(1);
    balancer.RunRound(machine, rng);
    EXPECT_TRUE(machine.WorkConserved());
  }
}

TEST(Integration, WastedCoresShowUpInSimAccounting) {
  // Same fixpoint, driven through the simulator: the CFS-like policy
  // accumulates wasted-core time, the proven policy does not.
  const uint32_t k = 16;
  const Topology topo = Topology::Numa(2, k);
  auto run = [&](std::shared_ptr<const BalancePolicy> policy) {
    sim::SimConfig config;
    config.max_time_us = 400'000;
    config.lb_period_us = 1'000;
    config.wake_placement = sim::WakePlacement::kLastCpu;
    sim::Simulator s(topo, std::move(policy), config, 3);
    // Build the starvation shape: cpu0 empty, one task on each other cpu of
    // node 0; two tasks on cpu k, one on each remaining cpu of node 1.
    sim::TaskSpec spec;
    spec.total_service_us = 300'000;
    for (CpuId cpu = 1; cpu < k; ++cpu) {
      s.Submit(spec, 0, cpu);
    }
    s.Submit(spec, 0, k);
    s.Submit(spec, 0, k);
    for (CpuId cpu = k + 1; cpu < 2 * k; ++cpu) {
      s.Submit(spec, 0, cpu);
    }
    s.RunUntil(config.max_time_us);
    return s.accounting().wasted_fraction();
  };
  const double cfs_wasted = run(policies::MakeCfsLike(GroupMap::ByNode(topo)));
  const double proven_wasted = run(policies::MakeThreadCount());
  EXPECT_GT(cfs_wasted, 0.5);     // starves for most of the run
  EXPECT_LT(proven_wasted, 0.05); // fixed at the first balancing tick
}

TEST(Integration, AuditVerdictsSeparateTheZoo) {
  verify::ConvergenceCheckOptions options;
  options.bounds.num_cores = 3;
  options.bounds.max_load = 3;
  const Topology topo = Topology::Smp(3);

  struct Expectation {
    std::shared_ptr<const BalancePolicy> policy;
    bool work_conserving;
  };
  const Expectation table[] = {
      {policies::MakeThreadCount(), true},
      {policies::MakeWeightedLoad(), true},
      {policies::MakeHierarchical(GroupMap::Contiguous(3, 2)), true},
      {policies::MakeCfsLike(GroupMap::Contiguous(3, 2)), false},
  };
  for (const auto& expectation : table) {
    const auto audit = verify::AuditPolicy(*expectation.policy, options);
    EXPECT_EQ(audit.work_conserving(), expectation.work_conserving)
        << expectation.policy->name() << "\n"
        << audit.Report();
  }
}

TEST(Integration, OltpThroughputUnderGoodAndBadBalancing) {
  // Database-style workers on a NUMA machine; compare transactions completed
  // with sound balancing vs. effectively no balancing and sticky wakeups.
  const Topology topo = Topology::Numa(2, 8);
  auto run = [&](bool balanced) {
    sim::SimConfig config;
    config.max_time_us = 2'000'000;
    config.wake_placement = sim::WakePlacement::kLastCpu;
    config.lb_period_us = balanced ? 4'000 : 1'000'000'000;
    sim::Simulator s(topo, policies::MakeThreadCount(), config, 17);
    workload::OltpConfig wl;
    wl.num_workers = 48;  // 3 workers per core: contention matters
    wl.txn_service_us = 1'000;
    wl.mean_io_wait_us = 500;
    wl.duration_us = 1'500'000;
    // Skew all workers' home nodes to node 0 to create imbalance.
    workload::SubmitOltp(s, wl);
    s.RunUntil(config.max_time_us);
    return s.metrics().bursts_completed;
  };
  const uint64_t with_balancing = run(true);
  const uint64_t without_balancing = run(false);
  EXPECT_GT(with_balancing, without_balancing);
}

}  // namespace
}  // namespace optsched
