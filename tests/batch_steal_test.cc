// Batch stealing (max_steals_per_attempt > 1): each additional migration
// re-checks the filter and the migration rule, so soundness is preserved
// per-task while convergence gets faster.

#include <gtest/gtest.h>

#include "src/core/balancer.h"
#include "src/core/conservation.h"
#include "src/core/policies/thread_count.h"
#include "src/verify/state_space.h"

namespace optsched {
namespace {

TEST(BatchSteal, MovesUpToTheBound) {
  LoadBalancer balancer(policies::MakeThreadCount());
  MachineState m = MachineState::FromLoads({0, 9});
  const CoreAction action = balancer.ExecuteStealPhase(m, 0, 1, /*recheck=*/true,
                                                       /*max_steals=*/4);
  EXPECT_EQ(action.outcome, StealOutcome::kStole);
  // 4 moves: (0,9)->(1,8)->(2,7)->(3,6)->(4,5); each re-check held. The
  // batch is ONE successful action (matching RoundResult::successes) that
  // moved FOUR tasks — the old code conflated the two, reporting 4 successes
  // here while a round tallied 1.
  EXPECT_EQ(m.Loads(LoadMetric::kTaskCount), (std::vector<int64_t>{4, 5}));
  EXPECT_EQ(action.moved, 4u);
  EXPECT_EQ(balancer.stats().successes, 1u);
  EXPECT_EQ(balancer.stats().tasks_moved, 4u);
}

TEST(BatchSteal, StopsWhenFilterFlips) {
  LoadBalancer balancer(policies::MakeThreadCount());
  MachineState m = MachineState::FromLoads({0, 3});
  const CoreAction action = balancer.ExecuteStealPhase(m, 0, 1, true, /*max_steals=*/10);
  EXPECT_EQ(action.outcome, StealOutcome::kStole);
  // (0,3)->(1,2): diff 1 < 2, the batch ends after one move despite bound 10.
  EXPECT_EQ(m.Loads(LoadMetric::kTaskCount), (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(balancer.stats().successes, 1u);
  EXPECT_EQ(balancer.stats().tasks_moved, 1u);
}

TEST(BatchSteal, FirstMoveFailureStillClassified) {
  LoadBalancer balancer(policies::MakeThreadCount());
  MachineState m = MachineState::FromLoads({2, 2});
  const CoreAction action = balancer.ExecuteStealPhase(m, 0, 1, true, /*max_steals=*/4);
  EXPECT_EQ(action.outcome, StealOutcome::kFailedRecheck);
  EXPECT_EQ(m.Loads(LoadMetric::kTaskCount), (std::vector<int64_t>{2, 2}));
}

TEST(BatchSteal, PotentialStillStrictlyDecreasesPerBatch) {
  // Every individual migration satisfies the strict-decrease rule, so the
  // whole batch decreases d by at least 2 per task moved — exhaustively.
  verify::Bounds bounds;
  bounds.num_cores = 3;
  bounds.max_load = 6;
  verify::ForEachState(bounds, [&](const std::vector<int64_t>& loads) {
    for (CpuId thief = 0; thief < 3; ++thief) {
      for (CpuId victim = 0; victim < 3; ++victim) {
        if (victim == thief) {
          continue;
        }
        MachineState m = MachineState::FromLoads(loads);
        LoadBalancer balancer(policies::MakeThreadCount());
        const int64_t before = m.Potential(LoadMetric::kTaskCount);
        const CoreAction action = balancer.ExecuteStealPhase(m, thief, victim, true, 8);
        if (action.outcome == StealOutcome::kStole) {
          const int64_t after = m.Potential(LoadMetric::kTaskCount);
          EXPECT_LE(after + 2 * static_cast<int64_t>(balancer.stats().tasks_moved), before)
              << MachineState::FromLoads(loads).ToString();
        }
      }
    }
    return true;
  });
}

TEST(BatchSteal, FewThievesConvergeInFewerRounds) {
  // Batching pays when thieves are scarce relative to the imbalance: on two
  // cores, one thief moving one task per round needs ~12 rounds for (24,0);
  // batches of 4 need ~3.
  auto rounds_to_quiesce = [](uint32_t batch) {
    MachineState m = MachineState::FromLoads({24, 0});
    LoadBalancer balancer(policies::MakeThreadCount());
    Rng rng(5);
    RoundOptions options;
    options.max_steals_per_attempt = batch;
    return RunUntilQuiescent(balancer, m, rng, options);
  };
  const uint64_t single = rounds_to_quiesce(1);
  const uint64_t batched = rounds_to_quiesce(4);
  EXPECT_GE(single, 10u);
  EXPECT_LT(batched, single / 2);
}

TEST(BatchSteal, ManyThievesCanOvershootWithBatches) {
  // The flip side (kept as documentation of a real effect): with 7 thieves
  // sharing one stale snapshot, batched steals overshoot the fair share and
  // need extra smoothing rounds afterwards — single steals per thief spread
  // a 24-task pile in fewer rounds on 8 cores. Batch size is a workload
  // trade-off, not a free win.
  auto rounds_to_quiesce = [](uint32_t batch) {
    MachineState m = MachineState::FromLoads({24, 0, 0, 0, 0, 0, 0, 0});
    LoadBalancer balancer(policies::MakeThreadCount());
    Rng rng(5);
    RoundOptions options;
    options.max_steals_per_attempt = batch;
    return RunUntilQuiescent(balancer, m, rng, options);
  };
  EXPECT_LE(rounds_to_quiesce(1), rounds_to_quiesce(4));
}

TEST(BatchSteal, RoundAndCumulativeCountsAgree) {
  // The regression this pins: successes counts ACTIONS (one per thieving
  // core, like RoundResult) and tasks_moved counts migrations, so
  //   successes <= tasks_moved <= successes * max_steals
  // and the cumulative stats equal the sum over rounds. The old code added
  // `moved` to successes, so cumulative successes disagreed with the round
  // tallies whenever a batch moved more than one task.
  LoadBalancer balancer(policies::MakeThreadCount());
  MachineState m = MachineState::FromLoads({12, 0, 12, 0});
  Rng rng(7);
  RoundOptions options;
  options.max_steals_per_attempt = 4;
  uint64_t round_successes = 0;
  uint64_t round_moved = 0;
  for (int i = 0; i < 6; ++i) {
    const RoundResult result = balancer.RunRound(m, rng, options);
    EXPECT_LE(result.successes, result.tasks_moved);
    EXPECT_LE(result.tasks_moved, result.successes * options.max_steals_per_attempt);
    round_successes += result.successes;
    round_moved += result.tasks_moved;
  }
  EXPECT_EQ(balancer.stats().successes, round_successes);
  EXPECT_EQ(balancer.stats().tasks_moved, round_moved);
  EXPECT_GT(balancer.stats().tasks_moved, balancer.stats().successes);
}

TEST(BatchSteal, NeverIdlesVictimEvenInBatches) {
  verify::Bounds bounds;
  bounds.num_cores = 2;
  bounds.max_load = 8;
  verify::ForEachState(bounds, [&](const std::vector<int64_t>& loads) {
    MachineState m = MachineState::FromLoads(loads);
    LoadBalancer balancer(policies::MakeThreadCount());
    const uint64_t total = m.TotalTasks();
    const CoreAction action = balancer.ExecuteStealPhase(m, 0, 1, true, 100);
    if (action.outcome == StealOutcome::kStole) {
      EXPECT_FALSE(m.IsIdle(1));
    }
    EXPECT_EQ(m.TotalTasks(), total);
    return true;
  });
}

}  // namespace
}  // namespace optsched
