// Unit tests for the concurrent observability layer: the SPSC trace ring,
// the multi-ring collector, the metrics registry, and the Chrome trace-event
// JSON exporter (docs/observability.md).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/trace/chrome_trace.h"
#include "src/trace/collector.h"
#include "src/trace/metrics.h"
#include "src/trace/ring.h"
#include "src/trace/trace.h"

namespace optsched {
namespace {

using trace::EventType;
using trace::MetricsRegistry;
using trace::SpscTraceRing;
using trace::TraceCollector;
using trace::TraceEvent;

TraceEvent At(uint64_t time, EventType type = EventType::kSteal, CpuId cpu = 0) {
  return TraceEvent{.time = time, .type = type, .cpu = cpu};
}

// --- SpscTraceRing -----------------------------------------------------------

TEST(SpscTraceRing, PushDrainPreservesOrder) {
  SpscTraceRing ring(8);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(ring.TryPush(At(i)));
  }
  EXPECT_EQ(ring.size(), 5u);
  std::vector<TraceEvent> out;
  EXPECT_EQ(ring.Drain(out), 5u);
  ASSERT_EQ(out.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].time, i);
  }
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(SpscTraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscTraceRing(5).capacity(), 8u);
  EXPECT_EQ(SpscTraceRing(8).capacity(), 8u);
  EXPECT_EQ(SpscTraceRing(1).capacity(), 2u);
  EXPECT_EQ(SpscTraceRing(0).capacity(), 2u);
}

TEST(SpscTraceRing, FullRingDropsAndCounts) {
  SpscTraceRing ring(4);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPush(At(i)));
  }
  EXPECT_FALSE(ring.TryPush(At(4)));
  EXPECT_FALSE(ring.TryPush(At(5)));
  EXPECT_EQ(ring.dropped(), 2u);
  // Draining frees the slots; pushing works again and keeps the drop count.
  std::vector<TraceEvent> out;
  EXPECT_EQ(ring.Drain(out), 4u);
  EXPECT_TRUE(ring.TryPush(At(6)));
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(SpscTraceRing, ConcurrentProducerConsumerLosesNothingButDrops) {
  // One producer pushing a recognizable sequence, one consumer draining
  // concurrently: every event that was ACCEPTED must come out exactly once
  // and in order; pushed == drained + dropped.
  SpscTraceRing ring(64);
  constexpr uint64_t kEvents = 200'000;
  std::atomic<bool> done{false};
  uint64_t accepted = 0;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kEvents; ++i) {
      accepted += ring.TryPush(At(i)) ? 1 : 0;
    }
    done.store(true, std::memory_order_release);
  });
  std::vector<TraceEvent> out;
  while (!done.load(std::memory_order_acquire)) {
    ring.Drain(out);
  }
  ring.Drain(out);
  producer.join();
  EXPECT_EQ(out.size(), accepted);
  EXPECT_EQ(out.size() + ring.dropped(), kEvents);
  EXPECT_GT(out.size(), 0u);
  // Accepted events surface in push order (times strictly increase).
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].time, out[i].time);
  }
}

// --- TraceCollector ----------------------------------------------------------

TEST(TraceCollector, MergesRingsInTimeOrder) {
  TraceCollector collector(3, 16);
  // Interleaved times across rings.
  collector.ring(0).TryPush(At(5, EventType::kSteal, 0));
  collector.ring(1).TryPush(At(2, EventType::kStealFailed, 1));
  collector.ring(2).TryPush(At(9, EventType::kCrash, 2));
  collector.ring(1).TryPush(At(7, EventType::kSteal, 1));
  const std::vector<TraceEvent>& events = collector.SortedEvents();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].time, 2u);
  EXPECT_EQ(events[1].time, 5u);
  EXPECT_EQ(events[2].time, 7u);
  EXPECT_EQ(events[3].time, 9u);
  EXPECT_EQ(collector.total_dropped(), 0u);
}

TEST(TraceCollector, AccumulatesAcrossCollectCalls) {
  TraceCollector collector(1, 4);
  collector.ring(0).TryPush(At(1));
  collector.Collect();
  collector.ring(0).TryPush(At(2));
  collector.Collect();
  EXPECT_EQ(collector.SortedEvents().size(), 2u);
}

TEST(TraceCollector, TotalsDropsAcrossRings) {
  TraceCollector collector(2, 2);
  for (uint64_t i = 0; i < 4; ++i) {
    collector.ring(0).TryPush(At(i));
    collector.ring(1).TryPush(At(i));
  }
  EXPECT_EQ(collector.total_dropped(), 4u);  // 2 drops per 2-slot ring
}

// --- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistry, SetAddGet) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.Has("x"));
  EXPECT_DOUBLE_EQ(registry.Get("x"), 0.0);
  registry.Add("x", 2.0);
  registry.Add("x", 3.0);
  registry.Set("y", 0.25);
  EXPECT_DOUBLE_EQ(registry.Get("x"), 5.0);
  EXPECT_DOUBLE_EQ(registry.Get("y"), 0.25);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistry, MergeSumsSharedNamesKeepsDisjoint) {
  MetricsRegistry a;
  a.Set("shared", 10.0);
  a.Set("only_a", 1.0);
  MetricsRegistry b;
  b.Set("shared", 5.0);
  b.Set("only_b", 2.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Get("shared"), 15.0);
  EXPECT_DOUBLE_EQ(a.Get("only_a"), 1.0);
  EXPECT_DOUBLE_EQ(a.Get("only_b"), 2.0);
  EXPECT_EQ(a.size(), 3u);
}

TEST(MetricsRegistry, TextAndJsonRenderIntegersCleanly) {
  MetricsRegistry registry;
  registry.Set("count", 42.0);
  registry.Set("ratio", 0.5);
  EXPECT_NE(registry.ToString().find("count=42\n"), std::string::npos);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"count\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ratio\":0.5"), std::string::npos) << json;
}

// --- Chrome trace JSON -------------------------------------------------------

TEST(ChromeTrace, InstantAndDurationEventsWithMetadata) {
  std::vector<TraceEvent> events;
  events.push_back(TraceEvent{
      .time = 10, .type = EventType::kSteal, .cpu = 1, .task = 7, .other_cpu = 3});
  // Backoff park: detail is the measured duration in ns -> "X" with dur in us.
  events.push_back(
      TraceEvent{.time = 20, .type = EventType::kBackoffPark, .cpu = 2, .detail = 1500});
  const std::string json =
      trace::ToChromeTraceJson(events, /*dropped=*/3, {"worker 0", "worker 1", "worker 2"});
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"steal\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"backoff-park\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"other_cpu\":3"), std::string::npos);
  // Lane metadata for both lanes that appear, and the drop count.
  EXPECT_NE(json.find("\"name\":\"worker 1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker 2\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":3"), std::string::npos);
}

TEST(ChromeTrace, UnnamedLanesGetFallbackLabels) {
  std::vector<TraceEvent> events = {At(1, EventType::kRound, /*cpu=*/5)};
  const std::string json = trace::ToChromeTraceJson(events);
  EXPECT_NE(json.find("\"name\":\"lane 5\""), std::string::npos) << json;
}

TEST(ChromeTrace, EmptyStreamIsStillValidJson) {
  const std::string json = trace::ToChromeTraceJson({});
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
}

}  // namespace
}  // namespace optsched
