// Regression tests for the lost-wakeup race between a parking worker and a
// concurrent Submit/mailbox push (executor.h, wakeup_epoch_).
//
// The race: a worker re-checks its queue (empty), the steal filter (empty),
// then parks. A Submit landing between the last re-check and the park entry
// used to be invisible until the park expired — with a large backoff bound
// the item sat queued for the rest of the run. The fix samples wakeup_epoch_
// at the TOP of the worker loop and refuses to park (or bails out of an
// in-flight park) once the sample goes stale; producers bump the epoch AFTER
// the work is visible.
//
// These tests make the old window fatal: backoff long enough to outlast the
// whole run, work submitted only once every worker is deep in its park. If a
// wakeup is lost, the items are still queued at the deadline and
// items_left_unexecuted is nonzero.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "src/core/policies/thread_count.h"
#include "src/ingress/deal_channel.h"
#include "src/ingress/mailbox.h"
#include "src/runtime/executor.h"

namespace optsched {
namespace {

using namespace std::chrono_literals;

runtime::ExecutorConfig DeepParkConfig() {
  runtime::ExecutorConfig config;
  config.num_workers = 4;
  config.spin_per_unit = 20;
  // Park almost immediately when idle, and park LONG: a lost wakeup means the
  // worker sleeps past the RunFor deadline (the park's periodic stop-check
  // still lets the run terminate — with the submitted items unexecuted).
  config.idle_spins_before_yield = 1;
  config.initial_backoff_spins = 1ull << 22;
  config.max_backoff_spins = 1ull << 34;
  config.backoff_jitter = false;
  return config;
}

TEST(ExecutorWakeup, SubmitDuringDeepParkIsNotLost) {
  runtime::Executor executor(policies::MakeThreadCount(), DeepParkConfig());

  std::atomic<uint64_t> produced{0};
  const auto producer = [&](runtime::Executor& e) {
    // Let every worker run out of work and sink into its park first.
    std::this_thread::sleep_for(60ms);
    for (uint64_t id = 0; id < 100; ++id) {
      e.Submit(static_cast<uint32_t>(id % 4), {.id = id, .work_units = 1, .weight = 1024});
      produced.fetch_add(1, std::memory_order_relaxed);
    }
  };
  const runtime::ExecutorReport report = executor.RunFor(/*duration_ms=*/400, producer);
  SCOPED_TRACE(report.ToString());

  uint64_t executed = 0;
  uint64_t submit_wakeups = 0;
  for (const auto& w : report.workers) {
    executed += w.items_executed;
    submit_wakeups += w.submit_wakeups;
  }
  EXPECT_EQ(produced.load(), 100u);
  // The regression: without the wakeup epoch these stay queued until the
  // deadline and show up here instead of in items_executed.
  EXPECT_EQ(report.items_left_unexecuted, 0u);
  EXPECT_EQ(executed, 100u);
  // At least one worker must have been cut out of (or kept from entering) a
  // park by the submit — with 60ms of warm-up idle and 2^22-spin initial
  // parks, all four are parked when the submits land.
  EXPECT_GT(submit_wakeups, 0u);
}

TEST(ExecutorWakeup, SubmitBatchBumpsOncePerBatchAndWakes) {
  runtime::Executor executor(policies::MakeThreadCount(), DeepParkConfig());

  const auto producer = [&](runtime::Executor& e) {
    std::this_thread::sleep_for(60ms);
    std::vector<runtime::WorkItem> batch;
    for (uint64_t id = 0; id < 64; ++id) {
      batch.push_back({.id = id, .work_units = 1, .weight = 1024});
    }
    e.SubmitBatch(0, batch);
  };
  const runtime::ExecutorReport report = executor.RunFor(400, producer);
  SCOPED_TRACE(report.ToString());
  EXPECT_EQ(report.total_items, 64u);
  EXPECT_EQ(report.items_left_unexecuted, 0u);
}

// The same races, parameterized over the queue backend: the wakeup-epoch
// contract must hold whether the runqueue is the locked reference or the
// lock-free Chase-Lev deque (whose external submissions land in an inbox the
// owner drains — a second place a lost notify could strand work).
class ExecutorWakeupBackend : public ::testing::TestWithParam<runtime::QueueBackend> {};

TEST_P(ExecutorWakeupBackend, SubmitDuringDeepParkIsNotLost) {
  runtime::ExecutorConfig config = DeepParkConfig();
  config.backend = GetParam();
  runtime::Executor executor(policies::MakeThreadCount(), config);

  const auto producer = [&](runtime::Executor& e) {
    std::this_thread::sleep_for(60ms);
    for (uint64_t id = 0; id < 100; ++id) {
      e.Submit(static_cast<uint32_t>(id % 4), {.id = id, .work_units = 1, .weight = 1024});
    }
  };
  const runtime::ExecutorReport report = executor.RunFor(400, producer);
  SCOPED_TRACE(report.ToString());
  EXPECT_EQ(report.total_items, 100u);
  EXPECT_EQ(report.items_left_unexecuted, 0u);
}

TEST_P(ExecutorWakeupBackend, SingleNotifyOnParkEdgeIsNotStranded) {
  // The tightest version of the race: ONE item per round, pushed only after
  // every worker is deep in its park, with no follow-up traffic to paper
  // over a lost notify. If NotifyIngress landing between an owner's last
  // DrainIngress and its park entry could be missed, that round's item sits
  // in the mailbox past the deadline. (The mc "wakeup" harness proves the
  // interleaving exhaustively; this drives the real executor through it.)
  runtime::ExecutorConfig config = DeepParkConfig();
  config.backend = GetParam();
  ingress::MailboxSet mailboxes(config.num_workers, /*capacity_per_mailbox=*/4);
  config.ingress = &mailboxes;

  runtime::Executor executor(policies::MakeThreadCount(), config);
  mailboxes.set_notify([&](uint32_t worker) { executor.NotifyIngress(worker); });

  std::atomic<uint64_t> admitted{0};
  const auto producer = [&](runtime::Executor& e) {
    std::this_thread::sleep_for(50ms);
    for (uint64_t round = 0; round < 8 && !e.stopped(); ++round) {
      if (mailboxes.Push(static_cast<uint32_t>(round % 4),
                         {.id = round, .work_units = 1, .weight = 1024})) {
        admitted.fetch_add(1, std::memory_order_relaxed);
      }
      // Let the woken owner drain, execute, and park again before the next
      // single-item notify, so every round re-arms the edge.
      std::this_thread::sleep_for(30ms);
    }
  };
  const runtime::ExecutorReport report = executor.RunFor(600, producer);
  SCOPED_TRACE(report.ToString());

  uint64_t executed = 0;
  for (const auto& w : report.workers) {
    executed += w.items_executed;
  }
  EXPECT_EQ(executed, admitted.load());
  EXPECT_EQ(report.items_left_unexecuted, 0u);
  EXPECT_EQ(mailboxes.TotalPending(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ExecutorWakeupBackend,
    ::testing::Values(runtime::QueueBackend::kLocked, runtime::QueueBackend::kChaseLev),
    [](const ::testing::TestParamInfo<runtime::QueueBackend>& info) {
      return std::string(runtime::QueueBackendName(info.param));
    });

TEST_P(ExecutorWakeupBackend, DealPushToDeepParkedPeerIsNotLost) {
  // The deal-vs-park race: every peer is deep in its park when the dealer's
  // surplus arrives, so each dealt batch lands in a PARKED peer's deal
  // mailbox. The DealChannel notify -> NotifyIngress -> epoch bump is the
  // only thing standing between that batch and a 2^34-spin sleep; stealing
  // is disabled so no reactive path can paper over a lost deal wakeup —
  // dealt items still in the mailbox at the deadline surface as
  // items_left_unexecuted.
  runtime::ExecutorConfig config = DeepParkConfig();
  config.backend = GetParam();
  config.steal_enabled = false;
  config.deal.enabled = true;
  config.deal.threshold = 2;
  config.deal.grace_rounds = 0;  // always-on: no robbery can open a window here
  config.deal.check_interval_items = 1;
  ingress::DealChannel deal_channel(config.num_workers, /*capacity_per_mailbox=*/64);
  config.deal_sink = &deal_channel;

  runtime::Executor executor(policies::MakeThreadCount(), config);
  deal_channel.set_notify([&](uint32_t worker) { executor.NotifyIngress(worker); });

  const auto producer = [&](runtime::Executor& e) {
    // Let all four workers sink into their parks, then pile the whole burst
    // onto worker 0: only dealing can move it anywhere else.
    std::this_thread::sleep_for(60ms);
    for (uint64_t id = 0; id < 100; ++id) {
      e.Submit(0, {.id = id, .work_units = 1, .weight = 1024});
    }
  };
  const runtime::ExecutorReport report = executor.RunFor(/*duration_ms=*/400, producer);
  SCOPED_TRACE(report.ToString());

  EXPECT_EQ(report.total_items, 100u);
  EXPECT_EQ(report.items_left_unexecuted, 0u);
  EXPECT_EQ(report.total_successes(), 0u);  // steals stayed off
  EXPECT_EQ(deal_channel.TotalDealtPending(), 0);
  // A 100-item burst against threshold 2 with idle peers must have dealt:
  // a zero here means the deal round never fired and the burst was drained
  // by the owner alone, which would let a lost-notify bug hide.
  EXPECT_GT(report.total_deal_items_dealt() + report.total_deal_items_direct(), 0u);
}

TEST(ExecutorWakeup, MailboxNotifyWakesParkedOwner) {
  // The same race through the ingress path: a push into a parked owner's
  // mailbox fires MailboxSet's notify -> Executor::NotifyIngress -> epoch
  // bump. Without it the owner's drain waits out the full park.
  runtime::ExecutorConfig config = DeepParkConfig();
  ingress::MailboxSet mailboxes(config.num_workers, /*capacity_per_mailbox=*/256);
  config.ingress = &mailboxes;

  runtime::Executor executor(policies::MakeThreadCount(), config);
  mailboxes.set_notify([&](uint32_t worker) { executor.NotifyIngress(worker); });

  std::atomic<uint64_t> admitted{0};
  const auto producer = [&](runtime::Executor& e) {
    std::this_thread::sleep_for(60ms);
    for (uint64_t id = 0; id < 100; ++id) {
      if (mailboxes.Push(static_cast<uint32_t>(id % 4),
                         {.id = id, .work_units = 1, .weight = 1024})) {
        admitted.fetch_add(1, std::memory_order_relaxed);
      }
      (void)e;
    }
  };
  const runtime::ExecutorReport report = executor.RunFor(400, producer);
  SCOPED_TRACE(report.ToString());

  uint64_t executed = 0;
  for (const auto& w : report.workers) {
    executed += w.items_executed;
  }
  // Capacity 256 per mailbox, 25 items each: everything is admitted, and an
  // admitted item must be drained and executed before the deadline.
  EXPECT_EQ(admitted.load(), 100u);
  EXPECT_EQ(executed, 100u);
  EXPECT_EQ(report.items_left_unexecuted, 0u);
  EXPECT_EQ(report.total_mailbox_items_drained(), 100u);
  EXPECT_EQ(mailboxes.TotalPending(), 0);
}

}  // namespace
}  // namespace optsched
