// Open-system executor mode: dynamic submission from a producer thread with
// a wall-clock deadline — no item lost, no item double-executed.

#include <gtest/gtest.h>

#include <atomic>

#include "src/core/policies/thread_count.h"
#include "src/runtime/executor.h"

namespace optsched {
namespace {

TEST(ExecutorDynamic, ProducerDrivenRunAccountsForEveryItem) {
  runtime::ExecutorConfig config;
  config.num_workers = 4;
  config.spin_per_unit = 50;
  runtime::Executor executor(policies::MakeThreadCount(), config);

  std::atomic<uint64_t> produced{0};
  const auto producer = [&](runtime::Executor& e) {
    uint64_t id = 0;
    while (!e.stopped()) {
      // Always feed queue 0: the other workers must steal to share.
      e.Submit(0, {.id = id++, .work_units = 40, .weight = 1024});
      produced.fetch_add(1, std::memory_order_relaxed);
      // Small batch pacing so the queue neither starves nor explodes.
      for (volatile int spin = 0; spin < 2000; ++spin) {
      }
    }
  };
  const runtime::ExecutorReport report = executor.RunFor(/*duration_ms=*/100, producer);
  SCOPED_TRACE(report.ToString());

  uint64_t executed = 0;
  for (const auto& w : report.workers) {
    executed += w.items_executed;
  }
  EXPECT_GT(executed, 0u);
  EXPECT_EQ(report.total_items, produced.load());
  // Conservation: executed + still-queued == submitted.
  EXPECT_EQ(executed + report.items_left_unexecuted, report.total_items);
}

TEST(ExecutorDynamic, StealingSpreadsDynamicWork) {
  runtime::ExecutorConfig config;
  config.num_workers = 4;
  config.spin_per_unit = 200;
  runtime::Executor executor(policies::MakeThreadCount(), config);
  const auto producer = [](runtime::Executor& e) {
    uint64_t id = 0;
    while (!e.stopped()) {
      e.Submit(0, {.id = id++, .work_units = 200, .weight = 1024});
      for (volatile int spin = 0; spin < 500; ++spin) {
      }
    }
  };
  const runtime::ExecutorReport report = executor.RunFor(150, producer);
  uint64_t helper_items = 0;
  for (size_t i = 1; i < report.workers.size(); ++i) {
    helper_items += report.workers[i].items_executed;
  }
  EXPECT_GT(helper_items, 0u) << report.ToString();
  EXPECT_GT(report.total_successes(), 0u);
}

TEST(ExecutorDynamic, DeadlineWithoutProducerJustIdles) {
  runtime::ExecutorConfig config;
  config.num_workers = 2;
  runtime::Executor executor(policies::MakeThreadCount(), config);
  const runtime::ExecutorReport report = executor.RunFor(20);
  EXPECT_EQ(report.total_items, 0u);
  EXPECT_EQ(report.items_left_unexecuted, 0u);
  EXPECT_GE(report.wall_time_ns, 20'000'000u);
}

TEST(ExecutorDynamic, SeededItemsCountedInDeadlineMode) {
  runtime::ExecutorConfig config;
  config.num_workers = 2;
  config.spin_per_unit = 20;
  runtime::Executor executor(policies::MakeThreadCount(), config);
  executor.Seed(0, {{.id = 1, .work_units = 5, .weight = 1024},
                    {.id = 2, .work_units = 5, .weight = 1024}});
  const runtime::ExecutorReport report = executor.RunFor(50);
  uint64_t executed = 0;
  for (const auto& w : report.workers) {
    executed += w.items_executed;
  }
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(report.total_items, 2u);
  EXPECT_EQ(report.items_left_unexecuted, 0u);
}

}  // namespace
}  // namespace optsched
