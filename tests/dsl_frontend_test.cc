// DSL front-end tests: lexer tokens/locations/errors, parser grammar and
// diagnostics, pretty-print round-trips.

#include <gtest/gtest.h>

#include "src/dsl/lexer.h"
#include "src/dsl/parser.h"

namespace optsched::dsl {
namespace {

std::vector<TokenKind> KindsOf(std::string_view source) {
  std::vector<TokenKind> kinds;
  for (const Token& t : LexAll(source)) {
    kinds.push_back(t.kind);
  }
  return kinds;
}

TEST(Lexer, PunctuationAndOperators) {
  EXPECT_EQ(KindsOf("{ } ( ) , ; ."),
            (std::vector<TokenKind>{TokenKind::kLBrace, TokenKind::kRBrace, TokenKind::kLParen,
                                    TokenKind::kRParen, TokenKind::kComma, TokenKind::kSemicolon,
                                    TokenKind::kDot, TokenKind::kEnd}));
  EXPECT_EQ(KindsOf("== != <= >= < > && || = ! + - * / %"),
            (std::vector<TokenKind>{TokenKind::kEq, TokenKind::kNe, TokenKind::kLe,
                                    TokenKind::kGe, TokenKind::kLt, TokenKind::kGt,
                                    TokenKind::kAndAnd, TokenKind::kOrOr, TokenKind::kAssign,
                                    TokenKind::kBang, TokenKind::kPlus, TokenKind::kMinus,
                                    TokenKind::kStar, TokenKind::kSlash, TokenKind::kPercent,
                                    TokenKind::kEnd}));
}

TEST(Lexer, NumbersAndIdentifiers) {
  const auto tokens = LexAll("policy x42 _foo 123");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].text, "policy");
  EXPECT_EQ(tokens[1].text, "x42");
  EXPECT_EQ(tokens[2].text, "_foo");
  EXPECT_EQ(tokens[3].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[3].number, 123);
}

TEST(Lexer, CommentsAreSkipped) {
  const auto kinds = KindsOf("a # the rest is ignored != %\nb");
  EXPECT_EQ(kinds, (std::vector<TokenKind>{TokenKind::kIdent, TokenKind::kIdent, TokenKind::kEnd}));
}

TEST(Lexer, TracksLineAndColumn) {
  const auto tokens = LexAll("a\n  b");
  EXPECT_EQ(tokens[0].location.line, 1u);
  EXPECT_EQ(tokens[0].location.column, 1u);
  EXPECT_EQ(tokens[1].location.line, 2u);
  EXPECT_EQ(tokens[1].location.column, 3u);
}

TEST(Lexer, StrayAmpersandIsError) {
  const auto tokens = LexAll("a & b");
  EXPECT_EQ(tokens[1].kind, TokenKind::kError);
  EXPECT_NE(tokens[1].text.find("&&"), std::string::npos);
}

TEST(Lexer, UnknownCharacterIsError) {
  const auto tokens = LexAll("@");
  EXPECT_EQ(tokens[0].kind, TokenKind::kError);
}

TEST(Parser, ExpressionPrecedence) {
  const auto result = ParseExpression("1 + 2 * 3 >= 4 && a.load < 5 || !b.load == 0");
  ASSERT_NE(result.expr, nullptr);
  // Fully parenthesized print encodes the parse tree: '*' > '+' > comparisons
  // > '&&' > '||', and '!' binds to the primary.
  EXPECT_EQ(result.expr->ToString(),
            "((((1 + (2 * 3)) >= 4) && (a.load < 5)) || (!b.load == 0))");
}

TEST(Parser, UnaryAndCalls) {
  const auto result = ParseExpression("min(-a.load, abs(b.load - 3))");
  ASSERT_NE(result.expr, nullptr);
  EXPECT_EQ(result.expr->ToString(), "min(-a.load, abs((b.load - 3)))");
}

TEST(Parser, ParenthesesOverridePrecedence) {
  const auto result = ParseExpression("(1 + 2) * 3");
  ASSERT_NE(result.expr, nullptr);
  EXPECT_EQ(result.expr->ToString(), "((1 + 2) * 3)");
}

TEST(Parser, FullPolicyDeclaration) {
  const char* source = R"(
    policy p {
      metric weighted;
      let margin = 2;
      filter(self, other) { other.load - self.load >= margin }
      choice nearest;
      migrate(task, victim, thief) { task.weight < victim.load - thief.load }
    }
  )";
  const ParseResult result = ParsePolicy(source);
  ASSERT_TRUE(result.ok()) << result.DiagnosticsToString();
  const PolicyDecl& decl = *result.policy;
  EXPECT_EQ(decl.name, "p");
  EXPECT_EQ(decl.metric, MetricKind::kWeighted);
  EXPECT_EQ(decl.choice, ChoiceKind::kNearest);
  ASSERT_EQ(decl.lets.size(), 1u);
  EXPECT_EQ(decl.lets[0].name, "margin");
  EXPECT_EQ(decl.filter_self, "self");
  EXPECT_EQ(decl.filter_stealee, "other");
  EXPECT_EQ(decl.migrate_task, "task");
}

TEST(Parser, MissingFilterIsAnError) {
  const ParseResult result = ParsePolicy("policy p { metric count; choice maxload; }");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.DiagnosticsToString().find("filter"), std::string::npos);
}

TEST(Parser, UnknownFieldIsAnError) {
  const ParseResult result =
      ParsePolicy("policy p { filter(a, b) { b.runqueue_len >= 2 } }");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.DiagnosticsToString().find("unknown field"), std::string::npos);
}

TEST(Parser, DuplicateSectionsAreErrors) {
  const ParseResult result = ParsePolicy(
      "policy p { metric count; metric count; filter(a, b) { b.load >= 2 } }");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.DiagnosticsToString().find("duplicate"), std::string::npos);
}

TEST(Parser, UnknownChoiceIsAnError) {
  const ParseResult result =
      ParsePolicy("policy p { filter(a, b) { b.load >= 2 } choice coolest; }");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.DiagnosticsToString().find("unknown choice"), std::string::npos);
}

TEST(Parser, DiagnosticsCarryLocations) {
  const ParseResult result = ParsePolicy("policy p {\n  junk\n}");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.diagnostics[0].location.line, 2u);
}

TEST(Parser, PolicyToStringReparses) {
  const char* source = R"(policy roundtrip {
    metric count;
    filter(self, stealee) { stealee.load - self.load >= 2 }
    choice maxload;
    migrate(t, v, h) { t.weight < v.load - h.load }
  })";
  const ParseResult first = ParsePolicy(source);
  ASSERT_TRUE(first.ok()) << first.DiagnosticsToString();
  const std::string printed = first.policy->ToString();
  const ParseResult second = ParsePolicy(printed);
  ASSERT_TRUE(second.ok()) << printed << "\n" << second.DiagnosticsToString();
  // Printing is a fixpoint after one round.
  EXPECT_EQ(second.policy->ToString(), printed);
}

}  // namespace
}  // namespace optsched::dsl
