// Unit tests for src/stats: streaming summaries and histograms.

#include <gtest/gtest.h>

#include <cmath>

#include "src/stats/histogram.h"
#include "src/stats/summary.h"

namespace optsched {
namespace {

TEST(Summary, MatchesClosedForm) {
  stats::Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic textbook data set
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptyIsZero) {
  stats::Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, MergeEqualsCombinedStream) {
  stats::Summary all;
  stats::Summary left;
  stats::Summary right;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10.0;
    all.Add(v);
    (i % 2 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Summary, MergeWithEmptySides) {
  stats::Summary a;
  stats::Summary b;
  b.Add(3.0);
  a.Merge(b);  // empty <- non-empty
  EXPECT_EQ(a.count(), 1u);
  stats::Summary c;
  a.Merge(c);  // non-empty <- empty
  EXPECT_EQ(a.count(), 1u);
}

TEST(Histogram, CountsAndClamping) {
  stats::Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(5.5);
  h.Add(-1.0);   // underflow -> first bucket
  h.Add(100.0);  // overflow -> last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[5], 1u);
  EXPECT_EQ(h.buckets()[9], 1u);
}

TEST(Histogram, PercentilesOnUniformData) {
  stats::Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.Add(static_cast<double>(i) + 0.5);
  }
  EXPECT_NEAR(h.Percentile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.Percentile(0.9), 90.0, 2.0);
  EXPECT_NEAR(h.Percentile(0.99), 99.0, 2.0);
  EXPECT_LE(h.Percentile(0.0), 1.0);
  EXPECT_NEAR(h.Percentile(1.0), 100.0, 1.0);
}

TEST(Histogram, MergeAddsBuckets) {
  stats::Histogram a(0.0, 10.0, 10);
  stats::Histogram b(0.0, 10.0, 10);
  a.Add(1.0);
  b.Add(1.0);
  b.Add(9.0);
  a.Merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.buckets()[1], 2u);
}

TEST(Histogram, RenderShowsNonEmptyBuckets) {
  stats::Histogram h(0.0, 10.0, 10);
  h.Add(3.5);
  const std::string out = h.Render();
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(LogHistogram, BucketsByPowerOfTwo) {
  stats::LogHistogram h;
  h.Add(0);
  h.Add(1);
  h.Add(2);
  h.Add(3);
  h.Add(1000);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_NEAR(h.Percentile(0.0), 0.0, 1.0);
  // 1000 lands in [512, 1024); the 100th percentile must reach that bucket.
  EXPECT_GE(h.Percentile(1.0), 512.0);
  EXPECT_LE(h.Percentile(1.0), 1024.0);
}

TEST(LogHistogram, MergeAndRender) {
  stats::LogHistogram a;
  stats::LogHistogram b;
  a.Add(5);
  b.Add(5000);
  a.Merge(b);
  EXPECT_EQ(a.total(), 2u);
  EXPECT_NE(a.Render().find('#'), std::string::npos);
}

}  // namespace
}  // namespace optsched
