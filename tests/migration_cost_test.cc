// Migration-cost model: cold-cache penalties charge extra CPU time at
// schedule-in, proportional to topology distance — making locality-aware
// choice steps measurably matter.

#include <gtest/gtest.h>

#include "src/core/policies/locality.h"
#include "src/core/policies/thread_count.h"
#include "src/sim/simulator.h"

namespace optsched {
namespace {

// A blocking task that ran on cpu0 wakes while cpu0 is occupied by a hog;
// idle-preferred placement moves it to cpu1 — a genuine cold migration.
// (A task stolen before its FIRST run migrates for free: its cache is cold
// everywhere, and the model deliberately only charges for re-runs.)
sim::SimMetrics RunRanThenMoved(uint64_t penalty_per_distance) {
  const Topology topo = Topology::Smp(2);
  sim::SimConfig config;
  config.max_time_us = 60'000'000;
  config.lb_period_us = 1'000'000'000;  // placement, not balancing, moves it
  config.wake_placement = sim::WakePlacement::kIdlePreferred;
  config.migration_penalty_us_per_distance = penalty_per_distance;
  sim::Simulator s(topo, policies::MakeThreadCount(), config, 1);
  // The mover: 2ms burst on cpu0, 1ms block, then resumes.
  sim::TaskSpec mover;
  mover.total_service_us = 4'000;
  mover.burst_us = 2'000;
  mover.mean_block_us = 1'000;
  s.Submit(mover, 0, 0);
  // The hog arrives on cpu0 while the mover runs; when the mover wakes,
  // cpu0 is busy and cpu1 idle.
  sim::TaskSpec hog;
  hog.total_service_us = 50'000;
  s.Submit(hog, 100, 0);
  s.Run();
  return s.metrics();
}

TEST(MigrationCost, PenaltyChargedForRanThenMovedTask) {
  const sim::SimMetrics metrics = RunRanThenMoved(/*penalty_per_distance=*/100);
  EXPECT_GT(metrics.cold_migrations, 0u);
  EXPECT_GT(metrics.migration_penalty_us, 0u);
  // Same-package distance is 2: each cold move costs 200us.
  EXPECT_EQ(metrics.migration_penalty_us, metrics.cold_migrations * 200u);
}

TEST(MigrationCost, FirstRunIsFreeEverywhere) {
  // A never-ran task stolen cross-node pays nothing.
  const Topology topo = Topology::Numa(2, 2);
  sim::SimConfig config;
  config.max_time_us = 60'000'000;
  config.lb_period_us = 1'000;
  config.migration_penalty_us_per_distance = 100;
  sim::Simulator s(topo, policies::MakeThreadCount(), config, 1);
  sim::TaskSpec spec;
  spec.total_service_us = 10'000;
  s.Submit(spec, 0, 0);
  s.Submit(spec, 0, 0);
  s.Submit(spec, 0, 0);
  s.Run();
  EXPECT_GT(s.metrics().migrations, 0u);            // steals happened
  EXPECT_EQ(s.metrics().cold_migrations, 0u);       // but nobody had run yet
  EXPECT_EQ(s.metrics().migration_penalty_us, 0u);
  EXPECT_EQ(s.accounting().total_busy_us(), 30'000u);
}

TEST(MigrationCost, DisabledByDefault) {
  const sim::SimMetrics metrics = RunRanThenMoved(/*penalty_per_distance=*/0);
  EXPECT_GT(metrics.cold_migrations, 0u);      // moves still counted
  EXPECT_EQ(metrics.migration_penalty_us, 0u);  // but free
}

TEST(MigrationCost, NumaAwareChoiceBeatsFlatChoiceUnderPenalties) {
  // Both nodes hold an identical pile on their first CPU. The flat max-load
  // choice tie-breaks by lowest id, so node-1 thieves raid node 0 and pay
  // cross-node penalties; the NUMA-aware choice drains each pile locally.
  const Topology topo = Topology::Numa(2, 4);
  auto run = [&](std::shared_ptr<const BalancePolicy> policy) {
    sim::SimConfig config;
    config.max_time_us = 400'000'000;
    config.lb_period_us = 1'000;
    config.wake_placement = sim::WakePlacement::kLastCpu;
    config.migration_penalty_us_per_distance = 200;
    sim::Simulator s(topo, std::move(policy), config, 5);
    sim::TaskSpec spec;
    spec.total_service_us = 10'000;
    for (int i = 0; i < 16; ++i) {
      s.Submit(spec, 0, 0);  // node 0 pile
      s.Submit(spec, 0, 4);  // node 1 pile
    }
    s.Run();
    return std::make_pair(s.metrics().makespan_us, s.metrics().migration_penalty_us);
  };
  const auto [flat_makespan, flat_penalty] = run(policies::MakeThreadCount());
  const auto [numa_makespan, numa_penalty] =
      run(policies::MakeNumaAware(policies::MakeThreadCount()));
  EXPECT_LT(numa_penalty, flat_penalty);
  EXPECT_LT(numa_makespan, flat_makespan);
}

}  // namespace
}  // namespace optsched
