// Unit tests for src/sched: task weights, core state, machine state and the
// potential function.

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/base/rng.h"
#include "src/sched/core_state.h"
#include "src/sched/machine_state.h"
#include "src/sched/task.h"

namespace optsched {
namespace {

TEST(TaskWeights, MatchesCfsTable) {
  EXPECT_EQ(NiceToWeight(0), 1024u);
  EXPECT_EQ(NiceToWeight(-20), 88761u);
  EXPECT_EQ(NiceToWeight(19), 15u);
  EXPECT_EQ(NiceToWeight(1), 820u);
  EXPECT_EQ(NiceToWeight(-1), 1277u);
}

TEST(TaskWeights, EachStepIsRoughly25Percent) {
  for (int nice = kMinNice; nice < kMaxNice; ++nice) {
    const double ratio = static_cast<double>(NiceToWeight(nice)) /
                         static_cast<double>(NiceToWeight(nice + 1));
    EXPECT_GT(ratio, 1.15) << "nice " << nice;
    EXPECT_LT(ratio, 1.35) << "nice " << nice;
  }
}

TEST(TaskWeightsDeath, RejectsOutOfRangeNice) {
  EXPECT_DEATH(NiceToWeight(-21), "nice");
  EXPECT_DEATH(NiceToWeight(20), "nice");
}

TEST(CoreState, PaperPredicates) {
  CoreState c;
  EXPECT_TRUE(c.IsIdle());
  EXPECT_FALSE(c.IsOverloaded());
  c.Enqueue(MakeTask(1));
  EXPECT_FALSE(c.IsIdle());       // queued work: not idle
  EXPECT_FALSE(c.IsOverloaded()); // one thread total: not overloaded
  c.ScheduleNext();
  EXPECT_EQ(c.TaskCount(), 1);
  c.Enqueue(MakeTask(2));
  EXPECT_TRUE(c.IsOverloaded());  // current + 1 ready = 2
}

TEST(CoreState, WeightedLoadTracksAllMutations) {
  CoreState c;
  c.Enqueue(MakeTask(1, 0));    // 1024
  c.Enqueue(MakeTask(2, -10));  // 9548
  EXPECT_EQ(c.WeightedLoad(), 1024 + 9548);
  c.ScheduleNext();  // current moves within the core: unchanged
  EXPECT_EQ(c.WeightedLoad(), 1024 + 9548);
  auto stolen = c.DequeueTail();
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(stolen->id, 2u);
  EXPECT_EQ(c.WeightedLoad(), 1024);
  auto done = c.ClearCurrent();
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(c.WeightedLoad(), 0);
  EXPECT_TRUE(c.IsIdle());
}

TEST(CoreState, DequeueOrderFifoHeadLifoTail) {
  CoreState c;
  c.Enqueue(MakeTask(1));
  c.Enqueue(MakeTask(2));
  c.Enqueue(MakeTask(3));
  EXPECT_EQ(c.DequeueHead()->id, 1u);
  EXPECT_EQ(c.DequeueTail()->id, 3u);
  EXPECT_EQ(c.DequeueHead()->id, 2u);
  EXPECT_FALSE(c.DequeueHead().has_value());
  EXPECT_FALSE(c.DequeueTail().has_value());
}

TEST(CoreState, RemoveById) {
  CoreState c;
  c.Enqueue(MakeTask(1));
  c.Enqueue(MakeTask(2));
  EXPECT_TRUE(c.Remove(1));
  EXPECT_FALSE(c.Remove(1));
  EXPECT_EQ(c.TaskCount(), 1);
}

TEST(CoreState, PreemptPutsCurrentAtHead) {
  CoreState c;
  c.Enqueue(MakeTask(1));
  c.Enqueue(MakeTask(2));
  c.ScheduleNext();  // 1 running
  c.PreemptCurrent();
  EXPECT_FALSE(c.current().has_value());
  EXPECT_EQ(c.ready().front().id, 1u);
  EXPECT_EQ(c.TaskCount(), 2);
}

TEST(CoreStateDeath, SetCurrentTwiceIsFatal) {
  CoreState c;
  c.SetCurrent(MakeTask(1));
  EXPECT_DEATH(c.SetCurrent(MakeTask(2)), "already");
}

TEST(MachineState, FromLoadsShapesCores) {
  const MachineState m = MachineState::FromLoads({0, 1, 3});
  EXPECT_TRUE(m.IsIdle(0));
  EXPECT_FALSE(m.IsIdle(1));
  EXPECT_FALSE(m.IsOverloaded(1));
  EXPECT_TRUE(m.IsOverloaded(2));
  EXPECT_EQ(m.TotalTasks(), 4u);
  EXPECT_TRUE(m.core(1).current().has_value());   // one task runs
  EXPECT_EQ(m.core(2).ready().size(), 2u);        // rest queued
}

TEST(MachineState, WorkConservedDefinition) {
  EXPECT_TRUE(MachineState::FromLoads({1, 1, 1}).WorkConserved());
  EXPECT_TRUE(MachineState::FromLoads({0, 1, 1}).WorkConserved());   // idle but nobody overloaded
  EXPECT_TRUE(MachineState::FromLoads({2, 2, 1}).WorkConserved());   // overloaded but nobody idle
  EXPECT_FALSE(MachineState::FromLoads({0, 1, 2}).WorkConserved());  // the paper's bad state
}

TEST(MachineState, StealMovesOneTask) {
  MachineState m = MachineState::FromLoads({0, 3});
  const auto stolen = m.StealOneTask(/*victim=*/1, /*thief=*/0);
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(m.Load(0, LoadMetric::kTaskCount), 1);
  EXPECT_EQ(m.Load(1, LoadMetric::kTaskCount), 2);
  EXPECT_EQ(m.TotalTasks(), 3u);
}

TEST(MachineState, StealFromEmptyRunqueueFails) {
  MachineState m = MachineState::FromLoads({0, 1});  // victim's single task is current
  EXPECT_FALSE(m.StealOneTask(1, 0).has_value());
}

TEST(MachineState, StealTaskById) {
  MachineState m(2);
  m.Place(MakeTask(10), 0);
  m.Place(MakeTask(11), 0);
  EXPECT_TRUE(m.StealTaskById(0, 1, 10));
  EXPECT_FALSE(m.StealTaskById(0, 1, 10));  // already gone
  EXPECT_EQ(m.core(1).ready().front().id, 10u);
}

TEST(MachineStateDeath, SelfStealIsFatal) {
  MachineState m = MachineState::FromLoads({2, 0});
  EXPECT_DEATH(m.StealOneTask(0, 0), "itself");
}

TEST(Potential, MatchesPaperDoubleSum) {
  // d = sum_i sum_j |l_i - l_j| over ordered pairs.
  auto brute = [](const std::vector<int64_t>& loads) {
    int64_t d = 0;
    for (int64_t a : loads) {
      for (int64_t b : loads) {
        d += std::abs(a - b);
      }
    }
    return d;
  };
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int64_t> loads;
    const int n = static_cast<int>(rng.NextInRange(1, 8));
    for (int i = 0; i < n; ++i) {
      loads.push_back(rng.NextInRange(0, 12));
    }
    EXPECT_EQ(PotentialOfLoads(loads), brute(loads));
  }
}

TEST(Potential, MoveFromHighToLowStrictlyDecreases) {
  // The §4.3 termination argument: moving one unit from a core that is at
  // least 2 ahead strictly decreases d.
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<int64_t> loads;
    const int n = static_cast<int>(rng.NextInRange(2, 8));
    for (int i = 0; i < n; ++i) {
      loads.push_back(rng.NextInRange(0, 10));
    }
    // Pick a (victim, thief) pair with difference >= 2 if one exists.
    for (int v = 0; v < n; ++v) {
      for (int t = 0; t < n; ++t) {
        if (loads[v] - loads[t] >= 2) {
          const int64_t before = PotentialOfLoads(loads);
          std::vector<int64_t> after = loads;
          after[v] -= 1;
          after[t] += 1;
          EXPECT_LT(PotentialOfLoads(after), before);
        }
      }
    }
  }
}

TEST(Potential, WeightedMetricOnMachine) {
  MachineState m(2);
  m.Place(MakeTask(1, -10), 0);  // 9548
  m.Place(MakeTask(2, 0), 1);    // 1024
  EXPECT_EQ(m.Potential(LoadMetric::kWeightedLoad), 2 * (9548 - 1024));
  EXPECT_EQ(m.Potential(LoadMetric::kTaskCount), 0);
}

TEST(MachineState, SnapshotMatchesLoads) {
  MachineState m = MachineState::FromLoads({2, 0, 5});
  const LoadSnapshot snap = m.Snapshot();
  ASSERT_EQ(snap.num_cpus(), 3u);
  for (CpuId c = 0; c < 3; ++c) {
    EXPECT_EQ(snap.Load(c, LoadMetric::kTaskCount), m.Load(c, LoadMetric::kTaskCount));
    EXPECT_EQ(snap.Load(c, LoadMetric::kWeightedLoad), m.Load(c, LoadMetric::kWeightedLoad));
  }
}

TEST(MachineState, SpawnAssignsFreshIds) {
  MachineState m(2);
  const TaskId a = m.Spawn(0);
  const TaskId b = m.Spawn(1);
  EXPECT_NE(a, b);
  EXPECT_EQ(m.TotalTasks(), 2u);
}

}  // namespace
}  // namespace optsched
