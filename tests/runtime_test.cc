// Deeper runtime tests: seqlock consistency under concurrency, spinlock
// mutual exclusion, steal-phase semantics, and executor ablations.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/core/policies/thread_count.h"
#include "src/core/policies/weighted.h"
#include "src/runtime/concurrent_machine.h"
#include "src/runtime/executor.h"
#include "src/runtime/seqlock.h"
#include "src/runtime/spinlock.h"

namespace optsched {
namespace {

TEST(SpinLock, MutualExclusionCounter) {
  runtime::SpinLock lock;
  int64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(SpinLock, TryLockReflectsState) {
  runtime::SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(DualLockGuard, ConsistentRankingDoesNotDeadlock) {
  // The guard acquires in the caller-given order; deadlock freedom comes
  // from every site ranking a pair identically (the runtime uses queue
  // index). Two threads hammering the same ranked pair must make progress.
  runtime::SpinLock a;
  runtime::SpinLock b;
  std::atomic<int> done{0};
  std::thread t1([&] {
    for (int i = 0; i < 5000; ++i) {
      runtime::DualLockGuard guard(a, b);
    }
    ++done;
  });
  std::thread t2([&] {
    for (int i = 0; i < 5000; ++i) {
      runtime::DualLockGuard guard(a, b);
    }
    ++done;
  });
  t1.join();
  t2.join();
  EXPECT_EQ(done.load(), 2);
}

TEST(Seqlock, ReadersNeverSeeTornPairs) {
  // Writer publishes {x, 2x}; readers must always observe that relation.
  struct Pair {
    int64_t a;
    int64_t b;
  };
  runtime::Seqlock<Pair> cell;
  cell.Write({0, 0});
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const Pair p = cell.Read();
        if (p.b != 2 * p.a) {
          ++torn;
        }
      }
    });
  }
  for (int64_t i = 1; i <= 200000; ++i) {
    cell.Write({i, 2 * i});
  }
  stop = true;
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_EQ(torn.load(), 0u);
}

TEST(ConcurrentRunQueue, LoadTracksOwnerOperations) {
  runtime::ConcurrentRunQueue q;
  EXPECT_EQ(q.ReadLoad().task_count, 0);
  q.Push({.id = 1, .work_units = 1, .weight = 100});
  q.Push({.id = 2, .work_units = 1, .weight = 200});
  EXPECT_EQ(q.ReadLoad().task_count, 2);
  EXPECT_EQ(q.ReadLoad().weighted_load, 300);
  const auto item = q.PopForRun();
  ASSERT_TRUE(item.has_value());
  // Running item still counts toward the load (it is the "current" thread).
  EXPECT_EQ(q.ReadLoad().task_count, 2);
  q.FinishCurrent();
  EXPECT_EQ(q.ReadLoad().task_count, 1);
  EXPECT_EQ(q.ReadLoad().weighted_load, item->id == 1 ? 200 : 100);
}

TEST(ConcurrentMachine, StealMovesTailToThief) {
  runtime::ConcurrentMachine machine(2);
  machine.queue(0).Push({.id = 1, .work_units = 1, .weight = 1024});
  machine.queue(0).Push({.id = 2, .work_units = 1, .weight = 1024});
  machine.queue(0).Push({.id = 3, .work_units = 1, .weight = 1024});
  const auto policy = policies::MakeThreadCount();
  runtime::StealCounters counters;
  Rng rng(1);
  EXPECT_TRUE(machine.TrySteal(*policy, /*thief=*/1, machine.Snapshot(), rng,
                               runtime::StealOptions{}, counters));
  EXPECT_EQ(counters.successes, 1u);
  EXPECT_EQ(machine.queue(1).ReadLoad().task_count, 1);
  EXPECT_EQ(machine.queue(0).ReadLoad().task_count, 2);
}

TEST(ConcurrentMachine, StaleSnapshotFailsRecheck) {
  runtime::ConcurrentMachine machine(2);
  machine.queue(0).Push({.id = 1, .work_units = 1, .weight = 1024});
  machine.queue(0).Push({.id = 2, .work_units = 1, .weight = 1024});
  const auto policy = policies::MakeThreadCount();
  const LoadSnapshot stale = machine.Snapshot();  // loads (2, 0)
  // The queue drains behind the snapshot's back.
  (void)machine.queue(0).PopForRun();
  machine.queue(0).FinishCurrent();
  (void)machine.queue(0).PopForRun();
  machine.queue(0).FinishCurrent();
  runtime::StealCounters counters;
  Rng rng(1);
  EXPECT_FALSE(machine.TrySteal(*policy, 1, stale, rng, runtime::StealOptions{}, counters));
  EXPECT_EQ(counters.failed_recheck, 1u);
  EXPECT_EQ(counters.successes, 0u);
}

TEST(ConcurrentMachine, EmptyFilterIsNotAnAttempt) {
  runtime::ConcurrentMachine machine(2);
  const auto policy = policies::MakeThreadCount();
  runtime::StealCounters counters;
  Rng rng(1);
  EXPECT_FALSE(machine.TrySteal(*policy, 1, machine.Snapshot(), rng,
                                runtime::StealOptions{}, counters));
  EXPECT_EQ(counters.empty_filter, 1u);
  EXPECT_EQ(counters.attempts, 0u);
}

TEST(ConcurrentMachine, WeightedMigrationRespectsDiff) {
  runtime::ConcurrentMachine machine(2);
  // Victim: two heavy items. Thief weighted load 0 -> only items lighter
  // than the diff migrate; both qualify here, tail goes first.
  machine.queue(0).Push({.id = 1, .work_units = 1, .weight = 9000});
  machine.queue(0).Push({.id = 2, .work_units = 1, .weight = 100});
  const auto policy = policies::MakeWeightedLoad();
  runtime::StealCounters counters;
  Rng rng(1);
  EXPECT_TRUE(machine.TrySteal(*policy, 1, machine.Snapshot(), rng,
                               runtime::StealOptions{}, counters));
  EXPECT_EQ(machine.queue(1).ReadLoad().weighted_load, 100);  // tail item
}

TEST(ConcurrentMachine, LockedSnapshotIsExact) {
  runtime::ConcurrentMachine machine(3);
  machine.queue(2).Push({.id = 1, .work_units = 1, .weight = 1024});
  const LoadSnapshot snap = machine.LockedSnapshot();
  EXPECT_EQ(snap.task_count[2], 1);
  EXPECT_EQ(snap.task_count[0], 0);
}

TEST(Executor, NoRecheckAblationStillDrains) {
  runtime::ExecutorConfig config;
  config.num_workers = 4;
  config.recheck_filter = false;
  runtime::Executor executor(policies::MakeThreadCount(), config);
  std::vector<runtime::WorkItem> items;
  for (uint64_t i = 0; i < 200; ++i) {
    items.push_back({.id = i, .work_units = 200, .weight = 1024});
  }
  executor.Seed(0, items);
  const auto report = executor.Run();
  uint64_t executed = 0;
  for (const auto& w : report.workers) {
    executed += w.items_executed;
  }
  EXPECT_EQ(executed, 200u);
}

TEST(Executor, SeedsAcrossQueues) {
  runtime::ExecutorConfig config;
  config.num_workers = 3;
  runtime::Executor executor(policies::MakeThreadCount(), config);
  for (uint32_t q = 0; q < 3; ++q) {
    std::vector<runtime::WorkItem> items;
    for (uint64_t i = 0; i < 10; ++i) {
      items.push_back({.id = q * 100 + i, .work_units = 10, .weight = 1024});
    }
    executor.Seed(q, items);
  }
  const auto report = executor.Run();
  EXPECT_EQ(report.total_items, 30u);
  uint64_t executed = 0;
  for (const auto& w : report.workers) {
    executed += w.items_executed;
  }
  EXPECT_EQ(executed, 30u);
}

TEST(ExecutorReport, ThroughputAndToString) {
  runtime::ExecutorConfig config;
  config.num_workers = 2;
  runtime::Executor executor(policies::MakeThreadCount(), config);
  executor.Seed(0, {{.id = 1, .work_units = 10, .weight = 1024}});
  const auto report = executor.Run();
  EXPECT_GT(report.wall_time_ns, 0u);
  EXPECT_GT(report.throughput_items_per_ms(), 0.0);
  EXPECT_NE(report.ToString().find("items=1"), std::string::npos);
}

}  // namespace
}  // namespace optsched
