// The queue-backend concept contract, run against BOTH backends: the locked
// reference queue and the lock-free Chase-Lev queue must be observationally
// equivalent through the facade — same accounting (ReadLoad/ExactLoad), same
// owner pop/finish semantics, same batch-push behaviour — and the executor
// must complete identical workloads (including steals and ingress) on either.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/core/policies/thread_count.h"
#include "src/ingress/deal_channel.h"
#include "src/ingress/mailbox.h"
#include "src/runtime/concurrent_machine.h"
#include "src/runtime/executor.h"

namespace optsched {
namespace {

using runtime::ConcurrentRunQueue;
using runtime::QueueBackend;
using runtime::WorkItem;

WorkItem Item(uint64_t id, uint32_t weight = 1024) {
  return WorkItem{.id = id, .work_units = 1, .weight = weight};
}

class BackendMatrix : public ::testing::TestWithParam<QueueBackend> {};

TEST_P(BackendMatrix, ExternalPushPopFinishAccounting) {
  ConcurrentRunQueue queue(GetParam());
  EXPECT_EQ(queue.backend(), GetParam());
  for (uint64_t id = 1; id <= 3; ++id) {
    queue.Push(Item(id, 100 * static_cast<uint32_t>(id)));
  }
  runtime::LoadPair load = queue.ReadLoad();
  EXPECT_EQ(load.task_count, 3);
  EXPECT_EQ(load.weighted_load, 600);

  // A popped item stays part of the published load until FinishCurrent.
  std::optional<WorkItem> running = queue.PopForRun();
  ASSERT_TRUE(running.has_value());
  EXPECT_EQ(queue.ReadLoad().task_count, 3);
  queue.FinishCurrent();
  load = queue.ReadLoad();
  EXPECT_EQ(load.task_count, 2);
  EXPECT_EQ(load.weighted_load, 600 - static_cast<int64_t>(running->weight));

  // Drain the rest; the published and structural views agree throughout.
  std::vector<uint64_t> ids = {running->id};
  while (std::optional<WorkItem> item = queue.PopForRun()) {
    ids.push_back(item->id);
    queue.FinishCurrent();
    const runtime::LoadPair published = queue.ReadLoad();
    const runtime::LoadPair exact = queue.ExactLoad();
    EXPECT_EQ(published.task_count, exact.task_count);
    EXPECT_EQ(published.weighted_load, exact.weighted_load);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(queue.ReadLoad().task_count, 0);
  EXPECT_EQ(queue.ReadLoad().weighted_load, 0);
}

TEST_P(BackendMatrix, PushBatchOwnerPublishesTheWholeBatch) {
  ConcurrentRunQueue queue(GetParam());
  std::vector<WorkItem> batch;
  for (uint64_t id = 1; id <= 16; ++id) {
    batch.push_back(Item(id));
  }
  const uint64_t writes_before = queue.SeqlockWriteCount();
  queue.PushBatchOwner(batch.data(), static_cast<uint32_t>(batch.size()));
  EXPECT_EQ(queue.ReadLoad().task_count, 16);
  EXPECT_EQ(queue.ExactLoad().task_count, 16);
  if (GetParam() == QueueBackend::kLocked) {
    // One seqlock publish for the whole batch, not one per item.
    EXPECT_EQ(queue.SeqlockWriteCount() - writes_before, 1u);
  } else {
    // chase_lev has no seqlock at all; the counters carry the load.
    EXPECT_EQ(queue.SeqlockWriteCount(), 0u);
  }
}

TEST_P(BackendMatrix, DealTakeAndExternalPushStayExactAtQuiescence) {
  // The work-dealing transport pair: the owner removes a window with
  // TakeOwnerBatch, and a dealer (a DIFFERENT thread) lands items with
  // PushBatchExternal. Both must keep the published decomposition exact at
  // quiescence — the regression here is a dealt batch counted against the
  // owner's single-writer own_enq counter instead of the shared ext_enq
  // counter, which corrupts the published load under a concurrent owner push.
  ConcurrentRunQueue queue(GetParam());
  std::vector<WorkItem> seed;
  for (uint64_t id = 1; id <= 8; ++id) {
    seed.push_back(Item(id, 100));
  }
  queue.PushBatchOwner(seed.data(), static_cast<uint32_t>(seed.size()));

  std::vector<WorkItem> window;
  const uint32_t taken = queue.TakeOwnerBatch(3, window);
  EXPECT_EQ(taken, 3u);
  EXPECT_EQ(window.size(), 3u);
  EXPECT_EQ(queue.ReadLoad().task_count, 5);
  EXPECT_EQ(queue.ReadLoad().weighted_load, 500);
  EXPECT_EQ(queue.ExactLoad().task_count, 5);

  // Land the window back from a non-owner thread (the direct-spill path),
  // interleaved with owner pushes: the per-writer counters must not tear.
  std::thread dealer([&] {
    queue.PushBatchExternal(window.data(), static_cast<uint32_t>(window.size()));
  });
  for (uint64_t id = 9; id <= 10; ++id) {
    queue.Push(Item(id, 100));
  }
  dealer.join();
  EXPECT_EQ(queue.ReadLoad().task_count, 10);
  EXPECT_EQ(queue.ReadLoad().weighted_load, 1000);
  EXPECT_EQ(queue.ExactLoad().task_count, 10);
  EXPECT_EQ(queue.ExactLoad().weighted_load, 1000);

  std::vector<uint64_t> ids;
  while (std::optional<WorkItem> item = queue.PopForRun()) {
    ids.push_back(item->id);
    queue.FinishCurrent();
    const runtime::LoadPair published = queue.ReadLoad();
    const runtime::LoadPair exact = queue.ExactLoad();
    EXPECT_EQ(published.task_count, exact.task_count);
    EXPECT_EQ(published.weighted_load, exact.weighted_load);
  }
  std::sort(ids.begin(), ids.end());
  ASSERT_EQ(ids.size(), 10u);
  for (uint64_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], i + 1);
  }
  EXPECT_EQ(queue.ReadLoad().task_count, 0);
  EXPECT_EQ(queue.ReadLoad().weighted_load, 0);
}

TEST_P(BackendMatrix, TakeOwnerBatchReachesInboxResidents) {
  // Dealable surplus parked in the external path (inbox on chase_lev, the
  // shared deque on locked) must be reachable by the dealer's take.
  ConcurrentRunQueue queue(GetParam());
  for (uint64_t id = 1; id <= 4; ++id) {
    queue.Push(Item(id));
  }
  std::vector<WorkItem> window;
  EXPECT_EQ(queue.TakeOwnerBatch(8, window), 4u);
  EXPECT_EQ(queue.ReadLoad().task_count, 0);
  EXPECT_EQ(queue.ExactLoad().task_count, 0);
  EXPECT_EQ(window.size(), 4u);
}

TEST(BackendMatrixChaseLev, RingOverflowSpillsToInboxWithoutLosingItems) {
  // Capacity rounds to 4: an 11-item owner batch overflows the ring and the
  // remainder must spill to the inbox, reachable again through PopForRun.
  ConcurrentRunQueue queue(QueueBackend::kChaseLev, /*deque_capacity=*/4);
  std::vector<WorkItem> batch;
  for (uint64_t id = 1; id <= 11; ++id) {
    batch.push_back(Item(id));
  }
  queue.PushBatchOwner(batch.data(), static_cast<uint32_t>(batch.size()));
  EXPECT_EQ(queue.ReadLoad().task_count, 11);
  std::vector<uint64_t> ids;
  while (std::optional<WorkItem> item = queue.PopForRun()) {
    ids.push_back(item->id);
    queue.FinishCurrent();
  }
  EXPECT_EQ(ids.size(), 11u);
  std::sort(ids.begin(), ids.end());
  for (uint64_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], i + 1);
  }
}

TEST(BackendMatrixChaseLev, PeekTakeStealDecrementsPublishedLoad) {
  ConcurrentRunQueue queue(QueueBackend::kChaseLev);
  std::vector<WorkItem> batch = {Item(1), Item(2)};
  queue.PushBatchOwner(batch.data(), 2);

  const auto first = queue.PeekSteal();
  const auto stale = queue.PeekSteal();
  ASSERT_TRUE(first.found);
  EXPECT_TRUE(queue.TakeSteal(first));
  EXPECT_EQ(queue.ReadLoad().task_count, 1);
  // The stale observation's commit must fail — the failed re-check — and
  // must NOT touch the accounting.
  EXPECT_FALSE(queue.TakeSteal(stale));
  EXPECT_EQ(queue.ReadLoad().task_count, 1);
  EXPECT_EQ(queue.ExactLoad().task_count, 1);
}

TEST_P(BackendMatrix, ExecutorDrainsImbalancedSeedWithSteals) {
  // Everything seeded on queue 0: workers 1-3 can only make progress by
  // stealing, so completion exercises the backend's steal path end to end.
  // Whether a steal actually lands is a race against worker spin-up (on an
  // oversubscribed CI host the owner can drain the whole seed first), so
  // retry the run until one does; drain correctness is asserted every time.
  uint64_t total_successes = 0;
  for (int attempt = 0; attempt < 5 && total_successes == 0; ++attempt) {
    runtime::ExecutorConfig config;
    config.num_workers = 4;
    config.backend = GetParam();
    // Long enough per item that the run outlives worker spin-up: thieves
    // must find work remaining on queue 0 for a steal to be possible at all.
    config.spin_per_unit = 200;
    runtime::Executor executor(policies::MakeThreadCount(), config);
    std::vector<WorkItem> seed;
    for (uint64_t id = 0; id < 2000; ++id) {
      WorkItem item = Item(id);
      item.work_units = 5;
      seed.push_back(item);
    }
    executor.Seed(0, seed);
    const runtime::ExecutorReport report = executor.Run();
    SCOPED_TRACE(report.ToString());

    uint64_t executed = 0;
    for (const auto& w : report.workers) {
      executed += w.items_executed;
    }
    ASSERT_EQ(executed, 2000u);
    ASSERT_EQ(report.items_left_unexecuted, 0u);
    total_successes = report.total_successes();
  }
  EXPECT_GT(total_successes, 0u);
}

TEST_P(BackendMatrix, ExecutorDrainsImbalancedSeedThroughDealingAlone) {
  // Steal disabled: workers 1-3 can make progress ONLY through the deal path
  // (deal round -> mailbox -> DrainDealt -> own queue), so draining the whole
  // seed proves the transport end to end on this backend. Whether a deal
  // fires before the owner drains the seed is a race against worker spin-up,
  // so retry until one lands; drain correctness is asserted every time.
  uint64_t items_dealt = 0;
  for (int attempt = 0; attempt < 5 && items_dealt == 0; ++attempt) {
    runtime::ExecutorConfig config;
    config.num_workers = 4;
    config.backend = GetParam();
    config.spin_per_unit = 200;
    config.steal_enabled = false;
    config.deal.enabled = true;
    config.deal.threshold = 2;
    config.deal.grace_rounds = 0;  // always-on: no robbery ever precedes a deal here
    config.deal.check_interval_items = 1;
    ingress::DealChannel deal_channel(config.num_workers, /*capacity_per_mailbox=*/64);
    config.deal_sink = &deal_channel;
    runtime::Executor executor(policies::MakeThreadCount(), config);
    deal_channel.set_notify([&](uint32_t worker) { executor.NotifyIngress(worker); });

    std::vector<WorkItem> seed;
    for (uint64_t id = 0; id < 2000; ++id) {
      WorkItem item = Item(id);
      item.work_units = 5;
      seed.push_back(item);
    }
    executor.Seed(0, seed);
    const runtime::ExecutorReport report = executor.Run();
    SCOPED_TRACE(report.ToString());

    uint64_t executed = 0;
    for (const auto& w : report.workers) {
      executed += w.items_executed;
    }
    ASSERT_EQ(executed, 2000u);
    ASSERT_EQ(report.items_left_unexecuted, 0u);
    ASSERT_EQ(report.total_successes(), 0u);  // steals stayed off
    ASSERT_EQ(deal_channel.TotalDealtPending(), 0);
    items_dealt = report.total_deal_items_dealt() + report.total_deal_items_direct();
  }
  EXPECT_GT(items_dealt, 0u);
}

TEST_P(BackendMatrix, ExecutorDrainsMailboxIngress) {
  runtime::ExecutorConfig config;
  config.num_workers = 4;
  config.backend = GetParam();
  config.spin_per_unit = 5;
  ingress::MailboxSet mailboxes(config.num_workers, /*capacity_per_mailbox=*/256);
  config.ingress = &mailboxes;

  runtime::Executor executor(policies::MakeThreadCount(), config);
  mailboxes.set_notify([&](uint32_t worker) { executor.NotifyIngress(worker); });

  std::atomic<uint64_t> admitted{0};
  const auto producer = [&](runtime::Executor& e) {
    for (uint64_t id = 0; id < 400 && !e.stopped(); ++id) {
      if (mailboxes.Push(static_cast<uint32_t>(id % 4), Item(id))) {
        admitted.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::this_thread::yield();
      }
    }
  };
  const runtime::ExecutorReport report = executor.RunFor(/*duration_ms=*/500, producer);
  SCOPED_TRACE(report.ToString());

  uint64_t executed = 0;
  for (const auto& w : report.workers) {
    executed += w.items_executed;
  }
  EXPECT_EQ(executed, admitted.load());
  EXPECT_EQ(report.items_left_unexecuted, 0u);
  EXPECT_EQ(mailboxes.TotalPending(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, BackendMatrix,
    ::testing::Values(QueueBackend::kLocked, QueueBackend::kChaseLev),
    [](const ::testing::TestParamInfo<QueueBackend>& info) {
      return std::string(runtime::QueueBackendName(info.param));
    });

}  // namespace
}  // namespace optsched
