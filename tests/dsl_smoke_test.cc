// Smoke test: the DSL pipeline produces policies whose audit verdicts match
// the hand-written equivalents, and the two code generators emit the expected
// artifacts.

#include <gtest/gtest.h>

#include "src/core/policies/thread_count.h"
#include "src/dsl/codegen.h"
#include "src/dsl/compile.h"
#include "src/verify/audit.h"

namespace optsched {
namespace {

TEST(DslSmoke, ThreadCountCompilesAndIsWorkConserving) {
  const dsl::CompileResult compiled = dsl::CompilePolicy(dsl::samples::kThreadCount);
  ASSERT_TRUE(compiled.ok()) << compiled.DiagnosticsToString();

  verify::ConvergenceCheckOptions options;
  options.bounds.num_cores = 3;
  options.bounds.max_load = 4;
  const verify::PolicyAudit audit = verify::AuditPolicy(*compiled.policy, options);
  SCOPED_TRACE(audit.Report());
  EXPECT_TRUE(audit.all_hold());
}

TEST(DslSmoke, DslThreadCountAgreesWithHandWritten) {
  const dsl::CompileResult compiled = dsl::CompilePolicy(dsl::samples::kThreadCount);
  ASSERT_TRUE(compiled.ok()) << compiled.DiagnosticsToString();
  const auto hand_written = policies::MakeThreadCount();

  MachineState machine = MachineState::FromLoads({0, 3, 1, 5});
  const LoadSnapshot snapshot = machine.Snapshot();
  for (CpuId self = 0; self < machine.num_cpus(); ++self) {
    const SelectionView view{.self = self, .snapshot = snapshot, .topology = nullptr};
    for (CpuId other = 0; other < machine.num_cpus(); ++other) {
      if (other == self) {
        continue;
      }
      EXPECT_EQ(compiled.policy->CanSteal(view, other), hand_written->CanSteal(view, other))
          << "self=" << self << " other=" << other;
    }
  }
}

TEST(DslSmoke, BrokenDslPolicyIsRejectedByAudit) {
  const dsl::CompileResult compiled = dsl::CompilePolicy(dsl::samples::kBroken);
  ASSERT_TRUE(compiled.ok()) << compiled.DiagnosticsToString();

  verify::ConvergenceCheckOptions options;
  options.bounds.num_cores = 3;
  options.bounds.max_load = 4;
  const verify::PolicyAudit audit = verify::AuditPolicy(*compiled.policy, options);
  SCOPED_TRACE(audit.Report());
  EXPECT_FALSE(audit.work_conserving());
  EXPECT_FALSE(audit.concurrent.result.holds);
}

TEST(DslSmoke, CodegenEmitsBothBackends) {
  const dsl::CompileResult compiled = dsl::CompilePolicy(dsl::samples::kThreadCount);
  ASSERT_TRUE(compiled.ok()) << compiled.DiagnosticsToString();
  ASSERT_TRUE(compiled.decl.has_value());

  const std::string c_code = dsl::EmitC(*compiled.decl);
  EXPECT_NE(c_code.find("thread_count_can_steal"), std::string::npos) << c_code;
  EXPECT_NE(c_code.find("os_load(stealee)"), std::string::npos) << c_code;

  const std::string scala_code = dsl::EmitScala(*compiled.decl);
  EXPECT_NE(scala_code.find("def canSteal(self: Core, stealee: Core)"), std::string::npos)
      << scala_code;
  EXPECT_NE(scala_code.find(".holds"), std::string::npos) << scala_code;
}

}  // namespace
}  // namespace optsched
