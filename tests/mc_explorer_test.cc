// Exhaustive and randomized exploration over the real steal protocol: the
// paper's properties are discharged on the sound policy and a concrete,
// minimized counterexample is produced for the broken one.

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/mutex.h"
#include "src/mc/explorer.h"
#include "src/mc/harness.h"
#include "src/mc/scheduler.h"
#include "src/runtime/spinlock.h"

#if defined(__SANITIZE_THREAD__)
#define OPTSCHED_MC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define OPTSCHED_MC_TSAN 1
#endif
#endif

#ifdef OPTSCHED_MC_TSAN
#define MC_SKIP_UNDER_TSAN() GTEST_SKIP() << "ucontext fibers are not supported under TSan"
#else
#define MC_SKIP_UNDER_TSAN() (void)0
#endif

namespace optsched::mc {
namespace {

std::string Describe(const std::vector<PropertyReport>& reports) {
  std::string out;
  for (const PropertyReport& report : reports) {
    if (!report.holds) {
      out += report.name + ": " + report.detail + "; ";
    }
  }
  return out;
}

TEST(DfsExplorerTest, EnumeratesMoreThanOneScheduleForContendingLocks) {
  MC_SKIP_UNDER_TSAN();
  runtime::SpinLock lock;
  int in_critical = 0;
  int max_in_critical = 0;
  // RAII guard: a pruned execution unwinds the fiber mid-critical-section,
  // and the destructor must release the lock for the next execution.
  auto body = [&] {
    LockGuard guard(lock);
    ++in_critical;
    max_in_critical = std::max(max_in_critical, in_critical);
    ActiveScheduler()->Yield();
    --in_critical;
  };
  DfsExplorer::Options options;
  options.max_preemptions = 1;
  DfsExplorer explorer(options);
  const ExploreStats stats = explorer.Explore(
      [&] {
        in_critical = 0;  // an aborted execution skips the decrement
        return std::vector<std::function<void()>>{body, body};
      },
      [&](const ExecutionResult& result, uint32_t) {
        EXPECT_FALSE(result.deadlock);
        return true;
      });
  EXPECT_GT(stats.schedules_explored, 1u);
  EXPECT_FALSE(stats.budget_exhausted);
  // Mutual exclusion held in every explored schedule.
  EXPECT_EQ(max_in_critical, 1);
}

TEST(DfsExplorerTest, ExhaustiveDischargesPaperPropertiesOnThreadCount) {
  MC_SKIP_UNDER_TSAN();
  StealHarness::Config config;
  config.mode = "balance";
  config.policy = "thread-count";
  config.initial_loads = {0, 1, 2, 0};  // 4 workers, the acceptance shape
  config.attempts_per_worker = 1;
  StealHarness harness(config);

  DfsExplorer::Options options;
  options.max_preemptions = 2;
  DfsExplorer explorer(options);
  std::string violation;
  const ExploreStats stats =
      explorer.Explore(harness.Factory(), [&](const ExecutionResult& result, uint32_t) {
        const std::vector<PropertyReport> reports = harness.Evaluate(result);
        if (StealHarness::FirstViolation(reports) != nullptr) {
          violation = Describe(reports);
          return false;
        }
        return true;
      });
  EXPECT_FALSE(stats.stopped_by_sink) << violation;
  EXPECT_FALSE(stats.budget_exhausted);
  EXPECT_GT(stats.schedules_explored, 0u);
  // Sleep sets must be earning their keep on a space this size.
  EXPECT_GT(stats.schedules_pruned, 0u);
}

TEST(DfsExplorerTest, BrokenPolicyProducesMinimizedReplayableCounterexample) {
  MC_SKIP_UNDER_TSAN();
  StealHarness::Config config;
  config.mode = "balance";
  config.policy = "broken-cansteal";
  config.initial_loads = {0, 1, 2};  // the paper's §4.3 ping-pong shape
  config.attempts_per_worker = 3;
  StealHarness harness(config);

  auto violates_bound = [&](const ExecutionResult& result) {
    const std::vector<PropertyReport> reports = harness.Evaluate(result);
    for (const PropertyReport& report : reports) {
      if (report.name == "bounded-steals" && !report.holds) {
        return true;
      }
    }
    return false;
  };

  DfsExplorer::Options options;
  // The bound must be 3 here: sleep sets prune the free-switch (yield-point)
  // alternations as equivalent to representatives that spend preemptions, so
  // the surviving member of the ping-pong's equivalence class costs 3 — the
  // sleep-set x preemption-bound interaction docs/model_checking.md explains.
  options.max_preemptions = 3;
  DfsExplorer explorer(options);
  std::vector<uint32_t> counterexample;
  const ExploreStats stats =
      explorer.Explore(harness.Factory(), [&](const ExecutionResult& result, uint32_t) {
        if (violates_bound(result)) {
          counterexample = result.choices;
          return false;
        }
        return true;
      });
  ASSERT_TRUE(stats.stopped_by_sink)
      << "no bounded-steals violation found in " << stats.schedules_explored << " schedules";

  const std::vector<uint32_t> minimized =
      MinimizeCounterexample(harness.Factory(), counterexample, violates_bound);
  EXPECT_LE(minimized.size(), counterexample.size());

  // The minimized schedule replays deterministically to the same violation.
  const ExecutionResult first = ReplayChoices(harness.Factory(), minimized);
  EXPECT_TRUE(violates_bound(first));
  const ExecutionResult second = ReplayChoices(harness.Factory(), minimized);
  EXPECT_EQ(first.choices, second.choices);
  EXPECT_EQ(first.events, second.events);
}

TEST(DfsExplorerTest, ExhaustiveDischargesPropertiesWithBatchedSteals) {
  MC_SKIP_UNDER_TSAN();
  StealHarness::Config config;
  config.mode = "balance";
  config.policy = "thread-count";
  config.initial_loads = {0, 4, 0};
  config.attempts_per_worker = 1;
  config.max_steal_batch = 4;  // batched steal-half, the new protocol path
  StealHarness harness(config);

  DfsExplorer::Options options;
  options.max_preemptions = 2;
  DfsExplorer explorer(options);
  std::string violation;
  const ExploreStats stats =
      explorer.Explore(harness.Factory(), [&](const ExecutionResult& result, uint32_t) {
        const std::vector<PropertyReport> reports = harness.Evaluate(result);
        if (StealHarness::FirstViolation(reports) != nullptr) {
          violation = Describe(reports);
          return false;
        }
        return true;
      });
  // Every explored schedule satisfies no-lost-items, steal-safety,
  // publish-batching (<= 2 seqlock writes per steal critical section) and the
  // d0/2 ITEM bound — batches move more per action, never more in total.
  EXPECT_FALSE(stats.stopped_by_sink) << violation;
  EXPECT_FALSE(stats.budget_exhausted);
  EXPECT_GT(stats.schedules_explored, 0u);
}

TEST(DfsExplorerTest, BrokenBatchBoundProducesMinimizedReplayableCounterexample) {
  MC_SKIP_UNDER_TSAN();
  StealHarness::Config config;
  config.mode = "balance";
  config.policy = "thread-count";
  config.initial_loads = {0, 4};
  config.attempts_per_worker = 1;
  config.break_batch_bound = true;  // strip victims bare: violates steal safety
  StealHarness harness(config);

  auto violates_safety = [&](const ExecutionResult& result) {
    const std::vector<PropertyReport> reports = harness.Evaluate(result);
    for (const PropertyReport& report : reports) {
      if (report.name == "steal-safety" && !report.holds) {
        return true;
      }
    }
    return false;
  };

  DfsExplorer::Options options;
  options.max_preemptions = 2;
  DfsExplorer explorer(options);
  std::vector<uint32_t> counterexample;
  const ExploreStats stats =
      explorer.Explore(harness.Factory(), [&](const ExecutionResult& result, uint32_t) {
        if (violates_safety(result)) {
          counterexample = result.choices;
          return false;
        }
        return true;
      });
  ASSERT_TRUE(stats.stopped_by_sink)
      << "no steal-safety violation found in " << stats.schedules_explored << " schedules";

  const std::vector<uint32_t> minimized =
      MinimizeCounterexample(harness.Factory(), counterexample, violates_safety);
  EXPECT_LE(minimized.size(), counterexample.size());

  // Deterministic replay: same choices, same events, same violation — the
  // minimized schedule is committable as a golden file.
  const ExecutionResult first = ReplayChoices(harness.Factory(), minimized);
  EXPECT_TRUE(violates_safety(first));
  const ExecutionResult second = ReplayChoices(harness.Factory(), minimized);
  EXPECT_EQ(first.choices, second.choices);
  EXPECT_EQ(first.events, second.events);

  // Round-trip the schedule through its JSON identity: the fault knob and the
  // batch cap are part of the serialized reproduction recipe.
  const Schedule schedule = harness.MakeSchedule(minimized);
  const std::optional<Schedule> parsed = Schedule::FromJson(schedule.ToJson());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->break_batch_bound);
  StealHarness replay_harness(StealHarness::Config::FromSchedule(*parsed));
  const ExecutionResult replayed = ReplayChoices(replay_harness.Factory(), parsed->choices);
  const std::vector<PropertyReport> reports = replay_harness.Evaluate(replayed);
  bool violated = false;
  for (const PropertyReport& report : reports) {
    if (report.name == "steal-safety" && !report.holds) {
      violated = true;
    }
  }
  EXPECT_TRUE(violated);
}

TEST(DfsExplorerTest, EpochBumpWakesEveryParkedWorkerInAllSchedules) {
  MC_SKIP_UNDER_TSAN();
  StealHarness::Config config;
  config.mode = "epoch";
  config.policy = "thread-count";
  config.initial_loads = {0, 0, 0};  // supervisor + two parking workers
  config.attempts_per_worker = 0;
  StealHarness harness(config);

  DfsExplorer::Options options;
  options.max_preemptions = 2;
  DfsExplorer explorer(options);
  std::string violation;
  const ExploreStats stats =
      explorer.Explore(harness.Factory(), [&](const ExecutionResult& result, uint32_t) {
        const std::vector<PropertyReport> reports = harness.Evaluate(result);
        if (StealHarness::FirstViolation(reports) != nullptr) {
          violation = Describe(reports);
          return false;
        }
        return true;
      });
  EXPECT_FALSE(stats.stopped_by_sink) << violation;
  // Both the park-then-bump and bump-then-no-park orders must appear.
  EXPECT_GT(stats.schedules_explored, 1u);
}

TEST(DfsExplorerTest, DrainModeConservesItems) {
  MC_SKIP_UNDER_TSAN();
  StealHarness::Config config;
  config.mode = "drain";
  config.policy = "thread-count";
  config.initial_loads = {3, 0};
  config.attempts_per_worker = 1;
  StealHarness harness(config);

  DfsExplorer::Options options;
  options.max_preemptions = 1;
  DfsExplorer explorer(options);
  std::string violation;
  const ExploreStats stats =
      explorer.Explore(harness.Factory(), [&](const ExecutionResult& result, uint32_t) {
        const std::vector<PropertyReport> reports = harness.Evaluate(result);
        if (StealHarness::FirstViolation(reports) != nullptr) {
          violation = Describe(reports);
          return false;
        }
        return true;
      });
  EXPECT_FALSE(stats.stopped_by_sink) << violation;
  EXPECT_GT(stats.schedules_explored, 0u);
}

TEST(DfsExplorerTest, IngressModeDischargesNoLostAdmittedItems) {
  MC_SKIP_UNDER_TSAN();
  StealHarness::Config config;
  config.mode = "ingress";
  config.policy = "thread-count";
  // Worker 0 is the producer; workers 1 and 2 own a mailbox and a runqueue.
  config.initial_loads = {0, 0, 0};
  config.attempts_per_worker = 3;  // 3 pushes, and a 3-attempt steal budget
  config.mailbox_capacity = 1;     // tiny bound: the full/refuse path is reachable
  StealHarness harness(config);

  DfsExplorer::Options options;
  options.max_preemptions = 2;
  DfsExplorer explorer(options);
  std::string violation;
  bool saw_shed = false;
  bool saw_drain = false;
  const ExploreStats stats =
      explorer.Explore(harness.Factory(), [&](const ExecutionResult& result, uint32_t) {
        for (const McEvent& event : result.events) {
          saw_shed |= event.user_kind == kUserMailboxShed;
          saw_drain |= event.user_kind == kUserMailboxDrain;
        }
        const std::vector<PropertyReport> reports = harness.Evaluate(result);
        if (StealHarness::FirstViolation(reports) != nullptr) {
          violation = Describe(reports);
          return false;
        }
        return true;
      });
  // no-lost-admitted-items holds in EVERY interleaving of the producer
  // against the draining owners: an admitted item ends up executed, queued,
  // or still mailbox-resident; refused pushes are loud (kUserMailboxShed).
  EXPECT_FALSE(stats.stopped_by_sink) << violation;
  EXPECT_FALSE(stats.budget_exhausted);
  EXPECT_GT(stats.schedules_explored, 1u);
  // The exploration must actually reach both interesting paths: a drain that
  // moves an admitted item, and a push refused by the capacity-1 bound.
  EXPECT_TRUE(saw_drain);
  EXPECT_TRUE(saw_shed);
}

TEST(DfsExplorerTest, IngressScheduleRoundTripsThroughJson) {
  MC_SKIP_UNDER_TSAN();
  StealHarness::Config config;
  config.mode = "ingress";
  config.policy = "thread-count";
  config.initial_loads = {0, 0};
  config.attempts_per_worker = 2;
  config.mailbox_capacity = 3;
  StealHarness harness(config);

  // Any concrete execution: PCT gives one cheaply.
  PctStrategy pct(/*num_threads=*/2, /*depth_estimate=*/64, /*num_change_points=*/2,
                  /*seed=*/7);
  Scheduler scheduler;
  const ExecutionResult result = scheduler.Run(harness.MakeBodies(), pct);
  const Schedule schedule = harness.MakeSchedule(result.choices);
  EXPECT_EQ(schedule.harness, "ingress");
  EXPECT_EQ(schedule.mailbox_capacity, 3u);

  const std::optional<Schedule> parsed = Schedule::FromJson(schedule.ToJson());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->mailbox_capacity, 3u);
  StealHarness replay_harness(StealHarness::Config::FromSchedule(*parsed));
  const ExecutionResult replayed = ReplayChoices(replay_harness.Factory(), parsed->choices);
  EXPECT_EQ(replayed.events, result.events);
  const std::vector<PropertyReport> reports = replay_harness.Evaluate(replayed);
  EXPECT_EQ(StealHarness::FirstViolation(reports), nullptr) << Describe(reports);
}

TEST(PctStrategyTest, RandomizedSamplingDischargesPropertiesOnThreadCount) {
  MC_SKIP_UNDER_TSAN();
  StealHarness::Config config;
  config.mode = "balance";
  config.policy = "thread-count";
  config.initial_loads = {0, 1, 2};
  config.attempts_per_worker = 2;
  StealHarness harness(config);

  PctStrategy pct(/*num_threads=*/3, /*depth_estimate=*/128, /*num_change_points=*/3,
                  /*seed=*/42);
  for (int i = 0; i < 64; ++i) {
    Scheduler scheduler;
    const ExecutionResult result = scheduler.Run(harness.MakeBodies(), pct);
    const std::vector<PropertyReport> reports = harness.Evaluate(result);
    EXPECT_EQ(StealHarness::FirstViolation(reports), nullptr) << Describe(reports);
    pct.Reset();
  }
}

}  // namespace
}  // namespace optsched::mc
