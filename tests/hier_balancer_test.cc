// Multi-level hierarchical balancing engine tests: ladder escalation,
// locality preference, equivalence of the work-conservation outcome with the
// flat engine, and per-level accounting.

#include <gtest/gtest.h>

#include "src/core/conservation.h"
#include "src/core/hier_balancer.h"
#include "src/core/policies/thread_count.h"
#include "src/verify/state_space.h"

namespace optsched {
namespace {

TEST(HierBalancer, BuildsLadderFromTopology) {
  const Topology topo = Topology::Hierarchical(2, 1, 2, 2);  // SMT + LLC + MACHINE
  HierarchicalBalancer balancer(policies::MakeThreadCount(), topo);
  ASSERT_EQ(balancer.level_stats().size(), 3u);
  EXPECT_EQ(balancer.level_stats()[0].name, "SMT");
  EXPECT_EQ(balancer.level_stats()[1].name, "LLC");
  EXPECT_EQ(balancer.level_stats()[2].name, "MACHINE");
}

TEST(HierBalancer, PrefersInnermostLevelWithCandidates) {
  // 2 nodes x 4 cores. cpu0 idle; cpu1 (same node) and cpu4 (other node)
  // both overloaded: the steal must come from the same-node LLC level.
  const Topology topo = Topology::Numa(2, 4);
  HierarchicalBalancer balancer(policies::MakeThreadCount(), topo);
  MachineState machine = MachineState::FromLoads({0, 4, 1, 1, 6, 1, 1, 1});
  Rng rng(1);
  size_t level = SIZE_MAX;
  const CoreAction action =
      balancer.RunOneAttempt(machine, 0, machine.Snapshot(), rng, true, &level);
  EXPECT_EQ(action.outcome, StealOutcome::kStole);
  EXPECT_EQ(*action.victim, 1u);  // not cpu4, despite its higher load
  ASSERT_NE(level, SIZE_MAX);
  EXPECT_EQ(balancer.hierarchy().levels[level][0].name, "LLC");
}

TEST(HierBalancer, EscalatesWhenInnerLevelsAreBalanced) {
  // cpu0's node is flat; the only overload is remote: the ladder must widen
  // to the MACHINE level and steal cross-node.
  const Topology topo = Topology::Numa(2, 4);
  HierarchicalBalancer balancer(policies::MakeThreadCount(), topo);
  MachineState machine = MachineState::FromLoads({0, 1, 1, 1, 5, 1, 1, 1});
  Rng rng(1);
  size_t level = SIZE_MAX;
  const CoreAction action =
      balancer.RunOneAttempt(machine, 0, machine.Snapshot(), rng, true, &level);
  EXPECT_EQ(action.outcome, StealOutcome::kStole);
  EXPECT_EQ(*action.victim, 4u);
  ASSERT_NE(level, SIZE_MAX);
  EXPECT_EQ(balancer.hierarchy().levels[level][0].name, "MACHINE");
}

TEST(HierBalancer, NoCandidatesAnywhere) {
  const Topology topo = Topology::Numa(2, 2);
  HierarchicalBalancer balancer(policies::MakeThreadCount(), topo);
  MachineState machine = MachineState::FromLoads({1, 1, 1, 1});
  Rng rng(1);
  size_t level = 0;
  const CoreAction action =
      balancer.RunOneAttempt(machine, 0, machine.Snapshot(), rng, true, &level);
  EXPECT_EQ(action.outcome, StealOutcome::kNoCandidates);
  EXPECT_EQ(level, SIZE_MAX);
}

TEST(HierBalancer, AttemptsExactlyWhenFlatEngineWould) {
  // The ladder walk is a choice refinement: over every bounded state, the
  // hierarchical engine finds a victim iff the flat engine does (both use
  // the same unrestricted filter at the outermost level).
  const Topology topo = Topology::Numa(2, 2);
  verify::Bounds bounds;
  bounds.num_cores = 4;
  bounds.max_load = 3;
  verify::ForEachState(bounds, [&](const std::vector<int64_t>& loads) {
    for (CpuId thief = 0; thief < 4; ++thief) {
      MachineState hier_machine = MachineState::FromLoads(loads);
      MachineState flat_machine = MachineState::FromLoads(loads);
      HierarchicalBalancer hier(policies::MakeThreadCount(), topo);
      LoadBalancer flat(policies::MakeThreadCount(), &topo);
      Rng rng_a(1);
      Rng rng_b(1);
      const CoreAction ha =
          hier.RunOneAttempt(hier_machine, thief, hier_machine.Snapshot(), rng_a);
      const CoreAction fa =
          flat.RunOneAttempt(flat_machine, thief, flat_machine.Snapshot(), rng_b);
      const bool hier_attempted = ha.outcome != StealOutcome::kNoCandidates;
      const bool flat_attempted = fa.outcome != StealOutcome::kNoCandidates;
      EXPECT_EQ(hier_attempted, flat_attempted)
          << "thief " << thief << " at " << MachineState::FromLoads(loads).ToString();
      // Without concurrency both attempts succeed (sound filter).
      if (hier_attempted) {
        EXPECT_EQ(ha.outcome, StealOutcome::kStole);
        EXPECT_EQ(fa.outcome, StealOutcome::kStole);
      }
    }
    return true;
  });
}

TEST(HierBalancer, ConcurrentRoundsReachWorkConservation) {
  const Topology topo = Topology::Hierarchical(2, 1, 4, 2);  // 16 cpus, 3 levels
  HierarchicalBalancer balancer(policies::MakeThreadCount(), topo);
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int64_t> loads(16, 0);
    for (int c = 0; c < 4; ++c) {
      loads[static_cast<size_t>(rng.NextBelow(16))] = rng.NextInRange(2, 8);
    }
    MachineState machine = MachineState::FromLoads(loads);
    uint64_t rounds = 0;
    while (!machine.WorkConserved() && rounds < 100) {
      balancer.RunRound(machine, rng);
      ++rounds;
    }
    EXPECT_TRUE(machine.WorkConserved()) << "trial " << trial;
  }
}

TEST(HierBalancer, LevelStatsAttributeSteals) {
  const Topology topo = Topology::Numa(2, 4);
  HierarchicalBalancer balancer(policies::MakeThreadCount(), topo);
  // Intra-node imbalance only: all steals must land at the LLC level.
  MachineState machine = MachineState::FromLoads({0, 6, 1, 1, 0, 6, 1, 1});
  Rng rng(2);
  RoundOptions options;
  options.mode = RoundOptions::Mode::kSequential;
  while (true) {
    const RoundResult r = balancer.RunRound(machine, rng, options);
    if (r.successes == 0) {
      break;
    }
  }
  uint64_t llc = 0;
  uint64_t machine_level = 0;
  for (const LevelStats& stats : balancer.level_stats()) {
    if (stats.name == "LLC") {
      llc += stats.successes;
    }
    if (stats.name == "MACHINE") {
      machine_level += stats.successes;
    }
  }
  EXPECT_GT(llc, 0u);
  EXPECT_EQ(machine_level, 0u);  // never needed to cross nodes
  EXPECT_TRUE(machine.WorkConserved());
}

TEST(HierBalancer, TaskConservationUnderConcurrentRounds) {
  const Topology topo = Topology::Hierarchical(2, 2, 2, 2);
  HierarchicalBalancer balancer(policies::MakeThreadCount(), topo);
  MachineState machine = MachineState::FromLoads(
      {9, 0, 0, 0, 7, 0, 0, 0, 5, 0, 0, 0, 3, 0, 0, 0});
  const uint64_t total = machine.TotalTasks();
  Rng rng(4);
  for (int round = 0; round < 30; ++round) {
    balancer.RunRound(machine, rng);
    ASSERT_EQ(machine.TotalTasks(), total);
  }
  EXPECT_TRUE(machine.WorkConserved());
}

}  // namespace
}  // namespace optsched
