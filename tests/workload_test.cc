// Workload generator tests: counts, placement shapes, phase sequencing and
// arrival processes.

#include <gtest/gtest.h>

#include "src/core/policies/thread_count.h"
#include "src/sim/simulator.h"
#include "src/workload/workloads.h"

namespace optsched {
namespace {

sim::Simulator MakeSim(const Topology& topo, uint64_t seed = 1) {
  sim::SimConfig config;
  config.max_time_us = 600'000'000;
  return sim::Simulator(topo, policies::MakeThreadCount(), config, seed);
}

TEST(StaticImbalance, SubmitsOntoRequestedCpus) {
  const Topology topo = Topology::Smp(8);
  sim::Simulator s = MakeSim(topo);
  workload::StaticImbalanceConfig config;
  config.num_tasks = 10;
  config.initial_cpus = 2;
  config.service_us = 1'000;
  workload::SubmitStaticImbalance(s, config);
  s.RunUntil(0);  // process the submit events only
  // Round-robin over cpus {0,1}: 5 tasks each.
  EXPECT_EQ(s.machine().Load(0, LoadMetric::kTaskCount), 5);
  EXPECT_EQ(s.machine().Load(1, LoadMetric::kTaskCount), 5);
  EXPECT_EQ(s.machine().Load(2, LoadMetric::kTaskCount), 0);
  s.Run();
  EXPECT_EQ(s.metrics().tasks_completed, 10u);
}

TEST(StaticImbalanceDeath, RejectsMoreInitialCpusThanMachine) {
  const Topology topo = Topology::Smp(2);
  sim::Simulator s = MakeSim(topo);
  workload::StaticImbalanceConfig config;
  config.initial_cpus = 4;
  EXPECT_DEATH(workload::SubmitStaticImbalance(s, config), "initial_cpus");
}

TEST(ForkJoin, RunsPhasesSequentially) {
  const Topology topo = Topology::Smp(4);
  sim::Simulator s = MakeSim(topo);
  workload::ForkJoinConfig config;
  config.num_phases = 4;
  config.tasks_per_phase = 8;
  config.task_service_us = 2'000;
  config.jitter_frac = 0.0;
  auto keepalive = workload::InstallForkJoin(s, config);
  s.Run();
  EXPECT_EQ(s.metrics().tasks_completed, 32u);
  // With zero jitter and 4 cpus: each phase is >= 2 waves of 2ms => makespan
  // at least num_phases * 4ms.
  EXPECT_GE(s.metrics().makespan_us, 16'000u);
}

TEST(ForkJoin, JitterChangesServiceTimes) {
  const Topology topo = Topology::Smp(4);
  sim::Simulator s = MakeSim(topo);
  workload::ForkJoinConfig config;
  config.num_phases = 1;
  config.tasks_per_phase = 16;
  config.jitter_frac = 0.5;
  auto keepalive = workload::InstallForkJoin(s, config);
  s.Run();
  const auto& latency = s.metrics().completion_latency_us;
  EXPECT_EQ(latency.count(), 16u);
  EXPECT_GT(latency.stddev(), 0.0);
}

TEST(Oltp, WorkersAlternateRunAndWait) {
  const Topology topo = Topology::Numa(2, 2);
  sim::Simulator s = MakeSim(topo);
  workload::OltpConfig config;
  config.num_workers = 8;
  config.txn_service_us = 500;
  config.mean_io_wait_us = 1'000;
  config.duration_us = 200'000;
  workload::SubmitOltp(s, config);
  s.Run();
  EXPECT_EQ(s.metrics().tasks_completed, 8u);
  EXPECT_GT(s.metrics().bursts_completed, 8u * 10u);  // many transactions
  EXPECT_GT(s.metrics().wakeups, 0u);
}

TEST(Oltp, WorkersSpreadAcrossNodes) {
  const Topology topo = Topology::Numa(4, 2);
  sim::Simulator s = MakeSim(topo);
  workload::OltpConfig config;
  config.num_workers = 8;
  workload::SubmitOltp(s, config);
  s.RunUntil(0);
  // Home nodes round-robin: each of the 4 nodes hosts 2 workers.
  for (NodeId n = 0; n < 4; ++n) {
    int64_t node_load = 0;
    for (CpuId cpu : topo.CpusInNode(n)) {
      node_load += s.machine().Load(cpu, LoadMetric::kTaskCount);
    }
    EXPECT_EQ(node_load, 2) << "node " << n;
  }
}

TEST(Poisson, ArrivalCountNearExpectation) {
  const Topology topo = Topology::Smp(8);
  sim::Simulator s = MakeSim(topo);
  workload::PoissonConfig config;
  config.arrivals_per_sec = 5000.0;
  config.duration_us = 1'000'000;
  config.mean_service_us = 500;
  workload::SubmitPoisson(s, config);
  // ~5000 expected arrivals; Poisson sd ~ 71.
  EXPECT_NEAR(static_cast<double>(s.metrics().tasks_submitted), 5000.0, 300.0);
  s.Run();
  EXPECT_EQ(s.metrics().tasks_completed, s.metrics().tasks_submitted);
}

TEST(Poisson, DeterministicPerSeed) {
  const Topology topo = Topology::Smp(4);
  auto submitted = [&](uint64_t seed) {
    sim::Simulator s = MakeSim(topo);
    workload::PoissonConfig config;
    config.seed = seed;
    config.duration_us = 200'000;
    workload::SubmitPoisson(s, config);
    return s.metrics().tasks_submitted;
  };
  EXPECT_EQ(submitted(5), submitted(5));
}

}  // namespace
}  // namespace optsched
