// Unit tests for the policy library: every filter/choice/migration rule.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/core/policies/broken.h"
#include "src/core/policies/cfs_like.h"
#include "src/core/policies/hierarchical.h"
#include "src/core/policies/locality.h"
#include "src/core/policies/registry.h"
#include "src/core/policies/thread_count.h"
#include "src/core/policies/weighted.h"
#include "src/sched/machine_state.h"

namespace optsched {
namespace {

using policies::GroupMap;

SelectionView ViewOf(CpuId self, const LoadSnapshot& snapshot,
                     const Topology* topology = nullptr) {
  return SelectionView{.self = self, .snapshot = snapshot, .topology = topology};
}

TEST(ThreadCountPolicy, Listing1Filter) {
  const auto policy = policies::MakeThreadCount();
  const MachineState m = MachineState::FromLoads({0, 1, 2, 5});
  const LoadSnapshot s = m.Snapshot();
  // Idle thief: 2 and 5 are stealable, 1 is not (diff 1 < 2).
  EXPECT_FALSE(policy->CanSteal(ViewOf(0, s), 1));
  EXPECT_TRUE(policy->CanSteal(ViewOf(0, s), 2));
  EXPECT_TRUE(policy->CanSteal(ViewOf(0, s), 3));
  // Busy thief (load 2): only 5 qualifies.
  EXPECT_FALSE(policy->CanSteal(ViewOf(2, s), 1));
  EXPECT_TRUE(policy->CanSteal(ViewOf(2, s), 3));
}

TEST(ThreadCountPolicy, FilterCandidatesExcludesSelf) {
  const auto policy = policies::MakeThreadCount();
  const MachineState m = MachineState::FromLoads({5, 5, 0});
  const LoadSnapshot s = m.Snapshot();
  const auto candidates = policy->FilterCandidates(ViewOf(2, s));
  EXPECT_EQ(candidates, (std::vector<CpuId>{0, 1}));
  // A loaded core never appears in its own candidate list.
  EXPECT_TRUE(policy->FilterCandidates(ViewOf(0, s)).empty());
}

TEST(ThreadCountPolicy, DefaultChoiceIsMostLoaded) {
  const auto policy = policies::MakeThreadCount();
  const MachineState m = MachineState::FromLoads({0, 3, 7, 4});
  const LoadSnapshot s = m.Snapshot();
  Rng rng(1);
  const auto view = ViewOf(0, s);
  EXPECT_EQ(policy->SelectCore(view, policy->FilterCandidates(view), rng), 2u);
}

TEST(ThreadCountPolicy, DefaultMigrationIsStrictDecrease) {
  const auto policy = policies::MakeThreadCount();
  EXPECT_TRUE(policy->ShouldMigrate(1, 2, 0));    // 0 < 1 < 2
  EXPECT_FALSE(policy->ShouldMigrate(1, 1, 0));   // would invert/equalize trivially
  EXPECT_FALSE(policy->ShouldMigrate(1, 3, 2));   // diff 1: no move
  EXPECT_TRUE(policy->ShouldMigrate(1, 9, 3));
}

TEST(ThreadCountPolicyDeath, MarginBelowTwoIsRejected) {
  EXPECT_DEATH(policies::ThreadCountPolicy(1), "margin");
}

TEST(ThreadCountPolicy, CustomMarginInName) {
  EXPECT_EQ(policies::ThreadCountPolicy(3).name(), "thread-count(margin=3)");
  EXPECT_EQ(policies::ThreadCountPolicy(2).name(), "thread-count");
}

TEST(WeightedPolicy, FilterNeedsOverloadAndHeavierLoad) {
  const auto policy = policies::MakeWeightedLoad();
  MachineState m(3);
  m.Place(MakeTask(1, -10), 0);  // heavy single task: wload 9548, count 1
  m.Place(MakeTask(2, 0), 1);    // two nice-0 tasks: wload 2048, count 2
  m.Place(MakeTask(3, 0), 1);
  const LoadSnapshot s = m.Snapshot();
  // Core 0 is NOT stealable (count 1), despite the heaviest weighted load.
  EXPECT_FALSE(policy->CanSteal(ViewOf(2, s), 0));
  // Core 1 is stealable from the idle core 2.
  EXPECT_TRUE(policy->CanSteal(ViewOf(2, s), 1));
  // ... but not from the heavier core 0.
  EXPECT_FALSE(policy->CanSteal(ViewOf(0, s), 1));
}

TEST(WeightedPolicy, MigrationRequiresWeightBelowDiff) {
  const auto policy = policies::MakeWeightedLoad();
  EXPECT_TRUE(policy->ShouldMigrate(1024, 4096, 1024));   // 1024 < 3072
  EXPECT_FALSE(policy->ShouldMigrate(3072, 4096, 1024));  // 3072 == diff: no
  EXPECT_FALSE(policy->ShouldMigrate(0, 4096, 0));        // degenerate weight
}

TEST(BrokenPolicy, AnyCoreMaySteal) {
  const auto policy = policies::MakeBrokenCanSteal();
  const MachineState m = MachineState::FromLoads({0, 1, 2});
  const LoadSnapshot s = m.Snapshot();
  // Core 1 (load 1, not idle) may steal from core 2 — the §4.3 flaw.
  EXPECT_TRUE(policy->CanSteal(ViewOf(1, s), 2));
  EXPECT_TRUE(policy->CanSteal(ViewOf(0, s), 2));
  EXPECT_FALSE(policy->CanSteal(ViewOf(0, s), 1));
}

TEST(LocalityChoice, NearestFirstPrefersSameNode) {
  const Topology topo = Topology::Numa(2, 2);  // cpus 0,1 node0; 2,3 node1
  const auto policy = policies::MakeNumaAware(policies::MakeThreadCount());
  const MachineState m = MachineState::FromLoads({0, 3, 9, 0});
  const LoadSnapshot s = m.Snapshot();
  Rng rng(1);
  const auto view = ViewOf(0, s, &topo);
  const auto candidates = policy->FilterCandidates(view);
  ASSERT_EQ(candidates, (std::vector<CpuId>{1, 2}));
  // Nearest-first picks the same-node cpu1 even though cpu2 is more loaded.
  EXPECT_EQ(policy->SelectCore(view, candidates, rng), 1u);
}

TEST(LocalityChoice, FallsBackWithoutTopology) {
  const auto policy = policies::MakeNumaAware(policies::MakeThreadCount());
  const MachineState m = MachineState::FromLoads({0, 3, 9});
  const LoadSnapshot s = m.Snapshot();
  Rng rng(1);
  const auto view = ViewOf(0, s, nullptr);
  EXPECT_EQ(policy->SelectCore(view, policy->FilterCandidates(view), rng), 2u);
}

TEST(LocalityChoice, RandomChoiceReturnsMembers) {
  const auto policy = policies::MakeRandomChoice(policies::MakeThreadCount());
  const MachineState m = MachineState::FromLoads({0, 3, 9, 4});
  const LoadSnapshot s = m.Snapshot();
  Rng rng(5);
  const auto view = ViewOf(0, s);
  const auto candidates = policy->FilterCandidates(view);
  for (int i = 0; i < 50; ++i) {
    const CpuId chosen = policy->SelectCore(view, candidates, rng);
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), chosen), candidates.end());
  }
}

TEST(GroupMap, ByNodeAndContiguous) {
  const Topology topo = Topology::Numa(2, 4);
  const GroupMap by_node = GroupMap::ByNode(topo);
  EXPECT_EQ(by_node.num_groups(), 2u);
  EXPECT_EQ(by_node.group_of(0), 0u);
  EXPECT_EQ(by_node.group_of(7), 1u);
  const GroupMap contiguous = GroupMap::Contiguous(8, 2);
  EXPECT_EQ(contiguous.num_groups(), 4u);
  EXPECT_EQ(contiguous.members(3), (std::vector<CpuId>{6, 7}));
}

TEST(GroupMap, GroupLoadSums) {
  const GroupMap groups = GroupMap::Contiguous(4, 2);
  const MachineState m = MachineState::FromLoads({1, 2, 3, 4});
  const LoadSnapshot s = m.Snapshot();
  EXPECT_EQ(groups.GroupLoad(s, 0, LoadMetric::kTaskCount), 3);
  EXPECT_EQ(groups.GroupLoad(s, 1, LoadMetric::kTaskCount), 7);
}

TEST(HierarchicalPolicy, FilterIsGlobalPairwise) {
  const auto policy = policies::MakeHierarchical(GroupMap::Contiguous(4, 2));
  const MachineState m = MachineState::FromLoads({0, 1, 1, 3});
  const LoadSnapshot s = m.Snapshot();
  // Cross-group steal is admitted purely on the pairwise rule.
  EXPECT_TRUE(policy->CanSteal(ViewOf(0, s), 3));
  EXPECT_FALSE(policy->CanSteal(ViewOf(0, s), 1));
}

TEST(HierarchicalPolicy, ChoicePrefersOwnGroup) {
  const auto policy = policies::MakeHierarchical(GroupMap::Contiguous(4, 2));
  const MachineState m = MachineState::FromLoads({0, 3, 9, 0});
  const LoadSnapshot s = m.Snapshot();
  Rng rng(1);
  const auto view = ViewOf(0, s);
  const auto candidates = policy->FilterCandidates(view);
  ASSERT_EQ(candidates, (std::vector<CpuId>{1, 2}));
  // cpu1 shares group {0,1}: chosen despite cpu2's higher load.
  EXPECT_EQ(policy->SelectCore(view, candidates, rng), 1u);
}

TEST(GroupSumPolicy, HidesOverloadBehindBalancedSums) {
  // Groups {0,1,2} and {3,4,5}; loads (0,1,1 | 2,0,0): sums 2 vs 2. The idle
  // core 0 cannot steal the overloaded core 3 — the Lemma-1 violation.
  const auto policy = policies::MakeGroupSum(GroupMap::Contiguous(6, 3));
  const MachineState m = MachineState::FromLoads({0, 1, 1, 2, 0, 0});
  const LoadSnapshot s = m.Snapshot();
  EXPECT_FALSE(policy->CanSteal(ViewOf(0, s), 3));
  // Intra-group stealing still follows the pairwise rule.
  EXPECT_TRUE(policy->CanSteal(ViewOf(4, s), 3));
}

TEST(CfsLikePolicy, IntraGroupIsPairwise) {
  const auto policy = policies::MakeCfsLike(GroupMap::Contiguous(4, 2));
  const MachineState m = MachineState::FromLoads({0, 2, 1, 1});
  const LoadSnapshot s = m.Snapshot();
  EXPECT_TRUE(policy->CanSteal(ViewOf(0, s), 1));
}

TEST(CfsLikePolicy, OnlyDesignatedIdleCoreBalancesAcrossGroups) {
  // Groups of 2: (1,0 | 4,4). cpu1 is the designated (lowest idle) core of
  // group 0; cpu0 is busy.
  const auto policy = policies::MakeCfsLike(GroupMap::Contiguous(4, 2));
  const MachineState m = MachineState::FromLoads({1, 0, 4, 4});
  const LoadSnapshot s = m.Snapshot();
  EXPECT_TRUE(policy->CanSteal(ViewOf(1, s), 2));
  EXPECT_FALSE(policy->CanSteal(ViewOf(0, s), 2));  // busy: not designated
}

TEST(CfsLikePolicy, GroupAverageThresholdHidesImbalance) {
  // Groups of 4: thief group (0,1,1,1) avg 0.75, victim group (2,1,1,1) avg
  // 1.25. With factor 1.25 the threshold is 0.9375; 1.25 > 0.9375 would
  // steal, so use factor 1.4: threshold 1.05... still below 1.25. Factor 1.7
  // gives 1.275 > 1.25 — blocked. The same shape with bigger groups blocks at
  // the stock 1.25 factor (see verify tests); here we pin the mechanism.
  const auto policy = policies::MakeCfsLike(GroupMap::Contiguous(8, 4), /*imbalance_factor=*/1.7);
  const MachineState m = MachineState::FromLoads({0, 1, 1, 1, 2, 1, 1, 1});
  const LoadSnapshot s = m.Snapshot();
  EXPECT_FALSE(policy->CanSteal(ViewOf(0, s), 4));
  // With no thresholding (factor 1.0) the same steal is admitted.
  const auto eager = policies::MakeCfsLike(GroupMap::Contiguous(8, 4), /*imbalance_factor=*/1.0);
  EXPECT_TRUE(eager->CanSteal(ViewOf(0, s), 4));
}

TEST(Registry, AllNamesConstruct) {
  const Topology topo = Topology::Numa(2, 4);
  for (const std::string& name : policies::KnownPolicyNames()) {
    const auto policy = policies::MakePolicyByName(name, topo);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_FALSE(policy->name().empty());
  }
  EXPECT_EQ(policies::MakePolicyByName("no-such-policy", topo), nullptr);
}

}  // namespace
}  // namespace optsched
