// Seeded violation for the dual-lock-rank rule: a DualLockGuard whose
// acquisition order is derived from comparing lock ADDRESSES must be
// flagged; ordering by queue index (the machine-wide rank that the proofs
// and the model checker assume) must not. Never compiled -- linted by
// lint_fixtures_test.

#include <cstdint>

namespace fixture {

struct SpinLock {
  void Acquire();
  void Release();
};

struct DualLockGuard {
  DualLockGuard(SpinLock& first, SpinLock& second);
  ~DualLockGuard();
};

struct Queue {
  SpinLock lock;
};

// Compliant: rank decided by queue index, exactly like the runtime's
// TrySteal.
void GoodSteal(Queue* queues, uint32_t thief, uint32_t victim) {
  Queue& lower = thief < victim ? queues[thief] : queues[victim];
  Queue& higher = thief < victim ? queues[victim] : queues[thief];
  DualLockGuard guard(lower.lock, higher.lock);
}

// Violation: address order is not the machine-wide rank -- two call sites
// reaching the same pair of queues through different objects would acquire
// in different orders.
void BadSteal(Queue& a, Queue& b) {
  SpinLock& first = &a.lock < &b.lock ? a.lock : b.lock;
  SpinLock& second = &a.lock < &b.lock ? b.lock : a.lock;
  DualLockGuard guard(first, second);  // expect-lint: dual-lock-rank
}

}  // namespace fixture
