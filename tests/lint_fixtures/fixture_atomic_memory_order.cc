// Seeded violations for the atomic-memory-order rule: implicit-seq_cst
// atomic operations must be flagged, explicit ones must not. This file is
// never compiled -- it is linted by lint_fixtures_test, which requires the
// diagnostics to match the expect-lint annotations below exactly.

#include <atomic>
#include <cstdint>

namespace fixture {

class Counter {
 public:
  // Compliant: the order is spelled out.
  void Good() { hits_.fetch_add(1, std::memory_order_relaxed); }

  uint64_t BadLoad() const {
    return hits_.load();  // expect-lint: atomic-memory-order
  }

  void BadStore() {
    hits_.store(0);  // expect-lint: atomic-memory-order
  }

  void BadImplicitAssign() {
    hits_ = 0;  // expect-lint: atomic-memory-order
  }

  void BadImplicitIncrement() {
    ++hits_;  // expect-lint: atomic-memory-order
  }

  // Compliant: the join-counter op with its order spelled.
  void GoodFetchSub() { hits_.fetch_sub(1, std::memory_order_acq_rel); }

  void BadFetchSub() {
    hits_.fetch_sub(1);  // expect-lint: atomic-memory-order
  }

  // Compliant: both the success and the failure order are spelled.
  bool GoodCasTwoOrders(uint64_t expected) {
    return hits_.compare_exchange_strong(expected, expected + 1,
                                         std::memory_order_seq_cst,
                                         std::memory_order_relaxed);
  }

  // The single-order form derives the failure order implicitly -- the
  // derivation (release -> relaxed, acq_rel -> acquire) is exactly where a
  // protocol downgrade hides, so it must be spelled.
  bool BadCasImplicitFailure(uint64_t expected) {
    return hits_.compare_exchange_weak(  // expect-lint: atomic-memory-order
        expected, expected + 1, std::memory_order_acq_rel);
  }

  // An order inside a nested call does not count for the outer op.
  void BadNestedOrderOnly() {
    hits_.store(other_.load(std::memory_order_relaxed));  // expect-lint: atomic-memory-order
  }

 private:
  // optsched-lint: allow(mc-hook-coverage): fixture-local counter, not protocol state
  mutable std::atomic<uint64_t> hits_{0};
  // optsched-lint: allow(mc-hook-coverage): fixture-local counter, not protocol state
  std::atomic<uint64_t> other_{0};
};

}  // namespace fixture
