// Seeded violations for the atomic-memory-order rule: implicit-seq_cst
// atomic operations must be flagged, explicit ones must not. This file is
// never compiled -- it is linted by lint_fixtures_test, which requires the
// diagnostics to match the expect-lint annotations below exactly.

#include <atomic>
#include <cstdint>

namespace fixture {

class Counter {
 public:
  // Compliant: the order is spelled out.
  void Good() { hits_.fetch_add(1, std::memory_order_relaxed); }

  uint64_t BadLoad() const {
    return hits_.load();  // expect-lint: atomic-memory-order
  }

  void BadStore() {
    hits_.store(0);  // expect-lint: atomic-memory-order
  }

  void BadImplicitAssign() {
    hits_ = 0;  // expect-lint: atomic-memory-order
  }

  void BadImplicitIncrement() {
    ++hits_;  // expect-lint: atomic-memory-order
  }

 private:
  // optsched-lint: allow(mc-hook-coverage): fixture-local counter, not protocol state
  mutable std::atomic<uint64_t> hits_{0};
};

}  // namespace fixture
