// Seeded violations for the hot-path-alloc rule: allocation or container
// growth inside an OPTSCHED_HOT_PATH function must be flagged unless a
// reasoned suppression rides on it. SuppressedGrow doubles as the
// suppression-mechanism proof: it contains a banned call and must produce
// NO diagnostic. Never compiled -- linted by lint_fixtures_test.

#include <vector>

#define OPTSCHED_HOT_PATH

namespace fixture {

OPTSCHED_HOT_PATH void BadDrain(std::vector<int>& out, int item) {
  out.push_back(item);  // expect-lint: hot-path-alloc
}

OPTSCHED_HOT_PATH int* BadNew() {
  return new int(7);  // expect-lint: hot-path-alloc
}

OPTSCHED_HOT_PATH void SuppressedGrow(std::vector<int>& out, int item) {
  // optsched-lint: allow(hot-path-alloc): fixture scratch reuses its high-water capacity
  out.push_back(item);
}

// Compliant: growth is fine off the hot path.
void ColdGrow(std::vector<int>& out, int item) { out.push_back(item); }

}  // namespace fixture
