// Seeded violation for the seqlock-write-context rule: Seqlock::Write from
// a function that is neither OPTSCHED_REQUIRES-annotated nor named *Locked
// must be flagged -- the seqlock serializes nothing on the writer side, so
// an unlocked writer is a torn-write bug, not a stale-read inefficiency.
// Never compiled -- linted by lint_fixtures_test.

#define OPTSCHED_REQUIRES(...)

namespace fixture {

template <typename T>
struct Seqlock {
  void Write(const T& value);
};

struct QueueState {
  long count;
};

struct Queue {
  // Compliant: the *Locked suffix is the repo's REQUIRES convention.
  void PublishLocked() { published_.Write(state_); }

  // Compliant: explicitly annotated, name notwithstanding.
  void RefreshSnapshot() OPTSCHED_REQUIRES(lock_) { published_.Write(state_); }

  // Violation: no annotation, no convention -- nothing says the caller
  // holds the owning queue's lock.
  void Publish() {
    published_.Write(state_);  // expect-lint: seqlock-write-context
  }

  Seqlock<QueueState> published_;
  QueueState state_;
  int lock_;
};

}  // namespace fixture
