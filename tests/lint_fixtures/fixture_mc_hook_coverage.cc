// Seeded violations for the mc-hook-coverage rule: a raw std::atomic member
// must carry a "// mc: kOp, ..." tag naming announcements that actually
// exist (mc_hooks::SyncPoint / BlockUntil in this file or its sibling);
// missing tags and tags naming un-announced ops are both flagged. Never
// compiled -- linted by lint_fixtures_test.

#include <atomic>

namespace mc_hooks {
enum class SyncOp { kStateFlip, kStateRead };
void SyncPoint(SyncOp op, const void* address);
}  // namespace mc_hooks

namespace fixture {

class Protocol {
 public:
  void Flip() {
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kStateFlip, &flag_);
    flag_.store(true, std::memory_order_release);
  }

 private:
  // Compliant: tagged, and kStateFlip is announced in Flip() above.
  // mc: kStateFlip
  std::atomic<bool> flag_{false};

  // Violation: protocol state invisible to the model checker.
  std::atomic<int> untagged_{0};  // expect-lint: mc-hook-coverage

  // Violation: the tag names an op nothing announces -- stale tags are as
  // misleading as missing ones.
  // mc: kStateRead
  std::atomic<int> ghost_{0};  // expect-lint: mc-hook-coverage
};

}  // namespace fixture
