// CFS-style min-vruntime pick-next: weighted fairness within one core,
// sleeper placement, and determinism.

#include <gtest/gtest.h>

#include "src/core/policies/thread_count.h"
#include "src/sim/simulator.h"

namespace optsched {
namespace {

TEST(Vruntime, SingleCoreWeightedShares) {
  // One core, one nice-0 and one nice+5 task, run for a fixed window with
  // min-vruntime picking: CPU time ratio approaches the weight ratio
  // 1024/335 = 3.06 without weighted timeslices.
  const Topology topo = Topology::Smp(1);
  sim::SimConfig config;
  config.max_time_us = 400'000;
  config.timeslice_us = 1'000;
  config.pick_next = sim::PickNext::kMinVruntime;
  sim::Simulator s(topo, policies::MakeThreadCount(), config, 1);
  sim::TaskSpec heavy;
  heavy.nice = 0;
  heavy.total_service_us = 10'000'000;
  const TaskId heavy_id = s.Submit(heavy, 0, 0);
  sim::TaskSpec light;
  light.nice = 5;
  light.total_service_us = 10'000'000;
  const TaskId light_id = s.Submit(light, 0, 0);
  s.RunUntil(config.max_time_us);
  const double ratio = static_cast<double>(s.ConsumedServiceUs(heavy_id)) /
                       static_cast<double>(s.ConsumedServiceUs(light_id));
  EXPECT_NEAR(ratio, 1024.0 / 335.0, 0.25);
}

TEST(Vruntime, FifoSplitsEvenlyRegardlessOfWeight) {
  // Control: FIFO round-robin with equal quanta ignores weights.
  const Topology topo = Topology::Smp(1);
  sim::SimConfig config;
  config.max_time_us = 400'000;
  config.timeslice_us = 1'000;
  config.pick_next = sim::PickNext::kFifo;
  sim::Simulator s(topo, policies::MakeThreadCount(), config, 1);
  sim::TaskSpec heavy;
  heavy.nice = 0;
  heavy.total_service_us = 10'000'000;
  const TaskId heavy_id = s.Submit(heavy, 0, 0);
  sim::TaskSpec light;
  light.nice = 5;
  light.total_service_us = 10'000'000;
  const TaskId light_id = s.Submit(light, 0, 0);
  s.RunUntil(config.max_time_us);
  const double ratio = static_cast<double>(s.ConsumedServiceUs(heavy_id)) /
                       static_cast<double>(s.ConsumedServiceUs(light_id));
  EXPECT_NEAR(ratio, 1.0, 0.1);
}

TEST(Vruntime, SleeperDoesNotMonopolizeOnWake) {
  // A task that sleeps for a long time must not return with banked credit:
  // after it wakes, the incumbent still gets scheduled within a few quanta.
  const Topology topo = Topology::Smp(1);
  sim::SimConfig config;
  config.max_time_us = 300'000;
  config.timeslice_us = 1'000;
  config.pick_next = sim::PickNext::kMinVruntime;
  sim::Simulator s(topo, policies::MakeThreadCount(), config, 2);
  sim::TaskSpec incumbent;
  incumbent.total_service_us = 10'000'000;
  const TaskId incumbent_id = s.Submit(incumbent, 0, 0);
  // Sleeper: tiny bursts separated by long waits; by t=100ms its raw
  // vruntime is far below the incumbent's.
  sim::TaskSpec sleeper;
  sleeper.total_service_us = 10'000'000;
  sleeper.burst_us = 500;
  sleeper.mean_block_us = 20'000;
  s.Submit(sleeper, 0, 0);
  s.RunUntil(100'000);
  const uint64_t incumbent_before = s.ConsumedServiceUs(incumbent_id);
  s.RunUntil(300'000);
  const uint64_t incumbent_after = s.ConsumedServiceUs(incumbent_id);
  // Incumbent keeps making steady progress (>=80% of the remaining window,
  // since the sleeper runs <3% duty cycle and is clamped on each wake).
  EXPECT_GT(incumbent_after - incumbent_before, 160'000u);
}

TEST(Vruntime, DeterministicAcrossRuns) {
  auto run = [] {
    const Topology topo = Topology::Smp(2);
    sim::SimConfig config;
    config.max_time_us = 100'000;
    config.pick_next = sim::PickNext::kMinVruntime;
    sim::Simulator s(topo, policies::MakeThreadCount(), config, 7);
    for (int i = 0; i < 6; ++i) {
      sim::TaskSpec spec;
      spec.nice = (i % 3) - 1;
      spec.total_service_us = 30'000;
      spec.burst_us = 2'000;
      spec.mean_block_us = 1'000;
      s.Submit(spec, 0, 0);
    }
    s.Run();
    return std::make_pair(s.metrics().makespan_us, s.metrics().preemptions);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace optsched
