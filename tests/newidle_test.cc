// New-idle balancing: a core pulls work the instant it becomes idle rather
// than waiting for the periodic round, shortening idle episodes without
// touching the proof surface (same filter, same steal phase).

#include <gtest/gtest.h>

#include "src/core/policies/thread_count.h"
#include "src/sim/simulator.h"

namespace optsched {
namespace {

sim::SimMetrics RunStaggered(bool newidle, trace::SimTime* wasted_out = nullptr) {
  // cpu0 holds a deep queue of short tasks; cpu1 runs one long task that ends
  // early... invert: cpu1 runs a SHORT task and then idles while cpu0 still
  // has a queue. With the periodic round at 10ms, only newidle balancing
  // rescues cpu1 before the tick.
  const Topology topo = Topology::Smp(2);
  sim::SimConfig config;
  config.max_time_us = 200'000;
  config.lb_period_us = 10'000;  // deliberately sluggish tick
  config.newidle_balance = newidle;
  sim::Simulator s(topo, policies::MakeThreadCount(), config, 3);
  for (int i = 0; i < 8; ++i) {
    sim::TaskSpec spec;
    spec.total_service_us = 3'000;
    s.Submit(spec, 0, 0);
  }
  sim::TaskSpec quick;
  quick.total_service_us = 1'000;
  s.Submit(quick, 0, 1);
  s.Run();
  if (wasted_out != nullptr) {
    *wasted_out = s.accounting().wasted_us();
  }
  return s.metrics();
}

TEST(NewIdle, PullsWorkBeforeTheTick) {
  trace::SimTime wasted_off = 0;
  trace::SimTime wasted_on = 0;
  const sim::SimMetrics off = RunStaggered(false, &wasted_off);
  const sim::SimMetrics on = RunStaggered(true, &wasted_on);
  EXPECT_EQ(off.newidle_steals, 0u);
  EXPECT_GT(on.newidle_steals, 0u);
  // cpu1 goes idle at t=1ms; without newidle it waits until the 10ms tick.
  EXPECT_GE(wasted_off, 8'000u);
  EXPECT_LT(wasted_on, wasted_off / 2);
  EXPECT_LT(on.makespan_us, off.makespan_us);
}

TEST(NewIdle, NoAttemptsWhenNothingToSteal) {
  const Topology topo = Topology::Smp(2);
  sim::SimConfig config;
  config.max_time_us = 60'000'000;
  config.newidle_balance = true;
  sim::Simulator s(topo, policies::MakeThreadCount(), config, 1);
  sim::TaskSpec spec;
  spec.total_service_us = 5'000;
  s.Submit(spec, 0, 0);
  s.Submit(spec, 0, 1);
  s.Run();
  // Attempts happen when cores become idle, but no filter ever admits a
  // victim (loads never differ by 2), so zero newidle steals.
  EXPECT_EQ(s.metrics().newidle_steals, 0u);
  EXPECT_EQ(s.metrics().tasks_completed, 2u);
}

TEST(NewIdle, CountsAppearInToString) {
  const sim::SimMetrics on = RunStaggered(true);
  EXPECT_NE(on.ToString().find("newidle="), std::string::npos);
}

}  // namespace
}  // namespace optsched
