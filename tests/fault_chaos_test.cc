// Chaos harness: the same seeded FaultPlan perturbs the model-level round
// engine, the discrete-event simulator, and the real-thread executor, and in
// every layer the optimistic protocol must degrade gracefully — convergence
// within a bounded number of rounds, zero *persistent* watchdog violations
// (transient ones are expected and counted), no lost work, and failure
// attribution that survives injection (§4.3: every genuine failed re-check
// implicates a successful steal earlier in the round's linearization).

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/balancer.h"
#include "src/core/conservation.h"
#include "src/core/policies/thread_count.h"
#include "src/fault/fault.h"
#include "src/runtime/executor.h"
#include "src/sched/machine_state.h"
#include "src/sim/simulator.h"
#include "src/trace/accounting.h"
#include "src/verify/convergence.h"
#include "src/workload/workloads.h"

namespace optsched {
namespace {

fault::FaultPlan ModerateChaos(uint64_t seed) {
  fault::FaultPlan plan;
  plan.straggler_rate = 0.25;
  plan.steal_abort_rate = 0.25;
  plan.stale_snapshot_rate = 0.25;
  plan.drop_round_rate = 0.15;
  plan.seed = seed;
  return plan;
}

// --- Model level -------------------------------------------------------------

TEST(ChaosModel, ConvergesUnderModerateFaultRates) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    fault::FaultInjector injector(ModerateChaos(seed), 8);
    LoadBalancer balancer(policies::MakeThreadCount());
    balancer.set_fault_injector(&injector);
    MachineState machine = MachineState::FromLoads({12, 9, 7, 0, 0, 0, 1, 3});
    Rng rng(seed);
    ConvergenceOptions options;
    options.max_rounds = 512;  // generous: faults stretch N, they must not unbound it
    const ConvergenceResult result = RunUntilWorkConserved(balancer, machine, rng, options);
    SCOPED_TRACE(result.ToString());
    EXPECT_TRUE(result.converged) << "seed " << seed;
    EXPECT_GT(injector.stats().total(), 0u) << "plan injected nothing — not a chaos run";
  }
}

TEST(ChaosModel, FailedRecheckAttributionHoldsUnderInjection) {
  // §4.3 obligation, quantified over NON-injected actions only: a genuine
  // failed re-check means the state changed between snapshot and lock, and
  // the only mutators in a round are successful steals — so some kStole must
  // precede it in the executed order.
  fault::FaultPlan plan = ModerateChaos(17);
  fault::FaultInjector injector(plan, 6);
  LoadBalancer balancer(policies::MakeThreadCount());
  balancer.set_fault_injector(&injector);
  Rng rng(7);
  uint64_t genuine_failures_checked = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int64_t> loads(6);
    for (auto& l : loads) {
      l = rng.NextInRange(0, 5);
    }
    MachineState machine = MachineState::FromLoads(loads);
    const RoundResult round = balancer.RunRound(machine, rng);
    if (round.dropped) {
      continue;
    }
    for (size_t pos = 0; pos < round.executed_order.size(); ++pos) {
      const CoreAction& action = round.actions[round.executed_order[pos]];
      if (action.outcome != StealOutcome::kFailedRecheck || action.injected) {
        continue;
      }
      ++genuine_failures_checked;
      bool stole_earlier = false;
      for (size_t before = 0; before < pos; ++before) {
        if (round.actions[round.executed_order[before]].outcome == StealOutcome::kStole) {
          stole_earlier = true;
          break;
        }
      }
      EXPECT_TRUE(stole_earlier)
          << "genuine failed re-check with no successful steal before it (trial " << trial
          << ", thief " << action.thief << ")";
    }
  }
  // The harness must actually have exercised the obligation.
  EXPECT_GT(genuine_failures_checked, 0u);
}

TEST(ChaosModel, WatchdogSeesOnlyTransientViolationsForSoundPolicy) {
  fault::FaultInjector injector(ModerateChaos(3), 4);
  LoadBalancer balancer(policies::MakeThreadCount());
  balancer.set_fault_injector(&injector);
  MachineState machine = MachineState::FromLoads({10, 0, 0, 2});
  Rng rng(3);
  trace::ConservationWatchdog watchdog(4, {.threshold_rounds = 32});
  for (uint64_t round = 0; round < 200 && !machine.WorkConserved(); ++round) {
    balancer.RunRound(machine, rng);
    watchdog.ObserveRound(round, machine.Loads(LoadMetric::kTaskCount));
  }
  EXPECT_TRUE(machine.WorkConserved());
  EXPECT_EQ(watchdog.stats().persistent_violations, 0u);
  EXPECT_FALSE(watchdog.in_violation());
}

TEST(ChaosModel, WatchdogFlagsBrokenBehaviourAsPersistent) {
  // A straggler pinning every core forever (rate 1.0) means no steal ever
  // happens: the idle-while-overloaded streak grows without bound and the
  // watchdog must escalate exactly once per crossing core.
  fault::FaultPlan plan;
  plan.straggler_rate = 1.0;
  fault::FaultInjector injector(plan, 4);
  LoadBalancer balancer(policies::MakeThreadCount());
  balancer.set_fault_injector(&injector);
  MachineState machine = MachineState::FromLoads({6, 0, 0, 0});
  Rng rng(5);
  trace::ConservationWatchdog watchdog(4, {.threshold_rounds = 8});
  bool escalated = false;
  for (uint64_t round = 0; round < 32; ++round) {
    balancer.RunRound(machine, rng);
    escalated |= watchdog.ObserveRound(round, machine.Loads(LoadMetric::kTaskCount));
  }
  EXPECT_TRUE(escalated);
  EXPECT_GT(watchdog.stats().persistent_violations, 0u);
  EXPECT_TRUE(watchdog.in_violation());
  EXPECT_EQ(watchdog.stats().persistent_violations, 3u);  // cores 1..3 starved
}

// --- Verifier level ----------------------------------------------------------

TEST(ChaosVerify, SequentialConvergenceHoldsUnderFaults) {
  const auto policy = policies::MakeThreadCount();
  verify::ConvergenceCheckOptions options;
  options.bounds = verify::Bounds{.num_cores = 3, .max_load = 4};
  options.max_rounds = 512;
  options.fault_plan = ModerateChaos(11);
  const verify::ConvergenceCheckResult result =
      verify::CheckSequentialConvergence(*policy, options);
  EXPECT_TRUE(result.result.holds) << result.result.counterexample->note;
  // Faults stretch the bound but must keep it finite and within budget.
  EXPECT_GT(result.worst_case_rounds, 0u);
  EXPECT_LE(result.worst_case_rounds, options.max_rounds);
}

TEST(ChaosVerify, FaultPerturbedEdgesStayInTheGoodSet) {
  const auto policy = policies::MakeThreadCount();
  verify::ConvergenceCheckOptions options;
  options.bounds = verify::Bounds{.num_cores = 3, .max_load = 3};
  options.fault_plan = ModerateChaos(13);
  options.fault_probes_per_state = 6;
  const verify::ConvergenceCheckResult result =
      verify::CheckConcurrentConvergence(*policy, options);
  EXPECT_TRUE(result.result.holds);
  EXPECT_GT(result.faulty_edges_checked, 0u);
  // Same options minus the plan: the fault-free proof must agree and check
  // no perturbed edges.
  verify::ConvergenceCheckOptions clean = options;
  clean.fault_plan = fault::FaultPlan{};
  const verify::ConvergenceCheckResult base =
      verify::CheckConcurrentConvergence(*policy, clean);
  EXPECT_TRUE(base.result.holds);
  EXPECT_EQ(base.faulty_edges_checked, 0u);
  EXPECT_EQ(base.worst_case_rounds, result.worst_case_rounds);
}

// --- Simulator level ---------------------------------------------------------

TEST(ChaosSim, WorkloadCompletesWithWatchdogCleanAtModerateRates) {
  const Topology topo = Topology::Smp(8);
  sim::SimConfig config;
  config.lb_round.mode = RoundOptions::Mode::kConcurrentRandomOrder;
  config.fault_plan = ModerateChaos(23);
  config.watchdog = true;
  config.watchdog_threshold_rounds = 64;  // generous fault headroom over the model N
  sim::Simulator simulator(topo, policies::MakeThreadCount(), config, /*seed=*/23);
  workload::SubmitStaticImbalance(simulator,
                                  workload::StaticImbalanceConfig{.num_tasks = 64,
                                                                  .service_us = 20'000,
                                                                  .initial_cpus = 1});
  simulator.Run();
  const sim::SimMetrics& metrics = simulator.metrics();
  SCOPED_TRACE(metrics.ToString());
  EXPECT_EQ(metrics.tasks_completed, 64u);                  // no work lost to faults
  EXPECT_GT(simulator.fault_stats().total(), 0u);           // chaos actually ran
  EXPECT_GT(metrics.migrations, 0u);                        // balancing still worked
  EXPECT_EQ(simulator.watchdog_stats().persistent_violations, 0u);
  EXPECT_EQ(metrics.watchdog_escalations, 0u);
}

TEST(ChaosSim, DeterministicUnderIdenticalPlans) {
  const Topology topo = Topology::Smp(4);
  auto run = [&] {
    sim::SimConfig config;
    config.fault_plan = ModerateChaos(31);
    config.watchdog = true;
    sim::Simulator simulator(topo, policies::MakeThreadCount(), config, /*seed=*/31);
    workload::SubmitStaticImbalance(simulator,
                                    workload::StaticImbalanceConfig{.num_tasks = 32,
                                                                    .service_us = 10'000,
                                                                    .initial_cpus = 1});
    simulator.Run();
    return std::tuple(simulator.metrics().makespan_us, simulator.metrics().migrations,
                      simulator.fault_stats().total(),
                      simulator.watchdog_stats().observations);
  };
  EXPECT_EQ(run(), run());
}

TEST(ChaosSim, WatchdogEscalationRescuesStalledBalancing) {
  // Straggler rate 1.0: periodic rounds never move anything, so only the
  // watchdog's forced fault-free sequential round can fix the imbalance.
  const Topology topo = Topology::Smp(4);
  sim::SimConfig config;
  config.fault_plan.straggler_rate = 1.0;
  config.fault_plan.seed = 41;
  config.watchdog = true;
  config.watchdog_threshold_rounds = 4;
  config.wake_placement = sim::WakePlacement::kLastCpu;  // keep tasks piled up
  sim::Simulator simulator(topo, policies::MakeThreadCount(), config, /*seed=*/41);
  workload::SubmitStaticImbalance(simulator,
                                  workload::StaticImbalanceConfig{.num_tasks = 16,
                                                                  .service_us = 50'000,
                                                                  .initial_cpus = 1});
  simulator.Run();
  const sim::SimMetrics& metrics = simulator.metrics();
  SCOPED_TRACE(metrics.ToString());
  EXPECT_EQ(metrics.tasks_completed, 16u);
  EXPECT_GT(metrics.watchdog_escalations, 0u);       // the rescue path fired
  EXPECT_GT(metrics.migrations, 0u);                 // and it actually moved work
  EXPECT_GT(simulator.watchdog_stats().recoveries, 0u);
}

// --- Executor level (real threads) -------------------------------------------

TEST(ChaosExecutor, DrainsEverythingThroughCrashesAndAborts) {
  runtime::ExecutorConfig config;
  config.num_workers = 4;
  config.spin_per_unit = 150;
  config.seed = 5;
  config.fault_plan.steal_abort_rate = 0.3;
  config.fault_plan.crash_rate = 0.01;  // per scheduling decision: a handful per run
  config.fault_plan.crash_restart_us = 100;
  config.fault_plan.seed = 5;
  runtime::Executor executor(policies::MakeThreadCount(), config);
  std::vector<runtime::WorkItem> items;
  for (uint64_t i = 0; i < 600; ++i) {
    items.push_back(runtime::WorkItem{.id = i, .work_units = 1500, .weight = 1024});
  }
  executor.Seed(0, items);
  const runtime::ExecutorReport report = executor.Run();
  SCOPED_TRACE(report.ToString());
  uint64_t executed = 0;
  for (const runtime::WorkerStats& w : report.workers) {
    executed += w.items_executed;
  }
  EXPECT_EQ(executed, 600u);  // crash-and-restart loses no items
  EXPECT_GT(report.faults.injected_aborts, 0u);
  EXPECT_GT(report.faults.crashes, 0u);  // workers really died and came back
  EXPECT_EQ(report.faults.crashes, report.total_crashes());
  // Injected aborts are tallied apart from the genuine protocol outcomes, so
  // the counter identity attempts == successes + failed_recheck +
  // failed_no_task holds per worker even under injection.
  for (const runtime::WorkerStats& w : report.workers) {
    EXPECT_EQ(w.steals.attempts,
              w.steals.successes + w.steals.failed_recheck + w.steals.failed_no_task);
  }
}

TEST(ChaosExecutor, BackoffEngagesAndStaysBounded) {
  runtime::ExecutorConfig config;
  config.num_workers = 4;
  config.spin_per_unit = 300;
  config.idle_spins_before_yield = 4;
  config.initial_backoff_spins = 32;
  config.max_backoff_spins = 1 << 10;
  config.seed = 9;
  runtime::Executor executor(policies::MakeThreadCount(), config);
  // One long item: three workers sit idle (backing off) while worker 0 works.
  executor.Seed(0, {runtime::WorkItem{.id = 1, .work_units = 400'000, .weight = 1024}});
  const runtime::ExecutorReport report = executor.Run();
  SCOPED_TRACE(report.ToString());
  EXPECT_GT(report.total_backoff_events(), 0u);
  for (const runtime::WorkerStats& w : report.workers) {
    if (w.backoff_events == 0) {
      continue;
    }
    // Bounded: no single park may exceed the cap (mean check is looser but
    // robust to jitter): total <= events * max.
    EXPECT_LE(w.backoff_spins_total, w.backoff_events * config.max_backoff_spins);
  }
}

TEST(ChaosExecutor, FixedYieldAblationDisablesBackoff) {
  runtime::ExecutorConfig config;
  config.num_workers = 2;
  config.fixed_yield = true;
  config.idle_spins_before_yield = 4;
  runtime::Executor executor(policies::MakeThreadCount(), config);
  executor.Seed(0, {runtime::WorkItem{.id = 1, .work_units = 200'000, .weight = 1024}});
  const runtime::ExecutorReport report = executor.Run();
  EXPECT_EQ(report.total_backoff_events(), 0u);
  uint64_t yields = 0;
  for (const runtime::WorkerStats& w : report.workers) {
    yields += w.yields;
  }
  EXPECT_GT(yields, 0u);
}

}  // namespace
}  // namespace optsched
