// Smoke test: the verifier reproduces the paper's headline verdicts.
//  - Listing 1's thread-count policy passes every obligation (§4.2-§4.3).
//  - The §4.3 broken filter passes the sequential lemmas but fails the
//    concurrent liveness check with the 3-core ping-pong cycle.

#include <gtest/gtest.h>

#include "src/core/policies/broken.h"
#include "src/core/policies/thread_count.h"
#include "src/verify/audit.h"

namespace optsched {
namespace {

TEST(VerifySmoke, ThreadCountIsWorkConserving) {
  verify::ConvergenceCheckOptions options;
  options.bounds.num_cores = 3;
  options.bounds.max_load = 4;
  const auto policy = policies::MakeThreadCount();
  const verify::PolicyAudit audit = verify::AuditPolicy(*policy, options);
  SCOPED_TRACE(audit.Report());
  EXPECT_TRUE(audit.all_hold());
  EXPECT_TRUE(audit.work_conserving());
}

TEST(VerifySmoke, BrokenFilterFailsConcurrentLiveness) {
  verify::ConvergenceCheckOptions options;
  options.bounds.num_cores = 3;
  options.bounds.max_load = 4;
  const auto policy = policies::MakeBrokenCanSteal();
  const verify::PolicyAudit audit = verify::AuditPolicy(*policy, options);
  SCOPED_TRACE(audit.Report());
  // §4.2 lemmas pass: the flaw is invisible without concurrency.
  EXPECT_TRUE(audit.lemma1.holds);
  EXPECT_TRUE(audit.filter_selects_overloaded.holds);
  EXPECT_TRUE(audit.steal_safety.holds);
  // §4.3: potential is not a ranking function, and an adversary can starve
  // the idle core forever.
  EXPECT_FALSE(audit.potential_decrease.holds);
  EXPECT_FALSE(audit.concurrent.result.holds);
  EXPECT_FALSE(audit.work_conserving());
  ASSERT_FALSE(audit.concurrent.livelock_cycle.empty());
}

}  // namespace
}  // namespace optsched
