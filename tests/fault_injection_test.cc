// Unit tests for the fault-injection subsystem: deterministic per-lane
// decision streams, counters, Reset, and the round-engine seams (dropped
// rounds, stragglers, injected aborts, stale snapshots) in isolation.

#include <gtest/gtest.h>

#include "src/core/balancer.h"
#include "src/core/hier_balancer.h"
#include "src/core/policies/thread_count.h"
#include "src/fault/fault.h"
#include "src/sched/machine_state.h"
#include "src/topology/topology.h"
#include "src/trace/accounting.h"

namespace optsched {
namespace {

using fault::FaultInjector;
using fault::FaultPlan;
using fault::FaultStats;

std::vector<bool> DrawSequence(FaultInjector& injector, uint32_t lane, int n) {
  std::vector<bool> seq;
  for (int i = 0; i < n; ++i) {
    seq.push_back(injector.AbortSteal(lane));
  }
  return seq;
}

TEST(FaultInjector, SamePlanSameDecisions) {
  FaultPlan plan;
  plan.steal_abort_rate = 0.4;
  plan.seed = 42;
  FaultInjector a(plan, 4);
  FaultInjector b(plan, 4);
  for (uint32_t lane = 0; lane < 4; ++lane) {
    EXPECT_EQ(DrawSequence(a, lane, 200), DrawSequence(b, lane, 200)) << "lane " << lane;
  }
  EXPECT_EQ(a.stats().injected_aborts, b.stats().injected_aborts);
}

TEST(FaultInjector, LanesAreIndependentStreams) {
  FaultPlan plan;
  plan.steal_abort_rate = 0.5;
  plan.seed = 7;
  // Lane 0's decisions must not depend on how often other lanes are probed.
  FaultInjector solo(plan, 4);
  FaultInjector interleaved(plan, 4);
  std::vector<bool> solo_seq = DrawSequence(solo, 0, 100);
  std::vector<bool> inter_seq;
  for (int i = 0; i < 100; ++i) {
    interleaved.AbortSteal(1);
    interleaved.AbortSteal(2);
    inter_seq.push_back(interleaved.AbortSteal(0));
    interleaved.AbortSteal(3);
  }
  EXPECT_EQ(solo_seq, inter_seq);
}

TEST(FaultInjector, DifferentSeedsDiffer) {
  FaultPlan a_plan;
  a_plan.steal_abort_rate = 0.5;
  a_plan.seed = 1;
  FaultPlan b_plan = a_plan;
  b_plan.seed = 2;
  FaultInjector a(a_plan, 1);
  FaultInjector b(b_plan, 1);
  EXPECT_NE(DrawSequence(a, 0, 200), DrawSequence(b, 0, 200));
}

TEST(FaultInjector, ResetReplaysTheRun) {
  FaultPlan plan;
  plan.straggler_rate = 0.3;
  plan.crash_rate = 0.1;
  plan.seed = 99;
  FaultInjector injector(plan, 2);
  std::vector<bool> first;
  for (int i = 0; i < 100; ++i) {
    first.push_back(injector.StallCore(0));
    first.push_back(injector.CrashWorker(1));
    first.push_back(injector.DropRound());
  }
  const FaultStats before = injector.stats();
  injector.Reset();
  EXPECT_EQ(injector.stats().total(), 0u);
  std::vector<bool> second;
  for (int i = 0; i < 100; ++i) {
    second.push_back(injector.StallCore(0));
    second.push_back(injector.CrashWorker(1));
    second.push_back(injector.DropRound());
  }
  EXPECT_EQ(first, second);
  EXPECT_EQ(injector.stats().total(), before.total());
}

TEST(FaultInjector, ZeroRatesNeverFireAndCountNothing) {
  FaultPlan plan;  // all-zero
  EXPECT_FALSE(plan.any());
  FaultInjector injector(plan, 3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(injector.StallCore(0));
    EXPECT_FALSE(injector.AbortSteal(1));
    EXPECT_FALSE(injector.StaleSnapshot(2));
    EXPECT_FALSE(injector.CrashWorker(0));
    EXPECT_FALSE(injector.DropRound());
  }
  EXPECT_EQ(injector.stats().total(), 0u);
}

TEST(FaultInjector, CountsMatchFiredProbes) {
  FaultPlan plan;
  plan.steal_abort_rate = 0.5;
  plan.stale_snapshot_rate = 0.25;
  plan.seed = 3;
  FaultInjector injector(plan, 2);
  uint64_t fired_aborts = 0;
  uint64_t fired_stale = 0;
  for (int i = 0; i < 400; ++i) {
    fired_aborts += injector.AbortSteal(i % 2) ? 1 : 0;
    fired_stale += injector.StaleSnapshot(i % 2) ? 1 : 0;
  }
  const FaultStats stats = injector.stats();
  EXPECT_EQ(stats.injected_aborts, fired_aborts);
  EXPECT_EQ(stats.stale_snapshots, fired_stale);
  EXPECT_GT(fired_aborts, 100u);  // ~200 expected at rate 0.5
  EXPECT_GT(fired_stale, 40u);    // ~100 expected at rate 0.25
}

TEST(BalancerFaults, DropRoundLeavesLoadsUntouched) {
  FaultPlan plan;
  plan.drop_round_rate = 1.0;
  FaultInjector injector(plan, 4);
  LoadBalancer balancer(policies::MakeThreadCount());
  balancer.set_fault_injector(&injector);
  MachineState machine = MachineState::FromLoads({5, 0, 0, 0});
  Rng rng(1);
  for (int round = 0; round < 10; ++round) {
    const RoundResult r = balancer.RunRound(machine, rng);
    EXPECT_TRUE(r.dropped);
    EXPECT_EQ(r.successes, 0u);
    EXPECT_EQ(r.potential_after, r.potential_before);
  }
  EXPECT_EQ(machine.Loads(LoadMetric::kTaskCount), (std::vector<int64_t>{5, 0, 0, 0}));
  EXPECT_EQ(injector.stats().dropped_rounds, 10u);
}

TEST(BalancerFaults, InjectedAbortsAreMarkedAndKeptApart) {
  FaultPlan plan;
  plan.steal_abort_rate = 1.0;  // every steal phase aborts
  FaultInjector injector(plan, 4);
  LoadBalancer balancer(policies::MakeThreadCount());
  balancer.set_fault_injector(&injector);
  MachineState machine = MachineState::FromLoads({4, 4, 0, 0});
  Rng rng(1);
  const RoundResult r = balancer.RunRound(machine, rng);
  EXPECT_EQ(r.successes, 0u);
  EXPECT_GT(r.failures, 0u);
  EXPECT_EQ(r.injected_failures, r.failures);  // every failure was injected
  for (const CoreAction& action : r.actions) {
    if (action.outcome == StealOutcome::kFailedRecheck) {
      EXPECT_TRUE(action.injected);
    }
  }
  // Injected aborts are NOT genuine re-check losses: the genuine counter
  // stays zero, preserving the §4.3 attribution obligation.
  EXPECT_EQ(balancer.stats().failed_recheck, 0u);
  EXPECT_EQ(balancer.stats().injected_aborts, injector.stats().injected_aborts);
  EXPECT_GT(injector.stats().injected_aborts, 0u);
  // Loads unchanged: aborted steals leave the victim alone.
  EXPECT_EQ(machine.Loads(LoadMetric::kTaskCount), (std::vector<int64_t>{4, 4, 0, 0}));
}

TEST(BalancerFaults, StragglersSkipTheRound) {
  FaultPlan plan;
  plan.straggler_rate = 1.0;
  FaultInjector injector(plan, 4);
  LoadBalancer balancer(policies::MakeThreadCount());
  balancer.set_fault_injector(&injector);
  MachineState machine = MachineState::FromLoads({4, 0, 0, 0});
  Rng rng(1);
  const RoundResult r = balancer.RunRound(machine, rng);
  EXPECT_FALSE(r.dropped);
  EXPECT_EQ(r.stalled, 4u);
  EXPECT_EQ(r.successes, 0u);
  EXPECT_EQ(machine.Loads(LoadMetric::kTaskCount), (std::vector<int64_t>{4, 0, 0, 0}));
}

TEST(BalancerFaults, DetachedInjectorRestoresCleanBehaviour) {
  FaultPlan plan;
  plan.drop_round_rate = 1.0;
  FaultInjector injector(plan, 4);
  LoadBalancer balancer(policies::MakeThreadCount());
  balancer.set_fault_injector(&injector);
  MachineState machine = MachineState::FromLoads({4, 0, 0, 0});
  Rng rng(1);
  EXPECT_TRUE(balancer.RunRound(machine, rng).dropped);
  balancer.set_fault_injector(nullptr);
  const RoundResult clean = balancer.RunRound(machine, rng);
  EXPECT_FALSE(clean.dropped);
  EXPECT_GT(clean.successes, 0u);
}

TEST(HierBalancerFaults, SeamsReachTheLadderEngine) {
  // The hierarchical engine shares the flat engine's fault seams: the
  // injector attaches once and forwards to the inner (steal-phase) balancer.
  const Topology topo = Topology::Hierarchical(2, 1, 2, 2);
  FaultPlan plan;
  plan.drop_round_rate = 1.0;
  FaultInjector injector(plan, topo.num_cpus());
  HierarchicalBalancer balancer(policies::MakeThreadCount(), topo);
  balancer.set_fault_injector(&injector);
  MachineState machine = MachineState::FromLoads({6, 0, 0, 0, 0, 0, 0, 0});
  Rng rng(5);
  EXPECT_TRUE(balancer.RunRound(machine, rng).dropped);
  EXPECT_EQ(machine.Loads(LoadMetric::kTaskCount), (std::vector<int64_t>{6, 0, 0, 0, 0, 0, 0, 0}));

  balancer.set_fault_injector(nullptr);
  EXPECT_FALSE(balancer.RunRound(machine, rng).dropped);
}

TEST(WatchdogFinalize, OpenTransientStreakCountsAtShutdown) {
  // Regression: a violation streak still open when the run ended was never
  // classified — the streak only got counted when a LATER round observed it
  // ending, so a chaos run that stopped mid-streak under-reported transient
  // violations. Finalize() closes the books.
  trace::ConservationWatchdog watchdog(2, {.threshold_rounds = 10});
  watchdog.ObserveRound(0, {0, 3});  // cpu0 idle-while-overloaded: streak 1
  watchdog.ObserveRound(1, {0, 3});  // streak 2, still below threshold
  EXPECT_EQ(watchdog.stats().transient_violations, 0u);  // nothing closed yet
  watchdog.Finalize();
  EXPECT_EQ(watchdog.stats().transient_violations, 1u);
  EXPECT_EQ(watchdog.stats().persistent_violations, 0u);
  EXPECT_EQ(watchdog.streak(0), 0u);
  // Idempotent: a second call finds every streak cleared.
  watchdog.Finalize();
  EXPECT_EQ(watchdog.stats().transient_violations, 1u);
}

TEST(WatchdogFinalize, OpenPersistentStreakDoesNotCountAsRecovered) {
  trace::ConservationWatchdog watchdog(2, {.threshold_rounds = 2});
  for (uint64_t round = 0; round < 5; ++round) {
    watchdog.ObserveRound(round, {0, 4});
  }
  EXPECT_EQ(watchdog.stats().persistent_violations, 1u);
  EXPECT_TRUE(watchdog.in_violation());
  watchdog.Finalize();
  // Already counted at its threshold crossing; ending the run is neither a
  // second violation nor a recovery.
  EXPECT_EQ(watchdog.stats().persistent_violations, 1u);
  EXPECT_EQ(watchdog.stats().recoveries, 0u);
  EXPECT_EQ(watchdog.stats().transient_violations, 0u);
  EXPECT_FALSE(watchdog.in_violation());
}

TEST(HierBalancerFaults, InjectedAbortsStayOutOfGenuineCounters) {
  const Topology topo = Topology::Hierarchical(2, 1, 2, 2);
  FaultPlan plan;
  plan.steal_abort_rate = 1.0;
  FaultInjector injector(plan, topo.num_cpus());
  HierarchicalBalancer balancer(policies::MakeThreadCount(), topo);
  balancer.set_fault_injector(&injector);
  MachineState machine = MachineState::FromLoads({4, 4, 0, 0, 4, 4, 0, 0});
  Rng rng(5);
  const RoundResult r = balancer.RunRound(machine, rng);
  EXPECT_EQ(r.successes, 0u);
  EXPECT_GT(r.failures, 0u);
  EXPECT_EQ(r.injected_failures, r.failures);
  EXPECT_EQ(balancer.stats().failed_recheck, 0u);
  EXPECT_GT(injector.stats().injected_aborts, 0u);
  EXPECT_EQ(machine.Loads(LoadMetric::kTaskCount), (std::vector<int64_t>{4, 4, 0, 0, 4, 4, 0, 0}));
}

}  // namespace
}  // namespace optsched
