// Unit tests for the bounded state enumerator.

#include <gtest/gtest.h>

#include <set>

#include "src/core/policies/hierarchical.h"
#include "src/core/policies/thread_count.h"
#include "src/topology/topology.h"
#include "src/verify/concurrency.h"
#include "src/verify/convergence.h"
#include "src/verify/lemmas.h"
#include "src/verify/property.h"
#include "src/verify/state_space.h"

namespace optsched {
namespace {

using verify::Bounds;
using verify::CountStates;
using verify::ForEachState;

TEST(StateSpace, CountsFullCube) {
  Bounds b;
  b.num_cores = 3;
  b.max_load = 4;
  EXPECT_EQ(CountStates(b), 125u);  // 5^3
}

TEST(StateSpace, SingleCore) {
  Bounds b;
  b.num_cores = 1;
  b.max_load = 7;
  EXPECT_EQ(CountStates(b), 8u);
}

TEST(StateSpace, TotalLoadRestriction) {
  Bounds b;
  b.num_cores = 2;
  b.max_load = 3;
  b.total_load = 3;
  // (0,3),(1,2),(2,1),(3,0)
  EXPECT_EQ(CountStates(b), 4u);
}

TEST(StateSpace, SortedOnlyCountsMultisets) {
  Bounds b;
  b.num_cores = 3;
  b.max_load = 2;
  b.sorted_only = true;
  // Multisets of size 3 from {0,1,2}: C(3+3-1,3) = 10.
  EXPECT_EQ(CountStates(b), 10u);
}

TEST(StateSpace, VisitsDistinctStates) {
  Bounds b;
  b.num_cores = 3;
  b.max_load = 3;
  std::set<std::vector<int64_t>> seen;
  const uint64_t visited = ForEachState(b, [&](const std::vector<int64_t>& loads) {
    EXPECT_TRUE(seen.insert(loads).second) << "duplicate state";
    for (int64_t l : loads) {
      EXPECT_GE(l, 0);
      EXPECT_LE(l, 3);
    }
    return true;
  });
  EXPECT_EQ(visited, seen.size());
  EXPECT_EQ(visited, 64u);
}

TEST(StateSpace, EarlyAbortStopsEnumeration) {
  Bounds b;
  b.num_cores = 2;
  b.max_load = 9;
  uint64_t calls = 0;
  ForEachState(b, [&](const std::vector<int64_t>&) {
    ++calls;
    return calls < 5;
  });
  EXPECT_EQ(calls, 5u);
}

TEST(StateSpace, SortedVectorsAreNonDecreasing) {
  Bounds b;
  b.num_cores = 4;
  b.max_load = 3;
  b.sorted_only = true;
  ForEachState(b, [&](const std::vector<int64_t>& loads) {
    for (size_t i = 1; i < loads.size(); ++i) {
      EXPECT_LE(loads[i - 1], loads[i]);
    }
    return true;
  });
}

TEST(SymmetryGuard, FlatSmpIsCoreSymmetricNumaIsNot) {
  EXPECT_TRUE(verify::TopologyIsCoreSymmetric(Topology::Smp(4)));
  EXPECT_FALSE(verify::TopologyIsCoreSymmetric(Topology::Numa(2, 2)));
  EXPECT_FALSE(verify::TopologyIsCoreSymmetric(Topology::Hierarchical(1, 1, 2, 2)));
}

TEST(SymmetryGuard, LemmaChecksRefuseSortedOnlyOnNumaTopology) {
  const policies::ThreadCountPolicy policy;
  const Topology numa = Topology::Numa(2, 2);
  Bounds b;
  b.num_cores = 4;
  b.max_load = 2;
  b.sorted_only = true;

  const verify::CheckResult refused = verify::CheckLemma1(policy, b, &numa);
  EXPECT_FALSE(refused.holds);
  EXPECT_EQ(refused.states_checked, 0u);  // refused before sweeping anything
  ASSERT_TRUE(refused.counterexample.has_value());
  EXPECT_NE(refused.counterexample->note.find("symmetry reduction is unsound"),
            std::string::npos);

  // The same bounds are fine without the reduction, and the reduction is
  // fine without the topology (thread-count is core-symmetric).
  b.sorted_only = false;
  EXPECT_TRUE(verify::CheckLemma1(policy, b, &numa).holds);
  b.sorted_only = true;
  EXPECT_TRUE(verify::CheckLemma1(policy, b, nullptr).holds);
}

TEST(SymmetryGuard, ConcurrencyAndConvergenceChecksRefuseToo) {
  const policies::ThreadCountPolicy policy;
  const Topology numa = Topology::Numa(2, 2);
  verify::ConvergenceCheckOptions options;
  options.bounds.num_cores = 4;
  options.bounds.max_load = 2;
  options.symmetry_reduction = true;

  EXPECT_FALSE(verify::CheckConcurrentConvergence(policy, options, &numa).result.holds);
  EXPECT_FALSE(verify::CheckSequentialConvergence(policy, options, &numa).result.holds);

  options.bounds.sorted_only = true;
  options.symmetry_reduction = false;
  EXPECT_FALSE(verify::CheckFailureCausality(policy, options, &numa).holds);
  EXPECT_FALSE(verify::CheckBoundedSteals(policy, options, &numa).holds);
}

TEST(SymmetryGuard, GroupedPolicyOnFlatTopologyStillChecksButNumaRefuses) {
  // The sound hierarchical policy on a NUMA topology must be checkable —
  // just not under the symmetry reduction.
  const policies::HierarchicalPolicy policy(policies::GroupMap::Contiguous(4, 2));
  const Topology numa = Topology::Numa(2, 2);
  Bounds b;
  b.num_cores = 4;
  b.max_load = 2;
  EXPECT_TRUE(verify::CheckLemma1(policy, b, &numa).holds);
  b.sorted_only = true;
  EXPECT_FALSE(verify::CheckLemma1(policy, b, &numa).holds);
}

}  // namespace
}  // namespace optsched
