// Unit tests for the bounded state enumerator.

#include <gtest/gtest.h>

#include <set>

#include "src/verify/state_space.h"

namespace optsched {
namespace {

using verify::Bounds;
using verify::CountStates;
using verify::ForEachState;

TEST(StateSpace, CountsFullCube) {
  Bounds b;
  b.num_cores = 3;
  b.max_load = 4;
  EXPECT_EQ(CountStates(b), 125u);  // 5^3
}

TEST(StateSpace, SingleCore) {
  Bounds b;
  b.num_cores = 1;
  b.max_load = 7;
  EXPECT_EQ(CountStates(b), 8u);
}

TEST(StateSpace, TotalLoadRestriction) {
  Bounds b;
  b.num_cores = 2;
  b.max_load = 3;
  b.total_load = 3;
  // (0,3),(1,2),(2,1),(3,0)
  EXPECT_EQ(CountStates(b), 4u);
}

TEST(StateSpace, SortedOnlyCountsMultisets) {
  Bounds b;
  b.num_cores = 3;
  b.max_load = 2;
  b.sorted_only = true;
  // Multisets of size 3 from {0,1,2}: C(3+3-1,3) = 10.
  EXPECT_EQ(CountStates(b), 10u);
}

TEST(StateSpace, VisitsDistinctStates) {
  Bounds b;
  b.num_cores = 3;
  b.max_load = 3;
  std::set<std::vector<int64_t>> seen;
  const uint64_t visited = ForEachState(b, [&](const std::vector<int64_t>& loads) {
    EXPECT_TRUE(seen.insert(loads).second) << "duplicate state";
    for (int64_t l : loads) {
      EXPECT_GE(l, 0);
      EXPECT_LE(l, 3);
    }
    return true;
  });
  EXPECT_EQ(visited, seen.size());
  EXPECT_EQ(visited, 64u);
}

TEST(StateSpace, EarlyAbortStopsEnumeration) {
  Bounds b;
  b.num_cores = 2;
  b.max_load = 9;
  uint64_t calls = 0;
  ForEachState(b, [&](const std::vector<int64_t>&) {
    ++calls;
    return calls < 5;
  });
  EXPECT_EQ(calls, 5u);
}

TEST(StateSpace, SortedVectorsAreNonDecreasing) {
  Bounds b;
  b.num_cores = 4;
  b.max_load = 3;
  b.sorted_only = true;
  ForEachState(b, [&](const std::vector<int64_t>& loads) {
    for (size_t i = 1; i < loads.size(); ++i) {
      EXPECT_LE(loads[i - 1], loads[i]);
    }
    return true;
  });
}

}  // namespace
}  // namespace optsched
