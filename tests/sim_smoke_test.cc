// Smoke test: the simulator completes workloads, conserves tasks, and a
// work-conserving policy keeps wasted-core time near zero on a static
// imbalance.

#include <gtest/gtest.h>

#include "src/core/policies/thread_count.h"
#include "src/sim/simulator.h"
#include "src/workload/workloads.h"

namespace optsched {
namespace {

TEST(SimSmoke, StaticImbalanceCompletesAndRebalances) {
  const Topology topology = Topology::Smp(8);
  sim::SimConfig config;
  config.max_time_us = 120'000'000;
  sim::Simulator simulator(topology, policies::MakeThreadCount(), config, /*seed=*/1);

  workload::StaticImbalanceConfig wl;
  wl.num_tasks = 32;
  wl.service_us = 10'000;
  wl.initial_cpus = 1;  // everything starts on cpu0
  workload::SubmitStaticImbalance(simulator, wl);

  simulator.Run();
  const sim::SimMetrics& m = simulator.metrics();
  SCOPED_TRACE(m.ToString());
  EXPECT_EQ(m.tasks_completed, 32u);
  EXPECT_GT(m.migrations, 0u);  // tasks spread off cpu0
  // Ideal makespan = 32 tasks * 10ms / 8 cpus = 40ms; allow generous slack
  // for timeslice and balancing-period quantization.
  EXPECT_LT(m.makespan_us, 80'000u);
  EXPECT_EQ(simulator.machine().TotalTasks(), 0u);
}

TEST(SimSmoke, ForkJoinRunsAllPhases) {
  const Topology topology = Topology::Numa(2, 4);
  sim::SimConfig config;
  config.max_time_us = 600'000'000;
  sim::Simulator simulator(topology, policies::MakeThreadCount(), config, /*seed=*/2);

  workload::ForkJoinConfig wl;
  wl.num_phases = 3;
  wl.tasks_per_phase = 16;
  wl.task_service_us = 5'000;
  auto keepalive = workload::InstallForkJoin(simulator, wl);

  simulator.Run();
  EXPECT_EQ(simulator.metrics().tasks_completed, 3u * 16u);
  EXPECT_EQ(simulator.machine().TotalTasks(), 0u);
}

TEST(SimSmoke, OltpWorkersCompleteTransactions) {
  const Topology topology = Topology::Numa(2, 4);
  sim::SimConfig config;
  config.max_time_us = 60'000'000;
  sim::Simulator simulator(topology, policies::MakeThreadCount(), config, /*seed=*/3);

  workload::OltpConfig wl;
  wl.num_workers = 16;
  wl.duration_us = 1'000'000;
  workload::SubmitOltp(simulator, wl);

  simulator.Run();
  const sim::SimMetrics& m = simulator.metrics();
  SCOPED_TRACE(m.ToString());
  EXPECT_EQ(m.tasks_completed, 16u);
  EXPECT_GT(m.bursts_completed, 16u);  // many transactions per worker
}

}  // namespace
}  // namespace optsched
