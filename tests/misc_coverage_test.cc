// Coverage for smaller surfaces: name tables, SchedulePick, single-CPU
// degeneracies, conservation-options branches, and predicate equivalences.

#include <gtest/gtest.h>

#include "src/core/conservation.h"
#include "src/core/hier_balancer.h"
#include "src/core/policies/thread_count.h"
#include "src/sched/core_state.h"
#include "src/trace/trace.h"
#include "src/verify/state_space.h"

namespace optsched {
namespace {

TEST(NameTables, StealOutcomeNames) {
  EXPECT_STREQ(StealOutcomeName(StealOutcome::kNoCandidates), "no-candidates");
  EXPECT_STREQ(StealOutcomeName(StealOutcome::kStole), "stole");
  EXPECT_STREQ(StealOutcomeName(StealOutcome::kFailedRecheck), "failed-recheck");
  EXPECT_STREQ(StealOutcomeName(StealOutcome::kFailedNoTask), "failed-no-task");
}

TEST(NameTables, TraceEventNamesAreDistinct) {
  const trace::EventType types[] = {
      trace::EventType::kSpawn,     trace::EventType::kScheduleIn,
      trace::EventType::kScheduleOut, trace::EventType::kBlock,
      trace::EventType::kWake,      trace::EventType::kExit,
      trace::EventType::kSteal,     trace::EventType::kStealFailed,
      trace::EventType::kRound};
  std::set<std::string> names;
  for (const auto type : types) {
    EXPECT_TRUE(names.insert(trace::EventTypeName(type)).second);
  }
}

TEST(CoreState, SchedulePickSelectsById) {
  CoreState c;
  c.Enqueue(MakeTask(1));
  c.Enqueue(MakeTask(2));
  c.Enqueue(MakeTask(3));
  EXPECT_TRUE(c.SchedulePick(2));
  ASSERT_TRUE(c.current().has_value());
  EXPECT_EQ(c.current()->id, 2u);
  EXPECT_EQ(c.ready().size(), 2u);
  EXPECT_FALSE(c.SchedulePick(1));  // already running something
  c.ClearCurrent();
  EXPECT_FALSE(c.SchedulePick(99));  // not in the queue
  EXPECT_TRUE(c.SchedulePick(3));
}

TEST(HierBalancer, SingleCpuMachineIsDegenerateButSafe) {
  const Topology topo = Topology::Smp(1);
  HierarchicalBalancer balancer(policies::MakeThreadCount(), topo);
  MachineState machine = MachineState::FromLoads({3});
  Rng rng(1);
  const RoundResult r = balancer.RunRound(machine, rng);
  EXPECT_EQ(r.attempts, 0u);
  EXPECT_EQ(machine.TotalTasks(), 3u);
}

TEST(Conservation, QuiescenceModeBalancesBeyondConservation) {
  // stop_at_work_conserved=false keeps balancing until no steal succeeds:
  // the final state is fully balanced, not merely conserved.
  LoadBalancer balancer(policies::MakeThreadCount());
  MachineState machine = MachineState::FromLoads({8, 6, 1, 1});  // conserved already
  ASSERT_TRUE(machine.WorkConserved());
  Rng rng(2);
  ConvergenceOptions options;
  options.stop_at_work_conserved = false;
  const ConvergenceResult result = RunUntilWorkConserved(balancer, machine, rng, options);
  EXPECT_TRUE(result.converged);
  const auto loads = machine.Loads(LoadMetric::kTaskCount);
  const auto [min_it, max_it] = std::minmax_element(loads.begin(), loads.end());
  EXPECT_LE(*max_it - *min_it, 1);  // fully balanced
  EXPECT_NE(result.ToString().find("converged=yes"), std::string::npos);
}

TEST(Predicates, AffinityAwareConservationMatchesPlainWithoutMasks) {
  // Without any affinity masks the two predicates agree on every state.
  verify::Bounds bounds;
  bounds.num_cores = 4;
  bounds.max_load = 3;
  verify::ForEachState(bounds, [&](const std::vector<int64_t>& loads) {
    const MachineState m = MachineState::FromLoads(loads);
    EXPECT_EQ(m.WorkConserved(), m.WorkConservedModuloAffinity())
        << MachineState::FromLoads(loads).ToString();
    return true;
  });
}

TEST(RoundOptionsDeath, FixedOrderMustCoverAllCores) {
  LoadBalancer balancer(policies::MakeThreadCount());
  MachineState machine = MachineState::FromLoads({0, 3});
  Rng rng(1);
  RoundOptions options;
  options.mode = RoundOptions::Mode::kConcurrentFixedOrder;
  options.steal_order = {0};  // wrong length
  EXPECT_DEATH(balancer.RunRound(machine, rng, options), "permutation");
}

TEST(BalancerDeath, MaxStealsMustBePositive) {
  LoadBalancer balancer(policies::MakeThreadCount());
  MachineState machine = MachineState::FromLoads({0, 3});
  EXPECT_DEATH(balancer.ExecuteStealPhase(machine, 0, 1, true, 0), "max_steals");
}

}  // namespace
}  // namespace optsched
