// Concurrent batched steal-half: batch semantics under the migration rule,
// publish batching (one seqlock write per queue per critical section), the
// PopForRun invariant-before-mutation check, SubmitBatch racing draining
// workers, and a threaded steal-safety stress run.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/core/policies/thread_count.h"
#include "src/runtime/concurrent_machine.h"
#include "src/runtime/executor.h"

namespace optsched {
namespace {

runtime::WorkItem Item(uint64_t id) {
  return runtime::WorkItem{.id = id, .work_units = 1, .weight = 1024};
}

// gap 6 between victim and thief: the migration rule admits moves while
// 1 < victim - thief, i.e. exactly floor(6/2) = 3 items, and the policy's
// steal-half hint asks for ceil(6/2) = 3 — one action, three items.
TEST(BatchSteal, StealHalfMovesHalfTheGapInOneAction) {
  runtime::ConcurrentMachine machine(2);
  for (uint64_t id = 1; id <= 6; ++id) {
    machine.queue(0).Push(Item(id));
  }
  const auto policy = policies::MakeThreadCount();
  runtime::StealCounters counters;
  runtime::StealObservation observation;
  Rng rng(1);
  const runtime::StealOptions options{.recheck = true, .max_batch = 8};
  EXPECT_TRUE(machine.TrySteal(*policy, /*thief=*/1, machine.Snapshot(), rng, options,
                               counters, nullptr, nullptr, &observation));
  EXPECT_EQ(counters.successes, 1u);
  EXPECT_EQ(counters.items_stolen, 3u);
  EXPECT_EQ(observation.items_moved, 3u);
  EXPECT_EQ(machine.queue(0).ReadLoad().task_count, 3);
  EXPECT_EQ(machine.queue(1).ReadLoad().task_count, 3);
  EXPECT_EQ(observation.victim_tasks_after, 3);
  EXPECT_EQ(observation.thief_tasks_after, 3);
}

// max_batch = 1 is the steal_one ablation: identical to the original
// protocol, one item per successful action regardless of the policy hint.
TEST(BatchSteal, CapOfOnePreservesStealOne) {
  runtime::ConcurrentMachine machine(2);
  for (uint64_t id = 1; id <= 6; ++id) {
    machine.queue(0).Push(Item(id));
  }
  const auto policy = policies::MakeThreadCount();
  runtime::StealCounters counters;
  Rng rng(1);
  EXPECT_TRUE(machine.TrySteal(*policy, 1, machine.Snapshot(), rng,
                               runtime::StealOptions{.recheck = true, .max_batch = 1},
                               counters));
  EXPECT_EQ(counters.successes, 1u);
  EXPECT_EQ(counters.items_stolen, 1u);
  EXPECT_EQ(machine.queue(0).ReadLoad().task_count, 5);
}

// An oversized cap cannot idle the victim: each item is still gated by
// ShouldMigrate against loads updated move-by-move, so the batch stops the
// moment another move would not strictly shrink the gap.
TEST(BatchSteal, VictimNeverIdledEvenWithOversizedCap) {
  runtime::ConcurrentMachine machine(2);
  for (uint64_t id = 1; id <= 3; ++id) {
    machine.queue(0).Push(Item(id));
  }
  const auto policy = policies::MakeThreadCount();
  runtime::StealCounters counters;
  runtime::StealObservation observation;
  Rng rng(1);
  const runtime::StealOptions options{.recheck = true, .max_batch = 1000};
  EXPECT_TRUE(machine.TrySteal(*policy, 1, machine.Snapshot(), rng, options, counters,
                               nullptr, nullptr, &observation));
  EXPECT_EQ(counters.items_stolen, 1u);  // floor(3/2): v=2,t=1 stops the batch
  EXPECT_GE(observation.victim_tasks_after, 1);
  EXPECT_EQ(machine.queue(0).ReadLoad().task_count, 2);
}

// Publish batching: a batch of three items performs exactly ONE seqlock
// write on the victim and ONE on the thief — not one per item.
TEST(BatchSteal, BatchPublishesOncePerQueue) {
  runtime::ConcurrentMachine machine(2);
  for (uint64_t id = 1; id <= 6; ++id) {
    machine.queue(0).Push(Item(id));
  }
  const uint64_t victim_before = machine.queue(0).SeqlockWriteCount();
  const uint64_t thief_before = machine.queue(1).SeqlockWriteCount();
  const auto policy = policies::MakeThreadCount();
  runtime::StealCounters counters;
  runtime::StealObservation observation;
  Rng rng(1);
  EXPECT_TRUE(machine.TrySteal(*policy, 1, machine.Snapshot(), rng,
                               runtime::StealOptions{.recheck = true, .max_batch = 8},
                               counters, nullptr, nullptr, &observation));
  ASSERT_EQ(observation.items_moved, 3u);
  EXPECT_EQ(machine.queue(0).SeqlockWriteCount() - victim_before, 1u);
  EXPECT_EQ(machine.queue(1).SeqlockWriteCount() - thief_before, 1u);
  EXPECT_EQ(observation.seqlock_writes, 2u);
}

// The mc fault knob really does violate steal safety: with the migration
// rule and the cap disabled the victim is stripped bare in one action. The
// model checker depends on this to demonstrate counterexample minimization.
TEST(BatchSteal, BrokenBatchBoundStripsVictimBare) {
  runtime::ConcurrentMachine machine(2);
  for (uint64_t id = 1; id <= 4; ++id) {
    machine.queue(0).Push(Item(id));
  }
  const auto policy = policies::MakeThreadCount();
  runtime::StealCounters counters;
  runtime::StealObservation observation;
  Rng rng(1);
  const runtime::StealOptions options{
      .recheck = true, .max_batch = 1, .break_batch_bound = true};
  EXPECT_TRUE(machine.TrySteal(*policy, 1, machine.Snapshot(), rng, options, counters,
                               nullptr, nullptr, &observation));
  EXPECT_EQ(observation.items_moved, 4u);
  EXPECT_EQ(observation.victim_tasks_after, 0);  // the violation
  EXPECT_EQ(machine.queue(0).ReadLoad().task_count, 0);
}

// PopForRun checks the single-current invariant BEFORE mutating: popping
// while an item is already running must abort, with the queue left exactly
// as it was (the old order popped first, so the post-mortem state lied).
TEST(RunQueueDeath, PopWhileRunningAbortsBeforeMutation) {
  runtime::ConcurrentRunQueue queue;
  queue.Push(Item(1));
  queue.Push(Item(2));
  ASSERT_TRUE(queue.PopForRun().has_value());
  EXPECT_DEATH(queue.PopForRun(), "owner already runs an item");
  // The parent's queue is untouched by the child's abort; the normal
  // pop/finish cycle still works and the load accounting is intact.
  EXPECT_EQ(queue.ReadLoad().task_count, 2);
  queue.FinishCurrent();
  EXPECT_EQ(queue.ReadLoad().task_count, 1);
  ASSERT_TRUE(queue.PopForRun().has_value());
  queue.FinishCurrent();
  EXPECT_EQ(queue.ReadLoad().task_count, 0);
}

// Threaded stress: four thieves hammer batched TrySteal against a deep queue
// (and each other). Steal safety is asserted from inside every successful
// critical section via StealObservation — no victim may be observed idle
// after a batch leaves, no matter how the threads interleave.
TEST(BatchStealStress, NoVictimObservedIdleUnderConcurrentBatchSteals) {
  constexpr uint32_t kThieves = 4;
  constexpr int kAttemptsPerThief = 3000;
  runtime::ConcurrentMachine machine(kThieves + 1);
  for (uint64_t id = 1; id <= 512; ++id) {
    machine.queue(0).Push(Item(id));
  }
  const auto policy = policies::MakeThreadCount();
  std::atomic<bool> victim_idled{false};
  std::atomic<uint64_t> total_batches{0};
  std::vector<std::thread> threads;
  for (uint32_t t = 1; t <= kThieves; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t);
      runtime::StealCounters counters;
      runtime::StealScratch scratch;
      LoadSnapshot snapshot;
      const runtime::StealOptions options{.recheck = true, .max_batch = 8};
      for (int i = 0; i < kAttemptsPerThief; ++i) {
        machine.SnapshotInto(snapshot);
        runtime::StealObservation observation;
        if (machine.TrySteal(*policy, t, snapshot, rng, options, counters, nullptr,
                             nullptr, &observation, &scratch)) {
          total_batches.fetch_add(1, std::memory_order_relaxed);
          if (observation.victim_tasks_after < 1) {
            victim_idled.store(true, std::memory_order_relaxed);
          }
          if (observation.seqlock_writes > 2) {
            victim_idled.store(true, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_FALSE(victim_idled.load());
  EXPECT_GT(total_batches.load(), 0u);
  // Conservation: every seeded item is still queued somewhere.
  int64_t total = 0;
  for (uint32_t q = 0; q <= kThieves; ++q) {
    total += machine.queue(q).ReadLoad().task_count;
  }
  EXPECT_EQ(total, 512);
}

// Regression for the Submit/SubmitBatch ordering unification: batches are
// submitted concurrently with workers draining, and the closed accounting
// (executed + left == submitted) must hold — a batch whose items became
// poppable before the remaining-item counter moved could wrap the counter
// and terminate the run early, losing items.
TEST(ExecutorBatch, SubmitBatchRacesDrainingWorkers) {
  const auto policy = policies::MakeThreadCount();
  runtime::ExecutorConfig config;
  config.num_workers = 4;
  config.spin_per_unit = 1;
  config.max_steal_batch = 4;
  config.seed = 7;
  runtime::Executor executor(policy, config);
  std::atomic<uint64_t> submitted{0};
  const auto producer = [&](runtime::Executor& ex) {
    uint64_t next_id = 1;
    uint32_t queue = 0;
    while (!ex.stopped()) {
      std::vector<runtime::WorkItem> batch;
      batch.reserve(32);
      for (int i = 0; i < 32; ++i) {
        batch.push_back(Item(next_id++));
      }
      ex.SubmitBatch(queue % config.num_workers, batch);
      submitted.fetch_add(batch.size(), std::memory_order_relaxed);
      ++queue;
      std::this_thread::yield();
    }
  };
  const runtime::ExecutorReport report = executor.RunFor(100, producer);
  EXPECT_EQ(report.total_items, submitted.load());
  uint64_t executed = 0;
  for (const runtime::WorkerStats& w : report.workers) {
    executed += w.items_executed;
  }
  EXPECT_EQ(executed + report.items_left_unexecuted, report.total_items);
  EXPECT_GT(executed, 0u);
}

// Closed-system batched run: one overloaded queue, batching on. Everything
// drains, and the action/item split obeys its invariant
// (successes <= items_stolen <= successes * max_batch).
TEST(ExecutorBatch, BatchedRunDrainsAndSplitsActionAndItemCounts) {
  const auto policy = policies::MakeThreadCount();
  runtime::ExecutorConfig config;
  config.num_workers = 4;
  config.spin_per_unit = 1;
  config.max_steal_batch = 8;
  config.seed = 3;
  runtime::Executor executor(policy, config);
  std::vector<runtime::WorkItem> items;
  for (uint64_t id = 1; id <= 2000; ++id) {
    items.push_back(Item(id));
  }
  executor.Seed(0, items);
  const runtime::ExecutorReport report = executor.Run();
  uint64_t executed = 0;
  for (const runtime::WorkerStats& w : report.workers) {
    executed += w.items_executed;
  }
  EXPECT_EQ(executed, 2000u);
  EXPECT_EQ(report.items_left_unexecuted, 0u);
  EXPECT_GE(report.total_items_stolen(), report.total_successes());
  EXPECT_LE(report.total_items_stolen(),
            report.total_successes() * uint64_t{config.max_steal_batch});
}

}  // namespace
}  // namespace optsched
