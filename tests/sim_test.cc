// Deeper simulator tests: determinism, conservation invariants, placement
// strategies, balancing effects and accounting.

#include <gtest/gtest.h>

#include "src/core/policies/broken.h"
#include "src/core/policies/thread_count.h"
#include "src/sim/simulator.h"
#include "src/workload/workloads.h"

namespace optsched {
namespace {

sim::SimConfig BaseConfig() {
  sim::SimConfig config;
  config.max_time_us = 300'000'000;
  return config;
}

TEST(Simulator, DeterministicForSameSeed) {
  auto run = [](uint64_t seed) {
    const Topology topo = Topology::Numa(2, 4);
    sim::Simulator s(topo, policies::MakeThreadCount(), BaseConfig(), seed);
    workload::OltpConfig wl;
    wl.num_workers = 12;
    wl.duration_us = 500'000;
    workload::SubmitOltp(s, wl);
    s.Run();
    return std::make_tuple(s.metrics().bursts_completed, s.metrics().migrations,
                           s.metrics().makespan_us, s.metrics().failed_steals);
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // different seed, different schedule
}

TEST(Simulator, TaskCountConservedAtProbes) {
  const Topology topo = Topology::Smp(4);
  sim::SimConfig config = BaseConfig();
  sim::Simulator s(topo, policies::MakeThreadCount(), config, 3);
  for (int i = 0; i < 10; ++i) {
    sim::TaskSpec spec;
    spec.total_service_us = 50'000;
    s.Submit(spec, 0, 0);
  }
  // Probe at several times: machine tasks + completed == submitted. (Blocked
  // tasks are off-machine, but these are CPU-bound and never block.)
  for (sim::SimTime t : {5'000u, 20'000u, 60'000u, 100'000u}) {
    s.RunUntil(t);
    EXPECT_EQ(s.machine().TotalTasks() + s.metrics().tasks_completed, 10u) << "at " << t;
  }
  s.Run();
  EXPECT_EQ(s.metrics().tasks_completed, 10u);
}

TEST(Simulator, PreemptionRoundRobinsOneCore) {
  const Topology topo = Topology::Smp(1);
  sim::SimConfig config = BaseConfig();
  config.timeslice_us = 1'000;
  sim::Simulator s(topo, policies::MakeThreadCount(), config, 1);
  sim::TaskSpec spec;
  spec.total_service_us = 5'000;
  s.Submit(spec, 0, 0);
  s.Submit(spec, 0, 0);
  s.Run();
  const sim::SimMetrics& m = s.metrics();
  EXPECT_EQ(m.tasks_completed, 2u);
  // Two 5ms tasks at a 1ms slice: many preemptions, makespan == 10ms.
  EXPECT_GE(m.preemptions, 8u);
  EXPECT_EQ(m.makespan_us, 10'000u);
}

TEST(Simulator, LastCpuPlacementPilesUpWithoutBalancing) {
  // Wake placement kLastCpu + effectively disabled balancing: all tasks fight
  // over cpu0 while cpus 1..3 idle -> massive wasted time.
  const Topology topo = Topology::Smp(4);
  sim::SimConfig config = BaseConfig();
  config.wake_placement = sim::WakePlacement::kLastCpu;
  config.lb_period_us = 1'000'000'000;  // never fires within the run
  sim::Simulator s(topo, policies::MakeThreadCount(), config, 5);
  for (int i = 0; i < 8; ++i) {
    sim::TaskSpec spec;
    spec.total_service_us = 20'000;
    s.Submit(spec, 0, 0);
  }
  s.Run();
  EXPECT_EQ(s.metrics().migrations, 0u);
  EXPECT_EQ(s.metrics().makespan_us, 160'000u);  // fully serialized on cpu0
  EXPECT_GT(s.accounting().wasted_us(), 100'000u);
}

TEST(Simulator, BalancingEliminatesTheWaste) {
  const Topology topo = Topology::Smp(4);
  sim::SimConfig config = BaseConfig();
  config.wake_placement = sim::WakePlacement::kLastCpu;
  config.lb_period_us = 1'000;
  sim::Simulator s(topo, policies::MakeThreadCount(), config, 5);
  for (int i = 0; i < 8; ++i) {
    sim::TaskSpec spec;
    spec.total_service_us = 20'000;
    s.Submit(spec, 0, 0);
  }
  s.Run();
  EXPECT_GT(s.metrics().migrations, 0u);
  // 8 x 20ms on 4 cpus: ideal 40ms; balancing every 1ms keeps it close.
  EXPECT_LT(s.metrics().makespan_us, 60'000u);
  EXPECT_LT(s.accounting().wasted_fraction(), 0.2);
}

TEST(Simulator, IdlePreferredPlacementAvoidsThePileUp) {
  const Topology topo = Topology::Smp(4);
  sim::SimConfig config = BaseConfig();
  config.wake_placement = sim::WakePlacement::kIdlePreferred;
  config.lb_period_us = 1'000'000'000;  // no balancing: placement alone must spread
  sim::Simulator s(topo, policies::MakeThreadCount(), config, 5);
  for (int i = 0; i < 4; ++i) {
    sim::TaskSpec spec;
    spec.total_service_us = 20'000;
    s.Submit(spec, 0);  // no cpu hint: placement decides
  }
  s.Run();
  EXPECT_EQ(s.metrics().makespan_us, 20'000u);  // one task per cpu immediately
  EXPECT_EQ(s.accounting().wasted_us(), 0u);
}

TEST(Simulator, AccountingMatchesServiceTime) {
  const Topology topo = Topology::Smp(2);
  sim::Simulator s(topo, policies::MakeThreadCount(), BaseConfig(), 1);
  sim::TaskSpec spec;
  spec.total_service_us = 30'000;
  s.Submit(spec, 0, 0);
  s.Submit(spec, 0, 1);
  s.Run();
  // Each core ran exactly its task's service time.
  EXPECT_EQ(s.accounting().total_busy_us(), 60'000u);
  EXPECT_EQ(s.accounting().wasted_us(), 0u);
}

TEST(Simulator, SamplerAndTraceCaptureActivity) {
  const Topology topo = Topology::Smp(2);
  sim::SimConfig config = BaseConfig();
  config.sample_period_us = 1'000;
  config.trace_capacity = 1 << 16;
  sim::Simulator s(topo, policies::MakeThreadCount(), config, 1);
  for (int i = 0; i < 4; ++i) {
    sim::TaskSpec spec;
    spec.total_service_us = 10'000;
    s.Submit(spec, 0, 0);
  }
  s.Run();
  EXPECT_GT(s.sampler().samples().size(), 5u);
  EXPECT_FALSE(s.trace_buffer().Filter(trace::EventType::kExit).empty());
  EXPECT_FALSE(s.trace_buffer().Filter(trace::EventType::kSteal).empty());
  EXPECT_FALSE(s.trace_buffer().ToCsv().empty());
}

TEST(Simulator, CompletionLatencyRecorded) {
  const Topology topo = Topology::Smp(1);
  sim::Simulator s(topo, policies::MakeThreadCount(), BaseConfig(), 1);
  sim::TaskSpec spec;
  spec.total_service_us = 7'000;
  s.Submit(spec, 0, 0);
  s.Run();
  EXPECT_EQ(s.metrics().completion_latency_us.count(), 1u);
  EXPECT_DOUBLE_EQ(s.metrics().completion_latency_us.mean(), 7'000.0);
}

TEST(Simulator, BlockingTasksWakeAndFinish) {
  const Topology topo = Topology::Smp(2);
  sim::Simulator s(topo, policies::MakeThreadCount(), BaseConfig(), 9);
  sim::TaskSpec spec;
  spec.total_service_us = 10'000;
  spec.burst_us = 2'000;
  spec.mean_block_us = 1'000;
  s.Submit(spec, 0);
  s.Run();
  const sim::SimMetrics& m = s.metrics();
  EXPECT_EQ(m.tasks_completed, 1u);
  EXPECT_EQ(m.bursts_completed, 5u);  // 10ms service in 2ms bursts
  EXPECT_GE(m.wakeups, 4u);
  EXPECT_GT(m.makespan_us, 10'000u);  // blocking stretches wall time
}

TEST(Simulator, BrokenPolicyStillDrainsButThrashes) {
  // The broken filter migrates constantly between busy cores; work still
  // completes (the sim's wake/exit dynamics break ties) but migrations are
  // disproportionate.
  const Topology topo = Topology::Smp(4);
  sim::SimConfig config = BaseConfig();
  config.lb_period_us = 1'000;
  sim::Simulator good(topo, policies::MakeThreadCount(), config, 11);
  sim::Simulator bad(topo, policies::MakeBrokenCanSteal(), config, 11);
  for (sim::Simulator* s : {&good, &bad}) {
    for (int i = 0; i < 12; ++i) {
      sim::TaskSpec spec;
      spec.total_service_us = 30'000;
      s->Submit(spec, 0, 0);
    }
    s->Run();
    EXPECT_EQ(s->metrics().tasks_completed, 12u);
  }
  EXPECT_GT(bad.metrics().migrations, good.metrics().migrations);
}

}  // namespace
}  // namespace optsched
