// Symmetry reduction: the quotiented liveness check preserves verdicts and
// worst-case N for core-symmetric (load-only) policies while shrinking the
// graph, enabling larger bounds.

#include <gtest/gtest.h>

#include "src/core/policies/broken.h"
#include "src/core/policies/thread_count.h"
#include "src/verify/convergence.h"

namespace optsched {
namespace {

verify::ConvergenceCheckOptions Opt(uint32_t cores, int64_t max_load, bool reduce) {
  verify::ConvergenceCheckOptions o;
  o.bounds.num_cores = cores;
  o.bounds.max_load = max_load;
  o.symmetry_reduction = reduce;
  return o;
}

TEST(SymmetryReduction, PreservesVerdictAndNForThreadCount) {
  const auto policy = policies::MakeThreadCount();
  for (const auto& [cores, max_load] : {std::pair<uint32_t, int64_t>{3, 4}, {4, 3}}) {
    const auto full = verify::CheckConcurrentConvergence(*policy, Opt(cores, max_load, false));
    const auto reduced =
        verify::CheckConcurrentConvergence(*policy, Opt(cores, max_load, true));
    ASSERT_TRUE(full.result.holds);
    EXPECT_TRUE(reduced.result.holds);
    EXPECT_EQ(reduced.worst_case_rounds, full.worst_case_rounds)
        << cores << " cores, max_load " << max_load;
    EXPECT_LT(reduced.graph_states, full.graph_states);
  }
}

TEST(SymmetryReduction, PreservesLivelockForBrokenFilter) {
  const auto policy = policies::MakeBrokenCanSteal();
  const auto full =
      verify::CheckConcurrentConvergence(*policy, Opt(3, 4, false));
  const auto reduced =
      verify::CheckConcurrentConvergence(*policy, Opt(3, 4, true));
  EXPECT_FALSE(full.result.holds);
  EXPECT_FALSE(reduced.result.holds);
  EXPECT_FALSE(reduced.livelock_cycle.empty());
}

TEST(SymmetryReduction, EnablesLargerBounds) {
  // 6 cores x loads <= 3 unreduced would be 4096 initial states x 720 orders;
  // reduced it is 84 canonical states — tractable in well under a second.
  const auto policy = policies::MakeThreadCount();
  verify::ConvergenceCheckOptions options = Opt(6, 3, true);
  options.max_orders_per_state = 720;
  const auto result = verify::CheckConcurrentConvergence(*policy, options);
  EXPECT_TRUE(result.result.holds) << result.result.ToString();
  EXPECT_LE(result.graph_states, 100u);
  EXPECT_GT(result.worst_case_rounds, 0u);
}

}  // namespace
}  // namespace optsched
