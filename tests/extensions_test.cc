// Tests for the smaller extensions: asymmetric topologies, minimal
// counterexample search, and parser robustness against garbage input.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/core/policies/hierarchical.h"
#include "src/dsl/parser.h"
#include "src/verify/lemmas.h"

namespace optsched {
namespace {

using policies::GroupMap;

TEST(AsymmetricTopology, ShapeAndNodes) {
  const Topology topo = Topology::NumaAsymmetric({4, 2, 1});
  EXPECT_EQ(topo.num_cpus(), 7u);
  EXPECT_EQ(topo.num_nodes(), 3u);
  EXPECT_EQ(topo.CpusInNode(0).size(), 4u);
  EXPECT_EQ(topo.CpusInNode(2).size(), 1u);
  EXPECT_EQ(topo.NodeOf(5), 1u);
  EXPECT_EQ(topo.NodeOf(6), 2u);
  EXPECT_TRUE(topo.SharesNode(4, 5));
  EXPECT_FALSE(topo.SharesNode(3, 4));
  EXPECT_NE(topo.ToString().find("asymmetric"), std::string::npos);
}

TEST(AsymmetricTopology, GroupMapByNodeFollowsShape) {
  const Topology topo = Topology::NumaAsymmetric({4, 2});
  const GroupMap groups = GroupMap::ByNode(topo);
  EXPECT_EQ(groups.num_groups(), 2u);
  EXPECT_EQ(groups.members(0).size(), 4u);
  EXPECT_EQ(groups.members(1).size(), 2u);
}

TEST(AsymmetricTopologyDeath, RejectsEmptyNodes) {
  EXPECT_DEATH(Topology::NumaAsymmetric({4, 0}), "at least one");
}

TEST(MinimalCounterexample, FindsSmallestTaskCountRefutation) {
  // group-sum on uneven groups (3+1): the direct sweep returns whatever
  // lexicographic order hits first; the minimal search returns a refutation
  // with the fewest tasks.
  const auto policy = policies::MakeGroupSum(GroupMap::Contiguous(4, 3));
  verify::Bounds bounds;
  bounds.num_cores = 4;
  bounds.max_load = 4;
  const auto minimal =
      verify::CheckWithMinimalCounterexample(verify::CheckLemma1, *policy, bounds);
  ASSERT_FALSE(minimal.holds);
  ASSERT_TRUE(minimal.counterexample.has_value());
  int64_t total = 0;
  for (int64_t l : minimal.counterexample->loads) {
    total += l;
  }
  // No refutation with fewer tasks exists: verify by checking all smaller
  // totals pass.
  for (int64_t smaller = 0; smaller < total; ++smaller) {
    verify::Bounds slice = bounds;
    slice.total_load = smaller;
    EXPECT_TRUE(verify::CheckLemma1(*policy, slice).holds) << "total " << smaller;
  }
  SCOPED_TRACE(minimal.ToString());
}

TEST(MinimalCounterexample, PassesThroughWhenPropertyHolds) {
  const auto policy = policies::MakeHierarchical(GroupMap::Contiguous(4, 2));
  verify::Bounds bounds;
  bounds.num_cores = 4;
  bounds.max_load = 3;
  const auto result =
      verify::CheckWithMinimalCounterexample(verify::CheckLemma1, *policy, bounds);
  EXPECT_TRUE(result.holds);
  EXPECT_FALSE(result.counterexample.has_value());
  EXPECT_NE(result.property.find("minimal counterexample"), std::string::npos);
}

TEST(ParserFuzz, RandomTokenSoupNeverCrashes) {
  // Robustness: arbitrary token sequences must produce diagnostics, not
  // crashes or hangs. (Deterministic "fuzzing": fixed seed, bounded input.)
  const char* fragments[] = {"policy",  "filter", "choice",  "migrate", "metric", "let",
                             "(",       ")",      "{",       "}",       ";",      ",",
                             ".",       "load",   "self",    "if",      "else",   "&&",
                             "||",      "==",     ">=",      "-",       "42",     "weight",
                             "maxload", "true",   "nr_tasks", "#x\n",   "=",      "!"};
  Rng rng(20260704);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string source;
    const int length = static_cast<int>(rng.NextInRange(1, 40));
    for (int i = 0; i < length; ++i) {
      source += fragments[rng.NextBelow(std::size(fragments))];
      source += ' ';
    }
    const dsl::ParseResult result = dsl::ParsePolicy(source);
    if (!result.ok()) {
      EXPECT_FALSE(result.diagnostics.empty()) << source;
    }
  }
}

TEST(ParserFuzz, RandomBytesNeverCrashLexerOrParser) {
  Rng rng(77);
  for (int trial = 0; trial < 500; ++trial) {
    std::string source;
    const int length = static_cast<int>(rng.NextInRange(0, 120));
    for (int i = 0; i < length; ++i) {
      source.push_back(static_cast<char>(rng.NextInRange(1, 126)));
    }
    (void)dsl::ParsePolicy(source);
    (void)dsl::ParseExpression(source);
  }
}

}  // namespace
}  // namespace optsched
