// Property-based tests: parameterized sweeps over core counts, load bounds
// and seeds, asserting the paper's invariants on randomized executions.

#include <gtest/gtest.h>

#include <tuple>

#include "src/core/balancer.h"
#include "src/core/conservation.h"
#include "src/core/policies/hierarchical.h"
#include "src/core/policies/registry.h"
#include "src/core/policies/thread_count.h"
#include "src/core/policies/weighted.h"
#include "src/dsl/compile.h"
#include "src/verify/state_space.h"

namespace optsched {
namespace {

// ---------------------------------------------------------------------------
// Sweep 1: randomized concurrent balancing runs preserve the model invariants
// for every sound policy, machine size and seed.
// ---------------------------------------------------------------------------

class BalancingInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, uint32_t, uint64_t>> {};

TEST_P(BalancingInvariants, RandomRunsPreserveModel) {
  const auto& [policy_name, num_cores, seed] = GetParam();
  const Topology topo = Topology::Smp(num_cores);
  const auto policy = policies::MakePolicyByName(policy_name, topo);
  ASSERT_NE(policy, nullptr);
  LoadBalancer balancer(policy, &topo);
  Rng rng(seed);

  // Random initial state.
  std::vector<int64_t> loads(num_cores);
  for (auto& l : loads) {
    l = rng.NextInRange(0, 6);
  }
  MachineState machine = MachineState::FromLoads(loads);
  const uint64_t total_tasks = machine.TotalTasks();
  const int64_t total_weight = machine.TotalWeight();
  const LoadMetric metric = policy->metric();
  int64_t last_potential = machine.Potential(metric);

  for (int round = 0; round < 50; ++round) {
    const RoundResult r = balancer.RunRound(machine, rng);
    // No task is ever lost or duplicated (steal-phase atomicity).
    ASSERT_EQ(machine.TotalTasks(), total_tasks);
    ASSERT_EQ(machine.TotalWeight(), total_weight);
    // Successful steals never idle their victims.
    for (const CoreAction& action : r.actions) {
      if (action.outcome == StealOutcome::kStole) {
        ASSERT_FALSE(machine.IsIdle(*action.victim));
      }
    }
    // The potential never increases for sound policies, and strictly
    // decreases whenever any steal succeeded.
    const int64_t potential = machine.Potential(metric);
    ASSERT_LE(potential, last_potential);
    if (r.successes > 0) {
      ASSERT_LT(potential, last_potential);
    }
    last_potential = potential;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SoundPolicies, BalancingInvariants,
    ::testing::Combine(::testing::Values("thread-count", "weighted-load", "hierarchical",
                                         "thread-count+numa", "thread-count+random-choice"),
                       ::testing::Values(2u, 3u, 5u, 8u), ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-' || c == '+') {
          c = '_';
        }
      }
      return name + "_" + std::to_string(std::get<1>(info.param)) + "c_s" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Sweep 2: randomized convergence — every sound policy reaches work
// conservation from random states under random adversaries.
// ---------------------------------------------------------------------------

class ConvergenceSweep
    : public ::testing::TestWithParam<std::tuple<std::string, uint32_t, uint64_t>> {};

TEST_P(ConvergenceSweep, ReachesWorkConservation) {
  const auto& [policy_name, num_cores, seed] = GetParam();
  const Topology topo = Topology::Smp(num_cores);
  const auto policy = policies::MakePolicyByName(policy_name, topo);
  ASSERT_NE(policy, nullptr);
  LoadBalancer balancer(policy, &topo);
  Rng rng(seed);
  std::vector<int64_t> loads(num_cores);
  for (auto& l : loads) {
    l = rng.NextInRange(0, 8);
  }
  MachineState machine = MachineState::FromLoads(loads);
  const ConvergenceResult result = RunUntilWorkConserved(balancer, machine, rng);
  EXPECT_TRUE(result.converged) << result.ToString();
  EXPECT_TRUE(machine.WorkConserved());
  // N is bounded by the potential argument: successes <= d0/2, and every
  // round before convergence has at least one success... (idle+overloaded =>
  // Lemma 1 gives the idle core a candidate; sequentially-first steal in the
  // round succeeds). Generous cap:
  EXPECT_LE(result.rounds, static_cast<uint64_t>(PotentialOfLoads(loads)) + 1);
}

INSTANTIATE_TEST_SUITE_P(
    SoundPolicies, ConvergenceSweep,
    ::testing::Combine(::testing::Values("thread-count", "weighted-load", "hierarchical"),
                       ::testing::Values(2u, 4u, 8u, 16u), ::testing::Values(11u, 12u)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-' || c == '+') {
          c = '_';
        }
      }
      return name + "_" + std::to_string(std::get<1>(info.param)) + "c_s" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Sweep 3: the DSL interpreter agrees with the hand-written policies on every
// bounded state (semantic equivalence of the compilation pipeline).
// ---------------------------------------------------------------------------

class DslEquivalence : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DslEquivalence, ThreadCountFilterIdentical) {
  const uint32_t cores = GetParam();
  const auto compiled = dsl::CompilePolicy(dsl::samples::kThreadCount);
  ASSERT_TRUE(compiled.ok());
  const auto hand = policies::MakeThreadCount();
  verify::Bounds bounds;
  bounds.num_cores = cores;
  bounds.max_load = 3;
  verify::ForEachState(bounds, [&](const std::vector<int64_t>& loads) {
    const MachineState m = MachineState::FromLoads(loads);
    const LoadSnapshot s = m.Snapshot();
    for (CpuId self = 0; self < cores; ++self) {
      const SelectionView view{.self = self, .snapshot = s, .topology = nullptr};
      for (CpuId other = 0; other < cores; ++other) {
        if (other != self && compiled.policy->CanSteal(view, other) !=
                                 hand->CanSteal(view, other)) {
          ADD_FAILURE() << "divergence at " << m.ToString();
          return false;
        }
      }
    }
    return true;
  });
}

INSTANTIATE_TEST_SUITE_P(Cores, DslEquivalence, ::testing::Values(2u, 3u, 4u, 5u),
                         [](const auto& info) { return std::to_string(info.param) + "cores"; });

// ---------------------------------------------------------------------------
// Sweep 4: §4.2, "load balancing operations cannot fail" in the simple
// (sequential) context. Precisely: the re-check can never fail without
// concurrency, and for count-metric policies no attempt fails at all. For the
// weighted policy a *busy* thief's attempt may benignly find no task light
// enough to strictly decrease the weighted imbalance (kFailedNoTask) — but an
// idle thief always succeeds, which is the leg work conservation rests on
// (also enforced exhaustively by CheckStealSafety).
// ---------------------------------------------------------------------------

class SequentialFailureModes
    : public ::testing::TestWithParam<std::pair<std::string, bool>> {};

TEST_P(SequentialFailureModes, OnlyBenignFailuresWithoutConcurrency) {
  const auto& [policy_name, may_fail_no_task] = GetParam();
  const Topology topo = Topology::Smp(4);
  const auto policy = policies::MakePolicyByName(policy_name, topo);
  ASSERT_NE(policy, nullptr);
  LoadBalancer balancer(policy, &topo);
  Rng rng(3);
  RoundOptions options;
  options.mode = RoundOptions::Mode::kSequential;
  verify::Bounds bounds;
  bounds.num_cores = 4;
  bounds.max_load = 4;
  bool ok = true;
  verify::ForEachState(bounds, [&](const std::vector<int64_t>& loads) {
    const std::vector<int64_t> start = loads;
    MachineState machine = MachineState::FromLoads(loads);
    const RoundResult r = balancer.RunRound(machine, rng, options);
    for (const CoreAction& action : r.actions) {
      if (action.outcome == StealOutcome::kFailedRecheck) {
        ADD_FAILURE() << "sequential re-check failure at "
                      << MachineState::FromLoads(start).ToString();
        ok = false;
      }
      if (action.outcome == StealOutcome::kFailedNoTask && !may_fail_no_task) {
        ADD_FAILURE() << "unexpected no-task failure at "
                      << MachineState::FromLoads(start).ToString();
        ok = false;
      }
    }
    return ok;
  });
}

INSTANTIATE_TEST_SUITE_P(SoundPolicies, SequentialFailureModes,
                         ::testing::Values(std::make_pair(std::string("thread-count"), false),
                                           std::make_pair(std::string("hierarchical"), false),
                                           std::make_pair(std::string("weighted-load"), true)),
                         [](const auto& info) {
                           std::string name = info.param.first;
                           for (char& c : name) {
                             if (c == '-' || c == '+') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace optsched
