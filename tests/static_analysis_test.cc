// Runtime companions to the compile-time lock-discipline layer: the pieces
// of the annotated-primitives contract that need a running process rather
// than a clang diagnostic. The compile-time side lives in
// tests/negative_compile/ (must-NOT-compile under -Wthread-safety) and
// tools/lint/optsched_lint.py (structural rules + fixtures).

#include <cstdint>

#include <gtest/gtest.h>

#include "src/base/mutex.h"
#include "src/runtime/concurrent_machine.h"
#include "src/runtime/seqlock.h"
#include "src/runtime/spinlock.h"

namespace optsched::runtime {
namespace {

// The constructor contract says distinct locks, always checked (not just in
// debug builds): one pointer compare is cheap insurance against a
// self-deadlock that would otherwise hang the process with no diagnostic.
TEST(DualLockGuardDeathTest, SameLockTwiceIsRejectedUpFront) {
  SpinLock lock;
  EXPECT_DEATH({ DualLockGuard guard(lock, lock); },
               "two distinct locks");
}

TEST(DualLockGuard, DistinctLocksAcquireAndRelease) {
  SpinLock a;
  SpinLock b;
  {
    DualLockGuard guard(a, b);
    EXPECT_FALSE(a.try_lock());
    EXPECT_FALSE(b.try_lock());
  }
  EXPECT_TRUE(a.try_lock());
  EXPECT_TRUE(b.try_lock());
  a.unlock();
  b.unlock();
}

struct Pair {
  uint64_t a = 0;
  uint64_t b = 0;
};

// Regression: the constructor used to publish the zero-initialized payload
// through Write(), so a freshly built seqlock reported write_count() == 1
// and every "how many publishes did this phase do" assertion carried a
// spurious +1 per queue. Construction is initialization, not publication.
TEST(Seqlock, FreshInstanceHasZeroWriteCount) {
  Seqlock<Pair> seqlock;
  EXPECT_EQ(seqlock.write_count(), 0u);
  // The zero-initialized payload is still readable before the first Write.
  const Pair fresh = seqlock.Read();
  EXPECT_EQ(fresh.a, 0u);
  EXPECT_EQ(fresh.b, 0u);

  Pair value{7, 9};
  seqlock.Write(value);
  EXPECT_EQ(seqlock.write_count(), 1u);
  const Pair read = seqlock.Read();
  EXPECT_EQ(read.a, 7u);
  EXPECT_EQ(read.b, 9u);
}

// Same property one layer up: a fresh machine has published nothing, and the
// lock-free snapshot still sees every queue as empty (zero-initialized
// payload words, not garbage).
TEST(Seqlock, FreshMachinePublishesNothingYetSnapshotsEmpty) {
  ConcurrentMachine machine(4);
  uint64_t writes = 0;
  for (uint32_t q = 0; q < machine.num_queues(); ++q) {
    writes += machine.queue(q).SeqlockWriteCount();
  }
  EXPECT_EQ(writes, 0u);

  LoadSnapshot snapshot;
  machine.SnapshotInto(snapshot);
  for (uint32_t q = 0; q < machine.num_queues(); ++q) {
    EXPECT_EQ(snapshot.task_count[q], 0);
    EXPECT_EQ(snapshot.weighted_load[q], 0);
  }
}

TEST(SpinLock, AssertHeldPassesWhileLocked) {
  SpinLock lock;
  lock.lock();
  lock.AssertHeld();  // would OPTSCHED_DCHECK-fail (debug builds) if free
  lock.unlock();
}

TEST(LockGuard, WorksWithSpinLockAndMutex) {
  SpinLock spin;
  {
    LockGuard guard(spin);
    EXPECT_FALSE(spin.try_lock());
  }
  EXPECT_TRUE(spin.try_lock());
  spin.unlock();

  Mutex mutex;
  {
    LockGuard guard(mutex);
    EXPECT_FALSE(mutex.try_lock());
  }
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
}

}  // namespace
}  // namespace optsched::runtime
