// DealPolicy / DealWindow: the pure decision layer of proactive work-dealing
// (src/sched/deal_policy.h). No queues, no threads — every answer here is a
// function of (config, loads, window state), which is exactly why the same
// policy object can drive the executor's deal round and the mc deal harness.

#include "src/sched/deal_policy.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace optsched {
namespace {

LoadSnapshot Snapshot(std::vector<int64_t> tasks) {
  LoadSnapshot snapshot;
  snapshot.task_count = std::move(tasks);
  snapshot.weighted_load.assign(snapshot.task_count.size(), 0);
  return snapshot;
}

DealConfig Enabled() {
  DealConfig config;
  config.enabled = true;
  return config;
}

TEST(DealPolicyTest, ShouldDealRequiresEnableAndStrictSurplus) {
  DealConfig config = Enabled();
  config.threshold = 2;
  const DealPolicy policy(config);
  EXPECT_FALSE(policy.ShouldDeal(0));
  EXPECT_FALSE(policy.ShouldDeal(2));  // at the threshold: no surplus
  EXPECT_TRUE(policy.ShouldDeal(3));

  config.enabled = false;
  const DealPolicy disabled(config);
  EXPECT_FALSE(disabled.ShouldDeal(100));
}

TEST(DealPolicyTest, PickRecipientPrefersEmptiestThenLeastPendingThenLowestId) {
  const DealPolicy policy(Enabled());
  // Only idle peers qualify by default; among the idle ones (2 and 3), the
  // undrained deal backlog breaks the tie.
  const LoadSnapshot snapshot = Snapshot({5, 1, 0, 0});
  const std::vector<int64_t> pending = {0, 0, 3, 1};
  EXPECT_EQ(policy.PickRecipient(0, snapshot, pending.data()), 3u);
  // Without pending data the tie falls to the lowest id.
  EXPECT_EQ(policy.PickRecipient(0, snapshot, nullptr), 2u);
}

TEST(DealPolicyTest, PickRecipientSkipsSelfAndBusyPeers) {
  const DealPolicy policy(Enabled());
  // Dealer 0 is the only idle-looking cpu: no eligible peer.
  EXPECT_EQ(policy.PickRecipient(0, Snapshot({0, 2, 1}), nullptr),
            DealPolicy::kNoPeer);
  DealConfig config = Enabled();
  config.require_idle_peer = false;
  const DealPolicy topper(config);
  // Relaxed gate: the lightest peer qualifies even while busy.
  EXPECT_EQ(topper.PickRecipient(0, Snapshot({5, 2, 1}), nullptr), 2u);
}

TEST(DealPolicyTest, DealQuotaHalvesTheGapWithinCaps) {
  DealConfig config = Enabled();
  config.threshold = 2;
  config.max_batch = 8;
  const DealPolicy policy(config);
  // gap 10 -> ceil(10/2) = 5, under both caps.
  EXPECT_EQ(policy.DealQuota(10, 0), 5u);
  // gap 7 -> ceil(7/2) = 4.
  EXPECT_EQ(policy.DealQuota(7, 0), 4u);
  // Never deals the dealer below its threshold: own 4 -> at most 2 leave.
  EXPECT_EQ(policy.DealQuota(4, 0), 2u);
  // max_batch caps the round.
  config.max_batch = 3;
  EXPECT_EQ(DealPolicy(config).DealQuota(20, 0), 3u);
}

TEST(DealPolicyTest, DealQuotaZeroWithoutAJustifiedGap) {
  DealConfig config = Enabled();
  config.threshold = 2;
  const DealPolicy policy(config);
  EXPECT_EQ(policy.DealQuota(2, 0), 0u);   // no surplus above the threshold
  EXPECT_EQ(policy.DealQuota(5, 5), 0u);   // no gap
  EXPECT_EQ(policy.DealQuota(5, 9), 0u);   // peer is the loaded one
}

TEST(DealWindowTest, RobberyOpensTheWindowForGraceRounds) {
  DealConfig config = Enabled();
  config.grace_rounds = 2;
  DealWindow window;
  // No robbery observed yet: closed.
  EXPECT_FALSE(window.Observe(0, config));
  // StolenCount advanced: the next grace_rounds checks are in-window.
  EXPECT_TRUE(window.Observe(1, config));
  EXPECT_TRUE(window.Observe(1, config));
  EXPECT_FALSE(window.Observe(1, config));
  // A fresh robbery re-opens it.
  EXPECT_TRUE(window.Observe(2, config));
}

TEST(DealWindowTest, ZeroGraceRoundsMeansAlwaysOn) {
  DealConfig config = Enabled();
  config.grace_rounds = 0;
  DealWindow window;
  EXPECT_TRUE(window.Observe(0, config));
  EXPECT_TRUE(window.Observe(0, config));
}

}  // namespace
}  // namespace optsched
