// Unit tests for the round engine: sequential and concurrent semantics,
// failure classification, the re-check, and the paper's 3-core scenario.

#include <gtest/gtest.h>

#include "src/core/balancer.h"
#include "src/core/conservation.h"
#include "src/core/policies/broken.h"
#include "src/core/policies/thread_count.h"

namespace optsched {
namespace {

RoundOptions FixedOrder(std::vector<uint32_t> order) {
  RoundOptions options;
  options.mode = RoundOptions::Mode::kConcurrentFixedOrder;
  options.steal_order = std::move(order);
  return options;
}

TEST(Balancer, SequentialRoundBalancesPaperExample) {
  // §4.2: without concurrency, steals cannot fail.
  LoadBalancer balancer(policies::MakeThreadCount());
  MachineState m = MachineState::FromLoads({0, 1, 2});
  Rng rng(1);
  RoundOptions options;
  options.mode = RoundOptions::Mode::kSequential;
  const RoundResult r = balancer.RunRound(m, rng, options);
  EXPECT_EQ(r.successes, 1u);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(m.Loads(LoadMetric::kTaskCount), (std::vector<int64_t>{1, 1, 1}));
  EXPECT_TRUE(m.WorkConserved());
}

TEST(Balancer, ConcurrentRoundClassifiesRecheckFailure) {
  // Paper's concurrent example: loads (0,1,2) under the broken filter; when
  // core 1 steals first, core 0's re-check fails.
  LoadBalancer balancer(policies::MakeBrokenCanSteal());
  MachineState m = MachineState::FromLoads({0, 1, 2});
  Rng rng(1);
  const RoundResult r = balancer.RunRound(m, rng, FixedOrder({1, 0, 2}));
  EXPECT_EQ(r.actions[1].outcome, StealOutcome::kStole);
  EXPECT_EQ(r.actions[0].outcome, StealOutcome::kFailedRecheck);
  EXPECT_EQ(*r.actions[0].victim, 2u);
  EXPECT_EQ(m.Loads(LoadMetric::kTaskCount), (std::vector<int64_t>{0, 2, 1}));
  EXPECT_FALSE(m.WorkConserved());  // the idle core starved this round
}

TEST(Balancer, BrokenFilterPingPongsForever) {
  // Drive the §4.3 livelock explicitly: alternate the adversarial orders and
  // watch the state oscillate between (0,1,2) and (0,2,1).
  LoadBalancer balancer(policies::MakeBrokenCanSteal());
  MachineState m = MachineState::FromLoads({0, 1, 2});
  Rng rng(1);
  for (int round = 0; round < 10; ++round) {
    balancer.RunRound(m, rng, FixedOrder(round % 2 == 0 ? std::vector<uint32_t>{1, 0, 2}
                                                        : std::vector<uint32_t>{2, 0, 1}));
    EXPECT_TRUE(m.IsIdle(0)) << "round " << round;
    EXPECT_FALSE(m.WorkConserved()) << "round " << round;
  }
  EXPECT_EQ(balancer.stats().failed_recheck, 10u);
  EXPECT_EQ(balancer.stats().successes, 10u);
}

TEST(Balancer, SoundFilterImmuneToSameAdversary) {
  LoadBalancer balancer(policies::MakeThreadCount());
  MachineState m = MachineState::FromLoads({0, 1, 2});
  Rng rng(1);
  const RoundResult r = balancer.RunRound(m, rng, FixedOrder({1, 0, 2}));
  // Core 1 cannot steal (diff 1); only core 0 acts, and it succeeds.
  EXPECT_EQ(r.successes, 1u);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_TRUE(m.WorkConserved());
}

TEST(Balancer, ConcurrentFailuresComeFromStaleness) {
  // (0,0,2): both idle cores target core 2 with the same snapshot. The first
  // steal drops core 2 to 1; the second's re-check sees diff 1 < 2 and fails.
  // Exactly one succeeds — the paper's "one of the two cores will fail".
  LoadBalancer balancer(policies::MakeThreadCount());
  MachineState m = MachineState::FromLoads({0, 0, 2});
  Rng rng(1);
  const RoundResult r = balancer.RunRound(m, rng, FixedOrder({0, 1, 2}));
  EXPECT_EQ(r.successes, 1u);
  EXPECT_EQ(r.failures, 1u);
  EXPECT_EQ(r.actions[0].outcome, StealOutcome::kStole);
  EXPECT_EQ(r.actions[1].outcome, StealOutcome::kFailedRecheck);
}

TEST(Balancer, DisablingRecheckOversteals) {
  // D2 ablation: without the re-check both idle cores steal from core 2 and
  // the potential argument breaks (core 2 drops from 3 to 1 in one round —
  // fine here, but from (0,0,2) it would idle the victim; check both).
  LoadBalancer balancer(policies::MakeThreadCount());
  MachineState m = MachineState::FromLoads({0, 0, 3});
  Rng rng(1);
  RoundOptions options = FixedOrder({0, 1, 2});
  options.recheck_filter = false;
  const RoundResult r = balancer.RunRound(m, rng, options);
  EXPECT_EQ(r.successes, 2u);
  EXPECT_EQ(m.Loads(LoadMetric::kTaskCount), (std::vector<int64_t>{1, 1, 1}));

  // From (0,0,2): the stale-snapshot steal would leave the victim idle; the
  // migration rule (victim-thief diff at *current* loads) still blocks it, so
  // the engine reports kFailedNoTask rather than corrupting the state.
  MachineState m2 = MachineState::FromLoads({0, 0, 2});
  const RoundResult r2 = balancer.RunRound(m2, rng, options);
  EXPECT_EQ(r2.successes, 1u);
  EXPECT_EQ(r2.actions[1].outcome, StealOutcome::kFailedNoTask);
  EXPECT_FALSE(m2.IsIdle(2));
}

TEST(Balancer, OnlyIdleStealRestrictsParticipants) {
  LoadBalancer balancer(policies::MakeThreadCount());
  MachineState m = MachineState::FromLoads({0, 3, 6});
  Rng rng(1);
  RoundOptions options;
  options.mode = RoundOptions::Mode::kSequential;
  options.only_idle_steal = true;
  const RoundResult r = balancer.RunRound(m, rng, options);
  // Only core 0 acted; core 1 (which could steal from core 2) sat out.
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_EQ(r.actions[1].outcome, StealOutcome::kNoCandidates);
}

TEST(Balancer, PotentialRecordedPerRound) {
  LoadBalancer balancer(policies::MakeThreadCount());
  MachineState m = MachineState::FromLoads({0, 4});
  Rng rng(1);
  const RoundResult r = balancer.RunRound(m, rng);
  EXPECT_EQ(r.potential_before, 8);
  EXPECT_LT(r.potential_after, r.potential_before);
}

TEST(Balancer, StatsAccumulateAcrossRounds) {
  LoadBalancer balancer(policies::MakeThreadCount());
  MachineState m = MachineState::FromLoads({0, 0, 8});
  Rng rng(1);
  RunUntilQuiescent(balancer, m, rng);
  const BalanceStats& stats = balancer.stats();
  EXPECT_GT(stats.rounds, 1u);
  EXPECT_GT(stats.successes, 0u);
  EXPECT_EQ(stats.failures(), stats.failed_recheck + stats.failed_no_task);
  balancer.ResetStats();
  EXPECT_EQ(balancer.stats().rounds, 0u);
}

TEST(Balancer, ExecuteStealPhaseDirectly) {
  LoadBalancer balancer(policies::MakeThreadCount());
  MachineState m = MachineState::FromLoads({0, 4});
  const CoreAction ok = balancer.ExecuteStealPhase(m, 0, 1);
  EXPECT_EQ(ok.outcome, StealOutcome::kStole);
  EXPECT_EQ(m.Loads(LoadMetric::kTaskCount), (std::vector<int64_t>{1, 3}));
  // Same pair again: diff now 2, still stealable; once more after that the
  // re-check refuses (diff 0 after two steals... diff = 3-1 = 2 steals, then
  // 2-2 = 0 -> refused).
  EXPECT_EQ(balancer.ExecuteStealPhase(m, 0, 1).outcome, StealOutcome::kStole);
  EXPECT_EQ(balancer.ExecuteStealPhase(m, 0, 1).outcome, StealOutcome::kFailedRecheck);
}

TEST(Balancer, RunUntilWorkConservedReportsN) {
  LoadBalancer balancer(policies::MakeThreadCount());
  MachineState m = MachineState::FromLoads({0, 0, 0, 9});
  Rng rng(3);
  const ConvergenceResult result = RunUntilWorkConserved(balancer, m, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.rounds, 0u);
  EXPECT_FALSE(result.cycle_detected);
  EXPECT_TRUE(m.WorkConserved());
}

TEST(Balancer, AlreadyConservedNeedsZeroRounds) {
  LoadBalancer balancer(policies::MakeThreadCount());
  MachineState m = MachineState::FromLoads({1, 1});
  Rng rng(3);
  const ConvergenceResult result = RunUntilWorkConserved(balancer, m, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.rounds, 0u);
}

TEST(Balancer, BrokenPolicyTripsCycleDetector) {
  LoadBalancer balancer(policies::MakeBrokenCanSteal());
  MachineState m = MachineState::FromLoads({0, 1, 2});
  Rng rng(7);
  ConvergenceOptions options;
  options.max_rounds = 300;
  const ConvergenceResult result = RunUntilWorkConserved(balancer, m, rng, options);
  SCOPED_TRACE(result.ToString());
  // Random orders: with prob 1/2 per round the ping-pong continues; over 300
  // rounds a revisit of a non-conserved load vector is essentially certain
  // unless it converged very fast. Either way the run must terminate; if it
  // did not converge, the cycle detector must have fired.
  if (!result.converged) {
    EXPECT_TRUE(result.cycle_detected);
  }
}

TEST(Balancer, RoundToStringMentionsCounts) {
  LoadBalancer balancer(policies::MakeThreadCount());
  MachineState m = MachineState::FromLoads({0, 4});
  Rng rng(1);
  const RoundResult r = balancer.RunRound(m, rng);
  EXPECT_NE(r.ToString().find("successes=1"), std::string::npos);
  EXPECT_NE(balancer.stats().ToString().find("rounds=1"), std::string::npos);
}

}  // namespace
}  // namespace optsched
