// Unit tests for tracing and time accounting.

#include <gtest/gtest.h>

#include "src/sched/machine_state.h"
#include "src/trace/accounting.h"
#include "src/trace/trace.h"

namespace optsched {
namespace {

using trace::EventType;
using trace::LoadSampler;
using trace::TimeAccountant;
using trace::TraceBuffer;
using trace::TraceEvent;

TEST(TraceBuffer, RecordsAndFilters) {
  TraceBuffer buffer(16);
  buffer.Record({.time = 1, .type = EventType::kSpawn, .cpu = 0, .task = 1});
  buffer.Record({.time = 2, .type = EventType::kSteal, .cpu = 1, .task = 1, .other_cpu = 0});
  buffer.Record({.time = 3, .type = EventType::kExit, .cpu = 1, .task = 1});
  EXPECT_EQ(buffer.events().size(), 3u);
  const auto steals = buffer.Filter(EventType::kSteal);
  ASSERT_EQ(steals.size(), 1u);
  EXPECT_EQ(steals[0].other_cpu, 0u);
}

TEST(TraceBuffer, CapacityDropsExcess) {
  TraceBuffer buffer(2);
  for (int i = 0; i < 5; ++i) {
    buffer.Record({.time = static_cast<trace::SimTime>(i), .type = EventType::kSpawn});
  }
  EXPECT_EQ(buffer.events().size(), 2u);
  EXPECT_EQ(buffer.dropped(), 3u);
}

TEST(TraceBuffer, ZeroCapacityDisables) {
  TraceBuffer buffer(0);
  EXPECT_FALSE(buffer.enabled());
  buffer.Record({.time = 1, .type = EventType::kSpawn});
  EXPECT_TRUE(buffer.events().empty());
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST(TraceBuffer, CsvHasHeaderAndRows) {
  TraceBuffer buffer(4);
  buffer.Record({.time = 7, .type = EventType::kWake, .cpu = 2, .task = 9, .other_cpu = 1});
  const std::string csv = buffer.ToCsv();
  EXPECT_NE(csv.find("time_us,type,cpu,task,other_cpu,detail"), std::string::npos);
  EXPECT_NE(csv.find("7,wake,2,9,1,0"), std::string::npos);
}

TEST(TimeAccountant, IntegratesBusyIdleAndWasted) {
  // AdvanceTo(t, m) closes the interval [last, t] with state m.
  // [0,10): cpu0 busy (1 task), cpu1 idle, no overload -> not wasted.
  // [10,30): cpu0 overloaded (2 tasks), cpu1 idle -> wasted.
  // [30,40): both busy with 1 task.
  TimeAccountant acc(2);
  acc.AdvanceTo(0, MachineState::FromLoads({1, 0}));  // prime only
  acc.AdvanceTo(10, MachineState::FromLoads({1, 0}));
  acc.AdvanceTo(30, MachineState::FromLoads({2, 0}));
  acc.AdvanceTo(40, MachineState::FromLoads({1, 1}));
  EXPECT_EQ(acc.busy_us(0), 40u);
  EXPECT_EQ(acc.idle_us(0), 0u);
  EXPECT_EQ(acc.busy_us(1), 10u);
  EXPECT_EQ(acc.idle_us(1), 30u);
  EXPECT_EQ(acc.wasted_us(), 20u);
  EXPECT_DOUBLE_EQ(acc.wasted_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(acc.utilization(), 50.0 / 80.0);
}

TEST(TimeAccountant, FirstAdvanceOnlyPrimes) {
  TimeAccountant acc(1);
  MachineState m = MachineState::FromLoads({2});
  acc.AdvanceTo(100, m);  // nothing integrated before priming
  EXPECT_EQ(acc.busy_us(0), 0u);
  acc.AdvanceTo(150, m);
  EXPECT_EQ(acc.busy_us(0), 50u);
}

TEST(TimeAccountant, NonzeroPrimingTimeDoesNotDiluteFractions) {
  // Regression: wasted_fraction() divided by the ABSOLUTE last time, so an
  // accountant primed at t=1000 counted the unseen [0,1000) span as
  // non-wasted wall time and under-reported the fraction. Elapsed time is
  // last - first, and the fractions are relative to it.
  TimeAccountant acc(2);
  acc.AdvanceTo(1000, MachineState::FromLoads({2, 0}));  // prime at t=1000
  acc.AdvanceTo(1010, MachineState::FromLoads({2, 0}));  // wasted 10us
  acc.AdvanceTo(1020, MachineState::FromLoads({1, 1}));  // balanced 10us
  EXPECT_EQ(acc.elapsed_us(), 20u);
  EXPECT_EQ(acc.wasted_us(), 10u);
  // 10 wasted out of 20 observed — NOT 10 out of 1020.
  EXPECT_DOUBLE_EQ(acc.wasted_fraction(), 0.5);
  const std::string text = acc.ToString();
  EXPECT_NE(text.find("elapsed=20us"), std::string::npos) << text;
}

TEST(TimeAccountant, UnprimedOrSinglePointHasZeroFraction) {
  TimeAccountant acc(2);
  EXPECT_DOUBLE_EQ(acc.wasted_fraction(), 0.0);
  acc.AdvanceTo(500, MachineState::FromLoads({3, 0}));
  EXPECT_EQ(acc.elapsed_us(), 0u);
  EXPECT_DOUBLE_EQ(acc.wasted_fraction(), 0.0);  // no div-by-zero, no NaN
}

TEST(TimeAccountantDeath, TimeMustBeMonotone) {
  TimeAccountant acc(1);
  MachineState m = MachineState::FromLoads({1});
  acc.AdvanceTo(10, m);
  EXPECT_DEATH(acc.AdvanceTo(5, m), "monotone");
}

TEST(LoadSampler, DetectsWastedEpisodes) {
  LoadSampler sampler;
  sampler.Sample(0, MachineState::FromLoads({1, 1}));
  sampler.Sample(10, MachineState::FromLoads({0, 3}));  // wasted
  sampler.Sample(20, MachineState::FromLoads({0, 2}));  // still wasted
  sampler.Sample(30, MachineState::FromLoads({1, 1}));
  sampler.Sample(40, MachineState::FromLoads({0, 2}));  // wasted again
  const auto episodes = sampler.WastedEpisodes();
  ASSERT_EQ(episodes.size(), 2u);
  EXPECT_EQ(episodes[0].start_us, 10u);
  EXPECT_EQ(episodes[0].end_us, 20u);
  EXPECT_EQ(episodes[1].start_us, 40u);
}

TEST(LoadSampler, TimelineRendersDepths) {
  LoadSampler sampler;
  sampler.Sample(0, MachineState::FromLoads({0, 1, 3, 12}));
  const std::string timeline = sampler.RenderTimeline();
  EXPECT_NE(timeline.find("cpu0   ."), std::string::npos) << timeline;
  EXPECT_NE(timeline.find("cpu1   #"), std::string::npos) << timeline;
  EXPECT_NE(timeline.find("cpu2   3"), std::string::npos) << timeline;
  EXPECT_NE(timeline.find("cpu3   +"), std::string::npos) << timeline;
}

}  // namespace
}  // namespace optsched
