// Core model-checker machinery: fibers, the controlled scheduler, lock
// interposition, blocking points, deadlock detection, preemption accounting.

#include <vector>

#include <gtest/gtest.h>

#include "src/mc/fiber.h"
#include "src/mc/scheduler.h"
#include "src/runtime/spinlock.h"

// ucontext fibers swap stacks underneath the sanitizer's shadow; ASan is
// handled with explicit fiber annotations (src/mc/fiber.cc) but TSan has no
// equivalent story for makecontext, so the mc tests bow out there.
#if defined(__SANITIZE_THREAD__)
#define OPTSCHED_MC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define OPTSCHED_MC_TSAN 1
#endif
#endif

#ifdef OPTSCHED_MC_TSAN
#define MC_SKIP_UNDER_TSAN() GTEST_SKIP() << "ucontext fibers are not supported under TSan"
#else
#define MC_SKIP_UNDER_TSAN() (void)0
#endif

namespace optsched::mc {
namespace {

// Always runs the lowest-id enabled thread (serializes thread 0 first).
class LowestFirst : public Strategy {
 public:
  uint32_t Pick(const SchedulePoint& point) override { return point.enabled.front(); }
};

// Follows a fixed tape of choices, then lowest-first.
class Tape : public Strategy {
 public:
  explicit Tape(std::vector<uint32_t> tape) : tape_(std::move(tape)) {}
  uint32_t Pick(const SchedulePoint& point) override {
    if (index_ < tape_.size()) {
      const uint32_t wanted = tape_[index_++];
      for (uint32_t c : point.enabled) {
        if (c == wanted) {
          return wanted;
        }
      }
      ADD_FAILURE() << "tape choice " << wanted << " not enabled at step " << point.step;
    }
    return point.enabled.front();
  }

 private:
  std::vector<uint32_t> tape_;
  size_t index_ = 0;
};

TEST(FiberTest, RunsBodyAcrossYields) {
  MC_SKIP_UNDER_TSAN();
  int stage = 0;
  Fiber* self = nullptr;
  Fiber fiber([&] {
    stage = 1;
    self->Yield();
    stage = 2;
  });
  self = &fiber;
  EXPECT_FALSE(fiber.finished());
  fiber.Resume();
  EXPECT_EQ(stage, 1);
  EXPECT_FALSE(fiber.finished());
  fiber.Resume();
  EXPECT_EQ(stage, 2);
  EXPECT_TRUE(fiber.finished());
}

TEST(FiberTest, AbortRunsDestructorsOnTheFiberStack) {
  MC_SKIP_UNDER_TSAN();
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  bool destroyed = false;
  Fiber* self = nullptr;
  Fiber fiber([&] {
    Sentinel sentinel{&destroyed};
    self->Yield();
  });
  self = &fiber;
  fiber.Resume();
  EXPECT_FALSE(destroyed);
  fiber.Abort();
  EXPECT_TRUE(destroyed);
  EXPECT_TRUE(fiber.finished());
}

TEST(OpsDependentTest, SameObjectWithAWriteIsDependent) {
  const ThreadOp acquire{SyncOp::kLockAcquire, 3};
  const ThreadOp release{SyncOp::kLockRelease, 3};
  const ThreadOp read{SyncOp::kSeqRead, 3};
  const ThreadOp other_read{SyncOp::kSeqRead, 4};
  const ThreadOp yield{SyncOp::kYield, 0};
  EXPECT_TRUE(OpsDependent(acquire, release));
  EXPECT_TRUE(OpsDependent(acquire, read));
  EXPECT_FALSE(OpsDependent(read, read));       // two reads commute
  EXPECT_FALSE(OpsDependent(acquire, other_read));  // different objects
  EXPECT_FALSE(OpsDependent(yield, acquire));   // no object: independent
}

TEST(OpsDependentTest, LockAcquiresNeverStaySleeping) {
  const ThreadOp acquire{SyncOp::kLockAcquire, 3};
  const ThreadOp yield{SyncOp::kYield, 0};
  const ThreadOp read{SyncOp::kSeqRead, 5};
  // Releases are recorded without a decision point, so any executed segment
  // may hide one: pending acquisitions must always be woken.
  EXPECT_FALSE(CanStaySleeping(acquire, yield));
  EXPECT_TRUE(CanStaySleeping(yield, acquire));
  EXPECT_TRUE(CanStaySleeping(read, yield));
}

TEST(SchedulerTest, RunsAllThreadsToCompletion) {
  MC_SKIP_UNDER_TSAN();
  runtime::SpinLock lock;
  int counter = 0;
  auto body = [&] {
    lock.lock();
    ++counter;
    lock.unlock();
  };
  Scheduler scheduler;
  LowestFirst strategy;
  const ExecutionResult result = scheduler.Run({body, body, body}, strategy);
  EXPECT_EQ(counter, 3);
  EXPECT_FALSE(result.deadlock);
  EXPECT_FALSE(result.step_limit_hit);
  EXPECT_FALSE(result.choices.empty());
  EXPECT_FALSE(result.events.empty());
}

TEST(SchedulerTest, ContendedLockBlocksUntilRelease) {
  MC_SKIP_UNDER_TSAN();
  runtime::SpinLock lock;
  std::vector<int> order;
  auto holder = [&] {
    lock.lock();
    ActiveScheduler()->Yield();  // hold across a suspension
    order.push_back(0);
    lock.unlock();
  };
  auto waiter = [&] {
    lock.lock();
    order.push_back(1);
    lock.unlock();
  };
  // Let the holder take the lock, then force the waiter to attempt it: the
  // waiter must block (not spin) until the holder releases.
  Tape tape({0, 0, 1, 1});
  Scheduler scheduler;
  const ExecutionResult result = scheduler.Run({holder, waiter}, tape);
  EXPECT_FALSE(result.deadlock);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
}

TEST(SchedulerTest, DetectsAbBaDeadlock) {
  MC_SKIP_UNDER_TSAN();
  runtime::SpinLock a;
  runtime::SpinLock b;
  auto ab = [&] {
    a.lock();
    b.lock();
    b.unlock();
    a.unlock();
  };
  auto ba = [&] {
    b.lock();
    a.lock();
    a.unlock();
    b.unlock();
  };
  // t0 holds a, t1 holds b, then each tries the other's lock.
  Tape tape({0, 0, 1, 1, 0, 1});
  Scheduler scheduler;
  const ExecutionResult result = scheduler.Run({ab, ba}, tape);
  EXPECT_TRUE(result.deadlock);
  EXPECT_NE(result.deadlock_note.find("blocked"), std::string::npos);
}

TEST(SchedulerTest, YieldSwitchesAreFreePreemptionsAreCounted) {
  MC_SKIP_UNDER_TSAN();
  runtime::SpinLock a;
  runtime::SpinLock b;
  auto yielding = [&] { ActiveScheduler()->Yield(); };
  {
    // Alternating at yield points costs nothing.
    Tape tape({0, 1, 0, 1});
    Scheduler scheduler;
    const ExecutionResult result = scheduler.Run({yielding, yielding}, tape);
    EXPECT_EQ(result.preemptions, 0u);
  }
  {
    // Switching away from a thread suspended at a lock op is a preemption.
    auto lock_a = [&] {
      a.lock();
      a.unlock();
    };
    auto lock_b = [&] {
      b.lock();
      b.unlock();
    };
    Tape tape({0, 1});  // t0 parked at kLockAcquire, switch to t1
    Scheduler scheduler;
    const ExecutionResult result = scheduler.Run({lock_a, lock_b}, tape);
    EXPECT_GE(result.preemptions, 1u);
  }
}

TEST(SchedulerTest, NoteAttributesUserEventsToThreads) {
  MC_SKIP_UNDER_TSAN();
  auto body = [&] {
    ActiveScheduler()->Note(kUserSnapshot, 7);
    ActiveScheduler()->Yield();
    ActiveScheduler()->Note(kUserStealOk, 1, 2, 3);
  };
  Scheduler scheduler;
  LowestFirst strategy;
  const ExecutionResult result = scheduler.Run({body}, strategy);
  int snapshots = 0;
  int steals = 0;
  for (const McEvent& event : result.events) {
    if (event.user_kind == kUserSnapshot) {
      ++snapshots;
      EXPECT_EQ(event.arg0, 7);
      EXPECT_EQ(event.thread, 0u);
    } else if (event.user_kind == kUserStealOk) {
      ++steals;
      EXPECT_EQ(event.arg0, 1);
      EXPECT_EQ(event.arg1, 2);
      EXPECT_EQ(event.arg2, 3);
    }
  }
  EXPECT_EQ(snapshots, 1);
  EXPECT_EQ(steals, 1);
}

TEST(SchedulerTest, IsReusableAcrossExecutions) {
  MC_SKIP_UNDER_TSAN();
  runtime::SpinLock lock;
  int counter = 0;
  auto body = [&] {
    lock.lock();
    ++counter;
    lock.unlock();
  };
  Scheduler scheduler;
  LowestFirst strategy;
  const ExecutionResult first = scheduler.Run({body, body}, strategy);
  const ExecutionResult second = scheduler.Run({body, body}, strategy);
  EXPECT_EQ(counter, 4);
  EXPECT_EQ(first.choices, second.choices);
  EXPECT_EQ(first.events.size(), second.events.size());
}

}  // namespace
}  // namespace optsched::mc
