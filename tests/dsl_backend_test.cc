// DSL backend tests: the interpreter agrees with hand-written policies on
// exhaustive bounded state spaces, and the C/Scala emitters produce the
// expected artifacts (the C artifact is compiled when a host compiler is
// available).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "src/core/policies/broken.h"
#include "src/core/policies/thread_count.h"
#include "src/core/policies/weighted.h"
#include "src/dsl/codegen.h"
#include "src/dsl/compile.h"
#include "src/verify/state_space.h"

namespace optsched {
namespace {

// Exhaustively compares two policies' filter decisions over small states.
void ExpectSameFilter(const BalancePolicy& a, const BalancePolicy& b, uint32_t cores,
                      int64_t max_load) {
  verify::Bounds bounds;
  bounds.num_cores = cores;
  bounds.max_load = max_load;
  verify::ForEachState(bounds, [&](const std::vector<int64_t>& loads) {
    const MachineState m = MachineState::FromLoads(loads);
    const LoadSnapshot s = m.Snapshot();
    for (CpuId self = 0; self < cores; ++self) {
      const SelectionView view{.self = self, .snapshot = s, .topology = nullptr};
      for (CpuId other = 0; other < cores; ++other) {
        if (other == self) {
          continue;
        }
        EXPECT_EQ(a.CanSteal(view, other), b.CanSteal(view, other))
            << a.name() << " vs " << b.name() << " at state " << m.ToString() << " self=" << self
            << " other=" << other;
      }
    }
    return true;
  });
}

TEST(DslInterp, ThreadCountSampleMatchesHandWrittenExhaustively) {
  const auto compiled = dsl::CompilePolicy(dsl::samples::kThreadCount);
  ASSERT_TRUE(compiled.ok()) << compiled.DiagnosticsToString();
  ExpectSameFilter(*compiled.policy, *policies::MakeThreadCount(), 4, 4);
}

TEST(DslInterp, BrokenSampleMatchesHandWrittenExhaustively) {
  const auto compiled = dsl::CompilePolicy(dsl::samples::kBroken);
  ASSERT_TRUE(compiled.ok()) << compiled.DiagnosticsToString();
  ExpectSameFilter(*compiled.policy, *policies::MakeBrokenCanSteal(), 4, 4);
}

TEST(DslInterp, MigrationRuleEvaluates) {
  const auto compiled = dsl::CompilePolicy(dsl::samples::kThreadCount);
  ASSERT_TRUE(compiled.ok());
  EXPECT_TRUE(compiled.policy->ShouldMigrate(1, 3, 0));
  EXPECT_FALSE(compiled.policy->ShouldMigrate(3, 3, 0));
  EXPECT_FALSE(compiled.policy->ShouldMigrate(1, 1, 0));
}

TEST(DslInterp, WeightedSampleUsesWeightedMetric) {
  const auto compiled = dsl::CompilePolicy(dsl::samples::kWeighted);
  ASSERT_TRUE(compiled.ok()) << compiled.DiagnosticsToString();
  EXPECT_EQ(compiled.policy->metric(), LoadMetric::kWeightedLoad);
  // Same semantics as the hand-written weighted policy on a mixed state.
  const auto hand = policies::MakeWeightedLoad();
  MachineState m(3);
  m.Place(MakeTask(1, -10), 0);
  m.Place(MakeTask(2, 0), 1);
  m.Place(MakeTask(3, 5), 1);
  const LoadSnapshot s = m.Snapshot();
  for (CpuId self = 0; self < 3; ++self) {
    const SelectionView view{.self = self, .snapshot = s, .topology = nullptr};
    for (CpuId other = 0; other < 3; ++other) {
      if (other != self) {
        EXPECT_EQ(compiled.policy->CanSteal(view, other), hand->CanSteal(view, other));
      }
    }
  }
}

TEST(DslInterp, MinloadChoicePicksLeastLoadedCandidate) {
  const auto compiled = dsl::CompilePolicy(R"(policy p {
    filter(self, stealee) { stealee.load - self.load >= 2 }
    choice minload;
  })");
  ASSERT_TRUE(compiled.ok()) << compiled.DiagnosticsToString();
  const MachineState m = MachineState::FromLoads({0, 3, 9});
  const LoadSnapshot s = m.Snapshot();
  Rng rng(1);
  const SelectionView view{.self = 0, .snapshot = s, .topology = nullptr};
  EXPECT_EQ(compiled.policy->SelectCore(view, {1, 2}, rng), 1u);
}

TEST(DslInterp, NodeFieldReadsTopology) {
  const auto compiled = dsl::CompilePolicy(R"(policy same_node_only {
    filter(self, stealee) { stealee.load - self.load >= 2 && stealee.node == self.node }
  })");
  ASSERT_TRUE(compiled.ok()) << compiled.DiagnosticsToString();
  const Topology topo = Topology::Numa(2, 2);
  const MachineState m = MachineState::FromLoads({0, 4, 4, 0});
  const LoadSnapshot s = m.Snapshot();
  const SelectionView view{.self = 0, .snapshot = s, .topology = &topo};
  EXPECT_TRUE(compiled.policy->CanSteal(view, 1));   // same node
  EXPECT_FALSE(compiled.policy->CanSteal(view, 2));  // other node
}

TEST(DslCodegen, ScalaMirrorsListing2Shape) {
  const auto compiled = dsl::CompilePolicy(dsl::samples::kThreadCount);
  ASSERT_TRUE(compiled.ok());
  const std::string scala = dsl::EmitScala(*compiled.decl);
  for (const char* needle :
       {"case class Core", "def load(): BigInt", "def canSteal(self: Core, stealee: Core)",
        "def Lemma1(thief: Core, cores: List[Core])", "require(isIdle(thief))",
        "ensuring (res => cores.contains(res))", ".holds"}) {
    EXPECT_NE(scala.find(needle), std::string::npos) << needle << "\n" << scala;
  }
}

TEST(DslCodegen, CEmitsAllThreeSteps) {
  const auto compiled = dsl::CompilePolicy(dsl::samples::kWeighted);
  ASSERT_TRUE(compiled.ok());
  const std::string c = dsl::EmitC(*compiled.decl);
  for (const char* needle : {"struct os_rq", "weighted_can_steal", "weighted_should_migrate",
                             "rq->weighted_load", "Step 2 (choice)"}) {
    EXPECT_NE(c.find(needle), std::string::npos) << needle << "\n" << c;
  }
}

TEST(DslCodegen, GeneratedCCompiles) {
  // The "compiled to C code" leg of the paper's pipeline: the emitted unit
  // must be valid C. Skipped when no host C compiler is available.
  if (std::system("cc --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "no host C compiler";
  }
  const auto compiled = dsl::CompilePolicy(dsl::samples::kThreadCount);
  ASSERT_TRUE(compiled.ok());
  const std::string c = dsl::EmitC(*compiled.decl);
  const std::string dir = ::testing::TempDir();
  const std::string src = dir + "/optsched_gen.c";
  {
    std::ofstream out(src);
    out << c;
    // Anchor the translation unit with a user so -Wall passes cleanly.
    out << "\nint optsched_probe(void) {\n"
           "  struct os_rq a = {3, 3072, 0};\n"
           "  struct os_rq b = {0, 0, 0};\n"
           "  struct os_task t = {1024};\n"
           "  return thread_count_can_steal(&b, &a) && thread_count_should_migrate(&t, &a, &b);\n"
           "}\n";
  }
  const std::string cmd =
      "cc -std=c11 -Wall -Werror -c " + src + " -o " + dir + "/optsched_gen.o 2>&1";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << c;
}

// Compiles the generated C demo with the host compiler and returns its exit
// status (negative when no compiler is available).
int RunCDemo(const char* source_text, const char* tag) {
  if (std::system("cc --version > /dev/null 2>&1") != 0) {
    return -1;
  }
  const auto compiled = dsl::CompilePolicy(source_text);
  EXPECT_TRUE(compiled.ok()) << compiled.DiagnosticsToString();
  const std::string dir = ::testing::TempDir();
  const std::string src = dir + "/demo_" + tag + ".c";
  const std::string bin = dir + "/demo_" + tag;
  {
    std::ofstream out(src);
    out << dsl::EmitCDemo(*compiled.decl);
  }
  const std::string build_cmd = "cc -std=c11 -Wall -Werror -o " + bin + " " + src + " 2>&1";
  EXPECT_EQ(std::system(build_cmd.c_str()), 0);
  const int status = std::system((bin + " > /dev/null 2>&1").c_str());
  return WEXITSTATUS(status);
}

TEST(DslCodegen, GeneratedCDemoProvesListing1Converges) {
  const int exit_code = RunCDemo(dsl::samples::kThreadCount, "thread_count");
  if (exit_code < 0) {
    GTEST_SKIP() << "no host C compiler";
  }
  // The generated C program, with zero dependence on this C++ code base,
  // reaches work conservation under the adversarial orders.
  EXPECT_EQ(exit_code, 0);
}

TEST(DslCodegen, GeneratedCDemoExhibitsBrokenLivelock) {
  const int exit_code = RunCDemo(dsl::samples::kBroken, "broken");
  if (exit_code < 0) {
    GTEST_SKIP() << "no host C compiler";
  }
  // Same harness, the 4.3 filter: core 0 starves for all 100 rounds.
  EXPECT_EQ(exit_code, 1);
}

}  // namespace
}  // namespace optsched
