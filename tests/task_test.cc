// The continuation-counted task layer (src/task): join-counter semantics,
// last-arriver continuation hand-off, graph reuse across runs, the recursive
// kernels on the real executor over both queue backends, and the watchdog's
// outstanding-continuation accounting. The multi-worker tests double as the
// TSan stress when the suite is built with -fsanitize=thread.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <numeric>
#include <random>
#include <vector>

#include "src/core/policies/thread_count.h"
#include "src/runtime/executor.h"
#include "src/task/task.h"
#include "src/workload/forkjoin.h"

namespace optsched {
namespace {

using runtime::WorkItem;
using task::TaskContext;
using task::TaskGraph;
using task::TaskGraphOptions;
using task::TaskNode;

// Direct-drive sink: spawned items land in a local FIFO, forks and fires are
// recorded. Lets a single test thread play "the worker" and step the join
// protocol one task at a time.
class RecordingSink final : public task::SpawnSink {
 public:
  void SubmitBatch(uint32_t /*worker*/, const WorkItem* items, uint32_t count) override {
    for (uint32_t i = 0; i < count; ++i) {
      ready.push_back(items[i]);
    }
  }
  void OnFork(uint32_t /*worker*/, uint64_t continuation_id, uint32_t children) override {
    forks.push_back({continuation_id, children});
  }
  void OnJoinFire(uint32_t /*worker*/, uint64_t continuation_id) override {
    fires.push_back(continuation_id);
  }

  std::deque<WorkItem> ready;
  std::vector<std::pair<uint64_t, uint32_t>> forks;
  std::vector<uint64_t> fires;
};

// A body that forks `env[1]` leaf children (each bumps the counter at
// env[0]) under a continuation that adds 1000 to the same counter.
void CountingLeaf(TaskContext& /*ctx*/, TaskNode& self) {
  *reinterpret_cast<uint64_t*>(self.env[0]) += 1;
}

void CountingCont(TaskContext& /*ctx*/, TaskNode& self) {
  *reinterpret_cast<uint64_t*>(self.env[0]) += 1000;
}

void CountingRoot(TaskContext& ctx, TaskNode& self) {
  const uint32_t children = static_cast<uint32_t>(self.env[1]);
  TaskNode& cont = ctx.ForkN(CountingCont, children);
  cont.env[0] = self.env[0];
  for (uint32_t i = 0; i < children; ++i) {
    TaskNode& child = ctx.NewChild(CountingLeaf, cont);
    child.env[0] = self.env[0];
    ctx.Spawn(child);
  }
}

TEST(TaskGraphTest, JoinFiresOnlyOnLastArriver) {
  TaskGraph graph(TaskGraphOptions{.max_workers = 1, .arena_capacity = 64});
  RecordingSink sink;
  uint64_t counter = 0;

  TaskNode& root = graph.NewRoot(CountingRoot);
  root.env[0] = reinterpret_cast<uint64_t>(&counter);
  root.env[1] = 3;
  graph.RunItemOn(graph.ItemFor(root), 0, sink);

  // The root forked: its obligation moved to the continuation, nothing fired
  // yet, three children are ready, and the forker owes one continuation.
  ASSERT_EQ(sink.forks.size(), 1u);
  EXPECT_EQ(sink.forks[0].second, 3u);
  EXPECT_TRUE(sink.fires.empty());
  ASSERT_EQ(sink.ready.size(), 3u);
  EXPECT_EQ(graph.OutstandingFor(0), 1);
  EXPECT_FALSE(graph.done());

  // First two arrivers decrement and walk away — no fire, no new spawn.
  for (int i = 0; i < 2; ++i) {
    const WorkItem child = sink.ready.front();
    sink.ready.pop_front();
    const size_t ready_before = sink.ready.size();
    graph.RunItemOn(child, 0, sink);
    EXPECT_TRUE(sink.fires.empty()) << "join fired before the last arriver";
    EXPECT_EQ(sink.ready.size(), ready_before);
  }
  EXPECT_EQ(counter, 2u);

  // The last arriver fires the join exactly once and enqueues the
  // continuation on its own queue; the obligation is settled.
  ASSERT_EQ(sink.ready.size(), 1u);
  const WorkItem last = sink.ready.front();
  sink.ready.pop_front();
  graph.RunItemOn(last, 0, sink);
  ASSERT_EQ(sink.fires.size(), 1u);
  EXPECT_EQ(sink.fires[0], sink.forks[0].first);
  ASSERT_EQ(sink.ready.size(), 1u);
  EXPECT_EQ(graph.OutstandingFor(0), 0);
  EXPECT_FALSE(graph.done());

  // Running the continuation completes the root's (transferred) obligation.
  const WorkItem cont = sink.ready.front();
  sink.ready.pop_front();
  graph.RunItemOn(cont, 0, sink);
  EXPECT_EQ(counter, 1003u);
  EXPECT_TRUE(graph.done());
  EXPECT_EQ(sink.fires.size(), 1u);
}

TEST(TaskGraphTest, ResetRecyclesTheArenaAcrossRuns) {
  TaskGraph graph(TaskGraphOptions{.max_workers = 1, .arena_capacity = 64});
  RecordingSink sink;
  for (int run = 0; run < 3; ++run) {
    uint64_t counter = 0;
    graph.Reset();
    TaskNode& root = graph.NewRoot(CountingRoot);
    root.env[0] = reinterpret_cast<uint64_t>(&counter);
    root.env[1] = 2;
    graph.RunItemOn(graph.ItemFor(root), 0, sink);
    while (!sink.ready.empty()) {
      const WorkItem item = sink.ready.front();
      sink.ready.pop_front();
      graph.RunItemOn(item, 0, sink);
    }
    EXPECT_TRUE(graph.done());
    EXPECT_EQ(counter, 1002u);
    // Same tree, same arena: the node budget must not grow run over run.
    EXPECT_LE(graph.nodes_allocated(), 64u);
  }
}

TEST(TaskGraphTest, ArenaIndexIdsAreStable) {
  TaskGraph graph(TaskGraphOptions{.max_workers = 1, .arena_capacity = 16});
  TaskNode& root = graph.NewRoot(CountingRoot);
  const WorkItem item = graph.ItemFor(root);
  EXPECT_EQ(item.id, 1u);  // arena index 0 → id 1 (0 is "no task")
  EXPECT_NE(item.task, 0u);
  EXPECT_EQ(item.work_units, 1u);
}

class TaskExecutorTest : public ::testing::TestWithParam<runtime::QueueBackend> {};

runtime::ExecutorConfig BaseConfig(runtime::QueueBackend backend, TaskGraph& graph,
                                   uint32_t workers = 4) {
  runtime::ExecutorConfig config;
  config.num_workers = workers;
  config.backend = backend;
  config.chase_lev_capacity = 4096;
  config.task_runner = &graph;
  return config;
}

TEST_P(TaskExecutorTest, FibComputesOnTheExecutorAndReusesTheGraph) {
  TaskGraph graph(TaskGraphOptions{.max_workers = 4});
  runtime::Executor executor(policies::MakeThreadCount(), BaseConfig(GetParam(), graph));

  for (int run = 0; run < 2; ++run) {
    graph.Reset();
    uint64_t result = 0;
    executor.Seed(0, {workload::MakeFibRoot(graph, 25, 10, &result)});
    const runtime::ExecutorReport report = executor.Run();
    EXPECT_TRUE(graph.done());
    EXPECT_EQ(result, 75025u) << report.ToString();
    for (uint32_t w = 0; w < 4; ++w) {
      EXPECT_EQ(graph.OutstandingFor(w), 0) << "worker " << w << " run " << run;
    }
  }
}

TEST_P(TaskExecutorTest, FourThiefStressOverFib) {
  // The TSan stress: 4 workers racing pops, steals, spawns and join
  // decrements over a ~7.7k-node tree, repeated so thief/owner interleavings
  // vary. Under plain builds this doubles as a determinism check.
  TaskGraph graph(TaskGraphOptions{.max_workers = 4});
  runtime::Executor executor(policies::MakeThreadCount(), BaseConfig(GetParam(), graph));
  for (int run = 0; run < 4; ++run) {
    graph.Reset();
    uint64_t result = 0;
    executor.Seed(0, {workload::MakeFibRoot(graph, 25, 10, &result)});
    executor.Run();
    ASSERT_EQ(result, 75025u) << "run " << run;
  }
}

TEST_P(TaskExecutorTest, MergesortSortsOnTheExecutor) {
  TaskGraph graph(TaskGraphOptions{.max_workers = 4});
  runtime::Executor executor(policies::MakeThreadCount(), BaseConfig(GetParam(), graph));

  const uint64_t n = 1u << 16;
  std::vector<uint64_t> data(n);
  std::vector<uint64_t> scratch(n);
  std::mt19937_64 rng(42);
  for (uint64_t& v : data) {
    v = rng();
  }
  std::vector<uint64_t> want = data;
  std::sort(want.begin(), want.end());

  executor.Seed(0, {workload::MakeMergesortRoot(graph, data.data(), scratch.data(), n,
                                                /*cutoff=*/1024)});
  executor.Run();
  EXPECT_TRUE(graph.done());
  EXPECT_EQ(data, want);
}

TEST_P(TaskExecutorTest, PrefixScanMatchesSequentialReference) {
  TaskGraph graph(TaskGraphOptions{.max_workers = 4});
  runtime::Executor executor(policies::MakeThreadCount(), BaseConfig(GetParam(), graph));

  const uint64_t n = 1u << 15;
  const uint64_t block = 1u << 10;
  std::vector<uint64_t> data(n);
  std::iota(data.begin(), data.end(), 1);
  std::vector<uint64_t> want(n);
  std::partial_sum(data.begin(), data.end(), want.begin());
  std::vector<uint64_t> block_sums((n + block - 1) / block);

  executor.Seed(0, {workload::MakeScanRoot(graph, data.data(), n, block, block_sums.data())});
  executor.Run();
  EXPECT_TRUE(graph.done());
  EXPECT_EQ(data, want);
}

TEST_P(TaskExecutorTest, SkewedTreeCompletesAndSpreadsWork) {
  TaskGraph graph(TaskGraphOptions{.max_workers = 4});
  runtime::Executor executor(policies::MakeThreadCount(), BaseConfig(GetParam(), graph));

  executor.Seed(0, {workload::MakeSkewedRoot(graph, /*depth=*/16, /*leaves=*/8,
                                             /*leaf_spins=*/2000)});
  const runtime::ExecutorReport report = executor.Run();
  EXPECT_TRUE(graph.done());
  uint64_t executed = 0;
  for (const auto& w : report.workers) {
    executed += w.items_executed;
  }
  // depth*(leaves+2) tasks plus the root's continuation chain, all executed.
  EXPECT_EQ(executed, report.total_items);
}

TEST_P(TaskExecutorTest, WatchdogCountsOutstandingContinuationsAsPending) {
  // The satellite: a deep fork-join drain must classify as transient load —
  // forked-but-unfired continuations are PENDING work, so the watchdog never
  // escalates a persistent work-conservation violation against a worker that
  // is busy running the subtree of a join it owes.
  TaskGraph graph(TaskGraphOptions{.max_workers = 4});
  runtime::ExecutorConfig config = BaseConfig(GetParam(), graph);
  config.watchdog = true;
  config.supervisor_poll_us = 100;
  // Generous persistence threshold (~200ms of *continuous* idle-while-
  // overloaded before escalation): under TSan on a 2-hw-thread host a worker
  // can be descheduled for tens of milliseconds, which is scheduler noise,
  // not an accounting bug. A worker genuinely blocked on a join would idle
  // for the entire drain and still trip this.
  config.watchdog_threshold_samples = 2000;
  runtime::Executor executor(policies::MakeThreadCount(), config);

  uint64_t result = 0;
  executor.Seed(0, {workload::MakeFibRoot(graph, 25, 10, &result)});
  const runtime::ExecutorReport report = executor.Run();
  EXPECT_EQ(result, 75025u);
  EXPECT_EQ(report.watchdog.persistent_violations, 0u) << report.ToString();
  for (uint32_t w = 0; w < 4; ++w) {
    EXPECT_EQ(graph.OutstandingFor(w), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, TaskExecutorTest,
                         ::testing::Values(runtime::QueueBackend::kLocked,
                                           runtime::QueueBackend::kChaseLev),
                         [](const auto& info) {
                           return std::string(runtime::QueueBackendName(info.param));
                         });

}  // namespace
}  // namespace optsched
