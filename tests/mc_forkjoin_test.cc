// The "forkjoin" mc harness: exhaustive sweeps of the continuation-counted
// join protocol (src/task) over the real queues on both backends, the seeded
// broken-join-counter fault, and the committed golden counterexample.

#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/mc/explorer.h"
#include "src/mc/harness.h"
#include "src/mc/schedule.h"

#if defined(__SANITIZE_THREAD__)
#define OPTSCHED_MC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define OPTSCHED_MC_TSAN 1
#endif
#endif

#ifdef OPTSCHED_MC_TSAN
#define MC_SKIP_UNDER_TSAN() GTEST_SKIP() << "ucontext fibers are not supported under TSan"
#else
#define MC_SKIP_UNDER_TSAN() (void)0
#endif

#ifndef MC_GOLDEN_DIR
#define MC_GOLDEN_DIR "tests/golden"
#endif

namespace optsched::mc {
namespace {

StealHarness::Config ForkJoinConfig(runtime::QueueBackend backend, uint32_t workers,
                                    uint32_t depth, uint32_t fanout) {
  StealHarness::Config config;
  config.mode = "forkjoin";
  config.policy = "thread-count";
  config.initial_loads.assign(workers, 0);  // only the root task is seeded
  config.attempts_per_worker = 2;
  config.backend = backend;
  config.tree_depth = depth;
  config.fanout = fanout;
  return config;
}

TEST(McForkJoinTest, ExhaustiveSweepIsCleanOnBothBackends) {
  MC_SKIP_UNDER_TSAN();
  // Depth-2 fanout-2 tree, two workers, preemption bound 2: every
  // interleaving of spawn, steal, and the last-arriver join race, on both
  // queue backends. All five properties must hold on every schedule.
  for (const auto backend :
       {runtime::QueueBackend::kLocked, runtime::QueueBackend::kChaseLev}) {
    StealHarness harness(ForkJoinConfig(backend, 2, 2, 2));
    DfsExplorer::Options options;
    options.max_preemptions = 2;
    DfsExplorer explorer(options);
    const PropertyReport* violation = nullptr;
    std::vector<PropertyReport> reports;
    const ExploreStats stats = explorer.Explore(
        harness.Factory(), [&](const ExecutionResult& result, uint32_t) {
          reports = harness.Evaluate(result);
          violation = StealHarness::FirstViolation(reports);
          return violation == nullptr;
        });
    EXPECT_GT(stats.schedules_explored, 0u);
    EXPECT_EQ(stats.deadlocks, 0u);
    EXPECT_EQ(violation, nullptr)
        << runtime::QueueBackendName(backend) << ": " << (violation ? violation->name : "")
        << " — " << (violation ? violation->detail : "");
  }
}

TEST(McForkJoinTest, WiderFanoutSweepIsClean) {
  MC_SKIP_UNDER_TSAN();
  // Fanout 3 at depth 1: a three-way last-arriver race on the same counter.
  StealHarness harness(ForkJoinConfig(runtime::QueueBackend::kChaseLev, 2, 1, 3));
  DfsExplorer::Options options;
  options.max_preemptions = 2;
  DfsExplorer explorer(options);
  const PropertyReport* violation = nullptr;
  std::vector<PropertyReport> reports;
  const ExploreStats stats =
      explorer.Explore(harness.Factory(), [&](const ExecutionResult& result, uint32_t) {
        reports = harness.Evaluate(result);
        violation = StealHarness::FirstViolation(reports);
        return violation == nullptr;
      });
  EXPECT_GT(stats.schedules_explored, 0u);
  EXPECT_EQ(violation, nullptr) << (violation ? violation->name : "") << " — "
                                << (violation ? violation->detail : "");
}

TEST(McForkJoinTest, BrokenJoinCounterIsFoundAndMinimized) {
  MC_SKIP_UNDER_TSAN();
  // The seeded fault: a plain load/store decrement pair. Two children
  // completing concurrently read the same counter value, one decrement is
  // lost, and the continuation strands — the checker must find the
  // join-fires-exactly-once violation and the shrunk schedule must still
  // violate it.
  StealHarness::Config config = ForkJoinConfig(runtime::QueueBackend::kLocked, 2, 1, 2);
  config.broken_join_counter = true;
  StealHarness harness(config);

  DfsExplorer::Options options;
  options.max_preemptions = 2;
  DfsExplorer explorer(options);
  std::vector<uint32_t> counterexample;
  const ExploreStats stats =
      explorer.Explore(harness.Factory(), [&](const ExecutionResult& result, uint32_t) {
        for (const PropertyReport& report : harness.Evaluate(result)) {
          if (report.name == "join-fires-exactly-once" && !report.holds) {
            counterexample = result.choices;
            return false;
          }
        }
        return true;
      });
  (void)stats;
  ASSERT_FALSE(counterexample.empty()) << "checker missed the broken join counter";

  auto still_violates = [&](const ExecutionResult& result) {
    for (const PropertyReport& report : harness.Evaluate(result)) {
      if (report.name == "join-fires-exactly-once" && !report.holds) {
        return true;
      }
    }
    return false;
  };
  const std::vector<uint32_t> minimized =
      MinimizeCounterexample(harness.Factory(), counterexample, still_violates);
  EXPECT_LE(minimized.size(), counterexample.size());
  EXPECT_TRUE(still_violates(ReplayChoices(harness.Factory(), minimized)));
}

TEST(McForkJoinTest, ScheduleRoundTripsForkJoinFields) {
  StealHarness::Config config = ForkJoinConfig(runtime::QueueBackend::kChaseLev, 3, 3, 2);
  config.broken_join_counter = true;
  StealHarness harness(config);
  const Schedule schedule = harness.MakeSchedule({0, 1, 2});
  const std::optional<Schedule> parsed = Schedule::FromJson(schedule.ToJson());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, schedule);
  const StealHarness::Config round = StealHarness::Config::FromSchedule(*parsed);
  EXPECT_EQ(round.mode, "forkjoin");
  EXPECT_EQ(round.tree_depth, 3u);
  EXPECT_EQ(round.fanout, 2u);
  EXPECT_TRUE(round.broken_join_counter);
}

TEST(McForkJoinGoldenTest, CommittedBrokenJoinCounterStillStrandsItsContinuation) {
  MC_SKIP_UNDER_TSAN();
  const std::string path = std::string(MC_GOLDEN_DIR) + "/mc_broken_join_counter.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  const std::optional<Schedule> schedule = Schedule::FromJson(content);
  ASSERT_TRUE(schedule.has_value());
  // Serialization is byte-stable: re-emitting the parsed schedule reproduces
  // the committed file.
  EXPECT_EQ(schedule->ToJson(), content);
  EXPECT_EQ(schedule->harness, "forkjoin");
  EXPECT_TRUE(schedule->broken_join_counter);
  EXPECT_EQ(schedule->property, "join-fires-exactly-once");

  StealHarness harness(StealHarness::Config::FromSchedule(*schedule));
  const ExecutionResult result = ReplayChoices(harness.Factory(), schedule->choices);
  EXPECT_EQ(result.choices, schedule->choices);  // no divergence

  bool violated = false;
  for (const PropertyReport& report : harness.Evaluate(result)) {
    if (report.name == "join-fires-exactly-once" && !report.holds) {
      violated = true;
    }
  }
  EXPECT_TRUE(violated) << "golden no longer violates join-fires-exactly-once";
}

TEST(McForkJoinGoldenTest, CorrectJoinCounterSurvivesTheGoldenSchedule) {
  MC_SKIP_UNDER_TSAN();
  // The SAME schedule with the atomic RMW restored must be clean: the
  // violation is pinned on the lost decrement, not on the harness.
  const std::string path = std::string(MC_GOLDEN_DIR) + "/mc_broken_join_counter.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::optional<Schedule> schedule = Schedule::FromJson(buffer.str());
  ASSERT_TRUE(schedule.has_value());
  schedule->broken_join_counter = false;

  StealHarness harness(StealHarness::Config::FromSchedule(*schedule));
  const ExecutionResult result = ReplayChoices(harness.Factory(), schedule->choices);
  for (const PropertyReport& report : harness.Evaluate(result)) {
    EXPECT_TRUE(report.holds) << report.name << ": " << report.detail;
  }
}

}  // namespace
}  // namespace optsched::mc
