// Real-thread executor observability: trace rings wired through WorkerMain
// and the supervisor, failed-steal latency attribution, metrics export, and
// executor reuse semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/core/policies/thread_count.h"
#include "src/runtime/executor.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"

namespace optsched {
namespace {

using runtime::Executor;
using runtime::ExecutorConfig;
using runtime::ExecutorReport;
using runtime::WorkItem;
using trace::EventType;
using trace::TraceEvent;

std::vector<WorkItem> Items(uint64_t count, uint64_t units) {
  std::vector<WorkItem> items;
  for (uint64_t i = 0; i < count; ++i) {
    items.push_back(WorkItem{.id = i + 1, .work_units = units, .weight = 1024});
  }
  return items;
}

uint64_t CountType(const std::vector<TraceEvent>& events, EventType type) {
  return static_cast<uint64_t>(
      std::count_if(events.begin(), events.end(),
                    [type](const TraceEvent& e) { return e.type == type; }));
}

TEST(ExecutorTrace, DisabledByDefaultAndEmitsNothing) {
  ExecutorConfig config;
  config.num_workers = 2;
  Executor executor(policies::MakeThreadCount(), config);
  executor.Seed(0, Items(50, 500));
  const ExecutorReport report = executor.Run();
  EXPECT_TRUE(report.trace_events.empty());
  EXPECT_EQ(report.trace_dropped, 0u);
}

TEST(ExecutorTrace, RecordsStealOutcomesFromMultipleWorkers) {
  ExecutorConfig config;
  config.num_workers = 4;
  config.spin_per_unit = 100;
  config.trace_ring_capacity = 1 << 12;
  config.seed = 3;
  Executor executor(policies::MakeThreadCount(), config);
  executor.Seed(0, Items(400, 1500));  // one pile: everyone else must steal
  const ExecutorReport report = executor.Run();
  SCOPED_TRACE(report.ToString());
  ASSERT_FALSE(report.trace_events.empty());
  // Time-ordered merged stream.
  for (size_t i = 1; i < report.trace_events.size(); ++i) {
    EXPECT_LE(report.trace_events[i - 1].time, report.trace_events[i].time);
  }
  // Steal events from at least two distinct worker lanes, each attributing a
  // victim different from the thief.
  std::set<CpuId> stealing_lanes;
  for (const TraceEvent& e : report.trace_events) {
    if (e.type == EventType::kSteal || e.type == EventType::kStealFailed) {
      stealing_lanes.insert(e.cpu);
      EXPECT_NE(e.cpu, e.other_cpu);
      EXPECT_GT(e.detail, 0) << "steal events carry their measured latency";
    }
  }
  EXPECT_GE(stealing_lanes.size(), 2u);
  // Trace counts match the counters the workers kept.
  EXPECT_EQ(CountType(report.trace_events, EventType::kSteal), report.total_successes());
}

TEST(ExecutorTrace, RecordsBackoffParksWithDurations) {
  ExecutorConfig config;
  config.num_workers = 4;
  config.idle_spins_before_yield = 4;
  config.initial_backoff_spins = 32;
  config.max_backoff_spins = 1 << 10;
  config.trace_ring_capacity = 1 << 12;
  Executor executor(policies::MakeThreadCount(), config);
  // One long item: three workers back off while worker 0 executes.
  executor.Seed(0, Items(1, 400'000));
  const ExecutorReport report = executor.Run();
  SCOPED_TRACE(report.ToString());
  const uint64_t parks = CountType(report.trace_events, EventType::kBackoffPark);
  EXPECT_GT(parks, 0u);
  EXPECT_EQ(parks, report.total_backoff_events());
  for (const TraceEvent& e : report.trace_events) {
    if (e.type == EventType::kBackoffPark) {
      EXPECT_GT(e.detail, 0) << "parks carry their measured duration (ns)";
    }
  }
}

TEST(ExecutorTrace, FullRingsDropAndReportInsteadOfBlocking) {
  ExecutorConfig config;
  config.num_workers = 4;
  config.spin_per_unit = 50;
  config.trace_ring_capacity = 2;  // deliberately tiny
  config.supervisor_poll_us = 100'000;  // supervisor never drains mid-run
  config.seed = 11;
  Executor executor(policies::MakeThreadCount(), config);
  executor.Seed(0, Items(600, 800));
  const ExecutorReport report = executor.Run();
  SCOPED_TRACE(report.ToString());
  EXPECT_GT(report.trace_dropped, 0u);
  // The run itself is unaffected: every item still executed.
  uint64_t executed = 0;
  for (const auto& w : report.workers) {
    executed += w.items_executed;
  }
  EXPECT_EQ(executed, 600u);
}

TEST(ExecutorTrace, ChromeExportRoundTrips) {
  ExecutorConfig config;
  config.num_workers = 3;
  config.trace_ring_capacity = 1 << 12;
  Executor executor(policies::MakeThreadCount(), config);
  executor.Seed(0, Items(120, 1000));
  const ExecutorReport report = executor.Run();
  const std::string json = trace::ToChromeTraceJson(report.trace_events, report.trace_dropped,
                                                    {"worker 0", "worker 1", "worker 2"});
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":"), std::string::npos);
}

TEST(ExecutorStats, FailedStealLatencyIsRecordedSeparately) {
  // Regression: steal-phase latency was recorded only when the steal
  // SUCCEEDED, so the latency of contended-but-failed attempts — exactly the
  // cost the paper's optimistic design reasons about — was invisible.
  ExecutorConfig config;
  config.num_workers = 4;
  config.spin_per_unit = 100;
  config.seed = 7;
  // Force genuine failures: with rate 1.0 every selection after the first
  // runs against a FROZEN first snapshot (still showing the seeded pile), so
  // once the pile drains the thieves reach the two-lock phase and lose the
  // re-check — a genuine failed_recheck, not an injected abort.
  config.fault_plan.stale_snapshot_rate = 1.0;
  config.fault_plan.seed = 7;
  Executor executor(policies::MakeThreadCount(), config);
  executor.Seed(0, Items(200, 1000));
  const ExecutorReport report = executor.Run();
  SCOPED_TRACE(report.ToString());
  uint64_t ok = 0;
  uint64_t fail = 0;
  uint64_t failed_attempts = 0;
  for (const auto& w : report.workers) {
    ok += w.steal_latency_ns.total();
    fail += w.steal_fail_latency_ns.total();
    failed_attempts += w.steals.failed_recheck + w.steals.failed_no_task;
  }
  EXPECT_EQ(ok, report.total_successes());
  EXPECT_GT(fail, 0u);
  EXPECT_EQ(fail, failed_attempts);
  // Both histograms surface in the human-readable report.
  EXPECT_NE(report.ToString().find("fail_p50"), std::string::npos);
}

TEST(ExecutorStats, ExportMetricsAggregatesAndMerges) {
  ExecutorConfig config;
  config.num_workers = 2;
  config.trace_ring_capacity = 1 << 10;
  Executor executor(policies::MakeThreadCount(), config);
  executor.Seed(0, Items(80, 800));
  const ExecutorReport report = executor.Run();
  trace::MetricsRegistry registry;
  report.ExportMetrics(registry);
  EXPECT_DOUBLE_EQ(registry.Get("executor.total_items"), 80.0);
  EXPECT_DOUBLE_EQ(registry.Get("executor.items_executed"),
                   static_cast<double>(report.workers[0].items_executed +
                                       report.workers[1].items_executed));
  EXPECT_DOUBLE_EQ(registry.Get("executor.steals.successes"),
                   static_cast<double>(report.total_successes()));
  EXPECT_TRUE(registry.Has("executor.worker0.items_executed"));
  EXPECT_TRUE(registry.Has("executor.trace.events"));
  // Merging two runs' registries sums the counters.
  trace::MetricsRegistry merged;
  merged.Merge(registry);
  merged.Merge(registry);
  EXPECT_DOUBLE_EQ(merged.Get("executor.total_items"), 160.0);
}

TEST(ExecutorReuse, SecondRunReportsOnlyItsOwnItems) {
  // Regression: submitted-item bookkeeping survived Run(), so a reused
  // executor reported the CUMULATIVE seeded count as every later run's
  // total_items (and throughput was inflated accordingly).
  ExecutorConfig config;
  config.num_workers = 2;
  Executor executor(policies::MakeThreadCount(), config);
  executor.Seed(0, Items(100, 500));
  const ExecutorReport first = executor.Run();
  EXPECT_EQ(first.total_items, 100u);
  executor.Seed(0, Items(40, 500));
  const ExecutorReport second = executor.Run();
  EXPECT_EQ(second.total_items, 40u);  // not 140
  uint64_t executed = 0;
  for (const auto& w : second.workers) {
    executed += w.items_executed;
  }
  EXPECT_EQ(executed, 40u);
}

TEST(ExecutorReuse, RunWithoutNewWorkReportsZeroItems) {
  ExecutorConfig config;
  config.num_workers = 2;
  Executor executor(policies::MakeThreadCount(), config);
  executor.Seed(0, Items(30, 500));
  EXPECT_EQ(executor.Run().total_items, 30u);
  const ExecutorReport empty = executor.Run();
  EXPECT_EQ(empty.total_items, 0u);
  EXPECT_EQ(empty.items_left_unexecuted, 0u);
}

}  // namespace
}  // namespace optsched
