// Conditional expressions in the DSL: parsing, typing, folding, evaluation,
// codegen, and an end-to-end distance-dependent policy.

#include <gtest/gtest.h>

#include "src/dsl/codegen.h"
#include "src/dsl/compile.h"
#include "src/dsl/parser.h"
#include "src/dsl/sema.h"
#include "src/verify/audit.h"

namespace optsched {
namespace {

TEST(DslConditional, ParsesAndPrints) {
  const auto result = dsl::ParseExpression("if (a.load >= 2) a.load else 0");
  ASSERT_NE(result.expr, nullptr);
  EXPECT_EQ(result.expr->ToString(), "(if ((a.load >= 2)) a.load else 0)");
}

TEST(DslConditional, RoundTripsThroughPrinting) {
  const auto first = dsl::ParseExpression("if (x.load > 0) 1 + 2 else 3 * 4");
  ASSERT_NE(first.expr, nullptr);
  const auto second = dsl::ParseExpression(first.expr->ToString());
  ASSERT_NE(second.expr, nullptr);
  EXPECT_EQ(second.expr->ToString(), first.expr->ToString());
}

TEST(DslConditional, MissingElseIsAnError) {
  const auto result = dsl::ParseExpression("if (a.load >= 2) 1");
  EXPECT_EQ(result.expr, nullptr);
  ASSERT_FALSE(result.diagnostics.empty());
  EXPECT_NE(result.diagnostics[0].message.find("else"), std::string::npos);
}

TEST(DslConditional, StrayElseIsAnError) {
  const auto result = dsl::ParseExpression("else 3");
  EXPECT_EQ(result.expr, nullptr);
}

TEST(DslConditional, ConditionMustBeBoolean) {
  const auto compiled = dsl::CompilePolicy(
      "policy p { filter(a, b) { if (b.load) true else false } }");
  EXPECT_FALSE(compiled.ok());
  EXPECT_NE(compiled.DiagnosticsToString().find("condition must be boolean"),
            std::string::npos);
}

TEST(DslConditional, BranchesMustAgreeInType) {
  const auto compiled = dsl::CompilePolicy(
      "policy p { filter(a, b) { if (b.load >= 2) true else 1 } }");
  EXPECT_FALSE(compiled.ok());
  EXPECT_NE(compiled.DiagnosticsToString().find("same type"), std::string::npos);
}

TEST(DslConditional, ConstantConditionFoldsAway) {
  const auto parsed = dsl::ParseExpression("if (2 > 1) a.load else b.load");
  ASSERT_NE(parsed.expr, nullptr);
  EXPECT_EQ(dsl::FoldConstants(*parsed.expr)->ToString(), "a.load");
  const auto parsed2 = dsl::ParseExpression("if (2 < 1) a.load else b.load");
  ASSERT_NE(parsed2.expr, nullptr);
  EXPECT_EQ(dsl::FoldConstants(*parsed2.expr)->ToString(), "b.load");
}

TEST(DslConditional, DistanceDependentMarginPolicy) {
  // A realistic use: demand a larger imbalance before stealing across nodes
  // (migration is costlier there) — margins per branch, hierarchy-free.
  const auto compiled = dsl::CompilePolicy(R"(policy numa_margin {
    metric count;
    filter(self, stealee) {
      stealee.load - self.load >= (if (stealee.node == self.node) 2 else 4)
    }
    choice nearest;
  })");
  ASSERT_TRUE(compiled.ok()) << compiled.DiagnosticsToString();

  const Topology topo = Topology::Numa(2, 2);
  const MachineState m = MachineState::FromLoads({0, 3, 3, 0});
  const LoadSnapshot s = m.Snapshot();
  const SelectionView view{.self = 0, .snapshot = s, .topology = &topo};
  EXPECT_TRUE(compiled.policy->CanSteal(view, 1));   // same node: margin 2
  EXPECT_FALSE(compiled.policy->CanSteal(view, 2));  // cross node: margin 4

  // Still work-conserving: the effective filter is at least as permissive as
  // margin-4 thread-count, and Lemma 1 needs any overloaded core reachable.
  // (Note: with mixed margins Lemma 1 can fail if all overload is remote and
  // below margin 4 — the audit tells us; on a 1-node machine it holds.)
  verify::ConvergenceCheckOptions options;
  options.bounds.num_cores = 3;
  options.bounds.max_load = 4;
  const auto audit = verify::AuditPolicy(*compiled.policy, options);  // no topology: 1 node
  EXPECT_TRUE(audit.work_conserving()) << audit.Report();
}

TEST(DslConditional, CrossNodeMarginFailsLemma1WithTopology) {
  // The honest flip side of the distance-dependent margin: on a real 2-node
  // machine, a remote core overloaded by 3 (< margin 4) is invisible to an
  // idle thief with no local candidates — the verifier catches it.
  const auto compiled = dsl::CompilePolicy(R"(policy numa_margin {
    metric count;
    filter(self, stealee) {
      stealee.load - self.load >= (if (stealee.node == self.node) 2 else 4)
    }
  })");
  ASSERT_TRUE(compiled.ok());
  const Topology topo = Topology::Numa(2, 2);
  verify::Bounds bounds;
  bounds.num_cores = 4;
  bounds.max_load = 3;
  const auto lemma1 = verify::CheckLemma1(*compiled.policy, bounds, &topo);
  EXPECT_FALSE(lemma1.holds) << lemma1.ToString();
}

TEST(DslConditional, CodegenBothBackends) {
  const auto compiled = dsl::CompilePolicy(R"(policy p {
    filter(a, b) { b.load - a.load >= (if (b.node == a.node) 2 else 4) }
  })");
  ASSERT_TRUE(compiled.ok()) << compiled.DiagnosticsToString();
  const std::string c = dsl::EmitC(*compiled.decl);
  EXPECT_NE(c.find("(b->node == a->node) ? 2 : 4"), std::string::npos) << c;
  const std::string scala = dsl::EmitScala(*compiled.decl);
  EXPECT_NE(scala.find("if ((b.node == a.node)) BigInt(2) else BigInt(4)"), std::string::npos)
      << scala;
}

}  // namespace
}  // namespace optsched
