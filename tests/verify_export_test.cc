// Artifact exports: the Graphviz round-transition graph and the JSON audit.

#include <gtest/gtest.h>

#include "src/core/policies/broken.h"
#include "src/core/policies/thread_count.h"
#include "src/verify/audit.h"
#include "src/verify/convergence.h"

namespace optsched {
namespace {

verify::ConvergenceCheckOptions SmallOpt() {
  verify::ConvergenceCheckOptions o;
  o.bounds.num_cores = 3;
  o.bounds.max_load = 2;
  o.bounds.total_load = 3;  // exactly the paper's 3-task mass
  return o;
}

TEST(DotExport, PaperScenarioGraphShapes) {
  const std::string dot =
      verify::ExportRoundGraphDot(*policies::MakeBrokenCanSteal(), SmallOpt());
  ASSERT_FALSE(dot.empty());
  EXPECT_NE(dot.find("digraph round_transitions"), std::string::npos);
  // The ping-pong states are bad (red-filled).
  EXPECT_NE(dot.find("s_0_1_2 [label=\"(0,1,2)\", style=filled"), std::string::npos) << dot;
  EXPECT_NE(dot.find("s_0_2_1 [label=\"(0,2,1)\", style=filled"), std::string::npos) << dot;
  // The balanced state is work-conserved (doubly circled) and not filled.
  EXPECT_NE(dot.find("s_1_1_1 [label=\"(1,1,1)\", peripheries=2]"), std::string::npos) << dot;
  // The cycle edges exist.
  EXPECT_NE(dot.find("s_0_1_2 -> s_0_2_1"), std::string::npos);
  EXPECT_NE(dot.find("s_0_2_1 -> s_0_1_2"), std::string::npos);
}

TEST(DotExport, SoundPolicyHasNoBadStates) {
  const std::string dot = verify::ExportRoundGraphDot(*policies::MakeThreadCount(), SmallOpt());
  ASSERT_FALSE(dot.empty());
  EXPECT_EQ(dot.find("fillcolor"), std::string::npos) << dot;
}

TEST(DotExport, EmptyOnBudgetExhaustion) {
  verify::ConvergenceCheckOptions options = SmallOpt();
  options.max_graph_states = 1;
  EXPECT_TRUE(verify::ExportRoundGraphDot(*policies::MakeThreadCount(), options).empty());
}

TEST(JsonAudit, ContainsEveryObligationAndVerdict) {
  verify::ConvergenceCheckOptions options;
  options.bounds.num_cores = 3;
  options.bounds.max_load = 3;
  const auto audit = verify::AuditPolicy(*policies::MakeThreadCount(), options);
  const std::string json = audit.ToJson();
  for (const char* key :
       {"\"policy\"", "\"bounds\"", "\"lemma1\"", "\"filter_selects_overloaded\"",
        "\"steal_safety\"", "\"potential_decrease\"", "\"failure_causality\"",
        "\"bounded_steals\"", "\"sequential_convergence\"", "\"concurrent_convergence\"",
        "\"work_conserving\": true", "\"sequential_worst_case_n\"", "\"graph_states\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
  // Balanced braces and quotes (cheap well-formedness probes).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);
}

TEST(JsonAudit, CounterexamplesAreEscaped) {
  verify::ConvergenceCheckOptions options;
  options.bounds.num_cores = 3;
  options.bounds.max_load = 3;
  const auto audit = verify::AuditPolicy(*policies::MakeBrokenCanSteal(), options);
  const std::string json = audit.ToJson();
  EXPECT_NE(json.find("\"work_conserving\": false"), std::string::npos) << json;
  // Counterexample notes contain double quotes in ToString(); they must be
  // escaped in the JSON.
  EXPECT_NE(json.find("\\\""), std::string::npos) << json;
}

}  // namespace
}  // namespace optsched
