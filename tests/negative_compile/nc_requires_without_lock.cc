// MUST NOT COMPILE under clang -Wthread-safety -Werror=thread-safety.
//
// Calling an OPTSCHED_REQUIRES method without holding the named capability
// is the core violation the annotation layer exists to catch: it is exactly
// "touched runqueue state without the runqueue lock". If this file ever
// compiles under the flags above, the annotations have lost their teeth
// (e.g. someone stubbed the macros out for clang too) — the runner in
// run_negative_compile.sh fails the build in that case.

#include "src/base/thread_annotations.h"
#include "src/runtime/spinlock.h"

namespace {

class Account {
 public:
  void DepositLocked(int amount) OPTSCHED_REQUIRES(lock_) { balance_ += amount; }

  optsched::runtime::SpinLock lock_;

 private:
  int balance_ OPTSCHED_GUARDED_BY(lock_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.DepositLocked(1);  // error: requires holding account.lock_
  return 0;
}
