// MUST NOT COMPILE under clang -Wthread-safety -Werror=thread-safety.
//
// Re-acquiring a capability that is already held: with a non-reentrant
// spinlock this is a guaranteed self-deadlock, and the SCOPED_CAPABILITY
// annotation on LockGuard is what lets clang see the first acquisition.
// (The runtime twin of this check is DualLockGuard's distinct-locks
// constructor contract, exercised in tests/static_analysis_test.cc.)

#include "src/base/mutex.h"
#include "src/runtime/spinlock.h"

int main() {
  optsched::runtime::SpinLock lock;
  optsched::LockGuard guard(lock);
  lock.lock();  // error: acquiring capability 'lock' that is already held
  lock.unlock();
  return 0;
}
