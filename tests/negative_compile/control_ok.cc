// MUST compile cleanly under clang -Wthread-safety -Werror=thread-safety.
//
// Control for the negative-compilation probes: proves the disciplined
// version of the exact same patterns is accepted, so a probe failure means
// "the violation was caught", not "the headers don't compile under these
// flags". Exercises the annotation surface end to end: REQUIRES under
// LockGuard, the DualLockGuard scoped capability, and the AssertHeld
// re-anchor used when the acquisition order is decided at runtime.

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/runtime/spinlock.h"

namespace {

class Account {
 public:
  void DepositLocked(int amount) OPTSCHED_REQUIRES(lock_) { balance_ += amount; }
  int balance() OPTSCHED_EXCLUDES(lock_) {
    optsched::LockGuard guard(lock_);
    return balance_;
  }

  optsched::runtime::SpinLock lock_;

 private:
  int balance_ OPTSCHED_GUARDED_BY(lock_) = 0;
};

void TransferBoth(Account& lower, Account& higher) {
  optsched::runtime::DualLockGuard guard(lower.lock_, higher.lock_);
  lower.DepositLocked(-1);
  higher.DepositLocked(1);
}

void DepositViaAssertHeld(Account& account) OPTSCHED_NO_THREAD_SAFETY_ANALYSIS {
  account.lock_.lock();
  account.lock_.AssertHeld();
  account.DepositLocked(2);
  account.lock_.unlock();
}

}  // namespace

int main() {
  Account a;
  Account b;
  {
    optsched::LockGuard guard(a.lock_);
    a.DepositLocked(5);
  }
  TransferBoth(a, b);
  DepositViaAssertHeld(a);
  return a.balance() + b.balance();
}
