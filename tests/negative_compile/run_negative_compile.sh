#!/bin/sh
# Negative-compilation probes for the thread-safety annotation layer.
#
#   run_negative_compile.sh <repo-root> [clang++]
#
# control_ok.cc must COMPILE under -Wthread-safety -Werror=thread-safety;
# every nc_*.cc must FAIL with a thread-safety diagnostic (a failure for any
# other reason — missing header, syntax error — is reported as a bug in the
# probe, not a pass). Exit 77 (ctest SKIP_RETURN_CODE) when no clang is
# available: the annotations are no-op macros elsewhere, so there is nothing
# to probe; CI's static-analysis job always has clang and runs this hard.

set -u

root=${1:?usage: run_negative_compile.sh <repo-root> [clang++]}
here=$(dirname "$0")

cxx=${2:-}
if [ -z "$cxx" ]; then
  for candidate in clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
                   clang++-16 clang++-15 clang++-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      cxx=$candidate
      break
    fi
  done
fi
if [ -z "$cxx" ]; then
  echo "negative_compile: no clang++ found; skipping (annotations are no-ops here)"
  exit 77
fi

flags="-std=c++20 -fsyntax-only -I$root -DOPTSCHED_MC_HOOKS=1 \
       -Wthread-safety -Werror=thread-safety"
status=0

# The control must be accepted, or the probe failures below mean nothing.
log=$("$cxx" $flags "$here/control_ok.cc" 2>&1)
if [ $? -ne 0 ]; then
  echo "FAIL: control_ok.cc did not compile under $cxx -Wthread-safety:"
  echo "$log"
  exit 1
fi
echo "ok: control_ok.cc compiles"

for probe in "$here"/nc_*.cc; do
  log=$("$cxx" $flags "$probe" 2>&1)
  if [ $? -eq 0 ]; then
    echo "FAIL: $(basename "$probe") compiled — the annotation it probes lost its teeth"
    status=1
    continue
  fi
  case $log in
    *thread-safety*|*GUARDED_BY*|*requires\ holding*|*already\ held*)
      echo "ok: $(basename "$probe") rejected with a thread-safety diagnostic"
      ;;
    *)
      echo "FAIL: $(basename "$probe") failed for the wrong reason:"
      echo "$log"
      status=1
      ;;
  esac
done

exit $status
