// Workload record/replay: serialization round-trips, error handling, and
// paired policy comparisons on identical arrivals.

#include <gtest/gtest.h>

#include "src/core/policies/broken.h"
#include "src/core/policies/thread_count.h"
#include "src/workload/replay.h"

namespace optsched {
namespace {

using workload::WorkloadTrace;

sim::Simulator MakeSim(const Topology& topo, std::shared_ptr<const BalancePolicy> policy,
                       uint64_t seed = 1) {
  sim::SimConfig config;
  config.max_time_us = 120'000'000;
  return sim::Simulator(topo, std::move(policy), config, seed);
}

TEST(Replay, SerializeParseRoundTrip) {
  WorkloadTrace trace;
  sim::TaskSpec spec;
  spec.nice = -3;
  spec.home_node = 1;
  spec.total_service_us = 12'345;
  spec.burst_us = 1'000;
  spec.mean_block_us = 500;
  spec.allowed_mask = MaskOf({0, 3});
  trace.Add(777, spec, /*cpu_hint=*/3);
  trace.Add(888, spec);

  const std::string text = trace.Serialize();
  std::string error;
  const auto parsed = WorkloadTrace::Parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), 2u);
  const auto& r = parsed->records()[0];
  EXPECT_EQ(r.when, 777u);
  EXPECT_EQ(r.spec.nice, -3);
  EXPECT_EQ(r.spec.home_node, 1u);
  EXPECT_EQ(r.spec.total_service_us, 12'345u);
  EXPECT_EQ(r.spec.burst_us, 1'000u);
  EXPECT_EQ(r.spec.mean_block_us, 500u);
  EXPECT_EQ(r.spec.allowed_mask, MaskOf({0, 3}));
  ASSERT_TRUE(r.cpu_hint.has_value());
  EXPECT_EQ(*r.cpu_hint, 3u);
  EXPECT_FALSE(parsed->records()[1].cpu_hint.has_value());
  // Second round-trip is a fixpoint.
  EXPECT_EQ(parsed->Serialize(), text);
}

TEST(Replay, ParseSkipsCommentsAndBlankLines) {
  const auto parsed = WorkloadTrace::Parse(
      "# header\n\n  # another comment\nsubmit 0 0 0 100 0 0 0 -1\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 1u);
}

TEST(Replay, ParseRejectsMalformedLines) {
  std::string error;
  EXPECT_FALSE(WorkloadTrace::Parse("run 1 2 3\n", &error).has_value());
  EXPECT_NE(error.find("expected 'submit"), std::string::npos);
  EXPECT_FALSE(WorkloadTrace::Parse("submit 0 0 0\n", &error).has_value());
  EXPECT_NE(error.find("malformed"), std::string::npos);
  EXPECT_FALSE(WorkloadTrace::Parse("submit 0 99 0 100 0 0 0 -1\n", &error).has_value());
  EXPECT_NE(error.find("nice"), std::string::npos);
  EXPECT_FALSE(WorkloadTrace::Parse("submit 0 0 0 0 0 0 0 -1\n", &error).has_value());
  EXPECT_NE(error.find("service"), std::string::npos);
}

TEST(Replay, CapturedGeneratorsMatchDirectSubmission) {
  const Topology topo = Topology::Numa(2, 4);
  workload::PoissonConfig config;
  config.duration_us = 300'000;
  config.seed = 9;

  sim::Simulator direct = MakeSim(topo, policies::MakeThreadCount());
  workload::SubmitPoisson(direct, config);
  sim::Simulator replayed = MakeSim(topo, policies::MakeThreadCount());
  WorkloadTrace::FromPoisson(config, topo).SubmitAll(replayed);

  direct.Run();
  replayed.Run();
  EXPECT_EQ(direct.metrics().tasks_submitted, replayed.metrics().tasks_submitted);
  EXPECT_EQ(direct.metrics().tasks_completed, replayed.metrics().tasks_completed);
  EXPECT_EQ(direct.metrics().makespan_us, replayed.metrics().makespan_us);
}

TEST(Replay, PairedPolicyComparisonOnIdenticalArrivals) {
  // The same trace under two policies: the workload is held fixed, so any
  // difference is attributable to the scheduler.
  const Topology topo = Topology::Smp(4);
  workload::StaticImbalanceConfig config;
  config.num_tasks = 16;
  config.service_us = 10'000;
  config.initial_cpus = 1;
  const WorkloadTrace trace = WorkloadTrace::FromStaticImbalance(config, topo);

  sim::Simulator good = MakeSim(topo, policies::MakeThreadCount(), 3);
  trace.SubmitAll(good);
  good.Run();

  sim::Simulator bad = MakeSim(topo, policies::MakeBrokenCanSteal(), 3);
  trace.SubmitAll(bad);
  bad.Run();

  EXPECT_EQ(good.metrics().tasks_completed, 16u);
  EXPECT_EQ(bad.metrics().tasks_completed, 16u);
  // Identical demand: total busy time equal; scheduling quality differs.
  EXPECT_EQ(good.accounting().total_busy_us(), bad.accounting().total_busy_us());
  EXPECT_LE(good.metrics().makespan_us, bad.metrics().makespan_us);
}

TEST(Replay, TraceSubmissionIntoSimulatorRespectsHints) {
  const Topology topo = Topology::Smp(2);
  WorkloadTrace trace;
  sim::TaskSpec spec;
  spec.total_service_us = 1'000;
  trace.Add(0, spec, 1);
  sim::Simulator s = MakeSim(topo, policies::MakeThreadCount());
  trace.SubmitAll(s);
  s.RunUntil(0);
  EXPECT_EQ(s.machine().Load(1, LoadMetric::kTaskCount), 1);
  EXPECT_EQ(s.machine().Load(0, LoadMetric::kTaskCount), 0);
}

}  // namespace
}  // namespace optsched
