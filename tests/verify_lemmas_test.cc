// Per-state proof obligations (paper §4.2/§4.3) across the policy zoo: the
// checker must accept the sound constructions and pinpoint the flawed ones
// with concrete counterexamples.

#include <gtest/gtest.h>

#include "src/core/policies/broken.h"
#include "src/core/policies/cfs_like.h"
#include "src/core/policies/hierarchical.h"
#include "src/core/policies/locality.h"
#include "src/core/policies/thread_count.h"
#include "src/core/policies/weighted.h"
#include "src/core/policy.h"
#include "src/verify/lemmas.h"

namespace optsched {
namespace {

using policies::GroupMap;
using verify::Bounds;

Bounds SmallBounds(uint32_t cores = 4, int64_t max_load = 4) {
  Bounds b;
  b.num_cores = cores;
  b.max_load = max_load;
  return b;
}

TEST(Lemma1, HoldsForThreadCount) {
  const auto policy = policies::MakeThreadCount();
  const auto result = verify::CheckLemma1(*policy, SmallBounds());
  EXPECT_TRUE(result.holds) << result.ToString();
  EXPECT_EQ(result.states_checked, 625u);
  EXPECT_GT(result.checks_performed, 0u);
}

TEST(Lemma1, HoldsForWeighted) {
  // §4.2: "the proof is still automatically verified for a load balancer that
  // tries to balance the number of threads weighted by their importance."
  const auto policy = policies::MakeWeightedLoad();
  const auto result = verify::CheckLemma1(*policy, SmallBounds());
  EXPECT_TRUE(result.holds) << result.ToString();
}

TEST(Lemma1, HoldsForBrokenFilterToo) {
  // The §4.3 counterexample is NOT caught by Lemma 1 — for an idle thief,
  // "stealee.load >= 2" coincides with the sound filter. The flaw only
  // surfaces under concurrency; this is the paper's §4.2-vs-§4.3 pivot.
  const auto policy = policies::MakeBrokenCanSteal();
  const auto result = verify::CheckLemma1(*policy, SmallBounds());
  EXPECT_TRUE(result.holds) << result.ToString();
}

TEST(Lemma1, FailsForGroupSumWithCounterexample) {
  const auto policy = policies::MakeGroupSum(GroupMap::Contiguous(4, 2));
  const auto result = verify::CheckLemma1(*policy, SmallBounds());
  ASSERT_FALSE(result.holds);
  ASSERT_TRUE(result.counterexample.has_value());
  // The counterexample must be a real violation: thief idle, someone
  // overloaded, empty filter set.
  const auto& ce = *result.counterexample;
  ASSERT_TRUE(ce.thief.has_value());
  EXPECT_EQ(ce.loads[*ce.thief], 0);
  bool any_overloaded = false;
  for (int64_t l : ce.loads) {
    any_overloaded |= (l >= 2);
  }
  EXPECT_TRUE(any_overloaded);
  SCOPED_TRACE(result.ToString());
}

TEST(Lemma1, FailsForCfsLike) {
  // Group-average thresholding hides overloaded cores: the designated idle
  // core's filter can be empty while a remote core is overloaded.
  const auto policy = policies::MakeCfsLike(GroupMap::Contiguous(4, 2));
  const auto result = verify::CheckLemma1(*policy, SmallBounds());
  EXPECT_FALSE(result.holds) << result.ToString();
}

TEST(Lemma1, HoldsForHierarchicalSoundConstruction) {
  // D5: hierarchy confined to the choice step leaves the filter — and hence
  // the lemma — untouched.
  const auto policy = policies::MakeHierarchical(GroupMap::Contiguous(4, 2));
  const auto result = verify::CheckLemma1(*policy, SmallBounds());
  EXPECT_TRUE(result.holds) << result.ToString();
}

TEST(FilterSelectsOverloaded, HoldsForWholeZoo) {
  // Even the broken filter only ever targets overloaded cores; this obligation
  // separates "targets wrong cores" from "fails to target".
  const Bounds bounds = SmallBounds();
  for (const auto& policy :
       {policies::MakeThreadCount(), policies::MakeWeightedLoad(),
        policies::MakeBrokenCanSteal(),
        policies::MakeHierarchical(GroupMap::Contiguous(4, 2)),
        policies::MakeGroupSum(GroupMap::Contiguous(4, 2)),
        policies::MakeCfsLike(GroupMap::Contiguous(4, 2))}) {
    const auto result = verify::CheckFilterSelectsOverloaded(*policy, bounds);
    EXPECT_TRUE(result.holds) << policy->name() << ": " << result.ToString();
  }
}

TEST(StealSafety, HoldsForSoundPolicies) {
  for (const auto& policy :
       {policies::MakeThreadCount(), policies::MakeWeightedLoad(),
        policies::MakeHierarchical(GroupMap::Contiguous(4, 2))}) {
    const auto result = verify::CheckStealSafety(*policy, SmallBounds());
    EXPECT_TRUE(result.holds) << policy->name() << ": " << result.ToString();
  }
}

TEST(StealSafety, HoldsForBrokenPolicy) {
  // The broken policy never idles its victim either (victim.load >= 2 at
  // migration); its flaw is elsewhere.
  const auto result = verify::CheckStealSafety(*policies::MakeBrokenCanSteal(), SmallBounds());
  EXPECT_TRUE(result.holds) << result.ToString();
}

// A deliberately unsafe policy: permits stealing the victim's last task.
class OverstealPolicy : public BalancePolicy {
 public:
  std::string name() const override { return "oversteal"; }
  bool CanSteal(const SelectionView& view, CpuId stealee) const override {
    return view.snapshot.Load(stealee, LoadMetric::kTaskCount) >
           view.snapshot.Load(view.self, LoadMetric::kTaskCount);
  }
  bool ShouldMigrate(int64_t, int64_t victim_load, int64_t) const override {
    return victim_load >= 1;  // may take the only queued task of a 2-task core
  }
};

TEST(StealSafety, CatchesVictimIdling) {
  // (1,0) -> thief 1 steals the queued task of... wait, load-1 victims hold
  // only a current task which cannot be stolen; use (2,0): stealing one task
  // leaves load 1 (safe), so over-steal needs the *idle-thief-fails* leg:
  // thief idle, CanSteal admits victim with load 1, but there is no ready
  // task the engine can take -> "idle thief's admitted steal failed".
  const OverstealPolicy policy;
  const auto result = verify::CheckStealSafety(policy, SmallBounds(2, 3));
  ASSERT_FALSE(result.holds);
  ASSERT_TRUE(result.counterexample.has_value());
  SCOPED_TRACE(result.ToString());
}

TEST(PotentialDecrease, HoldsForSoundPolicies) {
  for (const auto& policy :
       {policies::MakeThreadCount(), policies::MakeWeightedLoad(),
        policies::MakeHierarchical(GroupMap::Contiguous(4, 2))}) {
    const auto result = verify::CheckPotentialDecrease(*policy, SmallBounds());
    EXPECT_TRUE(result.holds) << policy->name() << ": " << result.ToString();
  }
}

TEST(PotentialDecrease, FailsForBrokenWithConcreteSteal) {
  const auto result =
      verify::CheckPotentialDecrease(*policies::MakeBrokenCanSteal(), SmallBounds(3, 3));
  ASSERT_FALSE(result.holds);
  ASSERT_TRUE(result.counterexample.has_value());
  // Verify the counterexample really is a non-decreasing steal: thief at
  // least as loaded as victim-1.
  const auto& ce = *result.counterexample;
  ASSERT_TRUE(ce.thief.has_value() && ce.stealee.has_value());
  EXPECT_GE(ce.loads[*ce.thief] + 1, ce.loads[*ce.stealee] - 1);
  SCOPED_TRACE(result.ToString());
}

TEST(Lemmas, LargerBoundsStillFast) {
  // 5 cores x loads 0..5 = 7776 states; the full §4.2 battery should stay
  // well under a second.
  const auto policy = policies::MakeThreadCount();
  Bounds b = SmallBounds(5, 5);
  EXPECT_TRUE(verify::CheckLemma1(*policy, b).holds);
  EXPECT_TRUE(verify::CheckStealSafety(*policy, b).holds);
  EXPECT_TRUE(verify::CheckPotentialDecrease(*policy, b).holds);
}

}  // namespace
}  // namespace optsched
