// Chaos tests for the serving front end (docs/serving.md): producer shards
// hammer the bounded mailboxes through the IngressRouter while the executor
// drains them — under overload, injected ingress faults, and worker
// crash-and-restart. The obligations:
//
//   * no lost admitted items — every item a mailbox accepted is executed,
//     still runqueued at the deadline, or still mailbox-resident; the only
//     way out of the system is an explicit, counted shed;
//   * faults are visible (counted and traced), never silent;
//   * the watchdog reads admitted-but-undrained backlog as PENDING, so
//     ingress overload and delayed drains produce zero persistent
//     work-conservation violations against a healthy scheduler.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/core/policies/thread_count.h"
#include "src/ingress/admission.h"
#include "src/ingress/mailbox.h"
#include "src/ingress/router.h"
#include "src/runtime/executor.h"
#include "src/runtime/spinlock.h"
#include "src/trace/accounting.h"

namespace optsched {
namespace {

struct ChaosRun {
  runtime::ExecutorReport report;
  ingress::ShardStats ingress_totals;
  uint64_t admitted = 0;          // sum of mailbox total_pushed at quiescence
  uint64_t drained = 0;           // sum of mailbox total_drained at quiescence
  int64_t mailbox_residue = 0;    // TotalPending after everything joined
  fault::FaultStats router_faults;
};

// Runs `num_shards` producer threads offering `offers_per_shard` keyed items
// each through the router while the executor drains mailboxes for
// `duration_ms`. The producer threads are joined before RunFor returns (they
// run inside the producer callback), so every counter read afterwards is at
// quiescence.
ChaosRun RunChaos(runtime::ExecutorConfig config, ingress::RouterConfig router_config,
                  uint32_t num_shards, uint64_t offers_per_shard, uint64_t duration_ms,
                  uint64_t pacing_spins) {
  ingress::MailboxSet mailboxes(config.num_workers, /*capacity_per_mailbox=*/64);
  config.ingress = &mailboxes;
  router_config.num_shards = num_shards;
  ingress::IngressRouter router(mailboxes, router_config);

  runtime::Executor executor(policies::MakeThreadCount(), config);
  mailboxes.set_notify([&](uint32_t worker) { executor.NotifyIngress(worker); });

  const auto producer = [&](runtime::Executor&) {
    std::vector<std::thread> shards;
    for (uint32_t s = 0; s < num_shards; ++s) {
      shards.emplace_back([&, s] {
        for (uint64_t i = 0; i < offers_per_shard; ++i) {
          const uint64_t session = s * offers_per_shard + i;
          router.Offer(s, session,
                       {.id = session, .work_units = 1, .weight = 1024});
          for (uint64_t spin = 0; spin < pacing_spins; ++spin) {
            runtime::CpuRelax();
          }
        }
      });
    }
    for (auto& t : shards) {
      t.join();
    }
  };

  ChaosRun run;
  run.report = executor.RunFor(duration_ms, producer);
  run.ingress_totals = router.TotalStats();
  for (uint32_t w = 0; w < config.num_workers; ++w) {
    run.admitted += mailboxes.mailbox(w).total_pushed();
    run.drained += mailboxes.mailbox(w).total_drained();
  }
  run.mailbox_residue = mailboxes.TotalPending();
  if (router.injector() != nullptr) {
    run.router_faults = router.injector()->stats();
  }
  return run;
}

void ExpectAdmittedConservation(const ChaosRun& run) {
  const auto& totals = run.ingress_totals;
  // Every offer resolved to exactly one fate.
  EXPECT_EQ(totals.offered,
            totals.admitted_home + totals.admitted_spill + totals.shed);
  // "Admitted" at the router equals "pushed" at the mailboxes.
  EXPECT_EQ(run.admitted, totals.admitted_home + totals.admitted_spill);
  // Mailbox conservation: accepted == drained + still resident.
  EXPECT_EQ(run.admitted,
            run.drained + static_cast<uint64_t>(run.mailbox_residue));
  // Executor conservation: every drained item was counted submitted, and is
  // either executed or still runqueued at the deadline.
  EXPECT_EQ(run.drained, run.report.total_mailbox_items_drained());
  EXPECT_EQ(run.drained, run.report.total_items);
  uint64_t executed = 0;
  for (const auto& w : run.report.workers) {
    executed += w.items_executed;
  }
  EXPECT_EQ(run.admitted, executed + run.report.items_left_unexecuted +
                              static_cast<uint64_t>(run.mailbox_residue));
}

TEST(IngressChaos, OverloadWithShedKeepsEveryAdmittedItem) {
  runtime::ExecutorConfig config;
  config.num_workers = 4;
  config.spin_per_unit = 400;  // slow consumers: the mailboxes WILL fill
  config.watchdog = true;
  ingress::RouterConfig router_config;
  router_config.admission.policy = ingress::AdmissionPolicy::kShed;

  const ChaosRun run = RunChaos(config, router_config, /*num_shards=*/4,
                                /*offers_per_shard=*/30'000, /*duration_ms=*/300,
                                /*pacing_spins=*/0);
  SCOPED_TRACE(run.report.ToString());
  ExpectAdmittedConservation(run);
  // The open loop out-ran the consumers: shedding actually engaged — drops
  // happen ONLY through this counted path.
  EXPECT_GT(run.ingress_totals.shed, 0u);
  EXPECT_GT(run.admitted, 0u);
  // Overload at the edge is not a conservation violation: the workers were
  // busy and the backlog was mailbox-resident, never idle-while-overloaded.
  EXPECT_EQ(run.report.watchdog.persistent_violations, 0u);
}

TEST(IngressChaos, SpillPolicyKeepsConservationAcrossSiblings) {
  runtime::ExecutorConfig config;
  config.num_workers = 4;
  config.spin_per_unit = 300;
  ingress::RouterConfig router_config;
  router_config.admission.policy = ingress::AdmissionPolicy::kSpillToSibling;
  router_config.admission.max_spill_hops = 3;

  const ChaosRun run = RunChaos(config, router_config, 4, 30'000, 300, 0);
  SCOPED_TRACE(run.report.ToString());
  ExpectAdmittedConservation(run);
  // Spill admits strictly more than shed would have at the same load.
  EXPECT_GT(run.ingress_totals.admitted_spill, 0u);
}

TEST(IngressChaos, CrashRestartAndIngressFaultsLoseNothingAndStayVisible) {
  runtime::ExecutorConfig config;
  config.num_workers = 4;
  config.spin_per_unit = 50;
  config.seed = 7;
  config.watchdog = true;
  // Workers genuinely die (between items) and get respawned; the mailboxes
  // and runqueues are shared, so admitted items must survive every crash.
  config.fault_plan.crash_rate = 0.0005;
  config.fault_plan.crash_restart_us = 100;
  // The owner occasionally skips a drain opportunity: items sit
  // admitted-but-undrained one round longer, which the watchdog must read as
  // pending, not as an idle-while-overloaded violation.
  config.fault_plan.drain_delay_rate = 0.2;
  config.fault_plan.seed = 7;

  ingress::RouterConfig router_config;
  router_config.admission.policy = ingress::AdmissionPolicy::kSpillToSibling;
  router_config.fault_plan.mailbox_enqueue_fail_rate = 0.02;
  router_config.fault_plan.producer_stall_rate = 0.001;
  router_config.fault_plan.producer_stall_us = 50;
  router_config.fault_plan.seed = 11;
  router_config.trace_capacity_per_shard = 1 << 12;

  // Paced offers: queues run dry between bursts, so the round-boundary drain
  // path (and its DelayDrain seam) is exercised, not just the periodic one.
  const ChaosRun run = RunChaos(config, router_config, /*num_shards=*/2,
                                /*offers_per_shard=*/20'000, /*duration_ms=*/400,
                                /*pacing_spins=*/200);
  SCOPED_TRACE(run.report.ToString());
  ExpectAdmittedConservation(run);

  // Every injected fault class fired and is visible in the counters.
  EXPECT_GT(run.report.faults.crashes, 0u);
  EXPECT_GT(run.report.faults.delayed_drains, 0u);
  EXPECT_GT(run.router_faults.mailbox_enqueue_failures, 0u);
  EXPECT_EQ(run.router_faults.mailbox_enqueue_failures,
            run.ingress_totals.enqueue_faults);
  // Faults surface as metrics/sheds, never as persistent watchdog violations
  // — transient ones are expected and allowed.
  EXPECT_EQ(run.report.watchdog.persistent_violations, 0u);
}

// The satellite-2 semantics in isolation: a core whose runqueue is empty but
// whose mailbox holds admitted work is NOT violating work conservation, while
// a core with neither still is.
TEST(IngressWatchdog, MailboxBacklogCountsAsPending) {
  trace::ConservationWatchdog excused(2, {.threshold_rounds = 4});
  trace::ConservationWatchdog charged(2, {.threshold_rounds = 4});
  const std::vector<int64_t> loads = {0, 5};          // core 0 idle, core 1 overloaded
  const std::vector<int64_t> backlog = {3, 0};        // ...but core 0 has mailbox items
  const std::vector<int64_t> no_backlog = {0, 0};
  for (uint64_t round = 0; round < 16; ++round) {
    EXPECT_FALSE(excused.ObserveRound(round, loads, backlog, nullptr));
    charged.ObserveRound(round, loads, no_backlog, nullptr);
  }
  excused.Finalize();
  charged.Finalize();
  EXPECT_EQ(excused.stats().persistent_violations, 0u);
  EXPECT_EQ(excused.stats().transient_violations, 0u);
  EXPECT_EQ(excused.stats().max_streak_rounds, 0u);
  // Same loads, no backlog: the streak crosses the threshold.
  EXPECT_GT(charged.stats().persistent_violations, 0u);

  // The two-argument overload is exactly the empty-backlog case.
  trace::ConservationWatchdog legacy(2, {.threshold_rounds = 4});
  for (uint64_t round = 0; round < 16; ++round) {
    legacy.ObserveRound(round, loads);
  }
  legacy.Finalize();
  EXPECT_EQ(legacy.stats().persistent_violations, charged.stats().persistent_violations);
}

// A mailbox-resident item never excuses OTHER cores: overload is judged on
// runqueue loads alone, because mailbox items are not stealable.
TEST(IngressWatchdog, BacklogDoesNotExcuseOtherCores) {
  trace::ConservationWatchdog watchdog(3, {.threshold_rounds = 2});
  // Core 0 idle with backlog (excused), core 1 idle WITHOUT backlog
  // (violating — core 2 is overloaded and core 1 could steal from it).
  const std::vector<int64_t> loads = {0, 0, 6};
  const std::vector<int64_t> backlog = {4, 0, 0};
  bool escalated = false;
  for (uint64_t round = 0; round < 8; ++round) {
    escalated |= watchdog.ObserveRound(round, loads, backlog, nullptr);
  }
  EXPECT_TRUE(escalated);
  EXPECT_EQ(watchdog.stats().persistent_violations, 1u);  // core 1 only
}

}  // namespace
}  // namespace optsched
