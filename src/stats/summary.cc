#include "src/stats/summary.h"

#include <algorithm>
#include <cmath>

#include "src/base/str.h"

namespace optsched::stats {

void Summary::Add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Summary::Merge(const Summary& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::variance() const {
  if (count_ == 0) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double JainFairnessIndex(const std::vector<double>& allocations) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (allocations.empty() || sum_sq == 0.0) {
    return 1.0;
  }
  return sum * sum / (static_cast<double>(allocations.size()) * sum_sq);
}

std::string Summary::ToString() const {
  return StrFormat("count=%llu mean=%.4f stddev=%.4f min=%.4f max=%.4f",
                   static_cast<unsigned long long>(count_), mean(), stddev(), min(), max());
}

}  // namespace optsched::stats
