// Histograms with percentile estimation.
//
// Two flavours:
//  - Histogram: fixed-width linear buckets over [lo, hi), for bounded metrics
//    such as runqueue depth or rounds-to-convergence.
//  - LogHistogram: base-2 exponential buckets, for latency-like metrics that
//    span orders of magnitude (e.g. steal latency in the real-thread runtime).

#ifndef OPTSCHED_SRC_STATS_HISTOGRAM_H_
#define OPTSCHED_SRC_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace optsched::stats {

class Histogram {
 public:
  // Buckets of width (hi-lo)/bucket_count over [lo, hi); values outside the
  // range are clamped into the first/last bucket and counted separately.
  Histogram(double lo, double hi, size_t bucket_count);

  void Add(double value);
  void Merge(const Histogram& other);

  uint64_t total() const { return total_; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  const std::vector<uint64_t>& buckets() const { return buckets_; }

  // Linear-interpolated percentile estimate; q in [0, 1].
  double Percentile(double q) const;

  // Multi-line ASCII rendering with proportional bars, for bench output.
  std::string Render(size_t max_bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<uint64_t> buckets_;
  uint64_t total_ = 0;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
};

class LogHistogram {
 public:
  // Buckets are [0,1), [1,2), [2,4), [4,8), ... up to 2^62.
  LogHistogram();

  void Add(uint64_t value);
  void Merge(const LogHistogram& other);

  uint64_t total() const { return total_; }
  double Percentile(double q) const;
  std::string Render(size_t max_bar_width = 50) const;

 private:
  std::vector<uint64_t> buckets_;
  uint64_t total_ = 0;
};

}  // namespace optsched::stats

#endif  // OPTSCHED_SRC_STATS_HISTOGRAM_H_
