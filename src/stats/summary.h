// Streaming summary statistics (Welford's online algorithm).

#ifndef OPTSCHED_SRC_STATS_SUMMARY_H_
#define OPTSCHED_SRC_STATS_SUMMARY_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace optsched::stats {

// Accumulates count/mean/variance/min/max in O(1) memory. Numerically stable
// for long simulation runs (billions of samples).
class Summary {
 public:
  void Add(double value);

  // Merges another summary into this one (Chan et al. parallel variance).
  void Merge(const Summary& other);

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  // Population variance / standard deviation.
  double variance() const;
  double stddev() const;

  // "count=N mean=M stddev=S min=A max=B" for logs and tables.
  std::string ToString() const;

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Jain's fairness index over a set of allocations: (Σx)² / (n·Σx²), in
// (0, 1]; 1.0 means perfectly equal shares. Pass allocations already
// normalized by entitlement (e.g. cpu_time / weight) to measure weighted
// fairness. Returns 1.0 for empty or all-zero input.
double JainFairnessIndex(const std::vector<double>& allocations);

}  // namespace optsched::stats

#endif  // OPTSCHED_SRC_STATS_SUMMARY_H_
