#include "src/stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "src/base/check.h"
#include "src/base/str.h"

namespace optsched::stats {

Histogram::Histogram(double lo, double hi, size_t bucket_count)
    : lo_(lo), hi_(hi), bucket_width_((hi - lo) / static_cast<double>(bucket_count)),
      buckets_(bucket_count, 0) {
  OPTSCHED_CHECK(hi > lo);
  OPTSCHED_CHECK(bucket_count > 0);
}

void Histogram::Add(double value) {
  ++total_;
  size_t index;
  if (value < lo_) {
    ++underflow_;
    index = 0;
  } else if (value >= hi_) {
    ++overflow_;
    index = buckets_.size() - 1;
  } else {
    index = static_cast<size_t>((value - lo_) / bucket_width_);
    index = std::min(index, buckets_.size() - 1);
  }
  ++buckets_[index];
}

void Histogram::Merge(const Histogram& other) {
  OPTSCHED_CHECK(other.buckets_.size() == buckets_.size());
  OPTSCHED_CHECK(other.lo_ == lo_ && other.hi_ == hi_);
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

double Histogram::Percentile(double q) const {
  OPTSCHED_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) {
    return lo_;
  }
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const double next = cumulative + static_cast<double>(buckets_[i]);
    if (next >= target) {
      const double within =
          buckets_[i] == 0 ? 0.0 : (target - cumulative) / static_cast<double>(buckets_[i]);
      return lo_ + (static_cast<double>(i) + within) * bucket_width_;
    }
    cumulative = next;
  }
  return hi_;
}

std::string Histogram::Render(size_t max_bar_width) const {
  uint64_t peak = 1;
  for (uint64_t b : buckets_) {
    peak = std::max(peak, b);
  }
  std::string out;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    const double bucket_lo = lo_ + static_cast<double>(i) * bucket_width_;
    const size_t bar = static_cast<size_t>(static_cast<double>(buckets_[i]) /
                                           static_cast<double>(peak) *
                                           static_cast<double>(max_bar_width));
    out += StrFormat("[%10.2f, %10.2f) %8llu ", bucket_lo, bucket_lo + bucket_width_,
                     static_cast<unsigned long long>(buckets_[i]));
    out.append(std::max<size_t>(bar, 1), '#');
    out.push_back('\n');
  }
  return out;
}

LogHistogram::LogHistogram() : buckets_(64, 0) {}

void LogHistogram::Add(uint64_t value) {
  ++total_;
  size_t index = 0;
  if (value > 0) {
    index = static_cast<size_t>(64 - __builtin_clzll(value));
  }
  index = std::min(index, buckets_.size() - 1);
  ++buckets_[index];
}

void LogHistogram::Merge(const LogHistogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  total_ += other.total_;
}

double LogHistogram::Percentile(double q) const {
  OPTSCHED_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) {
    return 0.0;
  }
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const double next = cumulative + static_cast<double>(buckets_[i]);
    if (next >= target) {
      const double bucket_lo = i == 0 ? 0.0 : std::pow(2.0, static_cast<double>(i - 1));
      const double bucket_hi = std::pow(2.0, static_cast<double>(i));
      const double within =
          buckets_[i] == 0 ? 0.0 : (target - cumulative) / static_cast<double>(buckets_[i]);
      return bucket_lo + within * (bucket_hi - bucket_lo);
    }
    cumulative = next;
  }
  return std::pow(2.0, 63.0);
}

std::string LogHistogram::Render(size_t max_bar_width) const {
  uint64_t peak = 1;
  for (uint64_t b : buckets_) {
    peak = std::max(peak, b);
  }
  std::string out;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    const unsigned long long bucket_lo = i == 0 ? 0 : (1ull << (i - 1));
    const unsigned long long bucket_hi = i >= 63 ? ~0ull : (1ull << i);
    const size_t bar = static_cast<size_t>(static_cast<double>(buckets_[i]) /
                                           static_cast<double>(peak) *
                                           static_cast<double>(max_bar_width));
    out += StrFormat("[%12llu, %12llu) %8llu ", bucket_lo, bucket_hi,
                     static_cast<unsigned long long>(buckets_[i]));
    out.append(std::max<size_t>(bar, 1), '#');
    out.push_back('\n');
  }
  return out;
}

}  // namespace optsched::stats
