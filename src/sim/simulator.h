// Discrete-event multicore scheduler simulator.
//
// This is the "kernel" substitute of the reproduction (DESIGN.md): the paper
// compiles DSL policies into a Linux scheduling class; we execute the same
// policies against a deterministic event-driven model of a multicore machine.
// The model implements exactly the paper's §3.1 scheduler: per-core runqueues
// plus a current task, round-robin timeslices within a core, wake-up
// placement, and periodic load-balancing rounds executed "simultaneously on
// all cores" (one shared snapshot, serialized steals — so steals can fail,
// as in the concurrent model of §4.3).
//
// Tasks follow a service/burst/block life cycle: a task needs
// `total_service_us` of CPU; it runs bursts of `burst_us` (or to completion
// when 0), blocking for an exponentially distributed `mean_block_us` between
// bursts (database-style I/O waits). Everything is driven by a single event
// queue and a single deterministic Rng, so runs are exactly reproducible.

#ifndef OPTSCHED_SRC_SIM_SIMULATOR_H_
#define OPTSCHED_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <vector>

#include "src/base/rng.h"
#include "src/core/balancer.h"
#include "src/fault/fault.h"
#include "src/sched/machine_state.h"
#include "src/stats/histogram.h"
#include "src/stats/summary.h"
#include "src/topology/topology.h"
#include "src/trace/accounting.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"

namespace optsched::sim {

using trace::SimTime;

// How a core picks its next task from the runqueue.
enum class PickNext {
  // FIFO head (round-robin with the timeslice re-enqueue).
  kFifo,
  // CFS-style: the ready task with the smallest virtual runtime, where
  // vruntime advances by elapsed * (1024 / weight) — heavier tasks age
  // slower, so they run more often; equal weights degrade to fair RR.
  kMinVruntime,
};

// Where a waking (or newly spawned) task is placed.
enum class WakePlacement {
  // Always back on the CPU it last ran on, regardless of its load. This is
  // the "overload on wakeup" pathology from Lozi et al.: wakees pile onto
  // busy cores while others sit idle, and only load balancing can undo it.
  kLastCpu,
  // An idle CPU of the task's home node if any, else the least-loaded CPU of
  // the node, falling back to the machine-wide least-loaded (sound default).
  kIdlePreferred,
};

struct SimConfig {
  SimTime timeslice_us = 4000;       // round-robin quantum (CFS-ish 4ms)
  // Scale each task's quantum by weight/1024 (CFS-flavoured proportional
  // share): combined with the weighted balancer this yields weight-
  // proportional CPU time machine-wide (bench E11c).
  bool weighted_timeslice = false;
  // Intra-core pick-next discipline (FIFO round-robin vs min-vruntime fair).
  PickNext pick_next = PickNext::kFifo;
  SimTime lb_period_us = 4000;       // load-balancing rounds every 4ms (§3.1)
  RoundOptions lb_round;             // concurrency mode of the rounds
  // Run one balancing attempt the moment a core becomes idle (the kernel's
  // newidle balance) instead of waiting for the next periodic round. Same
  // three-step protocol, same proofs; it only shortens idle episodes.
  bool newidle_balance = false;
  WakePlacement wake_placement = WakePlacement::kIdlePreferred;
  // Cache-refill cost of running on a different CPU than the task last ran
  // on: extra CPU time of `migration_penalty_us_per_distance` x
  // Topology::CpuDistance(last_ran, new) is added to the task's demand at
  // schedule-in. 0 disables. This is what makes locality-aware CHOICE steps
  // (paper 5) measurably matter: the filter decides *whether* work moves,
  // the choice decides *how far* — and distance now has a price.
  SimTime migration_penalty_us_per_distance = 0;
  SimTime max_time_us = 60'000'000;  // hard stop (1 simulated minute)
  SimTime sample_period_us = 0;      // 0 = no load sampling
  size_t trace_capacity = 0;         // 0 = tracing off
  // Fault injection at the protocol seams (src/fault). All-zero rates (the
  // default) attach no injector and change nothing.
  fault::FaultPlan fault_plan;
  // Work-conservation watchdog: observes the load vector after every
  // balancing round, classifies idle-while-overloaded streaks as transient
  // (<= threshold rounds) or persistent, and escalates a persistent
  // violation by forcing a fault-free global sequential round — the
  // ladder-outermost, can't-fail rebalance of §4.2.
  bool watchdog = false;
  // 0 = ConservationWatchdog::DefaultThreshold(num_cpus). Callers that ran
  // the verifier should pass its worst-case N (plus fault headroom) here.
  uint64_t watchdog_threshold_rounds = 0;
};

// Behavioural description of one task.
struct TaskSpec {
  int nice = 0;
  NodeId home_node = 0;
  uint64_t total_service_us = 10'000;  // CPU time needed before exit
  uint64_t burst_us = 0;               // 0: CPU-bound, run to completion
  uint64_t mean_block_us = 0;          // exponential block between bursts
  uint64_t allowed_mask = 0;           // CPU affinity; 0 = unrestricted
};

struct SimMetrics {
  uint64_t tasks_submitted = 0;
  uint64_t tasks_completed = 0;
  uint64_t bursts_completed = 0;   // "transactions" for OLTP-style workloads
  uint64_t migrations = 0;         // successful steals
  uint64_t failed_steals = 0;
  uint64_t lb_rounds = 0;
  uint64_t preemptions = 0;
  uint64_t wakeups = 0;
  uint64_t newidle_attempts = 0;  // balancing triggered by becoming idle
  uint64_t newidle_steals = 0;
  uint64_t watchdog_escalations = 0;  // forced global rounds (persistent violations)
  uint64_t cold_migrations = 0;      // schedule-ins on a CPU the task last didn't run on
  SimTime migration_penalty_us = 0;  // total cache-refill time paid
  SimTime makespan_us = 0;         // time the last task exited
  stats::Summary completion_latency_us;  // submit -> exit
  stats::Summary burst_latency_us;       // wake -> burst completion
  // Reactivity (paper 1: "a bound on the delay to schedule ready threads"):
  // time from a task becoming ready (spawn/wake/preempt/steal-arrival) to it
  // becoming some core's current task. The histogram carries the tail
  // (p99/p999) that the summary's mean hides.
  stats::Summary ready_to_run_latency_us;
  stats::LogHistogram ready_to_run_hist_us;

  std::string ToString() const;
};

class Simulator {
 public:
  Simulator(const Topology& topology, std::shared_ptr<const BalancePolicy> policy,
            const SimConfig& config, uint64_t seed);

  // Submits a task at simulated time `when` (>= current time). Placement of
  // the initial enqueue follows `cpu_hint` if given, else the spec's home
  // node via the wake-placement rule. Returns the task id.
  TaskId Submit(const TaskSpec& spec, SimTime when = 0, std::optional<CpuId> cpu_hint = {});

  // Runs until the event queue drains (all submitted tasks exited) or
  // `config.max_time_us` is reached. Returns the final simulated time.
  SimTime Run();

  // Runs until `until_us` only (for incremental driving).
  SimTime RunUntil(SimTime until_us);

  // Invoked at every task exit — lets workloads submit follow-up phases
  // (fork-join barriers).
  void SetOnTaskExit(std::function<void(TaskId, SimTime)> callback);

  SimTime now() const { return now_; }
  const SimMetrics& metrics() const { return metrics_; }
  const trace::TimeAccountant& accounting() const { return accounting_; }
  const trace::LoadSampler& sampler() const { return sampler_; }
  const trace::TraceBuffer& trace_buffer() const { return trace_; }
  const MachineState& machine() const { return machine_; }
  const Topology& topology() const { return topology_; }
  const BalanceStats& balance_stats() const { return balancer_.stats(); }
  // Faults actually injected (all-zero when no plan was configured).
  fault::FaultStats fault_stats() const {
    return injector_ != nullptr ? injector_->stats() : fault::FaultStats{};
  }
  const trace::WatchdogStats& watchdog_stats() const { return watchdog_.stats(); }
  const trace::ConservationWatchdog& watchdog() const { return watchdog_; }

  // Snapshots every counter of the run — SimMetrics, accounting, balancer,
  // fault and watchdog stats — into the registry under "sim.*" names.
  void ExportMetrics(trace::MetricsRegistry& registry) const;

  // CPU time the task has received so far (fairness analysis). Running tasks
  // are credited up to their last scheduling point.
  uint64_t ConsumedServiceUs(TaskId id) const;
  // (task, consumed) for every task ever submitted, in submission order.
  std::vector<std::pair<TaskId, uint64_t>> AllConsumedService() const;

 private:
  enum class EventKind { kSubmit, kWake, kService, kLbTick, kSample };

  struct Event {
    SimTime time;
    uint64_t seq;  // FIFO tie-break for equal times
    EventKind kind;
    CpuId cpu = 0;
    TaskId task = 0;
    uint64_t generation = 0;  // staleness check for kService

    bool operator>(const Event& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  struct TaskState {
    TaskSpec spec;
    uint64_t remaining_service_us = 0;
    uint64_t remaining_burst_us = 0;
    SimTime submit_time = 0;
    SimTime wake_time = 0;
    SimTime last_ready_time = 0;  // when the task last became runnable
    CpuId last_cpu = 0;
    bool explicit_initial_cpu = false;  // Submit received a cpu_hint
    // Weighted virtual runtime in 1024ths of a microsecond (kMinVruntime).
    // On enqueue it is clamped up to the queue's minimum vruntime, as in
    // CFS: sleepers resume at the queue's pace instead of monopolizing the
    // core with banked credit.
    uint64_t vruntime = 0;
    // CPU the task last actually RAN on (UINT32_MAX before its first run);
    // distinct from last_cpu, which tracks placement.
    CpuId last_ran_cpu = UINT32_MAX;
    // Migration penalties accumulated into the demand (keeps
    // ConsumedServiceUs well-defined: consumed = total + extra - remaining).
    uint64_t extra_demand_us = 0;
  };

  struct CoreRunState {
    TaskId current = kInvalidTask;
    uint64_t generation = 0;
    SimTime scheduled_at = 0;
  };

  void Push(SimTime time, EventKind kind, CpuId cpu = 0, TaskId task = 0,
            uint64_t generation = 0);
  void Advance(SimTime now);

  CpuId ChooseWakeCpu(const TaskState& task);
  // Timeslice for the task (weight-scaled when weighted_timeslice is on),
  // clamped to its remaining burst.
  uint64_t QuantumFor(const TaskState& state) const;
  // Promotes a ready task on `cpu` per the configured pick-next discipline.
  bool PickNextTask(CpuId cpu);
  // Applies the cold-cache cost of running on a CPU other than the one the
  // task last ran on, then records the new location.
  void ChargeMigrationPenalty(TaskState& state, CpuId cpu);
  void PlaceTask(TaskId id, CpuId cpu);
  // If `cpu` is free and has queued work, make the head current and arm its
  // service event.
  void MaybeScheduleIn(CpuId cpu);
  // Re-arms bookkeeping after the balancer mutated the machine directly.
  void ReconcileAfterBalance();

  void OnService(const Event& event);
  void OnLbTick();

  const Topology& topology_;
  SimConfig config_;
  MachineState machine_;
  LoadBalancer balancer_;
  std::unique_ptr<fault::FaultInjector> injector_;
  trace::ConservationWatchdog watchdog_;
  Rng rng_;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  uint64_t next_seq_ = 0;
  SimTime now_ = 0;
  bool lb_armed_ = false;
  bool sample_armed_ = false;

  std::map<TaskId, TaskState> tasks_;
  std::vector<CoreRunState> cores_;
  TaskId next_task_id_ = 1;
  uint64_t alive_tasks_ = 0;

  SimMetrics metrics_;
  trace::TimeAccountant accounting_;
  trace::LoadSampler sampler_;
  trace::TraceBuffer trace_;
  std::function<void(TaskId, SimTime)> on_task_exit_;
};

}  // namespace optsched::sim

#endif  // OPTSCHED_SRC_SIM_SIMULATOR_H_
