#include "src/sim/simulator.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/base/str.h"

namespace optsched::sim {

std::string SimMetrics::ToString() const {
  return StrFormat(
      "sim{submitted=%llu completed=%llu bursts=%llu migrations=%llu failed_steals=%llu "
      "rounds=%llu preemptions=%llu wakeups=%llu newidle=%llu/%llu makespan=%lluus}",
      static_cast<unsigned long long>(tasks_submitted),
      static_cast<unsigned long long>(tasks_completed),
      static_cast<unsigned long long>(bursts_completed),
      static_cast<unsigned long long>(migrations),
      static_cast<unsigned long long>(failed_steals),
      static_cast<unsigned long long>(lb_rounds),
      static_cast<unsigned long long>(preemptions),
      static_cast<unsigned long long>(wakeups),
      static_cast<unsigned long long>(newidle_steals),
      static_cast<unsigned long long>(newidle_attempts),
      static_cast<unsigned long long>(makespan_us));
}

Simulator::Simulator(const Topology& topology, std::shared_ptr<const BalancePolicy> policy,
                     const SimConfig& config, uint64_t seed)
    : topology_(topology),
      config_(config),
      machine_(topology.num_cpus()),
      balancer_(std::move(policy), &topology_),
      watchdog_(topology.num_cpus(),
                trace::WatchdogConfig{.threshold_rounds = config.watchdog_threshold_rounds}),
      rng_(seed),
      cores_(topology.num_cpus()),
      accounting_(topology.num_cpus()),
      trace_(config.trace_capacity) {
  OPTSCHED_CHECK(config_.timeslice_us > 0);
  OPTSCHED_CHECK(config_.lb_period_us > 0);
  if (config_.fault_plan.any()) {
    injector_ = std::make_unique<fault::FaultInjector>(config_.fault_plan, topology.num_cpus());
    balancer_.set_fault_injector(injector_.get());
  }
}

void Simulator::Push(SimTime time, EventKind kind, CpuId cpu, TaskId task, uint64_t generation) {
  events_.push(Event{.time = time,
                     .seq = next_seq_++,
                     .kind = kind,
                     .cpu = cpu,
                     .task = task,
                     .generation = generation});
}

void Simulator::Advance(SimTime now) {
  OPTSCHED_CHECK(now >= now_);
  accounting_.AdvanceTo(now, machine_);
  now_ = now;
}

TaskId Simulator::Submit(const TaskSpec& spec, SimTime when, std::optional<CpuId> cpu_hint) {
  OPTSCHED_CHECK(when >= now_);
  OPTSCHED_CHECK(spec.total_service_us > 0);
  if (cpu_hint.has_value() && spec.allowed_mask != 0) {
    OPTSCHED_CHECK_MSG(*cpu_hint < 64 && (spec.allowed_mask & (uint64_t{1} << *cpu_hint)) != 0,
                       "cpu_hint outside the task's affinity mask");
  }
  const TaskId id = next_task_id_++;
  TaskState state;
  state.spec = spec;
  state.remaining_service_us = spec.total_service_us;
  state.remaining_burst_us = spec.burst_us > 0
                                 ? std::min<uint64_t>(spec.burst_us, spec.total_service_us)
                                 : spec.total_service_us;
  state.submit_time = when;
  state.wake_time = when;
  state.last_cpu = cpu_hint.value_or(topology_.CpusInNode(spec.home_node).front());
  state.explicit_initial_cpu = cpu_hint.has_value();
  tasks_[id] = state;
  ++metrics_.tasks_submitted;
  ++alive_tasks_;
  Push(when, EventKind::kSubmit, state.last_cpu, id);
  // Arm the periodic machinery on first use.
  if (!lb_armed_) {
    lb_armed_ = true;
    Push(when + config_.lb_period_us, EventKind::kLbTick);
  }
  if (config_.sample_period_us > 0 && !sample_armed_) {
    sample_armed_ = true;
    Push(when, EventKind::kSample);
  }
  return id;
}

void Simulator::SetOnTaskExit(std::function<void(TaskId, SimTime)> callback) {
  on_task_exit_ = std::move(callback);
}

CpuId Simulator::ChooseWakeCpu(const TaskState& task) {
  const auto allowed = [&](CpuId cpu) {
    return task.spec.allowed_mask == 0 ||
           (cpu < 64 && (task.spec.allowed_mask & (uint64_t{1} << cpu)) != 0);
  };
  if (config_.wake_placement == WakePlacement::kLastCpu && allowed(task.last_cpu)) {
    return task.last_cpu;
  }
  // kIdlePreferred (and the fallback for a re-pinned task): idle CPU in the
  // home node, else any idle CPU (nearest to the last CPU), else the
  // least-loaded allowed CPU of the home node, else the least-loaded allowed
  // CPU anywhere.
  const std::vector<CpuId>& home = topology_.CpusInNode(task.spec.home_node);
  for (CpuId cpu : home) {
    if (allowed(cpu) && machine_.IsIdle(cpu)) {
      return cpu;
    }
  }
  std::optional<CpuId> best_idle;
  uint32_t best_distance = 0;
  for (CpuId cpu = 0; cpu < machine_.num_cpus(); ++cpu) {
    if (!allowed(cpu) || !machine_.IsIdle(cpu)) {
      continue;
    }
    const uint32_t distance = topology_.CpuDistance(task.last_cpu, cpu);
    if (!best_idle.has_value() || distance < best_distance) {
      best_idle = cpu;
      best_distance = distance;
    }
  }
  if (best_idle.has_value()) {
    return *best_idle;
  }
  std::optional<CpuId> least;
  for (CpuId cpu : home) {
    if (allowed(cpu) &&
        (!least.has_value() || machine_.Load(cpu, LoadMetric::kTaskCount) <
                                   machine_.Load(*least, LoadMetric::kTaskCount))) {
      least = cpu;
    }
  }
  if (!least.has_value()) {
    for (CpuId cpu = 0; cpu < machine_.num_cpus(); ++cpu) {
      if (allowed(cpu) &&
          (!least.has_value() || machine_.Load(cpu, LoadMetric::kTaskCount) <
                                     machine_.Load(*least, LoadMetric::kTaskCount))) {
        least = cpu;
      }
    }
  }
  OPTSCHED_CHECK_MSG(least.has_value(), "affinity mask admits no CPU of this machine");
  return *least;
}

uint64_t Simulator::QuantumFor(const TaskState& state) const {
  uint64_t quantum = config_.timeslice_us;
  if (config_.weighted_timeslice) {
    quantum = std::max<uint64_t>(
        100, quantum * NiceToWeight(state.spec.nice) / kNiceZeroWeight);
  }
  return std::min<uint64_t>(quantum, state.remaining_burst_us);
}

uint64_t Simulator::ConsumedServiceUs(TaskId id) const {
  const TaskState& state = tasks_.at(id);
  uint64_t consumed =
      state.spec.total_service_us + state.extra_demand_us - state.remaining_service_us;
  // Credit the in-flight segment of a currently running task.
  for (CpuId cpu = 0; cpu < machine_.num_cpus(); ++cpu) {
    if (cores_[cpu].current == id) {
      consumed += now_ - cores_[cpu].scheduled_at;
      break;
    }
  }
  return consumed;
}

std::vector<std::pair<TaskId, uint64_t>> Simulator::AllConsumedService() const {
  std::vector<std::pair<TaskId, uint64_t>> out;
  out.reserve(tasks_.size());
  for (const auto& [id, state] : tasks_) {
    out.emplace_back(id, ConsumedServiceUs(id));
  }
  return out;
}

void Simulator::PlaceTask(TaskId id, CpuId cpu) {
  TaskState& state = tasks_.at(id);
  state.last_ready_time = now_;
  state.last_cpu = cpu;
  if (config_.pick_next == PickNext::kMinVruntime) {
    // Clamp up to the queue's minimum vruntime (CFS sleeper placement).
    std::optional<uint64_t> queue_min;
    const CoreState& core = machine_.core(cpu);
    const auto consider = [&](TaskId peer) {
      const uint64_t v = tasks_.at(peer).vruntime;
      if (!queue_min.has_value() || v < *queue_min) {
        queue_min = v;
      }
    };
    if (core.current().has_value()) {
      consider(core.current()->id);
    }
    for (const Task& t : core.ready()) {
      consider(t.id);
    }
    if (queue_min.has_value() && state.vruntime < *queue_min) {
      state.vruntime = *queue_min;
    }
  }
  Task task = MakeTask(id, state.spec.nice, state.spec.home_node);
  task.allowed_mask = state.spec.allowed_mask;
  machine_.Place(std::move(task), cpu);
  MaybeScheduleIn(cpu);
}

void Simulator::ChargeMigrationPenalty(TaskState& state, CpuId cpu) {
  if (state.last_ran_cpu != UINT32_MAX && state.last_ran_cpu != cpu) {
    ++metrics_.cold_migrations;
    if (config_.migration_penalty_us_per_distance > 0) {
      const uint64_t penalty = config_.migration_penalty_us_per_distance *
                               topology_.CpuDistance(state.last_ran_cpu, cpu);
      // A cold cache costs extra CPU time: the task's demand grows.
      state.remaining_service_us += penalty;
      state.remaining_burst_us += penalty;
      state.extra_demand_us += penalty;
      metrics_.migration_penalty_us += penalty;
    }
  }
  state.last_ran_cpu = cpu;
}

bool Simulator::PickNextTask(CpuId cpu) {
  CoreState& core = machine_.core_mutable(cpu);
  if (config_.pick_next == PickNext::kFifo || core.ready().empty()) {
    return core.ScheduleNext();
  }
  // Min-vruntime pick (ties broken by id for determinism).
  TaskId best = core.ready().front().id;
  uint64_t best_vruntime = tasks_.at(best).vruntime;
  for (const Task& t : core.ready()) {
    const uint64_t v = tasks_.at(t.id).vruntime;
    if (v < best_vruntime || (v == best_vruntime && t.id < best)) {
      best = t.id;
      best_vruntime = v;
    }
  }
  return core.SchedulePick(best);
}

void Simulator::MaybeScheduleIn(CpuId cpu) {
  CoreRunState& core = cores_[cpu];
  if (core.current != kInvalidTask) {
    return;
  }
  if (!machine_.core(cpu).current().has_value() && !PickNextTask(cpu)) {
    // The core just became (or stayed) idle with nothing queued: newidle
    // balancing pulls work right now instead of idling until the next tick.
    if (!config_.newidle_balance) {
      return;
    }
    // A straggler fault also suppresses newidle balancing (the core is stuck
    // elsewhere; the next periodic round will retry).
    if (injector_ != nullptr && injector_->StallCore(cpu)) {
      return;
    }
    ++metrics_.newidle_attempts;
    const CoreAction action = balancer_.RunOneAttempt(machine_, cpu, machine_.Snapshot(), rng_);
    if (action.outcome != StealOutcome::kStole) {
      return;
    }
    // The steal phase promoted the stolen task to current on this core.
    ++metrics_.newidle_steals;
    ++metrics_.migrations;
    const TaskId stolen = machine_.core(cpu).current()->id;
    tasks_.at(stolen).last_cpu = cpu;
    trace_.Record({.time = now_, .type = trace::EventType::kSteal, .cpu = cpu,
                   .task = stolen, .other_cpu = *action.victim});
  }
  const TaskId id = machine_.core(cpu).current()->id;
  core.current = id;
  ++core.generation;
  core.scheduled_at = now_;
  TaskState& state = tasks_.at(id);
  metrics_.ready_to_run_latency_us.Add(static_cast<double>(now_ - state.last_ready_time));
  metrics_.ready_to_run_hist_us.Add(now_ - state.last_ready_time);
  ChargeMigrationPenalty(state, cpu);
  const uint64_t slice = QuantumFor(state);
  Push(now_ + slice, EventKind::kService, cpu, id, core.generation);
  trace_.Record({.time = now_, .type = trace::EventType::kScheduleIn, .cpu = cpu, .task = id});
}

void Simulator::ReconcileAfterBalance() {
  for (CpuId cpu = 0; cpu < machine_.num_cpus(); ++cpu) {
    CoreRunState& core = cores_[cpu];
    const auto& current = machine_.core(cpu).current();
    const TaskId machine_current = current.has_value() ? current->id : kInvalidTask;
    if (machine_current == core.current) {
      // Stolen *ready* tasks do not disturb the running task; nothing to do.
      continue;
    }
    // The only transition the balancer can cause is idle -> running (the
    // thief's ScheduleNext after a successful steal).
    OPTSCHED_CHECK_MSG(core.current == kInvalidTask && machine_current != kInvalidTask,
                       "balancer changed a running task");
    core.current = machine_current;
    ++core.generation;
    core.scheduled_at = now_;
    TaskState& state = tasks_.at(machine_current);
    metrics_.ready_to_run_latency_us.Add(static_cast<double>(now_ - state.last_ready_time));
    metrics_.ready_to_run_hist_us.Add(now_ - state.last_ready_time);
    ChargeMigrationPenalty(state, cpu);
    const uint64_t slice = QuantumFor(state);
    Push(now_ + slice, EventKind::kService, cpu, machine_current, core.generation);
    trace_.Record({.time = now_,
                   .type = trace::EventType::kScheduleIn,
                   .cpu = cpu,
                   .task = machine_current});
    // A stolen task continues on the thief: update its placement record.
    tasks_.at(machine_current).last_cpu = cpu;
  }
  // Ready tasks that migrated also need their last_cpu refreshed; walk the
  // runqueues (cheap: runqueues are short).
  for (CpuId cpu = 0; cpu < machine_.num_cpus(); ++cpu) {
    for (const Task& t : machine_.core(cpu).ready()) {
      tasks_.at(t.id).last_cpu = cpu;
    }
  }
}

void Simulator::OnService(const Event& event) {
  CoreRunState& core = cores_[event.cpu];
  if (event.generation != core.generation || core.current != event.task) {
    return;  // stale event (task exited/blocked/migrated meanwhile)
  }
  TaskState& state = tasks_.at(event.task);
  const uint64_t elapsed = now_ - core.scheduled_at;
  OPTSCHED_CHECK(elapsed <= state.remaining_burst_us);
  OPTSCHED_CHECK(elapsed <= state.remaining_service_us);
  state.remaining_burst_us -= elapsed;
  state.remaining_service_us -= elapsed;
  // Weighted virtual time: heavier tasks age slower.
  state.vruntime += elapsed * kNiceZeroWeight / NiceToWeight(state.spec.nice);

  if (state.remaining_service_us == 0) {
    // Task exits.
    machine_.core_mutable(event.cpu).ClearCurrent();
    core.current = kInvalidTask;
    ++core.generation;
    ++metrics_.tasks_completed;
    ++metrics_.bursts_completed;
    --alive_tasks_;
    metrics_.makespan_us = now_;
    metrics_.completion_latency_us.Add(static_cast<double>(now_ - state.submit_time));
    trace_.Record({.time = now_, .type = trace::EventType::kExit, .cpu = event.cpu,
                   .task = event.task});
    if (on_task_exit_) {
      on_task_exit_(event.task, now_);
    }
    MaybeScheduleIn(event.cpu);
    return;
  }

  if (state.remaining_burst_us == 0) {
    // Burst ("transaction") complete: block, then wake later.
    machine_.core_mutable(event.cpu).ClearCurrent();
    core.current = kInvalidTask;
    ++core.generation;
    ++metrics_.bursts_completed;
    metrics_.burst_latency_us.Add(static_cast<double>(now_ - state.wake_time));
    const uint64_t block_us =
        state.spec.mean_block_us > 0
            ? static_cast<uint64_t>(
                  rng_.NextExponential(1.0 / static_cast<double>(state.spec.mean_block_us)))
            : 0;
    trace_.Record({.time = now_, .type = trace::EventType::kBlock, .cpu = event.cpu,
                   .task = event.task, .detail = static_cast<int64_t>(block_us)});
    Push(now_ + block_us, EventKind::kWake, event.cpu, event.task);
    MaybeScheduleIn(event.cpu);
    return;
  }

  // Timeslice expiry: round-robin within the core.
  ++metrics_.preemptions;
  state.last_ready_time = now_;  // re-queued: waiting again
  std::optional<Task> preempted = machine_.core_mutable(event.cpu).ClearCurrent();
  OPTSCHED_CHECK(preempted.has_value());
  machine_.core_mutable(event.cpu).Enqueue(std::move(*preempted));
  core.current = kInvalidTask;
  ++core.generation;
  trace_.Record({.time = now_, .type = trace::EventType::kScheduleOut, .cpu = event.cpu,
                 .task = event.task});
  MaybeScheduleIn(event.cpu);
}

void Simulator::OnLbTick() {
  ++metrics_.lb_rounds;
  const RoundResult round = balancer_.RunRound(machine_, rng_, config_.lb_round);
  metrics_.migrations += round.successes;
  metrics_.failed_steals += round.failures;
  if (trace_.enabled()) {
    trace_.Record({.time = now_, .type = trace::EventType::kRound, .cpu = 0, .task = 0,
                   .detail = static_cast<int64_t>(round.failures)});
    for (const CoreAction& action : round.actions) {
      if (action.outcome == StealOutcome::kStole) {
        trace_.Record({.time = now_, .type = trace::EventType::kSteal, .cpu = action.thief,
                       .task = action.task.value_or(0), .other_cpu = *action.victim});
      } else if (action.outcome == StealOutcome::kFailedRecheck ||
                 action.outcome == StealOutcome::kFailedNoTask) {
        trace_.Record({.time = now_, .type = trace::EventType::kStealFailed,
                       .cpu = action.thief, .other_cpu = *action.victim});
      }
    }
  }
  ReconcileAfterBalance();
  if (config_.watchdog &&
      watchdog_.ObserveRound(now_, machine_.Loads(LoadMetric::kTaskCount), &trace_)) {
    // Persistent violation: the convergence bound was missed. Escalate with a
    // fault-free global *sequential* round (§4.2's simple context, where
    // steals cannot fail) — the ladder-outermost, stop-the-world rebalance.
    ++metrics_.watchdog_escalations;
    watchdog_.RecordEscalation(now_, &trace_);
    fault::FaultInjector* saved = balancer_.fault_injector();
    balancer_.set_fault_injector(nullptr);
    RoundOptions forced_options;
    forced_options.mode = RoundOptions::Mode::kSequential;
    const RoundResult forced = balancer_.RunRound(machine_, rng_, forced_options);
    balancer_.set_fault_injector(saved);
    metrics_.migrations += forced.successes;
    metrics_.failed_steals += forced.failures;
    ReconcileAfterBalance();
    // Re-observe so the recovery (if the forced round cleared the violation)
    // is classified at escalation time, not one period later.
    watchdog_.ObserveRound(now_, machine_.Loads(LoadMetric::kTaskCount), &trace_);
  }
  if (alive_tasks_ > 0) {
    Push(now_ + config_.lb_period_us, EventKind::kLbTick);
  } else {
    lb_armed_ = false;
  }
}

SimTime Simulator::RunUntil(SimTime until_us) {
  while (!events_.empty()) {
    const Event event = events_.top();
    if (event.time > until_us || event.time > config_.max_time_us) {
      break;
    }
    events_.pop();
    Advance(event.time);
    switch (event.kind) {
      case EventKind::kSubmit: {
        TaskState& state = tasks_.at(event.task);
        CpuId cpu = event.cpu;
        if (!state.explicit_initial_cpu) {
          cpu = ChooseWakeCpu(state);
        }
        trace_.Record({.time = now_, .type = trace::EventType::kSpawn, .cpu = cpu,
                       .task = event.task});
        PlaceTask(event.task, cpu);
        break;
      }
      case EventKind::kWake: {
        TaskState& state = tasks_.at(event.task);
        state.wake_time = now_;
        state.remaining_burst_us =
            state.spec.burst_us > 0
                ? std::min<uint64_t>(state.spec.burst_us, state.remaining_service_us)
                : state.remaining_service_us;
        ++metrics_.wakeups;
        const CpuId cpu = ChooseWakeCpu(state);
        trace_.Record({.time = now_, .type = trace::EventType::kWake, .cpu = cpu,
                       .task = event.task, .other_cpu = state.last_cpu});
        PlaceTask(event.task, cpu);
        break;
      }
      case EventKind::kService:
        OnService(event);
        break;
      case EventKind::kLbTick:
        OnLbTick();
        break;
      case EventKind::kSample:
        sampler_.Sample(now_, machine_);
        if (alive_tasks_ > 0) {
          Push(now_ + config_.sample_period_us, EventKind::kSample);
        } else {
          sample_armed_ = false;
        }
        break;
    }
  }
  const SimTime end = std::min<SimTime>(until_us, config_.max_time_us);
  if (end > now_) {
    Advance(end);
  }
  return now_;
}

SimTime Simulator::Run() {
  while (!events_.empty() && events_.top().time <= config_.max_time_us) {
    RunUntil(events_.top().time);
  }
  Advance(now_);  // flush accounting at the final instant
  if (config_.watchdog) {
    // Classify violation streaks still open at the end of the run: a chaos
    // run that stops mid-streak would otherwise under-report violations.
    watchdog_.Finalize();
  }
  return now_;
}

void Simulator::ExportMetrics(trace::MetricsRegistry& registry) const {
  registry.Add("sim.tasks_submitted", static_cast<double>(metrics_.tasks_submitted));
  registry.Add("sim.tasks_completed", static_cast<double>(metrics_.tasks_completed));
  registry.Add("sim.bursts_completed", static_cast<double>(metrics_.bursts_completed));
  registry.Add("sim.migrations", static_cast<double>(metrics_.migrations));
  registry.Add("sim.failed_steals", static_cast<double>(metrics_.failed_steals));
  registry.Add("sim.lb_rounds", static_cast<double>(metrics_.lb_rounds));
  registry.Add("sim.preemptions", static_cast<double>(metrics_.preemptions));
  registry.Add("sim.wakeups", static_cast<double>(metrics_.wakeups));
  registry.Add("sim.watchdog_escalations", static_cast<double>(metrics_.watchdog_escalations));
  registry.Add("sim.makespan_us", static_cast<double>(metrics_.makespan_us));
  registry.Set("sim.accounting.elapsed_us", static_cast<double>(accounting_.elapsed_us()));
  registry.Set("sim.accounting.wasted_us", static_cast<double>(accounting_.wasted_us()));
  registry.Set("sim.accounting.utilization", accounting_.utilization());
  registry.Set("sim.accounting.wasted_fraction", accounting_.wasted_fraction());
  registry.Add("sim.trace.events", static_cast<double>(trace_.events().size()));
  registry.Add("sim.trace.dropped", static_cast<double>(trace_.dropped()));
  balancer_.stats().ExportTo(registry, "sim.balancer");
  const fault::FaultStats faults = fault_stats();
  registry.Add("sim.faults.stalled_attempts", static_cast<double>(faults.stalled_attempts));
  registry.Add("sim.faults.injected_aborts", static_cast<double>(faults.injected_aborts));
  registry.Add("sim.faults.stale_snapshots", static_cast<double>(faults.stale_snapshots));
  registry.Add("sim.faults.dropped_rounds", static_cast<double>(faults.dropped_rounds));
  watchdog_.stats().ExportTo(registry, "sim.watchdog");
}

}  // namespace optsched::sim
