#include "src/trace/metrics.h"

#include <cmath>
#include <utility>

#include "src/base/str.h"

namespace optsched::trace {

MetricsRegistry& MetricsRegistry::operator=(const MetricsRegistry& other) {
  if (this == &other) {
    return *this;
  }
  // Same two-phase shape as Merge: copy out of `other` first, then swap in
  // under our own lock — the locks are never held together.
  std::map<std::string, double> snapshot = other.values();
  LockGuard guard(lock_);
  values_ = std::move(snapshot);
  return *this;
}

void MetricsRegistry::Set(const std::string& name, double value) {
  LockGuard guard(lock_);
  values_[name] = value;
}

void MetricsRegistry::Add(const std::string& name, double delta) {
  LockGuard guard(lock_);
  values_[name] += delta;
}

double MetricsRegistry::Get(const std::string& name) const {
  LockGuard guard(lock_);
  const auto it = values_.find(name);
  return it == values_.end() ? 0.0 : it->second;
}

bool MetricsRegistry::Has(const std::string& name) const {
  LockGuard guard(lock_);
  return values_.count(name) > 0;
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  // Snapshot first: registries have no global rank, so holding both locks
  // would be an unordered dual acquisition — exactly the discipline bug the
  // runtime's DualLockGuard exists to prevent. (Also makes self-merge safe.)
  const std::map<std::string, double> snapshot = other.values();
  LockGuard guard(lock_);
  for (const auto& [name, value] : snapshot) {
    values_[name] += value;
  }
}

size_t MetricsRegistry::size() const {
  LockGuard guard(lock_);
  return values_.size();
}

std::map<std::string, double> MetricsRegistry::values() const {
  LockGuard guard(lock_);
  return values_;
}

namespace {

// Counters print as integers, ratios keep their fraction.
std::string ValueToString(double v) {
  if (std::nearbyint(v) == v && std::fabs(v) < 9.0e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.6g", v);
}

}  // namespace

std::string MetricsRegistry::ToString() const {
  LockGuard guard(lock_);
  std::string out;
  for (const auto& [name, value] : values_) {
    out += name;
    out += '=';
    out += ValueToString(value);
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  LockGuard guard(lock_);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : values_) {
    out += StrFormat("%s\"%s\":%s", first ? "" : ",", JsonEscape(name).c_str(),
                     ValueToString(value).c_str());
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace optsched::trace
