#include "src/trace/metrics.h"

#include <cmath>

#include "src/base/str.h"

namespace optsched::trace {

void MetricsRegistry::Set(const std::string& name, double value) { values_[name] = value; }

void MetricsRegistry::Add(const std::string& name, double delta) { values_[name] += delta; }

double MetricsRegistry::Get(const std::string& name) const {
  const auto it = values_.find(name);
  return it == values_.end() ? 0.0 : it->second;
}

bool MetricsRegistry::Has(const std::string& name) const { return values_.count(name) > 0; }

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.values_) {
    values_[name] += value;
  }
}

namespace {

// Counters print as integers, ratios keep their fraction.
std::string ValueToString(double v) {
  if (std::nearbyint(v) == v && std::fabs(v) < 9.0e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.6g", v);
}

}  // namespace

std::string MetricsRegistry::ToString() const {
  std::string out;
  for (const auto& [name, value] : values_) {
    out += name;
    out += '=';
    out += ValueToString(value);
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : values_) {
    out += StrFormat("%s\"%s\":%s", first ? "" : ",", JsonEscape(name).c_str(),
                     ValueToString(value).c_str());
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace optsched::trace
