// MetricsRegistry: one named, mergeable view over the counters that are
// otherwise scattered across BalanceStats, StealCounters, WorkerStats,
// FaultStats and WatchdogStats.
//
// Each producer exports its counters under a dotted prefix (e.g.
// "executor.worker3.steals.successes"); registries merge by summing values
// with the same name, so per-worker snapshots aggregate into machine-wide
// totals and repeated runs accumulate. Values are doubles: counters fit
// exactly up to 2^53 and ratios (utilization, wasted fraction) need no
// second type.
//
// Thread safety: internally synchronized — every method may be called from
// any thread (a supervisor exporting mid-run while the main thread merges,
// for example). The map is control-plane state guarded by a base::Mutex and
// checked under clang -Wthread-safety; the scheduler hot path never touches
// a registry.

#ifndef OPTSCHED_SRC_TRACE_METRICS_H_
#define OPTSCHED_SRC_TRACE_METRICS_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"

namespace optsched::trace {

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  // Copying a registry snapshots it (used by Merge to avoid holding two
  // registry locks at once — there is no global registry order to rank them).
  MetricsRegistry(const MetricsRegistry& other) : values_(other.values()) {}
  MetricsRegistry& operator=(const MetricsRegistry& other);

  // Overwrites (or creates) `name`.
  void Set(const std::string& name, double value) OPTSCHED_EXCLUDES(lock_);
  // Adds `delta` to `name`, creating it at zero first.
  void Add(const std::string& name, double delta) OPTSCHED_EXCLUDES(lock_);
  // 0.0 when absent.
  double Get(const std::string& name) const OPTSCHED_EXCLUDES(lock_);
  bool Has(const std::string& name) const OPTSCHED_EXCLUDES(lock_);

  // Value-wise sum: names present in either side survive. Snapshots `other`
  // first, so the two locks are never held together (no ordering to violate).
  void Merge(const MetricsRegistry& other) OPTSCHED_EXCLUDES(lock_);

  size_t size() const OPTSCHED_EXCLUDES(lock_);
  // Consistent point-in-time copy of every value.
  std::map<std::string, double> values() const OPTSCHED_EXCLUDES(lock_);

  // One "name=value" per line, name-sorted (std::map order).
  std::string ToString() const OPTSCHED_EXCLUDES(lock_);
  // Flat JSON object: {"name":value,...}, name-sorted.
  std::string ToJson() const OPTSCHED_EXCLUDES(lock_);

 private:
  mutable Mutex lock_;
  std::map<std::string, double> values_ OPTSCHED_GUARDED_BY(lock_);
};

}  // namespace optsched::trace

#endif  // OPTSCHED_SRC_TRACE_METRICS_H_
