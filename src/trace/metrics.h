// MetricsRegistry: one named, mergeable view over the counters that are
// otherwise scattered across BalanceStats, StealCounters, WorkerStats,
// FaultStats and WatchdogStats.
//
// Each producer exports its counters under a dotted prefix (e.g.
// "executor.worker3.steals.successes"); registries merge by summing values
// with the same name, so per-worker snapshots aggregate into machine-wide
// totals and repeated runs accumulate. Values are doubles: counters fit
// exactly up to 2^53 and ratios (utilization, wasted fraction) need no
// second type.

#ifndef OPTSCHED_SRC_TRACE_METRICS_H_
#define OPTSCHED_SRC_TRACE_METRICS_H_

#include <cstdint>
#include <map>
#include <string>

namespace optsched::trace {

class MetricsRegistry {
 public:
  // Overwrites (or creates) `name`.
  void Set(const std::string& name, double value);
  // Adds `delta` to `name`, creating it at zero first.
  void Add(const std::string& name, double delta);
  // 0.0 when absent.
  double Get(const std::string& name) const;
  bool Has(const std::string& name) const;

  // Value-wise sum: names present in either side survive.
  void Merge(const MetricsRegistry& other);

  size_t size() const { return values_.size(); }
  const std::map<std::string, double>& values() const { return values_; }

  // One "name=value" per line, name-sorted (std::map order).
  std::string ToString() const;
  // Flat JSON object: {"name":value,...}, name-sorted.
  std::string ToJson() const;

 private:
  std::map<std::string, double> values_;
};

}  // namespace optsched::trace

#endif  // OPTSCHED_SRC_TRACE_METRICS_H_
