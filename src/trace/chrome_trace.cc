#include "src/trace/chrome_trace.h"

#include <cstdio>
#include <set>

#include "src/base/str.h"

namespace optsched::trace {

namespace {

// Track grouping in the viewer: scheduling events vs watchdog verdicts.
const char* EventCategory(EventType type) {
  switch (type) {
    case EventType::kViolation:
    case EventType::kEscalation:
    case EventType::kRecovery:
      return "watchdog";
    case EventType::kBackoffPark:
    case EventType::kEscalationWakeup:
      return "backoff";
    case EventType::kCrash:
    case EventType::kRestart:
    case EventType::kEnqueueFault:
    case EventType::kProducerStall:
      return "fault";
    case EventType::kMailboxDrain:
    case EventType::kIngressWakeup:
    case EventType::kAdmissionShed:
    case EventType::kAdmissionSpill:
    case EventType::kAdmissionBlock:
      return "ingress";
    default:
      return "sched";
  }
}

}  // namespace

std::string ToChromeTraceJson(const std::vector<TraceEvent>& events, uint64_t dropped,
                              const std::vector<std::string>& lane_names) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto append = [&](const std::string& row) {
    out += first ? "" : ",";
    out += row;
    first = false;
  };

  std::set<CpuId> lanes;
  for (const TraceEvent& e : events) {
    lanes.insert(e.cpu);
    const char* name = EventTypeName(e.type);
    const char* cat = EventCategory(e.type);
    const std::string args =
        StrFormat("{\"task\":%llu,\"other_cpu\":%u,\"detail\":%lld}",
                  static_cast<unsigned long long>(e.task), e.other_cpu,
                  static_cast<long long>(e.detail));
    if (e.type == EventType::kBackoffPark) {
      // detail = measured park duration in nanoseconds -> dur in microseconds.
      append(StrFormat("{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%llu,"
                       "\"dur\":%.3f,\"pid\":0,\"tid\":%u,\"args\":%s}",
                       name, cat, static_cast<unsigned long long>(e.time),
                       static_cast<double>(e.detail) / 1000.0, e.cpu, args.c_str()));
    } else {
      append(StrFormat("{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                       "\"ts\":%llu,\"pid\":0,\"tid\":%u,\"args\":%s}",
                       name, cat, static_cast<unsigned long long>(e.time), e.cpu, args.c_str()));
    }
  }
  append("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
         "\"args\":{\"name\":\"optsched\"}}");
  for (CpuId lane : lanes) {
    const std::string label = lane < lane_names.size()
                                  ? lane_names[lane]
                                  : StrFormat("lane %u", lane);
    append(StrFormat("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%u,"
                     "\"args\":{\"name\":\"%s\"}}",
                     lane, JsonEscape(label).c_str()));
  }
  out += StrFormat("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":%llu}}",
                   static_cast<unsigned long long>(dropped));
  return out;
}

bool WriteStringToFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (!ok && written != content.size()) {
    std::fclose(f);
  }
  return ok;
}

}  // namespace optsched::trace
