// Event tracing for simulator and runtime runs.
//
// Every scheduling-relevant transition is recorded with a timestamp so that
// idle-while-overloaded episodes — the paper's motivating pathology ("cores
// idle while threads are waiting in runqueues", Lozi et al.) — can be
// detected, quantified and rendered after the fact.

#ifndef OPTSCHED_SRC_TRACE_TRACE_H_
#define OPTSCHED_SRC_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sched/task.h"
#include "src/topology/topology.h"

namespace optsched::trace {

using SimTime = uint64_t;  // microseconds

enum class EventType {
  kSpawn,        // task submitted to the machine
  kScheduleIn,   // task became a core's current
  kScheduleOut,  // task preempted back to the runqueue
  kBlock,        // task blocked (I/O etc.)
  kWake,         // task woke and was placed on a runqueue
  kExit,         // task completed its service
  kSteal,        // task migrated by a successful steal
  kStealFailed,  // a steal attempt failed (re-check or no eligible task)
  kRound,        // a load-balancing round / tick executed
  kViolation,    // watchdog: a core's idle-while-overloaded streak turned persistent
  kEscalation,   // watchdog: forced global balancing round in response
  kRecovery,     // watchdog: a persistent violation cleared
  // Real-thread executor events (recorded into per-worker SPSC rings):
  kBackoffPark,       // bounded backoff park; detail = measured duration (ns)
  kEscalationWakeup,  // a park cut short by a watchdog escalation epoch bump
  kCrash,             // injected worker crash (thread exits)
  kRestart,           // supervisor respawned a crashed worker slot
  // Serving-ingress events (docs/serving.md). Executor side:
  kMailboxDrain,    // owner moved a batch mailbox->runqueue; detail = items
  kIngressWakeup,   // a park cut short by a submit/mailbox wakeup-epoch bump
  // Router side (per-shard buffers; cpu = home worker, task = item id):
  kAdmissionShed,   // item dropped by the shed policy; detail = mailbox depth
  kAdmissionSpill,  // item admitted to a sibling; other_cpu = actual worker
  kAdmissionBlock,  // block-with-deadline timed out -> shed; detail = waited us
  kEnqueueFault,    // injected TryPush failure (fault plan, not real overload)
  kProducerStall,   // injected producer stall; detail = stall duration us
  // Work-dealing events (docs/runtime.md#work-dealing). Dealer side:
  kDealPush,    // owner pushed a dealt batch; other_cpu = recipient,
                // detail = items (mailbox), task = items spilled directly
                // into the recipient's runqueue when its mailbox was full
  kDealReturn,  // refused remainder went back on the dealer's own queue;
                // detail = items
  // Recipient side:
  kDealDrain,   // owner moved a dealt batch mailbox->runqueue; detail = items
};

const char* EventTypeName(EventType type);

struct TraceEvent {
  SimTime time = 0;
  EventType type = EventType::kSpawn;
  CpuId cpu = 0;       // acting core (thief for steals)
  TaskId task = 0;     // 0 when not applicable
  CpuId other_cpu = 0; // victim for steals, previous cpu for wakes
  int64_t detail = 0;  // free-form (e.g. failures in a round)
};

class TraceBuffer {
 public:
  // capacity 0 disables recording (Record becomes a no-op).
  explicit TraceBuffer(size_t capacity = 1 << 20);

  void Record(TraceEvent event);
  bool enabled() const { return capacity_ > 0; }

  const std::vector<TraceEvent>& events() const { return events_; }
  uint64_t dropped() const { return dropped_; }
  void Clear();

  // Events of one type, in time order.
  std::vector<TraceEvent> Filter(EventType type) const;

  // CSV with a header row; loadable into any analysis tool.
  std::string ToCsv() const;

 private:
  size_t capacity_;
  std::vector<TraceEvent> events_;
  uint64_t dropped_ = 0;
};

}  // namespace optsched::trace

#endif  // OPTSCHED_SRC_TRACE_TRACE_H_
