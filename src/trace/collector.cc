#include "src/trace/collector.h"

#include <algorithm>

#include "src/base/check.h"

namespace optsched::trace {

TraceCollector::TraceCollector(uint32_t num_rings, size_t ring_capacity) {
  OPTSCHED_CHECK(num_rings > 0);
  rings_.reserve(num_rings);
  for (uint32_t i = 0; i < num_rings; ++i) {
    rings_.push_back(std::make_unique<SpscTraceRing>(ring_capacity));
  }
}

SpscTraceRing& TraceCollector::ring(uint32_t index) {
  OPTSCHED_CHECK(index < rings_.size());
  return *rings_[index];
}

void TraceCollector::Collect() {
  LockGuard guard(consumer_lock_);
  for (const auto& ring : rings_) {
    if (ring->Drain(merged_) > 0) {
      sorted_ = false;
    }
  }
}

const std::vector<TraceEvent>& TraceCollector::SortedEvents() {
  Collect();
  LockGuard guard(consumer_lock_);
  if (!sorted_) {
    // Stable: events with equal timestamps keep their per-ring push order.
    std::stable_sort(merged_.begin(), merged_.end(),
                     [](const TraceEvent& a, const TraceEvent& b) { return a.time < b.time; });
    sorted_ = true;
  }
  return merged_;
}

uint64_t TraceCollector::total_dropped() const {
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->dropped();
  }
  return total;
}

}  // namespace optsched::trace
