// Chrome trace-event JSON exporter (chrome://tracing / Perfetto loadable),
// alongside TraceBuffer::ToCsv.
//
// Every TraceEvent maps to one JSON trace event: the acting core/worker is
// the tid, the event time (microseconds) the ts. Backoff parks carry their
// measured duration (TraceEvent::detail, nanoseconds) and export as complete
// ("X") duration slices so parks render as blocks on the worker's track;
// everything else exports as a thread-scoped instant ("i"). Task id, peer
// cpu and detail ride along in args. Per-lane thread-name metadata rows make
// the tracks readable; the total ring drop count is reported under
// otherData.dropped_events so a truncated trace is never mistaken for a
// complete one.

#ifndef OPTSCHED_SRC_TRACE_CHROME_TRACE_H_
#define OPTSCHED_SRC_TRACE_CHROME_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace optsched::trace {

// `lane_names[i]` labels tid i ("worker 3", "supervisor", ...); lanes beyond
// the vector fall back to "lane <tid>". `dropped` is the number of events
// lost to full rings (0 for an unbounded buffer).
std::string ToChromeTraceJson(const std::vector<TraceEvent>& events, uint64_t dropped = 0,
                              const std::vector<std::string>& lane_names = {});

// Writes `content` to `path`; returns false (and leaves no partial file
// guarantee) on I/O failure.
bool WriteStringToFile(const std::string& path, const std::string& content);

}  // namespace optsched::trace

#endif  // OPTSCHED_SRC_TRACE_CHROME_TRACE_H_
