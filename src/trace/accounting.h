// Time-integral accounting of core states: per-core busy/idle time and the
// machine-level "wasted core" time — the total time during which at least
// one core was idle while at least one other core was overloaded. This is
// the quantity the paper's work-conservation property drives to zero (a
// work-conserving scheduler bounds each episode; a broken one accumulates
// wasted time without bound).

#ifndef OPTSCHED_SRC_TRACE_ACCOUNTING_H_
#define OPTSCHED_SRC_TRACE_ACCOUNTING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sched/machine_state.h"
#include "src/trace/trace.h"

namespace optsched::trace {

class TimeAccountant {
 public:
  explicit TimeAccountant(uint32_t num_cpus);

  // Integrates the interval [last_time, now] using `machine` as the state
  // that held throughout it. Call at every event time BEFORE mutating the
  // machine (between events the state is constant, so the pre-mutation state
  // at `now` is exactly the state of the whole interval), and once more at
  // the end of the run.
  void AdvanceTo(SimTime now, const MachineState& machine);

  SimTime busy_us(CpuId cpu) const;
  SimTime idle_us(CpuId cpu) const;
  SimTime total_busy_us() const;
  SimTime total_idle_us() const;
  // Time with >= 1 idle core and >= 1 overloaded core simultaneously.
  SimTime wasted_us() const { return wasted_us_; }
  SimTime elapsed_us() const { return last_time_; }

  // Fraction of total core-time spent busy, in [0, 1].
  double utilization() const;
  // Fraction of wall time that was wasted (idle-while-overloaded), in [0, 1].
  double wasted_fraction() const;

  std::string ToString() const;

 private:
  SimTime last_time_ = 0;
  bool primed_ = false;
  uint32_t num_cpus_;
  std::vector<SimTime> busy_us_;
  std::vector<SimTime> idle_us_;
  SimTime wasted_us_ = 0;
};

// Episode detector over a recorded load-sample series: returns the episodes
// (start, end) during which some core was idle while another was overloaded.
struct WastedEpisode {
  SimTime start_us = 0;
  SimTime end_us = 0;
};

class LoadSampler {
 public:
  void Sample(SimTime now, const MachineState& machine);
  const std::vector<std::pair<SimTime, std::vector<int64_t>>>& samples() const {
    return samples_;
  }
  std::vector<WastedEpisode> WastedEpisodes() const;

  // ASCII timeline: one row per CPU, one column per sample.
  // '.' idle, '#' busy (1 task), digit/'+' queue depth.
  std::string RenderTimeline(size_t max_columns = 100) const;

 private:
  std::vector<std::pair<SimTime, std::vector<int64_t>>> samples_;
};

}  // namespace optsched::trace

#endif  // OPTSCHED_SRC_TRACE_ACCOUNTING_H_
