// Time-integral accounting of core states: per-core busy/idle time and the
// machine-level "wasted core" time — the total time during which at least
// one core was idle while at least one other core was overloaded. This is
// the quantity the paper's work-conservation property drives to zero (a
// work-conserving scheduler bounds each episode; a broken one accumulates
// wasted time without bound).

#ifndef OPTSCHED_SRC_TRACE_ACCOUNTING_H_
#define OPTSCHED_SRC_TRACE_ACCOUNTING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sched/machine_state.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"

namespace optsched::trace {

class TimeAccountant {
 public:
  explicit TimeAccountant(uint32_t num_cpus);

  // Integrates the interval [last_time, now] using `machine` as the state
  // that held throughout it. Call at every event time BEFORE mutating the
  // machine (between events the state is constant, so the pre-mutation state
  // at `now` is exactly the state of the whole interval), and once more at
  // the end of the run.
  void AdvanceTo(SimTime now, const MachineState& machine);

  SimTime busy_us(CpuId cpu) const;
  SimTime idle_us(CpuId cpu) const;
  SimTime total_busy_us() const;
  SimTime total_idle_us() const;
  // Time with >= 1 idle core and >= 1 overloaded core simultaneously.
  SimTime wasted_us() const { return wasted_us_; }
  // Observed wall time: last AdvanceTo minus the priming AdvanceTo. An
  // accountant primed at t > 0 has seen nothing before t, so that span must
  // not count (it used to, understating wasted_fraction).
  SimTime elapsed_us() const { return last_time_ - first_time_; }

  // Fraction of total core-time spent busy, in [0, 1].
  double utilization() const;
  // Fraction of wall time that was wasted (idle-while-overloaded), in [0, 1].
  double wasted_fraction() const;

  std::string ToString() const;

 private:
  SimTime first_time_ = 0;  // time of the priming AdvanceTo
  SimTime last_time_ = 0;
  bool primed_ = false;
  uint32_t num_cpus_;
  std::vector<SimTime> busy_us_;
  std::vector<SimTime> idle_us_;
  SimTime wasted_us_ = 0;
};

// Episode detector over a recorded load-sample series: returns the episodes
// (start, end) during which some core was idle while another was overloaded.
struct WastedEpisode {
  SimTime start_us = 0;
  SimTime end_us = 0;
};

class LoadSampler {
 public:
  void Sample(SimTime now, const MachineState& machine);
  const std::vector<std::pair<SimTime, std::vector<int64_t>>>& samples() const {
    return samples_;
  }
  std::vector<WastedEpisode> WastedEpisodes() const;

  // ASCII timeline: one row per CPU, one column per sample.
  // '.' idle, '#' busy (1 task), digit/'+' queue depth.
  std::string RenderTimeline(size_t max_columns = 100) const;

 private:
  std::vector<std::pair<SimTime, std::vector<int64_t>>> samples_;
};

// Work-conservation watchdog: the runtime counterpart of the verifier's
// convergence bound.
//
// The paper's property guarantees an N such that after N balancing rounds no
// core is idle while another is overloaded. The watchdog observes the load
// vector once per round and tracks, per core, the streak of consecutive
// rounds the core spent idle while some other core was overloaded. A streak
// at or below the threshold is a *transient* violation — expected under an
// optimistic scheduler (failed steals, stale snapshots, injected faults). A
// streak that exceeds the threshold is a *persistent* violation: the
// convergence bound was missed at runtime, so the caller should escalate
// (force a reliable, ladder-outermost balancing round) and the event stream
// records violation/escalation/recovery markers.
//
// Pick the threshold from the verifier's worst-case N where available
// (CheckSequentialConvergence / CheckConcurrentConvergence report it), with
// headroom for fault rates; DefaultThreshold gives 2*num_cpus, a safe bound
// for the proven policies whose N never exceeds the core count in the
// verified envelopes.
struct WatchdogConfig {
  // Streaks strictly above this many consecutive rounds are persistent.
  uint64_t threshold_rounds = 0;  // 0 = DefaultThreshold(num_cpus)
};

struct WatchdogStats {
  uint64_t observations = 0;
  // Streak endings at or below the threshold (the expected, benign kind).
  uint64_t transient_violations = 0;
  // Streaks that crossed the threshold (counted once per crossing).
  uint64_t persistent_violations = 0;
  // Persistent streaks that subsequently cleared.
  uint64_t recoveries = 0;
  // Escalations the caller reported back via RecordEscalation.
  uint64_t escalations = 0;
  uint64_t max_streak_rounds = 0;

  // Exports every counter as "<prefix>.<name>" into the registry.
  void ExportTo(MetricsRegistry& registry, const std::string& prefix) const;
  std::string ToString() const;
};

class ConservationWatchdog {
 public:
  explicit ConservationWatchdog(uint32_t num_cpus, WatchdogConfig config = {});

  static uint64_t DefaultThreshold(uint32_t num_cpus) { return 2ull * num_cpus; }

  uint64_t threshold_rounds() const { return threshold_; }

  // Feed one balancing round's end-state loads (policy metric irrelevant:
  // idle == 0, overloaded >= 2). Returns true iff some core's streak crossed
  // the threshold at THIS observation — the caller should escalate. Records
  // kViolation / kRecovery events into `trace` when given.
  bool ObserveRound(SimTime now, const std::vector<int64_t>& loads,
                    TraceBuffer* trace = nullptr);

  // Ingress-aware variant (docs/serving.md): `mailbox_pending[cpu]` is the
  // admitted-but-undrained mailbox depth for `cpu` (empty = no ingress). A
  // core that looks idle but has mailbox-resident work is NOT violating work
  // conservation — the items are already assigned to it and will enter its
  // runqueue at its next drain, and no other core could legally steal them
  // from the mailbox anyway. Without this, sustained overload at the ingress
  // edge reads as a persistent conservation violation and the watchdog
  // escalates against a scheduler that is doing nothing wrong.
  // `any_overloaded` still considers runqueue loads only: mailbox backlog is
  // not stealable, so it cannot obligate OTHER cores.
  bool ObserveRound(SimTime now, const std::vector<int64_t>& loads,
                    const std::vector<int64_t>& mailbox_pending, TraceBuffer* trace);

  // The caller escalated (forced a global round); tallies and traces it.
  void RecordEscalation(SimTime now, TraceBuffer* trace = nullptr);

  // End-of-run classification: a streak still open at shutdown was a real
  // violation even though no later round observed it ending. Non-persistent
  // open streaks count as transient; persistent ones stay counted (from
  // their crossing) but do NOT count as recovered. Idempotent — every
  // streak is cleared, so a second call is a no-op.
  void Finalize();

  const WatchdogStats& stats() const { return stats_; }
  uint64_t streak(CpuId cpu) const;
  // True while at least one core is in a persistent violation.
  bool in_violation() const { return persistent_cores_ > 0; }

 private:
  uint32_t num_cpus_;
  uint64_t threshold_;
  std::vector<uint64_t> streak_;
  std::vector<bool> persistent_;
  uint32_t persistent_cores_ = 0;
  WatchdogStats stats_;
};

}  // namespace optsched::trace

#endif  // OPTSCHED_SRC_TRACE_ACCOUNTING_H_
