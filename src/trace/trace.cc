#include "src/trace/trace.h"

#include "src/base/str.h"

namespace optsched::trace {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kSpawn: return "spawn";
    case EventType::kScheduleIn: return "schedule-in";
    case EventType::kScheduleOut: return "schedule-out";
    case EventType::kBlock: return "block";
    case EventType::kWake: return "wake";
    case EventType::kExit: return "exit";
    case EventType::kSteal: return "steal";
    case EventType::kStealFailed: return "steal-failed";
    case EventType::kRound: return "round";
    case EventType::kViolation: return "violation";
    case EventType::kEscalation: return "escalation";
    case EventType::kRecovery: return "recovery";
    case EventType::kBackoffPark: return "backoff-park";
    case EventType::kEscalationWakeup: return "escalation-wakeup";
    case EventType::kCrash: return "crash";
    case EventType::kRestart: return "restart";
    case EventType::kMailboxDrain: return "mailbox-drain";
    case EventType::kIngressWakeup: return "ingress-wakeup";
    case EventType::kAdmissionShed: return "admission-shed";
    case EventType::kAdmissionSpill: return "admission-spill";
    case EventType::kAdmissionBlock: return "admission-block";
    case EventType::kEnqueueFault: return "enqueue-fault";
    case EventType::kProducerStall: return "producer-stall";
    case EventType::kDealPush: return "deal-push";
    case EventType::kDealReturn: return "deal-return";
    case EventType::kDealDrain: return "deal-drain";
  }
  return "?";
}

TraceBuffer::TraceBuffer(size_t capacity) : capacity_(capacity) {
  events_.reserve(std::min<size_t>(capacity, 4096));
}

void TraceBuffer::Record(TraceEvent event) {
  if (capacity_ == 0) {
    return;
  }
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
}

void TraceBuffer::Clear() {
  events_.clear();
  dropped_ = 0;
}

std::vector<TraceEvent> TraceBuffer::Filter(EventType type) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.type == type) {
      out.push_back(e);
    }
  }
  return out;
}

std::string TraceBuffer::ToCsv() const {
  std::string out = "time_us,type,cpu,task,other_cpu,detail\n";
  for (const TraceEvent& e : events_) {
    out += StrFormat("%llu,%s,%u,%llu,%u,%lld\n", static_cast<unsigned long long>(e.time),
                     EventTypeName(e.type), e.cpu, static_cast<unsigned long long>(e.task),
                     e.other_cpu, static_cast<long long>(e.detail));
  }
  return out;
}

}  // namespace optsched::trace
