#include "src/trace/ring.h"

namespace optsched::trace {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 2;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

}  // namespace

SpscTraceRing::SpscTraceRing(size_t capacity)
    : slots_(RoundUpPow2(capacity < 2 ? 2 : capacity)), mask_(slots_.size() - 1) {}

bool SpscTraceRing::TryPush(const TraceEvent& event) {
  const uint64_t tail = tail_.load(std::memory_order_relaxed);  // order: spsc-own-cursor
  const uint64_t head = head_.load(std::memory_order_acquire);
  if (tail - head > mask_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);  // order: reporting-counter
    return false;
  }
  slots_[tail & mask_] = event;
  tail_.store(tail + 1, std::memory_order_release);
  return true;
}

size_t SpscTraceRing::Drain(std::vector<TraceEvent>& out) {
  const uint64_t head = head_.load(std::memory_order_relaxed);  // order: spsc-own-cursor
  const uint64_t tail = tail_.load(std::memory_order_acquire);
  for (uint64_t i = head; i != tail; ++i) {
    out.push_back(slots_[i & mask_]);
  }
  head_.store(tail, std::memory_order_release);
  return static_cast<size_t>(tail - head);
}

size_t SpscTraceRing::size() const {
  const uint64_t tail = tail_.load(std::memory_order_acquire);
  const uint64_t head = head_.load(std::memory_order_acquire);
  return static_cast<size_t>(tail - head);
}

}  // namespace optsched::trace
