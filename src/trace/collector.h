// Collector for per-worker SPSC trace rings: merges the rings into one
// time-ordered event stream and totals their drop counts.
//
// Ownership/threading contract: each ring has exactly one producer (a worker
// thread, identified by its ring index) and the rings are SPSC — but the
// CONSUMER side is serialized by an internal mutex, so Collect() may be
// called from any thread (a supervisor at poll cadence, the main thread at
// teardown) without the callers coordinating. The merged stream is sorted by
// event time with a stable tie-break, so events from different workers
// interleave in wall-clock order even though each ring is drained
// independently.

#ifndef OPTSCHED_SRC_TRACE_COLLECTOR_H_
#define OPTSCHED_SRC_TRACE_COLLECTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/trace/ring.h"
#include "src/trace/trace.h"

namespace optsched::trace {

class TraceCollector {
 public:
  // `num_rings` independent rings (one per producer thread), each with
  // `ring_capacity` slots (rounded up to a power of two).
  TraceCollector(uint32_t num_rings, size_t ring_capacity);

  uint32_t num_rings() const { return static_cast<uint32_t>(rings_.size()); }
  SpscTraceRing& ring(uint32_t index);

  // Drains every ring into the accumulated stream. Cheap when nothing is
  // pending; call periodically under long runs so fixed-capacity rings don't
  // overflow, and once more after the producers stopped.
  void Collect() OPTSCHED_EXCLUDES(consumer_lock_);

  // Collect(), then the full accumulated stream sorted by time. The returned
  // reference is stable only until the next Collect() — take it after the
  // producers stopped (the executor does so post-join).
  const std::vector<TraceEvent>& SortedEvents() OPTSCHED_EXCLUDES(consumer_lock_);

  // Sum of every ring's drop count (events lost to full rings).
  uint64_t total_dropped() const;

 private:
  std::vector<std::unique_ptr<SpscTraceRing>> rings_;
  // Serializes the consumer side: concurrent Collect() calls would violate
  // the rings' single-consumer precondition and race on the merge buffer.
  Mutex consumer_lock_;
  std::vector<TraceEvent> merged_ OPTSCHED_GUARDED_BY(consumer_lock_);
  bool sorted_ OPTSCHED_GUARDED_BY(consumer_lock_) = true;
};

}  // namespace optsched::trace

#endif  // OPTSCHED_SRC_TRACE_COLLECTOR_H_
