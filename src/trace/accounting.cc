#include "src/trace/accounting.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/base/str.h"

namespace optsched::trace {

TimeAccountant::TimeAccountant(uint32_t num_cpus)
    : num_cpus_(num_cpus), busy_us_(num_cpus, 0), idle_us_(num_cpus, 0) {}

void TimeAccountant::AdvanceTo(SimTime now, const MachineState& machine) {
  OPTSCHED_CHECK(machine.num_cpus() == num_cpus_);
  if (primed_) {
    OPTSCHED_CHECK_MSG(now >= last_time_, "time must be monotone");
    const SimTime delta = now - last_time_;
    if (delta > 0) {
      bool any_idle = false;
      bool any_overloaded = false;
      for (CpuId cpu = 0; cpu < num_cpus_; ++cpu) {
        const bool busy = machine.core(cpu).current().has_value();
        (busy ? busy_us_[cpu] : idle_us_[cpu]) += delta;
        any_idle |= machine.IsIdle(cpu);
        any_overloaded |= machine.IsOverloaded(cpu);
      }
      if (any_idle && any_overloaded) {
        wasted_us_ += delta;
      }
    }
  } else {
    first_time_ = now;
  }
  last_time_ = now;
  primed_ = true;
}

SimTime TimeAccountant::busy_us(CpuId cpu) const {
  OPTSCHED_CHECK(cpu < busy_us_.size());
  return busy_us_[cpu];
}

SimTime TimeAccountant::idle_us(CpuId cpu) const {
  OPTSCHED_CHECK(cpu < idle_us_.size());
  return idle_us_[cpu];
}

SimTime TimeAccountant::total_busy_us() const {
  SimTime total = 0;
  for (SimTime t : busy_us_) {
    total += t;
  }
  return total;
}

SimTime TimeAccountant::total_idle_us() const {
  SimTime total = 0;
  for (SimTime t : idle_us_) {
    total += t;
  }
  return total;
}

double TimeAccountant::utilization() const {
  const SimTime total = total_busy_us() + total_idle_us();
  return total == 0 ? 0.0 : static_cast<double>(total_busy_us()) / static_cast<double>(total);
}

double TimeAccountant::wasted_fraction() const {
  // Divide by the span actually observed, not absolute time: an accountant
  // primed at t > 0 would otherwise count [0, t) as non-wasted time it never
  // saw, understating the fraction.
  const SimTime elapsed = elapsed_us();
  return elapsed == 0 ? 0.0
                      : static_cast<double>(wasted_us_) / static_cast<double>(elapsed);
}

std::string TimeAccountant::ToString() const {
  return StrFormat("accounting{elapsed=%lluus util=%.2f%% wasted=%lluus (%.2f%%)}",
                   static_cast<unsigned long long>(elapsed_us()), utilization() * 100.0,
                   static_cast<unsigned long long>(wasted_us_), wasted_fraction() * 100.0);
}

void LoadSampler::Sample(SimTime now, const MachineState& machine) {
  samples_.emplace_back(now, machine.Loads(LoadMetric::kTaskCount));
}

std::vector<WastedEpisode> LoadSampler::WastedEpisodes() const {
  std::vector<WastedEpisode> episodes;
  bool in_episode = false;
  for (const auto& [time, loads] : samples_) {
    bool any_idle = false;
    bool any_overloaded = false;
    for (int64_t l : loads) {
      any_idle |= (l == 0);
      any_overloaded |= (l >= 2);
    }
    const bool wasted = any_idle && any_overloaded;
    if (wasted && !in_episode) {
      episodes.push_back(WastedEpisode{.start_us = time, .end_us = time});
      in_episode = true;
    } else if (wasted && in_episode) {
      episodes.back().end_us = time;
    } else if (!wasted) {
      in_episode = false;
    }
  }
  return episodes;
}

void WatchdogStats::ExportTo(MetricsRegistry& registry, const std::string& prefix) const {
  registry.Add(prefix + ".observations", static_cast<double>(observations));
  registry.Add(prefix + ".transient_violations", static_cast<double>(transient_violations));
  registry.Add(prefix + ".persistent_violations", static_cast<double>(persistent_violations));
  registry.Add(prefix + ".recoveries", static_cast<double>(recoveries));
  registry.Add(prefix + ".escalations", static_cast<double>(escalations));
  registry.Add(prefix + ".max_streak_rounds", static_cast<double>(max_streak_rounds));
}

std::string WatchdogStats::ToString() const {
  return StrFormat(
      "watchdog{observed=%llu transient=%llu persistent=%llu escalations=%llu "
      "recoveries=%llu max_streak=%llu}",
      static_cast<unsigned long long>(observations),
      static_cast<unsigned long long>(transient_violations),
      static_cast<unsigned long long>(persistent_violations),
      static_cast<unsigned long long>(escalations),
      static_cast<unsigned long long>(recoveries),
      static_cast<unsigned long long>(max_streak_rounds));
}

ConservationWatchdog::ConservationWatchdog(uint32_t num_cpus, WatchdogConfig config)
    : num_cpus_(num_cpus),
      threshold_(config.threshold_rounds > 0 ? config.threshold_rounds
                                             : DefaultThreshold(num_cpus)),
      streak_(num_cpus, 0),
      persistent_(num_cpus, false) {
  OPTSCHED_CHECK(num_cpus > 0);
}

bool ConservationWatchdog::ObserveRound(SimTime now, const std::vector<int64_t>& loads,
                                        TraceBuffer* trace) {
  return ObserveRound(now, loads, std::vector<int64_t>{}, trace);
}

bool ConservationWatchdog::ObserveRound(SimTime now, const std::vector<int64_t>& loads,
                                        const std::vector<int64_t>& mailbox_pending,
                                        TraceBuffer* trace) {
  OPTSCHED_CHECK(loads.size() == num_cpus_);
  OPTSCHED_CHECK(mailbox_pending.empty() || mailbox_pending.size() == num_cpus_);
  ++stats_.observations;
  bool any_overloaded = false;
  for (int64_t l : loads) {
    any_overloaded |= (l >= 2);
  }
  bool escalate = false;
  for (CpuId cpu = 0; cpu < num_cpus_; ++cpu) {
    // Admitted-but-undrained mailbox work counts as pending for its owner:
    // an "idle" core about to drain is converging, not violating.
    const bool has_pending = !mailbox_pending.empty() && mailbox_pending[cpu] > 0;
    const bool violating = loads[cpu] == 0 && !has_pending && any_overloaded;
    if (violating) {
      ++streak_[cpu];
      stats_.max_streak_rounds = std::max(stats_.max_streak_rounds, streak_[cpu]);
      if (!persistent_[cpu] && streak_[cpu] > threshold_) {
        persistent_[cpu] = true;
        ++persistent_cores_;
        ++stats_.persistent_violations;
        escalate = true;
        if (trace != nullptr) {
          trace->Record({.time = now, .type = EventType::kViolation, .cpu = cpu,
                         .detail = static_cast<int64_t>(streak_[cpu])});
        }
      }
      continue;
    }
    if (streak_[cpu] > 0) {
      // Streak ended: classify what it was.
      if (persistent_[cpu]) {
        persistent_[cpu] = false;
        --persistent_cores_;
        ++stats_.recoveries;
        if (trace != nullptr) {
          trace->Record({.time = now, .type = EventType::kRecovery, .cpu = cpu,
                         .detail = static_cast<int64_t>(streak_[cpu])});
        }
      } else {
        ++stats_.transient_violations;
      }
      streak_[cpu] = 0;
    }
  }
  return escalate;
}

void ConservationWatchdog::RecordEscalation(SimTime now, TraceBuffer* trace) {
  ++stats_.escalations;
  if (trace != nullptr) {
    trace->Record({.time = now, .type = EventType::kEscalation, .cpu = 0,
                   .detail = static_cast<int64_t>(stats_.persistent_violations)});
  }
}

void ConservationWatchdog::Finalize() {
  for (CpuId cpu = 0; cpu < num_cpus_; ++cpu) {
    if (streak_[cpu] == 0) {
      continue;
    }
    if (persistent_[cpu]) {
      // Counted at its crossing; it never recovered, so no recovery tally.
      persistent_[cpu] = false;
      --persistent_cores_;
    } else {
      ++stats_.transient_violations;
    }
    streak_[cpu] = 0;
  }
}

uint64_t ConservationWatchdog::streak(CpuId cpu) const {
  OPTSCHED_CHECK(cpu < streak_.size());
  return streak_[cpu];
}

std::string LoadSampler::RenderTimeline(size_t max_columns) const {
  if (samples_.empty()) {
    return "";
  }
  const size_t num_cpus = samples_.front().second.size();
  const size_t stride = std::max<size_t>(1, samples_.size() / max_columns);
  std::string out;
  for (size_t cpu = 0; cpu < num_cpus; ++cpu) {
    out += StrFormat("cpu%-3zu ", cpu);
    for (size_t s = 0; s < samples_.size(); s += stride) {
      const int64_t load = samples_[s].second[cpu];
      char c = '.';
      if (load == 1) {
        c = '#';
      } else if (load >= 2 && load <= 9) {
        c = static_cast<char>('0' + load);
      } else if (load > 9) {
        c = '+';
      }
      out.push_back(c);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace optsched::trace
