// Lock-free single-producer/single-consumer trace ring.
//
// The original TraceBuffer is an unsynchronized std::vector, usable only from
// the single-threaded simulator. Real executor threads need to record steal
// outcomes, backoff parks and crashes *without* adding any lock to the
// selection fast path we are reasoning about — otherwise the act of observing
// the optimistic protocol would serialize it. Each worker therefore owns one
// fixed-capacity SPSC ring: the worker is the only producer, the collector
// (src/trace/collector.h) the only consumer. A full ring drops the event and
// counts the drop instead of blocking or allocating, so the recording path is
// wait-free and allocation-free after construction.
//
// Memory ordering: the producer publishes a slot with a release store of the
// tail cursor; the consumer acquires the tail before reading slots. Head and
// tail live on separate cache lines so the producer and consumer do not
// false-share.

#ifndef OPTSCHED_SRC_TRACE_RING_H_
#define OPTSCHED_SRC_TRACE_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/trace/trace.h"

namespace optsched::trace {

class SpscTraceRing {
 public:
  // Capacity is rounded up to a power of two; minimum 2 slots.
  explicit SpscTraceRing(size_t capacity = 1 << 14);

  SpscTraceRing(const SpscTraceRing&) = delete;
  SpscTraceRing& operator=(const SpscTraceRing&) = delete;

  // Producer side. Wait-free; a full ring counts a drop and returns false.
  bool TryPush(const TraceEvent& event);

  // Consumer side: appends every currently visible event to `out` in push
  // order and frees the slots. Returns the number of events drained.
  size_t Drain(std::vector<TraceEvent>& out);

  // Events rejected by a full ring (readable from any thread).
  // order: reporting-counter
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // Events currently buffered (approximate when the producer is live).
  size_t size() const;

  size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<TraceEvent> slots_;
  size_t mask_;
  alignas(64) std::atomic<uint64_t> head_{0};     // consumer cursor
  alignas(64) std::atomic<uint64_t> tail_{0};     // producer cursor
  alignas(64) std::atomic<uint64_t> dropped_{0};  // producer-side drop count
};

}  // namespace optsched::trace

#endif  // OPTSCHED_SRC_TRACE_RING_H_
