#include "src/sched/task.h"

#include "src/base/check.h"
#include "src/base/str.h"

namespace optsched {

namespace {

// kernel/sched/core.c sched_prio_to_weight[], nice -20 (index 0) .. 19 (39).
constexpr uint32_t kPrioToWeight[40] = {
    88761, 71755, 56483, 46273, 36291,  // -20 .. -16
    29154, 23254, 18705, 14949, 11916,  // -15 .. -11
    9548,  7620,  6100,  4904,  3906,   // -10 .. -6
    3121,  2501,  1991,  1586,  1277,   // -5 .. -1
    1024,  820,   655,   526,   423,    // 0 .. 4
    335,   272,   215,   172,   137,    // 5 .. 9
    110,   87,    70,    56,    45,     // 10 .. 14
    36,    29,    23,    18,    15,     // 15 .. 19
};

}  // namespace

uint32_t NiceToWeight(int nice) {
  OPTSCHED_CHECK(nice >= kMinNice && nice <= kMaxNice);
  return kPrioToWeight[nice - kMinNice];
}

std::string Task::ToString() const {
  return StrFormat("task{id=%llu nice=%d weight=%u node=%u}",
                   static_cast<unsigned long long>(id), nice, weight, home_node);
}

uint64_t MaskOf(std::initializer_list<CpuId> cpus) {
  uint64_t mask = 0;
  for (CpuId cpu : cpus) {
    OPTSCHED_CHECK_MSG(cpu < 64, "affinity masks support CPUs 0..63");
    mask |= uint64_t{1} << cpu;
  }
  return mask;
}

Task MakeTask(TaskId id, int nice, NodeId home_node) {
  Task t;
  t.id = id;
  t.nice = nice;
  t.weight = NiceToWeight(nice);
  t.home_node = home_node;
  return t;
}

}  // namespace optsched
