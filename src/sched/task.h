// Task (thread) descriptors and the niceness-to-weight mapping.
//
// The paper's model balances either raw thread counts or counts "weighted by
// their importance" (§3.1, §4.2: "a load balancer that tries to balance the
// number of threads weighted by their importance"). We reproduce the CFS
// niceness model: nice levels -20..19 map onto a geometric weight table where
// each level is ~1.25x the next, normalized so nice 0 == 1024, exactly as in
// kernel/sched/core.c (sched_prio_to_weight).

#ifndef OPTSCHED_SRC_SCHED_TASK_H_
#define OPTSCHED_SRC_SCHED_TASK_H_

#include <cstdint>
#include <initializer_list>
#include <string>

#include "src/topology/topology.h"

namespace optsched {

using TaskId = uint64_t;

inline constexpr TaskId kInvalidTask = 0;
inline constexpr int kMinNice = -20;
inline constexpr int kMaxNice = 19;
inline constexpr uint32_t kNiceZeroWeight = 1024;

// Weight for a nice level, per the CFS table.
uint32_t NiceToWeight(int nice);

// A schedulable entity. Tasks are value types owned by MachineState (model
// runs) or by the simulator; identity is the TaskId.
struct Task {
  TaskId id = kInvalidTask;
  int nice = 0;
  uint32_t weight = kNiceZeroWeight;
  // Preferred NUMA node (where the task's memory lives); consumed by the
  // NUMA-aware choice step, ignored by placement-oblivious policies.
  NodeId home_node = 0;
  // Last CPU the task ran on; consumed by cache-aware choice.
  CpuId last_cpu = 0;
  // CPU-affinity mask (sched_setaffinity / cpusets): bit i set = CPU i
  // allowed. 0 means unrestricted (also the only option beyond 64 CPUs).
  // Affinity constrains placement and stealing; a pinned task is invisible
  // to thieves outside its mask, which is how several of the Lozi et al.
  // wasted-core scenarios arise.
  uint64_t allowed_mask = 0;

  bool AllowedOn(CpuId cpu) const {
    return allowed_mask == 0 || (cpu < 64 && (allowed_mask & (uint64_t{1} << cpu)) != 0);
  }

  std::string ToString() const;
};

// Mask helper: allow exactly the given CPUs (each must be < 64).
uint64_t MaskOf(std::initializer_list<CpuId> cpus);

// Convenience constructor that derives the weight from the nice level.
Task MakeTask(TaskId id, int nice = 0, NodeId home_node = 0);

}  // namespace optsched

#endif  // OPTSCHED_SRC_SCHED_TASK_H_
