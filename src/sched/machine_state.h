// Whole-machine scheduler state: one CoreState per CPU (paper §3.1-§3.2).
//
// MachineState is the value type everything else consumes: the load balancer
// mutates it, the verifier enumerates it, the simulator owns one, and the
// real-thread runtime shards it behind per-core locks. It also carries the
// paper's global predicates:
//
//   work-conserved(state) := !(exists i idle(c_i) AND exists j overloaded(c_j))
//   d(c1..cn)             := sum_i sum_j |load(c_i) - load(c_j)|   (§4.3)
//
// d is the potential (ranking) function: the paper's termination argument is
// that every successful steal strictly decreases d, so the number of
// successful steals — and hence of failed ones — is bounded.

#ifndef OPTSCHED_SRC_SCHED_MACHINE_STATE_H_
#define OPTSCHED_SRC_SCHED_MACHINE_STATE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/sched/core_state.h"
#include "src/sched/task.h"
#include "src/topology/topology.h"

namespace optsched {

// Which load metric a policy balances (paper §3.1: "We make no assumption on
// the criteria used to define how the load should be balanced").
enum class LoadMetric {
  kTaskCount,     // Listing 1: ready.size + current.size
  kWeightedLoad,  // counts weighted by niceness-derived importance
};

// A read-only, possibly stale copy of per-core loads, as observed by the
// lock-free selection phase. Keeping it a distinct type makes "selection must
// not read mutable state" a compile-time property of policy code.
struct LoadSnapshot {
  std::vector<int64_t> task_count;
  std::vector<int64_t> weighted_load;

  int64_t Load(CpuId cpu, LoadMetric metric) const {
    return metric == LoadMetric::kTaskCount ? task_count[cpu] : weighted_load[cpu];
  }
  uint32_t num_cpus() const { return static_cast<uint32_t>(task_count.size()); }
};

class MachineState {
 public:
  explicit MachineState(uint32_t num_cpus);

  // Builds a machine where core i holds loads[i] anonymous nice-0 tasks (one
  // running if loads[i] > 0, the rest queued). This is the shape the verifier
  // enumerates: the paper's lemmas depend only on per-core loads.
  static MachineState FromLoads(const std::vector<int64_t>& loads);

  uint32_t num_cpus() const { return static_cast<uint32_t>(cores_.size()); }
  const CoreState& core(CpuId cpu) const;
  CoreState& core_mutable(CpuId cpu);

  // --- Paper predicates ------------------------------------------------------

  bool IsIdle(CpuId cpu) const { return core(cpu).IsIdle(); }
  bool IsOverloaded(CpuId cpu) const { return core(cpu).IsOverloaded(); }
  bool AnyIdle() const;
  bool AnyOverloaded() const;

  // True iff no core is idle while another is overloaded (§3.2).
  bool WorkConserved() const { return !(AnyIdle() && AnyOverloaded()); }

  // Affinity-aware variant: a state only violates work conservation if some
  // idle core could legally receive a ready task from an overloaded core
  // (a task pinned away from every idle core is not waste the scheduler can
  // fix). Equivalent to WorkConserved() when no task carries a mask.
  bool WorkConservedModuloAffinity() const;

  int64_t Load(CpuId cpu, LoadMetric metric) const;

  // d(c1..cn) = sum_i sum_j |load_i - load_j| over the given metric (§4.3).
  int64_t Potential(LoadMetric metric) const;

  // --- Task management ---------------------------------------------------------

  // Creates a task with a fresh id and enqueues it on `cpu`. Returns the id.
  TaskId Spawn(CpuId cpu, int nice = 0, NodeId home_node = 0);

  // Enqueues an existing task object on `cpu`.
  void Place(Task task, CpuId cpu);

  // Total number of tasks on the machine (current + ready, all cores). The
  // paper's proofs assume this is constant during balancing; tests assert it.
  uint64_t TotalTasks() const;
  int64_t TotalWeight() const;

  // Runs ScheduleNext on every core (promote a ready task where none runs).
  void ScheduleAll();

  // --- The atomic steal (step 3 primitive) -------------------------------------
  //
  // Moves one task from `victim`'s runqueue tail to `thief`'s runqueue. The
  // *model* performs it unconditionally if a ready task exists; the policy
  // layer is responsible for re-checking its filter first (Listing 1 line 12).
  // Returns the moved task id, or nullopt if the victim had no ready task.
  std::optional<TaskId> StealOneTask(CpuId victim, CpuId thief);

  // Moves the identified ready task from `victim` to `thief`; false if the
  // task is not (or no longer) in the victim's runqueue. Used by the steal
  // phase after the migration rule picked a specific task.
  bool StealTaskById(CpuId victim, CpuId thief, TaskId id);

  // --- Snapshots ---------------------------------------------------------------

  // The selection phase's view of the world. In the pure model this is exact;
  // staleness is injected by the round engine / runtime, not here.
  LoadSnapshot Snapshot() const;

  // Current per-core loads as a plain vector (for the verifier and tests).
  std::vector<int64_t> Loads(LoadMetric metric) const;

  std::string ToString() const;

 private:
  std::vector<CoreState> cores_;
  TaskId next_task_id_ = 1;
};

// Potential function over a bare load vector (used by the verifier, which
// works on abstract states without materializing tasks).
int64_t PotentialOfLoads(const std::vector<int64_t>& loads);

}  // namespace optsched

#endif  // OPTSCHED_SRC_SCHED_MACHINE_STATE_H_
