#include "src/sched/core_state.h"

#include "src/base/check.h"
#include "src/base/str.h"

namespace optsched {

void CoreState::Enqueue(Task task) {
  weighted_load_ += task.weight;
  ready_.push_back(std::move(task));
}

std::optional<Task> CoreState::DequeueHead() {
  if (ready_.empty()) {
    return std::nullopt;
  }
  Task t = std::move(ready_.front());
  ready_.pop_front();
  weighted_load_ -= t.weight;
  return t;
}

std::optional<Task> CoreState::DequeueTail() {
  if (ready_.empty()) {
    return std::nullopt;
  }
  Task t = std::move(ready_.back());
  ready_.pop_back();
  weighted_load_ -= t.weight;
  return t;
}

bool CoreState::Remove(TaskId id) {
  for (auto it = ready_.begin(); it != ready_.end(); ++it) {
    if (it->id == id) {
      weighted_load_ -= it->weight;
      ready_.erase(it);
      return true;
    }
  }
  return false;
}

bool CoreState::ScheduleNext() {
  if (current_.has_value() || ready_.empty()) {
    return false;
  }
  current_ = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

bool CoreState::SchedulePick(TaskId id) {
  if (current_.has_value()) {
    return false;
  }
  for (auto it = ready_.begin(); it != ready_.end(); ++it) {
    if (it->id == id) {
      current_ = std::move(*it);
      ready_.erase(it);
      return true;
    }
  }
  return false;
}

std::optional<Task> CoreState::ClearCurrent() {
  if (!current_.has_value()) {
    return std::nullopt;
  }
  std::optional<Task> t = std::move(current_);
  current_.reset();
  weighted_load_ -= t->weight;
  return t;
}

void CoreState::PreemptCurrent() {
  if (!current_.has_value()) {
    return;
  }
  // Weighted load is unchanged: the task stays on this core.
  ready_.push_front(std::move(*current_));
  current_.reset();
}

void CoreState::SetCurrent(Task task) {
  OPTSCHED_CHECK_MSG(!current_.has_value(), "core already has a running task");
  weighted_load_ += task.weight;
  current_ = std::move(task);
}

std::string CoreState::ToString() const {
  std::string out = "core{current=";
  out += current_.has_value() ? StrFormat("%llu", static_cast<unsigned long long>(current_->id))
                              : std::string("-");
  out += " ready=[";
  for (size_t i = 0; i < ready_.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += StrFormat("%llu", static_cast<unsigned long long>(ready_[i].id));
  }
  out += StrFormat("] count=%lld wload=%lld}", static_cast<long long>(TaskCount()),
                   static_cast<long long>(WeightedLoad()));
  return out;
}

}  // namespace optsched
