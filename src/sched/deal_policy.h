// Proactive work-dealing decision logic (ROADMAP open item 2; Rito &
// Paulino, arXiv:1810.10615 / 1810.10632; argolib's deal_times).
//
// The paper's pipeline is REACTIVE: an idle thief filters, chooses, steals,
// and pays the synchronization (lock pair or top-CAS) on every migration.
// Dealing inverts the initiative: the OVERLOADED owner, inside its own
// execution round, pushes half its surplus into an idle peer's bounded
// mailbox — owner-side stores instead of thief-side CASes. DealPolicy is the
// pure decision layer: given the dealer's load, a load snapshot, and the
// grace-window state, it answers "should I deal, to whom, how much". It
// holds no synchronization state, so it is unit-testable (deal_policy_test)
// and reusable by the executor's deal round and the mc deal harness alike.
//
// Work conservation does NOT rest on any of these answers: the reactive
// steal path stays on as unconditional fallback, so a missed, refused, or
// mistimed deal changes nothing the existing lemma/convergence proofs can
// see — dealing only shifts migrations from the expensive thief path to the
// cheap owner path.

#ifndef OPTSCHED_SRC_SCHED_DEAL_POLICY_H_
#define OPTSCHED_SRC_SCHED_DEAL_POLICY_H_

#include <cstdint>

#include "src/sched/machine_state.h"

namespace optsched {

// Tuning knobs of the deal round. Defaults are the E17 hybrid operating
// point: deal only while the grace window after an observed robbery is open,
// target only idle peers, move half the gap, cap 8 per round.
struct DealConfig {
  bool enabled = false;
  // Dealer-side trigger: deal only while own task count exceeds this. Must
  // be >= 2 — dealing the current or the only queued item would idle the
  // dealer (mirrors the thread-count policy's floor).
  int64_t threshold = 2;
  // Post-steal grace window, in deal checks (argolib's deal_times): after
  // the dealer observes its StolenCount() advance, the next `grace_rounds`
  // checks may deal. 0 = ALWAYS-ON (no robbery required) — the deal-only
  // ablation's operating point, where no steal ever opens the window.
  uint32_t grace_rounds = 8;
  // Cap on items moved per deal round (quota is still gap-halving).
  uint32_t max_batch = 8;
  // Recipient-side gate: require the peer's observed task count to be 0
  // (parked or about to park). False lets the dealer top up busy-but-light
  // peers too.
  bool require_idle_peer = true;
  // The dealer re-checks every `check_interval_items` executed items, same
  // cadence scheme as the executor's ingress drain interval.
  uint32_t check_interval_items = 16;
};

// Grace-window state one dealer carries between checks (plain value type —
// the owner is the only reader and writer).
struct DealWindow {
  uint64_t last_stolen_count = 0;
  uint32_t rounds_left = 0;

  // Feeds the robbery observation and ticks the window; returns true when
  // this check falls inside the window (or the window is configured away).
  bool Observe(uint64_t stolen_count, const DealConfig& config) {
    if (config.grace_rounds == 0) {
      return true;  // always-on: the deal-only ablation
    }
    if (stolen_count != last_stolen_count) {
      last_stolen_count = stolen_count;
      rounds_left = config.grace_rounds;
    }
    if (rounds_left == 0) {
      return false;
    }
    --rounds_left;
    return true;
  }
};

class DealPolicy {
 public:
  explicit DealPolicy(const DealConfig& config) : config_(config) {}

  const DealConfig& config() const { return config_; }

  // Dealer-side trigger: own published load strictly above the threshold.
  bool ShouldDeal(int64_t own_tasks) const {
    return config_.enabled && own_tasks > config_.threshold;
  }

  // Picks the emptiest eligible peer (task count, ties to the lowest id), or
  // kNoPeer when none qualifies. `deal_pending` (optional, per-cpu) breaks
  // ties away from peers with undrained dealt backlog, so consecutive rounds
  // spread instead of piling onto one mailbox.
  static constexpr CpuId kNoPeer = ~0u;
  CpuId PickRecipient(CpuId self, const LoadSnapshot& snapshot,
                      const int64_t* deal_pending) const;

  // ceil(gap/2) capped at max_batch, never dealing below the threshold.
  // Zero when the gap does not justify a push.
  uint32_t DealQuota(int64_t own_tasks, int64_t peer_tasks) const;

 private:
  const DealConfig config_;
};

}  // namespace optsched

#endif  // OPTSCHED_SRC_SCHED_DEAL_POLICY_H_
