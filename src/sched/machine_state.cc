#include "src/sched/machine_state.h"

#include <algorithm>
#include <cstdlib>

#include "src/base/check.h"
#include "src/base/str.h"

namespace optsched {

MachineState::MachineState(uint32_t num_cpus) : cores_(num_cpus) {
  OPTSCHED_CHECK(num_cpus > 0);
}

MachineState MachineState::FromLoads(const std::vector<int64_t>& loads) {
  MachineState m(static_cast<uint32_t>(loads.size()));
  for (CpuId cpu = 0; cpu < m.num_cpus(); ++cpu) {
    OPTSCHED_CHECK(loads[cpu] >= 0);
    for (int64_t i = 0; i < loads[cpu]; ++i) {
      m.Spawn(cpu);
    }
  }
  m.ScheduleAll();
  return m;
}

const CoreState& MachineState::core(CpuId cpu) const {
  OPTSCHED_CHECK(cpu < cores_.size());
  return cores_[cpu];
}

CoreState& MachineState::core_mutable(CpuId cpu) {
  OPTSCHED_CHECK(cpu < cores_.size());
  return cores_[cpu];
}

bool MachineState::AnyIdle() const {
  for (const CoreState& c : cores_) {
    if (c.IsIdle()) {
      return true;
    }
  }
  return false;
}

bool MachineState::AnyOverloaded() const {
  for (const CoreState& c : cores_) {
    if (c.IsOverloaded()) {
      return true;
    }
  }
  return false;
}

bool MachineState::WorkConservedModuloAffinity() const {
  for (CpuId idle = 0; idle < num_cpus(); ++idle) {
    if (!IsIdle(idle)) {
      continue;
    }
    for (CpuId busy = 0; busy < num_cpus(); ++busy) {
      if (!IsOverloaded(busy)) {
        continue;
      }
      for (const Task& t : cores_[busy].ready()) {
        if (t.AllowedOn(idle)) {
          return false;  // a fixable idle/overloaded pair exists
        }
      }
    }
  }
  return true;
}

int64_t MachineState::Load(CpuId cpu, LoadMetric metric) const {
  return metric == LoadMetric::kTaskCount ? core(cpu).TaskCount() : core(cpu).WeightedLoad();
}

int64_t MachineState::Potential(LoadMetric metric) const { return PotentialOfLoads(Loads(metric)); }

TaskId MachineState::Spawn(CpuId cpu, int nice, NodeId home_node) {
  const TaskId id = next_task_id_++;
  Place(MakeTask(id, nice, home_node), cpu);
  return id;
}

void MachineState::Place(Task task, CpuId cpu) {
  OPTSCHED_CHECK(cpu < cores_.size());
  OPTSCHED_CHECK_MSG(task.AllowedOn(cpu), "task placed outside its affinity mask");
  task.last_cpu = cpu;
  next_task_id_ = std::max(next_task_id_, task.id + 1);
  cores_[cpu].Enqueue(std::move(task));
}

uint64_t MachineState::TotalTasks() const {
  uint64_t total = 0;
  for (const CoreState& c : cores_) {
    total += static_cast<uint64_t>(c.TaskCount());
  }
  return total;
}

int64_t MachineState::TotalWeight() const {
  int64_t total = 0;
  for (const CoreState& c : cores_) {
    total += c.WeightedLoad();
  }
  return total;
}

void MachineState::ScheduleAll() {
  for (CoreState& c : cores_) {
    c.ScheduleNext();
  }
}

std::optional<TaskId> MachineState::StealOneTask(CpuId victim, CpuId thief) {
  OPTSCHED_CHECK(victim < cores_.size() && thief < cores_.size());
  OPTSCHED_CHECK_MSG(victim != thief, "a core cannot steal from itself");
  // Coldest (tail-most) task that is allowed to run on the thief.
  for (auto it = cores_[victim].ready().rbegin(); it != cores_[victim].ready().rend(); ++it) {
    if (it->AllowedOn(thief)) {
      const TaskId id = it->id;
      OPTSCHED_CHECK(StealTaskById(victim, thief, id));
      return id;
    }
  }
  return std::nullopt;
}

bool MachineState::StealTaskById(CpuId victim, CpuId thief, TaskId id) {
  OPTSCHED_CHECK(victim < cores_.size() && thief < cores_.size());
  OPTSCHED_CHECK_MSG(victim != thief, "a core cannot steal from itself");
  for (const Task& t : cores_[victim].ready()) {
    if (t.id == id) {
      if (!t.AllowedOn(thief)) {
        return false;  // pinned away from the thief: not stealable
      }
      Task moved = t;
      OPTSCHED_CHECK(cores_[victim].Remove(id));
      moved.last_cpu = thief;
      cores_[thief].Enqueue(std::move(moved));
      return true;
    }
  }
  return false;
}

LoadSnapshot MachineState::Snapshot() const {
  LoadSnapshot snap;
  snap.task_count.reserve(cores_.size());
  snap.weighted_load.reserve(cores_.size());
  for (const CoreState& c : cores_) {
    snap.task_count.push_back(c.TaskCount());
    snap.weighted_load.push_back(c.WeightedLoad());
  }
  return snap;
}

std::vector<int64_t> MachineState::Loads(LoadMetric metric) const {
  std::vector<int64_t> loads;
  loads.reserve(cores_.size());
  for (CpuId cpu = 0; cpu < num_cpus(); ++cpu) {
    loads.push_back(Load(cpu, metric));
  }
  return loads;
}

std::string MachineState::ToString() const {
  std::string out = "machine{\n";
  for (CpuId cpu = 0; cpu < num_cpus(); ++cpu) {
    out += StrFormat("  cpu%u: %s\n", cpu, cores_[cpu].ToString().c_str());
  }
  out += "}";
  return out;
}

int64_t PotentialOfLoads(const std::vector<int64_t>& loads) {
  // O(n log n): sort, then use prefix sums. With loads sorted ascending,
  // sum_{i<j} (l_j - l_i) counted once; the paper's double sum counts each
  // ordered pair, i.e. exactly twice that.
  std::vector<int64_t> sorted = loads;
  std::sort(sorted.begin(), sorted.end());
  int64_t pairwise = 0;
  int64_t prefix = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    pairwise += static_cast<int64_t>(i) * sorted[i] - prefix;
    prefix += sorted[i];
  }
  return 2 * pairwise;
}

}  // namespace optsched
