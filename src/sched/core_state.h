// Per-core scheduler state: the current task plus a runqueue (paper §3.1).
//
// "A scheduler is defined with reference to, for each core of the machine,
//  the current thread, if any, that is running on that core, and a runqueue
//  containing threads waiting to be scheduled."
//
// The paper's predicates are reproduced verbatim:
//   idle(c)       := no current thread AND empty runqueue
//   overloaded(c) := two or more threads, including the current one
// (Listing 2's isOverloaded: current==1 -> ready>=1, else ready>=2.)

#ifndef OPTSCHED_SRC_SCHED_CORE_STATE_H_
#define OPTSCHED_SRC_SCHED_CORE_STATE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "src/sched/task.h"

namespace optsched {

class CoreState {
 public:
  CoreState() = default;

  // --- Observers -----------------------------------------------------------

  const std::optional<Task>& current() const { return current_; }
  const std::deque<Task>& ready() const { return ready_; }

  // Total threads on the core, counting the current one. This is the paper's
  // `load()` from Listing 1: `self.ready.size + self.current.size`.
  int64_t TaskCount() const {
    return static_cast<int64_t>(ready_.size()) + (current_.has_value() ? 1 : 0);
  }

  // Sum of weights of all threads on the core (the "weighted by importance"
  // metric of §3.1/§4.2).
  int64_t WeightedLoad() const { return weighted_load_; }

  bool IsIdle() const { return !current_.has_value() && ready_.empty(); }

  bool IsOverloaded() const { return TaskCount() >= 2; }

  // --- Mutations (model-level; locking is the caller's concern) ------------

  // Appends a task to the runqueue tail.
  void Enqueue(Task task);

  // Removes and returns the runqueue head; nullopt if empty.
  std::optional<Task> DequeueHead();

  // Removes and returns the runqueue tail (work stealing conventionally takes
  // the coldest task, i.e. the one that waited longest at the remote core; we
  // steal the tail which is the most recently queued == least cache-warm at
  // the victim).
  std::optional<Task> DequeueTail();

  // Removes the task with the given id from the runqueue; false if absent.
  bool Remove(TaskId id);

  // If no current task and the runqueue is non-empty, promotes the head to
  // current. Returns true if a task started running.
  bool ScheduleNext();

  // Promotes the identified ready task (not necessarily the head) to current
  // — the primitive behind fair pick-next policies (e.g. min-vruntime).
  // Fails (returns false) if a task is already running or `id` is not ready.
  bool SchedulePick(TaskId id);

  // Clears the current task (it blocked or exited); returns it.
  std::optional<Task> ClearCurrent();

  // Preempts: pushes the current task (if any) back on the runqueue head.
  void PreemptCurrent();

  // Installs a current task directly (must be none running).
  void SetCurrent(Task task);

  std::string ToString() const;

 private:
  std::optional<Task> current_;
  std::deque<Task> ready_;
  int64_t weighted_load_ = 0;  // maintained incrementally across mutations
};

}  // namespace optsched

#endif  // OPTSCHED_SRC_SCHED_CORE_STATE_H_
