#include "src/sched/deal_policy.h"

#include <algorithm>

namespace optsched {

CpuId DealPolicy::PickRecipient(CpuId self, const LoadSnapshot& snapshot,
                                const int64_t* deal_pending) const {
  CpuId best = kNoPeer;
  int64_t best_tasks = 0;
  int64_t best_pending = 0;
  for (CpuId cpu = 0; cpu < snapshot.num_cpus(); ++cpu) {
    if (cpu == self) {
      continue;
    }
    const int64_t tasks = snapshot.task_count[cpu];
    if (config_.require_idle_peer && tasks != 0) {
      continue;
    }
    const int64_t pending = deal_pending != nullptr ? deal_pending[cpu] : 0;
    // Emptiest queue first; among equals, the one with the least undrained
    // dealt backlog; among those, the lowest id (deterministic for tests and
    // the mc harness).
    if (best == kNoPeer || tasks < best_tasks ||
        (tasks == best_tasks && pending < best_pending)) {
      best = cpu;
      best_tasks = tasks;
      best_pending = pending;
    }
  }
  return best;
}

uint32_t DealPolicy::DealQuota(int64_t own_tasks, int64_t peer_tasks) const {
  if (own_tasks <= config_.threshold || own_tasks <= peer_tasks) {
    return 0;
  }
  const int64_t gap = own_tasks - peer_tasks;
  int64_t quota = (gap + 1) / 2;  // ceil(gap/2): halve the imbalance
  // Never deal the dealer below its own threshold: the trigger load must
  // still hold after the push, or dealing idles the very core that was
  // overloaded (the deal-side mirror of steal safety).
  quota = std::min(quota, own_tasks - config_.threshold);
  quota = std::min<int64_t>(quota, config_.max_batch);
  return quota > 0 ? static_cast<uint32_t>(quota) : 0;
}

}  // namespace optsched
