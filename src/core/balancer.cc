#include "src/core/balancer.h"

#include <algorithm>
#include <numeric>

#include "src/base/check.h"
#include "src/base/str.h"

namespace optsched {

namespace {

// Weight of a task as measured by the policy's metric: 1 under kTaskCount,
// the niceness weight under kWeightedLoad.
int64_t MetricWeight(const Task& task, LoadMetric metric) {
  return metric == LoadMetric::kTaskCount ? 1 : static_cast<int64_t>(task.weight);
}

}  // namespace

const char* StealOutcomeName(StealOutcome outcome) {
  switch (outcome) {
    case StealOutcome::kNoCandidates:
      return "no-candidates";
    case StealOutcome::kStole:
      return "stole";
    case StealOutcome::kFailedRecheck:
      return "failed-recheck";
    case StealOutcome::kFailedNoTask:
      return "failed-no-task";
  }
  return "?";
}

std::string RoundResult::ToString() const {
  return StrFormat("round{attempts=%u successes=%u moved=%u failures=%u d:%lld->%lld}", attempts,
                   successes, tasks_moved, failures, static_cast<long long>(potential_before),
                   static_cast<long long>(potential_after));
}

std::string BalanceStats::ToString() const {
  return StrFormat(
      "stats{rounds=%llu attempts=%llu successes=%llu moved=%llu failed_recheck=%llu "
      "failed_no_task=%llu}",
      static_cast<unsigned long long>(rounds), static_cast<unsigned long long>(attempts),
      static_cast<unsigned long long>(successes), static_cast<unsigned long long>(tasks_moved),
      static_cast<unsigned long long>(failed_recheck),
      static_cast<unsigned long long>(failed_no_task));
}

void BalanceStats::ExportTo(trace::MetricsRegistry& registry, const std::string& prefix) const {
  registry.Add(prefix + ".rounds", static_cast<double>(rounds));
  registry.Add(prefix + ".attempts", static_cast<double>(attempts));
  registry.Add(prefix + ".successes", static_cast<double>(successes));
  registry.Add(prefix + ".tasks_moved", static_cast<double>(tasks_moved));
  registry.Add(prefix + ".failed_recheck", static_cast<double>(failed_recheck));
  registry.Add(prefix + ".failed_no_task", static_cast<double>(failed_no_task));
  registry.Add(prefix + ".injected_aborts", static_cast<double>(injected_aborts));
  registry.Add(prefix + ".stalled_attempts", static_cast<double>(stalled_attempts));
  registry.Add(prefix + ".stale_snapshots", static_cast<double>(stale_snapshots));
  registry.Add(prefix + ".dropped_rounds", static_cast<double>(dropped_rounds));
}

LoadBalancer::LoadBalancer(std::shared_ptr<const BalancePolicy> policy, const Topology* topology)
    : policy_(std::move(policy)), topology_(topology) {
  OPTSCHED_CHECK(policy_ != nullptr);
}

CoreAction LoadBalancer::RunOneAttempt(MachineState& machine, CpuId thief,
                                       const LoadSnapshot& snapshot, Rng& rng,
                                       bool recheck_filter, uint32_t max_steals) {
  CoreAction action;
  action.thief = thief;

  // --- Selection phase (lock-free, read-only) ------------------------------
  const SelectionView view{.self = thief, .snapshot = snapshot, .topology = topology_};
  const std::vector<CpuId> candidates = policy_->FilterCandidates(view);  // step 1
  if (candidates.empty()) {
    action.outcome = StealOutcome::kNoCandidates;
    return action;
  }
  const CpuId victim = policy_->SelectCore(view, candidates, rng);  // step 2
  OPTSCHED_CHECK_MSG(std::find(candidates.begin(), candidates.end(), victim) != candidates.end(),
                     "SelectCore must return a filtered candidate (Listing 1 ensuring clause)");
  return ExecuteStealPhase(machine, thief, victim, recheck_filter, max_steals);
}

CoreAction LoadBalancer::ExecuteStealPhase(MachineState& machine, CpuId thief, CpuId victim,
                                           bool recheck_filter, uint32_t max_steals) {
  OPTSCHED_CHECK(max_steals >= 1);
  CoreAction action;
  action.thief = thief;
  action.victim = victim;
  ++stats_.attempts;

  // Injected steal abort: behaves exactly like a lost re-check (the thief
  // walks away empty-handed, the victim keeps its task) but is tallied apart
  // from genuine contention so failure attribution stays provable.
  if (injector_ != nullptr && injector_->AbortSteal(thief)) {
    action.outcome = StealOutcome::kFailedRecheck;
    action.injected = true;
    ++stats_.injected_aborts;
    return action;
  }

  const LoadMetric metric = policy_->metric();
  uint32_t moved = 0;
  while (moved < max_steals) {
    // A fresh snapshot models the linearized view the thief has once both
    // runqueue locks are held (and, for batch steals, the state after each
    // completed migration).
    const LoadSnapshot fresh = machine.Snapshot();
    const SelectionView locked_view{.self = thief, .snapshot = fresh, .topology = topology_};
    if (recheck_filter && !policy_->CanSteal(locked_view, victim)) {
      if (moved > 0) {
        break;  // batch ended: the victim is no longer stealable
      }
      // The core we optimistically chose is no longer stealable: some other
      // core's steal intervened between our snapshot and our lock acquisition.
      action.outcome = StealOutcome::kFailedRecheck;
      ++stats_.failed_recheck;
      return action;
    }

    const int64_t victim_load = fresh.Load(victim, metric);
    const int64_t thief_load = fresh.Load(thief, metric);

    // Migration rule: scan the victim's runqueue from the tail (coldest tasks
    // first) for a task the policy allows to move at these exact loads and
    // whose affinity mask admits the thief.
    const CoreState& victim_core = machine.core(victim);
    std::optional<TaskId> eligible;
    for (auto it = victim_core.ready().rbegin(); it != victim_core.ready().rend(); ++it) {
      if (it->AllowedOn(thief) &&
          policy_->ShouldMigrate(MetricWeight(*it, metric), victim_load, thief_load)) {
        eligible = it->id;
        break;
      }
    }
    if (!eligible.has_value()) {
      if (moved > 0) {
        break;  // batch ended: nothing left that the rule admits
      }
      action.outcome = StealOutcome::kFailedNoTask;
      ++stats_.failed_no_task;
      return action;
    }

    OPTSCHED_CHECK(machine.StealTaskById(victim, thief, *eligible));
    if (moved == 0) {
      action.task = eligible;
    }
    ++moved;
  }
  // The thief may have been idle; give it something to run right away.
  machine.core_mutable(thief).ScheduleNext();
  action.outcome = StealOutcome::kStole;
  action.moved = moved;
  // One success per steal ACTION; the per-task total goes to tasks_moved
  // (adding `moved` here made the two disagree whenever max_steals > 1).
  ++stats_.successes;
  stats_.tasks_moved += moved;
  return action;
}

RoundResult LoadBalancer::RunRound(MachineState& machine, Rng& rng, const RoundOptions& options) {
  const uint32_t n = machine.num_cpus();
  RoundResult result;
  result.actions.assign(n, CoreAction{});
  result.potential_before = machine.Potential(policy_->metric());
  ++stats_.rounds;

  // A dropped round (lost timer tick) performs no work at all; loads carry
  // over unchanged and so does the staleness of any cached snapshot.
  if (injector_ != nullptr && injector_->DropRound()) {
    for (CpuId cpu = 0; cpu < n; ++cpu) {
      result.actions[cpu].thief = cpu;
    }
    result.dropped = true;
    ++stats_.dropped_rounds;
    result.potential_after = result.potential_before;
    return result;
  }

  auto participates = [&](CpuId cpu) {
    return !options.only_idle_steal || machine.IsIdle(cpu);
  };
  // Straggler fault: the core misses this round entirely (drawn once per
  // participating core so the decision is deterministic per lane).
  auto straggles = [&](CpuId cpu) {
    if (injector_ == nullptr || !injector_->StallCore(cpu)) {
      return false;
    }
    result.actions[cpu].injected = true;
    ++result.stalled;
    ++stats_.stalled_attempts;
    return true;
  };

  if (options.mode == RoundOptions::Mode::kSequential) {
    // §4.2 simple context: each core runs all three steps in isolation.
    for (CpuId cpu = 0; cpu < n; ++cpu) {
      result.actions[cpu].thief = cpu;
      result.executed_order.push_back(cpu);
      if (!participates(cpu) || straggles(cpu)) {
        continue;
      }
      LoadSnapshot fresh = machine.Snapshot();
      bool stale = false;
      if (injector_ != nullptr && has_prev_round_snapshot_ && injector_->StaleSnapshot(cpu)) {
        fresh = prev_round_snapshot_;
        ++stats_.stale_snapshots;
        stale = true;
      }
      result.actions[cpu] = RunOneAttempt(machine, cpu, fresh, rng, options.recheck_filter,
                                           options.max_steals_per_attempt);
      if (stale && (result.actions[cpu].outcome == StealOutcome::kFailedRecheck ||
                    result.actions[cpu].outcome == StealOutcome::kFailedNoTask)) {
        // A failure under an injected stale view may have no concurrent steal
        // to blame; exclude it from the attribution obligation.
        result.actions[cpu].injected = true;
      }
    }
    prev_round_snapshot_ = machine.Snapshot();
    has_prev_round_snapshot_ = true;
  } else {
    // §4.3 concurrent context: one shared (and soon stale) snapshot, steals
    // serialized in the given order.
    const LoadSnapshot round_snapshot = machine.Snapshot();
    std::vector<uint32_t> order;
    if (options.mode == RoundOptions::Mode::kConcurrentFixedOrder) {
      OPTSCHED_CHECK_MSG(options.steal_order.size() == n,
                         "steal_order must be a permutation of all cores");
      order = options.steal_order;
    } else {
      order.resize(n);
      std::iota(order.begin(), order.end(), 0);
      rng.Shuffle(order);
    }
    result.executed_order = order;
    for (uint32_t cpu : order) {
      OPTSCHED_CHECK(cpu < n);
      result.actions[cpu].thief = cpu;
      if (!participates(cpu) || straggles(cpu)) {
        continue;
      }
      const LoadSnapshot* view = &round_snapshot;
      bool stale = false;
      if (injector_ != nullptr && has_prev_round_snapshot_ && injector_->StaleSnapshot(cpu)) {
        // One round staler than everyone else: selection against the
        // previous round's shared snapshot.
        view = &prev_round_snapshot_;
        ++stats_.stale_snapshots;
        stale = true;
      }
      result.actions[cpu] =
          RunOneAttempt(machine, cpu, *view, rng, options.recheck_filter,
                        options.max_steals_per_attempt);
      if (stale && (result.actions[cpu].outcome == StealOutcome::kFailedRecheck ||
                    result.actions[cpu].outcome == StealOutcome::kFailedNoTask)) {
        // A failure under an injected stale view may have no concurrent steal
        // to blame; exclude it from the attribution obligation.
        result.actions[cpu].injected = true;
      }
    }
    prev_round_snapshot_ = round_snapshot;
    has_prev_round_snapshot_ = true;
  }

  for (const CoreAction& action : result.actions) {
    switch (action.outcome) {
      case StealOutcome::kNoCandidates:
        break;
      case StealOutcome::kStole:
        ++result.attempts;
        ++result.successes;
        result.tasks_moved += action.moved;
        break;
      case StealOutcome::kFailedRecheck:
      case StealOutcome::kFailedNoTask:
        ++result.attempts;
        ++result.failures;
        if (action.injected) {
          ++result.injected_failures;
        }
        break;
    }
  }
  result.potential_after = machine.Potential(policy_->metric());
  return result;
}

}  // namespace optsched
