// The optimistic load-balancing round engine (paper §3.1, Figure 1).
//
// A round executes, for every core of the machine (idle and non-idle alike,
// as in CFS where "load balancing operations are performed simultaneously on
// all cores every 4ms"):
//
//   selection phase (no locks):  FILTER over a load snapshot, then CHOICE;
//   stealing phase  (src+dst "locked"):  re-check the filter on current
//       loads, pick a task the migration rule accepts, move it.
//
// Concurrency model. The stealing phase is atomic in the paper's model ("no
// two cores should be able to steal the same thread"), so any concurrent
// round linearizes into: all cores select against the round-start snapshot,
// then the steals execute one at a time in *some* order. The engine exposes
// that order as a parameter: random (driven by an Rng), fixed (driven by the
// adversarial explorer in src/verify, which enumerates every permutation), or
// fully sequential (§4.2's simplified setting where each core performs all
// three steps in isolation against a fresh snapshot, so steals cannot fail).
//
// Failures are first-class: a steal whose re-check no longer holds is counted
// and classified, never retried within the round — matching the paper's
// definition where failed attempts are legitimate and only *persistent*
// idleness violates work conservation.

#ifndef OPTSCHED_SRC_CORE_BALANCER_H_
#define OPTSCHED_SRC_CORE_BALANCER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/core/policy.h"
#include "src/fault/fault.h"
#include "src/sched/machine_state.h"
#include "src/topology/topology.h"
#include "src/trace/metrics.h"

namespace optsched {

// Outcome of one core's participation in a round.
enum class StealOutcome {
  kNoCandidates,    // filter returned the empty set; core did not attempt a steal
  kStole,           // task migrated
  kFailedRecheck,   // CanSteal no longer held under locks (another steal intervened)
  kFailedNoTask,    // CanSteal held but no ready task satisfied the migration rule
};

const char* StealOutcomeName(StealOutcome outcome);

struct CoreAction {
  CpuId thief = 0;
  std::optional<CpuId> victim;  // set iff the filter was non-empty
  StealOutcome outcome = StealOutcome::kNoCandidates;
  std::optional<TaskId> task;   // set iff outcome == kStole (first task moved)
  uint32_t moved = 0;           // tasks migrated by this action (batch steals move > 1)
  // True when the outcome was forced by fault injection (a stalled core or an
  // injected steal abort) rather than by genuine contention. Attribution
  // proofs (§4.3: every failed steal implicates a successful one) quantify
  // over the non-injected actions only.
  bool injected = false;
};

struct RoundResult {
  std::vector<CoreAction> actions;   // one per core, dense core order
  std::vector<uint32_t> executed_order;  // core ids in steal-phase execution order
  uint32_t attempts = 0;             // cores whose filter was non-empty
  uint32_t successes = 0;            // cores whose steal phase moved >= 1 task
  uint32_t tasks_moved = 0;          // total migrations (== successes unless batching)
  uint32_t failures = 0;             // kFailedRecheck + kFailedNoTask
  // Fault-injection effects on this round (zero without an injector).
  bool dropped = false;              // the whole round was dropped
  uint32_t stalled = 0;              // straggler cores that skipped the round
  uint32_t injected_failures = 0;    // failures forced by injected aborts
  int64_t potential_before = 0;      // d before the round, policy metric
  int64_t potential_after = 0;

  std::string ToString() const;
};

struct RoundOptions {
  enum class Mode {
    // §4.2: cores act one after another, each against fresh state. Steals
    // cannot fail (the paper's "simple context").
    kSequential,
    // §4.3: all cores select against the round-start snapshot; steals then
    // serialize in an order drawn from the Rng.
    kConcurrentRandomOrder,
    // Same, but the serialization order is supplied explicitly (adversarial
    // exploration enumerates all of them).
    kConcurrentFixedOrder,
  };
  Mode mode = Mode::kConcurrentRandomOrder;

  // Permutation of core ids; required iff mode == kConcurrentFixedOrder.
  std::vector<uint32_t> steal_order;

  // Listing 1 line 12. Disabling this is the D2 ablation: steals proceed on
  // stale information and can idle their victim / overshoot.
  bool recheck_filter = true;

  // Upper bound on tasks moved per steal phase (Listing 1 moves exactly one;
  // CFS pulls until the imbalance is gone). Values > 1 re-evaluate the
  // filter AND the migration rule against current loads before every
  // additional task, so each individual migration still strictly decreases
  // the potential — the proofs are per-migration and carry over.
  uint32_t max_steals_per_attempt = 1;

  // Restrict participation to idle cores (a common variant: busy cores skip
  // balancing). The paper's model has every core participate; flipping this
  // narrows attempts without affecting the proofs.
  bool only_idle_steal = false;
};

// Cumulative counters across rounds.
struct BalanceStats {
  uint64_t rounds = 0;
  uint64_t attempts = 0;
  // One per successful steal ACTION (a core whose steal phase moved at least
  // one task). With max_steals > 1 a single action can migrate several tasks;
  // those are counted in tasks_moved. Invariant:
  //   successes <= tasks_moved <= successes * max_steals.
  // (Before the split, batch steals added `moved` here while RoundResult
  // counted one success per stealing core, so the two disagreed.)
  uint64_t successes = 0;
  uint64_t tasks_moved = 0;
  uint64_t failed_recheck = 0;
  uint64_t failed_no_task = 0;
  // Fault-injection tallies, disjoint from the genuine counters above: an
  // injected abort is NOT counted in failed_recheck, so the attribution
  // obligation (every failed_recheck implicates a successful steal) keeps
  // holding under injection.
  uint64_t injected_aborts = 0;
  uint64_t stalled_attempts = 0;
  uint64_t stale_snapshots = 0;
  uint64_t dropped_rounds = 0;

  uint64_t failures() const { return failed_recheck + failed_no_task; }
  // Exports every counter as "<prefix>.<name>" into the registry.
  void ExportTo(trace::MetricsRegistry& registry, const std::string& prefix) const;
  std::string ToString() const;
};

class LoadBalancer {
 public:
  // `topology` may be null for placement-oblivious policies; it is forwarded
  // to the policy through SelectionView.
  explicit LoadBalancer(std::shared_ptr<const BalancePolicy> policy,
                        const Topology* topology = nullptr);

  const BalancePolicy& policy() const { return *policy_; }
  const BalanceStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BalanceStats{}; }

  // Attaches (or detaches, with nullptr) a fault injector. The engine then
  // perturbs its own seams: rounds may be dropped, cores may straggle, a
  // core's selection may run against the previous round's snapshot, and
  // steal phases may abort as if the re-check lost. Not owned; must outlive
  // the balancer or be detached first.
  void set_fault_injector(fault::FaultInjector* injector) { injector_ = injector; }
  fault::FaultInjector* fault_injector() const { return injector_; }

  // Executes one load-balancing round over the machine.
  RoundResult RunRound(MachineState& machine, Rng& rng, const RoundOptions& options = {});

  // Single-thief attempt: core `thief` runs filter/choice/steal against the
  // given snapshot with steals applied to `machine` immediately. Used by the
  // simulator (cores balance at their own tick times) and by idle balancing.
  CoreAction RunOneAttempt(MachineState& machine, CpuId thief, const LoadSnapshot& snapshot,
                           Rng& rng, bool recheck_filter = true, uint32_t max_steals = 1);

  // The stealing phase alone (Figure 1 step 3), with `victim` already chosen:
  // models the thief holding both runqueue locks — re-check the filter on
  // current loads, pick a task via the migration rule, move it (up to
  // `max_steals` tasks, re-checking everything between moves). Exposed so
  // the verifier can exercise the exact engine semantics for *every*
  // (state, thief, victim) triple, not just the pairs the choice step picks.
  // Outcome is one of kStole / kFailedRecheck / kFailedNoTask; `task` is the
  // first task moved.
  CoreAction ExecuteStealPhase(MachineState& machine, CpuId thief, CpuId victim,
                               bool recheck_filter = true, uint32_t max_steals = 1);

 private:
  std::shared_ptr<const BalancePolicy> policy_;
  const Topology* topology_;
  BalanceStats stats_;
  fault::FaultInjector* injector_ = nullptr;
  // Previous round's shared snapshot, served to cores hit by a
  // stale-snapshot fault (valid once one concurrent round has run).
  LoadSnapshot prev_round_snapshot_;
  bool has_prev_round_snapshot_ = false;
};

}  // namespace optsched

#endif  // OPTSCHED_SRC_CORE_BALANCER_H_
