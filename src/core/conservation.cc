#include "src/core/conservation.h"

#include <set>

#include "src/base/str.h"

namespace optsched {

std::string ConvergenceResult::ToString() const {
  return StrFormat("convergence{converged=%s N=%llu successes=%llu failures=%llu cycle=%s}",
                   converged ? "yes" : "no", static_cast<unsigned long long>(rounds),
                   static_cast<unsigned long long>(total_successes),
                   static_cast<unsigned long long>(total_failures),
                   cycle_detected ? "yes" : "no");
}

ConvergenceResult RunUntilWorkConserved(LoadBalancer& balancer, MachineState& machine, Rng& rng,
                                        const ConvergenceOptions& options) {
  ConvergenceResult result;
  const LoadMetric metric = balancer.policy().metric();
  std::set<std::vector<int64_t>> seen;
  seen.insert(machine.Loads(metric));

  for (uint64_t round = 0; round < options.max_rounds; ++round) {
    if (options.stop_at_work_conserved && machine.WorkConserved()) {
      result.converged = true;
      result.rounds = round;
      result.final_loads = machine.Loads(metric);
      return result;
    }
    const RoundResult rr = balancer.RunRound(machine, rng, options.round);
    result.total_successes += rr.successes;
    result.total_failures += rr.failures;

    const std::vector<int64_t> loads = machine.Loads(metric);
    if (!machine.WorkConserved() && !seen.insert(loads).second) {
      // A non-work-conserved load vector recurred: the §4.3 ping-pong shape.
      // Keep running (random orders may still escape) but remember it.
      result.cycle_detected = true;
    }
    if (!options.stop_at_work_conserved && rr.successes == 0) {
      result.converged = machine.WorkConserved();
      result.rounds = round + 1;
      result.final_loads = loads;
      return result;
    }
  }
  result.converged = machine.WorkConserved();
  result.rounds = options.max_rounds;
  result.final_loads = machine.Loads(metric);
  return result;
}

uint64_t RunUntilQuiescent(LoadBalancer& balancer, MachineState& machine, Rng& rng,
                           const RoundOptions& options, uint64_t max_rounds) {
  for (uint64_t round = 1; round <= max_rounds; ++round) {
    const RoundResult rr = balancer.RunRound(machine, rng, options);
    if (rr.successes == 0) {
      return round;
    }
  }
  return max_rounds;
}

}  // namespace optsched
