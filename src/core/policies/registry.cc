#include "src/core/policies/registry.h"

#include "src/core/policies/broken.h"
#include "src/core/policies/cfs_like.h"
#include "src/core/policies/hierarchical.h"
#include "src/core/policies/locality.h"
#include "src/core/policies/thread_count.h"
#include "src/core/policies/weighted.h"

namespace optsched::policies {

std::shared_ptr<const BalancePolicy> MakePolicyByName(std::string_view name,
                                                      const Topology& topology) {
  if (name == "thread-count") {
    return MakeThreadCount();
  }
  if (name == "weighted-load") {
    return MakeWeightedLoad();
  }
  if (name == "broken-cansteal") {
    return MakeBrokenCanSteal();
  }
  if (name == "hierarchical") {
    return MakeHierarchical(GroupMap::ByNode(topology));
  }
  if (name == "group-sum") {
    return MakeGroupSum(GroupMap::ByNode(topology));
  }
  if (name == "cfs-like") {
    return MakeCfsLike(GroupMap::ByNode(topology));
  }
  if (name == "thread-count+numa") {
    return MakeNumaAware(MakeThreadCount());
  }
  if (name == "thread-count+random-choice") {
    return MakeRandomChoice(MakeThreadCount());
  }
  return nullptr;
}

std::vector<std::string> KnownPolicyNames() {
  return {"thread-count",  "weighted-load",     "broken-cansteal",
          "hierarchical",  "group-sum",         "cfs-like",
          "thread-count+numa", "thread-count+random-choice"};
}

}  // namespace optsched::policies
