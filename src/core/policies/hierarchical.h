// Hierarchical load balancing (paper §5, "remaining challenges"):
//
//   "We aim to extend these abstractions to include hierarchical load
//    balancing, for instance to allow balancing load between groups of
//    cores, and then inside groups, instead of balancing load directly
//    between individual cores."
//
// Two designs are provided, and the contrast between them is the point:
//
//  * HierarchicalPolicy — the *sound* construction. The FILTER stays the
//    global pairwise rule (load difference >= 2, identical to Listing 1), so
//    every proof from §4 carries over verbatim; the hierarchy lives entirely
//    in the CHOICE step, which prefers candidates in the thief's own group
//    and widens scope only when the group has none. Balancing is
//    "inside groups first, between groups when needed" without touching the
//    proof surface (DESIGN.md D5).
//
//  * GroupSumPolicy — the *tempting but unsound* construction: cross-group
//    stealing is gated on aggregate group loads (steal from a group only if
//    its total exceeds the thief group's total by >= 2). It looks like a
//    faithful "balance between groups" rule, but it violates the Lemma-1
//    obligation: with groups {0:[0,1,1,1], 1:[4,0,0,0]}, core 0 is idle, core
//    4 is overloaded, both group sums are close (3 vs 4, difference 1 < 2),
//    the thief's own group has no overloaded core — the filter comes back
//    empty and the idle core starves. src/verify finds exactly this
//    counterexample; bench E7 reports it.

#ifndef OPTSCHED_SRC_CORE_POLICIES_HIERARCHICAL_H_
#define OPTSCHED_SRC_CORE_POLICIES_HIERARCHICAL_H_

#include <memory>
#include <vector>

#include "src/core/policy.h"

namespace optsched::policies {

// Maps each CPU to a group id. Groups are typically NUMA nodes but any
// partition works (the verifier sweeps arbitrary partitions).
class GroupMap {
 public:
  // group_of[cpu] = group id; ids must be dense starting at 0.
  explicit GroupMap(std::vector<uint32_t> group_of);

  // Partition by NUMA node.
  static GroupMap ByNode(const Topology& topology);
  // `num_cpus` CPUs split into equal contiguous groups of `group_size`.
  static GroupMap Contiguous(uint32_t num_cpus, uint32_t group_size);

  uint32_t group_of(CpuId cpu) const;
  uint32_t num_groups() const { return num_groups_; }
  const std::vector<CpuId>& members(uint32_t group) const;

  // Sum of per-core loads over the group, from a snapshot.
  int64_t GroupLoad(const LoadSnapshot& snapshot, uint32_t group, LoadMetric metric) const;

 private:
  std::vector<uint32_t> group_of_;
  std::vector<std::vector<CpuId>> members_;
  uint32_t num_groups_ = 0;
};

// Sound hierarchical policy: Listing-1 filter, group-local-first choice.
class HierarchicalPolicy : public BalancePolicy {
 public:
  HierarchicalPolicy(GroupMap groups, int64_t margin = 2);

  std::string name() const override;
  LoadMetric metric() const override { return LoadMetric::kTaskCount; }
  bool CanSteal(const SelectionView& view, CpuId stealee) const override;
  CpuId SelectCore(const SelectionView& view, const std::vector<CpuId>& candidates,
                   Rng& rng) const override;

  const GroupMap& groups() const { return groups_; }

 private:
  GroupMap groups_;
  int64_t margin_;
};

// Unsound ablation: cross-group steals gated on group totals.
//
// Two distinct failure modes, both found by the verifier:
//  * Lemma-1 violation at any cross_margin: an idle core's filter can be
//    empty while an overloaded core sits in another, sum-balanced group
//    (e.g. groups {[0,1,1], [2,0,0]}: sums 2 vs 2); work conservation then
//    depends on *other* cores healing the victim group — the local proof
//    breaks even when the global property happens to hold.
//  * AF(work-conserved) violation when groups are uneven or cross_margin > 2:
//    e.g. groups {[0,1,1,1], [2,1]} (sums 3 vs 3) is a non-work-conserved
//    *fixpoint* — no filter fires anywhere, the idle core starves forever.
class GroupSumPolicy : public BalancePolicy {
 public:
  GroupSumPolicy(GroupMap groups, int64_t margin = 2, int64_t cross_margin = 2);

  std::string name() const override { return "group-sum(unsound)"; }
  LoadMetric metric() const override { return LoadMetric::kTaskCount; }
  bool CanSteal(const SelectionView& view, CpuId stealee) const override;

  const GroupMap& groups() const { return groups_; }

 private:
  GroupMap groups_;
  int64_t margin_;
  int64_t cross_margin_;
};

std::shared_ptr<const BalancePolicy> MakeHierarchical(GroupMap groups, int64_t margin = 2);
std::shared_ptr<const BalancePolicy> MakeGroupSum(GroupMap groups, int64_t margin = 2,
                                                  int64_t cross_margin = 2);

}  // namespace optsched::policies

#endif  // OPTSCHED_SRC_CORE_POLICIES_HIERARCHICAL_H_
