// Locality-aware CHOICE steps (paper §3.1/§5).
//
// "it is possible to implement cache-aware or NUMA-aware thread placements in
//  the second step of the load balancing without adding any complexity to the
//  proofs."
//
// LocalityChoicePolicy demonstrates exactly that: it *decorates* any base
// policy, keeping the base FILTER and migration rule (the proof-carrying
// parts) and replacing only SelectCore. Because the balancer checks that the
// choice returns a filtered candidate, every locality heuristic below is
// admissible by construction — the verifier never needs to look at it.

#ifndef OPTSCHED_SRC_CORE_POLICIES_LOCALITY_H_
#define OPTSCHED_SRC_CORE_POLICIES_LOCALITY_H_

#include <memory>

#include "src/core/policy.h"

namespace optsched::policies {

enum class LocalityHeuristic {
  // Steal from the topologically nearest candidate (SMT sibling, then same
  // LLC, then same node, then by SLIT distance); ties broken by higher load.
  kNearestFirst,
  // Steal from the most loaded candidate within the nearest topology level
  // that has any candidate (balances harder while staying local).
  kMostLoadedNearby,
  // Uniform random candidate — the stress heuristic; useful to show the
  // proofs hold for *any* choice.
  kUniformRandom,
};

const char* LocalityHeuristicName(LocalityHeuristic heuristic);

class LocalityChoicePolicy : public BalancePolicy {
 public:
  LocalityChoicePolicy(std::shared_ptr<const BalancePolicy> base, LocalityHeuristic heuristic);

  std::string name() const override;
  LoadMetric metric() const override { return base_->metric(); }

  // Delegated untouched: the proof surface is the base policy's.
  bool CanSteal(const SelectionView& view, CpuId stealee) const override;
  bool ShouldMigrate(int64_t task_weight, int64_t victim_load,
                     int64_t thief_load) const override;

  // The locality heuristic. Requires view.topology when the heuristic is
  // topology-driven; falls back to the base choice if it is null.
  CpuId SelectCore(const SelectionView& view, const std::vector<CpuId>& candidates,
                   Rng& rng) const override;

 private:
  std::shared_ptr<const BalancePolicy> base_;
  LocalityHeuristic heuristic_;
};

std::shared_ptr<const BalancePolicy> MakeNumaAware(std::shared_ptr<const BalancePolicy> base);
std::shared_ptr<const BalancePolicy> MakeRandomChoice(std::shared_ptr<const BalancePolicy> base);

}  // namespace optsched::policies

#endif  // OPTSCHED_SRC_CORE_POLICIES_LOCALITY_H_
