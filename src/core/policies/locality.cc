#include "src/core/policies/locality.h"

#include "src/base/check.h"
#include "src/base/str.h"

namespace optsched::policies {

const char* LocalityHeuristicName(LocalityHeuristic heuristic) {
  switch (heuristic) {
    case LocalityHeuristic::kNearestFirst:
      return "nearest-first";
    case LocalityHeuristic::kMostLoadedNearby:
      return "most-loaded-nearby";
    case LocalityHeuristic::kUniformRandom:
      return "uniform-random";
  }
  return "?";
}

LocalityChoicePolicy::LocalityChoicePolicy(std::shared_ptr<const BalancePolicy> base,
                                           LocalityHeuristic heuristic)
    : base_(std::move(base)), heuristic_(heuristic) {
  OPTSCHED_CHECK(base_ != nullptr);
}

std::string LocalityChoicePolicy::name() const {
  return StrFormat("%s+%s", base_->name().c_str(), LocalityHeuristicName(heuristic_));
}

bool LocalityChoicePolicy::CanSteal(const SelectionView& view, CpuId stealee) const {
  return base_->CanSteal(view, stealee);
}

bool LocalityChoicePolicy::ShouldMigrate(int64_t task_weight, int64_t victim_load,
                                         int64_t thief_load) const {
  return base_->ShouldMigrate(task_weight, victim_load, thief_load);
}

CpuId LocalityChoicePolicy::SelectCore(const SelectionView& view,
                                       const std::vector<CpuId>& candidates, Rng& rng) const {
  OPTSCHED_CHECK(!candidates.empty());
  if (heuristic_ == LocalityHeuristic::kUniformRandom) {
    return candidates[rng.NextBelow(candidates.size())];
  }
  if (view.topology == nullptr) {
    return base_->SelectCore(view, candidates, rng);
  }
  const Topology& topo = *view.topology;
  CpuId best = candidates[0];
  uint32_t best_distance = topo.CpuDistance(view.self, best);
  int64_t best_load = view.snapshot.Load(best, metric());
  for (CpuId c : candidates) {
    const uint32_t distance = topo.CpuDistance(view.self, c);
    const int64_t load = view.snapshot.Load(c, metric());
    bool better = false;
    switch (heuristic_) {
      case LocalityHeuristic::kNearestFirst:
        // Primary: distance; secondary: load.
        better = distance < best_distance || (distance == best_distance && load > best_load);
        break;
      case LocalityHeuristic::kMostLoadedNearby:
        // Primary: distance level; secondary: load — same ordering, but the
        // distance is bucketed so "nearby" treats the whole node as one tier.
        {
          const uint32_t tier = distance <= 4 ? 0 : 1;
          const uint32_t best_tier = best_distance <= 4 ? 0 : 1;
          better = tier < best_tier || (tier == best_tier && load > best_load);
        }
        break;
      case LocalityHeuristic::kUniformRandom:
        break;  // handled above
    }
    if (better) {
      best = c;
      best_distance = distance;
      best_load = load;
    }
  }
  return best;
}

std::shared_ptr<const BalancePolicy> MakeNumaAware(std::shared_ptr<const BalancePolicy> base) {
  return std::make_shared<LocalityChoicePolicy>(std::move(base),
                                                LocalityHeuristic::kNearestFirst);
}

std::shared_ptr<const BalancePolicy> MakeRandomChoice(std::shared_ptr<const BalancePolicy> base) {
  return std::make_shared<LocalityChoicePolicy>(std::move(base),
                                                LocalityHeuristic::kUniformRandom);
}

}  // namespace optsched::policies
