#include "src/core/policies/thread_count.h"

#include "src/base/check.h"
#include "src/base/str.h"

namespace optsched::policies {

ThreadCountPolicy::ThreadCountPolicy(int64_t margin) : margin_(margin) {
  OPTSCHED_CHECK_MSG(margin >= 2, "margin < 2 breaks steal safety (victim could become idle)");
}

std::string ThreadCountPolicy::name() const {
  return margin_ == 2 ? "thread-count" : StrFormat("thread-count(margin=%lld)",
                                                   static_cast<long long>(margin_));
}

bool ThreadCountPolicy::CanSteal(const SelectionView& view, CpuId stealee) const {
  const LoadSnapshot& s = view.snapshot;
  return s.Load(stealee, LoadMetric::kTaskCount) - s.Load(view.self, LoadMetric::kTaskCount) >=
         margin_;
}

std::shared_ptr<const BalancePolicy> MakeThreadCount(int64_t margin) {
  return std::make_shared<ThreadCountPolicy>(margin);
}

}  // namespace optsched::policies
