#include "src/core/policies/broken.h"

#include "src/base/check.h"

namespace optsched::policies {

bool BrokenCanStealPolicy::CanSteal(const SelectionView& view, CpuId stealee) const {
  (void)view;
  return view.snapshot.Load(stealee, LoadMetric::kTaskCount) >= 2;
}

bool BrokenCanStealPolicy::ShouldMigrate(int64_t task_weight, int64_t victim_load,
                                         int64_t thief_load) const {
  (void)task_weight;
  (void)thief_load;
  // Only requirement: the victim keeps at least one task. No relation to the
  // thief's load — this is what permits the infinite ping-pong.
  return victim_load >= 2;
}

CpuId BrokenCanStealPolicy::SelectCore(const SelectionView& view,
                                       const std::vector<CpuId>& candidates, Rng& rng) const {
  (void)view;
  (void)rng;
  OPTSCHED_CHECK(!candidates.empty());
  CpuId best = candidates[0];
  int64_t best_load = view.snapshot.Load(best, LoadMetric::kTaskCount);
  for (CpuId c : candidates) {
    const int64_t load = view.snapshot.Load(c, LoadMetric::kTaskCount);
    if (load >= best_load) {  // ties go to the highest id
      best = c;
      best_load = load;
    }
  }
  return best;
}

std::shared_ptr<const BalancePolicy> MakeBrokenCanSteal() {
  return std::make_shared<BrokenCanStealPolicy>();
}

}  // namespace optsched::policies
