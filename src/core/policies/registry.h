// Name-based policy construction, used by benches, examples and tests to
// sweep over policies without hard-wiring types.

#ifndef OPTSCHED_SRC_CORE_POLICIES_REGISTRY_H_
#define OPTSCHED_SRC_CORE_POLICIES_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/policy.h"
#include "src/topology/topology.h"

namespace optsched::policies {

// Known names: "thread-count", "weighted-load", "broken-cansteal",
// "hierarchical", "group-sum", "cfs-like", "thread-count+numa",
// "thread-count+random-choice". Group-based policies partition by NUMA node
// of `topology`. Returns nullptr for unknown names.
std::shared_ptr<const BalancePolicy> MakePolicyByName(std::string_view name,
                                                      const Topology& topology);

// All known policy names, in a stable order.
std::vector<std::string> KnownPolicyNames();

}  // namespace optsched::policies

#endif  // OPTSCHED_SRC_CORE_POLICIES_REGISTRY_H_
