// Balance thread counts weighted by importance (paper §3.1/§4.2: "the load
// balancer tries to balance the number of threads weighted by their
// importance"; §4.2 reports the Lemma-1 proof "is still automatically
// verified for a load balancer that tries to balance the number of threads
// weighted by their importance").
//
// Filter design. A weighted-difference filter alone cannot guarantee the
// Lemma-1 direction "overloaded => stealable": an overloaded core full of
// tiny-weight tasks may have a smaller weighted load than an idle-adjacent
// core's. We therefore filter on *both*: the stealee must be overloaded in
// the thread-count sense (>= 2 tasks, so stealing never idles it) and its
// weighted load must strictly exceed the thief's (so weighted imbalance
// shrinks). The migration rule then only moves a task whose weight is less
// than the weighted-load difference, which is exactly the strict-decrease
// condition for the potential function d over weighted loads (§4.3).

#ifndef OPTSCHED_SRC_CORE_POLICIES_WEIGHTED_H_
#define OPTSCHED_SRC_CORE_POLICIES_WEIGHTED_H_

#include <memory>

#include "src/core/policy.h"

namespace optsched::policies {

class WeightedLoadPolicy : public BalancePolicy {
 public:
  WeightedLoadPolicy() = default;

  std::string name() const override { return "weighted-load"; }
  LoadMetric metric() const override { return LoadMetric::kWeightedLoad; }

  // Stealee has >= 2 tasks AND strictly more weighted load than the thief.
  bool CanSteal(const SelectionView& view, CpuId stealee) const override;

  // Move a task only if its weight is strictly below the current weighted
  // difference (strict potential decrease; inherited default already does
  // this — restated here for emphasis and tested explicitly).
  bool ShouldMigrate(int64_t task_weight, int64_t victim_load,
                     int64_t thief_load) const override;
};

std::shared_ptr<const BalancePolicy> MakeWeightedLoad();

}  // namespace optsched::policies

#endif  // OPTSCHED_SRC_CORE_POLICIES_WEIGHTED_H_
