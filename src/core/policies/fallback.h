// Fallback composition: repair a locality-restricted filter by union with a
// proven one.
//
// Locality-minded filters (e.g. "steal across nodes only above a larger
// margin", examples/policies/numa_margin.osp) break Lemma 1: overload hidden
// behind the stricter remote margin starves idle thieves. The fix that keeps
// the locality *preference* without the soundness hole is composition:
//
//   filter   = primary.filter  UNION  fallback.filter
//   choice   = prefer candidates the primary admits (locality), use the
//              fallback's choice among the rest only when the primary's set
//              is empty
//   migrate  = primary AND fallback (a task moves only if both rules allow
//              it, so the proven strict-decrease rule always applies)
//
// Soundness is inherited from the fallback: its filter alone satisfies
// Lemma 1's existence half, the union preserves it, and "only overloaded"
// holds when both components satisfy it. The migration conjunction keeps
// the potential argument. The primary contributes *preference only* — the
// same division of labour as the paper's filter/choice split, one level up.

#ifndef OPTSCHED_SRC_CORE_POLICIES_FALLBACK_H_
#define OPTSCHED_SRC_CORE_POLICIES_FALLBACK_H_

#include <memory>

#include "src/core/policy.h"

namespace optsched::policies {

class FallbackPolicy : public BalancePolicy {
 public:
  // Both policies must balance the same metric.
  FallbackPolicy(std::shared_ptr<const BalancePolicy> primary,
                 std::shared_ptr<const BalancePolicy> fallback);

  std::string name() const override;
  LoadMetric metric() const override { return fallback_->metric(); }

  bool CanSteal(const SelectionView& view, CpuId stealee) const override;
  CpuId SelectCore(const SelectionView& view, const std::vector<CpuId>& candidates,
                   Rng& rng) const override;
  bool ShouldMigrate(int64_t task_weight, int64_t victim_load,
                     int64_t thief_load) const override;

 private:
  std::shared_ptr<const BalancePolicy> primary_;
  std::shared_ptr<const BalancePolicy> fallback_;
};

std::shared_ptr<const BalancePolicy> MakeFallback(
    std::shared_ptr<const BalancePolicy> primary,
    std::shared_ptr<const BalancePolicy> fallback);

}  // namespace optsched::policies

#endif  // OPTSCHED_SRC_CORE_POLICIES_FALLBACK_H_
