#include "src/core/policies/weighted.h"

namespace optsched::policies {

bool WeightedLoadPolicy::CanSteal(const SelectionView& view, CpuId stealee) const {
  const LoadSnapshot& s = view.snapshot;
  return s.Load(stealee, LoadMetric::kTaskCount) >= 2 &&
         s.Load(stealee, LoadMetric::kWeightedLoad) >
             s.Load(view.self, LoadMetric::kWeightedLoad);
}

bool WeightedLoadPolicy::ShouldMigrate(int64_t task_weight, int64_t victim_load,
                                       int64_t thief_load) const {
  return task_weight > 0 && task_weight < victim_load - thief_load;
}

std::shared_ptr<const BalancePolicy> MakeWeightedLoad() {
  return std::make_shared<WeightedLoadPolicy>();
}

}  // namespace optsched::policies
