#include "src/core/policies/hierarchical.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/base/str.h"

namespace optsched::policies {

GroupMap::GroupMap(std::vector<uint32_t> group_of) : group_of_(std::move(group_of)) {
  OPTSCHED_CHECK(!group_of_.empty());
  uint32_t max_group = 0;
  for (uint32_t g : group_of_) {
    max_group = std::max(max_group, g);
  }
  num_groups_ = max_group + 1;
  members_.assign(num_groups_, {});
  for (CpuId cpu = 0; cpu < group_of_.size(); ++cpu) {
    members_[group_of_[cpu]].push_back(cpu);
  }
  for (uint32_t g = 0; g < num_groups_; ++g) {
    OPTSCHED_CHECK_MSG(!members_[g].empty(), "group ids must be dense");
  }
}

GroupMap GroupMap::ByNode(const Topology& topology) {
  std::vector<uint32_t> group_of(topology.num_cpus());
  for (CpuId cpu = 0; cpu < topology.num_cpus(); ++cpu) {
    group_of[cpu] = topology.NodeOf(cpu);
  }
  return GroupMap(std::move(group_of));
}

GroupMap GroupMap::Contiguous(uint32_t num_cpus, uint32_t group_size) {
  OPTSCHED_CHECK(num_cpus > 0 && group_size > 0);
  std::vector<uint32_t> group_of(num_cpus);
  for (CpuId cpu = 0; cpu < num_cpus; ++cpu) {
    group_of[cpu] = cpu / group_size;
  }
  return GroupMap(std::move(group_of));
}

uint32_t GroupMap::group_of(CpuId cpu) const {
  OPTSCHED_CHECK(cpu < group_of_.size());
  return group_of_[cpu];
}

const std::vector<CpuId>& GroupMap::members(uint32_t group) const {
  OPTSCHED_CHECK(group < num_groups_);
  return members_[group];
}

int64_t GroupMap::GroupLoad(const LoadSnapshot& snapshot, uint32_t group,
                            LoadMetric metric) const {
  int64_t total = 0;
  for (CpuId cpu : members(group)) {
    total += snapshot.Load(cpu, metric);
  }
  return total;
}

HierarchicalPolicy::HierarchicalPolicy(GroupMap groups, int64_t margin)
    : groups_(std::move(groups)), margin_(margin) {
  OPTSCHED_CHECK_MSG(margin >= 2, "margin < 2 breaks steal safety");
}

std::string HierarchicalPolicy::name() const {
  return StrFormat("hierarchical(%u groups)", groups_.num_groups());
}

bool HierarchicalPolicy::CanSteal(const SelectionView& view, CpuId stealee) const {
  // Identical to Listing 1: the filter carries the proof, the hierarchy does
  // not appear here at all.
  const LoadSnapshot& s = view.snapshot;
  return s.Load(stealee, LoadMetric::kTaskCount) - s.Load(view.self, LoadMetric::kTaskCount) >=
         margin_;
}

CpuId HierarchicalPolicy::SelectCore(const SelectionView& view,
                                     const std::vector<CpuId>& candidates, Rng& rng) const {
  (void)rng;
  OPTSCHED_CHECK(!candidates.empty());
  // Inside-group first: restrict to candidates in the thief's own group when
  // any exist; across groups, prefer the heaviest group, then the heaviest
  // core within it.
  const uint32_t own = groups_.group_of(view.self);
  CpuId best = candidates[0];
  bool best_local = groups_.group_of(best) == own;
  int64_t best_group_load = groups_.GroupLoad(view.snapshot, groups_.group_of(best), metric());
  int64_t best_load = view.snapshot.Load(best, metric());
  for (CpuId c : candidates) {
    const bool local = groups_.group_of(c) == own;
    const int64_t group_load = groups_.GroupLoad(view.snapshot, groups_.group_of(c), metric());
    const int64_t load = view.snapshot.Load(c, metric());
    const bool better = (local && !best_local) ||
                        (local == best_local &&
                         (group_load > best_group_load ||
                          (group_load == best_group_load && load > best_load)));
    if (better) {
      best = c;
      best_local = local;
      best_group_load = group_load;
      best_load = load;
    }
  }
  return best;
}

GroupSumPolicy::GroupSumPolicy(GroupMap groups, int64_t margin, int64_t cross_margin)
    : groups_(std::move(groups)), margin_(margin), cross_margin_(cross_margin) {
  OPTSCHED_CHECK(margin >= 2);
  OPTSCHED_CHECK(cross_margin >= 2);
}

bool GroupSumPolicy::CanSteal(const SelectionView& view, CpuId stealee) const {
  const LoadSnapshot& s = view.snapshot;
  const uint32_t own = groups_.group_of(view.self);
  const uint32_t theirs = groups_.group_of(stealee);
  if (own == theirs) {
    return s.Load(stealee, metric()) - s.Load(view.self, metric()) >= margin_;
  }
  // Cross-group rule on aggregates: this is the unsound part — it can hide an
  // overloaded core behind a balanced-looking group total.
  return groups_.GroupLoad(s, theirs, metric()) - groups_.GroupLoad(s, own, metric()) >=
             cross_margin_ &&
         s.Load(stealee, metric()) >= 2;
}

std::shared_ptr<const BalancePolicy> MakeHierarchical(GroupMap groups, int64_t margin) {
  return std::make_shared<HierarchicalPolicy>(std::move(groups), margin);
}

std::shared_ptr<const BalancePolicy> MakeGroupSum(GroupMap groups, int64_t margin,
                                                  int64_t cross_margin) {
  return std::make_shared<GroupSumPolicy>(std::move(groups), margin, cross_margin);
}

}  // namespace optsched::policies
