// A CFS-flavoured baseline with the heuristics that make CFS *not* provably
// work-conserving.
//
// The paper's motivation (§1) cites Lozi et al., "The Linux scheduler: a
// decade of wasted cores" (EuroSys'16): CFS "has been shown to leave cores
// idle while threads are waiting in runqueues", costing many-fold slowdowns
// on scientific applications and up to 25% throughput on databases. Those
// bugs share a root cause: CFS balances on *aggregated, thresholded* signals
// (scheduling-group averages and an imbalance percentage) rather than on the
// per-core predicate "someone is overloaded while I am idle".
//
// CfsLikePolicy reproduces that family of heuristics inside the three-step
// abstraction so the two worlds are directly comparable:
//
//  * within a scheduling group: the sound pairwise rule (diff >= 2);
//  * across groups: a steal is admitted only if (a) the thief is its group's
//    *designated* balancer (the lowest-numbered idle core — in CFS only one
//    core per domain runs the outer-level balance), and (b) the victim
//    group's average load exceeds the thief group's average by more than the
//    imbalance factor (CFS's imbalance_pct, default 25%), and (c) the victim
//    itself has something to give.
//
// Condition (b) is the "group imbalance" bug shape: a group whose average
// looks fine can still contain an overloaded core; condition (a) is the
// "designated core" serialization that delays recovery. The verifier
// exhibits concrete starvation states for this filter (see
// verify/proofs_test.cc), and bench E6 measures the resulting wasted-core
// time against the proven policies.

#ifndef OPTSCHED_SRC_CORE_POLICIES_CFS_LIKE_H_
#define OPTSCHED_SRC_CORE_POLICIES_CFS_LIKE_H_

#include <memory>

#include "src/core/policies/hierarchical.h"
#include "src/core/policy.h"

namespace optsched::policies {

class CfsLikePolicy : public BalancePolicy {
 public:
  // imbalance_factor: the victim group's average must exceed the thief
  // group's average multiplied by this (CFS: imbalance_pct=125 => 1.25).
  CfsLikePolicy(GroupMap groups, double imbalance_factor = 1.25);

  std::string name() const override { return "cfs-like"; }
  LoadMetric metric() const override { return LoadMetric::kTaskCount; }
  bool CanSteal(const SelectionView& view, CpuId stealee) const override;

  const GroupMap& groups() const { return groups_; }

 private:
  // True if `cpu` is the lowest-numbered idle core of its group.
  bool IsDesignatedBalancer(const LoadSnapshot& snapshot, CpuId cpu) const;

  GroupMap groups_;
  double imbalance_factor_;
};

std::shared_ptr<const BalancePolicy> MakeCfsLike(GroupMap groups,
                                                 double imbalance_factor = 1.25);

}  // namespace optsched::policies

#endif  // OPTSCHED_SRC_CORE_POLICIES_CFS_LIKE_H_
