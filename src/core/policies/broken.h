// The paper's §4.3 counterexample filter:
//
//   def canSteal(stealee) = { stealee.load() >= 2 }
//
// "This filter makes our algorithm incorrect in the presence of failures."
// Any core — however loaded — may steal from any overloaded core, so two
// non-idle cores can ping-pong a thread between themselves forever while an
// idle core's steals keep failing. The paper's 3-core scenario: loads
// (0, 1, 2); cores 0 and 1 both target core 2; core 1 wins, producing
// (0, 2, 1); next round mirrors it back; core 0 starves indefinitely.
//
// The policy is included so that the verifier and the benches can *detect*
// the flaw (livelock cycle in the round-transition graph, non-decreasing
// potential along the cycle), demonstrating that the proof obligations are
// discriminating and not vacuously satisfied.

#ifndef OPTSCHED_SRC_CORE_POLICIES_BROKEN_H_
#define OPTSCHED_SRC_CORE_POLICIES_BROKEN_H_

#include <memory>

#include "src/core/policy.h"

namespace optsched::policies {

class BrokenCanStealPolicy : public BalancePolicy {
 public:
  BrokenCanStealPolicy() = default;

  std::string name() const override { return "broken-cansteal"; }
  LoadMetric metric() const override { return LoadMetric::kTaskCount; }

  // stealee.load() >= 2, regardless of the thief's own load.
  bool CanSteal(const SelectionView& view, CpuId stealee) const override;

  // The broken filter must be paired with an equally permissive migration
  // rule, otherwise the default (strict potential decrease) would silently
  // repair it: we allow any move that does not idle the victim.
  bool ShouldMigrate(int64_t task_weight, int64_t victim_load,
                     int64_t thief_load) const override;

  // Deterministically prefer the most-loaded candidate with the *highest* id
  // so the paper's 3-core example reproduces its exact ping-pong schedule.
  CpuId SelectCore(const SelectionView& view, const std::vector<CpuId>& candidates,
                   Rng& rng) const override;
};

std::shared_ptr<const BalancePolicy> MakeBrokenCanSteal();

}  // namespace optsched::policies

#endif  // OPTSCHED_SRC_CORE_POLICIES_BROKEN_H_
