#include "src/core/policies/cfs_like.h"

#include "src/base/check.h"

namespace optsched::policies {

CfsLikePolicy::CfsLikePolicy(GroupMap groups, double imbalance_factor)
    : groups_(std::move(groups)), imbalance_factor_(imbalance_factor) {
  OPTSCHED_CHECK(imbalance_factor >= 1.0);
}

bool CfsLikePolicy::IsDesignatedBalancer(const LoadSnapshot& snapshot, CpuId cpu) const {
  if (snapshot.Load(cpu, LoadMetric::kTaskCount) != 0) {
    return false;
  }
  for (CpuId other : groups_.members(groups_.group_of(cpu))) {
    if (other == cpu) {
      return true;  // lowest-numbered idle member reached first
    }
    if (snapshot.Load(other, LoadMetric::kTaskCount) == 0) {
      return false;
    }
  }
  return false;
}

bool CfsLikePolicy::CanSteal(const SelectionView& view, CpuId stealee) const {
  const LoadSnapshot& s = view.snapshot;
  const uint32_t own = groups_.group_of(view.self);
  const uint32_t theirs = groups_.group_of(stealee);
  if (own == theirs) {
    return s.Load(stealee, metric()) - s.Load(view.self, metric()) >= 2;
  }
  if (!IsDesignatedBalancer(s, view.self)) {
    return false;
  }
  const double own_avg = static_cast<double>(groups_.GroupLoad(s, own, metric())) /
                         static_cast<double>(groups_.members(own).size());
  const double their_avg = static_cast<double>(groups_.GroupLoad(s, theirs, metric())) /
                           static_cast<double>(groups_.members(theirs).size());
  // CFS-style thresholded comparison of group averages: imbalance below the
  // factor is deemed "balanced enough" — the group-imbalance bug shape.
  if (their_avg <= own_avg * imbalance_factor_) {
    return false;
  }
  return s.Load(stealee, metric()) >= 2;
}

std::shared_ptr<const BalancePolicy> MakeCfsLike(GroupMap groups, double imbalance_factor) {
  return std::make_shared<CfsLikePolicy>(std::move(groups), imbalance_factor);
}

}  // namespace optsched::policies
