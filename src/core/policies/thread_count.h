// The paper's Listing 1: balance the raw number of threads.
//
//   def canSteal(stealee: Core): Boolean = {
//     stealee.load() - self.load() >= 2     // Step 1, user-defined filter
//   }
//
// with load() = ready.size + current.size, stealing one thread at a time.
// This is the policy whose work-conservation proof the paper sketches in
// §4.2-§4.3; src/verify discharges the same obligations over bounded state
// spaces and adversarial steal orders.

#ifndef OPTSCHED_SRC_CORE_POLICIES_THREAD_COUNT_H_
#define OPTSCHED_SRC_CORE_POLICIES_THREAD_COUNT_H_

#include <memory>

#include "src/core/policy.h"

namespace optsched::policies {

class ThreadCountPolicy : public BalancePolicy {
 public:
  // `margin` is the minimum load difference that makes a core stealable; the
  // paper uses 2 (the smallest value for which stealing one thread never
  // inverts the imbalance and never idles the victim). Values < 2 are
  // rejected: they break steal safety.
  explicit ThreadCountPolicy(int64_t margin = 2);

  std::string name() const override;
  LoadMetric metric() const override { return LoadMetric::kTaskCount; }
  bool CanSteal(const SelectionView& view, CpuId stealee) const override;

  int64_t margin() const { return margin_; }

 private:
  int64_t margin_;
};

std::shared_ptr<const BalancePolicy> MakeThreadCount(int64_t margin = 2);

}  // namespace optsched::policies

#endif  // OPTSCHED_SRC_CORE_POLICIES_THREAD_COUNT_H_
