#include "src/core/policies/fallback.h"

#include "src/base/check.h"
#include "src/base/str.h"

namespace optsched::policies {

FallbackPolicy::FallbackPolicy(std::shared_ptr<const BalancePolicy> primary,
                               std::shared_ptr<const BalancePolicy> fallback)
    : primary_(std::move(primary)), fallback_(std::move(fallback)) {
  OPTSCHED_CHECK(primary_ != nullptr && fallback_ != nullptr);
  OPTSCHED_CHECK_MSG(primary_->metric() == fallback_->metric(),
                     "fallback composition requires a shared load metric");
}

std::string FallbackPolicy::name() const {
  return StrFormat("%s||%s", primary_->name().c_str(), fallback_->name().c_str());
}

bool FallbackPolicy::CanSteal(const SelectionView& view, CpuId stealee) const {
  return primary_->CanSteal(view, stealee) || fallback_->CanSteal(view, stealee);
}

CpuId FallbackPolicy::SelectCore(const SelectionView& view, const std::vector<CpuId>& candidates,
                                 Rng& rng) const {
  OPTSCHED_CHECK(!candidates.empty());
  // Locality preference: restrict to the primary's own candidates when any
  // survive; delegate the pick to the matching component.
  std::vector<CpuId> preferred;
  for (CpuId c : candidates) {
    if (primary_->CanSteal(view, c)) {
      preferred.push_back(c);
    }
  }
  if (!preferred.empty()) {
    return primary_->SelectCore(view, preferred, rng);
  }
  return fallback_->SelectCore(view, candidates, rng);
}

bool FallbackPolicy::ShouldMigrate(int64_t task_weight, int64_t victim_load,
                                   int64_t thief_load) const {
  // Conjunction: the proven component's rule always applies, so every
  // migration the composite performs satisfies the strict-decrease argument.
  return primary_->ShouldMigrate(task_weight, victim_load, thief_load) &&
         fallback_->ShouldMigrate(task_weight, victim_load, thief_load);
}

std::shared_ptr<const BalancePolicy> MakeFallback(
    std::shared_ptr<const BalancePolicy> primary,
    std::shared_ptr<const BalancePolicy> fallback) {
  return std::make_shared<FallbackPolicy>(std::move(primary), std::move(fallback));
}

}  // namespace optsched::policies
