#include "src/core/policy.h"

#include "src/base/check.h"
#include "src/base/thread_annotations.h"

namespace optsched {

CpuId BalancePolicy::SelectCore(const SelectionView& view, const std::vector<CpuId>& candidates,
                                Rng& rng) const {
  (void)rng;
  OPTSCHED_CHECK(!candidates.empty());
  CpuId best = candidates[0];
  int64_t best_load = view.snapshot.Load(best, metric());
  for (CpuId c : candidates) {
    const int64_t load = view.snapshot.Load(c, metric());
    if (load > best_load) {
      best = c;
      best_load = load;
    }
  }
  return best;
}

bool BalancePolicy::ShouldMigrate(int64_t task_weight, int64_t victim_load,
                                  int64_t thief_load) const {
  // Strict potential decrease: 0 < w < victim - thief (see
  // MachineState::Potential and DESIGN.md D4).
  return task_weight > 0 && task_weight < victim_load - thief_load;
}

uint32_t BalancePolicy::StealBatchHint(int64_t victim_load, int64_t thief_load) const {
  // Steal-half: move ceil(gap/2) tasks so the locked pair ends balanced.
  // Never less than 1 — a hint of 0 would turn an eligible steal into a
  // guaranteed failure, which is the migration rule's job to decide.
  const int64_t gap = victim_load - thief_load;
  if (gap <= 1) {
    return 1;
  }
  return static_cast<uint32_t>((gap + 1) / 2);
}

std::vector<CpuId> BalancePolicy::FilterCandidates(const SelectionView& view) const {
  std::vector<CpuId> out;
  FilterCandidatesInto(view, out);
  return out;
}

OPTSCHED_HOT_PATH void BalancePolicy::FilterCandidatesInto(const SelectionView& view,
                                                           std::vector<CpuId>& out) const {
  out.clear();
  for (CpuId c = 0; c < view.snapshot.num_cpus(); ++c) {
    if (c != view.self && CanSteal(view, c)) {
      // optsched-lint: allow(hot-path-alloc): candidate list reuses its high-water capacity (at most num_cpus entries)
      out.push_back(c);
    }
  }
}

int64_t PolicyLoad(const BalancePolicy& policy, const LoadSnapshot& snapshot, CpuId cpu) {
  return snapshot.Load(cpu, policy.metric());
}

}  // namespace optsched
