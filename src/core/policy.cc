#include "src/core/policy.h"

#include "src/base/check.h"

namespace optsched {

CpuId BalancePolicy::SelectCore(const SelectionView& view, const std::vector<CpuId>& candidates,
                                Rng& rng) const {
  (void)rng;
  OPTSCHED_CHECK(!candidates.empty());
  CpuId best = candidates[0];
  int64_t best_load = view.snapshot.Load(best, metric());
  for (CpuId c : candidates) {
    const int64_t load = view.snapshot.Load(c, metric());
    if (load > best_load) {
      best = c;
      best_load = load;
    }
  }
  return best;
}

bool BalancePolicy::ShouldMigrate(int64_t task_weight, int64_t victim_load,
                                  int64_t thief_load) const {
  // Strict potential decrease: 0 < w < victim - thief (see
  // MachineState::Potential and DESIGN.md D4).
  return task_weight > 0 && task_weight < victim_load - thief_load;
}

std::vector<CpuId> BalancePolicy::FilterCandidates(const SelectionView& view) const {
  std::vector<CpuId> out;
  for (CpuId c = 0; c < view.snapshot.num_cpus(); ++c) {
    if (c != view.self && CanSteal(view, c)) {
      out.push_back(c);
    }
  }
  return out;
}

int64_t PolicyLoad(const BalancePolicy& policy, const LoadSnapshot& snapshot, CpuId cpu) {
  return snapshot.Load(cpu, policy.metric());
}

}  // namespace optsched
