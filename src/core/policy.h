// The paper's core abstraction: a load-balancing policy decomposed into the
// three steps of Figure 1.
//
//   Step 1  FILTER  (lock-free, read-only)  "Only keep stealable cores"
//   Step 2  CHOICE  (lock-free, read-only)  "Choose a core to steal from"
//   Step 3  STEAL   (both runqueues locked) "Steal"
//
// The decomposition is what makes the proofs tractable (§3.1): the
// work-conservation proof constrains only the FILTER (and the migration rule
// applied in STEAL); the CHOICE step — where all the placement heuristics
// live, e.g. NUMA- or cache-awareness — "can mostly be ignored in the
// work-conserving proof" provided it returns a member of the filtered set.
// The API makes that contract structural:
//
//  * CanSteal sees only a LoadSnapshot — an immutable copy of per-core loads.
//    A policy cannot mutate runqueues from the selection phase because it is
//    never handed one. ("the selection phase may not modify runqueues, and
//    all accesses to shared variables must be read-only", §3.1.)
//  * SelectCore receives the filtered candidate list and the balancer CHECKs
//    that the returned core is a member (Listing 1: `ensuring(res =>
//    cores.contains(res))`).
//  * The STEAL step re-evaluates CanSteal against *current* loads under both
//    runqueue locks before migrating (Listing 1 line 12), and consults
//    ShouldMigrate to pick a task whose move strictly decreases the potential
//    function — the termination argument of §4.3.

#ifndef OPTSCHED_SRC_CORE_POLICY_H_
#define OPTSCHED_SRC_CORE_POLICY_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/sched/machine_state.h"
#include "src/topology/topology.h"

namespace optsched {

// Everything the lock-free selection phase may look at. `snapshot` is a copy
// taken at some earlier instant — by the time decisions execute it may be
// stale; that staleness is precisely the "optimistic" part of the model.
struct SelectionView {
  CpuId self;
  const LoadSnapshot& snapshot;
  // Null for topology-oblivious policies. Never null when the balancer was
  // constructed with a topology.
  const Topology* topology = nullptr;
};

// A load-balancing policy: the user-defined parts of Listing 1.
class BalancePolicy {
 public:
  virtual ~BalancePolicy() = default;

  // Identifies the policy in tables, traces and verifier reports.
  virtual std::string name() const = 0;

  // Which load metric the policy balances (paper §3.1: the criteria are
  // policy-defined; we only verify they do not waste CPU).
  virtual LoadMetric metric() const { return LoadMetric::kTaskCount; }

  // STEP 1 (filter). True if `view.self` may steal from `stealee` given the
  // snapshot. Must be a pure function of its arguments: it is re-evaluated
  // under locks in the steal phase, and the verifier enumerates it over
  // abstract states.
  virtual bool CanSteal(const SelectionView& view, CpuId stealee) const = 0;

  // STEP 2 (choice). Picks one core from `candidates` (never empty; every
  // member passed CanSteal). The default takes the most-loaded candidate,
  // breaking ties by lowest id. Overrides are free to use topology, task
  // placement hints or randomness — none of it affects the proofs.
  virtual CpuId SelectCore(const SelectionView& view, const std::vector<CpuId>& candidates,
                           Rng& rng) const;

  // STEP 3 (migration rule). Called under both runqueue locks, after CanSteal
  // has been re-confirmed on current loads. True if migrating a ready task of
  // weight `task_weight` (1 for the kTaskCount metric) from a victim at
  // `victim_load` to a thief at `thief_load` is allowed. The proofs require
  // that any permitted migration strictly decreases |victim - thief| load
  // difference, i.e. 0 < w < victim_load - thief_load; the default enforces
  // exactly that.
  virtual bool ShouldMigrate(int64_t task_weight, int64_t victim_load, int64_t thief_load) const;

  // CHOICE-layer batching hint: how many tasks one successful steal action
  // should move, given the locked (exact) loads of the pair. The default is
  // steal-half — ceil((victim - thief) / 2), the point where the pair is
  // balanced — matching the Leiserson/Schardl/Suksompong observation that if
  // successful steals are bounded, each one should move enough work to
  // matter. This is only a HINT: the runtime caps it with its own
  // `max_steal_batch` configuration, and every individual migration in the
  // batch is still gated by ShouldMigrate against loads updated move-by-move,
  // so the per-migration proofs (strict potential decrease, victim never
  // idled) are untouched by whatever a policy returns here.
  virtual uint32_t StealBatchHint(int64_t victim_load, int64_t thief_load) const;

  // Helper: runs STEP 1 over all cores, returning the stealable set in dense
  // core order. (Not virtual: the decomposition is the abstraction.)
  std::vector<CpuId> FilterCandidates(const SelectionView& view) const;

  // Allocation-free variant for the runtime's hot path: clears and refills
  // `out`, reusing its capacity (steady state: zero heap traffic per call).
  void FilterCandidatesInto(const SelectionView& view, std::vector<CpuId>& out) const;
};

// Load of a core as this policy measures it.
int64_t PolicyLoad(const BalancePolicy& policy, const LoadSnapshot& snapshot, CpuId cpu);

}  // namespace optsched

#endif  // OPTSCHED_SRC_CORE_POLICY_H_
