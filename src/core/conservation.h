// Work-conservation measurement (paper §3.2).
//
// The paper's definition: scheduler s is work-conserving iff for every start
// state there exists an N such that after N load-balancing rounds no core is
// idle while another core is overloaded. This module *measures* the N for a
// concrete run (the verifier in src/verify *proves* existence over all states
// and adversarial orders). It also detects the failure mode of §4.3: a
// livelock in which rounds keep succeeding/failing but the idle core never
// obtains work (the infinite ping-pong of the broken filter).

#ifndef OPTSCHED_SRC_CORE_CONSERVATION_H_
#define OPTSCHED_SRC_CORE_CONSERVATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/core/balancer.h"
#include "src/sched/machine_state.h"

namespace optsched {

struct ConvergenceResult {
  // True iff a work-conserved state was reached within max_rounds.
  bool converged = false;
  // Rounds executed until the first work-conserved state (== the paper's N
  // for this run); max_rounds if !converged.
  uint64_t rounds = 0;
  uint64_t total_successes = 0;
  uint64_t total_failures = 0;
  // True if a previously-seen machine load vector recurred without reaching
  // work conservation — with a deterministic order this certifies a livelock;
  // with random order it is strong evidence of ping-pong (§4.3).
  bool cycle_detected = false;
  std::vector<int64_t> final_loads;

  std::string ToString() const;
};

struct ConvergenceOptions {
  RoundOptions round;
  uint64_t max_rounds = 10000;
  // Stop at the first work-conserved state (the paper's N) rather than
  // balancing to quiescence.
  bool stop_at_work_conserved = true;
};

// Runs rounds until work conservation (or quiescence), a cycle, or the round
// budget is exhausted. Mutates `machine`.
ConvergenceResult RunUntilWorkConserved(LoadBalancer& balancer, MachineState& machine, Rng& rng,
                                        const ConvergenceOptions& options = {});

// Runs rounds until no round performs a successful steal (full balance
// fixpoint). Returns rounds executed (the final, quiescent round included).
uint64_t RunUntilQuiescent(LoadBalancer& balancer, MachineState& machine, Rng& rng,
                           const RoundOptions& options = {}, uint64_t max_rounds = 100000);

}  // namespace optsched

#endif  // OPTSCHED_SRC_CORE_CONSERVATION_H_
