#include "src/core/hier_balancer.h"

#include <algorithm>
#include <numeric>

#include "src/base/check.h"

namespace optsched {

HierarchicalBalancer::HierarchicalBalancer(std::shared_ptr<const BalancePolicy> policy,
                                           const Topology& topology)
    : topology_(topology),
      hierarchy_(BuildDomains(topology)),
      balancer_(std::move(policy), &topology_) {
  domain_path_.reserve(topology.num_cpus());
  for (CpuId cpu = 0; cpu < topology.num_cpus(); ++cpu) {
    domain_path_.push_back(hierarchy_.DomainPath(cpu));
  }
  level_stats_.reserve(hierarchy_.levels.size() + 1);
  for (const auto& level : hierarchy_.levels) {
    LevelStats stats;
    stats.name = level.empty() ? "?" : level[0].name;
    level_stats_.push_back(std::move(stats));
  }
  // Synthetic outermost level for single-CPU machines with no domains.
  if (level_stats_.empty()) {
    level_stats_.push_back(LevelStats{.name = "MACHINE", .attempts = 0, .successes = 0,
                                      .failures = 0});
  }
}

CoreAction HierarchicalBalancer::RunOneAttempt(MachineState& machine, CpuId thief,
                                               const LoadSnapshot& snapshot, Rng& rng,
                                               bool recheck_filter, size_t* level_out) {
  CoreAction action;
  action.thief = thief;
  action.outcome = StealOutcome::kNoCandidates;
  if (level_out != nullptr) {
    *level_out = SIZE_MAX;
  }
  const SelectionView view{.self = thief, .snapshot = snapshot, .topology = &topology_};
  for (size_t level = 0; level < hierarchy_.levels.size(); ++level) {
    const size_t domain_index = domain_path_[thief][level];
    if (domain_index == SIZE_MAX) {
      continue;
    }
    const Domain& domain = hierarchy_.levels[level][domain_index];
    // Step 1 restricted to this level's scope.
    std::vector<CpuId> candidates;
    for (CpuId cpu : domain.cpus) {
      if (cpu != thief && balancer_.policy().CanSteal(view, cpu)) {
        candidates.push_back(cpu);
      }
    }
    if (candidates.empty()) {
      continue;  // widen scope (escalate to the parent level)
    }
    // Step 2 within the level's candidates.
    const CpuId victim = balancer_.policy().SelectCore(view, candidates, rng);
    OPTSCHED_CHECK_MSG(
        std::find(candidates.begin(), candidates.end(), victim) != candidates.end(),
        "SelectCore must return a candidate of the current level");
    // Step 3: the audited two-lock steal.
    action = balancer_.ExecuteStealPhase(machine, thief, victim, recheck_filter);
    if (level_out != nullptr) {
      *level_out = level;
    }
    LevelStats& stats = level_stats_[level];
    ++stats.attempts;
    if (action.outcome == StealOutcome::kStole) {
      ++stats.successes;
    } else {
      ++stats.failures;
    }
    return action;  // one attempt per round per core, as in the flat engine
  }
  return action;
}

RoundResult HierarchicalBalancer::RunRound(MachineState& machine, Rng& rng,
                                           const RoundOptions& options) {
  const uint32_t n = machine.num_cpus();
  RoundResult result;
  result.actions.assign(n, CoreAction{});
  result.potential_before = machine.Potential(balancer_.policy().metric());

  // Same fault seams as the flat engine (the inner balancer handles injected
  // steal aborts; cumulative fault tallies live in the injector's stats).
  if (injector_ != nullptr && injector_->DropRound()) {
    for (CpuId cpu = 0; cpu < n; ++cpu) {
      result.actions[cpu].thief = cpu;
    }
    result.dropped = true;
    result.potential_after = result.potential_before;
    return result;
  }

  auto participates = [&](CpuId cpu) {
    return !options.only_idle_steal || machine.IsIdle(cpu);
  };
  auto straggles = [&](CpuId cpu) {
    if (injector_ == nullptr || !injector_->StallCore(cpu)) {
      return false;
    }
    result.actions[cpu].injected = true;
    ++result.stalled;
    return true;
  };

  if (options.mode == RoundOptions::Mode::kSequential) {
    for (CpuId cpu = 0; cpu < n; ++cpu) {
      result.actions[cpu].thief = cpu;
      result.executed_order.push_back(cpu);
      if (!participates(cpu) || straggles(cpu)) {
        continue;
      }
      LoadSnapshot fresh = machine.Snapshot();
      bool stale = false;
      if (injector_ != nullptr && has_prev_round_snapshot_ && injector_->StaleSnapshot(cpu)) {
        fresh = prev_round_snapshot_;
        stale = true;
      }
      result.actions[cpu] = RunOneAttempt(machine, cpu, fresh, rng, options.recheck_filter);
      if (stale && (result.actions[cpu].outcome == StealOutcome::kFailedRecheck ||
                    result.actions[cpu].outcome == StealOutcome::kFailedNoTask)) {
        result.actions[cpu].injected = true;  // staleness-forced, not contention
      }
    }
    prev_round_snapshot_ = machine.Snapshot();
    has_prev_round_snapshot_ = true;
  } else {
    const LoadSnapshot round_snapshot = machine.Snapshot();
    std::vector<uint32_t> order;
    if (options.mode == RoundOptions::Mode::kConcurrentFixedOrder) {
      OPTSCHED_CHECK(options.steal_order.size() == n);
      order = options.steal_order;
    } else {
      order.resize(n);
      std::iota(order.begin(), order.end(), 0);
      rng.Shuffle(order);
    }
    result.executed_order = order;
    for (uint32_t cpu : order) {
      OPTSCHED_CHECK(cpu < n);
      result.actions[cpu].thief = cpu;
      if (!participates(cpu) || straggles(cpu)) {
        continue;
      }
      const LoadSnapshot* view = &round_snapshot;
      bool stale = false;
      if (injector_ != nullptr && has_prev_round_snapshot_ && injector_->StaleSnapshot(cpu)) {
        view = &prev_round_snapshot_;
        stale = true;
      }
      result.actions[cpu] =
          RunOneAttempt(machine, cpu, *view, rng, options.recheck_filter);
      if (stale && (result.actions[cpu].outcome == StealOutcome::kFailedRecheck ||
                    result.actions[cpu].outcome == StealOutcome::kFailedNoTask)) {
        result.actions[cpu].injected = true;  // staleness-forced, not contention
      }
    }
    prev_round_snapshot_ = round_snapshot;
    has_prev_round_snapshot_ = true;
  }

  for (const CoreAction& action : result.actions) {
    switch (action.outcome) {
      case StealOutcome::kNoCandidates:
        break;
      case StealOutcome::kStole:
        ++result.attempts;
        ++result.successes;
        result.tasks_moved += action.moved;
        break;
      case StealOutcome::kFailedRecheck:
      case StealOutcome::kFailedNoTask:
        ++result.attempts;
        ++result.failures;
        if (action.injected) {
          ++result.injected_failures;
        }
        break;
    }
  }
  result.potential_after = machine.Potential(balancer_.policy().metric());
  return result;
}

}  // namespace optsched
