// Multi-level hierarchical load balancing over the scheduling-domain ladder
// (paper §5: "balancing load between groups of cores, and then inside
// groups, instead of balancing load directly between individual cores").
//
// Each core's selection phase walks its domain ladder from the innermost
// level (SMT siblings) outward (LLC, NUMA node, machine): at each level it
// runs the three-step protocol restricted to the CPUs of its domain at that
// level, and widens scope only when the filter comes back empty there. The
// steal phase is the ordinary two-lock, re-checked steal.
//
// Proof story (and why this engine needs no new obligations): restricting
// the candidate set is a CHOICE refinement — at the outermost level the
// candidate set is the whole machine, so whenever the policy's global filter
// is non-empty the ladder walk terminates at some level with a candidate
// that passed the *unrestricted* filter. The engine therefore attempts a
// steal exactly when the flat engine would (same filter, same migration
// rule, same re-check); it merely prefers nearer victims. Every audit result
// for the policy carries over verbatim; the per-level restriction is
// verified structurally by the engine (candidates ⊆ level CPUs ⊆ filter).

#ifndef OPTSCHED_SRC_CORE_HIER_BALANCER_H_
#define OPTSCHED_SRC_CORE_HIER_BALANCER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/balancer.h"
#include "src/topology/domains.h"
#include "src/topology/topology.h"

namespace optsched {

// Per-ladder-level counters.
struct LevelStats {
  std::string name;          // "SMT", "LLC", "NUMA", "MACHINE"
  uint64_t attempts = 0;     // selections that found candidates at this level
  uint64_t successes = 0;
  uint64_t failures = 0;     // re-check / no-eligible-task at this level
};

class HierarchicalBalancer {
 public:
  HierarchicalBalancer(std::shared_ptr<const BalancePolicy> policy, const Topology& topology);

  const BalancePolicy& policy() const { return balancer_.policy(); }
  const DomainHierarchy& hierarchy() const { return hierarchy_; }
  const std::vector<LevelStats>& level_stats() const { return level_stats_; }
  const BalanceStats& stats() const { return balancer_.stats(); }

  // Fault injection: stragglers / dropped rounds / stale snapshots perturb
  // this engine's rounds; steal aborts hit the inner engine's steal phase
  // (the injector is forwarded). Not owned.
  void set_fault_injector(fault::FaultInjector* injector) {
    injector_ = injector;
    balancer_.set_fault_injector(injector);
  }
  fault::FaultInjector* fault_injector() const { return injector_; }

  // One balancing round with the same concurrency semantics as
  // LoadBalancer::RunRound (shared snapshot, serialized steal phases in
  // random or supplied order).
  RoundResult RunRound(MachineState& machine, Rng& rng, const RoundOptions& options = {});

  // One core's ladder walk against `snapshot`, stealing from `machine`.
  // Returns the action and, via `level_out` (may be null), the ladder level
  // that provided the victim (SIZE_MAX when no level had candidates).
  CoreAction RunOneAttempt(MachineState& machine, CpuId thief, const LoadSnapshot& snapshot,
                           Rng& rng, bool recheck_filter = true, size_t* level_out = nullptr);

 private:
  const Topology& topology_;
  DomainHierarchy hierarchy_;
  // domain_path_[cpu][level] = index of the cpu's domain at that level
  // (SIZE_MAX when the cpu has no domain there).
  std::vector<std::vector<size_t>> domain_path_;
  LoadBalancer balancer_;  // supplies the audited steal phase
  std::vector<LevelStats> level_stats_;
  fault::FaultInjector* injector_ = nullptr;
  LoadSnapshot prev_round_snapshot_;
  bool has_prev_round_snapshot_ = false;
};

}  // namespace optsched

#endif  // OPTSCHED_SRC_CORE_HIER_BALANCER_H_
