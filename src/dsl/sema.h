// Semantic analysis: type checking, let resolution and constant folding.
//
// Enforces the selection-phase discipline statically: filter and migrate
// bodies can only read the fields the paper's model allows (per-core loads /
// task weights / node ids), must be boolean, and may not reference anything
// mutable. After Analyze succeeds, the returned policy has every `let`
// inlined and constants folded, so the interpreter and the code generators
// work on a closed expression tree.

#ifndef OPTSCHED_SRC_DSL_SEMA_H_
#define OPTSCHED_SRC_DSL_SEMA_H_

#include <optional>
#include <vector>

#include "src/dsl/ast.h"
#include "src/dsl/parser.h"

namespace optsched::dsl {

enum class Type { kInt, kBool };

struct SemaResult {
  std::optional<PolicyDecl> policy;  // lets resolved, constants folded
  std::vector<Diagnostic> diagnostics;

  bool ok() const { return policy.has_value() && diagnostics.empty(); }
};

SemaResult Analyze(const PolicyDecl& decl);

// Folds constant subexpressions ((2+3) -> 5, (true && x) -> x, ...). Exposed
// for tests; Analyze applies it automatically.
ExprPtr FoldConstants(const Expr& expr);

}  // namespace optsched::dsl

#endif  // OPTSCHED_SRC_DSL_SEMA_H_
