#include "src/dsl/interp.h"

#include <algorithm>

#include "src/base/check.h"

namespace optsched::dsl {

void EvalEnv::BindCore(const std::string& name, CoreBinding binding) {
  OPTSCHED_CHECK(num_cores < 3);
  cores[num_cores].name = &name;
  cores[num_cores].binding = binding;
  ++num_cores;
}

void EvalEnv::BindTask(const std::string& name, int64_t weight) {
  task_name = &name;
  task_weight = weight;
}

EvalValue Eval(const Expr& expr, const EvalEnv& env) {
  switch (expr.kind) {
    case ExprKind::kNumber:
      return {.is_bool = false, .number = expr.number, .boolean = false};
    case ExprKind::kBool:
      return {.is_bool = true, .number = 0, .boolean = expr.boolean};
    case ExprKind::kLetRef:
      OPTSCHED_CHECK_MSG(false, "let references must be resolved by sema before evaluation");
      return {};
    case ExprKind::kFieldRef: {
      if (expr.field == Field::kWeight) {
        OPTSCHED_CHECK(env.task_name != nullptr && expr.variable == *env.task_name);
        return {.is_bool = false, .number = env.task_weight, .boolean = false};
      }
      for (int i = 0; i < env.num_cores; ++i) {
        if (expr.variable == *env.cores[i].name) {
          const EvalEnv::CoreBinding& b = env.cores[i].binding;
          int64_t value = 0;
          switch (expr.field) {
            case Field::kLoad: value = b.load; break;
            case Field::kNrTasks: value = b.nr_tasks; break;
            case Field::kNode: value = b.node; break;
            case Field::kWeight: break;  // handled above
          }
          return {.is_bool = false, .number = value, .boolean = false};
        }
      }
      OPTSCHED_CHECK_MSG(false, "unbound variable reached evaluation (sema must reject it)");
      return {};
    }
    case ExprKind::kUnary: {
      const EvalValue operand = Eval(*expr.lhs, env);
      if (expr.unary_op == UnaryOp::kNeg) {
        return {.is_bool = false, .number = -operand.number, .boolean = false};
      }
      return {.is_bool = true, .number = 0, .boolean = !operand.boolean};
    }
    case ExprKind::kBinary: {
      // Short-circuit the boolean connectives.
      if (expr.binary_op == BinaryOp::kAnd) {
        const EvalValue lhs = Eval(*expr.lhs, env);
        if (!lhs.boolean) {
          return {.is_bool = true, .number = 0, .boolean = false};
        }
        return Eval(*expr.rhs, env);
      }
      if (expr.binary_op == BinaryOp::kOr) {
        const EvalValue lhs = Eval(*expr.lhs, env);
        if (lhs.boolean) {
          return {.is_bool = true, .number = 0, .boolean = true};
        }
        return Eval(*expr.rhs, env);
      }
      const EvalValue lhs = Eval(*expr.lhs, env);
      const EvalValue rhs = Eval(*expr.rhs, env);
      auto num = [](int64_t v) { return EvalValue{.is_bool = false, .number = v, .boolean = false}; };
      auto boolean = [](bool v) { return EvalValue{.is_bool = true, .number = 0, .boolean = v}; };
      switch (expr.binary_op) {
        case BinaryOp::kAdd: return num(lhs.number + rhs.number);
        case BinaryOp::kSub: return num(lhs.number - rhs.number);
        case BinaryOp::kMul: return num(lhs.number * rhs.number);
        case BinaryOp::kDiv: return num(rhs.number == 0 ? 0 : lhs.number / rhs.number);
        case BinaryOp::kMod: return num(rhs.number == 0 ? 0 : lhs.number % rhs.number);
        case BinaryOp::kEq:
          return boolean(lhs.is_bool ? lhs.boolean == rhs.boolean : lhs.number == rhs.number);
        case BinaryOp::kNe:
          return boolean(lhs.is_bool ? lhs.boolean != rhs.boolean : lhs.number != rhs.number);
        case BinaryOp::kLt: return boolean(lhs.number < rhs.number);
        case BinaryOp::kLe: return boolean(lhs.number <= rhs.number);
        case BinaryOp::kGt: return boolean(lhs.number > rhs.number);
        case BinaryOp::kGe: return boolean(lhs.number >= rhs.number);
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          break;  // handled above
      }
      return {};
    }
    case ExprKind::kIf:
      return Eval(*expr.condition, env).boolean ? Eval(*expr.lhs, env)
                                                : Eval(*expr.else_branch, env);
    case ExprKind::kCall: {
      if (expr.callee == "abs") {
        const int64_t v = Eval(*expr.args[0], env).number;
        return {.is_bool = false, .number = v < 0 ? -v : v, .boolean = false};
      }
      const int64_t a = Eval(*expr.args[0], env).number;
      const int64_t b = Eval(*expr.args[1], env).number;
      const int64_t v = expr.callee == "min" ? std::min(a, b) : std::max(a, b);
      return {.is_bool = false, .number = v, .boolean = false};
    }
  }
  return {};
}

DslPolicy::DslPolicy(PolicyDecl decl) : decl_(std::move(decl)) {
  OPTSCHED_CHECK_MSG(decl_.filter != nullptr, "DslPolicy needs a checked filter");
}

std::string DslPolicy::name() const { return "dsl:" + decl_.name; }

LoadMetric DslPolicy::metric() const {
  return decl_.metric == MetricKind::kCount ? LoadMetric::kTaskCount
                                            : LoadMetric::kWeightedLoad;
}

EvalEnv::CoreBinding DslPolicy::BindingFor(const SelectionView& view, CpuId cpu) const {
  EvalEnv::CoreBinding binding;
  binding.load = view.snapshot.Load(cpu, metric());
  binding.nr_tasks = view.snapshot.Load(cpu, LoadMetric::kTaskCount);
  binding.node = view.topology != nullptr ? view.topology->NodeOf(cpu) : 0;
  return binding;
}

bool DslPolicy::CanSteal(const SelectionView& view, CpuId stealee) const {
  EvalEnv env;
  env.BindCore(decl_.filter_self, BindingFor(view, view.self));
  env.BindCore(decl_.filter_stealee, BindingFor(view, stealee));
  return Eval(*decl_.filter, env).boolean;
}

CpuId DslPolicy::SelectCore(const SelectionView& view, const std::vector<CpuId>& candidates,
                            Rng& rng) const {
  OPTSCHED_CHECK(!candidates.empty());
  switch (decl_.choice) {
    case ChoiceKind::kRandom:
      return candidates[rng.NextBelow(candidates.size())];
    case ChoiceKind::kMaxLoad:
      return BalancePolicy::SelectCore(view, candidates, rng);
    case ChoiceKind::kMinLoad: {
      CpuId best = candidates[0];
      int64_t best_load = view.snapshot.Load(best, metric());
      for (CpuId c : candidates) {
        const int64_t load = view.snapshot.Load(c, metric());
        if (load < best_load) {
          best = c;
          best_load = load;
        }
      }
      return best;
    }
    case ChoiceKind::kNearest: {
      if (view.topology == nullptr) {
        return BalancePolicy::SelectCore(view, candidates, rng);
      }
      CpuId best = candidates[0];
      uint32_t best_distance = view.topology->CpuDistance(view.self, best);
      int64_t best_load = view.snapshot.Load(best, metric());
      for (CpuId c : candidates) {
        const uint32_t distance = view.topology->CpuDistance(view.self, c);
        const int64_t load = view.snapshot.Load(c, metric());
        if (distance < best_distance || (distance == best_distance && load > best_load)) {
          best = c;
          best_distance = distance;
          best_load = load;
        }
      }
      return best;
    }
  }
  return candidates[0];
}

bool DslPolicy::ShouldMigrate(int64_t task_weight, int64_t victim_load,
                              int64_t thief_load) const {
  if (decl_.migrate == nullptr) {
    return BalancePolicy::ShouldMigrate(task_weight, victim_load, thief_load);
  }
  EvalEnv env;
  env.BindTask(decl_.migrate_task, task_weight);
  // The migrate rule sees loads only (nr_tasks/node are not tracked at this
  // point in the steal phase; they evaluate as the load / 0 respectively).
  env.BindCore(decl_.migrate_victim,
               {.load = victim_load, .nr_tasks = victim_load, .node = 0});
  env.BindCore(decl_.migrate_thief, {.load = thief_load, .nr_tasks = thief_load, .node = 0});
  return Eval(*decl_.migrate, env).boolean;
}

std::shared_ptr<const BalancePolicy> MakeDslPolicy(PolicyDecl decl) {
  return std::make_shared<DslPolicy>(std::move(decl));
}

}  // namespace optsched::dsl
