#include "src/dsl/parser.h"

#include "src/base/str.h"
#include "src/dsl/lexer.h"

namespace optsched::dsl {

std::string Diagnostic::ToString() const {
  return StrFormat("%s: %s", location.ToString().c_str(), message.c_str());
}

std::string ParseResult::DiagnosticsToString() const {
  std::vector<std::string> parts;
  for (const Diagnostic& d : diagnostics) {
    parts.push_back(d.ToString());
  }
  return Join(parts, "\n");
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(LexAll(source)) {}

  std::optional<PolicyDecl> ParsePolicyDecl();
  ExprPtr ParseExpr() { return ParseOr(); }

  std::vector<Diagnostic> TakeDiagnostics() { return std::move(diagnostics_); }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = position_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() {
    const Token& t = Peek();
    if (position_ + 1 < tokens_.size()) {
      ++position_;
    }
    return t;
  }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool CheckIdent(std::string_view spelling) const {
    return Peek().kind == TokenKind::kIdent && Peek().text == spelling;
  }
  bool Match(TokenKind kind) {
    if (!Check(kind)) {
      return false;
    }
    Advance();
    return true;
  }
  bool Expect(TokenKind kind, const char* context) {
    if (Match(kind)) {
      return true;
    }
    Error(StrFormat("expected %s %s, found %s%s", TokenKindName(kind), context,
                    TokenKindName(Peek().kind),
                    Peek().kind == TokenKind::kIdent ? (" '" + Peek().text + "'").c_str() : ""));
    return false;
  }
  std::string ExpectIdent(const char* context) {
    if (Check(TokenKind::kIdent)) {
      return Advance().text;
    }
    Error(StrFormat("expected identifier %s, found %s", context, TokenKindName(Peek().kind)));
    return {};
  }
  void Error(std::string message) {
    diagnostics_.push_back(Diagnostic{Peek().location, std::move(message)});
  }

  // expr := or
  ExprPtr ParseOr() {
    ExprPtr lhs = ParseAnd();
    while (lhs != nullptr && Check(TokenKind::kOrOr)) {
      const SourceLocation loc = Advance().location;
      ExprPtr rhs = ParseAnd();
      if (rhs == nullptr) {
        return nullptr;
      }
      lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  ExprPtr ParseAnd() {
    ExprPtr lhs = ParseComparison();
    while (lhs != nullptr && Check(TokenKind::kAndAnd)) {
      const SourceLocation loc = Advance().location;
      ExprPtr rhs = ParseComparison();
      if (rhs == nullptr) {
        return nullptr;
      }
      lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  ExprPtr ParseComparison() {
    ExprPtr lhs = ParseAdditive();
    if (lhs == nullptr) {
      return nullptr;
    }
    BinaryOp op;
    switch (Peek().kind) {
      case TokenKind::kEq: op = BinaryOp::kEq; break;
      case TokenKind::kNe: op = BinaryOp::kNe; break;
      case TokenKind::kLt: op = BinaryOp::kLt; break;
      case TokenKind::kLe: op = BinaryOp::kLe; break;
      case TokenKind::kGt: op = BinaryOp::kGt; break;
      case TokenKind::kGe: op = BinaryOp::kGe; break;
      default:
        return lhs;
    }
    const SourceLocation loc = Advance().location;
    ExprPtr rhs = ParseAdditive();
    if (rhs == nullptr) {
      return nullptr;
    }
    return MakeBinary(op, std::move(lhs), std::move(rhs), loc);
  }

  ExprPtr ParseAdditive() {
    ExprPtr lhs = ParseMultiplicative();
    while (lhs != nullptr && (Check(TokenKind::kPlus) || Check(TokenKind::kMinus))) {
      const BinaryOp op = Check(TokenKind::kPlus) ? BinaryOp::kAdd : BinaryOp::kSub;
      const SourceLocation loc = Advance().location;
      ExprPtr rhs = ParseMultiplicative();
      if (rhs == nullptr) {
        return nullptr;
      }
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  ExprPtr ParseMultiplicative() {
    ExprPtr lhs = ParseUnary();
    while (lhs != nullptr &&
           (Check(TokenKind::kStar) || Check(TokenKind::kSlash) || Check(TokenKind::kPercent))) {
      BinaryOp op = BinaryOp::kMul;
      if (Check(TokenKind::kSlash)) {
        op = BinaryOp::kDiv;
      } else if (Check(TokenKind::kPercent)) {
        op = BinaryOp::kMod;
      }
      const SourceLocation loc = Advance().location;
      ExprPtr rhs = ParseUnary();
      if (rhs == nullptr) {
        return nullptr;
      }
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  ExprPtr ParseUnary() {
    if (Check(TokenKind::kMinus)) {
      const SourceLocation loc = Advance().location;
      ExprPtr operand = ParseUnary();
      return operand == nullptr ? nullptr : MakeUnary(UnaryOp::kNeg, std::move(operand), loc);
    }
    if (Check(TokenKind::kBang)) {
      const SourceLocation loc = Advance().location;
      ExprPtr operand = ParseUnary();
      return operand == nullptr ? nullptr : MakeUnary(UnaryOp::kNot, std::move(operand), loc);
    }
    return ParsePrimary();
  }

  ExprPtr ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kNumber) {
      Advance();
      return MakeNumber(t.number, t.location);
    }
    if (t.kind == TokenKind::kLParen) {
      Advance();
      ExprPtr inner = ParseExpr();
      if (inner == nullptr || !Expect(TokenKind::kRParen, "to close parenthesized expression")) {
        return nullptr;
      }
      return inner;
    }
    if (t.kind == TokenKind::kIdent) {
      if (t.text == "true" || t.text == "false") {
        Advance();
        return MakeBool(t.text == "true", t.location);
      }
      // Conditional expression: if (cond) then_expr else else_expr.
      if (t.text == "if") {
        Advance();
        if (!Expect(TokenKind::kLParen, "after 'if'")) {
          return nullptr;
        }
        ExprPtr condition = ParseExpr();
        if (condition == nullptr || !Expect(TokenKind::kRParen, "to close the if condition")) {
          return nullptr;
        }
        ExprPtr then_branch = ParseExpr();
        if (then_branch == nullptr) {
          return nullptr;
        }
        if (!CheckIdent("else")) {
          Error("'if' expressions require an 'else' branch");
          return nullptr;
        }
        Advance();
        ExprPtr else_branch = ParseExpr();
        if (else_branch == nullptr) {
          return nullptr;
        }
        return MakeIf(std::move(condition), std::move(then_branch), std::move(else_branch),
                      t.location);
      }
      if (t.text == "else") {
        Error("'else' without a matching 'if'");
        return nullptr;
      }
      // Call: ident '(' args ')'
      if (Peek(1).kind == TokenKind::kLParen) {
        const std::string callee = Advance().text;
        Advance();  // (
        std::vector<ExprPtr> args;
        if (!Check(TokenKind::kRParen)) {
          for (;;) {
            ExprPtr arg = ParseExpr();
            if (arg == nullptr) {
              return nullptr;
            }
            args.push_back(std::move(arg));
            if (!Match(TokenKind::kComma)) {
              break;
            }
          }
        }
        if (!Expect(TokenKind::kRParen, "to close argument list")) {
          return nullptr;
        }
        return MakeCall(callee, std::move(args), t.location);
      }
      // Field ref: ident '.' field, or bare let reference.
      const std::string variable = Advance().text;
      if (Match(TokenKind::kDot)) {
        const std::string field_name = ExpectIdent("after '.'");
        Field field;
        if (field_name == "load") {
          field = Field::kLoad;
        } else if (field_name == "nr_tasks") {
          field = Field::kNrTasks;
        } else if (field_name == "node") {
          field = Field::kNode;
        } else if (field_name == "weight") {
          field = Field::kWeight;
        } else {
          Error(StrFormat("unknown field '.%s' (expected load, nr_tasks, node or weight)",
                          field_name.c_str()));
          return nullptr;
        }
        return MakeFieldRef(variable, field, t.location);
      }
      return MakeLetRef(variable, t.location);
    }
    if (t.kind == TokenKind::kError) {
      Error(t.text);
      Advance();
      return nullptr;
    }
    Error(StrFormat("expected expression, found %s", TokenKindName(t.kind)));
    return nullptr;
  }

  ExprPtr ParseBlockExpr(const char* what) {
    if (!Expect(TokenKind::kLBrace, what)) {
      return nullptr;
    }
    ExprPtr expr = ParseExpr();
    if (expr == nullptr) {
      return nullptr;
    }
    if (!Expect(TokenKind::kRBrace, what)) {
      return nullptr;
    }
    return expr;
  }

  std::vector<Token> tokens_;
  size_t position_ = 0;
  std::vector<Diagnostic> diagnostics_;
};

std::optional<PolicyDecl> Parser::ParsePolicyDecl() {
  PolicyDecl decl;
  decl.location = Peek().location;
  if (!CheckIdent("policy")) {
    Error("a policy file must start with 'policy <name> { ... }'");
    return std::nullopt;
  }
  Advance();
  decl.name = ExpectIdent("as the policy name");
  if (!Expect(TokenKind::kLBrace, "to open the policy body")) {
    return std::nullopt;
  }
  while (!Check(TokenKind::kRBrace) && !Check(TokenKind::kEnd)) {
    if (CheckIdent("metric")) {
      Advance();
      const std::string m = ExpectIdent("after 'metric'");
      if (m == "count") {
        decl.metric = MetricKind::kCount;
      } else if (m == "weighted") {
        decl.metric = MetricKind::kWeighted;
      } else {
        Error(StrFormat("unknown metric '%s' (expected count or weighted)", m.c_str()));
      }
      if (decl.has_metric) {
        Error("duplicate 'metric' declaration");
      }
      decl.has_metric = true;
      Expect(TokenKind::kSemicolon, "after metric declaration");
    } else if (CheckIdent("let")) {
      Advance();
      LetDecl let;
      let.location = Peek().location;
      let.name = ExpectIdent("as the let name");
      Expect(TokenKind::kAssign, "after let name");
      let.value = ParseExpr();
      if (let.value == nullptr) {
        return std::nullopt;
      }
      Expect(TokenKind::kSemicolon, "after let declaration");
      decl.lets.push_back(std::move(let));
    } else if (CheckIdent("filter")) {
      if (decl.filter != nullptr) {
        Error("duplicate 'filter' declaration");
      }
      Advance();
      Expect(TokenKind::kLParen, "after 'filter'");
      decl.filter_self = ExpectIdent("as the filter's self parameter");
      Expect(TokenKind::kComma, "between filter parameters");
      decl.filter_stealee = ExpectIdent("as the filter's stealee parameter");
      Expect(TokenKind::kRParen, "to close filter parameters");
      decl.filter = ParseBlockExpr("around the filter body");
      if (decl.filter == nullptr) {
        return std::nullopt;
      }
    } else if (CheckIdent("choice")) {
      if (decl.has_choice) {
        Error("duplicate 'choice' declaration");
      }
      Advance();
      const std::string c = ExpectIdent("after 'choice'");
      if (c == "maxload") {
        decl.choice = ChoiceKind::kMaxLoad;
      } else if (c == "minload") {
        decl.choice = ChoiceKind::kMinLoad;
      } else if (c == "nearest") {
        decl.choice = ChoiceKind::kNearest;
      } else if (c == "random") {
        decl.choice = ChoiceKind::kRandom;
      } else {
        Error(StrFormat("unknown choice '%s' (expected maxload, minload, nearest or random)",
                        c.c_str()));
      }
      decl.has_choice = true;
      Expect(TokenKind::kSemicolon, "after choice declaration");
    } else if (CheckIdent("migrate")) {
      if (decl.migrate != nullptr) {
        Error("duplicate 'migrate' declaration");
      }
      Advance();
      Expect(TokenKind::kLParen, "after 'migrate'");
      decl.migrate_task = ExpectIdent("as the migrate rule's task parameter");
      Expect(TokenKind::kComma, "between migrate parameters");
      decl.migrate_victim = ExpectIdent("as the migrate rule's victim parameter");
      Expect(TokenKind::kComma, "between migrate parameters");
      decl.migrate_thief = ExpectIdent("as the migrate rule's thief parameter");
      Expect(TokenKind::kRParen, "to close migrate parameters");
      decl.migrate = ParseBlockExpr("around the migrate body");
      if (decl.migrate == nullptr) {
        return std::nullopt;
      }
    } else {
      Error(StrFormat("unexpected token %s in policy body (expected metric, let, filter, "
                      "choice or migrate)",
                      Peek().kind == TokenKind::kIdent ? ("'" + Peek().text + "'").c_str()
                                                       : TokenKindName(Peek().kind)));
      return std::nullopt;
    }
  }
  Expect(TokenKind::kRBrace, "to close the policy body");
  if (decl.filter == nullptr) {
    Error("policy is missing the mandatory 'filter' declaration (Figure 1 step 1)");
    return std::nullopt;
  }
  return decl;
}

}  // namespace

ParseResult ParsePolicy(std::string_view source) {
  Parser parser(source);
  ParseResult result;
  result.policy = parser.ParsePolicyDecl();
  result.diagnostics = parser.TakeDiagnostics();
  if (!result.diagnostics.empty()) {
    result.policy.reset();
  }
  return result;
}

ParseExprResult ParseExpression(std::string_view source) {
  Parser parser(source);
  ParseExprResult result;
  result.expr = parser.ParseExpr();
  result.diagnostics = parser.TakeDiagnostics();
  if (!result.diagnostics.empty()) {
    result.expr.reset();
  }
  return result;
}

}  // namespace optsched::dsl
