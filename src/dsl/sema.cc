#include "src/dsl/sema.h"

#include <map>

#include "src/base/check.h"
#include "src/base/str.h"

namespace optsched::dsl {

namespace {

// Variable classes usable in a given rule body.
enum class VarClass { kCore, kTask };

class Checker {
 public:
  explicit Checker(std::vector<Diagnostic>* diagnostics) : diagnostics_(diagnostics) {}

  void DefineLet(const std::string& name, ExprPtr folded_value, Type type) {
    lets_[name] = {folded_value->Clone(), type};
  }
  bool HasLet(const std::string& name) const { return lets_.count(name) > 0; }
  const Expr* LetValue(const std::string& name) const { return lets_.at(name).first.get(); }

  // Type-checks `expr` against the given variable environment; nullopt and a
  // diagnostic on failure.
  std::optional<Type> Check(const Expr& expr, const std::map<std::string, VarClass>& vars) {
    switch (expr.kind) {
      case ExprKind::kNumber:
        return Type::kInt;
      case ExprKind::kBool:
        return Type::kBool;
      case ExprKind::kLetRef: {
        const auto it = lets_.find(expr.variable);
        if (it == lets_.end()) {
          Error(expr.location, StrFormat("unknown name '%s' (no such let binding or parameter; "
                                         "parameters need a '.field' access)",
                                         expr.variable.c_str()));
          return std::nullopt;
        }
        return it->second.second;
      }
      case ExprKind::kFieldRef: {
        const auto it = vars.find(expr.variable);
        if (it == vars.end()) {
          Error(expr.location,
                StrFormat("unknown variable '%s' in this rule", expr.variable.c_str()));
          return std::nullopt;
        }
        const bool core_field = expr.field == Field::kLoad || expr.field == Field::kNrTasks ||
                                expr.field == Field::kNode;
        if (it->second == VarClass::kCore && !core_field) {
          Error(expr.location, StrFormat("field '.%s' is not readable on core '%s' (cores "
                                         "expose load, nr_tasks, node)",
                                         FieldName(expr.field), expr.variable.c_str()));
          return std::nullopt;
        }
        if (it->second == VarClass::kTask && expr.field != Field::kWeight) {
          Error(expr.location, StrFormat("field '.%s' is not readable on task '%s' (tasks "
                                         "expose weight)",
                                         FieldName(expr.field), expr.variable.c_str()));
          return std::nullopt;
        }
        return Type::kInt;
      }
      case ExprKind::kUnary: {
        const std::optional<Type> operand = Check(*expr.lhs, vars);
        if (!operand.has_value()) {
          return std::nullopt;
        }
        if (expr.unary_op == UnaryOp::kNeg && *operand != Type::kInt) {
          Error(expr.location, "unary '-' needs an integer operand");
          return std::nullopt;
        }
        if (expr.unary_op == UnaryOp::kNot && *operand != Type::kBool) {
          Error(expr.location, "'!' needs a boolean operand");
          return std::nullopt;
        }
        return operand;
      }
      case ExprKind::kBinary: {
        const std::optional<Type> lhs = Check(*expr.lhs, vars);
        const std::optional<Type> rhs = Check(*expr.rhs, vars);
        if (!lhs.has_value() || !rhs.has_value()) {
          return std::nullopt;
        }
        switch (expr.binary_op) {
          case BinaryOp::kAdd:
          case BinaryOp::kSub:
          case BinaryOp::kMul:
          case BinaryOp::kDiv:
          case BinaryOp::kMod:
            if (*lhs != Type::kInt || *rhs != Type::kInt) {
              Error(expr.location, StrFormat("'%s' needs integer operands",
                                             BinaryOpName(expr.binary_op)));
              return std::nullopt;
            }
            return Type::kInt;
          case BinaryOp::kLt:
          case BinaryOp::kLe:
          case BinaryOp::kGt:
          case BinaryOp::kGe:
            if (*lhs != Type::kInt || *rhs != Type::kInt) {
              Error(expr.location, StrFormat("'%s' needs integer operands",
                                             BinaryOpName(expr.binary_op)));
              return std::nullopt;
            }
            return Type::kBool;
          case BinaryOp::kEq:
          case BinaryOp::kNe:
            if (*lhs != *rhs) {
              Error(expr.location, StrFormat("'%s' needs operands of the same type",
                                             BinaryOpName(expr.binary_op)));
              return std::nullopt;
            }
            return Type::kBool;
          case BinaryOp::kAnd:
          case BinaryOp::kOr:
            if (*lhs != Type::kBool || *rhs != Type::kBool) {
              Error(expr.location, StrFormat("'%s' needs boolean operands",
                                             BinaryOpName(expr.binary_op)));
              return std::nullopt;
            }
            return Type::kBool;
        }
        return std::nullopt;
      }
      case ExprKind::kIf: {
        const std::optional<Type> cond = Check(*expr.condition, vars);
        const std::optional<Type> then_type = Check(*expr.lhs, vars);
        const std::optional<Type> else_type = Check(*expr.else_branch, vars);
        if (!cond.has_value() || !then_type.has_value() || !else_type.has_value()) {
          return std::nullopt;
        }
        if (*cond != Type::kBool) {
          Error(expr.condition->location, "the 'if' condition must be boolean");
          return std::nullopt;
        }
        if (*then_type != *else_type) {
          Error(expr.location, "'if' branches must have the same type");
          return std::nullopt;
        }
        return then_type;
      }
      case ExprKind::kCall: {
        const bool binary = expr.callee == "min" || expr.callee == "max";
        const bool unary = expr.callee == "abs";
        if (!binary && !unary) {
          Error(expr.location, StrFormat("unknown function '%s' (expected min, max or abs)",
                                         expr.callee.c_str()));
          return std::nullopt;
        }
        const size_t want = binary ? 2 : 1;
        if (expr.args.size() != want) {
          Error(expr.location, StrFormat("'%s' takes %zu argument(s), got %zu",
                                         expr.callee.c_str(), want, expr.args.size()));
          return std::nullopt;
        }
        for (const ExprPtr& arg : expr.args) {
          const std::optional<Type> t = Check(*arg, vars);
          if (!t.has_value()) {
            return std::nullopt;
          }
          if (*t != Type::kInt) {
            Error(arg->location,
                  StrFormat("'%s' needs integer arguments", expr.callee.c_str()));
            return std::nullopt;
          }
        }
        return Type::kInt;
      }
    }
    return std::nullopt;
  }

  // Replaces let references with their folded constant values.
  ExprPtr ResolveLets(const Expr& expr) const {
    if (expr.kind == ExprKind::kLetRef) {
      const auto it = lets_.find(expr.variable);
      OPTSCHED_CHECK(it != lets_.end());  // type checking ran first
      return it->second.first->Clone();
    }
    ExprPtr copy = expr.Clone();
    if (copy->lhs != nullptr) {
      copy->lhs = ResolveLets(*copy->lhs);
    }
    if (copy->rhs != nullptr) {
      copy->rhs = ResolveLets(*copy->rhs);
    }
    for (ExprPtr& arg : copy->args) {
      arg = ResolveLets(*arg);
    }
    if (copy->condition != nullptr) {
      copy->condition = ResolveLets(*copy->condition);
    }
    if (copy->else_branch != nullptr) {
      copy->else_branch = ResolveLets(*copy->else_branch);
    }
    return copy;
  }

 private:
  void Error(SourceLocation location, std::string message) {
    diagnostics_->push_back(Diagnostic{location, std::move(message)});
  }

  std::map<std::string, std::pair<ExprPtr, Type>> lets_;
  std::vector<Diagnostic>* diagnostics_;
};

bool IsConstant(const Expr& e, int64_t* value, bool* bool_value, bool* is_bool) {
  if (e.kind == ExprKind::kNumber) {
    *value = e.number;
    *is_bool = false;
    return true;
  }
  if (e.kind == ExprKind::kBool) {
    *bool_value = e.boolean;
    *is_bool = true;
    return true;
  }
  return false;
}

}  // namespace

ExprPtr FoldConstants(const Expr& expr) {
  ExprPtr folded = expr.Clone();
  if (folded->lhs != nullptr) {
    folded->lhs = FoldConstants(*folded->lhs);
  }
  if (folded->rhs != nullptr) {
    folded->rhs = FoldConstants(*folded->rhs);
  }
  for (ExprPtr& arg : folded->args) {
    arg = FoldConstants(*arg);
  }
  if (folded->condition != nullptr) {
    folded->condition = FoldConstants(*folded->condition);
  }
  if (folded->else_branch != nullptr) {
    folded->else_branch = FoldConstants(*folded->else_branch);
  }
  // A constant condition selects its branch outright.
  if (folded->kind == ExprKind::kIf && folded->condition->kind == ExprKind::kBool) {
    return folded->condition->boolean ? std::move(folded->lhs)
                                      : std::move(folded->else_branch);
  }

  int64_t la = 0;
  int64_t lb = 0;
  bool ba = false;
  bool bb = false;
  bool a_is_bool = false;
  bool b_is_bool = false;

  if (folded->kind == ExprKind::kUnary &&
      IsConstant(*folded->lhs, &la, &ba, &a_is_bool)) {
    if (folded->unary_op == UnaryOp::kNeg && !a_is_bool) {
      return MakeNumber(-la, folded->location);
    }
    if (folded->unary_op == UnaryOp::kNot && a_is_bool) {
      return MakeBool(!ba, folded->location);
    }
  }
  if (folded->kind == ExprKind::kBinary &&
      IsConstant(*folded->lhs, &la, &ba, &a_is_bool) &&
      IsConstant(*folded->rhs, &lb, &bb, &b_is_bool)) {
    if (!a_is_bool && !b_is_bool) {
      switch (folded->binary_op) {
        case BinaryOp::kAdd: return MakeNumber(la + lb, folded->location);
        case BinaryOp::kSub: return MakeNumber(la - lb, folded->location);
        case BinaryOp::kMul: return MakeNumber(la * lb, folded->location);
        case BinaryOp::kDiv:
          if (lb != 0) {
            return MakeNumber(la / lb, folded->location);
          }
          break;  // leave division by zero for runtime diagnosis
        case BinaryOp::kMod:
          if (lb != 0) {
            return MakeNumber(la % lb, folded->location);
          }
          break;
        case BinaryOp::kEq: return MakeBool(la == lb, folded->location);
        case BinaryOp::kNe: return MakeBool(la != lb, folded->location);
        case BinaryOp::kLt: return MakeBool(la < lb, folded->location);
        case BinaryOp::kLe: return MakeBool(la <= lb, folded->location);
        case BinaryOp::kGt: return MakeBool(la > lb, folded->location);
        case BinaryOp::kGe: return MakeBool(la >= lb, folded->location);
        default:
          break;
      }
    } else if (a_is_bool && b_is_bool) {
      switch (folded->binary_op) {
        case BinaryOp::kAnd: return MakeBool(ba && bb, folded->location);
        case BinaryOp::kOr: return MakeBool(ba || bb, folded->location);
        case BinaryOp::kEq: return MakeBool(ba == bb, folded->location);
        case BinaryOp::kNe: return MakeBool(ba != bb, folded->location);
        default:
          break;
      }
    }
  }
  // Boolean identity shortcuts with one constant side.
  if (folded->kind == ExprKind::kBinary &&
      (folded->binary_op == BinaryOp::kAnd || folded->binary_op == BinaryOp::kOr)) {
    const bool is_and = folded->binary_op == BinaryOp::kAnd;
    if (IsConstant(*folded->lhs, &la, &ba, &a_is_bool) && a_is_bool) {
      return ba == is_and ? std::move(folded->rhs)
                          : MakeBool(!is_and, folded->location);
    }
    if (IsConstant(*folded->rhs, &lb, &bb, &b_is_bool) && b_is_bool) {
      return bb == is_and ? std::move(folded->lhs)
                          : MakeBool(!is_and, folded->location);
    }
  }
  if (folded->kind == ExprKind::kCall && folded->args.size() <= 2) {
    int64_t values[2] = {0, 0};
    bool all_const = !folded->args.empty();
    for (size_t i = 0; i < folded->args.size(); ++i) {
      bool dummy_bool = false;
      bool dummy_is_bool = false;
      if (!IsConstant(*folded->args[i], &values[i], &dummy_bool, &dummy_is_bool) ||
          dummy_is_bool) {
        all_const = false;
        break;
      }
    }
    if (all_const) {
      if (folded->callee == "min") {
        return MakeNumber(std::min(values[0], values[1]), folded->location);
      }
      if (folded->callee == "max") {
        return MakeNumber(std::max(values[0], values[1]), folded->location);
      }
      if (folded->callee == "abs") {
        return MakeNumber(values[0] < 0 ? -values[0] : values[0], folded->location);
      }
    }
  }
  return folded;
}

SemaResult Analyze(const PolicyDecl& decl) {
  SemaResult result;
  Checker checker(&result.diagnostics);

  PolicyDecl out;
  out.name = decl.name;
  out.metric = decl.metric;
  out.has_metric = decl.has_metric;
  out.choice = decl.choice;
  out.has_choice = decl.has_choice;
  out.location = decl.location;

  // Lets: constant expressions only, checked and folded in order.
  for (const LetDecl& let : decl.lets) {
    if (checker.HasLet(let.name)) {
      result.diagnostics.push_back(
          Diagnostic{let.location, StrFormat("duplicate let '%s'", let.name.c_str())});
      continue;
    }
    const std::optional<Type> type = checker.Check(*let.value, {});
    if (!type.has_value()) {
      continue;
    }
    ExprPtr folded = FoldConstants(*checker.ResolveLets(*let.value));
    if (folded->kind != ExprKind::kNumber && folded->kind != ExprKind::kBool) {
      result.diagnostics.push_back(Diagnostic{
          let.location,
          StrFormat("let '%s' must be a constant expression", let.name.c_str())});
      continue;
    }
    checker.DefineLet(let.name, folded->Clone(), *type);
  }

  // Filter: bool over two core variables.
  if (decl.filter != nullptr) {
    if (decl.filter_self == decl.filter_stealee) {
      result.diagnostics.push_back(Diagnostic{
          decl.location, "filter parameters must have distinct names"});
    }
    const std::map<std::string, VarClass> vars{{decl.filter_self, VarClass::kCore},
                                               {decl.filter_stealee, VarClass::kCore}};
    const std::optional<Type> type = checker.Check(*decl.filter, vars);
    if (type.has_value() && *type != Type::kBool) {
      result.diagnostics.push_back(
          Diagnostic{decl.filter->location, "the filter body must be a boolean expression"});
    }
    if (result.diagnostics.empty()) {
      out.filter_self = decl.filter_self;
      out.filter_stealee = decl.filter_stealee;
      out.filter = FoldConstants(*checker.ResolveLets(*decl.filter));
    }
  }

  // Migrate: bool over one task + two core variables (optional).
  if (decl.migrate != nullptr) {
    const std::map<std::string, VarClass> vars{{decl.migrate_task, VarClass::kTask},
                                               {decl.migrate_victim, VarClass::kCore},
                                               {decl.migrate_thief, VarClass::kCore}};
    const std::optional<Type> type = checker.Check(*decl.migrate, vars);
    if (type.has_value() && *type != Type::kBool) {
      result.diagnostics.push_back(
          Diagnostic{decl.migrate->location, "the migrate body must be a boolean expression"});
    }
    if (result.diagnostics.empty()) {
      out.migrate_task = decl.migrate_task;
      out.migrate_victim = decl.migrate_victim;
      out.migrate_thief = decl.migrate_thief;
      out.migrate = FoldConstants(*checker.ResolveLets(*decl.migrate));
    }
  }

  if (result.diagnostics.empty()) {
    result.policy = std::move(out);
  }
  return result;
}

}  // namespace optsched::dsl
