// Token definitions for the scheduling-policy DSL.
//
// The paper exposes its abstractions "to kernel developers via a
// domain-specific language (DSL), which is then compiled to C code that can
// be integrated as a scheduling class into the Linux kernel, and to Scala
// code that is verified by the Leon toolkit" (§1). This module family
// reproduces that pipeline: one policy source, three backends — an
// interpreter that yields a runnable BalancePolicy, a C emitter, and a
// Scala/Leon emitter.

#ifndef OPTSCHED_SRC_DSL_TOKEN_H_
#define OPTSCHED_SRC_DSL_TOKEN_H_

#include <cstdint>
#include <string>

namespace optsched::dsl {

enum class TokenKind {
  kEnd,
  kIdent,       // identifiers and keywords (keywords resolved by the parser)
  kNumber,      // decimal integer literal
  kLBrace,      // {
  kRBrace,      // }
  kLParen,      // (
  kRParen,      // )
  kComma,       // ,
  kSemicolon,   // ;
  kDot,         // .
  kPlus,        // +
  kMinus,       // -
  kStar,        // *
  kSlash,       // /
  kPercent,     // %
  kBang,        // !
  kEq,          // ==
  kNe,          // !=
  kLe,          // <=
  kGe,          // >=
  kLt,          // <
  kGt,          // >
  kAndAnd,      // &&
  kOrOr,        // ||
  kAssign,      // =
  kError,       // lexing error; text holds the message
};

const char* TokenKindName(TokenKind kind);

struct SourceLocation {
  uint32_t line = 1;    // 1-based
  uint32_t column = 1;  // 1-based

  std::string ToString() const;
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       // identifier spelling / number digits / error message
  int64_t number = 0;     // value when kind == kNumber
  SourceLocation location;
};

}  // namespace optsched::dsl

#endif  // OPTSCHED_SRC_DSL_TOKEN_H_
