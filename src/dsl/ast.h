// Abstract syntax tree for the policy DSL.
//
// A policy declaration mirrors the user-defined parts of the paper's
// Listing 1 — the filter (step 1), the choice (step 2), and the migration
// rule applied during the steal (step 3) — plus the load metric:
//
//   policy thread_count {
//     metric count;
//     filter(self, stealee) { stealee.load - self.load >= 2 }
//     choice maxload;
//     migrate(task, victim, thief) { task.weight < victim.load - thief.load }
//   }
//
// Expressions are pure integer/boolean arithmetic over the declared variable
// fields: `<core>.load`, `<core>.nr_tasks`, `<core>.node` and `<task>.weight`
// — exactly the read-only observations the selection phase is allowed.

#ifndef OPTSCHED_SRC_DSL_AST_H_
#define OPTSCHED_SRC_DSL_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/dsl/token.h"

namespace optsched::dsl {

enum class BinaryOp { kAdd, kSub, kMul, kDiv, kMod, kEq, kNe, kLt, kLe, kGt, kGe, kAnd, kOr };
enum class UnaryOp { kNeg, kNot };

const char* BinaryOpName(BinaryOp op);
const char* UnaryOpName(UnaryOp op);

// Fields readable on a variable. kLoad resolves per the policy metric;
// kNrTasks is always the raw count (so weighted policies can express
// overload-ness); kNode is the topology node; kWeight applies to tasks.
enum class Field { kLoad, kNrTasks, kNode, kWeight };

const char* FieldName(Field field);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind { kNumber, kBool, kFieldRef, kLetRef, kUnary, kBinary, kCall, kIf };

struct Expr {
  ExprKind kind;
  SourceLocation location;

  // kNumber / kBool
  int64_t number = 0;
  bool boolean = false;

  // kFieldRef: `variable.field`; kLetRef: `name`
  std::string variable;
  Field field = Field::kLoad;

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;
  ExprPtr lhs;  // also the kUnary operand
  ExprPtr rhs;

  // kCall: min/max/abs
  std::string callee;
  std::vector<ExprPtr> args;

  // kIf: `if (cond) then_expr else else_expr` — an expression, both branches
  // mandatory and same-typed (there is no statement form in this DSL).
  ExprPtr condition;
  ExprPtr else_branch;  // the then-branch reuses `lhs`

  // Structural copy (unique_ptr AST is move-only otherwise).
  ExprPtr Clone() const;
  // Round-trippable pretty printing (fully parenthesized).
  std::string ToString() const;
};

ExprPtr MakeNumber(int64_t value, SourceLocation location = {});
ExprPtr MakeBool(bool value, SourceLocation location = {});
ExprPtr MakeFieldRef(std::string variable, Field field, SourceLocation location = {});
ExprPtr MakeLetRef(std::string name, SourceLocation location = {});
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand, SourceLocation location = {});
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs, SourceLocation location = {});
ExprPtr MakeCall(std::string callee, std::vector<ExprPtr> args, SourceLocation location = {});
ExprPtr MakeIf(ExprPtr condition, ExprPtr then_branch, ExprPtr else_branch,
               SourceLocation location = {});

// Built-in choice strategies (step 2 never needs expression power for the
// proofs — the paper's point — so the DSL offers named heuristics).
enum class ChoiceKind { kMaxLoad, kNearest, kRandom, kMinLoad };

const char* ChoiceKindName(ChoiceKind kind);

enum class MetricKind { kCount, kWeighted };

struct LetDecl {
  std::string name;
  ExprPtr value;  // must be a constant expression (folded by sema)
  SourceLocation location;
};

struct PolicyDecl {
  std::string name;
  MetricKind metric = MetricKind::kCount;
  bool has_metric = false;

  std::vector<LetDecl> lets;

  // filter(self_var, stealee_var) { expr }
  std::string filter_self;
  std::string filter_stealee;
  ExprPtr filter;

  ChoiceKind choice = ChoiceKind::kMaxLoad;
  bool has_choice = false;

  // migrate(task_var, victim_var, thief_var) { expr }; optional — defaults to
  // the strict-potential-decrease rule when absent.
  std::string migrate_task;
  std::string migrate_victim;
  std::string migrate_thief;
  ExprPtr migrate;

  SourceLocation location;

  // Structural copy (the expression members make the type move-only).
  PolicyDecl Clone() const;

  // Renders the declaration back to parseable DSL text.
  std::string ToString() const;
};

}  // namespace optsched::dsl

#endif  // OPTSCHED_SRC_DSL_AST_H_
