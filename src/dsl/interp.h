// Interpreter backend: turns a checked PolicyDecl into a runnable
// BalancePolicy (the analog of the paper's "compiled to C code that can be
// integrated as a scheduling class" — here the scheduling class is the
// LoadBalancer engine, and the policy plugs straight into the simulator, the
// real-thread runtime, and the verifier).

#ifndef OPTSCHED_SRC_DSL_INTERP_H_
#define OPTSCHED_SRC_DSL_INTERP_H_

#include <memory>

#include "src/core/policy.h"
#include "src/dsl/ast.h"

namespace optsched::dsl {

// Evaluation environment for a rule body: named core loads and task weight.
struct EvalEnv {
  // Core variables: name -> (load by metric, nr_tasks, node).
  struct CoreBinding {
    int64_t load = 0;
    int64_t nr_tasks = 0;
    int64_t node = 0;
  };
  // At most 3 bindings per rule (task, victim, thief); linear scan is fine.
  struct NamedCore {
    const std::string* name;
    CoreBinding binding;
  };
  NamedCore cores[3];
  int num_cores = 0;

  const std::string* task_name = nullptr;
  int64_t task_weight = 0;

  void BindCore(const std::string& name, CoreBinding binding);
  void BindTask(const std::string& name, int64_t weight);
};

// Evaluates a checked, let-free expression. Division/modulo by zero evaluate
// to 0 (defined behaviour; sema warns only for constant divisors).
struct EvalValue {
  bool is_bool = false;
  int64_t number = 0;
  bool boolean = false;
};
EvalValue Eval(const Expr& expr, const EvalEnv& env);

// The runnable policy.
class DslPolicy : public BalancePolicy {
 public:
  explicit DslPolicy(PolicyDecl decl);

  std::string name() const override;
  LoadMetric metric() const override;
  bool CanSteal(const SelectionView& view, CpuId stealee) const override;
  CpuId SelectCore(const SelectionView& view, const std::vector<CpuId>& candidates,
                   Rng& rng) const override;
  bool ShouldMigrate(int64_t task_weight, int64_t victim_load,
                     int64_t thief_load) const override;

  const PolicyDecl& decl() const { return decl_; }

 private:
  EvalEnv::CoreBinding BindingFor(const SelectionView& view, CpuId cpu) const;

  PolicyDecl decl_;
};

std::shared_ptr<const BalancePolicy> MakeDslPolicy(PolicyDecl decl);

}  // namespace optsched::dsl

#endif  // OPTSCHED_SRC_DSL_INTERP_H_
