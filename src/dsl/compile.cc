#include "src/dsl/compile.h"

#include "src/base/str.h"
#include "src/dsl/interp.h"
#include "src/dsl/sema.h"

namespace optsched::dsl {

std::string CompileResult::DiagnosticsToString() const {
  std::vector<std::string> parts;
  for (const Diagnostic& d : diagnostics) {
    parts.push_back(d.ToString());
  }
  return Join(parts, "\n");
}

CompileResult CompilePolicy(std::string_view source) {
  CompileResult result;
  ParseResult parsed = ParsePolicy(source);
  if (!parsed.ok()) {
    result.diagnostics = std::move(parsed.diagnostics);
    return result;
  }
  SemaResult checked = Analyze(*parsed.policy);
  if (!checked.ok()) {
    result.diagnostics = std::move(checked.diagnostics);
    return result;
  }
  result.decl = checked.policy->Clone();
  result.policy = MakeDslPolicy(std::move(*checked.policy));
  return result;
}

namespace samples {

const char kThreadCount[] = R"(# Listing 1: a simple load balancer that balances thread counts.
policy thread_count {
  metric count;
  let margin = 2;

  # Step 1, user-defined filter (lock-free, read-only).
  filter(self, stealee) {
    stealee.load - self.load >= margin
  }

  # Step 2: choice is free of proof obligations.
  choice maxload;

  # Step 3: under both locks; moving one task must strictly reduce the
  # pairwise imbalance.
  migrate(task, victim, thief) {
    task.weight > 0 && task.weight < victim.load - thief.load
  }
}
)";

const char kWeighted[] = R"(# Balance thread counts weighted by importance (niceness).
policy weighted {
  metric weighted;

  # Stealable: the stealee is overloaded (>= 2 tasks, so the steal cannot
  # idle it) and strictly heavier than us.
  filter(self, stealee) {
    stealee.nr_tasks >= 2 && stealee.load > self.load
  }

  choice maxload;

  migrate(task, victim, thief) {
    task.weight > 0 && task.weight < victim.load - thief.load
  }
}
)";

const char kBroken[] = R"(# The paper's 4.3 counterexample: any core may steal from any
# overloaded core; concurrent rounds can ping-pong a thread between
# non-idle cores forever while an idle core starves.
policy broken {
  metric count;

  filter(self, stealee) {
    stealee.load >= 2
  }

  choice maxload;

  # Equally permissive migration: only keeps the victim non-idle.
  migrate(task, victim, thief) {
    victim.load >= 2
  }
}
)";

const char kNumaAware[] = R"(# Listing-1 filter with a NUMA-aware choice step: same proofs, better
# placement (paper section 5).
policy numa_aware {
  metric count;
  let margin = 2;

  filter(self, stealee) {
    stealee.load - self.load >= margin
  }

  choice nearest;

  migrate(task, victim, thief) {
    task.weight > 0 && task.weight < victim.load - thief.load
  }
}
)";

}  // namespace samples

}  // namespace optsched::dsl
