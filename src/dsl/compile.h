// Facade: source text -> runnable policy (+ the checked AST for codegen and
// verification). The one-stop entry point mirroring the paper's toolchain.

#ifndef OPTSCHED_SRC_DSL_COMPILE_H_
#define OPTSCHED_SRC_DSL_COMPILE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/policy.h"
#include "src/dsl/ast.h"
#include "src/dsl/parser.h"

namespace optsched::dsl {

struct CompileResult {
  // Set on success.
  std::shared_ptr<const BalancePolicy> policy;
  std::optional<PolicyDecl> decl;  // checked (lets resolved, folded)
  // Set on failure.
  std::vector<Diagnostic> diagnostics;

  bool ok() const { return policy != nullptr; }
  std::string DiagnosticsToString() const;
};

CompileResult CompilePolicy(std::string_view source);

// Canonical policy sources shipped with the library.
namespace samples {

// Listing 1: balance raw thread counts, margin 2.
extern const char kThreadCount[];
// §3.1/§4.2: counts weighted by importance.
extern const char kWeighted[];
// §4.3 counterexample: canSteal(stealee) = stealee.load >= 2.
extern const char kBroken[];
// NUMA-aware choice on top of the Listing-1 filter (§5 direction).
extern const char kNumaAware[];

}  // namespace samples

}  // namespace optsched::dsl

#endif  // OPTSCHED_SRC_DSL_COMPILE_H_
