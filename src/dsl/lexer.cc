#include "src/dsl/lexer.h"

#include <cctype>

#include "src/base/str.h"

namespace optsched::dsl {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "end of input";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kError: return "error";
  }
  return "?";
}

std::string SourceLocation::ToString() const { return StrFormat("%u:%u", line, column); }

Lexer::Lexer(std::string_view source) : source_(source) {}

char Lexer::Peek(size_t ahead) const {
  return position_ + ahead < source_.size() ? source_[position_ + ahead] : '\0';
}

char Lexer::Advance() {
  const char c = Peek();
  if (c != '\0') {
    ++position_;
    if (c == '\n') {
      ++location_.line;
      location_.column = 1;
    } else {
      ++location_.column;
    }
  }
  return c;
}

bool Lexer::Match(char expected) {
  if (Peek() != expected) {
    return false;
  }
  Advance();
  return true;
}

void Lexer::SkipWhitespaceAndComments() {
  for (;;) {
    const char c = Peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      Advance();
    } else if (c == '#') {
      while (Peek() != '\n' && Peek() != '\0') {
        Advance();
      }
    } else {
      return;
    }
  }
}

Token Lexer::MakeToken(TokenKind kind, SourceLocation location, std::string text) const {
  Token t;
  t.kind = kind;
  t.location = location;
  t.text = std::move(text);
  return t;
}

Token Lexer::Next() {
  SkipWhitespaceAndComments();
  const SourceLocation start = location_;
  const char c = Peek();
  if (c == '\0') {
    return MakeToken(TokenKind::kEnd, start);
  }
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    std::string text;
    while (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_') {
      text.push_back(Advance());
    }
    return MakeToken(TokenKind::kIdent, start, std::move(text));
  }
  if (std::isdigit(static_cast<unsigned char>(c))) {
    std::string digits;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) {
      digits.push_back(Advance());
    }
    Token t = MakeToken(TokenKind::kNumber, start, digits);
    t.number = 0;
    for (char d : digits) {
      t.number = t.number * 10 + (d - '0');
    }
    return t;
  }
  Advance();
  switch (c) {
    case '{': return MakeToken(TokenKind::kLBrace, start);
    case '}': return MakeToken(TokenKind::kRBrace, start);
    case '(': return MakeToken(TokenKind::kLParen, start);
    case ')': return MakeToken(TokenKind::kRParen, start);
    case ',': return MakeToken(TokenKind::kComma, start);
    case ';': return MakeToken(TokenKind::kSemicolon, start);
    case '.': return MakeToken(TokenKind::kDot, start);
    case '+': return MakeToken(TokenKind::kPlus, start);
    case '-': return MakeToken(TokenKind::kMinus, start);
    case '*': return MakeToken(TokenKind::kStar, start);
    case '/': return MakeToken(TokenKind::kSlash, start);
    case '%': return MakeToken(TokenKind::kPercent, start);
    case '!':
      return MakeToken(Match('=') ? TokenKind::kNe : TokenKind::kBang, start);
    case '=':
      return MakeToken(Match('=') ? TokenKind::kEq : TokenKind::kAssign, start);
    case '<':
      return MakeToken(Match('=') ? TokenKind::kLe : TokenKind::kLt, start);
    case '>':
      return MakeToken(Match('=') ? TokenKind::kGe : TokenKind::kGt, start);
    case '&':
      if (Match('&')) {
        return MakeToken(TokenKind::kAndAnd, start);
      }
      return MakeToken(TokenKind::kError, start, "stray '&' (did you mean '&&'?)");
    case '|':
      if (Match('|')) {
        return MakeToken(TokenKind::kOrOr, start);
      }
      return MakeToken(TokenKind::kError, start, "stray '|' (did you mean '||'?)");
    default:
      return MakeToken(TokenKind::kError, start,
                       StrFormat("unexpected character '%c' (0x%02x)", c, c));
  }
}

std::vector<Token> LexAll(std::string_view source) {
  Lexer lexer(source);
  std::vector<Token> tokens;
  for (;;) {
    tokens.push_back(lexer.Next());
    if (tokens.back().kind == TokenKind::kEnd) {
      return tokens;
    }
  }
}

}  // namespace optsched::dsl
