// Hand-written lexer for the policy DSL. Supports `#` line comments.

#ifndef OPTSCHED_SRC_DSL_LEXER_H_
#define OPTSCHED_SRC_DSL_LEXER_H_

#include <string_view>
#include <vector>

#include "src/dsl/token.h"

namespace optsched::dsl {

class Lexer {
 public:
  explicit Lexer(std::string_view source);

  // Next token; kEnd forever once the input is exhausted; kError with a
  // message on invalid input (the lexer then skips the offending byte).
  Token Next();

 private:
  char Peek(size_t ahead = 0) const;
  char Advance();
  bool Match(char expected);
  void SkipWhitespaceAndComments();
  Token MakeToken(TokenKind kind, SourceLocation location, std::string text = {}) const;

  std::string_view source_;
  size_t position_ = 0;
  SourceLocation location_;
};

// Lexes the whole input (including the trailing kEnd token).
std::vector<Token> LexAll(std::string_view source);

}  // namespace optsched::dsl

#endif  // OPTSCHED_SRC_DSL_LEXER_H_
