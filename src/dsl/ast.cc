#include "src/dsl/ast.h"

#include "src/base/check.h"
#include "src/base/str.h"

namespace optsched::dsl {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "&&";
    case BinaryOp::kOr: return "||";
  }
  return "?";
}

const char* UnaryOpName(UnaryOp op) { return op == UnaryOp::kNeg ? "-" : "!"; }

const char* FieldName(Field field) {
  switch (field) {
    case Field::kLoad: return "load";
    case Field::kNrTasks: return "nr_tasks";
    case Field::kNode: return "node";
    case Field::kWeight: return "weight";
  }
  return "?";
}

const char* ChoiceKindName(ChoiceKind kind) {
  switch (kind) {
    case ChoiceKind::kMaxLoad: return "maxload";
    case ChoiceKind::kNearest: return "nearest";
    case ChoiceKind::kRandom: return "random";
    case ChoiceKind::kMinLoad: return "minload";
  }
  return "?";
}

ExprPtr Expr::Clone() const {
  auto copy = std::make_unique<Expr>();
  copy->kind = kind;
  copy->location = location;
  copy->number = number;
  copy->boolean = boolean;
  copy->variable = variable;
  copy->field = field;
  copy->unary_op = unary_op;
  copy->binary_op = binary_op;
  copy->callee = callee;
  if (lhs != nullptr) {
    copy->lhs = lhs->Clone();
  }
  if (rhs != nullptr) {
    copy->rhs = rhs->Clone();
  }
  for (const ExprPtr& arg : args) {
    copy->args.push_back(arg->Clone());
  }
  if (condition != nullptr) {
    copy->condition = condition->Clone();
  }
  if (else_branch != nullptr) {
    copy->else_branch = else_branch->Clone();
  }
  return copy;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kNumber:
      return StrFormat("%lld", static_cast<long long>(number));
    case ExprKind::kBool:
      return boolean ? "true" : "false";
    case ExprKind::kFieldRef:
      return variable + "." + FieldName(field);
    case ExprKind::kLetRef:
      return variable;
    case ExprKind::kUnary:
      return std::string(UnaryOpName(unary_op)) + lhs->ToString();
    case ExprKind::kBinary:
      return "(" + lhs->ToString() + " " + BinaryOpName(binary_op) + " " + rhs->ToString() + ")";
    case ExprKind::kCall: {
      std::vector<std::string> parts;
      for (const ExprPtr& arg : args) {
        parts.push_back(arg->ToString());
      }
      return callee + "(" + Join(parts, ", ") + ")";
    }
    case ExprKind::kIf:
      return "(if (" + condition->ToString() + ") " + lhs->ToString() + " else " +
             else_branch->ToString() + ")";
  }
  return "?";
}

ExprPtr MakeNumber(int64_t value, SourceLocation location) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNumber;
  e->number = value;
  e->location = location;
  return e;
}

ExprPtr MakeBool(bool value, SourceLocation location) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBool;
  e->boolean = value;
  e->location = location;
  return e;
}

ExprPtr MakeFieldRef(std::string variable, Field field, SourceLocation location) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFieldRef;
  e->variable = std::move(variable);
  e->field = field;
  e->location = location;
  return e;
}

ExprPtr MakeLetRef(std::string name, SourceLocation location) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLetRef;
  e->variable = std::move(name);
  e->location = location;
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand, SourceLocation location) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->lhs = std::move(operand);
  e->location = location;
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs, SourceLocation location) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  e->location = location;
  return e;
}

ExprPtr MakeCall(std::string callee, std::vector<ExprPtr> args, SourceLocation location) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCall;
  e->callee = std::move(callee);
  e->args = std::move(args);
  e->location = location;
  return e;
}

PolicyDecl PolicyDecl::Clone() const {
  PolicyDecl copy;
  copy.name = name;
  copy.metric = metric;
  copy.has_metric = has_metric;
  for (const LetDecl& let : lets) {
    copy.lets.push_back(LetDecl{let.name, let.value->Clone(), let.location});
  }
  copy.filter_self = filter_self;
  copy.filter_stealee = filter_stealee;
  if (filter != nullptr) {
    copy.filter = filter->Clone();
  }
  copy.choice = choice;
  copy.has_choice = has_choice;
  copy.migrate_task = migrate_task;
  copy.migrate_victim = migrate_victim;
  copy.migrate_thief = migrate_thief;
  if (migrate != nullptr) {
    copy.migrate = migrate->Clone();
  }
  copy.location = location;
  return copy;
}

ExprPtr MakeIf(ExprPtr condition, ExprPtr then_branch, ExprPtr else_branch,
               SourceLocation location) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIf;
  e->condition = std::move(condition);
  e->lhs = std::move(then_branch);
  e->else_branch = std::move(else_branch);
  e->location = location;
  return e;
}

std::string PolicyDecl::ToString() const {
  std::string out = StrFormat("policy %s {\n", name.c_str());
  out += StrFormat("  metric %s;\n", metric == MetricKind::kCount ? "count" : "weighted");
  for (const LetDecl& let : lets) {
    out += StrFormat("  let %s = %s;\n", let.name.c_str(), let.value->ToString().c_str());
  }
  if (filter != nullptr) {
    out += StrFormat("  filter(%s, %s) { %s }\n", filter_self.c_str(), filter_stealee.c_str(),
                     filter->ToString().c_str());
  }
  out += StrFormat("  choice %s;\n", ChoiceKindName(choice));
  if (migrate != nullptr) {
    out += StrFormat("  migrate(%s, %s, %s) { %s }\n", migrate_task.c_str(),
                     migrate_victim.c_str(), migrate_thief.c_str(),
                     migrate->ToString().c_str());
  }
  out += "}\n";
  return out;
}

}  // namespace optsched::dsl
