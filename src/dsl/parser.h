// Recursive-descent parser for the policy DSL.

#ifndef OPTSCHED_SRC_DSL_PARSER_H_
#define OPTSCHED_SRC_DSL_PARSER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/dsl/ast.h"
#include "src/dsl/token.h"

namespace optsched::dsl {

struct Diagnostic {
  SourceLocation location;
  std::string message;

  std::string ToString() const;
};

struct ParseResult {
  std::optional<PolicyDecl> policy;
  std::vector<Diagnostic> diagnostics;

  bool ok() const { return policy.has_value() && diagnostics.empty(); }
  std::string DiagnosticsToString() const;
};

// Parses one `policy <name> { ... }` declaration.
ParseResult ParsePolicy(std::string_view source);

// Parses a bare expression (used by tests and the constant folder).
struct ParseExprResult {
  ExprPtr expr;
  std::vector<Diagnostic> diagnostics;
};
ParseExprResult ParseExpression(std::string_view source);

}  // namespace optsched::dsl

#endif  // OPTSCHED_SRC_DSL_PARSER_H_
