// Code generators: the paper's two compilation targets.
//
//   "These abstractions are exposed to kernel developers via a
//    domain-specific language (DSL), which is then compiled to C code that
//    can be integrated as a scheduling class into the Linux kernel, and to
//    Scala code that is verified by the Leon toolkit." (§1)
//
// EmitC produces a self-contained C11 translation unit in the style of a
// Linux scheduling-class helper (pure functions over a small struct mirror of
// the runqueue state) — buildable with any C compiler, no kernel headers
// required, so the output is testable here.
//
// EmitScala produces a Leon/Stainless-style object in the exact shape of the
// paper's Listings 1 and 2: a Core case class with load(), the policy's
// canSteal/shouldMigrate, the isOverloaded predicate, and Lemma1 stated with
// require/holds — ready to hand to the Leon toolkit where it is available.

#ifndef OPTSCHED_SRC_DSL_CODEGEN_H_
#define OPTSCHED_SRC_DSL_CODEGEN_H_

#include <string>

#include "src/dsl/ast.h"

namespace optsched::dsl {

std::string EmitC(const PolicyDecl& decl);
std::string EmitScala(const PolicyDecl& decl);

// EmitC plus a self-contained main(): a 3-core machine starting at the
// paper's loads (0,1,2) running concurrent rounds (shared snapshot,
// alternating adversarial serialization orders) driven entirely by the
// GENERATED filter/migration functions. Exits 0 once work-conserved, 1 if
// still violating after 100 rounds — so the C artifact itself demonstrates
// the theorem for sound policies and the §4.3 livelock for the broken one,
// with no dependence on this C++ code base. Compile: `cc -std=c11 -o demo
// demo.c && ./demo`.
std::string EmitCDemo(const PolicyDecl& decl);

}  // namespace optsched::dsl

#endif  // OPTSCHED_SRC_DSL_CODEGEN_H_
