#include "src/topology/topology.h"

#include "src/base/check.h"
#include "src/base/str.h"

namespace optsched {

namespace {

constexpr uint32_t kLocalDistance = 10;
constexpr uint32_t kRemoteDistance = 20;

std::vector<std::vector<uint32_t>> DefaultDistances(uint32_t nodes) {
  std::vector<std::vector<uint32_t>> d(nodes, std::vector<uint32_t>(nodes, kRemoteDistance));
  for (uint32_t i = 0; i < nodes; ++i) {
    d[i][i] = kLocalDistance;
  }
  return d;
}

}  // namespace

Topology Topology::Smp(uint32_t cpus) { return Hierarchical(1, 1, cpus, 1); }

Topology Topology::Numa(uint32_t nodes, uint32_t cpus_per_node) {
  return Hierarchical(nodes, 1, cpus_per_node, 1);
}

Topology Topology::Hierarchical(uint32_t nodes, uint32_t packages_per_node,
                                uint32_t cores_per_package, uint32_t smt_per_core) {
  OPTSCHED_CHECK(nodes > 0 && packages_per_node > 0 && cores_per_package > 0 &&
                 smt_per_core > 0);
  Topology t;
  t.packages_per_node_ = packages_per_node;
  t.cores_per_package_ = cores_per_package;
  t.smt_per_core_ = smt_per_core;
  t.node_distance_ = DefaultDistances(nodes);
  CpuId next = 0;
  for (uint32_t n = 0; n < nodes; ++n) {
    for (uint32_t p = 0; p < packages_per_node; ++p) {
      for (uint32_t c = 0; c < cores_per_package; ++c) {
        for (uint32_t s = 0; s < smt_per_core; ++s) {
          t.cpus_.push_back(CpuInfo{.cpu = next++, .smt = s, .core = c, .package = p, .node = n});
        }
      }
    }
  }
  t.IndexNodes();
  return t;
}

Topology Topology::NumaAsymmetric(const std::vector<uint32_t>& cpus_per_node) {
  OPTSCHED_CHECK(!cpus_per_node.empty());
  Topology t;
  t.packages_per_node_ = 1;
  t.cores_per_package_ = 0;  // heterogeneous; ToString reports CPU count only
  t.smt_per_core_ = 1;
  t.node_distance_ = DefaultDistances(static_cast<uint32_t>(cpus_per_node.size()));
  CpuId next = 0;
  for (uint32_t n = 0; n < cpus_per_node.size(); ++n) {
    OPTSCHED_CHECK_MSG(cpus_per_node[n] > 0, "every node needs at least one CPU");
    for (uint32_t c = 0; c < cpus_per_node[n]; ++c) {
      t.cpus_.push_back(CpuInfo{.cpu = next++, .smt = 0, .core = c, .package = 0, .node = n});
    }
  }
  t.IndexNodes();
  return t;
}

Topology Topology::NumaWithDistances(std::vector<std::vector<uint32_t>> distances,
                                     uint32_t cpus_per_node) {
  const uint32_t nodes = static_cast<uint32_t>(distances.size());
  OPTSCHED_CHECK(nodes > 0 && cpus_per_node > 0);
  for (uint32_t i = 0; i < nodes; ++i) {
    OPTSCHED_CHECK_MSG(distances[i].size() == nodes, "distance matrix must be square");
    for (uint32_t j = 0; j < nodes; ++j) {
      OPTSCHED_CHECK_MSG(distances[i][j] == distances[j][i], "distance matrix must be symmetric");
      if (i != j) {
        OPTSCHED_CHECK_MSG(distances[i][j] > distances[i][i],
                           "off-diagonal distances must exceed local distance");
      }
    }
  }
  Topology t = Hierarchical(nodes, 1, cpus_per_node, 1);
  t.node_distance_ = std::move(distances);
  return t;
}

void Topology::IndexNodes() {
  uint32_t max_node = 0;
  for (const CpuInfo& c : cpus_) {
    max_node = std::max(max_node, c.node);
  }
  node_cpus_.assign(max_node + 1, {});
  for (const CpuInfo& c : cpus_) {
    node_cpus_[c.node].push_back(c.cpu);
  }
}

const CpuInfo& Topology::cpu(CpuId id) const {
  OPTSCHED_CHECK(id < cpus_.size());
  return cpus_[id];
}

const std::vector<CpuId>& Topology::CpusInNode(NodeId node) const {
  OPTSCHED_CHECK(node < node_cpus_.size());
  return node_cpus_[node];
}

uint32_t Topology::NodeDistance(NodeId a, NodeId b) const {
  OPTSCHED_CHECK(a < node_distance_.size() && b < node_distance_.size());
  return node_distance_[a][b];
}

uint32_t Topology::CpuDistance(CpuId a, CpuId b) const {
  if (a == b) {
    return 0;
  }
  if (SharesCore(a, b)) {
    return 1;  // SMT siblings share L1/L2.
  }
  if (SharesPackage(a, b)) {
    return 2;  // Same LLC.
  }
  if (SharesNode(a, b)) {
    return 4;  // Same memory controller, different LLC.
  }
  // Cross-node: scale the SLIT distance so it always dominates intra-node.
  return 4 + NodeDistance(NodeOf(a), NodeOf(b));
}

bool Topology::SharesCore(CpuId a, CpuId b) const {
  const CpuInfo& ca = cpu(a);
  const CpuInfo& cb = cpu(b);
  return ca.node == cb.node && ca.package == cb.package && ca.core == cb.core;
}

bool Topology::SharesPackage(CpuId a, CpuId b) const {
  const CpuInfo& ca = cpu(a);
  const CpuInfo& cb = cpu(b);
  return ca.node == cb.node && ca.package == cb.package;
}

std::string Topology::ToString() const {
  if (cores_per_package_ == 0) {
    return StrFormat("%u nodes, asymmetric (%u cpus)", num_nodes(), num_cpus());
  }
  return StrFormat("%u nodes x %u pkg x %u cores x %u smt (%u cpus)", num_nodes(),
                   packages_per_node_, cores_per_package_, smt_per_core_, num_cpus());
}

}  // namespace optsched
