// Hardware topology model.
//
// The paper targets "modern hardware such as NUMA-aware thread placement"
// (§1) and future hierarchical balancing between groups of cores (§5). This
// module models the machine shape those policies consume: logical CPUs
// grouped into SMT siblings, physical cores, packages (= last-level-cache
// domains here) and NUMA nodes, plus a node distance matrix in the style of
// the ACPI SLIT table (local distance 10, remote >= 10).

#ifndef OPTSCHED_SRC_TOPOLOGY_TOPOLOGY_H_
#define OPTSCHED_SRC_TOPOLOGY_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace optsched {

using CpuId = uint32_t;
using NodeId = uint32_t;

// Per-logical-CPU placement record.
struct CpuInfo {
  CpuId cpu = 0;        // dense id, 0..num_cpus-1
  uint32_t smt = 0;     // hyperthread index within the physical core
  uint32_t core = 0;    // physical core index within the package
  uint32_t package = 0; // package index within the NUMA node
  NodeId node = 0;      // NUMA node index
};

// Immutable machine description. Construct via the factory functions.
class Topology {
 public:
  // Flat SMP machine: `cpus` logical CPUs, one package, one node.
  static Topology Smp(uint32_t cpus);

  // `nodes` NUMA nodes x `cpus_per_node` CPUs, one package per node, default
  // SLIT-style distances (10 local, 20 remote).
  static Topology Numa(uint32_t nodes, uint32_t cpus_per_node);

  // Asymmetric NUMA machine: cpus_per_node[i] CPUs on node i (real machines
  // with offlined cores or heterogeneous sockets; also the shape where
  // group-aggregate filters break — see policies/hierarchical.h).
  static Topology NumaAsymmetric(const std::vector<uint32_t>& cpus_per_node);

  // Fully hierarchical machine.
  static Topology Hierarchical(uint32_t nodes, uint32_t packages_per_node,
                               uint32_t cores_per_package, uint32_t smt_per_core);

  // NUMA machine with an explicit node distance matrix (must be square,
  // symmetric, with the diagonal strictly smaller than off-diagonal entries).
  static Topology NumaWithDistances(std::vector<std::vector<uint32_t>> distances,
                                    uint32_t cpus_per_node);

  uint32_t num_cpus() const { return static_cast<uint32_t>(cpus_.size()); }
  uint32_t num_nodes() const { return static_cast<uint32_t>(node_cpus_.size()); }

  const CpuInfo& cpu(CpuId id) const;
  NodeId NodeOf(CpuId id) const { return cpu(id).node; }

  // CPUs belonging to a node, in dense order.
  const std::vector<CpuId>& CpusInNode(NodeId node) const;

  // Node-to-node distance (SLIT semantics: smaller is closer, diagonal is the
  // minimum). CPU-level distance is the distance between the owning nodes,
  // refined so that CPUs sharing a package are closer than same-node CPUs in
  // different packages, and SMT siblings are closest of all.
  uint32_t NodeDistance(NodeId a, NodeId b) const;
  uint32_t CpuDistance(CpuId a, CpuId b) const;

  // True if the CPUs share the given level of the hierarchy.
  bool SharesCore(CpuId a, CpuId b) const;
  bool SharesPackage(CpuId a, CpuId b) const;
  bool SharesNode(CpuId a, CpuId b) const { return NodeOf(a) == NodeOf(b); }

  // Human-readable one-line description, e.g. "2 nodes x 1 pkg x 4 cores x 2 smt".
  std::string ToString() const;

 private:
  Topology() = default;

  void IndexNodes();

  std::vector<CpuInfo> cpus_;
  std::vector<std::vector<CpuId>> node_cpus_;
  std::vector<std::vector<uint32_t>> node_distance_;
  uint32_t packages_per_node_ = 1;
  uint32_t cores_per_package_ = 1;
  uint32_t smt_per_core_ = 1;
};

}  // namespace optsched

#endif  // OPTSCHED_SRC_TOPOLOGY_TOPOLOGY_H_
