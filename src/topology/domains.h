// Scheduling-domain hierarchy, in the style of Linux sched_domains.
//
// Hierarchical load balancing (paper §5) balances "load between groups of
// cores, and then inside groups". A Domain is one balancing scope: it owns a
// set of CPUs partitioned into child groups; balancing at this domain moves
// load between groups, and recursing into the group's own domain balances
// within it. BuildDomains derives the standard ladder from a Topology:
// SMT -> package(LLC) -> NUMA node -> machine, skipping degenerate levels
// (levels with a single group), exactly as Linux degenerates domains.

#ifndef OPTSCHED_SRC_TOPOLOGY_DOMAINS_H_
#define OPTSCHED_SRC_TOPOLOGY_DOMAINS_H_

#include <string>
#include <vector>

#include "src/topology/topology.h"

namespace optsched {

// One group of CPUs inside a domain (a balancing unit at that level).
struct DomainGroup {
  std::vector<CpuId> cpus;
};

// A balancing scope. `groups` partition `cpus`.
struct Domain {
  std::string name;                 // "SMT", "LLC", "NUMA", "MACHINE"
  std::vector<CpuId> cpus;          // all CPUs in scope, dense order
  std::vector<DomainGroup> groups;  // partition of `cpus`
};

// The per-CPU ladder: domains[cpu] lists the domains containing that CPU from
// the innermost (smallest) to the outermost (whole machine), mirroring the
// `for_each_domain(cpu, sd)` walk in Linux.
struct DomainHierarchy {
  // levels[l] is the list of domains at ladder level l (innermost first).
  // Every CPU belongs to exactly one domain per level present for it.
  std::vector<std::vector<Domain>> levels;

  // Index of the domain containing `cpu` at each level (same order as
  // `levels`); SIZE_MAX where the CPU has no domain at that level.
  std::vector<size_t> DomainPath(CpuId cpu) const;

  std::string ToString() const;
};

// Builds the hierarchy. Degenerate levels (where every domain would contain a
// single group, so there is nothing to balance between) are dropped.
DomainHierarchy BuildDomains(const Topology& topology);

}  // namespace optsched

#endif  // OPTSCHED_SRC_TOPOLOGY_DOMAINS_H_
