#include "src/topology/domains.h"

#include <map>
#include <tuple>

#include "src/base/check.h"
#include "src/base/str.h"

namespace optsched {

namespace {

// Key identifying the container of a CPU at a given level of the hierarchy.
using LevelKey = std::tuple<uint32_t, uint32_t, uint32_t>;

// Groups CPUs by `container_of`, and inside each container partitions them by
// `group_of`. Returns domains with >= 2 groups only (others are degenerate).
std::vector<Domain> MakeLevel(const Topology& topology, const std::string& name,
                              LevelKey (*container_of)(const CpuInfo&),
                              LevelKey (*group_of)(const CpuInfo&)) {
  std::map<LevelKey, std::map<LevelKey, DomainGroup>> containers;
  std::map<LevelKey, std::vector<CpuId>> container_cpus;
  for (CpuId id = 0; id < topology.num_cpus(); ++id) {
    const CpuInfo& info = topology.cpu(id);
    containers[container_of(info)][group_of(info)].cpus.push_back(id);
    container_cpus[container_of(info)].push_back(id);
  }
  std::vector<Domain> out;
  for (auto& [key, groups] : containers) {
    if (groups.size() < 2) {
      continue;  // Nothing to balance between: degenerate domain.
    }
    Domain d;
    d.name = name;
    d.cpus = container_cpus[key];
    for (auto& [gkey, group] : groups) {
      d.groups.push_back(std::move(group));
    }
    out.push_back(std::move(d));
  }
  return out;
}

LevelKey CoreKey(const CpuInfo& c) { return {c.node, c.package, c.core}; }
LevelKey PackageKey(const CpuInfo& c) { return {c.node, c.package, 0}; }
LevelKey NodeKey(const CpuInfo& c) { return {c.node, 0, 0}; }
LevelKey MachineKey(const CpuInfo&) { return {0, 0, 0}; }
LevelKey SmtKey(const CpuInfo& c) { return {c.node * 1000000 + c.package * 1000 + c.core, c.smt, 0}; }

}  // namespace

std::vector<size_t> DomainHierarchy::DomainPath(CpuId cpu) const {
  std::vector<size_t> path(levels.size(), SIZE_MAX);
  for (size_t l = 0; l < levels.size(); ++l) {
    for (size_t d = 0; d < levels[l].size(); ++d) {
      for (CpuId member : levels[l][d].cpus) {
        if (member == cpu) {
          path[l] = d;
          break;
        }
      }
      if (path[l] != SIZE_MAX) {
        break;
      }
    }
  }
  return path;
}

std::string DomainHierarchy::ToString() const {
  std::vector<std::string> parts;
  for (const auto& level : levels) {
    if (level.empty()) {
      continue;
    }
    parts.push_back(StrFormat("%s(x%zu, %zu groups each)", level[0].name.c_str(), level.size(),
                              level[0].groups.size()));
  }
  return Join(parts, " -> ");
}

DomainHierarchy BuildDomains(const Topology& topology) {
  DomainHierarchy h;
  // SMT level: container = physical core, group = single hyperthread.
  auto smt = MakeLevel(topology, "SMT", CoreKey, SmtKey);
  if (!smt.empty()) {
    h.levels.push_back(std::move(smt));
  }
  // LLC level: container = package, group = physical core.
  auto llc = MakeLevel(topology, "LLC", PackageKey, CoreKey);
  if (!llc.empty()) {
    h.levels.push_back(std::move(llc));
  }
  // NUMA level: container = node, group = package.
  auto numa = MakeLevel(topology, "NUMA", NodeKey, PackageKey);
  if (!numa.empty()) {
    h.levels.push_back(std::move(numa));
  }
  // Machine level: container = machine, group = node.
  auto machine = MakeLevel(topology, "MACHINE", MachineKey, NodeKey);
  if (!machine.empty()) {
    h.levels.push_back(std::move(machine));
  }
  // Sanity: every multi-CPU topology has at least one balancing level.
  if (topology.num_cpus() > 1) {
    OPTSCHED_CHECK(!h.levels.empty());
  }
  return h;
}

}  // namespace optsched
