// The unit of schedulable work shared by every queue backend.
//
// Split out of concurrent_machine.h so the lock-free Chase-Lev deque
// (chase_lev_deque.h) can store items without pulling in the full runqueue
// facade. The layout is load-bearing: the deque stores items as whole
// 64-bit words through relaxed atomics (same TSan-clean technique as
// Seqlock), so WorkItem must stay trivially copyable and a multiple of 8
// bytes — both are static_asserted at the storage site.

#ifndef OPTSCHED_SRC_RUNTIME_WORK_ITEM_H_
#define OPTSCHED_SRC_RUNTIME_WORK_ITEM_H_

#include <cstddef>
#include <cstdint>

namespace optsched::runtime {

// Destructive-interference granularity for per-field padding. A compile-time
// constant (not std::hardware_destructive_interference_size, which is
// ABI-fragile and warns under GCC) — 64 bytes is correct for every x86-64
// and the common AArch64 parts this runs on.
inline constexpr std::size_t kCacheLineSize = 64;

// A unit of work: `work_units` spins of the calibrated work loop.
// `arrival_ns` is an optional wall-clock arrival stamp (steady-clock ns, 0 =
// unstamped): the serving ingress stamps each admitted item at its open-loop
// arrival time so the executor can record end-to-end sojourn latency
// (arrival -> execution finished) without any per-item bookkeeping of its own.
// `task` is the structured-parallelism hook (docs/tasks.md): 0 means a plain
// calibrated-spin item; nonzero is an opaque task handle the executor routes
// to its configured TaskRunner instead of the spin loop. The handle is a
// word, not a pointer type, so this header stays free of any task-layer
// dependency and the item stays trivially copyable.
struct WorkItem {
  uint64_t id = 0;
  uint64_t work_units = 1;
  uint32_t weight = 1024;
  uint64_t arrival_ns = 0;
  uint64_t task = 0;
};

}  // namespace optsched::runtime

#endif  // OPTSCHED_SRC_RUNTIME_WORK_ITEM_H_
