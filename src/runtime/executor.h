// Multi-threaded work-stealing executor: the paper's scheduler running on
// real host threads.
//
// One std::thread per simulated core. Each worker loops: pop from its own
// runqueue, execute the item (a calibrated spin), and when its queue is
// empty, run the three-step balancing protocol to steal work. Selection is
// lock-free by default (seqlock snapshot, DESIGN.md D3); the `locked_selection`
// ablation takes every runqueue lock during selection instead, quantifying
// the cost the paper's optimistic design avoids. The `recheck_filter`
// ablation (D2) disables the steal-phase re-check.
//
// Robustness layer (docs/robustness.md):
//  * After `idle_spins_before_yield` fruitless protocol attempts a worker
//    enters bounded exponential backoff with jitter instead of hammering the
//    snapshot path (Leiserson-style: failed steals are bounded, so idle cores
//    should pay less for each extra failure). `fixed_yield` restores the old
//    bare-yield behaviour as an ablation.
//  * A FaultPlan (src/fault) perturbs the seams: stalled stragglers, forced
//    steal aborts, artificially stale snapshots, and worker crash-and-restart
//    — the worker thread genuinely exits and a supervisor respawns it after
//    the plan's restart delay (queues are shared memory, so no item is lost:
//    fail-stop between items, as in the paper's model).
//  * A work-conservation watchdog samples the lock-free load snapshot,
//    tracks idle-while-overloaded streaks, and escalates a persistent
//    violation by bumping an escalation epoch that snaps every worker out of
//    backoff into an immediate full-rate balancing attempt.

#ifndef OPTSCHED_SRC_RUNTIME_EXECUTOR_H_
#define OPTSCHED_SRC_RUNTIME_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/policy.h"
#include "src/fault/fault.h"
#include "src/runtime/concurrent_machine.h"
#include "src/runtime/ingress_source.h"
#include "src/sched/deal_policy.h"
#include "src/stats/histogram.h"
#include "src/trace/accounting.h"
#include "src/trace/collector.h"
#include "src/trace/metrics.h"

namespace optsched::runtime {

class Executor;

// The executor's view of a structured-parallelism task layer (docs/tasks.md).
// Kept in src/runtime so the dependency points upward, exactly like
// IngressSource: src/task implements it; the runtime knows nothing about
// join counters, task graphs or continuation bodies.
class TaskRunner {
 public:
  virtual ~TaskRunner() = default;

  // Executes `item` (item.task != 0) on `worker`'s thread, in place of the
  // calibrated spin. Children spawned and join continuations fired while the
  // body runs must be submitted through Executor::SubmitFromWorker before
  // this returns — a worker never holds back runnable work across items.
  virtual void RunItem(const WorkItem& item, Executor& executor, uint32_t worker) = 0;

  // Join continuations forked by `worker` that have not yet been submitted
  // (their children are still running). The supervisor's watchdog counts
  // them as PENDING work, mirroring the mailbox-backlog rule: a deep
  // fork-join drain must classify as transient load, never as a
  // work-conservation violation. Lock-free, may be stale by one fork.
  virtual int64_t OutstandingFor(uint32_t worker) const = 0;
};

struct ExecutorConfig {
  uint32_t num_workers = 4;
  // Spin iterations per work unit (~tens of ns each on current hardware).
  uint64_t spin_per_unit = 50;
  // Queue-backend concept (docs/runtime.md#queue-backends): the locked
  // reference queue or the lock-free Chase-Lev deque. Every worker-loop seam
  // (pop, finish, ingress drain, steal, wakeup epoch) is backend-neutral.
  QueueBackend backend = QueueBackend::kLocked;
  // Per-queue ring bound for the chase_lev backend; overflow spills to the
  // queue's locked inbox (never dropped).
  uint32_t chase_lev_capacity = 1024;
  // D3 ablation: lock all runqueues during the selection phase. Requires the
  // locked backend (the chase_lev deque has no per-queue lock to take).
  bool locked_selection = false;
  // D2 ablation: skip the filter re-check in the steal phase.
  bool recheck_filter = true;
  // Cap on items migrated per successful steal action (batched steal-half,
  // docs/runtime.md). The effective batch per steal is
  // min(max_steal_batch, policy.StealBatchHint(victim, thief)), every item
  // still individually gated by the migration rule under both locks. 1 (the
  // default) preserves the original behaviour — the `steal_one` ablation.
  uint32_t max_steal_batch = 1;
  // Enter backoff after this many consecutive fruitless steal attempts.
  uint32_t idle_spins_before_yield = 16;
  // Ablation: restore the pre-backoff behaviour (bare yield every
  // `idle_spins_before_yield` fruitless attempts, no exponential growth).
  bool fixed_yield = false;
  // Bounded exponential backoff: the park length starts at
  // `initial_backoff_spins` CpuRelax iterations and doubles per consecutive
  // fruitless episode up to `max_backoff_spins` (the bound — an idle worker
  // is never more than one capped park away from retrying, so transient
  // faults delay convergence by a bounded, configurable amount). With
  // `backoff_jitter` each park draws uniformly from [spins/2, spins] to
  // decorrelate thieves that went idle together.
  uint64_t initial_backoff_spins = 64;
  uint64_t max_backoff_spins = 1 << 15;
  bool backoff_jitter = true;
  // Fault injection (all-zero plan = no injector, zero overhead in the loop).
  fault::FaultPlan fault_plan;
  // Work-conservation watchdog (supervisor thread): samples loads every
  // `supervisor_poll_us`, escalates when a worker sits idle-while-overloaded
  // for more than `watchdog_threshold_samples` consecutive samples
  // (0 = 2 * num_workers).
  bool watchdog = false;
  uint64_t watchdog_threshold_samples = 0;
  uint64_t supervisor_poll_us = 50;
  // Concurrent observability (docs/observability.md): per-worker lock-free
  // SPSC trace rings, plus one supervisor ring for watchdog verdicts and
  // restarts, merged into ExecutorReport::trace_events after the run. Steal
  // outcomes, backoff parks, escalation wakeups and crashes are recorded
  // WITHOUT any lock on the selection fast path. 0 disables recording; the
  // disabled path costs one null-pointer check per event site, so throughput
  // numbers don't move.
  size_t trace_ring_capacity = 0;
  // Serving ingress (docs/serving.md): when non-null, each worker drains its
  // slice of the source into its own runqueue at round boundaries (queue
  // empty) and, under sustained local load, every
  // `ingress_drain_interval_items` executed items — so a busy owner bounds
  // its mailbox sojourn instead of starving the mailbox until it runs dry.
  // The source must outlive the run. Requires RunFor (open-system mode):
  // closed-system Run() terminates on its submitted count and would strand
  // late-admitted mailbox items.
  IngressSource* ingress = nullptr;
  uint32_t ingress_drain_batch = 64;
  uint64_t ingress_drain_interval_items = 32;
  // Structured-parallelism seam (docs/tasks.md): items with item.task != 0
  // are dispatched to this runner instead of the calibrated spin. The runner
  // must outlive the run. Null rejects task items loudly.
  TaskRunner* task_runner = nullptr;
  // Proactive work-dealing (docs/runtime.md#work-dealing): when deal.enabled,
  // each worker runs a deal round every deal.check_interval_items executed
  // items — if its task count exceeds deal.threshold inside the post-steal
  // grace window and an idle peer exists, it pushes ceil(gap/2) items into
  // that peer's bounded deal mailbox (owner-side stores instead of
  // thief-side synchronization). deal_sink is the transport (an
  // ingress::DealChannel); it must outlive the run, and its notify callback
  // should be wired to NotifyIngress so a parked recipient cannot sleep
  // through a deal. Dealt items are MIGRATING, never re-admitted: they keep
  // their original remaining/submitted accounting, so closed-system Run()
  // works with dealing on. The reactive steal path stays on as unconditional
  // fallback — work conservation never rests on a deal landing.
  DealConfig deal;
  DealSink* deal_sink = nullptr;
  // Ablation (E17 deal-only): disable the reactive steal fallback entirely.
  // Workers still execute their own queues, drain ingress and deal mailboxes;
  // they just never run the three-step balancing protocol.
  bool steal_enabled = true;
  uint64_t seed = 1;
};

struct WorkerStats {
  uint64_t items_executed = 0;
  uint64_t units_executed = 0;
  StealCounters steals;
  uint64_t idle_loops = 0;
  // Backoff accounting: parks entered, CpuRelax spins paid inside them, bare
  // yields (fixed_yield ablation or capped-backoff politeness), and
  // watchdog-escalation wakeups that cut a park short.
  uint64_t backoff_events = 0;
  uint64_t backoff_spins_total = 0;
  uint64_t yields = 0;
  uint64_t escalation_wakeups = 0;
  // Injected crash-and-restarts this worker index suffered.
  uint64_t crashes = 0;
  // Ingress accounting: drain actions, items moved mailbox->runqueue, and
  // parks cut short by a submit/mailbox wakeup-epoch bump (the lost-wakeup
  // fix — see wakeup_epoch_ below).
  uint64_t mailbox_drains = 0;
  uint64_t mailbox_items_drained = 0;
  uint64_t submit_wakeups = 0;
  // Work-dealing accounting (docs/runtime.md#work-dealing). Dealer side:
  // rounds that cleared the window+threshold+recipient gates and took a
  // batch; rounds that placed >= 1 item with the peer; items accepted into
  // the peer's deal mailbox; refused-tail items spilled straight into the
  // peer's runqueue; abandoned batches returned to the own queue.
  uint64_t deal_rounds = 0;
  uint64_t deal_pushes = 0;
  uint64_t deal_items_dealt = 0;
  uint64_t deal_items_direct = 0;
  uint64_t deal_items_returned = 0;
  // Recipient side: deal-mailbox drain actions and items moved to the queue.
  uint64_t deal_drains = 0;
  uint64_t deal_items_received = 0;
  // Steal-phase latency, split by outcome: successful steals and genuine
  // failed attempts (non-empty filter, lost re-check or no eligible task).
  // Failed attempts are exactly the contention §4.3 reasons about — recording
  // only successes made them invisible.
  stats::LogHistogram steal_latency_ns;
  stats::LogHistogram steal_fail_latency_ns;
  stats::LogHistogram selection_latency_ns;
  // End-to-end sojourn (WorkItem::arrival_ns -> execution finished) of
  // executed items that carried an arrival stamp; empty in closed-system
  // runs, which don't stamp.
  stats::LogHistogram sojourn_ns;
};

struct ExecutorReport {
  std::vector<WorkerStats> workers;
  uint64_t wall_time_ns = 0;
  uint64_t total_items = 0;            // submitted (seeded + dynamic)
  uint64_t items_left_unexecuted = 0;  // still queued at a RunFor deadline
  // Faults the plan actually injected during the run.
  fault::FaultStats faults;
  // Watchdog verdict (all-zero when the watchdog was off).
  trace::WatchdogStats watchdog;
  // Merged time-ordered stream from the per-worker trace rings (empty when
  // trace_ring_capacity == 0) and the events lost to full rings.
  std::vector<trace::TraceEvent> trace_events;
  uint64_t trace_dropped = 0;
  // Seqlock reader retries across all runqueues during this run: how often a
  // lock-free load read raced an in-flight publish and had to loop. This is
  // the direct measure of snapshot staleness pressure — high values mean the
  // selection phase frequently decides on loads that were being rewritten
  // under it (legitimate, but previously invisible).
  uint64_t seqlock_read_retries = 0;

  uint64_t total_successes() const;
  // Items migrated across all successful steal actions (>= total_successes();
  // equal when max_steal_batch == 1).
  uint64_t total_items_stolen() const;
  uint64_t total_failed_recheck() const;
  uint64_t total_attempts() const;
  uint64_t total_backoff_events() const;
  uint64_t total_crashes() const;
  uint64_t total_mailbox_items_drained() const;
  uint64_t total_deal_rounds() const;
  // Items migrated by dealing = mailbox-accepted + direct-spilled (returned
  // items never migrated; received is the recipient-side mirror of accepted).
  uint64_t total_deal_items_dealt() const;
  uint64_t total_deal_items_direct() const;
  uint64_t total_deal_items_returned() const;
  uint64_t total_deal_items_received() const;
  // Sojourn histograms of all workers merged (arrival-stamped items only).
  stats::LogHistogram MergedSojournNs() const;
  double throughput_items_per_ms() const;
  // Snapshots every counter of the run — per-worker and aggregate steal
  // outcomes, backoff, faults, watchdog, trace drops — into the registry
  // under "executor.*" names.
  void ExportMetrics(trace::MetricsRegistry& registry) const;
  std::string ToString() const;
};

class Executor {
 public:
  Executor(std::shared_ptr<const BalancePolicy> policy, const ExecutorConfig& config,
           const Topology* topology = nullptr);

  // Seeds queue `queue_index` with `items`; call before Run.
  void Seed(uint32_t queue_index, const std::vector<WorkItem>& items);

  // Spawns the workers, runs until every seeded item has been executed, joins
  // the workers, and returns the report. The instance is reusable: each run
  // reports only the items submitted since the previous run finished (plus
  // any items a RunFor deadline left queued, which the next run executes);
  // a second Run() without new work reports zero items and returns promptly.
  ExecutorReport Run();

  // Open-system mode: spawns the workers, runs `producer` on its own thread
  // (it may call Submit until stopped() turns true), stops everything after
  // `duration_ms` of wall time, joins, and reports. Items still queued at the
  // deadline are left unexecuted (counted via items_left_unexecuted).
  ExecutorReport RunFor(uint64_t duration_ms,
                        const std::function<void(Executor&)>& producer = {});

  // Thread-safe submission while RunFor is active (or before Run).
  void Submit(uint32_t queue_index, const WorkItem& item);

  // Thread-safe batch submission: bumps the remaining-item count ONCE for the
  // whole batch, before any item becomes poppable (see the ordering note at
  // the definition), then pushes every item under the queue lock.
  void SubmitBatch(uint32_t queue_index, const std::vector<WorkItem>& items);

  // Worker-context batch submission — the spawn seam (docs/tasks.md). Must be
  // called from worker `worker`'s own thread while it is executing an item:
  // the batch lands on the worker's OWN runqueue through the owner push path
  // (deque bottom on chase_lev, so recursive decomposition stays on the
  // allocation-free hot path and stays stealable), with the same
  // count-before-poppable ordering as SubmitBatch and one wakeup bump per
  // flush so parked siblings come looking for the new work.
  void SubmitFromWorker(uint32_t worker, const WorkItem* items, uint32_t count);

  // True once the run deadline passed; producers should poll this and return.
  bool stopped() const { return stop_.load(std::memory_order_acquire); }

  // Ingress notification hook: wire MailboxSet's notify callback here (any
  // producer thread). Bumps the wakeup epoch so every parked worker bails
  // out of its backoff window and re-checks its mailbox/queue. Deliberately
  // wakes ALL parked workers, not just `worker`: a per-worker doorbell would
  // need per-worker state the park loop re-reads anyway, and a non-empty
  // mailbox usually coincides with spill traffic toward the siblings.
  void NotifyIngress(uint32_t worker);

 private:
  // Worker lifecycle, observed by the supervisor loop. A worker publishes
  // kCrashed/kDone itself; kAwaitingRestart is supervisor-private.
  enum WorkerState : uint32_t { kRunning = 0, kCrashed = 1, kAwaitingRestart = 2, kDone = 3 };

  struct WorkerSlot {
    std::thread thread;
    // optsched-lint: allow(mc-hook-coverage): crash/restart supervision handshake — the mc harness fail-stops fibers itself, outside this seam
    std::atomic<uint32_t> state{kRunning};
    uint64_t restart_at_ns = 0;  // supervisor-only
  };

  // `ring` is this worker's SPSC trace ring (null when tracing is off). A
  // respawned worker reuses its predecessor's ring: the supervisor joins the
  // crashed thread before spawning the replacement, so there is never more
  // than one live producer per ring.
  void WorkerMain(uint32_t worker_index, WorkerStats& stats, std::atomic<uint32_t>& state,
                  trace::SpscTraceRing* ring);
  // Moves up to ingress_drain_batch items from config_.ingress into
  // `worker`'s own runqueue (count bumped BEFORE the items become poppable,
  // same ordering contract as SubmitBatch). `batch` is the worker's reusable
  // scratch. Returns items moved.
  uint32_t DrainIngress(uint32_t worker, WorkerStats& stats, std::vector<WorkItem>& batch,
                        trace::SpscTraceRing* ring);
  // One dealer-side deal round for `worker` (docs/runtime.md#work-dealing):
  // window check, threshold check, recipient pick, take-push-place. `batch`
  // and `pending_scratch` are the worker's reusable scratch buffers;
  // `snapshot` is a dedicated buffer (never the steal path's, so the
  // stale-snapshot fault semantics stay untouched).
  void DealRound(uint32_t worker, ConcurrentRunQueue& own, WorkerStats& stats,
                 DealWindow& window, LoadSnapshot& snapshot, std::vector<WorkItem>& batch,
                 std::vector<int64_t>& pending_scratch, trace::SpscTraceRing* ring);
  // Recipient side: moves dealt items mailbox->runqueue through the owner
  // push path WITHOUT touching remaining/submitted counts — dealt items were
  // counted at their original submission and are only migrating (the
  // double-count would wedge closed-system termination). Returns items moved.
  uint32_t DrainDealt(uint32_t worker, WorkerStats& stats, std::vector<WorkItem>& batch,
                      trace::SpscTraceRing* ring);
  // Shared driver behind Run and RunFor: spawns workers, supervises
  // crash-and-restart and the watchdog, joins, reports. duration_ms == 0
  // means closed-system mode (run until drained).
  ExecutorReport RunInternal(uint64_t duration_ms, const std::function<void(Executor&)>& producer);

  std::shared_ptr<const BalancePolicy> policy_;
  ExecutorConfig config_;
  const Topology* topology_;
  ConcurrentMachine machine_;
  // Pure deal decision layer (src/sched); all synchronization stays here.
  DealPolicy deal_policy_;
  // Items a dealer holds between TakeOwnerBatch and placement: in no queue
  // and no mailbox, so the watchdog must read them as PENDING for the dealer
  // — without this a deal landing inside a sampling window looks like work
  // vanishing (the invisible-in-flight accounting bug this array fixes).
  // optsched-lint: allow(mc-hook-coverage): watchdog pending bookkeeping, never a worker scheduling decision input
  std::vector<std::atomic<int64_t>> deal_in_flight_;
  std::unique_ptr<fault::FaultInjector> injector_;
  // Per-run trace rings (workers 0..n-1, supervisor lane n); null when off.
  std::unique_ptr<trace::TraceCollector> collector_;
  // Queued-but-unexecuted items; drives closed-system termination.
  // optsched-lint: allow(mc-hook-coverage): termination bookkeeping — the mc harness drives ConcurrentMachine directly and owns termination
  std::atomic<uint64_t> remaining_items_{0};
  // Items submitted toward the CURRENT (or next) run's total: Seed/Submit add
  // here, and each run finishes by resetting it to the leftover queue depth —
  // so a reused instance never reports a stale count (it used to report the
  // cumulative seeded total forever).
  // optsched-lint: allow(mc-hook-coverage): reporting counter, never a scheduling decision input
  std::atomic<uint64_t> submitted_items_{0};
  // optsched-lint: allow(mc-hook-coverage): deadline-mode stop flag — wall-clock deadlines do not exist under the checker
  std::atomic<bool> stop_{false};
  // Bumped by the supervisor when the watchdog escalates; workers snap out of
  // backoff when they observe a new epoch.
  // mc: kEpochLoad, kEpochBump
  std::atomic<uint64_t> escalation_epoch_{0};
  // Bumped by Submit/SubmitBatch/NotifyIngress AFTER the new work is
  // visible. Each worker samples it at the TOP of its loop — before the last
  // empty re-check of its queue, its mailbox and the steal filter — and a
  // park bails as soon as the sampled value goes stale. This closes the
  // lost-wakeup window the escalation epoch alone had: that epoch was read
  // for the first time INSIDE park, after the empty re-checks, so a submit
  // landing between a worker's last re-check and its park entry was invisible
  // until the park expired (regression: executor_wakeup_test).
  // mc: kEpochLoad, kEpochBump
  std::atomic<uint64_t> wakeup_epoch_{0};
  bool deadline_mode_ = false;
  // Wall-clock origin of the current run; trace timestamps are relative μs.
  uint64_t run_start_ns_ = 0;
};

}  // namespace optsched::runtime

#endif  // OPTSCHED_SRC_RUNTIME_EXECUTOR_H_
