// Multi-threaded work-stealing executor: the paper's scheduler running on
// real host threads.
//
// One std::thread per simulated core. Each worker loops: pop from its own
// runqueue, execute the item (a calibrated spin), and when its queue is
// empty, run the three-step balancing protocol to steal work. Selection is
// lock-free by default (seqlock snapshot, DESIGN.md D3); the `locked_selection`
// ablation takes every runqueue lock during selection instead, quantifying
// the cost the paper's optimistic design avoids. The `recheck_filter`
// ablation (D2) disables the steal-phase re-check.

#ifndef OPTSCHED_SRC_RUNTIME_EXECUTOR_H_
#define OPTSCHED_SRC_RUNTIME_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/policy.h"
#include "src/runtime/concurrent_machine.h"
#include "src/stats/histogram.h"

namespace optsched::runtime {

struct ExecutorConfig {
  uint32_t num_workers = 4;
  // Spin iterations per work unit (~tens of ns each on current hardware).
  uint64_t spin_per_unit = 50;
  // D3 ablation: lock all runqueues during the selection phase.
  bool locked_selection = false;
  // D2 ablation: skip the filter re-check in the steal phase.
  bool recheck_filter = true;
  // Park (yield) after this many consecutive fruitless steal attempts.
  uint32_t idle_spins_before_yield = 16;
  uint64_t seed = 1;
};

struct WorkerStats {
  uint64_t items_executed = 0;
  uint64_t units_executed = 0;
  StealCounters steals;
  uint64_t idle_loops = 0;
  stats::LogHistogram steal_latency_ns;
  stats::LogHistogram selection_latency_ns;
};

struct ExecutorReport {
  std::vector<WorkerStats> workers;
  uint64_t wall_time_ns = 0;
  uint64_t total_items = 0;            // submitted (seeded + dynamic)
  uint64_t items_left_unexecuted = 0;  // still queued at a RunFor deadline

  uint64_t total_successes() const;
  uint64_t total_failed_recheck() const;
  uint64_t total_attempts() const;
  double throughput_items_per_ms() const;
  std::string ToString() const;
};

class Executor {
 public:
  Executor(std::shared_ptr<const BalancePolicy> policy, const ExecutorConfig& config,
           const Topology* topology = nullptr);

  // Seeds queue `queue_index` with `items`; call before Run.
  void Seed(uint32_t queue_index, const std::vector<WorkItem>& items);

  // Spawns the workers, runs until every seeded item has been executed, joins
  // the workers, and returns the report.
  ExecutorReport Run();

  // Open-system mode: spawns the workers, runs `producer` on its own thread
  // (it may call Submit until stopped() turns true), stops everything after
  // `duration_ms` of wall time, joins, and reports. Items still queued at the
  // deadline are left unexecuted (counted via items_left_unexecuted).
  ExecutorReport RunFor(uint64_t duration_ms,
                        const std::function<void(Executor&)>& producer = {});

  // Thread-safe submission while RunFor is active (or before Run).
  void Submit(uint32_t queue_index, const WorkItem& item);

  // True once the run deadline passed; producers should poll this and return.
  bool stopped() const { return stop_.load(std::memory_order_acquire); }

 private:
  void WorkerMain(uint32_t worker_index, WorkerStats& stats);

  std::shared_ptr<const BalancePolicy> policy_;
  ExecutorConfig config_;
  const Topology* topology_;
  ConcurrentMachine machine_;
  std::atomic<uint64_t> remaining_items_{0};
  std::atomic<uint64_t> submitted_items_{0};
  std::atomic<bool> stop_{false};
  bool deadline_mode_ = false;
  uint64_t seeded_items_ = 0;
};

}  // namespace optsched::runtime

#endif  // OPTSCHED_SRC_RUNTIME_EXECUTOR_H_
