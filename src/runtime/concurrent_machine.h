// Concurrent (real-thread) implementation of the paper's scheduler model.
//
// One ConcurrentRunQueue per worker: a spinlock-protected deque plus a
// seqlock-published load, so that
//   * the SELECTION phase reads loads of all cores lock-free (possibly
//     stale — the optimistic part),
//   * the STEALING phase locks exactly the thief's and the victim's queues
//     (queue-index order), re-checks the policy's filter against the now-exact
//     loads of the pair, and migrates a batch of up to
//     min(StealOptions::max_batch, policy.StealBatchHint()) items — each one
//     individually gated by the migration rule against loads updated
//     move-by-move, so the per-migration proofs carry over to batches.
// Steals that fail the re-check are counted, not retried — they are the
// paper's legitimate failures.
//
// Hot-path cost model (docs/runtime.md): the selection + steal path performs
// ZERO heap allocations in the steady state. Snapshots refill caller-owned
// buffers in place, the eligibility callback is a non-allocating FunctionRef,
// and the steal batch lands in a reusable scratch vector. Each queue's lock
// and published load live on their own cache lines so a thief's seqlock reads
// never false-share with the owner's deque mutations, and the whole batch is
// published ONCE per queue per critical section — two seqlock writes per
// successful steal action, however many items moved.

#ifndef OPTSCHED_SRC_RUNTIME_CONCURRENT_MACHINE_H_
#define OPTSCHED_SRC_RUNTIME_CONCURRENT_MACHINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "src/base/function_ref.h"
#include "src/base/thread_annotations.h"
#include "src/core/policy.h"
#include "src/runtime/seqlock.h"
#include "src/runtime/spinlock.h"
#include "src/sched/machine_state.h"

namespace optsched::runtime {

// Destructive-interference granularity for the field padding below. A
// compile-time constant (not std::hardware_destructive_interference_size,
// which is ABI-fragile and warns under GCC) — 64 bytes is correct for every
// x86-64 and the common AArch64 parts this runs on.
inline constexpr std::size_t kCacheLineSize = 64;

// A unit of work: `work_units` spins of the calibrated work loop.
// `arrival_ns` is an optional wall-clock arrival stamp (steady-clock ns, 0 =
// unstamped): the serving ingress stamps each admitted item at its open-loop
// arrival time so the executor can record end-to-end sojourn latency
// (arrival -> execution finished) without any per-item bookkeeping of its own.
struct WorkItem {
  uint64_t id = 0;
  uint64_t work_units = 1;
  uint32_t weight = 1024;
  uint64_t arrival_ns = 0;
};

struct LoadPair {
  int64_t task_count = 0;
  int64_t weighted_load = 0;
};

class ConcurrentRunQueue {
 public:
  ConcurrentRunQueue() = default;

  // --- Owner operations (internal locking — callers must NOT hold lock()) ----

  // Pops the head for execution; the popped item counts as the core's
  // "current" (still part of the published load) until FinishCurrent().
  // The single-current invariant is checked BEFORE any mutation: a firing
  // check must leave the queue exactly as it found it (item still queued,
  // load still published), so the post-mortem state is trustworthy.
  std::optional<WorkItem> PopForRun() OPTSCHED_EXCLUDES(lock_);
  // Declares the current item finished; load drops accordingly.
  void FinishCurrent() OPTSCHED_EXCLUDES(lock_);
  // Enqueues a new item (tail).
  void Push(WorkItem item) OPTSCHED_EXCLUDES(lock_);

  // --- Lock-free observation (selection phase) -------------------------------
  LoadPair ReadLoad() const { return published_.Read(); }
  // Torn-read retries the published-load seqlock has absorbed (staleness
  // pressure on this queue's snapshot; see Seqlock::read_retries).
  uint64_t SeqlockReadRetries() const { return published_.read_retries(); }
  // Completed publishes of this queue's load. The steal path must bump this
  // at most once per held-lock critical section (publish batching).
  uint64_t SeqlockWriteCount() const { return published_.write_count(); }

  // --- Cross-core steal support ----------------------------------------------
  SpinLock& lock() OPTSCHED_RETURN_CAPABILITY(lock_) { return lock_; }
  // Must hold lock(): exact loads / queue access.
  LoadPair ExactLoadLocked() const OPTSCHED_REQUIRES(lock_);
  // Removes up to `max_items` items from the tail, newest first, appending
  // them to `out`. `eligible` is consulted once per candidate; returning true
  // COMMITS the removal (callers update their running victim/thief loads
  // inside the callback). Ineligible items are skipped, the scan continues
  // toward the head. The published load is written ONCE, after the last
  // removal — not per item — so concurrent seqlock readers see one
  // invalidation per steal action. Returns the number of items taken.
  uint32_t StealTailLocked(FunctionRef<bool(const WorkItem&)> eligible, uint32_t max_items,
                           std::vector<WorkItem>& out) OPTSCHED_REQUIRES(lock_);
  void PushLocked(WorkItem item) OPTSCHED_REQUIRES(lock_);
  // Appends `count` items and publishes the new load once.
  void PushBatchLocked(const WorkItem* items, uint32_t count) OPTSCHED_REQUIRES(lock_);

 private:
  void PublishLocked() OPTSCHED_REQUIRES(lock_);

  // The owner's lock + deque and the thieves' read-mostly published load are
  // split onto separate cache lines: a thief polling published_ must not
  // contend with the owner pushing/popping ready_, and the lock word must not
  // share a line with either (lock handoff invalidates it constantly).
  alignas(kCacheLineSize) mutable SpinLock lock_;
  std::deque<WorkItem> ready_ OPTSCHED_GUARDED_BY(lock_);
  bool running_ OPTSCHED_GUARDED_BY(lock_) = false;
  int64_t running_weight_ OPTSCHED_GUARDED_BY(lock_) = 0;
  int64_t queued_weight_ OPTSCHED_GUARDED_BY(lock_) = 0;
  // Written only under lock_ (PublishLocked), read lock-free by any thread:
  // the seqlock IS the synchronization, so no GUARDED_BY — the write-side
  // discipline is the REQUIRES on PublishLocked plus the lint rule
  // seqlock-write-context.
  alignas(kCacheLineSize) Seqlock<LoadPair> published_;
};

// Outcome counters for one worker's stealing activity. `successes` counts
// steal ACTIONS (critical sections that moved >= 1 item); `items_stolen`
// counts migrated items. Invariant: successes <= items_stolen <=
// successes * max_batch (mirrors BalanceStats successes/tasks_moved).
struct StealCounters {
  uint64_t attempts = 0;
  uint64_t successes = 0;
  uint64_t items_stolen = 0;
  uint64_t failed_recheck = 0;
  uint64_t failed_no_task = 0;
  uint64_t empty_filter = 0;
};

// Knobs of one TrySteal call. Defaults reproduce the paper's Listing 1
// exactly: re-checked, one item per successful steal (`steal_one`).
struct StealOptions {
  // Listing 1 line 12; false is the D2 ablation (steal on stale loads).
  bool recheck = true;
  // Cap on items migrated per successful steal action. The effective batch is
  // min(max_batch, policy.StealBatchHint(victim, thief)) with every item
  // still gated by ShouldMigrate — 1 preserves the original steal-one
  // behaviour, larger values enable steal-half batching.
  uint32_t max_batch = 1;
  // FAULT KNOB for the model-checking harness only (docs/model_checking.md):
  // ignore both the migration rule and the batch cap and strip the victim
  // bare. Deliberately violates steal safety — exists so the checker can
  // demonstrate it finds and minimizes the resulting counterexample. Never
  // set in production paths.
  bool break_batch_bound = false;
};

// Reusable scratch buffers for the selection + steal hot path. One per
// worker, passed into TrySteal: every vector reaches its high-water capacity
// during warmup and is refilled in place afterwards (resize-once, zero
// steady-state allocations).
struct StealScratch {
  std::vector<CpuId> candidates;
  LoadSnapshot locked_snapshot;
  std::vector<WorkItem> batch;
};

// Facts about a successful steal captured while both runqueue locks were
// still held — the only vantage point from which "the victim was not idled"
// (steal safety, §4.1) can be asserted without racing later mutations. The
// model checker's harness consumes this; production callers pass nullptr.
struct StealObservation {
  uint64_t item_id = 0;  // first (tail-most) migrated item
  uint32_t items_moved = 0;
  // Seqlock publishes performed inside this critical section across both
  // queues. Publish batching requires <= 2 (one per queue) regardless of
  // items_moved; the mc harness asserts exactly that.
  uint64_t seqlock_writes = 0;
  int64_t victim_tasks_after = 0;
  int64_t thief_tasks_after = 0;
};

class ConcurrentMachine {
 public:
  explicit ConcurrentMachine(uint32_t num_queues);

  uint32_t num_queues() const { return static_cast<uint32_t>(queues_.size()); }
  ConcurrentRunQueue& queue(uint32_t index) { return *queues_[index]; }

  // Lock-free load snapshot across all queues (selection-phase view).
  LoadSnapshot Snapshot() const;
  // Allocation-free variant: resizes `out` once, refills it in place.
  void SnapshotInto(LoadSnapshot& out) const;

  // Snapshot taken while holding every queue lock (the D3 ablation: "locked
  // selection" — exact but stalls all owners). The loop-carried acquisition
  // of N locks through the queue vector is outside what the thread-safety
  // analysis can follow, hence the explicit opt-out; the index-order ranking
  // is the same machine-wide one DualLockGuard documents.
  LoadSnapshot LockedSnapshot();
  void LockedSnapshotInto(LoadSnapshot& out) OPTSCHED_NO_THREAD_SAFETY_ANALYSIS;

  // Full three-step attempt by `thief`: filter+choice on `snapshot`, then the
  // two-lock steal phase with re-check and batched migration per `options`.
  // On success the stolen items are pushed onto the thief's queue (one
  // publish per queue). Updates `counters`. When the filter was non-empty,
  // `victim_out` (if given) receives the chosen victim — trace events want to
  // attribute the outcome to the pair, not just the thief.
  // `observation_out` (if given) is filled on success with the post-steal
  // loads of the locked pair, the batch size and the critical section's
  // publish count, all read under the locks. `scratch` (if given) supplies
  // the reusable buffers that make the attempt allocation-free; null falls
  // back to call-local buffers (tests, harness).
  bool TrySteal(const BalancePolicy& policy, CpuId thief, const LoadSnapshot& snapshot,
                Rng& rng, const StealOptions& options, StealCounters& counters,
                const Topology* topology = nullptr, CpuId* victim_out = nullptr,
                StealObservation* observation_out = nullptr,
                StealScratch* scratch = nullptr);

  // Sum of SeqlockReadRetries over all queues.
  uint64_t TotalSeqlockReadRetries() const;
  // Sum of SeqlockWriteCount over all queues.
  uint64_t TotalSeqlockWrites() const;

 private:
  std::vector<std::unique_ptr<ConcurrentRunQueue>> queues_;
};

}  // namespace optsched::runtime

#endif  // OPTSCHED_SRC_RUNTIME_CONCURRENT_MACHINE_H_
