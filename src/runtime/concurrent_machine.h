// Concurrent (real-thread) implementation of the paper's scheduler model,
// behind a pluggable QUEUE-BACKEND concept.
//
// One ConcurrentRunQueue per worker. The queue is a facade over one of two
// synchronization substrates (docs/runtime.md#queue-backends):
//
//   * QueueBackend::kLocked — the reference/ablation backend: a
//     spinlock-protected deque plus a seqlock-published load. The SELECTION
//     phase reads loads of all cores lock-free (possibly stale — the
//     optimistic part); the STEALING phase locks exactly the thief's and the
//     victim's queues (queue-index order), re-checks the policy's filter
//     against the now-exact loads of the pair, and migrates a batch with
//     every item individually gated by the migration rule.
//
//   * QueueBackend::kChaseLev — the lock-free backend: a bounded Chase-Lev
//     work-stealing deque (chase_lev_deque.h). The owner pushes/pops at
//     bottom with no CAS in the common case; a thief observes (PeekTop),
//     runs the SAME policy gate against the observed state, and commits with
//     a single CAS on top anchored to the observed index. A lost CAS is
//     surfaced as `failed_recheck`: the paper's filter -> choice -> steal
//     proof structure carries over with the CAS playing the role of the
//     locked re-check. External producers cannot touch bottom (single-owner
//     discipline), so Push lands in a small spinlock-protected INBOX the
//     owner drains into the deque at its next pop; the published load is a
//     pair of relaxed counters covering deque + inbox + running.
//
// Steals that fail the re-check (or the CAS) are counted, not retried — they
// are the paper's legitimate failures.
//
// Hot-path cost model (docs/runtime.md): the selection + steal path performs
// ZERO heap allocations in the steady state on both backends. Snapshots
// refill caller-owned buffers in place, the eligibility gate allocates
// nothing, and the steal batch lands in a reusable scratch vector. Per-queue
// synchronization state is cache-line padded so a thief's load polling never
// false-shares with the owner's queue mutations.

#ifndef OPTSCHED_SRC_RUNTIME_CONCURRENT_MACHINE_H_
#define OPTSCHED_SRC_RUNTIME_CONCURRENT_MACHINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "src/base/function_ref.h"
#include "src/base/thread_annotations.h"
#include "src/core/policy.h"
#include "src/runtime/chase_lev_deque.h"
#include "src/runtime/seqlock.h"
#include "src/runtime/spinlock.h"
#include "src/runtime/work_item.h"
#include "src/sched/machine_state.h"

namespace optsched::runtime {

// Which synchronization substrate backs each run queue.
enum class QueueBackend {
  kLocked,    // spinlock-protected deque + seqlock-published load (reference)
  kChaseLev,  // bounded lock-free Chase-Lev deque + counter-published load
};

const char* QueueBackendName(QueueBackend backend);
// Parses "locked" / "chase_lev"; false (out untouched) on anything else.
bool ParseQueueBackend(std::string_view name, QueueBackend& out);

struct LoadPair {
  int64_t task_count = 0;
  int64_t weighted_load = 0;
};

class ConcurrentRunQueue {
 public:
  // Default: the locked reference backend (unchanged behaviour).
  ConcurrentRunQueue() : ConcurrentRunQueue(QueueBackend::kLocked) {}
  // `deque_capacity` bounds the chase_lev ring (rounded up to a power of
  // two); overflow spills to the inbox. `broken_steal_order` is the mc fault
  // knob forwarded to ChaseLevDeque — never set in production paths.
  explicit ConcurrentRunQueue(QueueBackend backend, uint32_t deque_capacity = 1024,
                              bool broken_steal_order = false);

  QueueBackend backend() const { return backend_; }

  // --- Owner operations (callers must NOT hold lock()) -----------------------

  // Pops the next item for execution; the popped item counts as the core's
  // "current" (still part of the published load) until FinishCurrent().
  // The single-current invariant is checked BEFORE any mutation: a firing
  // check must leave the queue exactly as it found it (item still queued,
  // load still published), so the post-mortem state is trustworthy.
  // Backend note: kLocked pops the HEAD (FIFO), kChaseLev pops the BOTTOM
  // (LIFO — the work-stealing discipline: owner takes newest, thieves take
  // oldest). Neither order is a proof obligation.
  std::optional<WorkItem> PopForRun() OPTSCHED_EXCLUDES(lock_);
  // Declares the current item finished; load drops accordingly.
  void FinishCurrent() OPTSCHED_EXCLUDES(lock_);
  // Enqueues a new item from ANY thread (kLocked: tail under the lock;
  // kChaseLev: the inbox — only the owner may touch the deque's bottom).
  void Push(WorkItem item) OPTSCHED_EXCLUDES(lock_);
  // Owner-only batch append, backend-neutral: the executor's ingress drain
  // and the steal path's landing site. kLocked takes the queue lock once for
  // the whole batch; kChaseLev pushes at bottom lock-free, spilling to the
  // inbox if the ring fills.
  void PushBatchOwner(const WorkItem* items, uint32_t count) OPTSCHED_EXCLUDES(lock_);
  // Batch enqueue from a thread that is NOT this queue's owner — the deal
  // path's direct landing site when the recipient's deal mailbox is full.
  // kLocked takes the queue lock once; kChaseLev lands the batch in the
  // inbox and counts it in ext_enq (NOT own_enq: own_enq is a single-writer
  // plain-store counter and a non-owner write would race the owner and leave
  // the published load inexact at quiescence — backend_matrix_test pins
  // this decomposition).
  void PushBatchExternal(const WorkItem* items, uint32_t count) OPTSCHED_EXCLUDES(lock_);
  // Owner-side removal of up to `max_items` queued items (the deal round's
  // take): items leave from the steal end — kLocked tail, kChaseLev bottom —
  // so the dealer sheds the work thieves would have targeted. Never touches
  // the running slot; safe between PopForRun/FinishCurrent pairs. Appends to
  // `out`, returns the count. On kChaseLev the removals are charged to the
  // owner-written `dealt` counters (tasks = own_enq + ext_enq − fin −
  // stolen − dealt stays exact at quiescence).
  uint32_t TakeOwnerBatch(uint32_t max_items, std::vector<WorkItem>& out)
      OPTSCHED_EXCLUDES(lock_);

  // --- Lock-free observation (selection phase) -------------------------------
  LoadPair ReadLoad() const;
  // Exact structural load — counts the actual container contents (+ running)
  // rather than the published value. The mc harness' published-depth
  // property asserts ReadLoad() == ExactLoad() at quiescence: any mutation
  // path that forgets to (re)publish diverges the two. kLocked takes the
  // queue lock; kChaseLev takes the inbox lock and walks the ring.
  LoadPair ExactLoad() OPTSCHED_EXCLUDES(lock_);
  // Torn-read retries the published-load seqlock has absorbed (staleness
  // pressure on this queue's snapshot; 0 on kChaseLev, which has no seqlock).
  uint64_t SeqlockReadRetries() const { return published_.read_retries(); }
  // Completed publishes of this queue's load. The steal path must bump this
  // at most once per held-lock critical section (publish batching); 0 on
  // kChaseLev — counter updates don't invalidate concurrent readers at all.
  uint64_t SeqlockWriteCount() const { return published_.write_count(); }

  // --- Cross-core steal support: kLocked -------------------------------------
  SpinLock& lock() OPTSCHED_RETURN_CAPABILITY(lock_) { return lock_; }
  // Must hold lock(): exact loads / queue access.
  LoadPair ExactLoadLocked() const OPTSCHED_REQUIRES(lock_);
  // Removes up to `max_items` items from the tail, newest first, appending
  // them to `out`. `eligible` is consulted once per candidate; returning true
  // COMMITS the removal (callers update their running victim/thief loads
  // inside the callback). Ineligible items are skipped, the scan continues
  // toward the head. The published load is written ONCE, after the last
  // removal — not per item — so concurrent seqlock readers see one
  // invalidation per steal action. Returns the number of items taken.
  uint32_t StealTailLocked(FunctionRef<bool(const WorkItem&)> eligible, uint32_t max_items,
                           std::vector<WorkItem>& out) OPTSCHED_REQUIRES(lock_);
  void PushLocked(WorkItem item) OPTSCHED_REQUIRES(lock_);
  // Appends `count` items and publishes the new load once.
  void PushBatchLocked(const WorkItem* items, uint32_t count) OPTSCHED_REQUIRES(lock_);

  // --- Cross-core steal support: kChaseLev -----------------------------------
  // Observe the victim's top-of-deque (no locks). The peek carries the top
  // index TakeSteal's CAS will validate, so the policy gate between peek and
  // take judges exactly the state the commit acts on.
  ChaseLevDeque::TopPeek PeekSteal() const;
  // Commits the peeked steal; on success the victim-side load counters drop
  // in the same checker-atomic step as the CAS. False = top moved since the
  // peek — a failed re-check, never retried here.
  bool TakeSteal(const ChaseLevDeque::TopPeek& peek);
  // Batch variant for the steal hot path: commits the CAS but DEFERS the
  // victim-side counter decrements — the caller accumulates the batch and
  // applies it once via CommitStealAccounting. Between the two calls the
  // victim's published load overcounts the taken items, which is the safe
  // direction for every consumer: steal gates judge an inflated victim (they
  // under-steal, never over-steal), and the quiescent properties
  // (published-depth, no-lost-items) evaluate only after the batch has
  // landed. Cuts the per-item RMWs on the shared counter lines to one pair
  // per batch.
  bool TakeStealDeferred(const ChaseLevDeque::TopPeek& peek);
  void CommitStealAccounting(uint32_t items, int64_t weight);
  // Published task count / inbox depth / running flag, relaxed. The steal
  // gate combines peek.size + running + inbox into its victim load so the
  // judged load is anchored to the same top index the CAS validates.
  int64_t TasksRelaxed() const {
    return own_enq_tasks_.load(std::memory_order_relaxed) +  // order: torn-read-tolerated
           ext_enq_tasks_.load(std::memory_order_relaxed) -  // order: torn-read-tolerated
           fin_tasks_.load(std::memory_order_relaxed) -  // order: torn-read-tolerated
           stolen_tasks_.load(std::memory_order_relaxed) -  // order: torn-read-tolerated
           dealt_tasks_.load(std::memory_order_relaxed);  // order: torn-read-tolerated
  }
  // order: torn-read-tolerated
  int64_t InboxCountRelaxed() const { return inbox_count_.load(std::memory_order_relaxed); }
  // order: torn-read-tolerated
  int64_t RunningRelaxed() const { return running_a_.load(std::memory_order_relaxed); }
  // Items this owner has fully executed (FinishCurrent count). A thief
  // brackets its steal with two reads: the delta excuses exactly the
  // decrements the owner's execution progress — the only non-CAS-guarded
  // path that lowers tasks — applied to the victim load between the gate
  // and the post-steal observation (see StealObservation).
  uint64_t FinishedCount() const {
    // order: torn-read-tolerated
    return static_cast<uint64_t>(fin_tasks_.load(std::memory_order_relaxed));
  }
  // Items the owner removed via TakeOwnerBatch (chase_lev; 0 on locked, where
  // the take holds the queue lock and so cannot overlap a steal critical
  // section). The second steal-safety excuse counter: dealing is the other
  // owner path that lowers tasks without going through the top CAS, so
  // thieves bracket it exactly like FinishedCount
  // (StealObservation::victim_dealt_delta).
  uint64_t DealtCount() const {
    // order: torn-read-tolerated
    return static_cast<uint64_t>(dealt_tasks_.load(std::memory_order_relaxed));
  }
  // Items removed from this queue by thieves (monotonic, both backends). The
  // deal policy's grace window is anchored to this: a dealer that observes
  // its own StolenCount() advance knows hungry peers exist and deals
  // proactively for the next `grace_rounds` checks instead of waiting to be
  // robbed again (argolib's deal_times).
  uint64_t StolenCount() const {
    if (backend_ == QueueBackend::kChaseLev) {
      // order: torn-read-tolerated
      return static_cast<uint64_t>(stolen_tasks_.load(std::memory_order_relaxed));
    }
    return locked_stolen_count_.load(std::memory_order_relaxed);  // order: torn-read-tolerated
  }

 private:
  std::optional<WorkItem> PopForRunLockedBackend() OPTSCHED_EXCLUDES(lock_);
  std::optional<WorkItem> PopForRunChaseLev() OPTSCHED_EXCLUDES(lock_);
  // Moves inbox items into the deque (owner only); stops early if the ring
  // fills — the leftovers stay counted and are retried next pop.
  void DrainInboxToDeque() OPTSCHED_EXCLUDES(lock_);
  void PublishLocked() OPTSCHED_REQUIRES(lock_);

  const QueueBackend backend_;

  // The owner's lock + deque and the thieves' read-mostly published load are
  // split onto separate cache lines: a thief polling published_ must not
  // contend with the owner pushing/popping ready_, and the lock word must not
  // share a line with either (lock handoff invalidates it constantly).
  // On kChaseLev the lock guards only the INBOX (external submissions); the
  // deque itself is lock-free.
  alignas(kCacheLineSize) mutable SpinLock lock_;
  std::deque<WorkItem> ready_ OPTSCHED_GUARDED_BY(lock_);
  bool running_ OPTSCHED_GUARDED_BY(lock_) = false;
  int64_t running_weight_ OPTSCHED_GUARDED_BY(lock_) = 0;
  int64_t queued_weight_ OPTSCHED_GUARDED_BY(lock_) = 0;
  // Written only under lock_ (PublishLocked), read lock-free by any thread:
  // the seqlock IS the synchronization, so no GUARDED_BY — the write-side
  // discipline is the REQUIRES on PublishLocked plus the lint rule
  // seqlock-write-context.
  alignas(kCacheLineSize) Seqlock<LoadPair> published_;
  // kLocked robbery counter behind StolenCount(): bumped under lock_ by
  // StealTailLocked, read lock-free by the owner's deal gate. Mutated only
  // inside the steal critical section, whose lock handoff is already the
  // checker's decision point.
  // mc: kDequeLoadRead, kDequeLoadWrite
  std::atomic<uint64_t> locked_stolen_count_{0};

  // --- kChaseLev state (idle on kLocked) -------------------------------------
  std::unique_ptr<ChaseLevDeque> deque_;  // null on kLocked
  std::deque<WorkItem> inbox_ OPTSCHED_GUARDED_BY(lock_);
  // Published load for the lock-free backend, DECOMPOSED BY WRITER so the
  // owner's per-item path is store-only:
  //   tasks  = own_enq_tasks + ext_enq_tasks − fin_tasks − stolen_tasks
  //            − dealt_tasks
  //   weight = the same formula over the *_weight counters.
  // Each counter is monotonic and has exactly one writer class — the owner
  // (plain load+store, no lock-prefixed RMW on its hot path), external
  // submitters (fetch_add in Push), thieves (one fetch_add pair per steal
  // batch) — so a reader may see a torn combination, the same staleness the
  // selection phase already tolerates from the seqlock (and the re-check
  // absorbs); the decomposition is exact at quiescence (published-depth).
  //
  // Owner-written line: single-writer plain stores, read by any thread.
  // mc: kDequeLoadRead, kDequeLoadWrite
  alignas(kCacheLineSize) std::atomic<int64_t> own_enq_tasks_{0};
  // mc: kDequeLoadRead, kDequeLoadWrite
  std::atomic<int64_t> own_enq_weight_{0};
  // fin_tasks_ doubles as FinishedCount(), the steal-safety excuse counter.
  // mc: kDequeLoadRead, kDequeLoadWrite
  std::atomic<int64_t> fin_tasks_{0};
  // mc: kDequeLoadRead, kDequeLoadWrite
  std::atomic<int64_t> fin_weight_{0};
  // mc: kDequeLoadRead, kDequeLoadWrite
  std::atomic<int64_t> running_a_{0};
  // mc: kDequeLoadRead, kDequeLoadWrite
  std::atomic<int64_t> running_weight_a_{0};
  // Items the OWNER removed to deal away (TakeOwnerBatch): the fifth term of
  // the decomposition. Owner-written plain stores, same single-writer
  // discipline as own_enq/fin.
  // mc: kDequeLoadRead, kDequeLoadWrite
  std::atomic<int64_t> dealt_tasks_{0};
  // mc: kDequeLoadRead, kDequeLoadWrite
  std::atomic<int64_t> dealt_weight_{0};
  // External-submitter line (Push: any thread).
  // mc: kDequeLoadRead, kDequeLoadWrite
  alignas(kCacheLineSize) std::atomic<int64_t> ext_enq_tasks_{0};
  // mc: kDequeLoadRead, kDequeLoadWrite
  std::atomic<int64_t> ext_enq_weight_{0};
  // mc: kDequeLoadRead, kDequeLoadWrite
  std::atomic<int64_t> inbox_count_{0};
  // Thief line (TakeSteal / CommitStealAccounting), kept off the owner's
  // lines so a steal commit does not invalidate the owner's finish path.
  // mc: kDequeLoadRead, kDequeLoadWrite
  alignas(kCacheLineSize) std::atomic<int64_t> stolen_tasks_{0};
  // mc: kDequeLoadRead, kDequeLoadWrite
  std::atomic<int64_t> stolen_weight_{0};
};

// Outcome counters for one worker's stealing activity. `successes` counts
// steal ACTIONS (critical sections that moved >= 1 item); `items_stolen`
// counts migrated items. Invariant: successes <= items_stolen <=
// successes * max_batch (mirrors BalanceStats successes/tasks_moved).
// On kChaseLev, `failed_recheck` additionally counts lost top-CAS races —
// the lock-free shape of the same stale-observation failure.
struct StealCounters {
  uint64_t attempts = 0;
  uint64_t successes = 0;
  uint64_t items_stolen = 0;
  uint64_t failed_recheck = 0;
  uint64_t failed_no_task = 0;
  uint64_t empty_filter = 0;
};

// Knobs of one TrySteal call. Defaults reproduce the paper's Listing 1
// exactly: re-checked, one item per successful steal (`steal_one`).
struct StealOptions {
  // Listing 1 line 12; false is the D2 ablation (steal on stale loads).
  bool recheck = true;
  // Cap on items migrated per successful steal action. The effective batch is
  // min(max_batch, policy.StealBatchHint(victim, thief)) with every item
  // still gated by ShouldMigrate — 1 preserves the original steal-one
  // behaviour, larger values enable steal-half batching.
  uint32_t max_batch = 1;
  // FAULT KNOB for the model-checking harness only (docs/model_checking.md):
  // ignore both the migration rule and the batch cap and strip the victim
  // bare. Deliberately violates steal safety — exists so the checker can
  // demonstrate it finds and minimizes the resulting counterexample. Never
  // set in production paths.
  bool break_batch_bound = false;
};

// Reusable scratch buffers for the selection + steal hot path. One per
// worker, passed into TrySteal: every vector reaches its high-water capacity
// during warmup and is refilled in place afterwards (resize-once, zero
// steady-state allocations).
struct StealScratch {
  std::vector<CpuId> candidates;
  LoadSnapshot locked_snapshot;
  std::vector<WorkItem> batch;
};

// Facts about a successful steal captured from the only vantage point where
// "the victim was not idled" (steal safety, §4.1) can be asserted: under
// both runqueue locks on kLocked, bracketing the top-CAS on kChaseLev. The
// model checker's harness consumes this; production callers pass nullptr.
struct StealObservation {
  uint64_t item_id = 0;  // first migrated item
  uint32_t items_moved = 0;
  // Seqlock publishes performed inside this critical section across both
  // queues. Publish batching requires <= 2 (one per queue) regardless of
  // items_moved; the mc harness asserts exactly that. Always 0 on kChaseLev.
  uint64_t seqlock_writes = 0;
  int64_t victim_tasks_after = 0;
  int64_t thief_tasks_after = 0;
  // kChaseLev only (0 on kLocked, where the victim lock freezes execution):
  // items the victim OWNER finished between the steal's first peek and the
  // post-steal load read. FinishCurrent and TakeOwnerBatch are the only
  // paths that lower the victim's task count without going through the top
  // CAS, so victim_tasks_after + victim_finished_delta + victim_dealt_delta
  // is what the count would have been had the victim not executed or dealt
  // concurrently — the steal-safety property asserts on that sum, keeping
  // the proof obligation uniform across backends.
  int64_t victim_finished_delta = 0;
  // Same bracket over DealtCount(): items the victim owner removed to deal
  // away while this steal was in flight. Without this excuse a dealer
  // shedding its own backlog makes an overlapping (legal) steal look like it
  // idled the victim.
  int64_t victim_dealt_delta = 0;
};

// Construction-time knobs for the machine's queues.
struct MachineOptions {
  QueueBackend backend = QueueBackend::kLocked;
  uint32_t deque_capacity = 1024;  // per-queue chase_lev ring bound
  bool broken_steal_order = false;  // mc fault knob (chase_lev_deque.h)
};

class ConcurrentMachine {
 public:
  explicit ConcurrentMachine(uint32_t num_queues, const MachineOptions& options = {});

  uint32_t num_queues() const { return static_cast<uint32_t>(queues_.size()); }
  ConcurrentRunQueue& queue(uint32_t index) { return *queues_[index]; }
  QueueBackend backend() const { return options_.backend; }

  // Lock-free load snapshot across all queues (selection-phase view).
  LoadSnapshot Snapshot() const;
  // Allocation-free variant: resizes `out` once, refills it in place.
  void SnapshotInto(LoadSnapshot& out) const;

  // Snapshot taken while holding every queue lock (the D3 ablation: "locked
  // selection" — exact but stalls all owners; kLocked backend only). The
  // loop-carried acquisition of N locks through the queue vector is outside
  // what the thread-safety analysis can follow, hence the explicit opt-out;
  // the index-order ranking is the same machine-wide one DualLockGuard
  // documents.
  LoadSnapshot LockedSnapshot();
  void LockedSnapshotInto(LoadSnapshot& out) OPTSCHED_NO_THREAD_SAFETY_ANALYSIS;

  // Full three-step attempt by `thief`: filter+choice on `snapshot`, then
  // the backend's stealing phase — two locks + re-check + batched migration
  // on kLocked; per-item peek -> gate -> top-CAS on kChaseLev, with a lost
  // CAS counted as failed_recheck. On success the stolen items land on the
  // thief's own queue (the thief is that queue's owner). Updates `counters`.
  // When the filter was non-empty, `victim_out` (if given) receives the
  // chosen victim — trace events want to attribute the outcome to the pair,
  // not just the thief. `observation_out` (if given) is filled on success
  // (see StealObservation). `scratch` (if given) supplies the reusable
  // buffers that make the attempt allocation-free; null falls back to
  // call-local buffers (tests, harness).
  bool TrySteal(const BalancePolicy& policy, CpuId thief, const LoadSnapshot& snapshot,
                Rng& rng, const StealOptions& options, StealCounters& counters,
                const Topology* topology = nullptr, CpuId* victim_out = nullptr,
                StealObservation* observation_out = nullptr,
                StealScratch* scratch = nullptr);

  // Sum of SeqlockReadRetries over all queues.
  uint64_t TotalSeqlockReadRetries() const;
  // Sum of SeqlockWriteCount over all queues.
  uint64_t TotalSeqlockWrites() const;

 private:
  bool TryStealLocked(const BalancePolicy& policy, CpuId thief, const LoadSnapshot& snapshot,
                      CpuId victim, const StealOptions& options, StealCounters& counters,
                      const Topology* topology, StealObservation* observation_out,
                      StealScratch& s);
  bool TryStealChaseLev(const BalancePolicy& policy, CpuId thief,
                        const LoadSnapshot& snapshot, CpuId victim,
                        const StealOptions& options, StealCounters& counters,
                        const Topology* topology, StealObservation* observation_out,
                        StealScratch& s);

  const MachineOptions options_;
  std::vector<std::unique_ptr<ConcurrentRunQueue>> queues_;
};

}  // namespace optsched::runtime

#endif  // OPTSCHED_SRC_RUNTIME_CONCURRENT_MACHINE_H_
