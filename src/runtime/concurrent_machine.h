// Concurrent (real-thread) implementation of the paper's scheduler model.
//
// One ConcurrentRunQueue per worker: a spinlock-protected deque plus a
// seqlock-published load, so that
//   * the SELECTION phase reads loads of all cores lock-free (possibly
//     stale — the optimistic part),
//   * the STEALING phase locks exactly the thief's and the victim's queues
//     (queue-index order), re-checks the policy's filter against the now-exact
//     loads of the pair, and migrates one item.
// Steals that fail the re-check are counted, not retried — they are the
// paper's legitimate failures.

#ifndef OPTSCHED_SRC_RUNTIME_CONCURRENT_MACHINE_H_
#define OPTSCHED_SRC_RUNTIME_CONCURRENT_MACHINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/core/policy.h"
#include "src/runtime/seqlock.h"
#include "src/runtime/spinlock.h"
#include "src/sched/machine_state.h"

namespace optsched::runtime {

// A unit of work: `work_units` spins of the calibrated work loop.
struct WorkItem {
  uint64_t id = 0;
  uint64_t work_units = 1;
  uint32_t weight = 1024;
};

struct LoadPair {
  int64_t task_count = 0;
  int64_t weighted_load = 0;
};

class ConcurrentRunQueue {
 public:
  ConcurrentRunQueue() = default;

  // --- Owner operations -----------------------------------------------------

  // Pops the head for execution; the popped item counts as the core's
  // "current" (still part of the published load) until FinishCurrent().
  std::optional<WorkItem> PopForRun();
  // Declares the current item finished; load drops accordingly.
  void FinishCurrent();
  // Enqueues a new item (tail).
  void Push(WorkItem item);

  // --- Lock-free observation (selection phase) -------------------------------
  LoadPair ReadLoad() const { return published_.Read(); }
  // Torn-read retries the published-load seqlock has absorbed (staleness
  // pressure on this queue's snapshot; see Seqlock::read_retries).
  uint64_t SeqlockReadRetries() const { return published_.read_retries(); }

  // --- Cross-core steal support ----------------------------------------------
  SpinLock& lock() { return lock_; }
  // Must hold lock(): exact loads / queue access.
  LoadPair ExactLoadLocked() const;
  std::optional<WorkItem> StealTailLocked(
      const std::function<bool(const WorkItem&)>& eligible);
  void PushLocked(WorkItem item);

 private:
  void PublishLocked();

  mutable SpinLock lock_;
  std::deque<WorkItem> ready_;
  bool running_ = false;
  int64_t running_weight_ = 0;
  int64_t queued_weight_ = 0;
  Seqlock<LoadPair> published_;
};

// Outcome counters for one worker's stealing activity.
struct StealCounters {
  uint64_t attempts = 0;
  uint64_t successes = 0;
  uint64_t failed_recheck = 0;
  uint64_t failed_no_task = 0;
  uint64_t empty_filter = 0;
};

// Facts about a successful steal captured while both runqueue locks were
// still held — the only vantage point from which "the victim was not idled"
// (steal safety, §4.1) can be asserted without racing later mutations. The
// model checker's harness consumes this; production callers pass nullptr.
struct StealObservation {
  uint64_t item_id = 0;
  int64_t victim_tasks_after = 0;
  int64_t thief_tasks_after = 0;
};

class ConcurrentMachine {
 public:
  explicit ConcurrentMachine(uint32_t num_queues);

  uint32_t num_queues() const { return static_cast<uint32_t>(queues_.size()); }
  ConcurrentRunQueue& queue(uint32_t index) { return *queues_[index]; }

  // Lock-free load snapshot across all queues (selection-phase view).
  LoadSnapshot Snapshot() const;

  // Snapshot taken while holding every queue lock (the D3 ablation: "locked
  // selection" — exact but stalls all owners).
  LoadSnapshot LockedSnapshot();

  // Full three-step attempt by `thief`: filter+choice on `snapshot`, then the
  // two-lock steal phase with re-check (unless `recheck` is false — the D2
  // ablation). On success the stolen item is pushed onto the thief's queue.
  // Updates `counters`. When the filter was non-empty, `victim_out` (if
  // given) receives the chosen victim — trace events want to attribute the
  // outcome to the pair, not just the thief.
  // `observation_out` (if given) is filled on success with the post-steal
  // loads of the locked pair and the migrated item id, read under the locks.
  bool TrySteal(const BalancePolicy& policy, CpuId thief, const LoadSnapshot& snapshot,
                Rng& rng, bool recheck, StealCounters& counters,
                const Topology* topology = nullptr, CpuId* victim_out = nullptr,
                StealObservation* observation_out = nullptr);

  // Sum of SeqlockReadRetries over all queues.
  uint64_t TotalSeqlockReadRetries() const;

 private:
  std::vector<std::unique_ptr<ConcurrentRunQueue>> queues_;
};

}  // namespace optsched::runtime

#endif  // OPTSCHED_SRC_RUNTIME_CONCURRENT_MACHINE_H_
