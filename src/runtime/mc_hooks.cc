#include "src/runtime/mc_hooks.h"

namespace optsched::runtime::mc_hooks {

#if OPTSCHED_MC_HOOKS
namespace internal {
constinit thread_local Interposer* tls_interposer = nullptr;
}  // namespace internal
#endif

const char* SyncOpName(SyncOp op) {
  switch (op) {
    case SyncOp::kLockAcquire: return "lock-acquire";
    case SyncOp::kLockTry: return "lock-try";
    case SyncOp::kLockRelease: return "lock-release";
    case SyncOp::kLockWait: return "lock-wait";
    case SyncOp::kSeqWriteBegin: return "seq-write-begin";
    case SyncOp::kSeqWriteTorn: return "seq-write-torn";
    case SyncOp::kSeqWriteEnd: return "seq-write-end";
    case SyncOp::kSeqRead: return "seq-read";
    case SyncOp::kSeqReadRetry: return "seq-read-retry";
    case SyncOp::kEpochLoad: return "epoch-load";
    case SyncOp::kEpochBump: return "epoch-bump";
    case SyncOp::kMailboxPush: return "mailbox-push";
    case SyncOp::kMailboxDrain: return "mailbox-drain";
    case SyncOp::kMailboxDepth: return "mailbox-depth";
    case SyncOp::kDequeTopLoad: return "deque-top-load";
    case SyncOp::kDequeTopCas: return "deque-top-cas";
    case SyncOp::kDequeBottomLoad: return "deque-bottom-load";
    case SyncOp::kDequeBottomStore: return "deque-bottom-store";
    case SyncOp::kDequeLoadRead: return "deque-load-read";
    case SyncOp::kDequeLoadWrite: return "deque-load-write";
    case SyncOp::kTaskJoinLoad: return "task-join-load";
    case SyncOp::kTaskJoinDec: return "task-join-dec";
    case SyncOp::kYield: return "yield";
    case SyncOp::kThreadStart: return "thread-start";
  }
  return "?";
}

bool SyncOpWrites(SyncOp op) {
  switch (op) {
    case SyncOp::kLockAcquire:
    case SyncOp::kLockTry:
    case SyncOp::kLockRelease:
    case SyncOp::kLockWait:  // resumes by acquiring the lock
    case SyncOp::kSeqWriteBegin:
    case SyncOp::kSeqWriteTorn:
    case SyncOp::kSeqWriteEnd:
    case SyncOp::kEpochBump:
    case SyncOp::kMailboxPush:
    case SyncOp::kMailboxDrain:
    case SyncOp::kDequeTopCas:
    case SyncOp::kDequeBottomStore:
    case SyncOp::kDequeLoadWrite:
    case SyncOp::kTaskJoinDec:
      return true;
    case SyncOp::kSeqRead:
    case SyncOp::kSeqReadRetry:
    case SyncOp::kEpochLoad:
    case SyncOp::kMailboxDepth:
    case SyncOp::kDequeTopLoad:
    case SyncOp::kDequeBottomLoad:
    case SyncOp::kDequeLoadRead:
    case SyncOp::kTaskJoinLoad:
    case SyncOp::kYield:
    case SyncOp::kThreadStart:
      return false;
  }
  return true;
}

}  // namespace optsched::runtime::mc_hooks
