// The executor's view of an ingress front end (docs/serving.md).
//
// Work used to enter the executor only through Submit/SubmitBatch from the
// benchmark thread. A serving front end instead admits items into per-worker
// bounded mailboxes (src/ingress) and the OWNER moves them into its own
// runqueue at round boundaries — producer threads never touch a runqueue
// lock, so ingress contention cannot serialize the steal protocol.
//
// This interface is the whole seam between the two layers, kept in
// src/runtime so the dependency points upward (ingress implements it;
// the runtime knows nothing about shards, sessions or admission policy):
//
//   * Drain(worker, out, max)  — owner-side: move up to `max` items admitted
//     for `worker` into `out`. Called only by worker `worker`'s thread (or by
//     the harness standing in for it) — MPSC, the owner is the single
//     consumer.
//   * PendingFor(worker)       — lock-free: admitted-but-undrained item count.
//     Consulted by the worker to decide whether a drain is worthwhile and by
//     the supervisor's watchdog so mailbox-resident work counts as PENDING,
//     not lost (an overloaded ingress must classify as transient overload,
//     never as a work-conservation violation).

#ifndef OPTSCHED_SRC_RUNTIME_INGRESS_SOURCE_H_
#define OPTSCHED_SRC_RUNTIME_INGRESS_SOURCE_H_

#include <cstdint>
#include <vector>

namespace optsched::runtime {

struct WorkItem;

class IngressSource {
 public:
  virtual ~IngressSource() = default;

  // Moves up to `max_items` items admitted for `worker` into `out`
  // (appending). Returns the number moved. Single consumer per worker.
  virtual uint32_t Drain(uint32_t worker, std::vector<WorkItem>& out,
                         uint32_t max_items) = 0;

  // Admitted-but-undrained items for `worker`; lock-free, may be stale by a
  // concurrent push or drain (same optimism as the load snapshot).
  virtual int64_t PendingFor(uint32_t worker) const = 0;
};

// Transport for proactive work-dealing (docs/runtime.md#work-dealing): an
// overloaded worker pushes surplus items toward an idle peer; the PEER's
// owner thread drains them into its own runqueue at round boundaries. Same
// seam direction as IngressSource — src/ingress implements it over bounded
// mailboxes with dealt-traffic accounting kept distinct from producer
// admission — but the traffic is peer-to-peer executor-internal, so dealt
// items never touch the executor's remaining/submitted counts (they were
// counted when first submitted and stay counted until executed).
class DealSink {
 public:
  virtual ~DealSink() = default;

  // Dealer-side: offer `count` items for `worker`. Accepts a PREFIX of the
  // batch (bounded transport may refuse the tail) and returns its length;
  // the dealer still owns items [accepted, count). Any thread may call this
  // for any worker.
  virtual uint32_t PushDealt(uint32_t worker, const WorkItem* items, uint32_t count) = 0;

  // Recipient-side: move up to `max_items` dealt items for `worker` into
  // `out` (appending). Single consumer per worker — only worker `worker`'s
  // thread drains its own dealt backlog.
  virtual uint32_t DrainDealt(uint32_t worker, std::vector<WorkItem>& out,
                              uint32_t max_items) = 0;

  // Dealt-but-undrained items for `worker`; lock-free, possibly stale. The
  // supervisor's watchdog adds this to a worker's pending so mid-deal
  // backlog classifies as transient, never as a conservation violation.
  virtual int64_t DealtPendingFor(uint32_t worker) const = 0;
};

}  // namespace optsched::runtime

#endif  // OPTSCHED_SRC_RUNTIME_INGRESS_SOURCE_H_
