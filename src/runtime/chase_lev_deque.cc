#include "src/runtime/chase_lev_deque.h"

#include <cstring>

#include "src/base/check.h"
#include "src/base/thread_annotations.h"
#include "src/runtime/mc_hooks.h"

namespace optsched::runtime {

namespace {
uint64_t RoundUpPow2(uint64_t v) {
  uint64_t p = 2;
  while (p < v) {
    p <<= 1;
  }
  return p;
}
}  // namespace

ChaseLevDeque::ChaseLevDeque(uint32_t min_capacity, bool broken_steal_order)
    : mask_(RoundUpPow2(min_capacity < 2 ? 2 : min_capacity) - 1),
      broken_steal_order_(broken_steal_order),
      slots_(std::make_unique<std::atomic<uint64_t>[]>((mask_ + 1) * kWordsPerItem)) {}

OPTSCHED_HOT_PATH void ChaseLevDeque::StoreSlot(uint64_t index, const WorkItem& item) {
  uint64_t staging[kWordsPerItem];
  std::memcpy(staging, &item, sizeof(WorkItem));
  std::atomic<uint64_t>* slot = &slots_[(index & mask_) * kWordsPerItem];
  for (std::size_t w = 0; w < kWordsPerItem; ++w) {
    slot[w].store(staging[w], std::memory_order_relaxed);  // order: slot-word-protocol
  }
}

OPTSCHED_HOT_PATH WorkItem ChaseLevDeque::LoadSlot(uint64_t index) const {
  uint64_t staging[kWordsPerItem];
  const std::atomic<uint64_t>* slot = &slots_[(index & mask_) * kWordsPerItem];
  for (std::size_t w = 0; w < kWordsPerItem; ++w) {
    staging[w] = slot[w].load(std::memory_order_relaxed);  // order: slot-word-protocol
  }
  WorkItem item;
  std::memcpy(&item, staging, sizeof(WorkItem));
  return item;
}

OPTSCHED_HOT_PATH bool ChaseLevDeque::PushBottom(const WorkItem& item) {
  // bottom is owner-private on the read side (we are its only writer), so
  // the load is not a scheduling decision point; top is contended — the
  // acquire pairs with thieves' top CASes and proves the slot we are about
  // to overwrite was vacated before we reuse it.
  const uint64_t b = bottom_.load(std::memory_order_relaxed);  // order: owner-bottom-read
  mc_hooks::SyncPoint(mc_hooks::SyncOp::kDequeTopLoad, this);
  const uint64_t t = top_.load(std::memory_order_acquire);
  if (b - t > mask_) {
    return false;  // full — caller spills to its inbox
  }
  StoreSlot(b, item);
  mc_hooks::SyncPoint(mc_hooks::SyncOp::kDequeBottomStore, this);
  // Release: publishes the slot words to any thief whose acquire load of
  // bottom observes the new index.
  bottom_.store(b + 1, std::memory_order_release);
  return true;
}

OPTSCHED_HOT_PATH std::optional<WorkItem> ChaseLevDeque::PopBottom() {
  // order: owner-bottom-read
  const int64_t b = static_cast<int64_t>(bottom_.load(std::memory_order_relaxed)) - 1;
  mc_hooks::SyncPoint(mc_hooks::SyncOp::kDequeBottomStore, this);
  bottom_.store(static_cast<uint64_t>(b), std::memory_order_relaxed);  // order: pop-fence-pairing
  // The decrement must be globally visible before we read top: without this
  // fence a concurrent steal and this pop can both see "size >= 2" and take
  // the same item. Pairs with the fence in PeekTop.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  mc_hooks::SyncPoint(mc_hooks::SyncOp::kDequeTopLoad, this);
  // order: pop-fence-pairing
  const int64_t t = static_cast<int64_t>(top_.load(std::memory_order_relaxed));
  if (t > b) {
    // Already empty: restore bottom, nothing to return.
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kDequeBottomStore, this);
    // order: pop-fence-pairing
    bottom_.store(static_cast<uint64_t>(b + 1), std::memory_order_relaxed);
    return std::nullopt;
  }
  WorkItem item = LoadSlot(static_cast<uint64_t>(b));
  if (t == b) {
    // Last item: race the thieves on top. Winning the CAS claims it; losing
    // means a thief's TakeTop got there first and the deque is empty.
    uint64_t expected = static_cast<uint64_t>(t);
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kDequeTopCas, this);
    const bool won = top_.compare_exchange_strong(  // order: cas-failure-retry
        expected, expected + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kDequeBottomStore, this);
    // order: pop-fence-pairing
    bottom_.store(static_cast<uint64_t>(b + 1), std::memory_order_relaxed);
    if (!won) {
      return std::nullopt;
    }
    return item;
  }
  return item;  // bottom already claims it; size was >= 2, no thief can reach b
}

OPTSCHED_HOT_PATH ChaseLevDeque::TopPeek ChaseLevDeque::PeekTop() const {
  TopPeek peek;
  uint64_t t;
  uint64_t b;
  if (!broken_steal_order_) {
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kDequeTopLoad, this);
    t = top_.load(std::memory_order_acquire);
    // Pairs with PopBottom's fence: if the owner's decrement of bottom is
    // not yet visible here, the owner's subsequent top load will see any
    // top value this thief's TakeTop could commit.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kDequeBottomLoad, this);
    b = bottom_.load(std::memory_order_acquire);
  } else {
    // FAULT KNOB (mc harness only): bottom before top, no fence. A stale
    // bottom paired with a fresh top inflates size and lets TakeTop commit
    // a slot the owner already executed — the model checker catches this as
    // a no-lost-items violation (tests/golden/mc_broken_chaselev_minimized).
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kDequeBottomLoad, this);
    b = bottom_.load(std::memory_order_acquire);
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kDequeTopLoad, this);
    t = top_.load(std::memory_order_acquire);
  }
  peek.top = t;
  peek.size = static_cast<int64_t>(b) - static_cast<int64_t>(t);
  if (peek.size <= 0) {
    return peek;
  }
  // May race an owner overwrite after wrap-around; the torn value is
  // discarded because TakeTop's CAS then fails (top must have moved by a
  // full capacity for the slot to be reused).
  peek.item = LoadSlot(t);
  peek.found = true;
  return peek;
}

OPTSCHED_HOT_PATH bool ChaseLevDeque::TakeTop(const TopPeek& peek) {
  OPTSCHED_DCHECK(peek.found);
  uint64_t expected = peek.top;
  mc_hooks::SyncPoint(mc_hooks::SyncOp::kDequeTopCas, this);
  // order: cas-failure-retry
  return top_.compare_exchange_strong(expected, peek.top + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed);
}

int64_t ChaseLevDeque::SizeRelaxed() const {
  // order: quiescent-stat
  const int64_t b = static_cast<int64_t>(bottom_.load(std::memory_order_relaxed));
  // order: quiescent-stat
  const int64_t t = static_cast<int64_t>(top_.load(std::memory_order_relaxed));
  return b > t ? b - t : 0;
}

int64_t ChaseLevDeque::SumWeightRelaxed() const {
  // order: quiescent-stat
  const int64_t b = static_cast<int64_t>(bottom_.load(std::memory_order_relaxed));
  // order: quiescent-stat
  const int64_t t = static_cast<int64_t>(top_.load(std::memory_order_relaxed));
  int64_t sum = 0;
  for (int64_t i = t; i < b; ++i) {
    sum += LoadSlot(static_cast<uint64_t>(i)).weight;
  }
  return sum;
}

}  // namespace optsched::runtime
