// Minimal test-and-test-and-set spinlock.
//
// The runtime shards the machine into per-core runqueues each protected by
// one of these, reproducing the paper's locking discipline: the selection
// phase takes NO locks (it reads seqlock-published loads), and the stealing
// phase takes exactly two — the thief's and the victim's runqueue locks, in
// queue-index order to avoid deadlock (§3.1, Figure 1).
//
// Every synchronization point is announced through the mc_hooks seam
// (docs/model_checking.md): a no-op null check in production, a scheduling
// decision point when the deterministic model checker (src/mc) is driving.
// Contention is a BlockUntil point — under the checker a waiter is marked
// disabled until the holder releases, instead of spinning.

#ifndef OPTSCHED_SRC_RUNTIME_SPINLOCK_H_
#define OPTSCHED_SRC_RUNTIME_SPINLOCK_H_

#include <atomic>

#include "src/runtime/mc_hooks.h"

namespace optsched::runtime {

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kLockAcquire, this);
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      if (mc_hooks::BlockUntil(mc_hooks::SyncOp::kLockWait, this, &SpinLock::IsFree, this)) {
        continue;  // checker resumed us with the lock observed free; retry
      }
      // Test-and-test-and-set: spin on the cache line read-only until free.
      while (locked_.load(std::memory_order_relaxed)) {
        CpuRelax();
      }
    }
  }

  bool try_lock() {
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kLockTry, this);
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() {
    // Announce before the store. The checker records the release but does
    // not suspend here: unlock() runs from noexcept destructors
    // (~DualLockGuard, ~lock_guard), where a suspended fiber could not be
    // abort-unwound. The sleep-set side compensates by never letting a
    // pending lock acquisition stay asleep (mc::CanStaySleeping).
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kLockRelease, this);
    locked_.store(false, std::memory_order_release);
  }

 private:
  static bool IsFree(const void* self) {
    return !static_cast<const SpinLock*>(self)->locked_.load(std::memory_order_relaxed);
  }

  std::atomic<bool> locked_{false};
};

// Scoped two-lock acquisition in a caller-chosen total order (deadlock-free
// when every site ranks the same pair the same way). The runtime ranks queue
// locks by QUEUE INDEX, not by address: per-queue heap allocations make
// address order vary from run to run, and the model checker (src/mc) needs
// the lock-acquisition sequence of a replayed schedule to be identical
// across executions and processes.
class DualLockGuard {
 public:
  DualLockGuard(SpinLock& first, SpinLock& second) : first_(first), second_(second) {
    first_.lock();
    second_.lock();
  }
  ~DualLockGuard() {
    second_.unlock();
    first_.unlock();
  }
  DualLockGuard(const DualLockGuard&) = delete;
  DualLockGuard& operator=(const DualLockGuard&) = delete;

 private:
  SpinLock& first_;
  SpinLock& second_;
};

}  // namespace optsched::runtime

#endif  // OPTSCHED_SRC_RUNTIME_SPINLOCK_H_
