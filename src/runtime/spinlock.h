// Minimal test-and-test-and-set spinlock, annotated as a Clang thread-safety
// capability.
//
// The runtime shards the machine into per-core runqueues each protected by
// one of these, reproducing the paper's locking discipline: the selection
// phase takes NO locks (it reads seqlock-published loads), and the stealing
// phase takes exactly two — the thief's and the victim's runqueue locks, in
// queue-index order to avoid deadlock (§3.1, Figure 1). With the capability
// annotations (src/base/thread_annotations.h) that discipline is checked at
// compile time under clang: touching a GUARDED_BY field or calling a
// REQUIRES method without the lock fails a -Werror=thread-safety build.
//
// Every synchronization point is announced through the mc_hooks seam
// (docs/model_checking.md): a no-op null check in production, a scheduling
// decision point when the deterministic model checker (src/mc) is driving.
// Contention is a BlockUntil point — under the checker a waiter is marked
// disabled until the holder releases, instead of spinning.

#ifndef OPTSCHED_SRC_RUNTIME_SPINLOCK_H_
#define OPTSCHED_SRC_RUNTIME_SPINLOCK_H_

#include <atomic>

#include "src/base/check.h"
#include "src/base/mutex.h"
#include "src/base/thread_annotations.h"
#include "src/runtime/mc_hooks.h"

namespace optsched::runtime {

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class OPTSCHED_CAPABILITY("mutex") SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() OPTSCHED_ACQUIRE() {
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kLockAcquire, this);
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      if (mc_hooks::BlockUntil(mc_hooks::SyncOp::kLockWait, this, &SpinLock::IsFree, this)) {
        continue;  // checker resumed us with the lock observed free; retry
      }
      // Test-and-test-and-set: spin on the cache line read-only until free.
      while (locked_.load(std::memory_order_relaxed)) {  // order: ttas-spin-read
        CpuRelax();
      }
    }
  }

  bool try_lock() OPTSCHED_TRY_ACQUIRE(true) {
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kLockTry, this);
    return !locked_.load(std::memory_order_relaxed) &&  // order: ttas-spin-read
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() OPTSCHED_RELEASE() {
    // Announce before the store. The checker records the release but does
    // not suspend here: unlock() runs from noexcept destructors
    // (~DualLockGuard, ~LockGuard), where a suspended fiber could not be
    // abort-unwound. The sleep-set side compensates by never letting a
    // pending lock acquisition stay asleep (mc::CanStaySleeping).
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kLockRelease, this);
    locked_.store(false, std::memory_order_release);
  }

  // Re-anchors the thread-safety analysis where the acquisition order is
  // decided at runtime (e.g. TrySteal's queue-index ranking): tells clang
  // this capability is held WITHOUT acquiring it. The runtime check is
  // deliberately weak — "locked by someone", not "locked by me" (a spinlock
  // has no owner identity) — so it is a debug-build tripwire for "forgot to
  // lock entirely", not a proof. The static analysis is the proof.
  void AssertHeld() const OPTSCHED_ASSERT_CAPABILITY(this) {
    OPTSCHED_DCHECK(locked_.load(std::memory_order_relaxed));  // order: debug-assert-read
  }

 private:
  static bool IsFree(const void* self) {
    // order: debug-assert-read
    return !static_cast<const SpinLock*>(self)->locked_.load(std::memory_order_relaxed);
  }

  // mc: kLockAcquire, kLockTry, kLockRelease, kLockWait
  std::atomic<bool> locked_{false};
};

// Scoped two-lock acquisition in a caller-chosen total order (deadlock-free
// when every site ranks the same pair the same way). The runtime ranks queue
// locks by QUEUE INDEX, not by address: per-queue heap allocations make
// address order vary from run to run, and the model checker (src/mc) needs
// the lock-acquisition sequence of a replayed schedule to be identical
// across executions and processes. tools/lint/optsched_lint.py (rule
// dual-lock-rank) rejects construction sites ranked by address.
//
// Constructor contract: `first` and `second` MUST be distinct locks, with
// `first` ranked strictly before `second` in the machine-wide order (queue
// index for runqueue locks). Passing the same lock twice would self-deadlock
// on the second acquisition — checked and rejected up front (always on, not
// just in debug builds: the check is one pointer compare ahead of two atomic
// RMWs, and a violation deadlocks the process).
class OPTSCHED_SCOPED_CAPABILITY DualLockGuard {
 public:
  DualLockGuard(SpinLock& first, SpinLock& second) OPTSCHED_ACQUIRE(first, second)
      : first_(first), second_(second) {
    OPTSCHED_CHECK_MSG(&first != &second,
                       "DualLockGuard needs two distinct locks (self-deadlock)");
    first_.lock();
    second_.lock();
  }
  ~DualLockGuard() OPTSCHED_RELEASE() {
    second_.unlock();
    first_.unlock();
  }
  DualLockGuard(const DualLockGuard&) = delete;
  DualLockGuard& operator=(const DualLockGuard&) = delete;

 private:
  SpinLock& first_;
  SpinLock& second_;
};

}  // namespace optsched::runtime

#endif  // OPTSCHED_SRC_RUNTIME_SPINLOCK_H_
