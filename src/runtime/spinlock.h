// Minimal test-and-test-and-set spinlock.
//
// The runtime shards the machine into per-core runqueues each protected by
// one of these, reproducing the paper's locking discipline: the selection
// phase takes NO locks (it reads seqlock-published loads), and the stealing
// phase takes exactly two — the thief's and the victim's runqueue locks, in
// address order to avoid deadlock (§3.1, Figure 1).

#ifndef OPTSCHED_SRC_RUNTIME_SPINLOCK_H_
#define OPTSCHED_SRC_RUNTIME_SPINLOCK_H_

#include <atomic>

namespace optsched::runtime {

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      // Test-and-test-and-set: spin on the cache line read-only until free.
      while (locked_.load(std::memory_order_relaxed)) {
        CpuRelax();
      }
    }
  }

  bool try_lock() {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

// Scoped two-lock acquisition in address order (deadlock-free for any pair).
class DualLockGuard {
 public:
  DualLockGuard(SpinLock& a, SpinLock& b) : first_(&a < &b ? a : b), second_(&a < &b ? b : a) {
    first_.lock();
    second_.lock();
  }
  ~DualLockGuard() {
    second_.unlock();
    first_.unlock();
  }
  DualLockGuard(const DualLockGuard&) = delete;
  DualLockGuard& operator=(const DualLockGuard&) = delete;

 private:
  SpinLock& first_;
  SpinLock& second_;
};

}  // namespace optsched::runtime

#endif  // OPTSCHED_SRC_RUNTIME_SPINLOCK_H_
