#include "src/runtime/executor.h"

#include <chrono>
#include <thread>

#include "src/base/check.h"
#include "src/base/str.h"

namespace optsched::runtime {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// Opaque spin so the optimizer cannot delete the "work".
void DoWork(uint64_t units, uint64_t spin_per_unit) {
  volatile uint64_t sink = 0;
  for (uint64_t u = 0; u < units; ++u) {
    for (uint64_t i = 0; i < spin_per_unit; ++i) {
      sink = sink + i;
    }
  }
}

}  // namespace

uint64_t ExecutorReport::total_successes() const {
  uint64_t total = 0;
  for (const WorkerStats& w : workers) {
    total += w.steals.successes;
  }
  return total;
}

uint64_t ExecutorReport::total_failed_recheck() const {
  uint64_t total = 0;
  for (const WorkerStats& w : workers) {
    total += w.steals.failed_recheck;
  }
  return total;
}

uint64_t ExecutorReport::total_attempts() const {
  uint64_t total = 0;
  for (const WorkerStats& w : workers) {
    total += w.steals.attempts;
  }
  return total;
}

double ExecutorReport::throughput_items_per_ms() const {
  return wall_time_ns == 0
             ? 0.0
             : static_cast<double>(total_items) / (static_cast<double>(wall_time_ns) / 1e6);
}

std::string ExecutorReport::ToString() const {
  return StrFormat(
      "executor{items=%llu wall=%.2fms throughput=%.1f items/ms steals=%llu "
      "failed_recheck=%llu attempts=%llu}",
      static_cast<unsigned long long>(total_items), static_cast<double>(wall_time_ns) / 1e6,
      throughput_items_per_ms(), static_cast<unsigned long long>(total_successes()),
      static_cast<unsigned long long>(total_failed_recheck()),
      static_cast<unsigned long long>(total_attempts()));
}

Executor::Executor(std::shared_ptr<const BalancePolicy> policy, const ExecutorConfig& config,
                   const Topology* topology)
    : policy_(std::move(policy)),
      config_(config),
      topology_(topology),
      machine_(config.num_workers) {
  OPTSCHED_CHECK(policy_ != nullptr);
  OPTSCHED_CHECK(config_.num_workers > 0);
}

void Executor::Seed(uint32_t queue_index, const std::vector<WorkItem>& items) {
  OPTSCHED_CHECK(queue_index < machine_.num_queues());
  for (const WorkItem& item : items) {
    machine_.queue(queue_index).Push(item);
  }
  seeded_items_ += items.size();
  remaining_items_.fetch_add(items.size(), std::memory_order_relaxed);
}

void Executor::Submit(uint32_t queue_index, const WorkItem& item) {
  OPTSCHED_CHECK(queue_index < machine_.num_queues());
  machine_.queue(queue_index).Push(item);
  submitted_items_.fetch_add(1, std::memory_order_relaxed);
  remaining_items_.fetch_add(1, std::memory_order_release);
}

void Executor::WorkerMain(uint32_t worker_index, WorkerStats& stats) {
  Rng rng(config_.seed * 1000003 + worker_index);
  ConcurrentRunQueue& own = machine_.queue(worker_index);
  uint32_t fruitless = 0;
  const auto keep_running = [&] {
    if (deadline_mode_) {
      return !stop_.load(std::memory_order_acquire);
    }
    return remaining_items_.load(std::memory_order_acquire) > 0;
  };
  while (keep_running()) {
    // Run everything queued locally first.
    if (std::optional<WorkItem> item = own.PopForRun(); item.has_value()) {
      DoWork(item->work_units, config_.spin_per_unit);
      own.FinishCurrent();
      ++stats.items_executed;
      stats.units_executed += item->work_units;
      remaining_items_.fetch_sub(1, std::memory_order_acq_rel);
      fruitless = 0;
      continue;
    }
    // Queue empty: run the three-step balancing protocol.
    const uint64_t select_start = NowNs();
    const LoadSnapshot snapshot =
        config_.locked_selection ? machine_.LockedSnapshot() : machine_.Snapshot();
    stats.selection_latency_ns.Add(NowNs() - select_start);
    const uint64_t steal_start = NowNs();
    const bool stole = machine_.TrySteal(*policy_, worker_index, snapshot, rng,
                                         config_.recheck_filter, stats.steals, topology_);
    if (stole) {
      stats.steal_latency_ns.Add(NowNs() - steal_start);
      fruitless = 0;
      continue;
    }
    ++stats.idle_loops;
    if (++fruitless >= config_.idle_spins_before_yield) {
      std::this_thread::yield();
      fruitless = 0;
    }
  }
}

ExecutorReport Executor::Run() {
  ExecutorReport report;
  report.workers.resize(config_.num_workers);
  submitted_items_.store(seeded_items_, std::memory_order_relaxed);

  const uint64_t start = NowNs();
  std::vector<std::thread> threads;
  threads.reserve(config_.num_workers);
  for (uint32_t i = 0; i < config_.num_workers; ++i) {
    threads.emplace_back([this, i, &report] { WorkerMain(i, report.workers[i]); });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  report.wall_time_ns = NowNs() - start;
  report.total_items = submitted_items_.load(std::memory_order_relaxed);
  return report;
}

ExecutorReport Executor::RunFor(uint64_t duration_ms,
                                const std::function<void(Executor&)>& producer) {
  ExecutorReport report;
  report.workers.resize(config_.num_workers);
  submitted_items_.store(seeded_items_, std::memory_order_relaxed);
  deadline_mode_ = true;
  stop_.store(false, std::memory_order_release);

  const uint64_t start = NowNs();
  std::vector<std::thread> threads;
  threads.reserve(config_.num_workers);
  for (uint32_t i = 0; i < config_.num_workers; ++i) {
    threads.emplace_back([this, i, &report] { WorkerMain(i, report.workers[i]); });
  }
  std::thread producer_thread;
  if (producer) {
    producer_thread = std::thread([this, &producer] { producer(*this); });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop_.store(true, std::memory_order_release);
  for (std::thread& t : threads) {
    t.join();
  }
  if (producer_thread.joinable()) {
    producer_thread.join();
  }
  report.wall_time_ns = NowNs() - start;
  report.total_items = submitted_items_.load(std::memory_order_relaxed);
  report.items_left_unexecuted = remaining_items_.load(std::memory_order_relaxed);
  deadline_mode_ = false;
  return report;
}

}  // namespace optsched::runtime
