#include "src/runtime/executor.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/base/check.h"
#include "src/base/str.h"
#include "src/runtime/spinlock.h"

namespace optsched::runtime {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// Opaque spin so the optimizer cannot delete the "work".
void DoWork(uint64_t units, uint64_t spin_per_unit) {
  volatile uint64_t sink = 0;
  for (uint64_t u = 0; u < units; ++u) {
    for (uint64_t i = 0; i < spin_per_unit; ++i) {
      sink = sink + i;
    }
  }
}

}  // namespace

uint64_t ExecutorReport::total_successes() const {
  uint64_t total = 0;
  for (const WorkerStats& w : workers) {
    total += w.steals.successes;
  }
  return total;
}

uint64_t ExecutorReport::total_failed_recheck() const {
  uint64_t total = 0;
  for (const WorkerStats& w : workers) {
    total += w.steals.failed_recheck;
  }
  return total;
}

uint64_t ExecutorReport::total_attempts() const {
  uint64_t total = 0;
  for (const WorkerStats& w : workers) {
    total += w.steals.attempts;
  }
  return total;
}

uint64_t ExecutorReport::total_backoff_events() const {
  uint64_t total = 0;
  for (const WorkerStats& w : workers) {
    total += w.backoff_events;
  }
  return total;
}

uint64_t ExecutorReport::total_crashes() const {
  uint64_t total = 0;
  for (const WorkerStats& w : workers) {
    total += w.crashes;
  }
  return total;
}

double ExecutorReport::throughput_items_per_ms() const {
  return wall_time_ns == 0
             ? 0.0
             : static_cast<double>(total_items) / (static_cast<double>(wall_time_ns) / 1e6);
}

std::string ExecutorReport::ToString() const {
  std::string out = StrFormat(
      "executor{items=%llu wall=%.2fms throughput=%.1f items/ms steals=%llu "
      "failed_recheck=%llu attempts=%llu backoffs=%llu}",
      static_cast<unsigned long long>(total_items), static_cast<double>(wall_time_ns) / 1e6,
      throughput_items_per_ms(), static_cast<unsigned long long>(total_successes()),
      static_cast<unsigned long long>(total_failed_recheck()),
      static_cast<unsigned long long>(total_attempts()),
      static_cast<unsigned long long>(total_backoff_events()));
  if (faults.total() > 0) {
    out += " " + faults.ToString();
  }
  if (watchdog.observations > 0) {
    out += " " + watchdog.ToString();
  }
  return out;
}

Executor::Executor(std::shared_ptr<const BalancePolicy> policy, const ExecutorConfig& config,
                   const Topology* topology)
    : policy_(std::move(policy)),
      config_(config),
      topology_(topology),
      machine_(config.num_workers) {
  OPTSCHED_CHECK(policy_ != nullptr);
  OPTSCHED_CHECK(config_.num_workers > 0);
  OPTSCHED_CHECK(config_.max_backoff_spins >= 1);
  config_.initial_backoff_spins =
      std::clamp<uint64_t>(config_.initial_backoff_spins, 1, config_.max_backoff_spins);
}

void Executor::Seed(uint32_t queue_index, const std::vector<WorkItem>& items) {
  OPTSCHED_CHECK(queue_index < machine_.num_queues());
  for (const WorkItem& item : items) {
    machine_.queue(queue_index).Push(item);
  }
  seeded_items_ += items.size();
  remaining_items_.fetch_add(items.size(), std::memory_order_relaxed);
}

void Executor::Submit(uint32_t queue_index, const WorkItem& item) {
  OPTSCHED_CHECK(queue_index < machine_.num_queues());
  machine_.queue(queue_index).Push(item);
  submitted_items_.fetch_add(1, std::memory_order_relaxed);
  remaining_items_.fetch_add(1, std::memory_order_release);
}

void Executor::WorkerMain(uint32_t worker_index, WorkerStats& stats,
                          std::atomic<uint32_t>& state) {
  Rng rng(config_.seed * 1000003 + worker_index);
  ConcurrentRunQueue& own = machine_.queue(worker_index);
  fault::FaultInjector* injector = injector_.get();
  uint32_t fruitless = 0;
  uint64_t backoff_spins = 0;  // current window; 0 = not backing off
  // Last snapshot this worker took; a StaleSnapshot fault makes the next
  // selection run against it instead of a fresh read.
  LoadSnapshot stale_view;
  bool has_stale_view = false;

  const auto keep_running = [&] {
    if (deadline_mode_) {
      return !stop_.load(std::memory_order_acquire);
    }
    return remaining_items_.load(std::memory_order_acquire) > 0;
  };

  // Bounded park: CpuRelax for `spins`, bailing early on shutdown or on a
  // watchdog escalation (new epoch -> retry immediately at full rate).
  const auto park = [&](uint64_t spins) {
    ++stats.backoff_events;
    stats.backoff_spins_total += spins;
    const uint64_t epoch = escalation_epoch_.load(std::memory_order_acquire);
    for (uint64_t i = 0; i < spins; ++i) {
      CpuRelax();
      if ((i & 255u) == 255u) {
        if (!keep_running()) {
          return;
        }
        if (escalation_epoch_.load(std::memory_order_acquire) != epoch) {
          ++stats.escalation_wakeups;
          backoff_spins = 0;
          return;
        }
      }
    }
  };

  while (keep_running()) {
    // Crash seam: only at the loop top, where no item is held — fail-stop
    // between scheduling decisions, so the shared queues stay consistent and
    // the supervisor can respawn this slot without losing work.
    if (injector != nullptr && injector->CrashWorker(worker_index)) {
      ++stats.crashes;
      state.store(kCrashed, std::memory_order_release);
      return;
    }
    // Run everything queued locally first.
    if (std::optional<WorkItem> item = own.PopForRun(); item.has_value()) {
      DoWork(item->work_units, config_.spin_per_unit);
      own.FinishCurrent();
      ++stats.items_executed;
      stats.units_executed += item->work_units;
      remaining_items_.fetch_sub(1, std::memory_order_acq_rel);
      fruitless = 0;
      backoff_spins = 0;
      continue;
    }
    // Queue empty: run the three-step balancing protocol — unless a straggler
    // fault holds this core out of the round entirely.
    bool stole = false;
    if (injector == nullptr || !injector->StallCore(worker_index)) {
      const uint64_t select_start = NowNs();
      LoadSnapshot snapshot;
      if (injector != nullptr && has_stale_view && injector->StaleSnapshot(worker_index)) {
        snapshot = stale_view;  // selection over a deliberately outdated view
      } else {
        snapshot = config_.locked_selection ? machine_.LockedSnapshot() : machine_.Snapshot();
        stale_view = snapshot;
        has_stale_view = true;
      }
      stats.selection_latency_ns.Add(NowNs() - select_start);
      if (injector != nullptr && injector->AbortSteal(worker_index)) {
        // Forced abort between CHOICE and STEAL. The attempt never reaches the
        // two-lock phase, so StealCounters keep counting only genuine protocol
        // outcomes (the §4.3 attribution argument stays intact); the injector
        // tallies the abort.
      } else {
        const uint64_t steal_start = NowNs();
        stole = machine_.TrySteal(*policy_, worker_index, snapshot, rng,
                                  config_.recheck_filter, stats.steals, topology_);
        if (stole) {
          stats.steal_latency_ns.Add(NowNs() - steal_start);
        }
      }
    }
    if (stole) {
      fruitless = 0;
      backoff_spins = 0;
      continue;
    }
    ++stats.idle_loops;
    if (++fruitless >= config_.idle_spins_before_yield) {
      fruitless = 0;
      if (config_.fixed_yield) {
        // Ablation: the pre-backoff behaviour — yield and immediately resume
        // hammering the snapshot path.
        std::this_thread::yield();
        ++stats.yields;
        continue;
      }
      backoff_spins = backoff_spins == 0
                          ? config_.initial_backoff_spins
                          : std::min(backoff_spins * 2, config_.max_backoff_spins);
      uint64_t spins = backoff_spins;
      if (config_.backoff_jitter && spins >= 2) {
        spins = spins / 2 + rng.NextBelow(spins / 2 + 1);  // uniform in [s/2, s]
      }
      park(spins);
      if (backoff_spins >= config_.max_backoff_spins) {
        // At the cap: hand the OS a scheduling opportunity between parks.
        std::this_thread::yield();
        ++stats.yields;
      }
    }
  }
  state.store(kDone, std::memory_order_release);
}

ExecutorReport Executor::RunInternal(uint64_t duration_ms,
                                     const std::function<void(Executor&)>& producer) {
  ExecutorReport report;
  report.workers.resize(config_.num_workers);
  submitted_items_.store(seeded_items_, std::memory_order_relaxed);
  deadline_mode_ = duration_ms > 0;
  stop_.store(false, std::memory_order_release);
  escalation_epoch_.store(0, std::memory_order_release);
  injector_ = config_.fault_plan.any()
                  ? std::make_unique<fault::FaultInjector>(config_.fault_plan, config_.num_workers)
                  : nullptr;
  trace::ConservationWatchdog watchdog(
      config_.num_workers,
      trace::WatchdogConfig{.threshold_rounds = config_.watchdog_threshold_samples});

  const uint64_t start = NowNs();
  const uint64_t stop_at = deadline_mode_ ? start + duration_ms * 1'000'000ull : 0;

  std::vector<std::unique_ptr<WorkerSlot>> slots;
  slots.reserve(config_.num_workers);
  for (uint32_t i = 0; i < config_.num_workers; ++i) {
    slots.push_back(std::make_unique<WorkerSlot>());
  }
  const auto spawn = [&](uint32_t i) {
    WorkerSlot& slot = *slots[i];
    slot.state.store(kRunning, std::memory_order_release);
    slot.thread =
        std::thread([this, i, &report, &slot] { WorkerMain(i, report.workers[i], slot.state); });
  };
  for (uint32_t i = 0; i < config_.num_workers; ++i) {
    spawn(i);
  }
  std::thread producer_thread;
  if (producer) {
    producer_thread = std::thread([this, &producer] { producer(*this); });
  }

  // Supervisor loop: watches the deadline, respawns crashed workers after the
  // plan's restart delay, and feeds the watchdog. A crashed worker's slot is
  // joined here before its thread object is reused.
  const uint64_t restart_delay_ns = config_.fault_plan.crash_restart_us * 1000ull;
  for (;;) {
    const uint64_t now = NowNs();
    if (deadline_mode_ && !stop_.load(std::memory_order_acquire) && now >= stop_at) {
      stop_.store(true, std::memory_order_release);
    }
    const bool stopping = deadline_mode_
                              ? stop_.load(std::memory_order_acquire)
                              : remaining_items_.load(std::memory_order_acquire) == 0;
    bool all_done = true;
    for (uint32_t i = 0; i < config_.num_workers; ++i) {
      WorkerSlot& slot = *slots[i];
      switch (slot.state.load(std::memory_order_acquire)) {
        case kRunning:
          all_done = false;
          break;
        case kCrashed:
          slot.thread.join();
          if (stopping) {
            slot.state.store(kDone, std::memory_order_relaxed);
            break;
          }
          slot.state.store(kAwaitingRestart, std::memory_order_relaxed);
          slot.restart_at_ns = now + restart_delay_ns;
          all_done = false;
          break;
        case kAwaitingRestart:
          if (stopping) {
            slot.state.store(kDone, std::memory_order_relaxed);
          } else if (now >= slot.restart_at_ns) {
            spawn(i);
            all_done = false;
          } else {
            all_done = false;
          }
          break;
        case kDone:
          break;
      }
    }
    if (all_done) {
      break;
    }
    if (config_.watchdog) {
      const LoadSnapshot snap = machine_.Snapshot();
      if (watchdog.ObserveRound((now - start) / 1000, snap.task_count)) {
        watchdog.RecordEscalation((now - start) / 1000);
        // Snap every backing-off worker awake: an immediate full-rate
        // balancing attempt is the runtime's "forced global round".
        escalation_epoch_.fetch_add(1, std::memory_order_acq_rel);
      }
    }
    std::this_thread::sleep_for(std::chrono::microseconds(config_.supervisor_poll_us));
  }
  for (uint32_t i = 0; i < config_.num_workers; ++i) {
    if (slots[i]->thread.joinable()) {
      slots[i]->thread.join();
    }
  }
  if (producer_thread.joinable()) {
    producer_thread.join();
  }

  report.wall_time_ns = NowNs() - start;
  report.total_items = submitted_items_.load(std::memory_order_relaxed);
  report.items_left_unexecuted =
      deadline_mode_ ? remaining_items_.load(std::memory_order_relaxed) : 0;
  if (injector_ != nullptr) {
    report.faults = injector_->stats();
  }
  if (config_.watchdog) {
    report.watchdog = watchdog.stats();
  }
  deadline_mode_ = false;
  return report;
}

ExecutorReport Executor::Run() { return RunInternal(0, {}); }

ExecutorReport Executor::RunFor(uint64_t duration_ms,
                                const std::function<void(Executor&)>& producer) {
  OPTSCHED_CHECK(duration_ms > 0);
  return RunInternal(duration_ms, producer);
}

}  // namespace optsched::runtime
