#include "src/runtime/executor.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/base/check.h"
#include "src/base/mutex.h"
#include "src/base/str.h"
#include "src/runtime/mc_hooks.h"
#include "src/runtime/spinlock.h"

namespace optsched::runtime {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// Opaque spin so the optimizer cannot delete the "work".
void DoWork(uint64_t units, uint64_t spin_per_unit) {
  volatile uint64_t sink = 0;
  for (uint64_t u = 0; u < units; ++u) {
    for (uint64_t i = 0; i < spin_per_unit; ++i) {
      sink = sink + i;
    }
  }
}

}  // namespace

uint64_t ExecutorReport::total_successes() const {
  uint64_t total = 0;
  for (const WorkerStats& w : workers) {
    total += w.steals.successes;
  }
  return total;
}

uint64_t ExecutorReport::total_items_stolen() const {
  uint64_t total = 0;
  for (const WorkerStats& w : workers) {
    total += w.steals.items_stolen;
  }
  return total;
}

uint64_t ExecutorReport::total_failed_recheck() const {
  uint64_t total = 0;
  for (const WorkerStats& w : workers) {
    total += w.steals.failed_recheck;
  }
  return total;
}

uint64_t ExecutorReport::total_attempts() const {
  uint64_t total = 0;
  for (const WorkerStats& w : workers) {
    total += w.steals.attempts;
  }
  return total;
}

uint64_t ExecutorReport::total_backoff_events() const {
  uint64_t total = 0;
  for (const WorkerStats& w : workers) {
    total += w.backoff_events;
  }
  return total;
}

uint64_t ExecutorReport::total_crashes() const {
  uint64_t total = 0;
  for (const WorkerStats& w : workers) {
    total += w.crashes;
  }
  return total;
}

uint64_t ExecutorReport::total_mailbox_items_drained() const {
  uint64_t total = 0;
  for (const WorkerStats& w : workers) {
    total += w.mailbox_items_drained;
  }
  return total;
}

uint64_t ExecutorReport::total_deal_rounds() const {
  uint64_t total = 0;
  for (const WorkerStats& w : workers) {
    total += w.deal_rounds;
  }
  return total;
}

uint64_t ExecutorReport::total_deal_items_dealt() const {
  uint64_t total = 0;
  for (const WorkerStats& w : workers) {
    total += w.deal_items_dealt;
  }
  return total;
}

uint64_t ExecutorReport::total_deal_items_direct() const {
  uint64_t total = 0;
  for (const WorkerStats& w : workers) {
    total += w.deal_items_direct;
  }
  return total;
}

uint64_t ExecutorReport::total_deal_items_returned() const {
  uint64_t total = 0;
  for (const WorkerStats& w : workers) {
    total += w.deal_items_returned;
  }
  return total;
}

uint64_t ExecutorReport::total_deal_items_received() const {
  uint64_t total = 0;
  for (const WorkerStats& w : workers) {
    total += w.deal_items_received;
  }
  return total;
}

stats::LogHistogram ExecutorReport::MergedSojournNs() const {
  stats::LogHistogram merged;
  for (const WorkerStats& w : workers) {
    merged.Merge(w.sojourn_ns);
  }
  return merged;
}

double ExecutorReport::throughput_items_per_ms() const {
  return wall_time_ns == 0
             ? 0.0
             : static_cast<double>(total_items) / (static_cast<double>(wall_time_ns) / 1e6);
}

std::string ExecutorReport::ToString() const {
  std::string out = StrFormat(
      "executor{items=%llu wall=%.2fms throughput=%.1f items/ms steals=%llu "
      "stolen_items=%llu failed_recheck=%llu attempts=%llu backoffs=%llu}",
      static_cast<unsigned long long>(total_items), static_cast<double>(wall_time_ns) / 1e6,
      throughput_items_per_ms(), static_cast<unsigned long long>(total_successes()),
      static_cast<unsigned long long>(total_items_stolen()),
      static_cast<unsigned long long>(total_failed_recheck()),
      static_cast<unsigned long long>(total_attempts()),
      static_cast<unsigned long long>(total_backoff_events()));
  stats::LogHistogram ok_ns;
  stats::LogHistogram fail_ns;
  for (const WorkerStats& w : workers) {
    ok_ns.Merge(w.steal_latency_ns);
    fail_ns.Merge(w.steal_fail_latency_ns);
  }
  if (ok_ns.total() > 0 || fail_ns.total() > 0) {
    out += StrFormat(" steal_ns{ok_p50=%.0f ok_p99=%.0f fail_p50=%.0f fail_p99=%.0f}",
                     ok_ns.Percentile(0.5), ok_ns.Percentile(0.99), fail_ns.Percentile(0.5),
                     fail_ns.Percentile(0.99));
  }
  if (total_mailbox_items_drained() > 0) {
    out += StrFormat(" mailbox{items_drained=%llu}",
                     static_cast<unsigned long long>(total_mailbox_items_drained()));
  }
  if (total_deal_rounds() > 0) {
    out += StrFormat(" deal{rounds=%llu dealt=%llu direct=%llu returned=%llu received=%llu}",
                     static_cast<unsigned long long>(total_deal_rounds()),
                     static_cast<unsigned long long>(total_deal_items_dealt()),
                     static_cast<unsigned long long>(total_deal_items_direct()),
                     static_cast<unsigned long long>(total_deal_items_returned()),
                     static_cast<unsigned long long>(total_deal_items_received()));
  }
  const stats::LogHistogram sojourn = MergedSojournNs();
  if (sojourn.total() > 0) {
    out += StrFormat(" sojourn_ns{p50=%.0f p99=%.0f p999=%.0f}", sojourn.Percentile(0.5),
                     sojourn.Percentile(0.99), sojourn.Percentile(0.999));
  }
  if (faults.total() > 0) {
    out += " " + faults.ToString();
  }
  if (watchdog.observations > 0) {
    out += " " + watchdog.ToString();
  }
  if (!trace_events.empty() || trace_dropped > 0) {
    out += StrFormat(" trace{events=%zu dropped=%llu}", trace_events.size(),
                     static_cast<unsigned long long>(trace_dropped));
  }
  if (seqlock_read_retries > 0) {
    out += StrFormat(" seqlock_retries=%llu",
                     static_cast<unsigned long long>(seqlock_read_retries));
  }
  return out;
}

void ExecutorReport::ExportMetrics(trace::MetricsRegistry& registry) const {
  registry.Add("executor.wall_time_ns", static_cast<double>(wall_time_ns));
  registry.Add("executor.total_items", static_cast<double>(total_items));
  registry.Add("executor.items_left_unexecuted", static_cast<double>(items_left_unexecuted));
  registry.Add("executor.trace.events", static_cast<double>(trace_events.size()));
  registry.Add("executor.trace.dropped", static_cast<double>(trace_dropped));
  registry.Add("executor.seqlock.read_retries", static_cast<double>(seqlock_read_retries));
  registry.Add("executor.faults.stalled_attempts", static_cast<double>(faults.stalled_attempts));
  registry.Add("executor.faults.injected_aborts", static_cast<double>(faults.injected_aborts));
  registry.Add("executor.faults.stale_snapshots", static_cast<double>(faults.stale_snapshots));
  registry.Add("executor.faults.dropped_rounds", static_cast<double>(faults.dropped_rounds));
  registry.Add("executor.faults.crashes", static_cast<double>(faults.crashes));
  registry.Add("executor.faults.delayed_drains", static_cast<double>(faults.delayed_drains));
  watchdog.ExportTo(registry, "executor.watchdog");
  const stats::LogHistogram sojourn = MergedSojournNs();
  if (sojourn.total() > 0) {
    registry.Set("executor.sojourn_ns.p50", sojourn.Percentile(0.50));
    registry.Set("executor.sojourn_ns.p99", sojourn.Percentile(0.99));
    registry.Set("executor.sojourn_ns.p999", sojourn.Percentile(0.999));
  }
  for (size_t i = 0; i < workers.size(); ++i) {
    const WorkerStats& w = workers[i];
    // Machine-wide aggregates (Add merges across workers)...
    registry.Add("executor.items_executed", static_cast<double>(w.items_executed));
    registry.Add("executor.units_executed", static_cast<double>(w.units_executed));
    registry.Add("executor.steals.attempts", static_cast<double>(w.steals.attempts));
    registry.Add("executor.steals.successes", static_cast<double>(w.steals.successes));
    registry.Add("executor.steals.items_stolen", static_cast<double>(w.steals.items_stolen));
    registry.Add("executor.steals.failed_recheck", static_cast<double>(w.steals.failed_recheck));
    registry.Add("executor.steals.failed_no_task", static_cast<double>(w.steals.failed_no_task));
    registry.Add("executor.steals.empty_filter", static_cast<double>(w.steals.empty_filter));
    registry.Add("executor.idle_loops", static_cast<double>(w.idle_loops));
    registry.Add("executor.backoff.events", static_cast<double>(w.backoff_events));
    registry.Add("executor.backoff.spins_total", static_cast<double>(w.backoff_spins_total));
    registry.Add("executor.backoff.yields", static_cast<double>(w.yields));
    registry.Add("executor.backoff.escalation_wakeups",
                 static_cast<double>(w.escalation_wakeups));
    registry.Add("executor.backoff.submit_wakeups", static_cast<double>(w.submit_wakeups));
    registry.Add("executor.crashes", static_cast<double>(w.crashes));
    registry.Add("executor.mailbox.drains", static_cast<double>(w.mailbox_drains));
    registry.Add("executor.mailbox.items_drained",
                 static_cast<double>(w.mailbox_items_drained));
    registry.Add("executor.deal.rounds", static_cast<double>(w.deal_rounds));
    registry.Add("executor.deal.pushes", static_cast<double>(w.deal_pushes));
    registry.Add("executor.deal.items_dealt", static_cast<double>(w.deal_items_dealt));
    registry.Add("executor.deal.items_direct", static_cast<double>(w.deal_items_direct));
    registry.Add("executor.deal.items_returned",
                 static_cast<double>(w.deal_items_returned));
    registry.Add("executor.deal.drains", static_cast<double>(w.deal_drains));
    registry.Add("executor.deal.items_received",
                 static_cast<double>(w.deal_items_received));
    // ...plus the per-worker split for the load-distribution view.
    const std::string prefix = StrFormat("executor.worker%zu", i);
    registry.Add(prefix + ".items_executed", static_cast<double>(w.items_executed));
    registry.Add(prefix + ".steals.successes", static_cast<double>(w.steals.successes));
    registry.Add(prefix + ".steals.attempts", static_cast<double>(w.steals.attempts));
    registry.Add(prefix + ".crashes", static_cast<double>(w.crashes));
  }
}

Executor::Executor(std::shared_ptr<const BalancePolicy> policy, const ExecutorConfig& config,
                   const Topology* topology)
    : policy_(std::move(policy)),
      config_(config),
      topology_(topology),
      machine_(config.num_workers,
               MachineOptions{.backend = config.backend,
                              .deque_capacity = config.chase_lev_capacity}),
      deal_policy_(config.deal),
      deal_in_flight_(config.num_workers) {
  OPTSCHED_CHECK(policy_ != nullptr);
  OPTSCHED_CHECK(config_.num_workers > 0);
  OPTSCHED_CHECK(config_.max_backoff_spins >= 1);
  if (config_.deal.enabled) {
    // Dealing needs its transport, and a threshold below 2 would deal away
    // the dealer's current or only queued item — self-defeating by
    // construction, so reject loudly instead of measuring nonsense.
    OPTSCHED_CHECK_MSG(config_.deal_sink != nullptr,
                       "deal.enabled requires a deal_sink (ingress::DealChannel)");
    OPTSCHED_CHECK_MSG(config_.deal.threshold >= 2, "deal.threshold must be >= 2");
    OPTSCHED_CHECK(config_.deal.max_batch >= 1);
    OPTSCHED_CHECK(config_.deal.check_interval_items >= 1);
  }
  // D3 locks every runqueue during selection; the chase_lev deque has no
  // queue lock to take, so the combination is meaningless — reject it loudly
  // instead of silently measuring the wrong ablation.
  OPTSCHED_CHECK_MSG(!(config_.locked_selection && config_.backend == QueueBackend::kChaseLev),
                     "locked_selection (D3) requires the locked backend");
  config_.initial_backoff_spins =
      std::clamp<uint64_t>(config_.initial_backoff_spins, 1, config_.max_backoff_spins);
}

void Executor::Seed(uint32_t queue_index, const std::vector<WorkItem>& items) {
  SubmitBatch(queue_index, items);
}

void Executor::Submit(uint32_t queue_index, const WorkItem& item) {
  OPTSCHED_CHECK(queue_index < machine_.num_queues());
  submitted_items_.fetch_add(1, std::memory_order_relaxed);  // order: reporting-counter
  remaining_items_.fetch_add(1, std::memory_order_release);
  machine_.queue(queue_index).Push(item);
  // Wakeup bump strictly AFTER the push: a worker whose wakeup sample goes
  // stale re-runs its empty re-checks and is guaranteed to find this item
  // (the bump's release pairs with the sample's acquire). Bumping before the
  // push would let a woken worker re-check, miss the not-yet-pushed item,
  // and park through it — the very race this epoch exists to close.
  mc_hooks::SyncPoint(mc_hooks::SyncOp::kEpochBump, &wakeup_epoch_);
  wakeup_epoch_.fetch_add(1, std::memory_order_release);
}

// Ordering contract for remaining_items_, shared by Submit and SubmitBatch
// (they used to disagree — Submit released, the batch path was relaxed):
//
//  * The count is bumped BEFORE any item of the batch becomes poppable.
//    Workers only decrement after executing an item, and an executed item was
//    necessarily pushed after its increment, so the counter can never read 0
//    while an unexecuted item sits in a queue — keep_running()'s acquire load
//    observing 0 really means "drained", and closed-system Run() cannot
//    terminate early. (The old push-then-add order let a fast worker
//    decrement before the producer's add, transiently wrapping the counter.)
//  * memory_order_release on the add pairs with the acquire load in
//    keep_running(): a worker that observes the new count also observes
//    everything the producer wrote before submitting. Item payload visibility
//    itself rides on the queue SpinLock (release on unlock, acquire on lock);
//    the counter's release is what orders producer-side writes *outside* the
//    queue for workers that act on the count without touching the queue yet.
void Executor::SubmitBatch(uint32_t queue_index, const std::vector<WorkItem>& items) {
  OPTSCHED_CHECK(queue_index < machine_.num_queues());
  if (items.empty()) {
    return;
  }
  submitted_items_.fetch_add(items.size(), std::memory_order_relaxed);  // order: reporting-counter
  remaining_items_.fetch_add(items.size(), std::memory_order_release);
  for (const WorkItem& item : items) {
    machine_.queue(queue_index).Push(item);
  }
  // One wakeup bump per batch, after the last push (see Submit).
  mc_hooks::SyncPoint(mc_hooks::SyncOp::kEpochBump, &wakeup_epoch_);
  wakeup_epoch_.fetch_add(1, std::memory_order_release);
}

// The spawn seam is on the D7 allocation-free budget: a worker flushing its
// spawn batch mid-item must not touch the allocator (rule hot-path-alloc;
// audited by bench_e16 over the recursive kernels).
OPTSCHED_HOT_PATH void Executor::SubmitFromWorker(uint32_t worker, const WorkItem* items,
                                                  uint32_t count) {
  OPTSCHED_CHECK(worker < machine_.num_queues());
  if (count == 0) {
    return;
  }
  // Same ordering contract as SubmitBatch: the count is bumped BEFORE any
  // item becomes poppable. The caller is a worker mid-item, so its own
  // pending decrement (applied after RunItem returns) additionally keeps the
  // counter positive throughout — a fired continuation can never be the race
  // that lets closed-system Run() observe a transient 0.
  submitted_items_.fetch_add(count, std::memory_order_relaxed);  // order: reporting-counter
  remaining_items_.fetch_add(count, std::memory_order_release);
  // Owner push path: deque bottom on chase_lev (lock-free, stealable from
  // the top), the queue lock on locked — never the external-submit inbox.
  machine_.queue(worker).PushBatchOwner(items, count);
  // One wakeup bump per flush, after the last push (see Submit): siblings
  // parked through the spawn burst re-run their steal filter and find the
  // new subtree. Batching amortizes the bump — one epoch RMW per
  // kSpawnBatch spawns, not per task.
  mc_hooks::SyncPoint(mc_hooks::SyncOp::kEpochBump, &wakeup_epoch_);
  wakeup_epoch_.fetch_add(1, std::memory_order_release);
}

void Executor::NotifyIngress(uint32_t /*worker*/) {
  // The mailbox push already completed (MailboxSet notifies on the
  // empty->non-empty edge, after the item is visible), so the same
  // bump-after-publish ordering as Submit applies.
  mc_hooks::SyncPoint(mc_hooks::SyncOp::kEpochBump, &wakeup_epoch_);
  wakeup_epoch_.fetch_add(1, std::memory_order_release);
}

uint32_t Executor::DrainIngress(uint32_t worker, WorkerStats& stats,
                                std::vector<WorkItem>& batch, trace::SpscTraceRing* ring) {
  batch.clear();
  const uint32_t moved =
      config_.ingress->Drain(worker, batch, std::max(config_.ingress_drain_batch, 1u));
  if (moved == 0) {
    return 0;
  }
  // Same ordering contract as SubmitBatch: the remaining-items count is
  // bumped before any drained item becomes poppable. (Between the mailbox
  // removal and this bump the items are in neither PendingFor nor the
  // count — that window is one drain long and only defers the watchdog's
  // pending view by a round, it cannot terminate a run early because ingress
  // requires deadline mode.)
  submitted_items_.fetch_add(moved, std::memory_order_relaxed);  // order: reporting-counter
  remaining_items_.fetch_add(moved, std::memory_order_release);
  // Backend-neutral owner append: the queue lock on kLocked, a lock-free
  // bottom push (inbox spill on overflow) on kChaseLev.
  machine_.queue(worker).PushBatchOwner(batch.data(), moved);
  ++stats.mailbox_drains;
  stats.mailbox_items_drained += moved;
  if (ring != nullptr) {
    ring->TryPush({.time = (NowNs() - run_start_ns_) / 1000,
                   .type = trace::EventType::kMailboxDrain,
                   .cpu = worker,
                   .detail = static_cast<int64_t>(moved)});
  }
  return moved;
}

uint32_t Executor::DrainDealt(uint32_t worker, WorkerStats& stats,
                              std::vector<WorkItem>& batch, trace::SpscTraceRing* ring) {
  batch.clear();
  // Reuses the ingress drain-batch bound; dealt batches are max_batch-sized,
  // so one drain normally empties the mailbox.
  const uint32_t moved = config_.deal_sink->DrainDealt(
      worker, batch, std::max(config_.ingress_drain_batch, 1u));
  if (moved == 0) {
    return 0;
  }
  // NO remaining/submitted bump — the one deliberate difference from
  // DrainIngress. Dealt items were counted at their original submission and
  // are only migrating; admitting them again would double-count and wedge
  // closed-system termination (see DealChannel's header).
  machine_.queue(worker).PushBatchOwner(batch.data(), moved);
  ++stats.deal_drains;
  stats.deal_items_received += moved;
  if (ring != nullptr) {
    ring->TryPush({.time = (NowNs() - run_start_ns_) / 1000,
                   .type = trace::EventType::kDealDrain,
                   .cpu = worker,
                   .detail = static_cast<int64_t>(moved)});
  }
  return moved;
}

// The dealer's half of work-dealing (docs/runtime.md#work-dealing), run at
// the deal check cadence with no item held. On the D7 allocation-free budget
// once the scratch buffers reach high-water capacity.
OPTSCHED_HOT_PATH void Executor::DealRound(uint32_t worker, ConcurrentRunQueue& own,
                                           WorkerStats& stats, DealWindow& window,
                                           LoadSnapshot& snapshot,
                                           std::vector<WorkItem>& batch,
                                           std::vector<int64_t>& pending_scratch,
                                           trace::SpscTraceRing* ring) {
  // The window must tick on EVERY check (it counts checks, not time), so
  // observe first and gate on the threshold second.
  const bool in_window = window.Observe(own.StolenCount(), config_.deal);
  // ReadLoad, not TasksRelaxed: the latter sums the chase_lev counter
  // decomposition, which stays zero on the locked backend — the gate must
  // judge the backend's actual published load.
  if (!in_window || !deal_policy_.ShouldDeal(own.ReadLoad().task_count)) {
    return;
  }
  machine_.SnapshotInto(snapshot);
  DealSink& sink = *config_.deal_sink;
  pending_scratch.assign(machine_.num_queues(), 0);
  for (uint32_t i = 0; i < machine_.num_queues(); ++i) {
    if (i != worker) {
      pending_scratch[i] = sink.DealtPendingFor(i);
    }
  }
  const CpuId peer = deal_policy_.PickRecipient(worker, snapshot, pending_scratch.data());
  if (peer == DealPolicy::kNoPeer) {
    return;
  }
  const uint32_t quota =
      deal_policy_.DealQuota(own.ReadLoad().task_count, snapshot.task_count[peer]);
  if (quota == 0) {
    return;
  }
  ++stats.deal_rounds;
  // In-flight visibility BEFORE the take: between TakeOwnerBatch and the
  // placement below the items are in no queue and no mailbox. The watchdog
  // reads deal_in_flight_ as pending, so a sampling window landing here sees
  // work in transit, not work vanishing (satellite bugfix; same rule as
  // mailbox backlog and outstanding continuations).
  deal_in_flight_[worker].fetch_add(quota, std::memory_order_relaxed);  // order: watchdog-pending
  batch.clear();
  const uint32_t taken = own.TakeOwnerBatch(quota, batch);
  if (taken < quota) {
    // order: watchdog-pending
    deal_in_flight_[worker].fetch_sub(quota - taken, std::memory_order_relaxed);
  }
  if (taken == 0) {
    return;
  }
  const uint32_t accepted = sink.PushDealt(peer, batch.data(), taken);
  uint32_t direct = 0;
  uint32_t returned = 0;
  if (accepted < taken) {
    const uint32_t tail = taken - accepted;
    if (accepted > 0) {
      // Partial acceptance: the mailbox filled mid-batch. We are committed
      // to this peer — spill the tail straight into its runqueue's external
      // inbox, still conservation-visible and still an owner-side push.
      machine_.queue(peer).PushBatchExternal(batch.data() + accepted, tail);
      direct = tail;
    } else {
      // Refused outright: the pick ran on a stale view and the peer is
      // already backlogged — the deal-side analogue of a failed re-check.
      // Abandon the round and take the batch back; the reactive steal
      // fallback redistributes if the imbalance persists. Dropping this tail
      // instead is exactly the broken_deal_window fault the mc deal harness
      // exists to catch.
      own.PushBatchOwner(batch.data(), taken);
      returned = taken;
    }
  }
  deal_in_flight_[worker].fetch_sub(taken, std::memory_order_relaxed);  // order: watchdog-pending
  stats.deal_items_dealt += accepted;
  stats.deal_items_direct += direct;
  stats.deal_items_returned += returned;
  if (accepted + direct > 0) {
    ++stats.deal_pushes;
    // The mailbox push already fired the channel's notify (wired to
    // NotifyIngress) on the empty->non-empty edge. The direct spill needs
    // its own bump-after-publish: a peer parked over an empty inbox would
    // otherwise sleep through it.
    if (direct > 0) {
      mc_hooks::SyncPoint(mc_hooks::SyncOp::kEpochBump, &wakeup_epoch_);
      wakeup_epoch_.fetch_add(1, std::memory_order_release);
    }
    if (ring != nullptr) {
      ring->TryPush({.time = (NowNs() - run_start_ns_) / 1000,
                     .type = trace::EventType::kDealPush,
                     .cpu = worker,
                     .task = direct,
                     .other_cpu = peer,
                     .detail = static_cast<int64_t>(accepted)});
    }
  }
  if (returned > 0 && ring != nullptr) {
    ring->TryPush({.time = (NowNs() - run_start_ns_) / 1000,
                   .type = trace::EventType::kDealReturn,
                   .cpu = worker,
                   .other_cpu = peer,
                   .detail = static_cast<int64_t>(returned)});
  }
}

// The whole worker loop is on the D7 allocation-free budget: after the
// warm-up allocations below, a full pop-execute or selection+steal iteration
// must not touch the allocator (rule hot-path-alloc; audited by bench_e14).
OPTSCHED_HOT_PATH void Executor::WorkerMain(uint32_t worker_index, WorkerStats& stats,
                                            std::atomic<uint32_t>& state,
                                            trace::SpscTraceRing* ring) {
  Rng rng(config_.seed * 1000003 + worker_index);
  ConcurrentRunQueue& own = machine_.queue(worker_index);
  fault::FaultInjector* injector = injector_.get();
  IngressSource* ingress = config_.ingress;
  TaskRunner* task_runner = config_.task_runner;
  uint32_t fruitless = 0;
  uint64_t backoff_spins = 0;  // current window; 0 = not backing off
  // Locally executed items since the last mailbox drain (sustained-load
  // drain cadence; see ExecutorConfig::ingress_drain_interval_items).
  uint64_t executed_since_drain = 0;
  // Work-dealing state (docs/runtime.md#work-dealing): check cadence counter,
  // the post-steal grace window, and dedicated scratch — the deal snapshot
  // buffer is separate from the steal path's so the stale-snapshot fault
  // keeps its exact semantics.
  const bool dealing = config_.deal.enabled;
  uint64_t executed_since_deal = 0;
  DealWindow deal_window;
  LoadSnapshot deal_snapshot;
  std::vector<WorkItem> deal_batch;
  std::vector<int64_t> deal_pending_scratch;
  // Hot-path buffers, allocated once per worker and refilled in place: after
  // warmup a full selection + steal attempt performs zero heap allocations
  // (docs/runtime.md, "hot-path cost model").
  LoadSnapshot snapshot;
  StealScratch steal_scratch;
  std::vector<WorkItem> drain_batch;  // reaches high-water capacity once
  const StealOptions steal_options{.recheck = config_.recheck_filter,
                                   .max_batch = std::max(config_.max_steal_batch, 1u)};
  // Last snapshot this worker took; a StaleSnapshot fault makes the next
  // selection run against it instead of a fresh read.
  LoadSnapshot stale_view;
  bool has_stale_view = false;

  const auto keep_running = [&] {
    if (deadline_mode_) {
      return !stop_.load(std::memory_order_acquire);
    }
    return remaining_items_.load(std::memory_order_acquire) > 0;
  };

  // Trace timestamps are microseconds since the run started, matching the
  // watchdog's timebase so the merged stream interleaves correctly.
  const auto trace_now_us = [&] { return (NowNs() - run_start_ns_) / 1000; };

  // True when the wakeup epoch moved past the value sampled at the loop top
  // — new work was published after this worker's last empty re-check.
  const auto wakeup_stale = [&](uint64_t wakeup_before) {
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kEpochLoad, &wakeup_epoch_);
    return wakeup_epoch_.load(std::memory_order_acquire) != wakeup_before;
  };

  // Bounded park: CpuRelax for `spins`, bailing early on shutdown, on a
  // watchdog escalation (new epoch -> retry immediately at full rate), or on
  // a submit/mailbox wakeup. `wakeup_before` was sampled BEFORE this
  // worker's last empty re-checks: any bump after that sample might be work
  // the re-checks missed, so the park refuses to start (and keeps checking)
  // rather than sleep through it. The escalation epoch deliberately keeps
  // its old late-sample semantics — it means "retry at full rate from NOW",
  // not "you missed something".
  const auto park = [&](uint64_t spins, uint64_t wakeup_before) {
    ++stats.backoff_events;
    stats.backoff_spins_total += spins;
    const auto submit_wakeup = [&] {
      ++stats.submit_wakeups;
      backoff_spins = 0;
      if (ring != nullptr) {
        ring->TryPush({.time = trace_now_us(),
                       .type = trace::EventType::kIngressWakeup,
                       .cpu = worker_index});
      }
    };
    if (wakeup_stale(wakeup_before)) {
      submit_wakeup();
      return;
    }
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kEpochLoad, &escalation_epoch_);
    const uint64_t epoch = escalation_epoch_.load(std::memory_order_acquire);
    for (uint64_t i = 0; i < spins; ++i) {
      CpuRelax();
      if ((i & 255u) == 255u) {
        if (!keep_running()) {
          return;
        }
        if (wakeup_stale(wakeup_before)) {
          submit_wakeup();
          return;
        }
        mc_hooks::SyncPoint(mc_hooks::SyncOp::kEpochLoad, &escalation_epoch_);
        if (escalation_epoch_.load(std::memory_order_acquire) != epoch) {
          ++stats.escalation_wakeups;
          backoff_spins = 0;
          if (ring != nullptr) {
            ring->TryPush({.time = trace_now_us(),
                           .type = trace::EventType::kEscalationWakeup,
                           .cpu = worker_index});
          }
          return;
        }
      }
    }
  };

  while (keep_running()) {
    // Sample the wakeup epoch FIRST: everything below (own-queue pop,
    // mailbox check, steal filter) is an empty re-check relative to this
    // sample, so a submit that lands anywhere after it cannot be slept
    // through — park() compares against this very value.
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kEpochLoad, &wakeup_epoch_);
    const uint64_t wakeup_before = wakeup_epoch_.load(std::memory_order_acquire);
    // Crash seam: only at the loop top, where no item is held — fail-stop
    // between scheduling decisions, so the shared queues stay consistent and
    // the supervisor can respawn this slot without losing work.
    if (injector != nullptr && injector->CrashWorker(worker_index)) {
      ++stats.crashes;
      if (ring != nullptr) {
        ring->TryPush({.time = trace_now_us(), .type = trace::EventType::kCrash,
                       .cpu = worker_index});
      }
      state.store(kCrashed, std::memory_order_release);
      return;
    }
    // Run everything queued locally first.
    if (std::optional<WorkItem> item = own.PopForRun(); item.has_value()) {
      if (item->task != 0) {
        // Structured-parallelism item: the task layer runs the body and
        // flushes any spawned children back through SubmitFromWorker before
        // returning — all while this item still counts as running, so the
        // counter ordering note in SubmitFromWorker holds.
        OPTSCHED_CHECK_MSG(task_runner != nullptr,
                           "task item submitted without a task_runner configured");
        task_runner->RunItem(*item, *this, worker_index);
      } else {
        DoWork(item->work_units, config_.spin_per_unit);
      }
      own.FinishCurrent();
      ++stats.items_executed;
      stats.units_executed += item->work_units;
      if (item->arrival_ns != 0) {
        const uint64_t now = NowNs();
        stats.sojourn_ns.Add(now > item->arrival_ns ? now - item->arrival_ns : 0);
      }
      remaining_items_.fetch_sub(1, std::memory_order_acq_rel);
      fruitless = 0;
      backoff_spins = 0;
      // Sustained-load drain cadence: a never-empty runqueue must not starve
      // the mailbox, so pull a batch every N executed items too.
      if (ingress != nullptr &&
          ++executed_since_drain >= config_.ingress_drain_interval_items) {
        executed_since_drain = 0;
        if (ingress->PendingFor(worker_index) > 0) {
          DrainIngress(worker_index, stats, drain_batch, ring);
        }
      }
      // Deal check cadence: recipient duty first (a busy worker bounds its
      // own deal-mailbox sojourn, same rule as the ingress cadence above),
      // then the dealer-side round — with no item held, so a crash between
      // rounds stays fail-stop.
      if (dealing && ++executed_since_deal >= config_.deal.check_interval_items) {
        executed_since_deal = 0;
        if (config_.deal_sink->DealtPendingFor(worker_index) > 0) {
          DrainDealt(worker_index, stats, deal_batch, ring);
        }
        DealRound(worker_index, own, stats, deal_window, deal_snapshot, deal_batch,
                  deal_pending_scratch, ring);
      }
      continue;
    }
    // Round boundary (queue empty): dealt items beat stolen items — they
    // are already ours, pushed here precisely because we looked idle.
    if (dealing && config_.deal_sink->DealtPendingFor(worker_index) > 0) {
      if (DrainDealt(worker_index, stats, deal_batch, ring) > 0) {
        fruitless = 0;
        backoff_spins = 0;
        continue;
      }
    }
    // Round boundary (queue empty): drain the mailbox before looking for
    // work to steal — admitted items beat stolen items, they are already
    // ours. A DelayDrain fault skips this one opportunity (the items stay
    // mailbox-resident one round longer; the watchdog must read that as
    // pending, not as a violation).
    if (ingress != nullptr && ingress->PendingFor(worker_index) > 0) {
      if (injector == nullptr || !injector->DelayDrain(worker_index)) {
        executed_since_drain = 0;
        if (DrainIngress(worker_index, stats, drain_batch, ring) > 0) {
          fruitless = 0;
          backoff_spins = 0;
          continue;
        }
      }
    }
    // Queue empty: run the three-step balancing protocol — unless the E17
    // deal-only ablation turned the reactive fallback off, or a straggler
    // fault holds this core out of the round entirely.
    bool stole = false;
    if (config_.steal_enabled && (injector == nullptr || !injector->StallCore(worker_index))) {
      const uint64_t select_start = NowNs();
      if (injector != nullptr && has_stale_view && injector->StaleSnapshot(worker_index)) {
        snapshot = stale_view;  // selection over a deliberately outdated view
      } else {
        if (config_.locked_selection) {
          machine_.LockedSnapshotInto(snapshot);
        } else {
          machine_.SnapshotInto(snapshot);
        }
        stale_view = snapshot;  // copy-assign: reuses capacity, no allocation
        has_stale_view = true;
      }
      stats.selection_latency_ns.Add(NowNs() - select_start);
      if (injector != nullptr && injector->AbortSteal(worker_index)) {
        // Forced abort between CHOICE and STEAL. The attempt never reaches the
        // two-lock phase, so StealCounters keep counting only genuine protocol
        // outcomes (the §4.3 attribution argument stays intact); the injector
        // tallies the abort.
      } else {
        const uint64_t steal_start = NowNs();
        const uint64_t attempts_before = stats.steals.attempts;
        CpuId victim = 0;
        stole = machine_.TrySteal(*policy_, worker_index, snapshot, rng, steal_options,
                                  stats.steals, topology_, &victim,
                                  /*observation_out=*/nullptr, &steal_scratch);
        // An unchanged attempt count means the filter was empty: no steal
        // phase ran, so there is no latency to attribute and no outcome to
        // trace.
        if (stats.steals.attempts != attempts_before) {
          const uint64_t steal_ns = NowNs() - steal_start;
          // Failed attempts get their own histogram: they are the
          // contention-heavy §4.3 cases, and recording only successes (as
          // before) hid exactly the latencies the attribution argument is
          // about.
          (stole ? stats.steal_latency_ns : stats.steal_fail_latency_ns).Add(steal_ns);
          if (ring != nullptr) {
            ring->TryPush({.time = trace_now_us(),
                           .type = stole ? trace::EventType::kSteal
                                         : trace::EventType::kStealFailed,
                           .cpu = worker_index, .other_cpu = victim,
                           .detail = static_cast<int64_t>(steal_ns)});
          }
        }
      }
    }
    if (stole) {
      fruitless = 0;
      backoff_spins = 0;
      continue;
    }
    ++stats.idle_loops;
    if (++fruitless >= config_.idle_spins_before_yield) {
      fruitless = 0;
      if (config_.fixed_yield) {
        // Ablation: the pre-backoff behaviour — yield and immediately resume
        // hammering the snapshot path.
        std::this_thread::yield();
        ++stats.yields;
        continue;
      }
      backoff_spins = backoff_spins == 0
                          ? config_.initial_backoff_spins
                          : std::min(backoff_spins * 2, config_.max_backoff_spins);
      uint64_t spins = backoff_spins;
      if (config_.backoff_jitter && spins >= 2) {
        spins = spins / 2 + rng.NextBelow(spins / 2 + 1);  // uniform in [s/2, s]
      }
      if (ring != nullptr) {
        const uint64_t park_start = NowNs();
        park(spins, wakeup_before);
        ring->TryPush({.time = (park_start - run_start_ns_) / 1000,
                       .type = trace::EventType::kBackoffPark, .cpu = worker_index,
                       .detail = static_cast<int64_t>(NowNs() - park_start)});
      } else {
        park(spins, wakeup_before);
      }
      if (backoff_spins >= config_.max_backoff_spins) {
        // At the cap: hand the OS a scheduling opportunity between parks.
        std::this_thread::yield();
        ++stats.yields;
      }
    }
  }
  state.store(kDone, std::memory_order_release);
}

ExecutorReport Executor::RunInternal(uint64_t duration_ms,
                                     const std::function<void(Executor&)>& producer) {
  ExecutorReport report;
  report.workers.resize(config_.num_workers);
  deadline_mode_ = duration_ms > 0;
  // Ingress needs open-system mode: closed-system Run() terminates on its
  // submitted count and would strand items admitted after the last drain.
  OPTSCHED_CHECK(config_.ingress == nullptr || deadline_mode_);
  stop_.store(false, std::memory_order_release);
  escalation_epoch_.store(0, std::memory_order_release);
  wakeup_epoch_.store(0, std::memory_order_release);
  injector_ = config_.fault_plan.any()
                  ? std::make_unique<fault::FaultInjector>(config_.fault_plan, config_.num_workers)
                  : nullptr;
  // One ring per worker plus a supervisor lane (watchdog verdicts, restarts).
  collector_ = config_.trace_ring_capacity > 0
                   ? std::make_unique<trace::TraceCollector>(config_.num_workers + 1,
                                                             config_.trace_ring_capacity)
                   : nullptr;
  trace::ConservationWatchdog watchdog(
      config_.num_workers,
      trace::WatchdogConfig{.threshold_rounds = config_.watchdog_threshold_samples});
  // The watchdog records into a TraceBuffer; the supervisor (the only thread
  // touching it) forwards new entries into its own SPSC ring after each call.
  trace::TraceBuffer watchdog_trace(collector_ != nullptr ? size_t{1} << 12 : 0);
  size_t watchdog_forwarded = 0;
  trace::SpscTraceRing* supervisor_ring =
      collector_ != nullptr ? &collector_->ring(config_.num_workers) : nullptr;
  const auto forward_watchdog_events = [&] {
    for (; watchdog_forwarded < watchdog_trace.events().size(); ++watchdog_forwarded) {
      supervisor_ring->TryPush(watchdog_trace.events()[watchdog_forwarded]);
    }
  };

  const uint64_t start = NowNs();
  run_start_ns_ = start;
  const uint64_t stop_at = deadline_mode_ ? start + duration_ms * 1'000'000ull : 0;
  // Seqlock retry counters are cumulative per queue; report the delta so a
  // reused instance attributes retries to the run that incurred them.
  const uint64_t seqlock_retries_at_start = machine_.TotalSeqlockReadRetries();

  std::vector<std::unique_ptr<WorkerSlot>> slots;
  slots.reserve(config_.num_workers);
  for (uint32_t i = 0; i < config_.num_workers; ++i) {
    slots.push_back(std::make_unique<WorkerSlot>());
  }
  const auto spawn = [&](uint32_t i) {
    WorkerSlot& slot = *slots[i];
    slot.state.store(kRunning, std::memory_order_release);
    trace::SpscTraceRing* ring = collector_ != nullptr ? &collector_->ring(i) : nullptr;
    slot.thread = std::thread(
        [this, i, &report, &slot, ring] { WorkerMain(i, report.workers[i], slot.state, ring); });
  };
  for (uint32_t i = 0; i < config_.num_workers; ++i) {
    spawn(i);
  }
  std::thread producer_thread;
  if (producer) {
    producer_thread = std::thread([this, &producer] { producer(*this); });
  }

  // Supervisor loop: watches the deadline, respawns crashed workers after the
  // plan's restart delay, and feeds the watchdog. A crashed worker's slot is
  // joined here before its thread object is reused.
  const uint64_t restart_delay_ns = config_.fault_plan.crash_restart_us * 1000ull;
  LoadSnapshot watchdog_snapshot;  // reused across polls
  std::vector<int64_t> watchdog_pending;  // mailbox depths; empty when no ingress
  for (;;) {
    const uint64_t now = NowNs();
    if (deadline_mode_ && !stop_.load(std::memory_order_acquire) && now >= stop_at) {
      stop_.store(true, std::memory_order_release);
    }
    const bool stopping = deadline_mode_
                              ? stop_.load(std::memory_order_acquire)
                              : remaining_items_.load(std::memory_order_acquire) == 0;
    bool all_done = true;
    for (uint32_t i = 0; i < config_.num_workers; ++i) {
      WorkerSlot& slot = *slots[i];
      switch (slot.state.load(std::memory_order_acquire)) {
        case kRunning:
          all_done = false;
          break;
        case kCrashed:
          slot.thread.join();
          if (stopping) {
            slot.state.store(kDone, std::memory_order_relaxed);  // order: supervisor-private-state
            break;
          }
          // order: supervisor-private-state
          slot.state.store(kAwaitingRestart, std::memory_order_relaxed);
          slot.restart_at_ns = now + restart_delay_ns;
          all_done = false;
          break;
        case kAwaitingRestart:
          if (stopping) {
            slot.state.store(kDone, std::memory_order_relaxed);  // order: supervisor-private-state
          } else if (now >= slot.restart_at_ns) {
            spawn(i);
            if (supervisor_ring != nullptr) {
              supervisor_ring->TryPush({.time = (now - start) / 1000,
                                        .type = trace::EventType::kRestart, .cpu = i});
            }
            all_done = false;
          } else {
            all_done = false;
          }
          break;
        case kDone:
          break;
      }
    }
    if (all_done) {
      break;
    }
    if (config_.watchdog) {
      machine_.SnapshotInto(watchdog_snapshot);
      // Mailbox-resident items are PENDING for their owner (satellite of
      // docs/serving.md): an idle worker with a backlogged mailbox is about
      // to drain, not violating conservation — without this, sustained
      // ingress overload escalates the watchdog against a healthy scheduler.
      // Outstanding join continuations get the same treatment (docs/tasks.md):
      // a forked-but-unfired continuation is work already promised to the
      // system — its children are running elsewhere and the last arriver will
      // submit it — so a deep fork-join drain must read as pending load, not
      // as a persistent conservation violation.
      // Dealt items get the same treatment (bugfix, docs/runtime.md): a batch
      // sitting in a recipient's deal mailbox, or held by a dealer between
      // take and placement (deal_in_flight_), is work in transit — invisible
      // to the load snapshot, so without these two terms a deal landing in a
      // sampling window reads as vanished work and an idle recipient with a
      // backlogged deal mailbox reads as a conservation violation.
      if (config_.ingress != nullptr || config_.task_runner != nullptr ||
          config_.deal_sink != nullptr) {
        watchdog_pending.assign(config_.num_workers, 0);
        for (uint32_t i = 0; i < config_.num_workers; ++i) {
          if (config_.ingress != nullptr) {
            watchdog_pending[i] += config_.ingress->PendingFor(i);
          }
          if (config_.task_runner != nullptr) {
            watchdog_pending[i] += config_.task_runner->OutstandingFor(i);
          }
          if (config_.deal_sink != nullptr) {
            watchdog_pending[i] += config_.deal_sink->DealtPendingFor(i) +
                                   // order: watchdog-pending
                                   deal_in_flight_[i].load(std::memory_order_relaxed);
          }
        }
      }
      if (watchdog.ObserveRound((now - start) / 1000, watchdog_snapshot.task_count,
                                watchdog_pending, &watchdog_trace)) {
        watchdog.RecordEscalation((now - start) / 1000, &watchdog_trace);
        // Snap every backing-off worker awake: an immediate full-rate
        // balancing attempt is the runtime's "forced global round".
        mc_hooks::SyncPoint(mc_hooks::SyncOp::kEpochBump, &escalation_epoch_);
        escalation_epoch_.fetch_add(1, std::memory_order_acq_rel);
      }
      if (supervisor_ring != nullptr) {
        forward_watchdog_events();
      }
    }
    if (collector_ != nullptr) {
      // Drain the rings at supervisor cadence so fixed-capacity rings only
      // drop under genuine bursts, not steady-state volume.
      collector_->Collect();
    }
    std::this_thread::sleep_for(std::chrono::microseconds(config_.supervisor_poll_us));
  }
  for (uint32_t i = 0; i < config_.num_workers; ++i) {
    if (slots[i]->thread.joinable()) {
      slots[i]->thread.join();
    }
  }
  if (producer_thread.joinable()) {
    producer_thread.join();
  }

  report.wall_time_ns = NowNs() - start;
  report.seqlock_read_retries = machine_.TotalSeqlockReadRetries() - seqlock_retries_at_start;
  // order: reporting-counter
  report.total_items = submitted_items_.load(std::memory_order_relaxed);
  report.items_left_unexecuted =
      // order: teardown-quiesced
      deadline_mode_ ? remaining_items_.load(std::memory_order_relaxed) : 0;
  if (injector_ != nullptr) {
    report.faults = injector_->stats();
  }
  if (config_.watchdog) {
    // Classify streaks still open at shutdown — without this, a run that
    // ends mid-violation under-reports (the streak is neither transient nor
    // persistent in the tallies).
    watchdog.Finalize();
    report.watchdog = watchdog.stats();
  }
  if (collector_ != nullptr) {
    if (supervisor_ring != nullptr) {
      forward_watchdog_events();
    }
    report.trace_events = collector_->SortedEvents();
    report.trace_dropped = collector_->total_dropped();
    collector_.reset();
  }
  // Reuse: items a deadline left queued carry into the next run's total;
  // everything executed stops counting, so a later Run() never reports this
  // run's items again.
  // order: teardown-quiesced, reporting-counter
  submitted_items_.store(remaining_items_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  deadline_mode_ = false;
  return report;
}

ExecutorReport Executor::Run() { return RunInternal(0, {}); }

ExecutorReport Executor::RunFor(uint64_t duration_ms,
                                const std::function<void(Executor&)>& producer) {
  OPTSCHED_CHECK(duration_ms > 0);
  return RunInternal(duration_ms, producer);
}

}  // namespace optsched::runtime
