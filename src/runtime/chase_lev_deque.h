// Bounded lock-free Chase-Lev work-stealing deque (Chase & Lev, SPAA'05, in
// the C11 formulation of Le, Pop, Cohen & Zappa Nardelli, PPoPP'13).
//
// This is the optimistic synchronization substrate the paper's proof
// structure is meant to survive: the owner pushes and pops at `bottom` with
// plain loads/stores (no CAS except for the very last item), thieves race
// each other and the owner on a single CAS of `top`. A thief that loses the
// CAS has made a stale observation — exactly the failed re-check of the
// paper's stealing phase, so the runqueue facade surfaces it as
// `failed_recheck`, not as a retry loop.
//
// Deviations from the textbook deque, and why:
//   * BOUNDED. No growth: capacity is fixed at construction (rounded up to a
//     power of two) and PushBottom reports overflow instead of reallocating.
//     The runqueue facade spills overflow into its locked inbox, keeping the
//     lock-free fast path allocation-free forever — and keeping the model
//     checker's state space finite.
//   * SPLIT STEAL. The classic `steal()` is decomposed into PeekTop()
//     (observe top, size and the top item) and TakeTop(peek) (commit via the
//     CAS, anchored to the SAME observed top). The split lets the policy
//     layer run its migration gate between observation and commit: if the
//     CAS succeeds, `top` was unchanged since the peek, so the gate judged
//     the very state it acted on — the paper's re-check argument carries
//     over with the CAS playing the role of the lock-protected re-check.
//   * MONOTONIC 64-BIT INDICES. `top` only ever grows, so the take/steal CAS
//     is ABA-free by construction; slot = index & mask.
//
// Memory-order argument (docs/runtime.md#chase-lev-memory-orders):
//   * PushBottom: the release store to `bottom` publishes the slot words
//     written before it; a thief's acquire load of `bottom` therefore sees
//     the item it is about to read. The acquire load of `top` is needed to
//     reuse slots: it synchronizes with thieves' top-CASes, proving the slot
//     being overwritten was vacated.
//   * PopBottom: the decrement of `bottom` must be globally visible BEFORE
//     the load of `top` (seq_cst fence between them), or a pop and a steal
//     could both observe "more than one item" and take the same one.
//   * PeekTop: `top` acquire, then a seq_cst fence, then `bottom` acquire —
//     the fence pairs with PopBottom's so thief and owner agree on who wins
//     the last item; reading top FIRST anchors the size computation to the
//     index the CAS will validate (the broken_steal_order fault knob flips
//     exactly this and is caught by the model checker).
//   * TakeTop: seq_cst CAS on `top`; success means top was still the peeked
//     value at commit time, failure is a legitimate stale observation.
//
// Slot words are relaxed std::atomic<uint64_t>, not raw memory: a thief may
// read a slot the owner is concurrently overwriting (its CAS then fails and
// the torn value is discarded) — word-wise relaxed atomics make that
// protocol race-free under the C++ model and ThreadSanitizer, and compile to
// plain loads/stores (same technique as Seqlock).
//
// Concurrency contract: exactly ONE owner thread may call PushBottom /
// PopBottom; any number of thieves may call PeekTop / TakeTop concurrently
// with the owner and each other. SizeRelaxed / SumWeightRelaxed are exact
// only at quiescence (mc-harness structural checks).

#ifndef OPTSCHED_SRC_RUNTIME_CHASE_LEV_DEQUE_H_
#define OPTSCHED_SRC_RUNTIME_CHASE_LEV_DEQUE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>

#include "src/runtime/work_item.h"

namespace optsched::runtime {

class ChaseLevDeque {
  static_assert(std::is_trivially_copyable_v<WorkItem>,
                "deque slots are copied word-wise");
  static_assert(sizeof(WorkItem) % sizeof(uint64_t) == 0,
                "WorkItem must be a whole number of 64-bit words");

 public:
  // One thief-side observation: the top index the take-CAS will validate,
  // the size computed against it (<= 0 means "observed empty"), and the top
  // item itself (valid iff found). A found peek may still be stale — TakeTop
  // resolves that race, never the caller.
  struct TopPeek {
    uint64_t top = 0;
    int64_t size = 0;
    bool found = false;
    WorkItem item;
  };

  // Capacity is rounded up to a power of two, minimum 2. `broken_steal_order`
  // is a FAULT KNOB for the model-checking harness only
  // (docs/model_checking.md): PeekTop reads `bottom` BEFORE `top` (and drops
  // the fence between them), the classic mis-ordering that lets a thief pair
  // a stale bottom with a fresh top and steal an already-executed item.
  // Never set in production paths.
  explicit ChaseLevDeque(uint32_t min_capacity, bool broken_steal_order = false);

  uint64_t capacity() const { return mask_ + 1; }

  // --- Owner operations ------------------------------------------------------
  // Appends at bottom; false when the ring is full (caller spills elsewhere).
  bool PushBottom(const WorkItem& item);
  // Removes the newest item (LIFO). For the last remaining item the owner
  // races thieves on the top CAS; losing means a thief got it first.
  std::optional<WorkItem> PopBottom();

  // --- Thief operations ------------------------------------------------------
  TopPeek PeekTop() const;
  // Commits the steal the peek observed. True iff the CAS top -> top+1
  // succeeded, i.e. no thief or owner-last-item pop intervened since the
  // peek; the caller owns peek.item from then on. False is a failed re-check.
  bool TakeTop(const TopPeek& peek);

  // --- Quiescent / statistical observation -----------------------------------
  // bottom - top as this thread happens to see it; exact at quiescence.
  int64_t SizeRelaxed() const;
  // Sum of the weights of the items currently in [top, bottom); exact at
  // quiescence (mc published-depth property), torn under concurrency.
  int64_t SumWeightRelaxed() const;

 private:
  static constexpr std::size_t kWordsPerItem = sizeof(WorkItem) / sizeof(uint64_t);

  void StoreSlot(uint64_t index, const WorkItem& item);
  WorkItem LoadSlot(uint64_t index) const;

  const uint64_t mask_;
  const bool broken_steal_order_;
  // Owner-written index and thief-CASed index on separate cache lines: a
  // thief's top CAS must not invalidate the line the owner's push/pop cycle
  // lives on. Slot words are relaxed-atomic storage, covered by the index
  // protocol above (no per-word hooks; the indices are the decision points).
  // mc: kDequeBottomLoad, kDequeBottomStore
  alignas(kCacheLineSize) std::atomic<uint64_t> bottom_{0};
  // mc: kDequeTopLoad, kDequeTopCas
  alignas(kCacheLineSize) std::atomic<uint64_t> top_{0};
  alignas(kCacheLineSize) const std::unique_ptr<std::atomic<uint64_t>[]> slots_;
};

}  // namespace optsched::runtime

#endif  // OPTSCHED_SRC_RUNTIME_CHASE_LEV_DEQUE_H_
