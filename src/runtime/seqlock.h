// Single-writer seqlock for small trivially-copyable values.
//
// This is how the runtime makes the selection phase genuinely lock-free:
// each runqueue owner publishes its load through a Seqlock<LoadPair>; any
// core can read every other core's load without taking a lock and without
// ever blocking the owner — "allow cores to look at the other cores' states
// and take optimistic decisions based on these observations, without locks"
// (§1). Readers may observe values that are stale by the time they act;
// that staleness is exactly what the re-check in the stealing phase handles.
//
// The payload is stored as an array of relaxed std::atomic<uint64_t> words
// rather than raw bytes copied with memcpy. Under the C++ memory model a
// plain-memory seqlock is a data race (the reader may load words the writer
// is concurrently storing, even though the sequence check discards them);
// word-wise relaxed atomics express the same protocol race-free, keep
// ThreadSanitizer clean, and compile to the same plain loads/stores on
// x86/ARM. Ordering still comes from the acquire/release fences around the
// copy, exactly as before.

#ifndef OPTSCHED_SRC_RUNTIME_SEQLOCK_H_
#define OPTSCHED_SRC_RUNTIME_SEQLOCK_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "src/runtime/spinlock.h"

namespace optsched::runtime {

template <typename T>
class Seqlock {
  static_assert(std::is_trivially_copyable_v<T>, "seqlock values must be trivially copyable");

  static constexpr size_t kWords = (sizeof(T) + sizeof(uint64_t) - 1) / sizeof(uint64_t);

 public:
  Seqlock() {
    T zero{};
    Write(zero);
    sequence_.store(0, std::memory_order_relaxed);
  }

  // Writer side (one writer at a time; the runqueue lock serializes writers).
  void Write(const T& value) {
    uint64_t staging[kWords] = {};
    std::memcpy(staging, &value, sizeof(T));
    const uint64_t seq = sequence_.load(std::memory_order_relaxed);
    sequence_.store(seq + 1, std::memory_order_release);  // odd: write in progress
    std::atomic_thread_fence(std::memory_order_release);
    for (size_t w = 0; w < kWords; ++w) {
      words_[w].store(staging[w], std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_release);
    sequence_.store(seq + 2, std::memory_order_release);  // even: stable
  }

  // Reader side: lock-free, never blocks the writer; retries on torn reads.
  T Read() const {
    uint64_t staging[kWords];
    for (;;) {
      const uint64_t before = sequence_.load(std::memory_order_acquire);
      if (before & 1) {
        CpuRelax();
        continue;
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      for (size_t w = 0; w < kWords; ++w) {
        staging[w] = words_[w].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      const uint64_t after = sequence_.load(std::memory_order_acquire);
      if (before == after) {
        T out;
        std::memcpy(&out, staging, sizeof(T));
        return out;
      }
      CpuRelax();
    }
  }

 private:
  std::atomic<uint64_t> sequence_{0};
  std::atomic<uint64_t> words_[kWords];
};

}  // namespace optsched::runtime

#endif  // OPTSCHED_SRC_RUNTIME_SEQLOCK_H_
