// Single-writer seqlock for small trivially-copyable values.
//
// This is how the runtime makes the selection phase genuinely lock-free:
// each runqueue owner publishes its load through a Seqlock<LoadPair>; any
// core can read every other core's load without taking a lock and without
// ever blocking the owner — "allow cores to look at the other cores' states
// and take optimistic decisions based on these observations, without locks"
// (§1). Readers may observe values that are stale by the time they act;
// that staleness is exactly what the re-check in the stealing phase handles.

#ifndef OPTSCHED_SRC_RUNTIME_SEQLOCK_H_
#define OPTSCHED_SRC_RUNTIME_SEQLOCK_H_

#include <atomic>
#include <cstring>
#include <type_traits>

#include "src/runtime/spinlock.h"

namespace optsched::runtime {

template <typename T>
class Seqlock {
  static_assert(std::is_trivially_copyable_v<T>, "seqlock values must be trivially copyable");

 public:
  Seqlock() : value_{} {}

  // Writer side (one writer at a time; the runqueue lock serializes writers).
  void Write(const T& value) {
    const uint64_t seq = sequence_.load(std::memory_order_relaxed);
    sequence_.store(seq + 1, std::memory_order_release);  // odd: write in progress
    std::atomic_thread_fence(std::memory_order_release);
    std::memcpy(&value_, &value, sizeof(T));
    std::atomic_thread_fence(std::memory_order_release);
    sequence_.store(seq + 2, std::memory_order_release);  // even: stable
  }

  // Reader side: lock-free, never blocks the writer; retries on torn reads.
  T Read() const {
    T out;
    for (;;) {
      const uint64_t before = sequence_.load(std::memory_order_acquire);
      if (before & 1) {
        CpuRelax();
        continue;
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      std::memcpy(&out, &value_, sizeof(T));
      std::atomic_thread_fence(std::memory_order_acquire);
      const uint64_t after = sequence_.load(std::memory_order_acquire);
      if (before == after) {
        return out;
      }
      CpuRelax();
    }
  }

 private:
  std::atomic<uint64_t> sequence_{0};
  T value_;
};

}  // namespace optsched::runtime

#endif  // OPTSCHED_SRC_RUNTIME_SEQLOCK_H_
