// Single-writer seqlock for small trivially-copyable values.
//
// This is how the runtime makes the selection phase genuinely lock-free:
// each runqueue owner publishes its load through a Seqlock<LoadPair>; any
// core can read every other core's load without taking a lock and without
// ever blocking the owner — "allow cores to look at the other cores' states
// and take optimistic decisions based on these observations, without locks"
// (§1). Readers may observe values that are stale by the time they act;
// that staleness is exactly what the re-check in the stealing phase handles.
//
// The payload is stored as an array of relaxed std::atomic<uint64_t> words
// rather than raw bytes copied with memcpy. Under the C++ memory model a
// plain-memory seqlock is a data race (the reader may load words the writer
// is concurrently storing, even though the sequence check discards them);
// word-wise relaxed atomics express the same protocol race-free, keep
// ThreadSanitizer clean, and compile to the same plain loads/stores on
// x86/ARM. Ordering still comes from the acquire/release fences around the
// copy, exactly as before.
//
// Locking discipline (checked by tools/lint/optsched_lint.py, rule
// seqlock-write-context): Write() must only be called while the writer's
// serializing lock is held — in the runtime, from OPTSCHED_REQUIRES(lock_)
// methods of ConcurrentRunQueue. The seqlock itself cannot name that lock
// (it serializes any one writer, whoever that is), so the obligation is
// enforced by the lint at every call site instead of by a REQUIRES here.

#ifndef OPTSCHED_SRC_RUNTIME_SEQLOCK_H_
#define OPTSCHED_SRC_RUNTIME_SEQLOCK_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "src/base/thread_annotations.h"
#include "src/runtime/spinlock.h"

namespace optsched::runtime {

template <typename T>
class Seqlock {
  static_assert(std::is_trivially_copyable_v<T>, "seqlock values must be trivially copyable");

  static constexpr size_t kWords = (sizeof(T) + sizeof(uint64_t) - 1) / sizeof(uint64_t);

 public:
  // Zero-initializes the payload WITHOUT going through Write(): construction
  // is single-threaded (no concurrent reader can exist yet), so it needs no
  // protocol — and it must not count in write_count(), whose consumers
  // (publish-batching assertions in the mc harness, per-critical-section
  // write deltas in TrySteal) expect "completed publishes", starting at 0
  // for a fresh instance.
  Seqlock() {
    for (size_t w = 0; w < kWords; ++w) {
      words_[w].store(0, std::memory_order_relaxed);  // order: ctor-single-threaded
    }
  }

  // Writer side (one writer at a time; the runqueue lock serializes writers).
  // The mid-write SyncPoint exposes the torn window (sequence odd, payload
  // words half-stored) to the model checker, which is exactly the state a
  // reader's retry loop exists to survive.
  OPTSCHED_HOT_PATH void Write(const T& value) {
    uint64_t staging[kWords] = {};
    std::memcpy(staging, &value, sizeof(T));
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kSeqWriteBegin, this);
    const uint64_t seq = sequence_.load(std::memory_order_relaxed);  // order: seq-writer-serialized
    sequence_.store(seq + 1, std::memory_order_release);  // odd: write in progress
    std::atomic_thread_fence(std::memory_order_release);
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kSeqWriteTorn, this);
    for (size_t w = 0; w < kWords; ++w) {
      words_[w].store(staging[w], std::memory_order_relaxed);  // order: seqlock-word-protocol
    }
    std::atomic_thread_fence(std::memory_order_release);
    sequence_.store(seq + 2, std::memory_order_release);  // even: stable
    writes_.fetch_add(1, std::memory_order_relaxed);  // order: reporting-counter
    mc_hooks::SyncPoint(mc_hooks::SyncOp::kSeqWriteEnd, this);
  }

  // Reader side: lock-free, never blocks the writer; retries on torn reads.
  // Each retry (odd sequence or before/after mismatch) bumps a relaxed
  // per-instance counter: the retry rate is the direct measure of snapshot
  // staleness pressure — how often the selection phase raced a publisher —
  // which ExecutorReport surfaces as executor.seqlock.read_retries.
  OPTSCHED_HOT_PATH T Read() const {
    uint64_t staging[kWords];
    for (;;) {
      mc_hooks::SyncPoint(mc_hooks::SyncOp::kSeqRead, this);
      const uint64_t before = sequence_.load(std::memory_order_acquire);
      if (before & 1) {
        ReadRetryPause();
        continue;
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      for (size_t w = 0; w < kWords; ++w) {
        staging[w] = words_[w].load(std::memory_order_relaxed);  // order: seqlock-word-protocol
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      const uint64_t after = sequence_.load(std::memory_order_acquire);
      if (before == after) {
        T out;
        std::memcpy(&out, staging, sizeof(T));
        return out;
      }
      ReadRetryPause();
    }
  }

  // Torn-read loop iterations observed by Read() since construction. Relaxed:
  // a monotone statistic, not a synchronization device.
  // order: reporting-counter
  uint64_t read_retries() const { return read_retries_.load(std::memory_order_relaxed); }

  // Completed Write() calls since construction — 0 for a fresh seqlock (the
  // constructor's zero-initialization is not a Write). Publish batching (one
  // Write per critical section, however many items moved) is asserted against
  // this counter by the mc harness; each write also invalidates every
  // concurrent reader, so the write rate bounds the retry pressure readers
  // can see.
  // order: reporting-counter
  uint64_t write_count() const { return writes_.load(std::memory_order_relaxed); }

 private:
  OPTSCHED_HOT_PATH void ReadRetryPause() const {
    read_retries_.fetch_add(1, std::memory_order_relaxed);  // order: reporting-counter
    // Under the model checker a retrying reader blocks until the in-flight
    // write completes (sequence even again); rescheduling it earlier would
    // just spin the fiber without progress. In production: plain CpuRelax.
    if (!mc_hooks::BlockUntil(mc_hooks::SyncOp::kSeqReadRetry, this,
                              &Seqlock::SequenceEven, this)) {
      CpuRelax();
    }
  }

  static bool SequenceEven(const void* self) {
    return (static_cast<const Seqlock*>(self)->sequence_.load(std::memory_order_acquire) &
            1) == 0;
  }

  // mc: kSeqWriteBegin, kSeqWriteTorn, kSeqWriteEnd, kSeqRead, kSeqReadRetry
  std::atomic<uint64_t> sequence_{0};
  // mc: kSeqWriteTorn, kSeqRead
  std::atomic<uint64_t> words_[kWords];
  // optsched-lint: allow(mc-hook-coverage): monotone statistic, not protocol state
  std::atomic<uint64_t> writes_{0};
  // optsched-lint: allow(mc-hook-coverage): monotone statistic, not protocol state
  mutable std::atomic<uint64_t> read_retries_{0};
};

}  // namespace optsched::runtime

#endif  // OPTSCHED_SRC_RUNTIME_SEQLOCK_H_
