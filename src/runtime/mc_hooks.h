// Model-checking interposition seam for the runtime's synchronization
// primitives (docs/model_checking.md).
//
// Every synchronization point in SpinLock, Seqlock, and the executor's
// escalation-epoch atomics funnels through the two inline functions below.
// In production nothing is registered and each call is a single
// predictably-not-taken thread-local null check; building with
// -DOPTSCHED_MC_HOOKS=OFF removes even that (the functions compile to
// nothing and `src/mc` is not built). When the deterministic model checker
// (src/mc) is driving, it installs an Interposer on its OS thread and runs N
// virtual workers as cooperative fibers: every hook call is a scheduling
// decision point, so the checker — not the host — chooses the interleaving,
// can enumerate them exhaustively, and can replay a recorded schedule
// exactly.
//
// The seam is deliberately one pointer wide: the runtime knows nothing about
// fibers, schedules, or exploration strategies. It only promises to announce
// "I am about to perform this synchronization action on this object" (a
// SyncPoint) or "I cannot make progress until this predicate holds" (a
// BlockUntil — e.g. a contended lock or a seqlock reader that observed a
// write in progress). Blocking points carry the predicate so the checker can
// mark the virtual thread disabled instead of letting it spin, which keeps
// exploration finite: a blocked thread is rescheduled only after another
// thread's dependent action re-enables it.

#ifndef OPTSCHED_SRC_RUNTIME_MC_HOOKS_H_
#define OPTSCHED_SRC_RUNTIME_MC_HOOKS_H_

#ifndef OPTSCHED_MC_HOOKS
#define OPTSCHED_MC_HOOKS 1
#endif

namespace optsched::runtime::mc_hooks {

// Which synchronization action a hook call announces. The checker uses the
// (op, address) pair both for dependence analysis (sleep-set pruning: two
// actions commute unless they touch the same object and at least one
// mutates) and for event-stream labels in replays and trace exports.
enum class SyncOp {
  kLockAcquire,   // SpinLock::lock entry (about to attempt the exchange)
  kLockTry,       // SpinLock::try_lock entry
  kLockRelease,   // SpinLock::unlock (store just performed)
  kLockWait,      // blocking: lock held by another thread
  kSeqWriteBegin, // Seqlock::Write entry (sequence still even)
  kSeqWriteTorn,  // mid-write: sequence odd, payload words in flight
  kSeqWriteEnd,   // write published (sequence even again)
  kSeqRead,       // Seqlock::Read attempt start
  kSeqReadRetry,  // blocking: reader saw an odd sequence or a torn pair
  kEpochLoad,     // executor escalation/wakeup-epoch load
  kEpochBump,     // executor escalation/wakeup-epoch fetch_add
  kMailboxPush,   // ingress mailbox: producer-side bounded enqueue
  kMailboxDrain,  // ingress mailbox: owner-side drain into the runqueue
  kMailboxDepth,  // ingress mailbox: lock-free depth observation
  kDequeTopLoad,     // chase-lev deque: thief/owner load of the top index
  kDequeTopCas,      // chase-lev deque: CAS on the top index (thief take / owner last-item race)
  kDequeBottomLoad,  // chase-lev deque: load of the bottom index
  kDequeBottomStore, // chase-lev deque: owner store to the bottom index
  kDequeLoadRead,    // chase-lev backend: lock-free published-load read
  kDequeLoadWrite,   // chase-lev backend: published-load counter update
  kTaskJoinLoad,  // task layer: plain load of a join counter (fault variant)
  kTaskJoinDec,   // task layer: join-counter decrement (last arriver fires)
  kYield,         // explicit fair scheduling point (harness loop boundary)
  kThreadStart,   // virtual thread about to run its first action
};

const char* SyncOpName(SyncOp op);

// True for ops that mutate their object; two ops on the same address are
// independent (commute) iff neither writes.
bool SyncOpWrites(SyncOp op);

class Interposer {
 public:
  virtual ~Interposer() = default;

  // A scheduling decision point: the calling virtual thread is about to
  // perform `op` on `addr`. The interposer may suspend the caller and run
  // other virtual threads; it returns when the caller is scheduled again.
  virtual void OnSync(SyncOp op, const void* addr) = 0;

  // A blocking point: the caller cannot proceed until `ready(arg)` is true
  // (the predicate is cheap, pure, and may be re-evaluated at any decision
  // point). The interposer must not resume the caller before it holds.
  virtual void OnBlock(SyncOp op, const void* addr, bool (*ready)(const void*),
                       const void* arg) = 0;
};

#if OPTSCHED_MC_HOOKS

namespace internal {
// One interposer per OS thread. The model checker runs all its virtual
// workers as fibers on a single OS thread, so one slot is exactly enough;
// production threads never write it and only pay the null check. constinit
// keeps the access a direct TLS load: no dynamic-init thread wrapper, which
// both shortens the production hot path and avoids a UBSan false positive
// on the cross-TU wrapper call.
extern constinit thread_local Interposer* tls_interposer;
}  // namespace internal

// Installs `interposer` for the calling OS thread, returning the previous
// one (restore it when done; the checker scopes this RAII-style).
inline Interposer* SetInterposer(Interposer* interposer) {
  Interposer* previous = internal::tls_interposer;
  internal::tls_interposer = interposer;
  return previous;
}

inline bool Active() { return internal::tls_interposer != nullptr; }

inline void SyncPoint(SyncOp op, const void* addr) {
  if (Interposer* interposer = internal::tls_interposer) {
    interposer->OnSync(op, addr);
  }
}

// Returns true if an interposer handled the wait — the caller should re-check
// its condition immediately instead of spinning. Returns false in production,
// where the caller falls through to its normal spin/backoff path.
inline bool BlockUntil(SyncOp op, const void* addr, bool (*ready)(const void*),
                       const void* arg) {
  if (Interposer* interposer = internal::tls_interposer) {
    interposer->OnBlock(op, addr, ready, arg);
    return true;
  }
  return false;
}

#else  // !OPTSCHED_MC_HOOKS — the seam compiles out entirely.

inline Interposer* SetInterposer(Interposer*) { return nullptr; }
inline bool Active() { return false; }
inline void SyncPoint(SyncOp, const void*) {}
inline bool BlockUntil(SyncOp, const void*, bool (*)(const void*), const void*) {
  return false;
}

#endif  // OPTSCHED_MC_HOOKS

}  // namespace optsched::runtime::mc_hooks

#endif  // OPTSCHED_SRC_RUNTIME_MC_HOOKS_H_
