#include "src/runtime/concurrent_machine.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/base/mutex.h"

namespace optsched::runtime {

OPTSCHED_HOT_PATH void ConcurrentRunQueue::PublishLocked() {
  LoadPair load;
  load.task_count = static_cast<int64_t>(ready_.size()) + (running_ ? 1 : 0);
  load.weighted_load = queued_weight_ + running_weight_;
  published_.Write(load);
}

std::optional<WorkItem> ConcurrentRunQueue::PopForRun() {
  LockGuard guard(lock_);
  // Invariant before mutation: if the owner already runs an item, abort with
  // the queue untouched — the old order popped and unpublished first, so a
  // firing check reported a state the queue was no longer in (and the item
  // was silently gone from the load accounting).
  OPTSCHED_CHECK_MSG(!running_, "owner already runs an item");
  if (ready_.empty()) {
    return std::nullopt;
  }
  WorkItem item = ready_.front();
  ready_.pop_front();
  queued_weight_ -= item.weight;
  running_ = true;
  running_weight_ = item.weight;
  PublishLocked();
  return item;
}

void ConcurrentRunQueue::FinishCurrent() {
  LockGuard guard(lock_);
  OPTSCHED_CHECK(running_);
  running_ = false;
  running_weight_ = 0;
  PublishLocked();
}

void ConcurrentRunQueue::Push(WorkItem item) {
  LockGuard guard(lock_);
  PushLocked(item);
}

OPTSCHED_HOT_PATH LoadPair ConcurrentRunQueue::ExactLoadLocked() const {
  LoadPair load;
  load.task_count = static_cast<int64_t>(ready_.size()) + (running_ ? 1 : 0);
  load.weighted_load = queued_weight_ + running_weight_;
  return load;
}

OPTSCHED_HOT_PATH uint32_t ConcurrentRunQueue::StealTailLocked(
    FunctionRef<bool(const WorkItem&)> eligible, uint32_t max_items,
    std::vector<WorkItem>& out) {
  uint32_t taken = 0;
  // Newest-first scan by index (erase invalidates deque iterators). Skipped
  // items stay skipped: the batch only tightens the loads as it grows, so an
  // item the rule rejected at a wider gap cannot become eligible later.
  for (size_t i = ready_.size(); i > 0 && taken < max_items;) {
    --i;
    if (!eligible(ready_[i])) {
      continue;
    }
    const WorkItem item = ready_[i];
    ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(i));
    queued_weight_ -= item.weight;
    // optsched-lint: allow(hot-path-alloc): scratch batch at high-water capacity after warmup (E14 alloc audit)
    out.push_back(item);
    ++taken;
  }
  if (taken > 0) {
    // One publish for the whole batch: with per-item publishes a batch of N
    // performed N seqlock writes under BOTH held locks, each one stalling
    // every concurrent snapshot reader into a retry loop.
    PublishLocked();
  }
  return taken;
}

void ConcurrentRunQueue::PushLocked(WorkItem item) {
  queued_weight_ += item.weight;
  ready_.push_back(item);
  PublishLocked();
}

OPTSCHED_HOT_PATH void ConcurrentRunQueue::PushBatchLocked(const WorkItem* items,
                                                           uint32_t count) {
  if (count == 0) {
    return;
  }
  for (uint32_t i = 0; i < count; ++i) {
    queued_weight_ += items[i].weight;
    // optsched-lint: allow(hot-path-alloc): deque blocks are recycled across pop/push cycles; audited allocation-free by bench_e14
    ready_.push_back(items[i]);
  }
  PublishLocked();
}

ConcurrentMachine::ConcurrentMachine(uint32_t num_queues) {
  OPTSCHED_CHECK(num_queues > 0);
  queues_.reserve(num_queues);
  for (uint32_t i = 0; i < num_queues; ++i) {
    queues_.push_back(std::make_unique<ConcurrentRunQueue>());
  }
}

OPTSCHED_HOT_PATH void ConcurrentMachine::SnapshotInto(LoadSnapshot& out) const {
  // resize() is a no-op after the first call on a reused buffer; the refill
  // happens in place, so the selection phase never touches the allocator.
  // optsched-lint: allow(hot-path-alloc): resize to a constant queue count — allocates once, first call only
  out.task_count.resize(queues_.size());
  // optsched-lint: allow(hot-path-alloc): resize to a constant queue count — allocates once, first call only
  out.weighted_load.resize(queues_.size());
  for (size_t i = 0; i < queues_.size(); ++i) {
    const LoadPair load = queues_[i]->ReadLoad();
    out.task_count[i] = load.task_count;
    out.weighted_load[i] = load.weighted_load;
  }
}

LoadSnapshot ConcurrentMachine::Snapshot() const {
  LoadSnapshot snap;
  SnapshotInto(snap);
  return snap;
}

void ConcurrentMachine::LockedSnapshotInto(LoadSnapshot& out) {
  // Lock everything in index order (the machine-wide ranking): exact, but
  // owners stall on their own queue lock for the duration — the cost the
  // paper's design deliberately avoids.
  for (auto& queue : queues_) {
    queue->lock().lock();
  }
  out.task_count.resize(queues_.size());
  out.weighted_load.resize(queues_.size());
  for (size_t i = 0; i < queues_.size(); ++i) {
    const LoadPair load = queues_[i]->ExactLoadLocked();
    out.task_count[i] = load.task_count;
    out.weighted_load[i] = load.weighted_load;
  }
  for (auto it = queues_.rbegin(); it != queues_.rend(); ++it) {
    (*it)->lock().unlock();
  }
}

LoadSnapshot ConcurrentMachine::LockedSnapshot() {
  LoadSnapshot snap;
  LockedSnapshotInto(snap);
  return snap;
}

uint64_t ConcurrentMachine::TotalSeqlockReadRetries() const {
  uint64_t total = 0;
  for (const auto& queue : queues_) {
    total += queue->SeqlockReadRetries();
  }
  return total;
}

uint64_t ConcurrentMachine::TotalSeqlockWrites() const {
  uint64_t total = 0;
  for (const auto& queue : queues_) {
    total += queue->SeqlockWriteCount();
  }
  return total;
}

OPTSCHED_HOT_PATH bool ConcurrentMachine::TrySteal(
    const BalancePolicy& policy, CpuId thief, const LoadSnapshot& snapshot, Rng& rng,
    const StealOptions& options, StealCounters& counters, const Topology* topology,
    CpuId* victim_out, StealObservation* observation_out, StealScratch* scratch) {
  StealScratch local_scratch;  // tests and the mc harness may not thread one
  StealScratch& s = scratch != nullptr ? *scratch : local_scratch;

  // --- Selection phase (no locks, no allocations) ----------------------------
  const SelectionView view{.self = thief, .snapshot = snapshot, .topology = topology};
  policy.FilterCandidatesInto(view, s.candidates);  // step 1
  if (s.candidates.empty()) {
    ++counters.empty_filter;
    return false;
  }
  const CpuId victim = policy.SelectCore(view, s.candidates, rng);  // step 2
  OPTSCHED_CHECK(victim != thief);
  if (victim_out != nullptr) {
    *victim_out = victim;
  }
  ++counters.attempts;

  // --- Stealing phase (two locks, queue-index order) -------------------------
  ConcurrentRunQueue& victim_queue = *queues_[victim];
  ConcurrentRunQueue& thief_queue = *queues_[thief];
  // Index order, the machine-wide lock ranking (see DualLockGuard). The rank
  // is decided at runtime, so the thread-safety analysis cannot map the
  // guard's {lower, higher} pair back to {victim, thief} by itself; the
  // AssertHeld() pair below re-anchors it — the REQUIRES(lock_) checks on
  // every *Locked call in this phase are live again from there on.
  ConcurrentRunQueue& lower_queue = thief < victim ? thief_queue : victim_queue;
  ConcurrentRunQueue& higher_queue = thief < victim ? victim_queue : thief_queue;
  DualLockGuard guard(lower_queue.lock(), higher_queue.lock());
  victim_queue.lock().AssertHeld();
  thief_queue.lock().AssertHeld();

  // Exact loads for the locked pair; other cores stay as the (stale) snapshot
  // observed them — a thief can only be sure of what it locked. The copy
  // assignment reuses the scratch snapshot's capacity (no allocation).
  LoadSnapshot& locked_snapshot = s.locked_snapshot;
  locked_snapshot.task_count = snapshot.task_count;
  locked_snapshot.weighted_load = snapshot.weighted_load;
  const LoadPair victim_load = victim_queue.ExactLoadLocked();
  const LoadPair thief_load = thief_queue.ExactLoadLocked();
  locked_snapshot.task_count[victim] = victim_load.task_count;
  locked_snapshot.weighted_load[victim] = victim_load.weighted_load;
  locked_snapshot.task_count[thief] = thief_load.task_count;
  locked_snapshot.weighted_load[thief] = thief_load.weighted_load;

  const SelectionView locked_view{.self = thief, .snapshot = locked_snapshot,
                                  .topology = topology};
  if (options.recheck && !policy.CanSteal(locked_view, victim)) {
    ++counters.failed_recheck;
    return false;
  }

  const uint64_t writes_before =
      victim_queue.SeqlockWriteCount() + thief_queue.SeqlockWriteCount();

  const LoadMetric metric = policy.metric();
  // Running pair loads, updated as the batch grows so every migration is
  // judged against the loads it would actually act on.
  int64_t v = metric == LoadMetric::kTaskCount ? victim_load.task_count
                                               : victim_load.weighted_load;
  int64_t t = metric == LoadMetric::kTaskCount ? thief_load.task_count
                                               : thief_load.weighted_load;
  uint32_t max_items;
  if (options.break_batch_bound) {
    // mc fault mode: no cap — the harness wants the victim stripped bare.
    max_items = ~0u;
  } else {
    max_items = std::min(std::max(options.max_batch, 1u),
                         std::max(policy.StealBatchHint(v, t), 1u));
  }
  s.batch.clear();
  const uint32_t moved = victim_queue.StealTailLocked(
      [&](const WorkItem& item) {
        if (options.break_batch_bound) {
          return true;  // ignore the migration rule: provoke the violation
        }
        const int64_t w =
            metric == LoadMetric::kTaskCount ? 1 : static_cast<int64_t>(item.weight);
        if (!policy.ShouldMigrate(w, v, t)) {
          return false;
        }
        v -= w;  // returning true commits the removal; keep the running
        t += w;  // loads exact for the next candidate
        return true;
      },
      max_items, s.batch);
  if (moved == 0) {
    ++counters.failed_no_task;
    return false;
  }
  thief_queue.PushBatchLocked(s.batch.data(), moved);
  ++counters.successes;
  counters.items_stolen += moved;
  if (observation_out != nullptr) {
    observation_out->item_id = s.batch.front().id;
    observation_out->items_moved = moved;
    observation_out->seqlock_writes =
        victim_queue.SeqlockWriteCount() + thief_queue.SeqlockWriteCount() - writes_before;
    observation_out->victim_tasks_after = victim_queue.ExactLoadLocked().task_count;
    observation_out->thief_tasks_after = thief_queue.ExactLoadLocked().task_count;
  }
  return true;
}

}  // namespace optsched::runtime
